package wexp

import (
	"context"
	"net/http"

	"wexp/internal/router"
	"wexp/internal/service"
)

// --- Durable wexpd -----------------------------------------------------------

// OpenService returns the wexpd HTTP handler with durable state when
// ServiceConfig.DataDir is set: the content-addressed graph store spills
// to disk, job transitions append to a write-ahead log, and on open the
// WAL is replayed — torn tails truncated, terminal jobs restored,
// incomplete jobs resumed through their experiment checkpoints. With an
// empty DataDir it is equivalent to NewService.
func OpenService(cfg ServiceConfig) (*service.Server, error) { return service.Open(cfg) }

// --- The wexprouter shard router ---------------------------------------------

// RouterConfig tunes the shard router: the static wexpd backend list the
// digest space is rendezvous-hashed across, and an optional byte-level
// edge response cache.
type RouterConfig = router.Config

// RouterMetrics is a snapshot of the router counters (per-backend
// requests/errors/latency, edge coalescing, edge cache).
type RouterMetrics = router.Metrics

// NewRouter returns the wexprouter HTTP handler: consistent-hash routing
// of graphs and computations over a wexpd fleet, fleet-edge request
// coalescing, fan-out merges for listings, and b<i>.-prefixed fleet-wide
// job IDs. See internal/router/README.md.
func NewRouter(cfg RouterConfig) (*router.Router, error) { return router.New(cfg) }

// ShardPlacement returns the index of the backend that owns key under
// rendezvous hashing — the pure placement function wexprouter uses (-1
// for an empty backend list). Exposed so external tooling can predict
// placement without a router instance.
func ShardPlacement(backends []string, key string) int { return router.Place(backends, key) }

// ServeRouter runs the shard router on addr until ctx is cancelled, then
// shuts down gracefully. A nil ctx means serve forever.
func ServeRouter(ctx context.Context, addr string, cfg RouterConfig) error {
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	srv := &http.Server{Addr: addr, Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		return srv.Shutdown(context.Background())
	}
}
