// Package wexp is a Go implementation of "Wireless Expanders" (Attali,
// Parter, Peleg, Solomon — SPAA 2018, arXiv:1802.07177).
//
// A graph G is an (αw, βw)-wireless expander if every vertex set S with
// |S| ≤ αw·|V| contains a subset S' whose S-excluding unique neighborhood
// Γ¹_S(S') — the vertices outside S adjacent to exactly one member of S' —
// has size at least βw·|S|. Wireless expansion sits between ordinary vertex
// expansion β and unique-neighbor expansion βu (β ≥ βw ≥ βu) and is exactly
// the property that makes a radio network with collision semantics spread a
// message quickly: the subset S' can transmit simultaneously and each
// unique neighbor receives.
//
// The library provides:
//
//   - the graph and bipartite substrates (package internal/graph) with the
//     neighborhood operators Γ, Γ⁻, Γ¹, Γ¹_S of the paper's Section 2;
//   - exact and sampled measurement of β, βu, βw (internal/expansion),
//     including the spectral machinery of Lemma 3.1. The exact engine is a
//     branch-and-bound search over the prefix-decision tree: subtrees whose
//     objective lower bound exceeds a deterministic incumbent are cut
//     without being generated, which moves the exact frontier far past the
//     full-enumeration wall (n = 120 in about a second at a ≈ 99.8% prune
//     rate). The tree is partitioned into fixed-shape subproblems — a
//     function of the instance, never the worker count — so the value, the
//     witnesses, and every search counter are bit-identical at any pool
//     width; work is bounded by a caller-supplied budget (the typed
//     ErrBudget reports exhaustion) rather than a hard vertex limit;
//   - the paper's spokesman-election algorithms (internal/spokesman): the
//     Lemma 4.2 decay sampler, the Lemma 4.3 low-β reduction, and the
//     deterministic appendix procedures (greedy, Procedure Partition, the
//     recursive near-optimal selector, degree-class bucketing);
//   - the explicit worst-case constructions (internal/badgraph): Gbad
//     (Lemma 3.3), the binary-tree core graph (Lemma 4.4), the generalized
//     core (Lemmas 4.6–4.8), the plugged worst-case expander (Section
//     4.3.3), and the Section 5 broadcast-lower-bound chain;
//   - a radio-network simulator with the paper's collision rule and the
//     broadcast protocols it discusses (internal/radio);
//   - the closed-form bounds of every lemma (internal/bounds) and the
//     sharded, resumable experiment engine E1–E14 that regenerates each
//     claim with deterministic JSON artifacts (internal/experiments);
//   - the wexpd graph-analysis service (internal/service, cmd/wexpd): a
//     content-addressed graph store keyed by the canonical digest
//     (GraphDigest), a memoized byte-level result cache with singleflight
//     request coalescing, and a cancellable job engine — the engines'
//     bit-reproducibility is what makes responses cacheable and replicas
//     interchangeable. Start it with Serve or NewService.
//
// This package is the public facade: it re-exports the types and wraps the
// operations a downstream user needs, so examples and external code import
// only "wexp".
//
// # Context-first API
//
// Every operation takes a context.Context as its explicit first parameter
// and shares the embedded RunOpts run-control block (Workers, Budget,
// Seed). The unified entry point is
//
//	res, err := wexp.Expansion(ctx, g, wexp.ObjWireless, wexp.ExpansionOptions{
//	    RunOpts: wexp.RunOpts{Workers: 4},
//	    Alpha:   0.5,
//	})
//
// with per-objective shorthands OrdinaryExpansionWith, UniqueExpansionWith,
// WirelessExpansionWith, EdgeExpansionWith, MinBipartiteExpansionWith,
// ProfilesWith, AlphaSweepWith, BroadcastMonteCarloWith, and
// RunExperimentsWith. The pre-redesign names (OrdinaryExpansionOpts,
// UniqueExpansionOpts, WirelessExpansionOpts, MinBipartiteExpansionOpts,
// BroadcastMonteCarlo, RunExperiments) remain as deprecated thin wrappers.
// The exported surface is pinned to testdata/api/wexp.txt by
// TestAPISurfaceGolden; regenerate after an intentional change with
// `make api`.
package wexp
