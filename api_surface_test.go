package wexp

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The exported surface of this package is pinned to a golden file so that
// any API change — a new function, a renamed field, a signature edit —
// shows up as an explicit diff in review instead of slipping through.
// Regenerate after an intentional change with:
//
//	make api            (equivalently: UPDATE_API=1 go test -run TestAPISurfaceGolden .)

const apiGoldenPath = "testdata/api/wexp.txt"

var updateAPI = os.Getenv("UPDATE_API") != ""

// rootSourceFiles returns the non-test Go files of the root package.
func rootSourceFiles(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	return files
}

// deprecatedFacadeNames returns every exported root-package name whose doc
// comment carries a "Deprecated:" marker, mapped to its declaring file.
func deprecatedFacadeNames(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	out := map[string]string{}
	for _, file := range rootSourceFiles(t) {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		mark := func(name *ast.Ident, doc *ast.CommentGroup) {
			if name.IsExported() && doc != nil && strings.Contains(doc.Text(), "Deprecated:") {
				out[name.Name] = file
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					mark(d.Name, d.Doc)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					doc := d.Doc
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Doc != nil {
							doc = s.Doc
						}
						mark(s.Name, doc)
					case *ast.ValueSpec:
						if s.Doc != nil {
							doc = s.Doc
						}
						for _, n := range s.Names {
							mark(n, doc)
						}
					}
				}
			}
		}
	}
	return out
}

// apiSurface renders the exported declarations of the root package: every
// exported func/method signature (bodies stripped) and every exported
// const/var/type, sorted, with deprecated entries flagged.
func apiSurface(t *testing.T) string {
	t.Helper()
	deprecated := deprecatedFacadeNames(t)
	fset := token.NewFileSet()
	var blocks []string
	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, file := range rootSourceFiles(t) {
		// Parsed without comments so the printer emits bare declarations.
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					recv := d.Recv.List[0].Type
					if id, ok := recv.(*ast.Ident); ok && !id.IsExported() {
						continue
					}
					if star, ok := recv.(*ast.StarExpr); ok {
						if id, ok := star.X.(*ast.Ident); ok && !id.IsExported() {
							continue
						}
					}
				}
				d.Body = nil
				s := render(d)
				if _, dep := deprecated[d.Name.Name]; dep && d.Recv == nil {
					s = "DEPRECATED " + s
				}
				blocks = append(blocks, s)
			case *ast.GenDecl:
				if d.Tok == token.IMPORT {
					continue
				}
				var specs []ast.Spec
				depGroup := false
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							specs = append(specs, s)
							if _, dep := deprecated[s.Name.Name]; dep {
								depGroup = true
							}
						}
					case *ast.ValueSpec:
						exported := false
						for _, n := range s.Names {
							if n.IsExported() {
								exported = true
							}
							if _, dep := deprecated[n.Name]; dep {
								depGroup = true
							}
						}
						if exported {
							specs = append(specs, s)
						}
					}
				}
				if len(specs) == 0 {
					continue
				}
				d.Specs = specs
				s := render(d)
				if depGroup {
					s = "DEPRECATED " + s
				}
				blocks = append(blocks, s)
			}
		}
	}
	sort.Strings(blocks)
	return "package wexp\n\n" + strings.Join(blocks, "\n\n") + "\n"
}

// TestAPISurfaceGolden pins the exported API of package wexp to
// testdata/api/wexp.txt. A failure here means the public surface changed:
// review the diff, then run `make api` to accept it.
func TestAPISurfaceGolden(t *testing.T) {
	got := apiSurface(t)
	if updateAPI {
		if err := os.MkdirAll(filepath.Dir(apiGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("%v (run `make api` to generate the golden)", err)
	}
	if got != string(want) {
		t.Fatalf("exported API surface drifted from %s — review the change, then run `make api`.\n--- got ---\n%s\n--- want ---\n%s",
			apiGoldenPath, got, want)
	}
}

// TestNoDeprecatedFacadeUses is a vet-style check: no non-test source in
// this repository may call a facade name marked Deprecated — everything
// in-tree must use the context-first *With replacements. The deprecated
// wrappers exist only for external callers (root _test.go files keep one
// call each for coverage, and the declaring files are exempt).
func TestNoDeprecatedFacadeUses(t *testing.T) {
	deprecated := deprecatedFacadeNames(t)
	if len(deprecated) == 0 {
		t.Fatal("no deprecated facade names found — the migration markers are gone")
	}
	fset := token.NewFileSet()
	var violations []string

	// Root package: a use is a bare identifier (package-level reference).
	// Selector .Sel positions are skipped — expansion.MinBipartiteExpansionOpts
	// is an internal-package function that legitimately shares a name.
	for _, file := range rootSourceFiles(t) {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				ast.Inspect(sel.X, func(m ast.Node) bool { // walk X, skip Sel
					if id, ok := m.(*ast.Ident); ok {
						if declFile, dep := deprecated[id.Name]; dep && declFile != file {
							violations = append(violations, fset.Position(id.Pos()).String()+": "+id.Name)
						}
					}
					return true
				})
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if declFile, dep := deprecated[id.Name]; dep && declFile != file {
					violations = append(violations, fset.Position(id.Pos()).String()+": "+id.Name)
				}
			}
			return true
		})
	}

	// Everywhere else: a use is wexp.<Name> in any non-test file that
	// imports the root package.
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "artifacts", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") ||
			!strings.Contains(path, string(filepath.Separator)) {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		pkgName := ""
		for _, imp := range f.Imports {
			if imp.Path.Value == `"wexp"` {
				pkgName = "wexp"
				if imp.Name != nil {
					pkgName = imp.Name.Name
				}
			}
		}
		if pkgName == "" {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == pkgName {
				if _, dep := deprecated[sel.Sel.Name]; dep {
					violations = append(violations, fset.Position(sel.Pos()).String()+": "+pkgName+"."+sel.Sel.Name)
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("deprecated facade names used in non-test source (migrate to the *With forms):\n  %s",
			strings.Join(violations, "\n  "))
	}
}
