package wexp

// The benchmark harness: one Benchmark per experiment of DESIGN.md's index
// (each iteration regenerates that experiment's table, in quick mode so a
// full -bench=. sweep stays tractable), plus micro-benchmarks of the hot
// paths that dominate the experiments (neighbor iteration, unique-cover
// computation, decay sampling, radio round stepping, Procedure Partition).
//
// Run with: go test -bench=. -benchmem

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"wexp/internal/badgraph"
	"wexp/internal/expansion"
	"wexp/internal/experiments"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/runopts"
	"wexp/internal/spokesman"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 20180220, Quick: true}
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s failed:\n%s", id, res.Text())
		}
	}
}

// One benchmark per experiment (tables/claims of the paper).

func BenchmarkE1SpectralUnique(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2GBadUnique(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3PositiveBeta1(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4PositiveBetaLT1(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5CoreGraph(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6GeneralizedCore(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7WorstCase(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Spokesman(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9BroadcastLB(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10CPlusFlood(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11LowArboricity(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12Deterministic(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13Ablation(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14Broadcast(b *testing.B)      { benchExperiment(b, "E14") }

// --- Micro-benchmarks of the hot paths --------------------------------------

func BenchmarkNeighborIteration(b *testing.B) {
	g := gen.Torus(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(v) {
				sum += int(w)
			}
		}
	}
	_ = sum
}

func BenchmarkUniqueCover(b *testing.B) {
	core, err := badgraph.NewCore(256)
	if err != nil {
		b.Fatal(err)
	}
	sub := make([]int, 0, 128)
	for u := 0; u < 256; u += 2 {
		sub = append(sub, u)
	}
	scratch := make([]int8, core.B.NN())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.B.UniqueCoverSet(sub, scratch)
	}
}

// Ablation benches: the cost knobs DESIGN.md calls out — decay trial
// budget, and the hill-climbing refinement pass.

func BenchmarkAblationDecayTrials1(b *testing.B)  { benchDecayTrials(b, 1) }
func BenchmarkAblationDecayTrials16(b *testing.B) { benchDecayTrials(b, 16) }
func BenchmarkAblationDecayTrials64(b *testing.B) { benchDecayTrials(b, 64) }

func benchDecayTrials(b *testing.B, trials int) {
	b.Helper()
	r := rng.New(9)
	bg := gen.RandomBipartite(64, 96, 0.08, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spokesman.Decay(bg, trials, r)
	}
}

func BenchmarkAblationImprovePass(b *testing.B) {
	r := rng.New(10)
	bg := gen.RandomBipartite(128, 192, 0.05, r)
	base := spokesman.GreedyUnique(bg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spokesman.Improve(bg, base, 4)
	}
}

func BenchmarkDecaySampler(b *testing.B) {
	r := rng.New(1)
	bg := gen.RandomBipartite(128, 256, 0.05, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spokesman.DecaySample(bg, 4, r)
	}
}

func BenchmarkPartitionProcedure(b *testing.B) {
	r := rng.New(2)
	bg := gen.RandomBipartite(256, 384, 0.03, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spokesman.Partition(bg, nil)
	}
}

func BenchmarkPartitionRecursive(b *testing.B) {
	r := rng.New(3)
	bg := gen.RandomBipartite(128, 192, 0.05, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spokesman.PartitionRecursive(bg)
	}
}

func BenchmarkGreedyUnique(b *testing.B) {
	r := rng.New(4)
	bg := gen.RandomBipartite(128, 192, 0.05, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spokesman.GreedyUnique(bg)
	}
}

func BenchmarkExhaustiveSpokesman20(b *testing.B) {
	r := rng.New(5)
	bg := gen.RandomBipartite(20, 30, 0.2, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spokesman.Exhaustive(bg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRadioRound(b *testing.B) {
	g := gen.Torus(64, 64)
	net, err := radio.NewNetwork(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	transmit := make([]bool, g.N())
	for v := 0; v < g.N(); v += 3 {
		transmit[v] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step(transmit)
	}
}

// --- Radio-engine perf record -------------------------------------------------

// radioBenchRecord is one (family, n, engine) data point of the perf
// record emitted as BENCH_radio.json: the cost of one flood-load receive
// round (every vertex informed and transmitting — the collision-heavy
// regime the vectorized engine targets).
type radioBenchRecord struct {
	Family  string  `json:"family"`
	N       int     `json:"n"`
	M       int     `json:"m"`
	Engine  string  `json:"engine"` // "scalar" | "vectorized" | "model:<spec>"
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup,omitempty"` // vectorized rows: scalar ns / vectorized ns
}

// BenchmarkRadioEngine measures the scalar oracle against the
// word-parallel step at n = 256/1024/4096 on Erdős–Rényi, hypercube, and
// C⁺ instances, plus the interference-model receive rules (unit-disk vs
// SINR vs fading) at n = 1024/4096, and writes BENCH_radio.json. The
// record is rewritten only when every configuration ran, so a filtered
// run cannot truncate it.
func BenchmarkRadioEngine(b *testing.B) {
	type cfg struct {
		family string
		n      int
		make   func() *graph.Graph
	}
	var cfgs []cfg
	for _, n := range []int{256, 1024, 4096} {
		n := n
		d := 8
		for 1<<d < n {
			d++
		}
		dd := d
		cfgs = append(cfgs,
			cfg{"erdos-renyi", n, func() *graph.Graph {
				return gen.ErdosRenyi(n, 0.1, rng.New(uint64(n)*77+5))
			}},
			cfg{"hypercube", 1 << dd, func() *graph.Graph { return gen.Hypercube(dd) }},
			cfg{"cplus", n, func() *graph.Graph { return gen.CPlus(n - 1) }},
		)
	}
	// The interference-model grid rides along after the engine pairs:
	// the same flood-load round under each pluggable receive rule.
	type modelCfg struct {
		n    int
		spec string
	}
	var modelCfgs []modelCfg
	for _, n := range []int{1024, 4096} {
		for _, spec := range []string{"unit-disk", "sinr", "fading:0.25"} {
			modelCfgs = append(modelCfgs, modelCfg{n, spec})
		}
	}
	// Million-vertex rows: the sparse CSR engine against the scalar oracle
	// on a RandomSparse instance far past the dense-row budget (dense bit
	// rows at this n would need ~n²/8 ≈ 125 GB).
	type bigCfg struct{ n, m int }
	bigs := []bigCfg{{1_000_000, 8_000_000}}
	// Indexed by configuration and overwritten on every invocation: the
	// harness re-runs each sub-benchmark while calibrating b.N, and the
	// final (largest-b.N) invocation is the one worth recording.
	records := make([]radioBenchRecord, 2*len(cfgs)+len(modelCfgs)+2*len(bigs))
	ran := make([]bool, len(records))
	for ci, c := range cfgs {
		g := c.make()
		for ei, engine := range []string{"scalar", "vectorized"} {
			idx := 2*ci + ei
			engine := engine
			b.Run(fmt.Sprintf("%s/n=%d/%s", c.family, c.n, engine), func(b *testing.B) {
				net, err := radio.NewNetwork(g, 0)
				if err != nil {
					b.Fatal(err)
				}
				transmit := make([]bool, g.N())
				for v := range transmit {
					net.Informed[v] = true
					transmit[v] = true
				}
				net.InformedCount = g.N()
				step := net.Step
				if engine == "scalar" {
					step = net.StepScalar
				}
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					step(transmit)
				}
				ns := float64(time.Since(start).Nanoseconds()) / float64(b.N)
				records[idx] = radioBenchRecord{Family: c.family, N: g.N(), M: g.M(), Engine: engine, NsPerOp: ns}
				ran[idx] = true
			})
		}
	}
	for mi, mc := range modelCfgs {
		idx := 2*len(cfgs) + mi
		mc := mc
		g := gen.ErdosRenyi(mc.n, 0.1, rng.New(uint64(mc.n)*77+5))
		b.Run(fmt.Sprintf("erdos-renyi/n=%d/model=%s", mc.n, mc.spec), func(b *testing.B) {
			model, err := radio.ParseModel(mc.spec)
			if err != nil {
				b.Fatal(err)
			}
			net, err := radio.NewNetwork(g, 0)
			if err != nil {
				b.Fatal(err)
			}
			net.UseModel(model, 1)
			transmit := make([]bool, g.N())
			for v := range transmit {
				net.Informed[v] = true
				transmit[v] = true
			}
			net.InformedCount = g.N()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				net.StepRound(transmit)
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(b.N)
			records[idx] = radioBenchRecord{Family: "erdos-renyi", N: g.N(), M: g.M(), Engine: "model:" + mc.spec, NsPerOp: ns}
			ran[idx] = true
		})
	}
	for bi, bc := range bigs {
		base := 2*len(cfgs) + len(modelCfgs) + 2*bi
		g := gen.RandomSparse(bc.n, bc.m, rng.New(uint64(bc.n)*77+5))
		for ei, engine := range []string{"scalar", "sparse"} {
			idx := base + ei
			engine := engine
			b.Run(fmt.Sprintf("random-sparse/n=%d/%s", bc.n, engine), func(b *testing.B) {
				net, err := radio.NewNetwork(g, 0)
				if err != nil {
					b.Fatal(err)
				}
				transmit := make([]bool, g.N())
				for v := range transmit {
					net.Informed[v] = true
					transmit[v] = true
				}
				net.InformedCount = g.N()
				step := net.Step // auto-selected: sparse CSR at this n
				if engine == "scalar" {
					step = net.StepScalar
				}
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					step(transmit)
				}
				ns := float64(time.Since(start).Nanoseconds()) / float64(b.N)
				records[idx] = radioBenchRecord{Family: "random-sparse", N: g.N(), M: g.M(), Engine: engine, NsPerOp: ns}
				ran[idx] = true
			})
		}
	}
	for _, ok := range ran {
		if !ok {
			return // filtered run: keep the existing record
		}
	}
	// Fill speedups now that both engines of each pair have final numbers.
	for i := 1; i < 2*len(cfgs); i += 2 {
		if records[i-1].NsPerOp > 0 {
			records[i].Speedup = records[i-1].NsPerOp / records[i].NsPerOp
		}
	}
	for bi := range bigs {
		base := 2*len(cfgs) + len(modelCfgs) + 2*bi
		if records[base].NsPerOp > 0 {
			records[base+1].Speedup = records[base].NsPerOp / records[base+1].NsPerOp
		}
	}
	payload := struct {
		Schema     string             `json:"schema"`
		Go         string             `json:"go"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		Records    []radioBenchRecord `json:"records"`
	}{
		Schema:     "wexp-bench/radio-v1",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatalf("marshal radio perf record: %v", err)
	}
	if err := os.WriteFile("BENCH_radio.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_radio.json: %v", err)
	}
}

// BenchmarkRadioMonteCarlo measures the trial harness end to end (decay
// protocol on a 32×32 torus, 16 trials per op over the worker pool).
func BenchmarkRadioMonteCarlo(b *testing.B) {
	g := gen.Torus(32, 32)
	factory := func(r *rng.RNG) radio.Protocol { return &radio.Decay{R: r} }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := radio.MonteCarlo(g, 0, factory, 16,
			radio.Options{RunOpts: runopts.RunOpts{Seed: uint64(i)}, MaxRounds: 1 << 20, TraceRounds: -1})
		if err != nil || res.Completed != 16 {
			b.Fatalf("montecarlo: %v (completed %d)", err, res.Completed)
		}
	}
}

// --- Expansion-engine perf record --------------------------------------------

// expansionBenchRecord is one (solver, n) data point of the perf record
// emitted as BENCH_expansion.json, giving future PRs a trajectory to beat.
// AllocsPerOp rides along so cmd/benchgate catches allocation regressions,
// not just timing; Speedup on incremental rows is recompute-ns ÷
// incremental-ns for the matching -recompute row.
type expansionBenchRecord struct {
	Solver      string  `json:"solver"`
	N           int     `json:"n"`
	P           float64 `json:"p"` // Erdős–Rényi edge density of the instance
	Alpha       float64 `json:"alpha"`
	Workers     int     `json:"workers"` // 0 = GOMAXPROCS pool
	NsPerOp     float64 `json:"ns_per_op"`
	SetsPerOp   int     `json:"sets_per_op"`
	SetsPerSec  float64 `json:"sets_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Speedup     float64 `json:"speedup,omitempty"`

	// PruneRate is pruned/(sets+pruned) and VisitedFraction is
	// visited/(sets+pruned), both computed in float64 (Pruned saturates
	// int64 on deep subtree cuts). Deterministic functions of the instance
	// — bit-identical at every worker count — so benchgate treats them as
	// identity fields: a drift in the search shape breaks record matching
	// instead of hiding inside a timing tolerance.
	PruneRate       float64 `json:"prune_rate"`
	VisitedFraction float64 `json:"visited_fraction"`

	// Randomized-tier rows only: the certificate's trial count and failure
	// probability. Both are deterministic functions of the instance and the
	// fixed bench seed (pre-split per-trial RNG streams, worker-invariant),
	// so benchgate keys on them too — a drift in the randomized schedule or
	// failure accounting breaks record matching like a search-shape drift.
	Trials      int     `json:"trials,omitempty"`
	FailureProb float64 `json:"failure_prob,omitempty"`
}

// BenchmarkExpansionEngine measures the by-cardinality exact engine on
// seeded random graphs and writes the aggregate record to
// BENCH_expansion.json: the historical n = 16..32 multi-worker rows, plus
// single-worker incremental-vs-recompute pairs on both kernels (n = 24
// uint64, n = 72 bitset) that pin the revolving-door speedup. The record
// is rewritten only when every configuration ran (e.g. `go test
// -bench=ExpansionEngine`), so a filtered run cannot truncate it.
func BenchmarkExpansionEngine(b *testing.B) {
	type cfg struct {
		solver     string
		obj        expansion.Objective
		n          int
		p          float64
		alpha      float64
		workers    int
		recompute  bool
		noprune    bool // pin the flat incremental kernel (else default = branch-and-bound)
		randomized bool // run the randomized certified tier instead of the exact engine
	}
	// The -serial/-recompute pairs pin the revolving-door kernel speedup at
	// a fixed single-worker workload: n = 24 (α = 0.5, the α of the other
	// small rows) for the uint64 kernel, and n = 72 at p = 0.08 — the
	// paper's sparse bounded-degree regime, where O(deg(out)+deg(in))
	// per-set maintenance is the design point — for the bitset kernel.
	cfgs := []cfg{
		{"ordinary", expansion.ObjOrdinary, 16, 0.3, 0.5, 0, false, false, false},
		{"ordinary", expansion.ObjOrdinary, 20, 0.3, 0.5, 0, false, false, false},
		{"ordinary", expansion.ObjOrdinary, 24, 0.3, 0.25, 0, false, false, false},
		{"ordinary", expansion.ObjOrdinary, 32, 0.3, 0.125, 0, false, false, false},
		{"unique", expansion.ObjUnique, 20, 0.3, 0.5, 0, false, false, false},
		{"wireless", expansion.ObjWireless, 16, 0.3, 0.25, 0, false, false, false},
		{"wireless-serial", expansion.ObjWireless, 16, 0.3, 0.25, 1, false, true, false},
		{"ordinary-serial", expansion.ObjOrdinary, 24, 0.3, 0.5, 1, false, true, false},
		{"ordinary-serial-recompute", expansion.ObjOrdinary, 24, 0.3, 0.5, 1, true, false, false},
		{"unique-serial", expansion.ObjUnique, 20, 0.3, 0.5, 1, false, true, false},
		{"unique-serial-recompute", expansion.ObjUnique, 20, 0.3, 0.5, 1, true, false, false},
		{"ordinary-big", expansion.ObjOrdinary, 72, 0.08, 4.0 / 72.0, 1, false, true, false},
		{"ordinary-big-recompute", expansion.ObjOrdinary, 72, 0.08, 4.0 / 72.0, 1, true, false, false},
		// The branch-and-bound frontier row: n = 120 with k ≤ 6 spans a
		// C(120,6) ≈ 5.4e9-set space that no flat enumeration fits; only
		// subtree pruning makes it a benchmarkable op.
		{"ordinary-bnb-frontier", expansion.ObjOrdinary, 120, 0.08, 6.0 / 120.0, 0, false, false, false},
		// The randomized certified tier on the same frontier instance: the
		// per-op cost of a failure ≤ 1e-9 certificate where exact search is
		// the alternative, plus the trials/failure_prob identity columns.
		{"ordinary-randomized-frontier", expansion.ObjOrdinary, 120, 0.08, 6.0 / 120.0, 0, false, false, true},
	}
	// Each incremental row is paired with the row of its recompute oracle
	// for the speedup column.
	speedupPairs := map[int]int{7: 8, 9: 10, 11: 12}
	// Indexed by config, overwritten on every invocation: the harness
	// re-runs each sub-benchmark while calibrating b.N, and the final
	// (largest-b.N) invocation is the one worth recording.
	records := make([]expansionBenchRecord, len(cfgs))
	ran := make([]bool, len(cfgs))
	for ci, c := range cfgs {
		b.Run(fmt.Sprintf("%s/n=%d", c.solver, c.n), func(b *testing.B) {
			g := gen.ErdosRenyi(c.n, c.p, rng.New(uint64(c.n)*1000+7))
			opt := expansion.Options{RunOpts: runopts.RunOpts{Workers: c.workers}, Alpha: c.alpha, Recompute: c.recompute, NoPrune: c.noprune}
			solve := func() (expansion.Result, error) {
				if c.randomized {
					return expansion.Randomized(g, c.obj, expansion.RandOptions{
						RunOpts: runopts.RunOpts{Workers: c.workers, Seed: 1}, Alpha: c.alpha})
				}
				return expansion.Exact(g, c.obj, opt)
			}
			var sets int
			var pruned, visited int64
			var cert expansion.Certificate
			b.ReportAllocs()
			// Level the heap before timing: earlier benchmarks in this
			// process leave garbage whose collection would otherwise land
			// inside — and jitter — the measured region.
			runtime.GC()
			b.ResetTimer()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := solve()
				if err != nil {
					b.Fatal(err)
				}
				sets = res.Sets
				pruned, visited = res.Pruned, res.Visited
				cert = res.Cert
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			setsPerSec := float64(sets) * float64(b.N) / elapsed.Seconds()
			b.ReportMetric(setsPerSec, "sets/s")
			space := float64(sets) + float64(pruned)
			records[ci] = expansionBenchRecord{
				Solver:      c.solver,
				N:           c.n,
				P:           c.p,
				Alpha:       c.alpha,
				Workers:     c.workers,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(b.N),
				SetsPerOp:   sets,
				SetsPerSec:  setsPerSec,
				AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N),

				PruneRate:       float64(pruned) / space,
				VisitedFraction: float64(visited) / space,
				Trials:          cert.Trials,
				FailureProb:     cert.FailureProb,
			}
			ran[ci] = true
		})
	}
	for inc, rec := range speedupPairs {
		if ran[inc] && ran[rec] && records[inc].NsPerOp > 0 {
			records[inc].Speedup = records[rec].NsPerOp / records[inc].NsPerOp
		}
	}
	// Rewrite the record only when every configuration ran (a filtered
	// `-bench` run must not truncate it).
	for _, ok := range ran {
		if !ok {
			return
		}
	}
	writeExpansionBenchRecord(b, records)
}

func writeExpansionBenchRecord(b *testing.B, records []expansionBenchRecord) {
	b.Helper()
	payload := struct {
		Schema     string                 `json:"schema"`
		Go         string                 `json:"go"`
		GOMAXPROCS int                    `json:"gomaxprocs"`
		Records    []expansionBenchRecord `json:"records"`
	}{
		Schema:     "wexp-bench/expansion-v1",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatalf("marshal perf record: %v", err)
	}
	if err := os.WriteFile("BENCH_expansion.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_expansion.json: %v", err)
	}
}

func BenchmarkExactWireless12(b *testing.B) {
	r := rng.New(6)
	g := gen.ErdosRenyi(12, 0.35, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expansion.ExactWireless(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLambda2PowerIteration(b *testing.B) {
	g := gen.Hypercube(10)
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expansion.Lambda2Regular(g, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := badgraph.NewCore(256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainBroadcastDecay(b *testing.B) {
	r := rng.New(8)
	ch, err := badgraph.NewChain(4, 16, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := radio.Run(ch.G, ch.Root, &radio.Decay{R: r}, 1_000_000)
		if err != nil || !res.Completed {
			b.Fatalf("broadcast failed: %v", err)
		}
	}
}
