package wexp

import (
	"bytes"
	"context"
	"math"
	"testing"
)

func TestBroadcastTraced(t *testing.T) {
	g := CPlus(8)
	r := NewRNG(1)
	res, tr, err := BroadcastTraced(g, 0, DecayProtocol(r), 100000)
	if err != nil || !res.Completed {
		t.Fatalf("traced decay failed: %v %+v", err, res)
	}
	if len(tr.Informed) != res.Rounds+1 {
		t.Fatal("trace length mismatch")
	}
	if tr.RoundsToReach(g.N()) != res.Rounds {
		t.Fatal("RoundsToReach(n) should equal completion round")
	}
}

func TestProbFloodProtocol(t *testing.T) {
	g := Grid(4, 4)
	r := NewRNG(2)
	res, err := Broadcast(g, 0, ProbFloodProtocol(0.6, r), 100000)
	if err != nil || !res.Completed {
		t.Fatal("prob-flood on grid should complete")
	}
}

func TestSpokesmanImprovePublic(t *testing.T) {
	r := NewRNG(3)
	b := RandomBipartite(10, 14, 0.25, r)
	base := SpokesmanGreedy(b)
	imp := SpokesmanImprove(b, base, 5)
	if imp.Unique < base.Unique {
		t.Fatal("improve worsened")
	}
	best := SpokesmanBestImproved(b, 8, r)
	if best.Unique < imp.Unique && best.Unique < base.Unique {
		t.Fatal("best-improved below greedy")
	}
}

func TestMinBipartiteExpansionPublic(t *testing.T) {
	b, err := CoreGraph(8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := MinBipartiteExpansion(b)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 4.4(4): β ≥ log 2s = 4.
	if v < 4 {
		t.Fatalf("core-8 expansion %g < 4", v)
	}
}

func TestExpansionProfilePublic(t *testing.T) {
	p, err := ExpansionProfile(Cycle(12), 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[3]-2.0/3.0) > 1e-12 {
		t.Fatalf("profile[3] = %g", p[3])
	}
}

func TestEdgeExpansionPublic(t *testing.T) {
	h, err := EdgeExpansion(Complete(8))
	if err != nil || h != 4 {
		t.Fatalf("h(K8) = %g, %v", h, err)
	}
}

func TestGBadPluggedPublic(t *testing.T) {
	r := NewRNG(4)
	g, witness, cap, err := GBadPlugged(Torus(8, 8), 8, 6, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64+8 || len(witness) != 8 {
		t.Fatal("dims wrong")
	}
	if cap != 8*2 { // s·(2β−∆) = 8·2
		t.Fatalf("cap = %d, want 16", cap)
	}
}

func TestGraphIOPublic(t *testing.T) {
	g := Hypercube(3)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil || g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("graph IO round trip failed: %v", err)
	}
	b := RandomBipartite(4, 5, 0.5, NewRNG(5))
	buf.Reset()
	if err := WriteBipartite(&buf, b); err != nil {
		t.Fatal(err)
	}
	b2, err := ReadBipartite(&buf)
	if err != nil || b2.M() != b.M() {
		t.Fatalf("bipartite IO round trip failed: %v", err)
	}
}

func TestProfilesPublic(t *testing.T) {
	tp, err := Profiles(CPlus(6), 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if tp.Ordinary[k] < tp.Wireless[k]-1e-9 || tp.Wireless[k] < tp.Unique[k]-1e-9 {
			t.Fatalf("size %d: pointwise ordering violated", k)
		}
	}
}

func TestSchedulesPublic(t *testing.T) {
	g := Path(6)
	slots := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		slots[v] = []int{v}
	}
	res, err := Broadcast(g, 0, FixedScheduleProtocol("rr", slots), 1000)
	if err != nil || !res.Completed {
		t.Fatal("fixed schedule failed")
	}
	p, err := RandomScheduleProtocol(g.N(), 16, 0.3, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err = Broadcast(g, 0, p, 100000)
	if err != nil || !res.Completed {
		t.Fatal("random schedule failed")
	}
}

func TestAlphaSweepPublic(t *testing.T) {
	pts, err := AlphaSweep(CPlus(6), []float64{0.3, 0.5})
	if err != nil || len(pts) != 2 {
		t.Fatalf("sweep failed: %v", err)
	}
	if pts[0].Wireless < pts[1].Wireless {
		t.Fatal("βw(α) should be non-increasing")
	}
}

func TestRemainingPublicGenerators(t *testing.T) {
	if Star(5).Degree(0) != 4 {
		t.Fatal("Star")
	}
	if g := Petersen(); g.N() != 10 || g.M() != 15 {
		t.Fatal("Petersen")
	}
	if CompleteBipartite(2, 3).M() != 6 {
		t.Fatal("CompleteBipartite")
	}
	if Wheel(5).N() != 6 {
		t.Fatal("Wheel")
	}
	if Barbell(3).N() != 6 {
		t.Fatal("Barbell")
	}
	if Lollipop(3, 2).N() != 5 {
		t.Fatal("Lollipop")
	}
	if RandomTree(9, NewRNG(1)).M() != 8 {
		t.Fatal("RandomTree")
	}
}

func TestRunAllExperimentsPublic(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by internal experiment tests")
	}
	results, err := RunAllExperiments(ExperimentConfig{Seed: 2, Quick: true, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ExperimentIDs()) {
		t.Fatal("result count mismatch")
	}
}

func TestUnknownExperimentErrorMessage(t *testing.T) {
	_, err := RunExperiment("E0", ExperimentConfig{})
	if err == nil || err.Error() != "wexp: unknown experiment E0" {
		t.Fatalf("err = %v", err)
	}
}

func TestBroadcastMonteCarlo(t *testing.T) {
	g := CPlus(16)
	factory := func(r *RNG) Protocol { return DecayProtocol(r) }
	res, err := BroadcastMonteCarloWith(context.Background(), g, 0, factory, 16,
		MonteCarloOptions{RunOpts: RunOpts{Seed: 5}, MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 16 || res.Completed == 0 {
		t.Fatalf("montecarlo: %d/%d completed", res.Completed, res.Trials)
	}
	if res.Protocol != "decay-bgi" {
		t.Fatalf("protocol = %q", res.Protocol)
	}
	// Determinism across calls and worker widths.
	again, err := BroadcastMonteCarlo(g, 0, factory, 16,
		MonteCarloOptions{RunOpts: RunOpts{Seed: 5, Workers: 3}, MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if again.Rounds != res.Rounds || again.TotalCollisions != res.TotalCollisions {
		t.Fatal("MonteCarlo not reproducible across worker widths")
	}
}
