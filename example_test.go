package wexp_test

import (
	"fmt"

	"wexp"
)

// The Introduction's motivating example: C⁺ is a good ordinary expander
// whose unique-neighbor expansion is zero, but whose wireless expansion
// matches its ordinary expansion.
func ExampleExpansionOrdering() {
	g := wexp.CPlus(8)
	beta, betaW, betaU, err := wexp.ExpansionOrdering(g, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("β=%.2f βw=%.2f βu=%.2f\n", beta, betaW, betaU)
	// Output: β=1.00 βw=1.00 βu=0.00
}

// Spokesman election on the Lemma 4.4 core graph: no subset of S can
// uniquely cover more than 2s of the s·log(2s) neighbors.
func ExampleSpokesmanExhaustive() {
	b, err := wexp.CoreGraph(8)
	if err != nil {
		panic(err)
	}
	sel, err := wexp.SpokesmanExhaustive(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("|N|=%d, optimum unique cover=%d, ceiling=%d\n", b.NN(), sel.Unique, 2*8)
	// Output: |N|=32, optimum unique cover=15, ceiling=16
}

// Flooding deadlocks on C⁺; the spokesman schedule completes immediately.
func ExampleBroadcast() {
	g := wexp.CPlus(16)
	flood, _ := wexp.Broadcast(g, 0, wexp.FloodProtocol(), 100)
	spoke, _ := wexp.Broadcast(g, 0, wexp.SpokesmanProtocol(nil, 0), 100)
	fmt.Printf("flood: informed %d/%d, completed=%v\n", flood.InformedCount, g.N(), flood.Completed)
	fmt.Printf("spokesman: completed=%v in %d rounds\n", spoke.Completed, spoke.Rounds)
	// Output:
	// flood: informed 3/17, completed=false
	// spokesman: completed=true in 2 rounds
}

// The Lemma 3.3 construction has unique-neighbor expansion exactly 2β−∆.
func ExampleGBad() {
	b, err := wexp.GBad(8, 6, 4) // s=8, ∆=6, β=4
	if err != nil {
		panic(err)
	}
	all := make([]int, b.NS())
	for i := range all {
		all[i] = i
	}
	unique := b.UniqueCoverSet(all, nil)
	fmt.Printf("Γ¹(S) = %d = s·(2β−∆) = %d\n", unique, 8*(2*4-6))
	// Output: Γ¹(S) = 16 = s·(2β−∆) = 16
}

// Theorem 1.1's scale: how far wireless expansion can trail ordinary
// expansion as a function of ∆ and β.
func ExampleTheorem11Bound() {
	fmt.Printf("∆=64 β=4:    %.3f\n", wexp.Theorem11Bound(64, 4))
	fmt.Printf("∆=64 β=0.25: %.3f\n", wexp.Theorem11Bound(64, 0.25))
	// Output:
	// ∆=64 β=4:    0.800
	// ∆=64 β=0.25: 0.050
}
