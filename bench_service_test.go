package wexp

// Service-layer benchmarks: the request cost of wexpd's three serving
// regimes — cold (full compute path), cached (byte-level memoization
// replay), and coalesced (N concurrent identical requests sharing one
// computation). Emitted as BENCH_service.json and gated by cmd/benchgate.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"wexp/internal/service"
)

// serviceBenchRecord is one serving-regime data point of the perf record.
type serviceBenchRecord struct {
	Mode           string  `json:"mode"` // "cold" | "cached" | "coalesced"
	Op             string  `json:"op"`
	Clients        int     `json:"clients"` // concurrent requests per op (coalesced mode)
	NsPerOp        float64 `json:"ns_per_op"`
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// benchRequest drives one request through the handler stack (no TCP: the
// handler path is what the modes differ in) and fails on a non-200.
func benchRequest(b *testing.B, h http.Handler, target string) {
	b.Helper()
	req := httptest.NewRequest("GET", target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status %d: %s", target, rec.Code, rec.Body.String())
	}
}

// BenchmarkService measures the three serving regimes and writes the
// aggregate record to BENCH_service.json. The record is rewritten only
// when every mode ran, so a filtered run cannot truncate it.
func BenchmarkService(b *testing.B) {
	const expansionOp = "/v1/expansion?family=hypercube&size=3&obj=wireless&alpha=0.5"
	const clients = 8

	records := make([]serviceBenchRecord, 3)
	ran := make([]bool, 3)

	b.Run("cold", func(b *testing.B) {
		// A fresh server per iteration: every request walks the full path —
		// family resolution, digest, enumeration, canonical encoding.
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			benchRequest(b, service.New(service.Config{}), expansionOp)
		}
		elapsed := time.Since(start)
		records[0] = serviceBenchRecord{
			Mode: "cold", Op: "expansion",
			NsPerOp:        float64(elapsed.Nanoseconds()) / float64(b.N),
			RequestsPerSec: float64(b.N) / elapsed.Seconds(),
		}
		ran[0] = true
	})

	b.Run("cached", func(b *testing.B) {
		s := service.New(service.Config{})
		benchRequest(b, s, expansionOp) // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			benchRequest(b, s, expansionOp)
		}
		elapsed := time.Since(start)
		records[1] = serviceBenchRecord{
			Mode: "cached", Op: "expansion",
			NsPerOp:        float64(elapsed.Nanoseconds()) / float64(b.N),
			RequestsPerSec: float64(b.N) / elapsed.Seconds(),
		}
		ran[1] = true
	})

	b.Run("coalesced", func(b *testing.B) {
		// Each iteration aims `clients` concurrent requests at a key never
		// seen before (the seed varies), so they race into one singleflight
		// execution rather than hitting the cache.
		s := service.New(service.Config{})
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			target := fmt.Sprintf("/v1/broadcast?family=cplus&size=12&protocol=decay&trials=4&maxrounds=2048&seed=%d", i+1)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					benchRequest(b, s, target)
				}()
			}
			wg.Wait()
		}
		elapsed := time.Since(start)
		records[2] = serviceBenchRecord{
			Mode: "coalesced", Op: "broadcast", Clients: clients,
			NsPerOp:        float64(elapsed.Nanoseconds()) / float64(b.N),
			RequestsPerSec: float64(b.N*clients) / elapsed.Seconds(),
		}
		ran[2] = true
	})

	for _, ok := range ran {
		if !ok {
			return // filtered run: keep the existing record
		}
	}
	payload := struct {
		Schema     string               `json:"schema"`
		Go         string               `json:"go"`
		GOMAXPROCS int                  `json:"gomaxprocs"`
		Records    []serviceBenchRecord `json:"records"`
	}{
		Schema:     "wexp-bench/service-v1",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatalf("marshal service perf record: %v", err)
	}
	if err := os.WriteFile("BENCH_service.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_service.json: %v", err)
	}
}
