package wexp

import (
	"io"

	"wexp/internal/badgraph"
	"wexp/internal/expansion"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/spokesman"
)

// Trace records per-round broadcast progress (see BroadcastTraced).
type Trace = radio.Trace

// BroadcastTraced runs a protocol like Broadcast and additionally records
// the per-round informed counts, collisions, and transmissions.
func BroadcastTraced(g *Graph, source int, p Protocol, maxRounds int) (BroadcastResult, *Trace, error) {
	return radio.RunTraced(g, source, p, maxRounds)
}

// ProbFloodProtocol returns a protocol in which every informed vertex
// transmits independently with fixed probability p each round.
func ProbFloodProtocol(p float64, r *RNG) Protocol {
	return &radio.ProbFlood{P: p, R: r}
}

// SpokesmanImprove hill-climbs a selection by single-vertex flips; it never
// returns a worse selection than its input.
func SpokesmanImprove(b *Bipartite, sel Selection, maxPasses int) Selection {
	return spokesman.Improve(b, sel, maxPasses)
}

// SpokesmanBestImproved runs the full portfolio and hill-climbs the winner.
func SpokesmanBestImproved(b *Bipartite, trials int, r *RNG) Selection {
	return spokesman.BestImproved(b, trials, r)
}

// ExpansionOptions configures the exact expansion engine: the α (or MaxK)
// size cap, the enumeration work budget, the worker-pool width, and the
// kernel choice (Recompute selects the legacy full-recomputation kernels,
// the correctness oracle for the default revolving-door incremental
// ones). See the expansion package's Options for field semantics; results
// are bit-identical at every pool width and for every kernel.
type ExpansionOptions = expansion.Options

// ExpansionBudget is the default work budget (in enumeration units) used
// by the exact solvers when ExpansionOptions.Budget is zero.
const ExpansionBudget = expansion.DefaultBudget

// OrdinaryExpansionOpts computes β(G) exactly with an explicit work budget
// and pool width.
//
// Deprecated: use OrdinaryExpansionWith, which takes the cancellation
// context as an explicit first parameter instead of the opt.Ctx field.
func OrdinaryExpansionOpts(g *Graph, opt ExpansionOptions) (ExpansionResult, error) {
	return expansion.Exact(g, expansion.ObjOrdinary, opt)
}

// UniqueExpansionOpts computes βu(G) exactly with an explicit work budget
// and pool width.
//
// Deprecated: use UniqueExpansionWith, which takes the cancellation
// context as an explicit first parameter instead of the opt.Ctx field.
func UniqueExpansionOpts(g *Graph, opt ExpansionOptions) (ExpansionResult, error) {
	return expansion.Exact(g, expansion.ObjUnique, opt)
}

// WirelessExpansionOpts computes βw(G) exactly with an explicit work
// budget and pool width (work is Σ C(n,k)·2^k units).
//
// Deprecated: use WirelessExpansionWith, which takes the cancellation
// context as an explicit first parameter instead of the opt.Ctx field.
func WirelessExpansionOpts(g *Graph, opt ExpansionOptions) (ExpansionResult, error) {
	return expansion.Exact(g, expansion.ObjWireless, opt)
}

// ExpansionFeasible reports whether the exact engine would accept an
// enumeration of sets up to size ⌊α·n⌋ on an n-vertex graph under the
// given budget (0 means the default) — the check cmd/wexp uses to pick
// between exact solvers and estimators. The wireless objective is the most
// expensive; feasibility for it implies feasibility for β and βu.
func ExpansionFeasible(n int, alpha float64, budget uint64) bool {
	return expansion.Feasible(n, expansion.MaxSetSize(n, alpha), expansion.ObjWireless, budget)
}

// MinBipartiteExpansion computes the exact bipartite vertex expansion
// min over nonempty S' ⊆ S of |Γ(S')|/|S'| under the default work budget,
// the quantity Lemma 4.4(4) lower-bounds for the core graph.
func MinBipartiteExpansion(b *Bipartite) (float64, error) {
	res, err := expansion.MinBipartiteExpansion(b)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// MinBipartiteExpansionOpts is MinBipartiteExpansion with an explicit work
// budget and an optional subset-size cap (opt.MaxK), which makes large S
// sides affordable.
//
// Deprecated: use MinBipartiteExpansionWith, which takes the cancellation
// context as an explicit first parameter and returns the full witness
// record rather than the bare value.
func MinBipartiteExpansionOpts(b *Bipartite, opt ExpansionOptions) (float64, error) {
	res, err := expansion.MinBipartiteExpansionOpts(b, opt)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// ExpansionProfile returns the per-size minimum expansion
// profile[k] = min{|Γ⁻(S)|/|S| : |S| = k} for k = 1..maxK under the
// default work budget; index 0 is unused.
func ExpansionProfile(g *Graph, maxK int) ([]float64, error) {
	p, err := expansion.OrdinaryProfile(g, maxK)
	if err != nil {
		return nil, err
	}
	return p.MinExpansion, nil
}

// EdgeExpansion computes the exact Cheeger constant
// h(G) = min{|e(S,S̄)|/|S| : 0 < |S| ≤ n/2} under the default work budget.
func EdgeExpansion(g *Graph) (float64, error) {
	res, err := expansion.EdgeExpansion(g)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// GBadPlugged plugs the Lemma 3.3 construction onto an ordinary expander
// (the remark after Lemma 3.3), returning the combined graph, the witness
// set whose unique-neighbor expansion is capped at 2β−∆, and that cap.
func GBadPlugged(g *Graph, s, delta, beta int, r *RNG) (*Graph, []int, int, error) {
	p, err := badgraph.NewGBadPlugged(g, s, delta, beta, r)
	if err != nil {
		return nil, nil, 0, err
	}
	return p.G, p.WitnessSet(), p.UniqueCap(), nil
}

// WriteGraph serializes a graph as a plain-text edge list.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadGraph parses the WriteGraph format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteBipartite serializes a bipartite graph as a plain-text edge list.
func WriteBipartite(w io.Writer, b *Bipartite) error {
	return graph.WriteBipartiteEdgeList(w, b)
}

// ReadBipartite parses the WriteBipartite format.
func ReadBipartite(r io.Reader) (*Bipartite, error) {
	return graph.ReadBipartiteEdgeList(r)
}

// TripleProfile bundles per-size minima of β, βw, βu (see Profiles).
type TripleProfile = expansion.TripleProfile

// Profiles computes, for every set size k = 1..maxK, the exact minima of
// ordinary, wireless, and unique expansion over sets of that size, under
// the default work budget (the wireless pass dominates: Σ C(n,k)·2^k).
// Observation 2.1's chain β ≥ βw ≥ βu holds pointwise in every row.
func Profiles(g *Graph, maxK int) (*TripleProfile, error) {
	return expansion.Profiles(g, maxK)
}

// FixedScheduleProtocol returns an oblivious protocol cycling through the
// given transmission slots (vertex-id lists); see the radio package's
// FixedSchedule.
func FixedScheduleProtocol(label string, slots [][]int) Protocol {
	return &radio.FixedSchedule{Label: label, Slots: slots}
}

// RandomScheduleProtocol returns an oblivious schedule of the given period
// in which every vertex transmits in each slot independently with
// probability p (fixed before execution).
func RandomScheduleProtocol(n, period int, p float64, r *RNG) (Protocol, error) {
	return radio.NewRandomSchedule(n, period, p, r)
}

// AlphaPoint is one row of AlphaSweep.
type AlphaPoint = expansion.AlphaPoint

// AlphaSweep evaluates β, βw, βu exactly at a grid of α values under the
// default work budget. All three are non-increasing in α.
func AlphaSweep(g *Graph, alphas []float64) ([]AlphaPoint, error) {
	return expansion.AlphaSweep(g, alphas)
}
