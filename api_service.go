package wexp

import (
	"context"
	"io"
	"net/http"

	"wexp/internal/graph"
	"wexp/internal/service"
)

// --- Graph serialization and identity ----------------------------------------

// WriteEdgeList serializes a graph in the plain-text edge-list format
// (header "n <count>", one "u v" line per edge); it round-trips through
// ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadEdgeList parses the WriteEdgeList format.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// EdgeListOptions relaxes ReadEdgeListOptions toward real-world exports:
// OneBased shifts 1-based ids, InferN accepts headerless SNAP-style input
// (vertex count = max id + 1). The zero value is the strict format.
type EdgeListOptions = graph.EdgeListOptions

// ReadEdgeListOptions parses an edge list under the given options —
// comments, blank lines, and whitespace runs are accepted in every mode,
// and duplicate edges collapse.
func ReadEdgeListOptions(r io.Reader, opt EdgeListOptions) (*Graph, error) {
	return graph.ReadEdgeListOptions(r, opt)
}

// IngestStats reports what a streaming ingestion consumed: input lines and
// bytes seen by the scanner, and edge records parsed before duplicate
// collapse.
type IngestStats = graph.IngestStats

// StreamEdgeList parses an edge list from a one-shot stream (pipe, HTTP
// body, multi-gigabyte file) and builds the CSR graph directly in O(n + m)
// words of memory — no intermediate edge buffer. It accepts exactly the
// ReadEdgeListOptions grammar; parse errors carry the offending line
// number and byte offset.
func StreamEdgeList(r io.Reader, opt EdgeListOptions) (*Graph, error) {
	return graph.StreamEdgeList(r, opt)
}

// StreamEdgeListStats is StreamEdgeList returning ingestion statistics
// alongside the graph.
func StreamEdgeListStats(r io.Reader, opt EdgeListOptions) (*Graph, IngestStats, error) {
	return graph.StreamEdgeListStats(r, opt)
}

// GraphDigest returns the canonical SHA-256 digest of the graph as
// lowercase hex. The digest is a pure function of the labeled structure
// (edge insertion order and duplicates never affect it) and is stable
// across WriteEdgeList/ReadEdgeList round trips — the key of the service's
// content-addressed graph store.
func GraphDigest(g *Graph) string { return graph.DigestString(g) }

// --- The wexpd service -------------------------------------------------------

// ServiceConfig tunes the wexpd graph-analysis service: result-cache
// budget, graph-store and job-table bounds, engine worker width, and
// per-request computation caps. The zero value selects production
// defaults.
type ServiceConfig = service.Config

// ServiceMetrics is a snapshot of the service counters (cache hits and
// misses, underlying computations, coalesced requests, jobs).
type ServiceMetrics = service.Metrics

// NewService returns the wexpd HTTP handler: a content-addressed graph
// store, a byte-level memoized result cache with singleflight coalescing,
// and a cancellable job engine over the /v1 API. See
// internal/service/README.md for the API reference and the
// caching/determinism contract.
func NewService(cfg ServiceConfig) *service.Server { return service.New(cfg) }

// Serve runs the wexpd service on addr until ctx is cancelled, then shuts
// down gracefully (closing the durable state when DataDir is set). A nil
// ctx means serve forever.
func Serve(ctx context.Context, addr string, cfg ServiceConfig) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s, err := service.Open(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	srv := &http.Server{Addr: addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		return srv.Shutdown(context.Background())
	}
}
