package wexp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"wexp/internal/graph"
)

// --- Streaming-ingestion perf record -----------------------------------------

// ingestBenchRecord is one (n, m) data point of the perf record emitted as
// BENCH_ingest.json: the cost of streaming a text edge list into CSR.
// BytesPerEdge is heap allocation per parsed edge (TotalAlloc delta over
// the run) — the memory-bound column benchgate gates alongside ns/op; a
// regression here means the ingester started buffering again.
type ingestBenchRecord struct {
	Mode         string  `json:"mode"` // "stream"
	N            int     `json:"n"`
	M            int     `json:"m"`
	InputBytes   int     `json:"input_bytes"`
	NsPerOp      float64 `json:"ns_per_op"`
	EdgesPerSec  float64 `json:"edges_per_sec"`
	BytesPerEdge float64 `json:"bytes_per_edge"`
}

// BenchmarkIngest measures StreamEdgeList on synthetic edge lists at two
// scales and writes BENCH_ingest.json. The record is rewritten only when
// every configuration ran, so a filtered run cannot truncate it.
func BenchmarkIngest(b *testing.B) {
	cfgs := []struct{ n, extra int }{
		{20_000, 180_000},
		{100_000, 900_000},
	}
	records := make([]ingestBenchRecord, len(cfgs))
	ran := make([]bool, len(records))
	for ci, c := range cfgs {
		m := c.n - 1 + c.extra
		data, err := io.ReadAll(graph.SynthEdgeList(c.n, c.extra, 7))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("stream/n=%d/m=%d", c.n, m), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				g, err := graph.StreamEdgeList(bytes.NewReader(data), graph.EdgeListOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if g.N() != c.n {
					b.Fatalf("ingested n=%d, want %d", g.N(), c.n)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			ns := float64(elapsed.Nanoseconds()) / float64(b.N)
			alloc := float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N)
			records[ci] = ingestBenchRecord{
				Mode:         "stream",
				N:            c.n,
				M:            m,
				InputBytes:   len(data),
				NsPerOp:      ns,
				EdgesPerSec:  float64(m) / (ns / 1e9),
				BytesPerEdge: alloc / float64(m),
			}
			ran[ci] = true
		})
	}
	for _, ok := range ran {
		if !ok {
			return // filtered run: keep the existing record
		}
	}
	payload := struct {
		Schema     string              `json:"schema"`
		Go         string              `json:"go"`
		GOMAXPROCS int                 `json:"gomaxprocs"`
		Records    []ingestBenchRecord `json:"records"`
	}{
		Schema:     "wexp-bench/ingest-v1",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatalf("marshal ingest perf record: %v", err)
	}
	if err := os.WriteFile("BENCH_ingest.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_ingest.json: %v", err)
	}
}
