package expansion

import (
	"errors"
	"math"
	"math/bits"
	"testing"

	"wexp/internal/bitset"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

func TestExactOrdinaryComplete(t *testing.T) {
	// K_n: every S with |S| ≤ n/2 has Γ⁻(S) = V \ S, so
	// β = min (n−k)/k over k ≤ n/2 = (n − ⌊n/2⌋)/⌊n/2⌋.
	g := gen.Complete(8)
	res, err := ExactOrdinary(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1.0 { // (8-4)/4
		t.Fatalf("K8 β = %g, want 1", res.Value)
	}
}

func TestExactOrdinaryCycle(t *testing.T) {
	// Cycle: a contiguous arc of length k has exactly 2 external neighbors,
	// so β = 2/⌊αn⌋.
	g := gen.Cycle(12)
	res, err := ExactOrdinary(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 6.0
	if math.Abs(res.Value-want) > 1e-12 {
		t.Fatalf("C12 β = %g, want %g", res.Value, want)
	}
}

func TestExactOrdinaryStar(t *testing.T) {
	// Star K_{1,n-1}, α small enough that only leaves or center alone fit:
	// a single leaf has 1 neighbor → expansion 1; the set of two leaves has
	// 1 external neighbor → 0.5.
	g := gen.Star(10)
	res, err := ExactOrdinary(g, 0.2) // |S| ≤ 2
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0.5 {
		t.Fatalf("star β = %g, want 0.5", res.Value)
	}
}

func TestExactUniqueCPlus(t *testing.T) {
	// The Introduction's example: S = {s0, x, y} in C⁺ has no unique
	// neighbor... every clique vertex sees both x and y. βu = 0.
	g := gen.CPlus(6)
	res, err := ExactUnique(g, 0.45) // |S| ≤ 3 of 7 vertices
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("C+ βu = %g, want 0", res.Value)
	}
	// The witness should include x=1 and y=2 (both clique neighbors of s0).
	S := res.ArgSet
	if bits.OnesCount64(S) == 0 {
		t.Fatal("no witness set")
	}
}

func TestExactWirelessCPlusPositive(t *testing.T) {
	// Wireless expansion of C⁺ is positive: for S = {s0, x, y} pick
	// S' = {x} alone — it uniquely covers the rest of the clique.
	g := gen.CPlus(6)
	res, err := ExactWireless(g, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value <= 0 {
		t.Fatalf("C+ βw = %g, want > 0", res.Value)
	}
}

func TestOrderingObservation21(t *testing.T) {
	// Observation 2.1: β ≥ βw ≥ βu on a batch of small random graphs.
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		g := gen.ErdosRenyi(10, 0.35, r)
		beta, betaW, betaU, err := Ordering(g, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if beta < betaW-1e-9 || betaW < betaU-1e-9 {
			t.Fatalf("trial %d: ordering violated β=%g βw=%g βu=%g", trial, beta, betaW, betaU)
		}
	}
}

func TestExactWirelessMatchesBruteForce(t *testing.T) {
	// Independent re-implementation: for every S, compute the inner max by
	// direct per-subset recount using bitsets (not the once/twice trick).
	r := rng.New(7)
	g := gen.ErdosRenyi(8, 0.4, r)
	res, err := ExactWireless(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteWireless(g, 0.5)
	if math.Abs(res.Value-want) > 1e-12 {
		t.Fatalf("βw = %g, brute = %g", res.Value, want)
	}
}

// bruteWireless recomputes βw from first principles with the bitset-based
// Gamma1Excluding (O(3^n · n) — fine for n = 8).
func bruteWireless(g *graph.Graph, alpha float64) float64 {
	n := g.N()
	maxSize := int(alpha * float64(n))
	best := math.Inf(1)
	for S := 1; S < 1<<uint(n); S++ {
		size := bits.OnesCount64(uint64(S))
		if size > maxSize {
			continue
		}
		sset := bitset.New(n)
		for v := 0; v < n; v++ {
			if S&(1<<uint(v)) != 0 {
				sset.Add(v)
			}
		}
		inner := 0
		for sub := S; ; sub = (sub - 1) & S {
			if sub != 0 {
				pset := bitset.New(n)
				for v := 0; v < n; v++ {
					if sub&(1<<uint(v)) != 0 {
						pset.Add(v)
					}
				}
				if c := Gamma1Excluding(g, sset, pset).Count(); c > inner {
					inner = c
				}
			}
			if sub == 0 {
				break
			}
		}
		if v := float64(inner) / float64(size); v < best {
			best = v
		}
	}
	return best
}

func TestExactUniqueMatchesBitsetGamma1(t *testing.T) {
	r := rng.New(11)
	g := gen.ErdosRenyi(9, 0.4, r)
	masks := adjMasks(g)
	// Cross-validate uniqueMask against Gamma1 on 100 random subsets.
	for trial := 0; trial < 100; trial++ {
		S := uint64(r.Intn(1 << 9))
		if S == 0 {
			continue
		}
		got := bits.OnesCount64(uniqueMask(masks, S) &^ S)
		sset := bitset.New(9)
		for v := 0; v < 9; v++ {
			if S&(1<<uint(v)) != 0 {
				sset.Add(v)
			}
		}
		want := Gamma1(g, sset).Count()
		if got != want {
			t.Fatalf("S=%b: uniqueMask=%d Gamma1=%d", S, got, want)
		}
	}
}

func TestExactBudgetLimits(t *testing.T) {
	// Σ C(30,k≤15) ≈ 5.4e8 work units exceeds the default budget, so the
	// flat paths refuse up front...
	if _, err := Exact(gen.Cycle(30), ObjOrdinary, Options{Alpha: 0.5, Recompute: true}); err == nil {
		t.Fatal("n=30 α=0.5 accepted by the flat path under default budget")
	}
	// ...while the branch-and-bound search cuts the space down and finishes
	// the same instance inside it: β(C30, k ≤ 15) = 2/15 (a contiguous arc).
	res, err := ExactOrdinary(gen.Cycle(30), 0.5)
	if err != nil {
		t.Fatalf("branch-and-bound rejected n=30 α=0.5: %v", err)
	}
	if math.Abs(res.Value-2.0/15) > 1e-12 {
		t.Fatalf("β(C30, k ≤ 15) = %g, want 2/15", res.Value)
	}
	// A smaller α fits even the flat paths (the cutoff shrinks the space).
	res, err = ExactOrdinary(gen.Cycle(30), 0.1)
	if err != nil {
		t.Fatalf("n=30 α=0.1 rejected: %v", err)
	}
	if math.Abs(res.Value-2.0/3) > 1e-12 {
		t.Fatalf("β(C30, k ≤ 3) = %g, want 2/3", res.Value)
	}
	// Wireless admits only the weak degree floor — useless on a cycle at
	// k ≥ 3 — so Σ C(n,k)·2^k still blows the budget mid-search at n=26.
	if _, err := ExactWireless(gen.Cycle(26), 0.5); err == nil {
		t.Fatal("n=26 accepted by exact wireless solver under default budget")
	} else if !errors.Is(err, ErrBudget) {
		t.Fatalf("wireless overrun not an ErrBudget: %v", err)
	}
	// An explicit budget bounds the search deterministically too.
	if _, err := Exact(gen.Cycle(22), ObjWireless, Options{RunOpts: runopts.RunOpts{Budget: 1 << 10}, Alpha: 0.5}); err == nil {
		t.Fatal("tiny explicit budget accepted")
	}
	if _, err := ExactOrdinary(gen.Cycle(10), 0.0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestWirelessOfSetSingleton(t *testing.T) {
	// For a single vertex S = {v}, βw of the set is deg(v).
	g := gen.Star(6)
	masks := adjMasks(g)
	inner, sub := WirelessOfSet(masks, 1<<0) // center
	if inner != 5 || sub != 1 {
		t.Fatalf("center: inner=%d sub=%b", inner, sub)
	}
	inner, _ = WirelessOfSet(masks, 1<<3) // a leaf
	if inner != 1 {
		t.Fatalf("leaf: inner=%d", inner)
	}
}

func TestResultArgSetConsistency(t *testing.T) {
	// The reported ArgSet/ArgInner must reproduce the reported value.
	g := gen.CPlus(5)
	res, err := ExactWireless(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	masks := adjMasks(g)
	inner := bits.OnesCount64(uniqueMask(masks, res.ArgInner) &^ res.ArgSet)
	got := float64(inner) / float64(bits.OnesCount64(res.ArgSet))
	if math.Abs(got-res.Value) > 1e-12 {
		t.Fatalf("witness reproduces %g, reported %g", got, res.Value)
	}
}
