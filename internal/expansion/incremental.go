package expansion

import (
	"math/bits"
	"sync"

	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// Revolving-door incremental kernels.
//
// Both enumeration kernels walk each chunk in revolving-door Gray-code
// order (bitset.RevolvingDoor): successive sets differ by one vertex out,
// one vertex in, so coverage state is maintained along the two swapped
// vertices' adjacency rows instead of being recomputed from all k members
// — O(deg(out)+deg(in)) per set (O(1) word operations for n ≤ 64) instead
// of O(k·⌈n/64⌉) plus a member-list rebuild.
//
// Determinism contract: a chunk covers the same rank interval as before
// (makeChunks is untouched; the revolving-door rank bijection replaces the
// colex one), and the per-chunk best is the (min numerator, numerically
// smallest witness) pair. The legacy kernels got that tie-break for free
// from colex order ("first strict improvement"); the incremental kernels
// compare witnesses explicitly on equal numerators, so the chunk winners —
// and hence the merged Result — are bit-identical to the recompute path at
// every worker count. Only Result.Pruned (and speed) may differ; the
// recompute kernels survive behind Options.Recompute as the correctness
// oracle, exactly as radio's StepScalar does for the word-parallel step.
//
// Per-worker scratch lives in a sync.Pool arena: the steady-state hot loop
// allocates nothing, and the only per-chunk allocations are the witness
// buffers that escape into the returned chunkBest (the big kernel hands
// them off and lazily replaces them, killing the per-improvement Clone).

// swapBatch is how many revolving-door swaps are pulled per NextBatch
// call; one call amortizes the enumerator's call overhead over a cache-
// friendly run of sets.
const swapBatch = 256

// incArena is the pooled per-worker scratch shared by both incremental
// kernels; each field is sized (or left nil) according to the kernel and
// objective that owns the pool.
type incArena struct {
	rd   *bitset.RevolvingDoor
	outs []int
	ins  []int

	// Small-kernel fused-walk state: the chunk-local c array of the uint64
	// fast lane (see smallIncKernel.run), and the wireless prune's
	// multiset of member degrees.
	crev     []int
	degCount []int32

	// Big-kernel state.
	cnt     []int32 // per-vertex coverage multiplicity |N(v) ∩ S|
	S       *bitset.Set
	members []int // wireless: sorted member list for the submask scan

	// Witness buffers. They escape into the returned chunkBest when the
	// chunk found a best, so run hands them off and niles them; the next
	// chunk on this arena re-allocates lazily (per chunk, not per
	// improvement).
	setBuf   *bitset.Set
	innerBuf *bitset.Set
}

// --- small incremental kernel: n ≤ 64 ---------------------------------------

// smallIncKernel evaluates objectives from six bit-sliced multiplicity
// planes: plane p holds bit p of every vertex's coverage count
// |N(v) ∩ S|, so a swap is two word-parallel ripple add/subtracts of the
// swapped vertices' adjacency masks, and each numerator is a handful of
// word operations — independent of both k and vertex degrees.
type smallIncKernel struct {
	masks []uint64
	deg   []int
	obj   Objective
	n     int
	prune bool
	pool  sync.Pool
}

func newSmallIncKernel(g *graph.Graph, obj Objective, prune bool) *smallIncKernel {
	n := g.N()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	kn := &smallIncKernel{masks: adjMasks(g), deg: deg, obj: obj, n: n,
		// Pruning can only skip the O(2^k) wireless inner scan; for the
		// other objectives the incremental numerator is a few word ops, so
		// the bound check would cost more than it saves.
		prune: prune && obj == ObjWireless}
	kn.pool.New = func() any {
		return &incArena{
			rd:       &bitset.RevolvingDoor{},
			crev:     make([]int, 66),
			degCount: make([]int32, 65),
		}
	}
	return kn
}

// planes is the bit-sliced counter bank: plane p holds bit p of every
// vertex's coverage count, and counts never exceed the maximum degree
// (≤ 63), so six planes always suffice and unused high planes stay zero —
// the evaluators OR all six unconditionally to stay branch-free. The
// ripple add/subtract is spelled out inline in the hot loops (the if-chain
// is past the inliner's budget as a function, and a call would force the
// planes out of registers).
type planes struct{ p0, p1, p2, p3, p4, p5 uint64 }

// incRow ripple-adds one to the counter of every vertex in row m — the
// reference form of the inlined hot-loop code, used on the cold init path.
func (pl *planes) incRow(m uint64) {
	old := pl.p0
	pl.p0 = old ^ m
	if m &= old; m == 0 {
		return
	}
	old = pl.p1
	pl.p1 = old ^ m
	if m &= old; m == 0 {
		return
	}
	old = pl.p2
	pl.p2 = old ^ m
	if m &= old; m == 0 {
		return
	}
	old = pl.p3
	pl.p3 = old ^ m
	if m &= old; m == 0 {
		return
	}
	old = pl.p4
	pl.p4 = old ^ m
	if m &= old; m == 0 {
		return
	}
	pl.p5 ^= m
}

// covered is the Γ⁻ numerator: vertices outside S with count ≥ 1.
func (pl *planes) covered(S uint64) int {
	return bits.OnesCount64((pl.p0 | pl.p1 | pl.p2 | pl.p3 | pl.p4 | pl.p5) &^ S)
}

// uniqueOut is the Γ¹ numerator: vertices outside S with count exactly 1.
func (pl *planes) uniqueOut(S uint64) int {
	return bits.OnesCount64(pl.p0 &^ (pl.p1 | pl.p2 | pl.p3 | pl.p4 | pl.p5) &^ S)
}

// cut is the edge-boundary numerator: Σ_{v∉S} count(v), the number of
// edges with exactly one endpoint in S, as a popcount-weighted plane sum.
func (pl *planes) cut(S uint64) int {
	return bits.OnesCount64(pl.p0&^S) +
		bits.OnesCount64(pl.p1&^S)<<1 +
		bits.OnesCount64(pl.p2&^S)<<2 +
		bits.OnesCount64(pl.p3&^S)<<3 +
		bits.OnesCount64(pl.p4&^S)<<4 +
		bits.OnesCount64(pl.p5&^S)<<5
}

func (kn *smallIncKernel) run(c chunk) chunkBest {
	ar := kn.pool.Get().(*incArena)
	defer kn.pool.Put(ar)
	rd := ar.rd
	rd.Reset(kn.n, c.k, c.start)
	if kn.obj == ObjWireless {
		return kn.runWireless(c, ar)
	}
	var pl planes
	S := rd.Mask()
	for _, v := range rd.Members() {
		pl.incRow(kn.masks[v])
	}
	var num int
	switch kn.obj {
	case ObjOrdinary:
		num = pl.covered(S)
	case ObjUnique:
		num = pl.uniqueOut(S)
	default: // ObjEdge
		num = pl.cut(S)
	}
	best := chunkBest{found: true, num: num, set: S, sets: 1}
	// The hot loop. Locals keep the six planes, the incumbent, and the
	// revolving door's fast lane in registers; the ripple add/subtract is
	// spelled out (see planes). The tie-break on the numerically smaller
	// witness is what the recompute kernel gets for free from its colex
	// walk; here it is what keeps chunk winners — and the merged Result —
	// bit-identical.
	//
	// The enumeration itself is fused into the loop — this is the uint64
	// fast lane of the revolving-door walk. bitset.RevolvingDoor stays the
	// reference implementation (the fuzz and differential tests pin the
	// two against each other via the recompute oracle): Algorithm R's easy
	// case R3 — only the smallest element slides, the overwhelmingly
	// common step — runs on a register copy of c[1], and the rare R4/R5
	// chain drops to revDoorHardStep on the chunk-local c array.
	cs := ar.crev[:c.k+2]
	copy(cs[1:], rd.Members())
	cs[c.k+1] = kn.n
	odd := c.k&1 == 1
	c1 := cs[1]
	p0, p1, p2, p3, p4, p5 := pl.p0, pl.p1, pl.p2, pl.p3, pl.p4, pl.p5
	bestNum, bestSet := best.num, best.set
	obj := kn.obj
	masks := kn.masks
	// c[1] lives in the register c1 throughout: the inlined j = 2 steps are
	// the only hard steps that touch it, and the j ≥ 3 chain reads and
	// writes positions 2..k only.
	for done := uint64(1); done < c.count; done++ {
		var u, v int
		if odd {
			if c1+1 < cs[2] {
				u = c1
				c1++
				v = c1
				S ^= 3 << uint(u) // adjacent swap: u out, u+1 in
			} else if c.k > 1 && cs[2] >= 2 {
				// R4 at j = 2 (invariant c[2] = c[1]+1 — the failed easy
				// test): move c[2] down onto c[1], pack c[1] to 0.
				u, v = cs[2], 0
				cs[2] = c1
				c1 = 0
				S ^= 1<<uint(u) | 1
			} else {
				var ok bool
				u, v, ok = revDoorHardStep(cs, c.k, 3, false)
				if !ok {
					break
				}
				S ^= 1<<uint(u) | 1<<uint(v)
			}
		} else {
			if c1 > 0 {
				u = c1
				c1--
				v = c1
				S ^= 3 << uint(v) // adjacent swap: v+1 out, v in
			} else if cs[2]+1 < cs[3] {
				// R5 at j = 2 (invariant c[1] = 0): move c[2] up, pulling
				// its old value down to position 1.
				u = 0
				c1 = cs[2]
				v = c1 + 1
				cs[2] = v
				S ^= 1 | 1<<uint(v)
			} else {
				var ok bool
				u, v, ok = revDoorHardStep(cs, c.k, 3, true)
				if !ok {
					break
				}
				S ^= 1<<uint(u) | 1<<uint(v)
			}
		}
		{
			// Ripple-subtract the outgoing row, ripple-add the incoming one.
			// The first four planes are updated unconditionally: a carry
			// check there is a data-dependent branch that mispredicts
			// constantly, while planes 4–5 fire only when some count crosses
			// 16 — a cheap, predictable guard. (A fused signed-digit walk
			// was measured slower: the two staggered chains pipeline better.)
			bw := masks[u]
			old := p0
			p0 = old ^ bw
			bw &^= old
			old = p1
			p1 = old ^ bw
			bw &^= old
			old = p2
			p2 = old ^ bw
			bw &^= old
			old = p3
			p3 = old ^ bw
			bw &^= old
			if bw != 0 {
				old = p4
				p4 = old ^ bw
				p5 ^= bw &^ old
			}
			cy := masks[v]
			old = p0
			p0 = old ^ cy
			cy &= old
			old = p1
			p1 = old ^ cy
			cy &= old
			old = p2
			p2 = old ^ cy
			cy &= old
			old = p3
			p3 = old ^ cy
			cy &= old
			if cy != 0 {
				old = p4
				p4 = old ^ cy
				p5 ^= cy & old
			}
		}
		var num int
		switch obj {
		case ObjOrdinary:
			num = bits.OnesCount64((p0 | p1 | p2 | p3 | p4 | p5) &^ S)
		case ObjUnique:
			num = bits.OnesCount64(p0 &^ (p1 | p2 | p3 | p4 | p5) &^ S)
		default: // ObjEdge
			num = bits.OnesCount64(p0&^S) +
				bits.OnesCount64(p1&^S)<<1 +
				bits.OnesCount64(p2&^S)<<2 +
				bits.OnesCount64(p3&^S)<<3 +
				bits.OnesCount64(p4&^S)<<4 +
				bits.OnesCount64(p5&^S)<<5
		}
		// The outer test is almost always false and predicts well; the
		// precise improve-or-smaller-witness split happens off the fast
		// path.
		if num <= bestNum {
			if num < bestNum || S < bestSet {
				bestNum, bestSet = num, S
			}
		}
		best.sets++
	}
	best.num, best.set = bestNum, bestSet
	return best
}

// revDoorHardStep is Algorithm R's R4/R5 chain on a raw chunk-local c
// array (c[1..k] increasing, c[k+1] = n sentinel) from position j on —
// the slow path of the small kernel's fused revolving-door walk (which
// inlines the j = 2 step), mirroring bitset.(*RevolvingDoor).nextHard.
// For j ≥ 3 the chain never touches c[1], which is why the caller can
// keep it in a register.
func revDoorHardStep(c []int, k, j int, tryDecrease bool) (out, in int, ok bool) {
	for ; j <= k; j++ {
		if tryDecrease {
			if c[j] >= j {
				out, in = c[j], j-2
				c[j] = c[j-1]
				c[j-1] = j - 2
				return out, in, true
			}
		} else if c[j]+1 < c[j+1] {
			out, in = j-2, c[j]+1
			c[j-1] = c[j]
			c[j]++
			return out, in, true
		}
		tryDecrease = !tryDecrease
	}
	return 0, 0, false
}

// runWireless keeps the 2^k inner submask scan (the objective itself is
// exponential in k) but rides the revolving-door walk for the set state
// and an incrementally maintained degree multiset for the branch-and-bound
// floor.
func (kn *smallIncKernel) runWireless(c chunk, ar *incArena) chunkBest {
	rd := ar.rd
	S := rd.Mask()
	degCount := ar.degCount
	clear(degCount)
	maxDeg := 0
	for _, v := range rd.Members() {
		degCount[kn.deg[v]]++
		if kn.deg[v] > maxDeg {
			maxDeg = kn.deg[v]
		}
	}
	best := chunkBest{}
	for done := uint64(0); ; {
		best.sets++
		if kn.prune && best.found && maxDeg-(c.k-1) > best.num {
			best.pruned++
		} else {
			num, inner := WirelessOfSet(kn.masks, S)
			if !best.found || num < best.num || (num == best.num && S < best.set) {
				best.found = true
				best.num = num
				best.set = S
				best.inner = inner
			}
		}
		if done++; done >= c.count {
			return best
		}
		out, in, ok := rd.Next()
		if !ok {
			return best
		}
		S ^= 1<<uint(out) | 1<<uint(in)
		dOut, dIn := kn.deg[out], kn.deg[in]
		degCount[dOut]--
		degCount[dIn]++
		if dIn > maxDeg {
			maxDeg = dIn
		} else if dOut == maxDeg && degCount[dOut] == 0 {
			for maxDeg > 0 && degCount[maxDeg] == 0 {
				maxDeg--
			}
		}
	}
}

// --- big incremental kernel: any n -------------------------------------------

// bigIncKernel maintains the per-vertex multiplicity array cover[] (how
// many members of S dominate each vertex) plus a running numerator,
// updated only along the swapped vertices' adjacency rows.
type bigIncKernel struct {
	rows  [][]int32     // CSR adjacency rows (shared, read-only)
	adj   []*bitset.Set // wireless only: bitset rows for the submask scan
	deg   []int
	obj   Objective
	n     int
	prune bool
	pool  sync.Pool
}

func newBigIncKernel(g *graph.Graph, obj Objective, prune bool) *bigIncKernel {
	n := g.N()
	kn := &bigIncKernel{rows: make([][]int32, n), deg: make([]int, n), obj: obj,
		n: n, prune: prune && obj == ObjWireless}
	for v := 0; v < n; v++ {
		kn.rows[v] = g.Neighbors(v)
		kn.deg[v] = g.Degree(v)
	}
	if obj == ObjWireless {
		kn.adj = make([]*bitset.Set, n)
		for v := 0; v < n; v++ {
			kn.adj[v] = bitset.New(n)
			for _, w := range g.Neighbors(v) {
				kn.adj[v].Add(int(w))
			}
		}
	}
	kn.pool.New = func() any {
		return &incArena{
			rd:       &bitset.RevolvingDoor{},
			outs:     make([]int, swapBatch),
			ins:      make([]int, swapBatch),
			cnt:      make([]int32, n),
			S:        bitset.New(n),
			degCount: make([]int32, n+1),
		}
	}
	return kn
}

func (kn *bigIncKernel) run(c chunk) chunkBest {
	ar := kn.pool.Get().(*incArena)
	defer kn.pool.Put(ar)
	ar.rd.Reset(kn.n, c.k, c.start)
	if kn.obj == ObjWireless {
		ar.S.Clear()
		best := kn.runWireless(c, ar)
		// Hand the witness buffers off: chunkBest escapes this run, so the
		// arena must not recycle them into the next chunk.
		if best.setBig != nil {
			ar.setBuf = nil
		}
		if best.innerBig != nil {
			ar.innerBuf = nil
		}
		return best
	}
	return kn.runCounting(c, ar)
}

// improve copies the current set (and wireless inner witness) into the
// chunk's lazily allocated witness buffers.
func (kn *bigIncKernel) improve(best *chunkBest, ar *incArena, num int, innerSub uint64) {
	best.found = true
	best.num = num
	if ar.setBuf == nil {
		ar.setBuf = bitset.New(kn.n)
	}
	ar.setBuf.Copy(ar.S)
	best.setBig = ar.setBuf
	if kn.obj != ObjWireless {
		return
	}
	if innerSub == 0 {
		best.innerBig = nil
		return
	}
	if ar.innerBuf == nil {
		ar.innerBuf = bitset.New(kn.n)
	}
	expandSubInto(ar.innerBuf, innerSub, ar.members)
	best.innerBig = ar.innerBuf
}

// b2i is the branchless bool→int the counting loops hinge on: the
// compiler lowers it to SETcc, so coverage transitions never mispredict.
func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// runCounting is the ordinary/unique/edge loop. It maintains cover[] and a
// membership-blind running total (|{w : cnt[w] ≥ 1}| for Γ⁻,
// |{w : cnt[w] = 1}| for Γ¹, the exact cut for edges) with branchless
// per-neighbor updates; the "\ S" part of the numerator is an O(k)
// correction over the member list, so the per-set cost stays
// O(deg(out) + deg(in) + k) with no data-dependent branches.
func (kn *bigIncKernel) runCounting(c chunk, ar *incArena) chunkBest {
	rd, cnt := ar.rd, ar.cnt
	obj := kn.obj
	clear(cnt)
	members := append(ar.members[:0], rd.Members()...)
	// total is membership-blind: coverage ≥1 (ordinary), coverage =1
	// (unique), or the exact edge cut.
	var total int32
	for _, v := range members {
		switch obj {
		case ObjOrdinary:
			for _, w := range kn.rows[v] {
				old := cnt[w]
				cnt[w] = old + 1
				total += b2i(old == 0)
			}
		case ObjUnique:
			for _, w := range kn.rows[v] {
				old := cnt[w]
				cnt[w] = old + 1
				total += b2i(old == 0) - b2i(old == 1)
			}
		default: // ObjEdge
			total += int32(kn.deg[v]) - 2*cnt[v]
			for _, w := range kn.rows[v] {
				cnt[w]++
			}
		}
	}
	// Two witness buffers alternate: one is built only on a strict
	// improvement or an exact tie (the rare paths), so the steady-state
	// loop never touches a bitset.
	if ar.setBuf == nil {
		ar.setBuf = bitset.New(kn.n)
	}
	if ar.innerBuf == nil {
		ar.innerBuf = bitset.New(kn.n)
	}
	bestSet, cand := ar.setBuf, ar.innerBuf
	buildSet := func(dst *bitset.Set) {
		dst.Clear()
		for _, v := range members {
			dst.Add(v)
		}
	}
	corr := int32(0)
	switch obj {
	case ObjOrdinary:
		for _, v := range members {
			corr += b2i(cnt[v] > 0)
		}
	case ObjUnique:
		for _, v := range members {
			corr += b2i(cnt[v] == 1)
		}
	}
	bestNum := int(total - corr)
	buildSet(bestSet)
	best := chunkBest{found: true, sets: 1}
	rows, outs, ins := kn.rows, ar.outs, ar.ins
	for done := uint64(1); done < c.count; {
		want := c.count - done
		if want > swapBatch {
			want = swapBatch
		}
		m := rd.NextBatch(outs[:want], ins[:want])
		if m == 0 {
			break
		}
		for i := 0; i < m; i++ {
			u, v := outs[i], ins[i]
			for j, x := range members {
				if x == u {
					members[j] = v
					break
				}
			}
			// Branchless row walks, then the O(k) membership correction.
			corr := int32(0)
			switch obj {
			case ObjOrdinary:
				for _, w := range rows[u] {
					nw := cnt[w] - 1
					cnt[w] = nw
					total -= b2i(nw == 0)
				}
				for _, w := range rows[v] {
					old := cnt[w]
					cnt[w] = old + 1
					total += b2i(old == 0)
				}
				for _, x := range members {
					corr += b2i(cnt[x] > 0)
				}
			case ObjUnique:
				for _, w := range rows[u] {
					old := cnt[w]
					cnt[w] = old - 1
					total += b2i(old == 2) - b2i(old == 1)
				}
				for _, w := range rows[v] {
					old := cnt[w]
					cnt[w] = old + 1
					total += b2i(old == 0) - b2i(old == 1)
				}
				for _, x := range members {
					corr += b2i(cnt[x] == 1)
				}
			default: // ObjEdge
				total -= int32(kn.deg[u]) - 2*cnt[u]
				for _, w := range rows[u] {
					cnt[w]--
				}
				total += int32(kn.deg[v]) - 2*cnt[v]
				for _, w := range rows[v] {
					cnt[w]++
				}
			}
			if n := int(total - corr); n < bestNum {
				bestNum = n
				buildSet(bestSet)
			} else if n == bestNum {
				buildSet(cand)
				if cand.Compare(bestSet) < 0 {
					bestSet, cand = cand, bestSet
				}
			}
		}
		done += uint64(m)
		best.sets += m
	}
	ar.members = members
	best.num = bestNum
	best.setBig = bestSet
	// Hand off only the winning buffer; the loser stays in the arena.
	if bestSet == ar.setBuf {
		ar.setBuf = nil
	} else {
		ar.innerBuf = nil
	}
	return best
}

// runWireless walks the chunk maintaining the sorted member list (the
// submask scan's compressed-mask order must match the recompute kernel's)
// and the degree multiset for the branch-and-bound floor; the 2^k inner
// scan itself is shared with the recompute kernel.
func (kn *bigIncKernel) runWireless(c chunk, ar *incArena) chunkBest {
	rd, S := ar.rd, ar.S
	rd.FillSet(S)
	ar.members = append(ar.members[:0], rd.Members()...)
	degCount := ar.degCount
	clear(degCount)
	maxDeg := 0
	for _, v := range ar.members {
		degCount[kn.deg[v]]++
		if kn.deg[v] > maxDeg {
			maxDeg = kn.deg[v]
		}
	}
	sc := &bigScratch{
		once:  bitset.New(kn.n),
		twice: bitset.New(kn.n),
		tmp:   bitset.New(kn.n),
	}
	best := chunkBest{}
	for done := uint64(0); ; {
		best.sets++
		if kn.prune && best.found && maxDeg-(c.k-1) > best.num {
			best.pruned++
		} else {
			sc.members = ar.members
			num, innerSub := wirelessScanBig(kn.adj, S, sc)
			if !best.found || num < best.num || (num == best.num && S.Compare(best.setBig) < 0) {
				kn.improve(&best, ar, num, innerSub)
			}
		}
		if done++; done >= c.count {
			return best
		}
		out, in, ok := rd.Next()
		if !ok {
			return best
		}
		S.Remove(out)
		S.Add(in)
		removeMember(&ar.members, out)
		insertMember(&ar.members, in)
		dOut, dIn := kn.deg[out], kn.deg[in]
		degCount[dOut]--
		degCount[dIn]++
		if dIn > maxDeg {
			maxDeg = dIn
		} else if dOut == maxDeg && degCount[dOut] == 0 {
			for maxDeg > 0 && degCount[maxDeg] == 0 {
				maxDeg--
			}
		}
	}
}

// removeMember deletes v from a sorted member list, preserving order.
func removeMember(members *[]int, v int) {
	m := *members
	for i, x := range m {
		if x == v {
			*members = append(m[:i], m[i+1:]...)
			return
		}
	}
}

// insertMember inserts v into a sorted member list, preserving order.
func insertMember(members *[]int, v int) {
	m := append(*members, v)
	i := len(m) - 1
	for i > 0 && m[i-1] > v {
		m[i] = m[i-1]
		i--
	}
	m[i] = v
	*members = m
}

// expandSubInto is expandSub into a reused buffer.
func expandSubInto(dst *bitset.Set, sub uint64, members []int) {
	dst.Clear()
	for rest := sub; rest != 0; rest &= rest - 1 {
		dst.Add(members[bits.TrailingZeros64(rest)])
	}
}
