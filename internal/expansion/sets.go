// Package expansion measures the three expansion notions of the paper on
// concrete graphs: ordinary expansion β (Section 2.1), unique-neighbor
// expansion βu, and wireless expansion βw (Section 2.2).
//
// Two regimes are supported. Exact solvers enumerate candidate sets by
// cardinality under a caller-supplied work budget (see Options and
// DefaultBudget) — any vertex count is accepted as long as Σ C(n,k) work
// units fit, with βw priced at 2^|S| per set because its inner
// optimization over S' ⊆ S is itself NP-hard, being the spokesman
// election problem. All of them fan over a chunked worker pool whose
// deterministic merge makes results bit-identical at every pool width.
// Beyond the budget, estimators sample adversarial set families (BFS
// balls, random k-sets, low-degree sets) and report certified one-sided
// bounds, labeled as such. See README.md in this directory for the engine
// design.
package expansion

import (
	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// Gamma returns Γ(S): the union of neighborhoods of vertices of S
// (including neighbors inside S), as a bitset over V(g).
func Gamma(g *graph.Graph, S *bitset.Set) *bitset.Set {
	out := bitset.New(g.N())
	S.ForEach(func(u int) {
		for _, w := range g.Neighbors(u) {
			out.Add(int(w))
		}
	})
	return out
}

// GammaMinus returns Γ⁻(S) = Γ(S) \ S, the external neighborhood.
func GammaMinus(g *graph.Graph, S *bitset.Set) *bitset.Set {
	out := Gamma(g, S)
	out.Subtract(S)
	return out
}

// Gamma1 returns Γ¹(S): the set of vertices outside S adjacent to exactly
// one vertex of S (the unique neighborhood, Section 2.1).
func Gamma1(g *graph.Graph, S *bitset.Set) *bitset.Set {
	once := bitset.New(g.N())
	twice := bitset.New(g.N())
	tmp := bitset.New(g.N())
	S.ForEach(func(u int) {
		tmp.Clear()
		for _, w := range g.Neighbors(u) {
			tmp.Add(int(w))
		}
		// twice |= once ∩ tmp ; once |= tmp
		overlap := once.Clone()
		overlap.Intersect(tmp)
		twice.Union(overlap)
		once.Union(tmp)
	})
	once.Subtract(twice)
	once.Subtract(S)
	return once
}

// Gamma1Excluding returns Γ¹_S(S'): the set of vertices outside S with a
// unique neighbor in S' (Section 2.1's S-excluding unique-neighborhood).
// S' must be a subset of S; the function does not verify this.
func Gamma1Excluding(g *graph.Graph, S, Sprime *bitset.Set) *bitset.Set {
	out := Gamma1(g, Sprime)
	out.Subtract(S)
	return out
}

// SetExpansion returns |Γ⁻(S)| / |S| for a nonempty S (0 for empty S).
func SetExpansion(g *graph.Graph, S *bitset.Set) float64 {
	c := S.Count()
	if c == 0 {
		return 0
	}
	return float64(GammaMinus(g, S).Count()) / float64(c)
}

// SetUniqueExpansion returns |Γ¹(S)| / |S| for a nonempty S.
func SetUniqueExpansion(g *graph.Graph, S *bitset.Set) float64 {
	c := S.Count()
	if c == 0 {
		return 0
	}
	return float64(Gamma1(g, S).Count()) / float64(c)
}

// adjMasks precomputes uint64 adjacency masks for graphs with n ≤ 64, the
// representation used by every exact solver.
func adjMasks(g *graph.Graph) []uint64 {
	if g.N() > 64 {
		panic("expansion: exact solvers require n <= 64")
	}
	masks := make([]uint64, g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			masks[v] |= 1 << uint(w)
		}
	}
	return masks
}
