package expansion

import (
	"math"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

func TestLambda2Complete(t *testing.T) {
	// K_n has spectrum {n−1, −1, ..., −1}: λ2 = −1.
	g := gen.Complete(10)
	res, err := Lambda2Regular(g, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-(-1)) > 1e-6 {
		t.Fatalf("K10 λ2 = %g, want -1", res.Lambda)
	}
}

func TestLambda2Cycle(t *testing.T) {
	// C_n has eigenvalues 2cos(2πk/n): λ2 = 2cos(2π/n).
	n := 12
	g := gen.Cycle(n)
	res, err := Lambda2Regular(g, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Cos(2*math.Pi/float64(n))
	if math.Abs(res.Lambda-want) > 1e-6 {
		t.Fatalf("C12 λ2 = %g, want %g", res.Lambda, want)
	}
}

func TestLambda2Hypercube(t *testing.T) {
	// Q_d has eigenvalues d−2k: λ2 = d−2.
	d := 4
	g := gen.Hypercube(d)
	res, err := Lambda2Regular(g, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-float64(d-2)) > 1e-6 {
		t.Fatalf("Q4 λ2 = %g, want %d", res.Lambda, d-2)
	}
}

func TestLambda2CompleteBipartite(t *testing.T) {
	// K_{m,m} (as torus? no — build directly): spectrum {m, 0, ..., 0, −m};
	// the second *largest* eigenvalue is 0, and the shifted iteration must
	// find it rather than −m.
	m := 5
	b := graph.NewBuilder(2 * m)
	for u := 0; u < m; u++ {
		for v := 0; v < m; v++ {
			b.MustAddEdge(u, m+v)
		}
	}
	res, err := Lambda2Regular(b.Build(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda) > 1e-6 {
		t.Fatalf("K_{5,5} λ2 = %g, want 0", res.Lambda)
	}
}

func TestLambda2RequiresRegular(t *testing.T) {
	if _, err := Lambda2Regular(gen.Star(5), rng.New(1)); err == nil {
		t.Fatal("irregular graph accepted")
	}
	if _, err := Lambda2Regular(gen.Complete(1), rng.New(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestSpectralGapMargulis(t *testing.T) {
	// The Margulis graph must have a clearly positive spectral gap.
	g := gen.Margulis(8)
	if reg, _ := g.IsRegular(); !reg {
		t.Skip("margulis instance not perfectly regular after dedup")
	}
	gap, err := SpectralGapRegular(g, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if gap < 0.5 {
		t.Fatalf("margulis gap = %g, want ≥ 0.5", gap)
	}
}

func TestEdgeCutAndMixing(t *testing.T) {
	g := gen.Complete(10)
	inS := make([]bool, 10)
	for v := 0; v < 5; v++ {
		inS[v] = true
	}
	cut := EdgeCut(g, inS)
	if cut != 25 {
		t.Fatalf("K10 half-cut = %d, want 25", cut)
	}
	// Alon–Spencer: cut ≥ (d−λ)|S||S̄|/n = (9−(−1))·25/10 = 25 (tight).
	lb := AlonSpencerLowerBound(10, 5, 9, -1)
	if cut < int(lb)-1 {
		t.Fatalf("mixing bound violated: cut=%d < %g", cut, lb)
	}
}

func TestAlonSpencerOnRandomRegular(t *testing.T) {
	r := rng.New(6)
	g, err := gen.RandomRegular(32, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lambda2Regular(g, r)
	if err != nil {
		t.Fatal(err)
	}
	// Check the mixing inequality on 50 random cuts.
	for trial := 0; trial < 50; trial++ {
		inS := make([]bool, 32)
		size := 0
		for v := range inS {
			if r.Bool() {
				inS[v] = true
				size++
			}
		}
		if size == 0 || size == 32 {
			continue
		}
		cut := EdgeCut(g, inS)
		lb := AlonSpencerLowerBound(32, size, 4, res.Lambda)
		if float64(cut) < lb-1e-9 {
			t.Fatalf("trial %d: cut=%d below Alon–Spencer bound %g (λ2=%g)",
				trial, cut, lb, res.Lambda)
		}
	}
}
