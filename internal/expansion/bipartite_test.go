package expansion

import (
	"math"
	"math/bits"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

func TestMinBipartiteExpansionSimple(t *testing.T) {
	// Two S-vertices sharing all 4 neighbors: singleton expansion 4,
	// pair expansion 2 → min = 2.
	bb := graph.NewBipartiteBuilder(2, 4)
	for v := 0; v < 4; v++ {
		bb.MustAddEdge(0, v)
		bb.MustAddEdge(1, v)
	}
	res, err := MinBipartiteExpansion(bb.Build())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("min expansion = %g, want 2", res.Value)
	}
	if bits.OnesCount64(res.ArgSet) != 2 {
		t.Fatalf("witness %b should be the pair", res.ArgSet)
	}
}

func TestMinBipartiteExpansionMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		b := gen.RandomBipartite(8, 12, 0.3, r)
		res, err := MinBipartiteExpansion(b)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Inf(1)
		var sub []int
		for mask := 1; mask < 1<<8; mask++ {
			sub = sub[:0]
			for u := 0; u < 8; u++ {
				if mask&(1<<uint(u)) != 0 {
					sub = append(sub, u)
				}
			}
			cov := float64(b.CoverSet(sub, nil)) / float64(len(sub))
			if cov < want {
				want = cov
			}
		}
		if math.Abs(res.Value-want) > 1e-12 {
			t.Fatalf("trial %d: gray=%g naive=%g", trial, res.Value, want)
		}
	}
}

func TestMinBipartiteExpansionValidation(t *testing.T) {
	if _, err := MinBipartiteExpansion(graph.NewBipartiteBuilder(0, 3).Build()); err == nil {
		t.Fatal("empty S accepted")
	}
	// A 2^70 enumeration can never fit the default budget.
	big := gen.RandomBipartite(70, 4, 0.1, rng.New(2))
	if _, err := MinBipartiteExpansion(big); err == nil {
		t.Fatal("|S|=70 full enumeration accepted under default budget")
	}
	// An explicit tiny budget rejects even small instances...
	small := gen.RandomBipartite(8, 12, 0.3, rng.New(3))
	if _, err := MinBipartiteExpansionOpts(small, Options{RunOpts: runopts.RunOpts{Budget: 16}}); err == nil {
		t.Fatal("budget 16 accepted a 2^8 enumeration")
	}
	// ...while a MaxK cutoff makes the large instance affordable.
	res, err := MinBipartiteExpansionOpts(big, Options{MaxK: 2})
	if err != nil {
		t.Fatalf("|S|=70 with MaxK=2 rejected: %v", err)
	}
	if res.Value <= 0 || math.IsInf(res.Value, 1) {
		t.Fatalf("suspicious min expansion %g", res.Value)
	}
}

func TestMinBipartiteExpansionBigPathMatchesGray(t *testing.T) {
	// Forcing the by-cardinality path (via a budget below 2^|S| but above
	// the Σ C(|S|,k) cost... easiest: MaxK = |S| with the gray path
	// disqualified by a tight budget) must reproduce the Gray-code result.
	r := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		b := gen.RandomBipartite(8, 12, 0.3, r)
		gray, err := MinBipartiteExpansion(b)
		if err != nil {
			t.Fatal(err)
		}
		// 2^8 = 256 > 255 ≥ Σ C(8,k) − 1... the subset count is 255, so a
		// budget of 255 forces the big path while still covering the flat
		// work (NoPrune keeps the full enumeration).
		big, err := MinBipartiteExpansionOpts(b, Options{RunOpts: runopts.RunOpts{Budget: 255}, NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gray.Value-big.Value) > 1e-12 {
			t.Fatalf("trial %d: gray=%g big=%g", trial, gray.Value, big.Value)
		}
		// A MaxK cutoff disqualifies the Gray walk and routes the default to
		// the branch-and-bound search; the flat path at the same cutoff is
		// its oracle.
		flat7, err := MinBipartiteExpansionOpts(b, Options{MaxK: 7, NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		bnb7, err := MinBipartiteExpansionOpts(b, Options{MaxK: 7})
		if err != nil {
			t.Fatal(err)
		}
		if flat7.Value != bnb7.Value || flat7.ArgSet != bnb7.ArgSet {
			t.Fatalf("trial %d: flat (%g,%b) != bnb (%g,%b)",
				trial, flat7.Value, flat7.ArgSet, bnb7.Value, bnb7.ArgSet)
		}
	}
}

func TestOrdinaryProfileCycle(t *testing.T) {
	// On a cycle the worst set of size k is an arc with expansion 2/k.
	g := gen.Cycle(12)
	p, err := OrdinaryProfile(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		want := 2.0 / float64(k)
		if math.Abs(p.MinExpansion[k]-want) > 1e-12 {
			t.Fatalf("profile[%d] = %g, want %g", k, p.MinExpansion[k], want)
		}
	}
	if math.Abs(p.Beta()-2.0/6.0) > 1e-12 {
		t.Fatalf("Beta() = %g", p.Beta())
	}
}

func TestOrdinaryProfileAgreesWithExact(t *testing.T) {
	r := rng.New(3)
	g := gen.ErdosRenyi(12, 0.3, r)
	p, err := OrdinaryProfile(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactOrdinary(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Beta()-exact.Value) > 1e-12 {
		t.Fatalf("profile β=%g exact β=%g", p.Beta(), exact.Value)
	}
}

func TestOrdinaryProfileValidation(t *testing.T) {
	g := gen.Cycle(10)
	if _, err := OrdinaryProfile(g, 0); err == nil {
		t.Fatal("maxK=0 accepted")
	}
	if _, err := OrdinaryProfile(g, 11); err == nil {
		t.Fatal("maxK>n accepted")
	}
	// C(40,20) ≈ 1.4e11 work units cannot fit the default budget on the
	// flat paths — but the branch-and-bound default prunes its way through:
	// every per-size minimum of a cycle is a union of arcs, found early.
	if _, err := Profile(gen.Cycle(40), ObjOrdinary, 20, Options{Recompute: true}); err == nil {
		t.Fatal("budget-exceeding flat profile accepted")
	}
	p, err := OrdinaryProfile(gen.Cycle(40), 20)
	if err != nil {
		t.Fatalf("branch-and-bound profile rejected: %v", err)
	}
	if got := p.MinExpansion[20]; math.Abs(got-2.0/20) > 1e-12 {
		t.Fatalf("β-profile(C40)[20] = %g, want 2/20", got)
	}
	// A small maxK fits even the flat paths.
	if _, err := OrdinaryProfile(gen.Cycle(40), 3); err != nil {
		t.Fatal("n=40 maxK=3 should fit the default budget")
	}
}

func TestEdgeExpansionKnown(t *testing.T) {
	// K_n: h = min over k ≤ n/2 of k(n−k)/k = n − n/2 = ⌈n/2⌉.
	res, err := EdgeExpansion(gen.Complete(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Fatalf("h(K8) = %g, want 4", res.Value)
	}
	// Cycle: an arc of maximal size n/2 has cut 2 → h = 2/(n/2).
	res, err = EdgeExpansion(gen.Cycle(12))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-2.0/6) > 1e-12 {
		t.Fatalf("h(C12) = %g", res.Value)
	}
}

func TestCheegerInequalityHolds(t *testing.T) {
	r := rng.New(4)
	for _, mk := range []func() *graph.Graph{
		func() *graph.Graph { return gen.Complete(10) },
		func() *graph.Graph { return gen.Cycle(14) },
		func() *graph.Graph { return gen.Hypercube(4) },
		func() *graph.Graph { g, _ := gen.RandomRegular(16, 4, r); return g },
	} {
		g := mk()
		_, d := g.IsRegular()
		spec, err := Lambda2Regular(g, r)
		if err != nil {
			t.Fatal(err)
		}
		h, err := EdgeExpansion(g)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := CheegerBounds(d, spec.Lambda)
		if h.Value < lo-1e-6 || h.Value > hi+1e-6 {
			t.Fatalf("%v: h=%g outside Cheeger bracket [%g, %g] (λ2=%g)",
				g, h.Value, lo, hi, spec.Lambda)
		}
	}
}

func TestEdgeExpansionValidation(t *testing.T) {
	if _, err := EdgeExpansion(gen.Complete(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
	// n=24 fits the default budget now (Σ C(24,k≤12) ≈ 2^23); n=80 with
	// k ≤ 40 does not.
	res, err := EdgeExpansion(gen.Cycle(24))
	if err != nil {
		t.Fatalf("n=24 rejected: %v", err)
	}
	if math.Abs(res.Value-2.0/12) > 1e-12 {
		t.Fatalf("h(C24) = %g, want %g", res.Value, 2.0/12)
	}
	// n=80 with k ≤ 40 overwhelms the flat enumeration but not the
	// branch-and-bound search: h(C80) = 2/40.
	if _, err := Exact(gen.Cycle(80), ObjEdge, Options{MaxK: 40, Recompute: true}); err == nil {
		t.Fatal("budget-exceeding flat n=80 accepted")
	}
	res, err = EdgeExpansion(gen.Cycle(80))
	if err != nil {
		t.Fatalf("branch-and-bound n=80 rejected: %v", err)
	}
	if math.Abs(res.Value-2.0/40) > 1e-12 {
		t.Fatalf("h(C80) = %g, want %g", res.Value, 2.0/40)
	}
}

func TestMinBipartiteExpansionOnCore(t *testing.T) {
	// Direct exact verification of Lemma 4.4(4) through the new solver:
	// core graph with s=16 has min expansion ≥ log 2s = 5. (Also exercised
	// in E5; here via the Gray-code path.)
	bb := graph.NewBipartiteBuilder(2, 2)
	bb.MustAddEdge(0, 0)
	bb.MustAddEdge(1, 1)
	res, err := MinBipartiteExpansion(bb.Build())
	if err != nil || res.Value != 1 {
		t.Fatalf("perfect matching expansion = %g", res.Value)
	}
}
