package expansion

import "wexp/internal/graph"

// ExactWirelessParallel computes the same value as ExactWireless. Both now
// fan the by-cardinality enumeration over the shared chunked worker pool
// with a deterministic merge (smallest-witness tie-break), so the two are
// bit-identical by construction at every worker count; this entry point
// survives for callers and benchmarks that want to name the parallel path
// explicitly.
//
// The legacy implementation partitioned the raw 2^n mask range by hand and
// had a degenerate-range bug class (bumping lo==0 to 1 could cross hi for
// small n and large GOMAXPROCS). The chunk builder emits only non-empty
// chunks and clamps the pool width to the chunk count, so that class is
// gone structurally.
func ExactWirelessParallel(g *graph.Graph, alpha float64) (Result, error) {
	return Exact(g, ObjWireless, Options{Alpha: alpha})
}
