package expansion

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"wexp/internal/graph"
)

// ExactWirelessParallel computes the same value as ExactWireless, fanning
// the outer enumeration over S across GOMAXPROCS workers. Each worker scans
// a contiguous mask range with a private best; merging orders candidates by
// (value, witness mask), which reproduces the serial solver's result
// exactly (the serial scan keeps the smallest mask among minimizers).
func ExactWirelessParallel(g *graph.Graph, alpha float64) (Result, error) {
	n := g.N()
	if n > maxExactWirelessN {
		return Result{}, fmt.Errorf("expansion: n=%d exceeds exact wireless limit %d", n, maxExactWirelessN)
	}
	maxSize := maxSetSize(n, alpha)
	if maxSize == 0 {
		return Result{}, fmt.Errorf("expansion: α=%g admits no nonempty set on n=%d", alpha, n)
	}
	masks := adjMasks(g)
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	total := uint64(1) << uint(n)
	if uint64(workers) > total {
		workers = int(total)
	}
	results := make([]Result, workers)
	var wg sync.WaitGroup
	chunk := total / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		hi := lo + chunk
		if w == workers-1 {
			hi = total
		}
		if lo == 0 {
			lo = 1
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			best := Result{Value: math.Inf(1)}
			for S := lo; S < hi; S++ {
				size := bits.OnesCount64(S)
				if size == 0 || size > maxSize {
					continue
				}
				inner, innerSet := WirelessOfSet(masks, S)
				ratio := float64(inner) / float64(size)
				best.Sets++
				if ratio < best.Value {
					best.Value = ratio
					best.ArgSet = S
					best.ArgInner = innerSet
				}
			}
			results[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	merged := Result{Value: math.Inf(1)}
	for _, r := range results {
		merged.Sets += r.Sets
		if r.Value < merged.Value ||
			(r.Value == merged.Value && r.ArgSet < merged.ArgSet) {
			sets := merged.Sets
			merged = r
			merged.Sets = sets
		}
	}
	return merged, nil
}
