package expansion

import (
	"fmt"
	"math"

	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// Profile computes the exact per-size expansion profile of the chosen
// objective through the engine: profile[k] = min over |S| = k of the
// objective ratio, for k = 1..maxK, enumerated by cardinality under opt's
// work budget. Because the engine tracks per-cardinality bests natively,
// a profile costs exactly one enumeration pass.
func Profile(g *graph.Graph, obj Objective, maxK int, opt Options) (*SizeProfile, error) {
	n := g.N()
	if maxK < 1 || maxK > n {
		return nil, fmt.Errorf("expansion: bad maxK %d", maxK)
	}
	out, err := solve(g, obj, maxK, opt, true)
	if err != nil {
		return nil, err
	}
	p := &SizeProfile{
		MinExpansion: make([]float64, maxK+1),
		ArgSets:      make([]uint64, maxK+1),
		Witnesses:    make([]*bitset.Set, maxK+1),
	}
	for k := 1; k <= maxK; k++ {
		c := &out.perK[k]
		if !c.found {
			p.MinExpansion[k] = math.Inf(1)
			continue
		}
		p.MinExpansion[k] = float64(c.num) / float64(k)
		var res Result
		fillWitness(&res, c, n)
		p.ArgSets[k] = res.ArgSet
		p.Witnesses[k] = res.Witness
	}
	return p, nil
}

// UniqueProfile computes the exact per-size unique-expansion profile:
// profile[k] = min{|Γ¹(S)|/|S| : |S| = k} for k = 1..maxK, under the
// default work budget.
func UniqueProfile(g *graph.Graph, maxK int) (*SizeProfile, error) {
	return Profile(g, ObjUnique, maxK, Options{})
}

// WirelessProfile computes the exact per-size wireless-expansion profile:
// profile[k] = min over |S| = k of max over S' ⊆ S of |Γ¹_S(S')|/|S|,
// under the default work budget (cost Σ C(n,k)·2^k).
func WirelessProfile(g *graph.Graph, maxK int) (*SizeProfile, error) {
	return Profile(g, ObjWireless, maxK, Options{})
}

// TripleProfile bundles the three per-size profiles for presentation: for
// every size k, the minimum β, βw, βu over sets of that size. The chain
// β ≥ βw ≥ βu of Observation 2.1 holds pointwise in k.
type TripleProfile struct {
	MaxK     int
	Ordinary []float64
	Wireless []float64
	Unique   []float64
}

// Profiles computes the TripleProfile under the default work budget (the
// βw pass dominates the cost).
func Profiles(g *graph.Graph, maxK int) (*TripleProfile, error) {
	return ProfilesOpts(g, maxK, Options{})
}

// ProfilesOpts is Profiles with an explicit work budget and pool width.
func ProfilesOpts(g *graph.Graph, maxK int, opt Options) (*TripleProfile, error) {
	po, err := Profile(g, ObjOrdinary, maxK, opt)
	if err != nil {
		return nil, err
	}
	pw, err := Profile(g, ObjWireless, maxK, opt)
	if err != nil {
		return nil, err
	}
	pu, err := Profile(g, ObjUnique, maxK, opt)
	if err != nil {
		return nil, err
	}
	return &TripleProfile{
		MaxK:     maxK,
		Ordinary: po.MinExpansion,
		Wireless: pw.MinExpansion,
		Unique:   pu.MinExpansion,
	}, nil
}

// AlphaPoint is one row of an AlphaSweep: the three expansion parameters at
// a given α (sets of size up to ⌊α·n⌋).
type AlphaPoint struct {
	Alpha    float64
	MaxSize  int
	Ordinary float64
	Wireless float64
	Unique   float64
}

// AlphaSweep evaluates the paper's α-parameterized definitions on a grid of
// α values, exactly, under the default work budget. Each β(α) is
// non-increasing in α by definition — the minimum runs over a growing
// family of sets.
func AlphaSweep(g *graph.Graph, alphas []float64) ([]AlphaPoint, error) {
	return AlphaSweepOpts(g, alphas, Options{})
}

// AlphaSweepOpts is AlphaSweep with explicit engine options (budget, pool
// width, cancellation context).
func AlphaSweepOpts(g *graph.Graph, alphas []float64, opt Options) ([]AlphaPoint, error) {
	n := g.N()
	maxK := 0
	for _, a := range alphas {
		if k := MaxSetSize(n, a); k > maxK {
			maxK = k
		}
	}
	if maxK == 0 {
		return nil, fmt.Errorf("expansion: no α admits a nonempty set")
	}
	tp, err := ProfilesOpts(g, maxK, opt)
	if err != nil {
		return nil, err
	}
	prefixMin := func(xs []float64, k int) float64 {
		m := math.Inf(1)
		for i := 1; i <= k && i < len(xs); i++ {
			if xs[i] < m {
				m = xs[i]
			}
		}
		return m
	}
	out := make([]AlphaPoint, 0, len(alphas))
	for _, a := range alphas {
		k := MaxSetSize(n, a)
		if k == 0 {
			continue
		}
		out = append(out, AlphaPoint{
			Alpha:    a,
			MaxSize:  k,
			Ordinary: prefixMin(tp.Ordinary, k),
			Wireless: prefixMin(tp.Wireless, k),
			Unique:   prefixMin(tp.Unique, k),
		})
	}
	return out, nil
}
