package expansion

import (
	"fmt"
	"math"
	"math/bits"

	"wexp/internal/graph"
)

// UniqueProfile computes the exact per-size unique-expansion profile:
// profile[k] = min{|Γ¹(S)|/|S| : |S| = k} for k = 1..maxK (n ≤ 20).
func UniqueProfile(g *graph.Graph, maxK int) (*SizeProfile, error) {
	n := g.N()
	if n > maxExactN {
		return nil, fmt.Errorf("expansion: n=%d exceeds exact limit %d", n, maxExactN)
	}
	if maxK < 1 || maxK > n {
		return nil, fmt.Errorf("expansion: bad maxK %d", maxK)
	}
	masks := adjMasks(g)
	p := &SizeProfile{
		MinExpansion: make([]float64, maxK+1),
		ArgSets:      make([]uint64, maxK+1),
	}
	for k := 1; k <= maxK; k++ {
		p.MinExpansion[k] = math.Inf(1)
	}
	for S := uint64(1); S < 1<<uint(n); S++ {
		k := bits.OnesCount64(S)
		if k > maxK {
			continue
		}
		uniq := uniqueMask(masks, S)
		ratio := float64(bits.OnesCount64(uniq)) / float64(k)
		if ratio < p.MinExpansion[k] {
			p.MinExpansion[k] = ratio
			p.ArgSets[k] = S
		}
	}
	return p, nil
}

// WirelessProfile computes the exact per-size wireless-expansion profile:
// profile[k] = min over |S| = k of max over S' ⊆ S of |Γ¹_S(S')|/|S|
// (n ≤ 16; cost Σ 3^n).
func WirelessProfile(g *graph.Graph, maxK int) (*SizeProfile, error) {
	n := g.N()
	if n > maxExactWirelessN {
		return nil, fmt.Errorf("expansion: n=%d exceeds exact wireless limit %d", n, maxExactWirelessN)
	}
	if maxK < 1 || maxK > n {
		return nil, fmt.Errorf("expansion: bad maxK %d", maxK)
	}
	masks := adjMasks(g)
	p := &SizeProfile{
		MinExpansion: make([]float64, maxK+1),
		ArgSets:      make([]uint64, maxK+1),
	}
	for k := 1; k <= maxK; k++ {
		p.MinExpansion[k] = math.Inf(1)
	}
	for S := uint64(1); S < 1<<uint(n); S++ {
		k := bits.OnesCount64(S)
		if k > maxK {
			continue
		}
		inner, _ := WirelessOfSet(masks, S)
		ratio := float64(inner) / float64(k)
		if ratio < p.MinExpansion[k] {
			p.MinExpansion[k] = ratio
			p.ArgSets[k] = S
		}
	}
	return p, nil
}

// TripleProfile bundles the three per-size profiles for presentation: for
// every size k, the minimum β, βw, βu over sets of that size. The chain
// β ≥ βw ≥ βu of Observation 2.1 holds pointwise in k.
type TripleProfile struct {
	MaxK     int
	Ordinary []float64
	Wireless []float64
	Unique   []float64
}

// Profiles computes the TripleProfile (n ≤ 16, the wireless limit).
func Profiles(g *graph.Graph, maxK int) (*TripleProfile, error) {
	po, err := OrdinaryProfile(g, maxK)
	if err != nil {
		return nil, err
	}
	pw, err := WirelessProfile(g, maxK)
	if err != nil {
		return nil, err
	}
	pu, err := UniqueProfile(g, maxK)
	if err != nil {
		return nil, err
	}
	return &TripleProfile{
		MaxK:     maxK,
		Ordinary: po.MinExpansion,
		Wireless: pw.MinExpansion,
		Unique:   pu.MinExpansion,
	}, nil
}

// AlphaPoint is one row of an AlphaSweep: the three expansion parameters at
// a given α (sets of size up to ⌊α·n⌋).
type AlphaPoint struct {
	Alpha    float64
	MaxSize  int
	Ordinary float64
	Wireless float64
	Unique   float64
}

// AlphaSweep evaluates the paper's α-parameterized definitions on a grid of
// α values, exactly (n ≤ 16). Each β(α) is non-increasing in α by
// definition — the minimum runs over a growing family of sets.
func AlphaSweep(g *graph.Graph, alphas []float64) ([]AlphaPoint, error) {
	n := g.N()
	maxK := 0
	for _, a := range alphas {
		if k := maxSetSize(n, a); k > maxK {
			maxK = k
		}
	}
	if maxK == 0 {
		return nil, fmt.Errorf("expansion: no α admits a nonempty set")
	}
	tp, err := Profiles(g, maxK)
	if err != nil {
		return nil, err
	}
	prefixMin := func(xs []float64, k int) float64 {
		m := math.Inf(1)
		for i := 1; i <= k && i < len(xs); i++ {
			if xs[i] < m {
				m = xs[i]
			}
		}
		return m
	}
	out := make([]AlphaPoint, 0, len(alphas))
	for _, a := range alphas {
		k := maxSetSize(n, a)
		if k == 0 {
			continue
		}
		out = append(out, AlphaPoint{
			Alpha:    a,
			MaxSize:  k,
			Ordinary: prefixMin(tp.Ordinary, k),
			Wireless: prefixMin(tp.Wireless, k),
			Unique:   prefixMin(tp.Unique, k),
		})
	}
	return out, nil
}
