package expansion

import (
	"testing"
	"testing/quick"

	"wexp/internal/bitset"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

func TestGammaBasics(t *testing.T) {
	g := gen.Path(5) // 0-1-2-3-4
	S := bitset.FromIndices(5, []int{2})
	if got := Gamma(g, S).Indices(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Γ({2}) = %v", got)
	}
	S = bitset.FromIndices(5, []int{1, 2})
	gm := GammaMinus(g, S)
	if got := gm.Indices(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("Γ⁻({1,2}) = %v", got)
	}
}

func TestGamma1Definition(t *testing.T) {
	// Star with center 0: Γ¹({0}) = all leaves; Γ¹({two leaves}) = ∅...
	// both leaves see only the center, which they cover twice.
	g := gen.Star(5)
	if got := Gamma1(g, bitset.FromIndices(5, []int{0})).Count(); got != 4 {
		t.Fatalf("Γ¹(center) = %d, want 4", got)
	}
	if got := Gamma1(g, bitset.FromIndices(5, []int{1, 2})).Count(); got != 0 {
		t.Fatalf("Γ¹(two leaves) = %d, want 0", got)
	}
	if got := Gamma1(g, bitset.FromIndices(5, []int{1})).Count(); got != 1 {
		t.Fatalf("Γ¹(one leaf) = %d, want 1", got)
	}
}

func TestGamma1ExcludingVsGamma1(t *testing.T) {
	// Γ¹_S(S) = Γ¹(S) (paper: "In particular, Γ¹(S) = Γ¹_S(S)").
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		g := gen.ErdosRenyi(12, 0.3, r)
		S := bitset.New(12)
		for v := 0; v < 12; v++ {
			if r.Bool() {
				S.Add(v)
			}
		}
		a := Gamma1Excluding(g, S, S)
		b := Gamma1(g, S)
		if !a.Equal(b) {
			t.Fatalf("Γ¹_S(S) ≠ Γ¹(S): %v vs %v", a.Indices(), b.Indices())
		}
	}
}

func TestSetExpansionValues(t *testing.T) {
	g := gen.Cycle(8)
	S := bitset.FromIndices(8, []int{0, 1, 2})
	if got := SetExpansion(g, S); got != 2.0/3.0 {
		t.Fatalf("arc expansion = %g", got)
	}
	if got := SetExpansion(g, bitset.New(8)); got != 0 {
		t.Fatalf("empty expansion = %g", got)
	}
	if got := SetUniqueExpansion(g, S); got != 2.0/3.0 {
		// Each endpoint of the arc has a unique external neighbor.
		t.Fatalf("arc unique expansion = %g", got)
	}
}

// Property: Γ¹(S) ⊆ Γ⁻(S) ⊆ Γ(S), and all avoid S itself except Γ.
func TestQuickGammaChain(t *testing.T) {
	r := rng.New(99)
	f := func(edges []uint16, picks []bool) bool {
		const n = 14
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(edges); i += 2 {
			u, v := int(edges[i])%n, int(edges[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		S := bitset.New(n)
		for v := 0; v < n && v < len(picks); v++ {
			if picks[v] {
				S.Add(v)
			}
		}
		g1 := Gamma1(g, S)
		gm := GammaMinus(g, S)
		gg := Gamma(g, S)
		if !g1.IsSubsetOf(gm) || !gm.IsSubsetOf(gg) {
			return false
		}
		return g1.Disjoint(S) && gm.Disjoint(S)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: |Γ¹(S)| computed by bitset equals a naive per-vertex count.
func TestQuickGamma1Naive(t *testing.T) {
	f := func(edges []uint16, picks []bool) bool {
		const n = 12
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(edges); i += 2 {
			u, v := int(edges[i])%n, int(edges[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		S := bitset.New(n)
		inS := make([]bool, n)
		for v := 0; v < n && v < len(picks); v++ {
			if picks[v] {
				S.Add(v)
				inS[v] = true
			}
		}
		naive := 0
		for v := 0; v < n; v++ {
			if inS[v] {
				continue
			}
			c := 0
			for _, w := range g.Neighbors(v) {
				if inS[w] {
					c++
				}
			}
			if c == 1 {
				naive++
			}
		}
		return Gamma1(g, S).Count() == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjMasksPanicsOver64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > 64")
		}
	}()
	adjMasks(gen.Cycle(65))
}
