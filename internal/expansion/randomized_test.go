package expansion

import (
	"encoding/json"
	"errors"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// sameRandomized asserts two randomized results are bit-identical in every
// observable field: answer, witnesses, evaluation count, AND the full
// certificate (failure probability, CI ends, trial count) — the randomized
// tier's worker-invariance contract covers the certificate bytes, not just
// the value.
func sameRandomized(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Value != b.Value || a.ArgSet != b.ArgSet || a.ArgInner != b.ArgInner {
		t.Fatalf("%s: answer differs: (%v,%b,%b) vs (%v,%b,%b)",
			label, a.Value, a.ArgSet, a.ArgInner, b.Value, b.ArgSet, b.ArgInner)
	}
	if (a.Witness == nil) != (b.Witness == nil) ||
		(a.Witness != nil && a.Witness.Compare(b.Witness) != 0) {
		t.Fatalf("%s: witness differs", label)
	}
	if a.Sets != b.Sets {
		t.Fatalf("%s: evaluation counts differ: %d vs %d", label, a.Sets, b.Sets)
	}
	aj, err1 := json.Marshal(a.Cert)
	bj, err2 := json.Marshal(b.Cert)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: marshal: %v / %v", label, err1, err2)
	}
	if string(aj) != string(bj) {
		t.Fatalf("%s: certificate bytes differ:\n  %s\n  %s", label, aj, bj)
	}
}

// TestRandomizedWorkerInvariance: every randomized artifact — verdict,
// witness, certificate bytes, trial counts — must be byte-identical at 1,
// 2, and 8 workers. Trials draw from pre-split per-trial streams and all
// planned trials always run, so scheduling is invisible.
func TestRandomizedWorkerInvariance(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		obj  Objective
		opt  RandOptions
	}{
		{"er24-ordinary", gen.ErdosRenyi(24, 0.2, rng.New(7)), ObjOrdinary,
			RandOptions{MaxK: 6, RunOpts: runopts.RunOpts{Seed: 1}}},
		{"er24-unique", gen.ErdosRenyi(24, 0.2, rng.New(7)), ObjUnique,
			RandOptions{MaxK: 6, RunOpts: runopts.RunOpts{Seed: 2}}},
		{"er80-big-ordinary", gen.ErdosRenyi(80, 0.1, rng.New(11)), ObjOrdinary,
			RandOptions{MaxK: 6, Samples: 64, RunOpts: runopts.RunOpts{Seed: 3}}},
		{"hypercube4-edge", gen.Hypercube(4), ObjEdge,
			RandOptions{MaxK: 6, RunOpts: runopts.RunOpts{Seed: 4}}},
	}
	for _, tc := range cases {
		opt := tc.opt
		opt.Workers = 1
		base, err := Randomized(tc.g, tc.obj, opt)
		if err != nil {
			t.Fatalf("%s: workers=1: %v", tc.name, err)
		}
		if base.Kernel != "randomized-ppsz" {
			t.Fatalf("%s: kernel = %s, want randomized-ppsz", tc.name, base.Kernel)
		}
		for _, w := range []int{2, 8} {
			opt.Workers = w
			r, err := Randomized(tc.g, tc.obj, opt)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", tc.name, w, err)
			}
			sameRandomized(t, tc.name, base, r)
		}
	}
}

// TestRandomizedMatchesExactCorpus is the differential acceptance gate: on
// every n ≤ 24 corpus instance, the randomized verdict must agree with the
// exact branch-and-bound oracle, and the certificate must be internally
// consistent (CILow ≤ Value = CIHigh, FailureProb within target). The run
// is deterministic (fixed seeds), so agreement here is agreement forever.
func TestRandomizedMatchesExactCorpus(t *testing.T) {
	r := rng.New(1234)
	corpus := []struct {
		name string
		g    *graph.Graph
	}{
		{"complete8", gen.Complete(8)},
		{"cycle16", gen.Cycle(16)},
		{"hypercube4", gen.Hypercube(4)},
		{"grid4x5", gen.Grid(4, 5)},
		{"tree4", gen.CompleteBinaryTree(4)},
		{"barbell8", gen.Barbell(8)},
		{"er18", gen.ErdosRenyi(18, 0.25, r)},
		{"er22", gen.ErdosRenyi(22, 0.2, r)},
		{"er24-sparse", gen.ErdosRenyi(24, 0.12, r)},
		{"er24-dense", gen.ErdosRenyi(24, 0.35, r)},
	}
	for _, tc := range corpus {
		n := tc.g.N()
		maxK := n / 3
		if maxK < 2 {
			maxK = 2
		}
		for _, obj := range []Objective{ObjOrdinary, ObjUnique, ObjEdge} {
			ex, err := Exact(tc.g, obj, Options{MaxK: maxK})
			if err != nil {
				t.Fatalf("%s/%v: exact: %v", tc.name, obj, err)
			}
			rd, err := Randomized(tc.g, obj, RandOptions{MaxK: maxK,
				RunOpts: runopts.RunOpts{Seed: 99}})
			if err != nil {
				t.Fatalf("%s/%v: randomized: %v", tc.name, obj, err)
			}
			if rd.Value != ex.Value {
				t.Fatalf("%s/%v: randomized %v != exact %v (certificate %+v)",
					tc.name, obj, rd.Value, ex.Value, rd.Cert)
			}
			c := rd.Cert
			if c.Kind != CertCertified && c.Kind != CertExact {
				t.Fatalf("%s/%v: certificate kind %q", tc.name, obj, c.Kind)
			}
			if c.Kind == CertCertified {
				if c.FailureProb > defaultRandFailure {
					t.Fatalf("%s/%v: failure %g exceeds target %g",
						tc.name, obj, c.FailureProb, defaultRandFailure)
				}
				if c.Trials <= 0 {
					t.Fatalf("%s/%v: certified with zero trials", tc.name, obj)
				}
			}
			if c.CIHigh != rd.Value || c.CILow > rd.Value {
				t.Fatalf("%s/%v: CI [%v,%v] inconsistent with value %v",
					tc.name, obj, c.CILow, c.CIHigh, rd.Value)
			}
		}
	}
}

// TestRandomizedExactWhenAllStrataSmall: when every cardinality fits the
// exhaustive cutoff the solver is a full enumeration and must say so —
// kind exact, zero failure, degenerate CI, and the exact engine's value.
func TestRandomizedExactWhenAllStrataSmall(t *testing.T) {
	g := gen.Hypercube(3) // C(8,k) ≤ 70 ≪ cutoff for all k
	for _, obj := range []Objective{ObjOrdinary, ObjUnique, ObjWireless, ObjEdge} {
		ex, err := Exact(g, obj, Options{Alpha: 0.5})
		if err != nil {
			t.Fatalf("%v: exact: %v", obj, err)
		}
		rd, err := Randomized(g, obj, RandOptions{Alpha: 0.5})
		if err != nil {
			t.Fatalf("%v: randomized: %v", obj, err)
		}
		if rd.Cert.Kind != CertExact {
			t.Fatalf("%v: kind = %q, want exact", obj, rd.Cert.Kind)
		}
		if rd.Cert.FailureProb != 0 || rd.Cert.Trials != 0 {
			t.Fatalf("%v: exhaustive result carries randomness: %+v", obj, rd.Cert)
		}
		if rd.Value != ex.Value || rd.ArgSet != ex.ArgSet {
			t.Fatalf("%v: (%v,%b) != exact (%v,%b)", obj, rd.Value, rd.ArgSet, ex.Value, ex.ArgSet)
		}
		if rd.Cert.CILow != rd.Value || rd.Cert.CIHigh != rd.Value {
			t.Fatalf("%v: exact CI should collapse to the value: %+v", obj, rd.Cert)
		}
	}
}

// TestRandomizedFrontierN200: the acceptance instance — n=200, k ≤ 8, far
// past the exact frontier (the B&B refuses under the default budget) — must
// come back certified with failure_prob ≤ 1e-9 inside the default budget.
func TestRandomizedFrontierN200(t *testing.T) {
	g := gen.ErdosRenyi(200, 0.08, rng.New(200))
	// Past the exact frontier: branch-and-bound blows the default budget.
	if _, err := Exact(g, ObjOrdinary, Options{MaxK: 8}); !errors.Is(err, ErrBudget) {
		t.Fatalf("exact on n=200 k≤8 should exceed the default budget, got %v", err)
	}
	res, err := Randomized(g, ObjOrdinary, RandOptions{MaxK: 8,
		RunOpts: runopts.RunOpts{Seed: 42}})
	if err != nil {
		t.Fatalf("randomized within default budget: %v", err)
	}
	c := res.Cert
	if c.Kind != CertCertified {
		t.Fatalf("kind = %q, want certified", c.Kind)
	}
	if c.FailureProb <= 0 || c.FailureProb > 1e-9 {
		t.Fatalf("failure_prob = %g, want (0, 1e-9]", c.FailureProb)
	}
	if c.Trials == 0 || res.Sets == 0 {
		t.Fatalf("no work recorded: %+v sets=%d", c, res.Sets)
	}
	if res.Witness == nil || res.Witness.Count() == 0 {
		t.Fatal("missing witness")
	}
	if c.CILow > res.Value || c.CIHigh != res.Value {
		t.Fatalf("CI [%v,%v] inconsistent with value %v", c.CILow, c.CIHigh, res.Value)
	}
}

// TestRandomizedBudgetRefusal: an infeasible plan must refuse up front with
// an ErrBudget-wrapped error, like the flat exact paths.
func TestRandomizedBudgetRefusal(t *testing.T) {
	g := gen.ErdosRenyi(100, 0.2, rng.New(5))
	_, err := Randomized(g, ObjWireless, RandOptions{MaxK: 30,
		RunOpts: runopts.RunOpts{Budget: 1 << 10}})
	if err == nil {
		t.Fatal("2^10 budget accepted a wireless k≤30 plan")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err %v does not wrap ErrBudget", err)
	}
}

// TestRandomizedSeedSensitivity: different seeds may walk different trials
// but both runs must produce sound (witnessed) values; and the same seed
// must reproduce the result bit-for-bit across calls.
func TestRandomizedSeedSensitivity(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.1, rng.New(17))
	a1, err := Randomized(g, ObjOrdinary, RandOptions{MaxK: 5, RunOpts: runopts.RunOpts{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Randomized(g, ObjOrdinary, RandOptions{MaxK: 5, RunOpts: runopts.RunOpts{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sameRandomized(t, "same-seed", a1, a2)
	ex, err := Exact(g, ObjOrdinary, Options{MaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{2, 3} {
		b, err := Randomized(g, ObjOrdinary, RandOptions{MaxK: 5, RunOpts: runopts.RunOpts{Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		if b.Value < ex.Value {
			t.Fatalf("seed %d: randomized %v below exact %v — witnessed upper bound broken",
				seed, b.Value, ex.Value)
		}
	}
}
