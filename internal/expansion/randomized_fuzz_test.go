package expansion

import (
	"testing"

	"wexp/internal/gen"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// FuzzRandomizedCertificate drives randomized graphs, objectives, size caps,
// seeds and pool widths through the randomized certified solver and requires
// that its verdict never contradicts the exact oracle:
//
//   - the Value is a witnessed upper bound, so it must never fall below the
//     exact optimum, on any input;
//   - when every stratum fits the exhaustive cutoff (always true here:
//     n ≤ 16 and k ≤ 4 keep C(n,k) ≤ C(16,4) = 1820 ≤ 2048) the solver is a
//     full enumeration and must reproduce the exact value bit-for-bit with
//     an exact-kind, zero-failure certificate — so the fuzz property is a
//     proof obligation, not a probabilistic one, and can never flake.
//
// The random-trial strata are exercised by the seeded differential corpus
// test instead (fixed seeds: deterministic, so CI-safe).
func FuzzRandomizedCertificate(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint8(9), uint8(3), uint8(0), uint8(3), uint8(1))
	f.Add(uint64(42), uint64(7), uint8(12), uint8(6), uint8(2), uint8(4), uint8(3))
	f.Add(uint64(7), uint64(99), uint8(5), uint8(1), uint8(3), uint8(2), uint8(8))
	f.Add(uint64(1234), uint64(0), uint8(16), uint8(2), uint8(1), uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, gseed, seed uint64, nRaw, pRaw, objRaw, kRaw, wRaw uint8) {
		n := 4 + int(nRaw)%13 // 4..16
		p := 0.1 + float64(pRaw%8)*0.1
		obj := allObjectives[objRaw%4]
		maxK := 1 + int(kRaw)%4 // 1..4: C(16,4)=1820 ≤ cutoff ⇒ all exhaustive
		if maxK > n {
			maxK = n
		}
		workers := 1 + int(wRaw)%8
		g := gen.ErdosRenyi(n, p, rng.New(gseed))
		oracle, err := Exact(g, obj, Options{MaxK: maxK})
		if err != nil {
			t.Fatalf("exact oracle: %v", err)
		}
		rd, err := Randomized(g, obj, RandOptions{MaxK: maxK,
			RunOpts: runopts.RunOpts{Workers: workers, Seed: seed}})
		if err != nil {
			t.Fatalf("randomized errored where oracle ran: %v", err)
		}
		if rd.Value < oracle.Value {
			t.Fatalf("randomized %v below exact %v — witnessed upper bound broken (cert %+v)",
				rd.Value, oracle.Value, rd.Cert)
		}
		if rd.Cert.Kind != CertExact {
			t.Fatalf("all-exhaustive strata must certify exact, got %q", rd.Cert.Kind)
		}
		if rd.Value != oracle.Value || rd.ArgSet != oracle.ArgSet {
			t.Fatalf("exhaustive randomized (%v,%b) != exact (%v,%b)",
				rd.Value, rd.ArgSet, oracle.Value, oracle.ArgSet)
		}
		if rd.Cert.FailureProb != 0 || rd.Cert.Trials != 0 {
			t.Fatalf("exhaustive certificate carries randomness: %+v", rd.Cert)
		}
	})
}
