package expansion

import (
	"math"
	"testing"

	"wexp/internal/bitset"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
)

func TestSampleSetsRespectAlpha(t *testing.T) {
	g := gen.Torus(8, 8)
	r := rng.New(1)
	sets := SampleSets(g, 0.25, 10, r)
	if len(sets) == 0 {
		t.Fatal("no sets sampled")
	}
	maxSize := int(0.25 * 64)
	for _, S := range sets {
		if len(S) == 0 || len(S) > maxSize {
			t.Fatalf("set size %d outside (0, %d]", len(S), maxSize)
		}
		seen := map[int]bool{}
		for _, v := range S {
			if v < 0 || v >= 64 || seen[v] {
				t.Fatalf("invalid set %v", S)
			}
			seen[v] = true
		}
	}
}

func TestSampleSetsDegenerate(t *testing.T) {
	if got := SampleSets(gen.Path(4), 0, 5, rng.New(1)); got != nil {
		t.Fatal("alpha=0 should produce nil")
	}
}

func TestEstimateOrdinaryUpperBoundsExact(t *testing.T) {
	// On a small graph, the sampled estimate must be ≥ the exact minimum
	// (it is an upper bound on β).
	r := rng.New(2)
	g := gen.ErdosRenyi(14, 0.3, r)
	exact, err := ExactOrdinary(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateOrdinary(g, 0.5, 30, r)
	if est.Bound < exact.Value-1e-9 {
		t.Fatalf("estimate %g below exact %g", est.Bound, exact.Value)
	}
	if est.Sampled == 0 || est.ArgSet == nil {
		t.Fatal("estimate missing metadata")
	}
}

func TestEstimateOrdinaryFindsCycleWeakness(t *testing.T) {
	// On a cycle the BFS-ball sampler finds an arc, whose expansion is
	// 2/|arc| — the true optimum.
	g := gen.Cycle(64)
	r := rng.New(3)
	est := EstimateOrdinary(g, 0.25, 40, r)
	want := 2.0 / 16.0
	if est.Bound > want+1e-9 {
		t.Fatalf("cycle estimate %g, want ≤ %g", est.Bound, want)
	}
}

func TestEstimateUnique(t *testing.T) {
	r := rng.New(4)
	g := gen.ErdosRenyi(14, 0.3, r)
	exact, err := ExactUnique(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateUnique(g, 0.5, 30, r)
	if est.Bound < exact.Value-1e-9 {
		t.Fatalf("unique estimate %g below exact %g", est.Bound, exact.Value)
	}
}

func TestWirelessBoundsBracket(t *testing.T) {
	r := rng.New(5)
	g := gen.Torus(6, 6)
	sets := SampleSets(g, 0.2, 10, r)
	solve := func(b *graph.Bipartite) int {
		return spokesman.BestDeterministic(b).Unique
	}
	lower, upper, argSet := WirelessBounds(g, sets, solve)
	if lower > upper+1e-9 {
		t.Fatalf("bracket inverted: [%g, %g]", lower, upper)
	}
	if math.IsInf(lower, 1) || argSet == nil {
		t.Fatal("no sets evaluated")
	}
	if lower <= 0 {
		t.Fatalf("torus wireless lower bound %g should be positive", lower)
	}
}

func TestWirelessBoundsAgainstExact(t *testing.T) {
	// For the specific sets sampled, the certified lower bound must not
	// exceed the exact wireless optimum of those sets.
	r := rng.New(6)
	g := gen.ErdosRenyi(12, 0.35, r)
	sets := SampleSets(g, 0.4, 8, r)
	solve := func(b *graph.Bipartite) int {
		sel, err := spokesman.Exhaustive(b)
		if err != nil {
			t.Fatal(err)
		}
		return sel.Unique
	}
	lower, _, _ := WirelessBounds(g, sets, solve)
	// Recompute with the library exact per-set solver and compare.
	masks := adjMasks(g)
	wantMin := math.Inf(1)
	for _, S := range sets {
		var mask uint64
		for _, v := range S {
			mask |= 1 << uint(v)
		}
		inner, _ := WirelessOfSet(masks, mask)
		if v := float64(inner) / float64(len(S)); v < wantMin {
			wantMin = v
		}
	}
	if math.Abs(lower-wantMin) > 1e-9 {
		t.Fatalf("exhaustive spokesman bracket %g != per-set exact %g", lower, wantMin)
	}
}

func TestLocalSearchPreservesSize(t *testing.T) {
	g := gen.Torus(5, 5)
	r := rng.New(7)
	S := []int{0, 1, 2, 7, 12}
	out := localSearchMinExpansion(g, S, r)
	if len(out) != len(S) {
		t.Fatalf("local search changed size: %d -> %d", len(S), len(out))
	}
	if ratioOrdinary(g, out) > ratioOrdinary(g, S)+1e-9 {
		t.Fatal("local search worsened the expansion")
	}
}

func TestRatioOrdinaryMatchesBitset(t *testing.T) {
	r := rng.New(8)
	g := gen.ErdosRenyi(20, 0.2, r)
	for trial := 0; trial < 30; trial++ {
		k := 1 + r.Intn(8)
		S := r.Choose(20, k)
		want := SetExpansion(g, fromIdx(20, S))
		if got := ratioOrdinary(g, S); math.Abs(got-want) > 1e-12 {
			t.Fatalf("ratio mismatch: %g vs %g", got, want)
		}
	}
}

func fromIdx(n int, idx []int) *bitset.Set {
	return bitset.FromIndices(n, idx)
}
