package expansion

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// Branch-and-bound search tree with deterministic frontier partitioning.
//
// The default exact path no longer walks every k-subset: it searches the
// prefix-decision tree whose node (k, t, P) stands for all k-sets S with
// S ∩ [0,t) = P, branching on whether vertex t joins S. Subtrees whose
// objective lower bound exceeds the incumbent are cut without being
// visited, which is what moves the exact frontier past the Σ C(n,k)
// enumeration wall.
//
// Determinism contract (the Bobpp-style partition): the tree is split at a
// fixed depth d(n,k) — a function of the instance only, never of the
// worker count — into one subproblem per feasible prefix class, and
// subproblems are solved independently:
//
//   - each subproblem runs serially, best-first (min-heap on the bound
//     with an insertion-sequence tie-break), pruning only against the
//     deterministic seed incumbent and its own local best — never against
//     a cross-worker shared incumbent;
//   - workers pull whole subproblems from an atomic cursor, and results
//     are merged in subproblem-index order with the engine's usual
//     smallest-witness tie-break.
//
// Every counter (Sets, Pruned, Visited, SubtreesPruned) is therefore a sum
// of per-subproblem deterministic quantities: bit-identical at any worker
// count, not just the Value/ArgSet/witnesses.
//
// Soundness of the merge: pruning is strict (a subtree dies only when its
// bound is strictly worse than an incumbent), so every set attaining the
// minimum — for its cardinality in per-k mode, globally in ratio mode —
// is visited, and the merged witness equals the full enumeration's
// numerically smallest minimizer bit-for-bit.
//
// Leaves reuse the revolving-door incremental kernels: once a subtree's
// completion count C(n−t, r) fits leafCap, its sets are enumerated in
// revolving-door order over the tail with the prefix coverage preloaded —
// O(deg(out)+deg(in)) per set, exactly the PR-5 machinery. The flat
// kernels survive behind Options.Recompute (oracle) and Options.NoPrune
// (full-enumeration semantics).

// ErrBudget reports that the branch-and-bound search ran out of work
// budget mid-search. Unlike the flat kernels — whose cost is known up
// front, so they refuse before starting — the search's cost depends on how
// well the bounds prune, so it charges work as it goes and aborts when the
// meter blows. Success or failure is still deterministic: the total charge
// is a sum of per-subproblem deterministic quantities, so whether it
// exceeds the budget cannot depend on scheduling. Callers distinguish the
// refusal with errors.Is(err, ErrBudget) and can retry with a larger
// Options.Budget.
var ErrBudget = errors.New("work budget exceeded")

const (
	// leafCap is the largest completion count C(n−t, r) evaluated as one
	// revolving-door leaf batch instead of being branched further.
	leafCap = 2048
	// bnbSubTarget is the aimed-for number of prefix-class subproblems per
	// cardinality — enough to load-balance any sane worker count while
	// keeping per-subproblem overhead negligible.
	bnbSubTarget = 192
	// bnbMaxDepth caps the split depth (2^depth classes are enumerated).
	bnbMaxDepth = 12
)

// workMeter is the shared work-budget accountant. Charges are per-leaf and
// per-expansion; the final total is scheduling-independent, so blowing the
// meter is a deterministic event even though the abort point inside a
// failing run is not (failing runs return ErrBudget and no counters).
type workMeter struct {
	used   atomic.Uint64
	blown  atomic.Bool
	budget uint64
}

func (m *workMeter) charge(w uint64) bool {
	if m.blown.Load() {
		return false
	}
	got := m.used.Add(w)
	if got < w || got > m.budget { // overflow or over budget
		m.blown.Store(true)
		return false
	}
	return true
}

// subproblem is one fixed-shape piece of the frontier: every k-set whose
// restriction to [0, depth) equals prefix. The list of subproblems is a
// pure function of (n, maxK) — never of workers or scheduling.
type subproblem struct {
	k      int
	depth  int
	prefix uint64 // members among [0, depth); depth ≤ bnbMaxDepth ≤ 64
}

// bnbClassCount returns the number of feasible prefix classes at depth d
// for cardinality k on n vertices.
func bnbClassCount(n, k, d int) uint64 {
	var c uint64
	for j := 0; j <= d && j <= k; j++ {
		if k-j <= n-d {
			c += binom(d, j)
		}
	}
	return c
}

// bnbDepth picks the split depth for cardinality k: deep enough to yield
// min(bnbSubTarget, C(n,k)/leafCap+1) subproblems, so tiny instances take
// a single-subproblem fast path and large ones balance any pool width.
func bnbDepth(n, k int) int {
	want := binom(n, k)/leafCap + 1
	if want > bnbSubTarget {
		want = bnbSubTarget
	}
	for d := 0; ; d++ {
		if d >= bnbMaxDepth || d >= n {
			return d
		}
		if bnbClassCount(n, k, d) >= want {
			return d
		}
	}
}

// bnbSubproblems materializes the deterministic subproblem list: for each
// cardinality in order, every feasible prefix class in increasing numeric
// mask order.
func bnbSubproblems(n, maxK int) []subproblem {
	var subs []subproblem
	for k := 1; k <= maxK; k++ {
		d := bnbDepth(n, k)
		for p := uint64(0); p < uint64(1)<<uint(d); p++ {
			j := bits.OnesCount64(p)
			if j <= k && k-j <= n-d {
				subs = append(subs, subproblem{k: k, depth: d, prefix: p})
			}
		}
	}
	return subs
}

// bnbNode is one open node of a subproblem's search: the k-sets S with
// S ∩ [0,t) = members, |S| = k (r = k − len(members) still to pick from
// [t,n)). members is immutable once pushed; exclude-children alias their
// parent's slice.
type bnbNode struct {
	bound   int32
	seq     int32 // insertion sequence — the deterministic heap tie-break
	t, r    int32
	members []int32
}

// nodeHeap is a binary min-heap on (bound, seq).
type nodeHeap []bnbNode

func nodeLess(a, b *bnbNode) bool {
	return a.bound < b.bound || (a.bound == b.bound && a.seq < b.seq)
}

func (h *nodeHeap) push(nd bnbNode) {
	*h = append(*h, nd)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nodeLess(&s[i], &s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *nodeHeap) pop() bnbNode {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = bnbNode{} // release the members slice
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && nodeLess(&s[l], &s[m]) {
			m = l
		}
		if r < len(s) && nodeLess(&s[r], &s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// satInt64 clamps a saturating uint64 count into int64 range.
func satInt64(u uint64) int64 {
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// addSat64 adds non-negative counts, saturating at MaxInt64 (C(120,60)
// alone overflows int64, so pruned-set counts must clamp).
func addSat64(a, b int64) int64 {
	s := a + b
	if s < a {
		return math.MaxInt64
	}
	return s
}

func lowMask(t int) uint64 {
	if t >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(t) - 1
}

// bnbArena is the pooled per-worker scratch of the search.
type bnbArena struct {
	rd       *bitset.RevolvingDoor
	heap     nodeHeap
	outs     []int
	ins      []int
	degCount []int32
	// big-representation state
	cnt     []int32
	S       *bitset.Set
	nbr     *bitset.Set
	pset    *bitset.Set
	sc      *bigScratch
	members []int
}

// bnbEngine holds the immutable per-solve state shared by all workers.
type bnbEngine struct {
	obj    Objective
	n      int
	maxK   int
	small  bool
	perK   bool
	budget uint64
	opt    Options

	masks []uint64      // small representation (n ≤ 64)
	adj   []*bitset.Set // big representation
	rows  [][]int32     // big counting updates
	deg   []int

	evalSmall  *smallKernel // single-set oracle evals (seed pass)
	evalBig    *bigKernel
	seedScr    *bigScratch
	seedSet    *bitset.Set // big-path seed evaluation set buffer
	rowScratch []int32     // small-path adjacency row decode buffer

	meter workMeter

	// Deterministic incumbents from the seed pass. seedNumK[k] is the best
	// numerator seen for cardinality k (math.MaxInt = none); seedNum/seedK
	// is the best ratio (seedK = 0 = none).
	seedNumK []int
	seedNum  int
	seedK    int
	seedSets int

	pool sync.Pool // *bnbArena
}

func newBnbEngine(g *graph.Graph, obj Objective, maxK int, opt Options, budget uint64, perK bool) *bnbEngine {
	n := g.N()
	e := &bnbEngine{
		obj: obj, n: n, maxK: maxK,
		small:  n <= 64 && !opt.forceBig,
		perK:   perK,
		budget: budget,
		opt:    opt,
		deg:    make([]int, n),
	}
	for v := 0; v < n; v++ {
		e.deg[v] = g.Degree(v)
	}
	if e.small {
		e.masks = adjMasks(g)
		e.evalSmall = &smallKernel{masks: e.masks, deg: e.deg, obj: obj, n: n}
	} else {
		bk := newBigKernel(g, obj, false)
		e.adj = bk.adj
		e.evalBig = bk
		e.rows = make([][]int32, n)
		for v := 0; v < n; v++ {
			e.rows[v] = g.Neighbors(v)
		}
		e.seedScr = &bigScratch{once: bitset.New(n), twice: bitset.New(n), tmp: bitset.New(n)}
	}
	e.seedNumK = make([]int, maxK+1)
	for k := range e.seedNumK {
		e.seedNumK[k] = math.MaxInt
	}
	e.meter.budget = budget
	e.pool.New = func() any {
		ar := &bnbArena{
			rd:   &bitset.RevolvingDoor{},
			outs: make([]int, swapBatch),
			ins:  make([]int, swapBatch),
		}
		if e.small {
			ar.degCount = make([]int32, 65)
		} else {
			ar.cnt = make([]int32, n)
			ar.S = bitset.New(n)
			ar.nbr = bitset.New(n)
			ar.pset = bitset.New(n)
			ar.degCount = make([]int32, n+1)
			ar.sc = &bigScratch{once: bitset.New(n), twice: bitset.New(n), tmp: bitset.New(n)}
		}
		return ar
	}
	return e
}

func (e *bnbEngine) budgetErr() error {
	return fmt.Errorf("expansion: exact %v branch-and-bound on n=%d (|S| ≤ %d): %w (budget %d); raise Options.Budget or lower α",
		e.obj, e.n, e.maxK, ErrBudget, e.budget)
}

func (e *bnbEngine) cancelled() bool {
	return e.opt.Ctx != nil && e.opt.Ctx.Err() != nil
}

// evalSet is the single-set oracle evaluation used by the seed pass and
// r = 0 leaves — the recompute kernels' eval, shared verbatim.
func (e *bnbEngine) evalSet(members []int, sc *bigScratch) (num int, innerSub uint64, mask uint64) {
	if e.small {
		var S uint64
		for _, v := range members {
			S |= 1 << uint(v)
		}
		num, inner := e.evalSmall.eval(S)
		return num, inner, S
	}
	sc.members = members
	if e.seedSet == nil {
		e.seedSet = bitset.New(e.n)
	}
	S := e.seedSet
	S.Clear()
	for _, v := range members {
		S.Add(v)
	}
	num, innerSub = e.evalBig.eval(S, sc)
	return num, innerSub, 0
}

// recordSeed folds one evaluated set into the deterministic incumbents.
func (e *bnbEngine) recordSeed(num, k int) {
	if num < e.seedNumK[k] {
		e.seedNumK[k] = num
	}
	if e.seedK == 0 || int64(num)*int64(e.seedK) < int64(e.seedNum)*int64(k) {
		e.seedNum, e.seedK = num, k
	}
}

// seedPass builds the incumbents every subproblem prunes against: for each
// start vertex, the BFS-ball prefixes of sizes 1..maxK are evaluated with
// the oracle kernel. No randomness — the incumbents, like everything else,
// are a pure function of the instance. The pass spends at most budget/8
// work units (charged against the shared meter) and stops early —
// deterministically — when that share is exhausted. Skipped entirely for
// βu, which admits no lower bound and so cannot prune.
func (e *bnbEngine) seedPass() error {
	if e.obj == ObjUnique {
		return nil
	}
	seedCap := e.budget/8 + 1
	var spent uint64
	mark := make([]bool, e.n)
	queue := make([]int, 0, e.n)
	order := make([]int, 0, e.maxK)
	for s := 0; s < e.n; s++ {
		for i := range mark {
			mark[i] = false
		}
		queue = append(queue[:0], s)
		mark[s] = true
		order = order[:0]
		for qi := 0; qi < len(queue) && len(order) < e.maxK; qi++ {
			v := queue[qi]
			order = append(order, v)
			for _, w := range e.rowOf(v) {
				if !mark[w] {
					mark[w] = true
					queue = append(queue, int(w))
				}
			}
		}
		for k := 1; k <= len(order); k++ {
			cost := setCost(e.obj, k)
			if cost > seedCap-spent {
				return nil // share exhausted: stop the whole pass
			}
			if !e.meter.charge(cost) {
				return e.budgetErr()
			}
			spent += cost
			num, _, _ := e.evalSet(order[:k], e.seedScratch())
			e.seedSets++
			e.recordSeed(num, k)
		}
	}
	return nil
}

func (e *bnbEngine) seedScratch() *bigScratch {
	if e.small {
		return nil
	}
	return e.seedScr
}

func (e *bnbEngine) rowOf(v int) []int32 {
	if e.rows != nil {
		return e.rows[v]
	}
	// Small path: adjacency rows were not kept; decode the mask.
	row := e.rowScratch[:0]
	for rest := e.masks[v]; rest != 0; rest &= rest - 1 {
		row = append(row, int32(bits.TrailingZeros64(rest)))
	}
	e.rowScratch = row
	return row
}

// prunable reports whether a lower bound b for sets of cardinality k is
// strictly beaten by an incumbent: the subproblem's local best (same k —
// direct comparison) or the seed incumbent (per-k numerator in per-k
// mode, exact cross-multiplied ratio in global mode). Strictness is what
// keeps every minimizer visited and the merged witness bit-identical to
// the full enumeration.
func (e *bnbEngine) prunable(b, k int, localFound bool, localNum int) bool {
	if localFound && b > localNum {
		return true
	}
	if e.perK {
		return e.seedNumK[k] != math.MaxInt && b > e.seedNumK[k]
	}
	return e.seedK != 0 && int64(b)*int64(e.seedK) > int64(e.seedNum)*int64(k)
}

// bound returns a sound lower bound on the objective numerator over every
// completion of the prefix: members ⊆ [0,t) chosen, the rest of [0,t)
// excluded, r more members to come from [t,n).
//
//   - every objective except βu admits the degree floor
//     maxdeg(P) − (k−1): some chosen vertex keeps that many neighbors
//     outside S, each of which contributes to Γ⁻, to the wireless inner
//     max (take S' = {v}), and to the edge cut;
//   - β and edge add the coverage bound: neighbors of P among the
//     excluded vertices are outside S for good, and at most r of P's
//     tail neighbors can still be absorbed into S — the rest are covered
//     (≥ 1 cut edge each for the edge objective);
//   - βu admits no bound (unique coverage can vanish for any prefix), so
//     its searches never prune — the tree machinery still runs for the
//     determinism contract and the leaf evaluators.
func (e *bnbEngine) bound(ar *bnbArena, members []int32, t, k, r int) int {
	if e.obj == ObjUnique || len(members) == 0 {
		return 0
	}
	maxDeg := 0
	for _, v := range members {
		if d := e.deg[v]; d > maxDeg {
			maxDeg = d
		}
	}
	b := maxDeg - (k - 1)
	if b < 0 {
		b = 0
	}
	if e.obj == ObjWireless {
		return b
	}
	var cb int
	if e.small {
		var pm, nbr uint64
		for _, v := range members {
			pm |= 1 << uint(v)
			nbr |= e.masks[v]
		}
		tm := lowMask(t)
		over := bits.OnesCount64(nbr&^tm) - r // tail neighbors beyond the absorbable r
		if over < 0 {
			over = 0
		}
		if e.obj == ObjOrdinary {
			cb = bits.OnesCount64(nbr&tm&^pm) + over
		} else { // ObjEdge: count edges into the excluded set, not vertices
			epe := 0
			exc := tm &^ pm
			for _, v := range members {
				epe += bits.OnesCount64(e.masks[v] & exc)
			}
			cb = epe + over
		}
	} else {
		nbr := ar.nbr
		nbr.Clear()
		for _, v := range members {
			nbr.Union(e.adj[v])
		}
		over := nbr.CountRange(t, e.n) - r
		if over < 0 {
			over = 0
		}
		if e.obj == ObjOrdinary {
			cov := nbr.CountRange(0, t)
			for _, v := range members {
				if nbr.Contains(int(v)) {
					cov--
				}
			}
			cb = cov + over
		} else { // ObjEdge
			pset := ar.pset
			pset.Clear()
			for _, v := range members {
				pset.Add(int(v))
			}
			epe := 0
			for _, v := range members {
				a := e.adj[v]
				epe += a.CountRange(0, t) - a.IntersectionCount(pset)
			}
			cb = epe + over
		}
	}
	if cb > b {
		b = cb
	}
	return b
}

// runSub solves one subproblem to completion: best-first over its part of
// the prefix tree, leaf batches in revolving-door order, all counters
// deterministic. Returns the subproblem's chunkBest (with visited/subtrees
// statistics folded in).
func (e *bnbEngine) runSub(sp subproblem, ar *bnbArena) (chunkBest, error) {
	best := chunkBest{}
	k := sp.k
	h := ar.heap[:0]
	defer func() { ar.heap = h[:0] }()
	seq := int32(0)
	push := func(members []int32, t, r int) {
		b := e.bound(ar, members, t, k, r)
		if e.prunable(b, k, best.found, best.num) {
			best.pruned = addSat64(best.pruned, satInt64(binom(e.n-t, r)))
			best.subtrees++
			return
		}
		h.push(bnbNode{bound: int32(b), seq: seq, t: int32(t), r: int32(r), members: members})
		seq++
	}

	root := make([]int32, 0, bits.OnesCount64(sp.prefix))
	for rest := sp.prefix; rest != 0; rest &= rest - 1 {
		root = append(root, int32(bits.TrailingZeros64(rest)))
	}
	push(root, sp.depth, k-len(root))

	for len(h) > 0 {
		if e.cancelled() {
			return best, e.opt.Ctx.Err()
		}
		if e.meter.blown.Load() {
			return best, e.budgetErr()
		}
		nd := h.pop()
		if e.prunable(int(nd.bound), k, best.found, best.num) {
			// The heap is bound-ordered and the incumbent only improves:
			// once the minimum is prunable, everything left is.
			best.pruned = addSat64(best.pruned, satInt64(binom(e.n-int(nd.t), int(nd.r))))
			best.subtrees++
			for i := range h {
				best.pruned = addSat64(best.pruned, satInt64(binom(e.n-int(h[i].t), int(h[i].r))))
				best.subtrees++
			}
			h = h[:0]
			break
		}
		if !e.meter.charge(1) {
			return best, e.budgetErr()
		}
		best.visited++
		t, r := int(nd.t), int(nd.r)
		if r == 0 || binom(e.n-t, r) <= leafCap {
			if err := e.leaf(&best, ar, nd.members, t, k, r); err != nil {
				return best, err
			}
			continue
		}
		// Branch on vertex t. Exclude first (shares the members slice),
		// include second; push order is fixed, so seq — and the heap's
		// tie-break — is deterministic.
		push(nd.members, t+1, r)
		inc := make([]int32, len(nd.members)+1)
		copy(inc, nd.members)
		inc[len(nd.members)] = int32(t)
		push(inc, t+1, r-1)
	}
	return best, nil
}

// leaf evaluates every completion of the prefix — C(n−t, r) sets — with
// the revolving-door incremental state preloaded with the prefix.
func (e *bnbEngine) leaf(best *chunkBest, ar *bnbArena, members []int32, t, k, r int) error {
	if e.small {
		if e.obj == ObjWireless {
			return e.leafSmallWireless(best, ar, members, t, k, r)
		}
		return e.leafSmallCount(best, ar, members, t, k, r)
	}
	if e.obj == ObjWireless {
		return e.leafBigWireless(best, ar, members, t, k, r)
	}
	return e.leafBigCount(best, ar, members, t, k, r)
}

// considerSmall folds one evaluated set into the subproblem best with the
// engine's (min numerator, numerically smallest witness) tie-break.
func considerSmall(best *chunkBest, num int, S, inner uint64) {
	if !best.found || num < best.num || (num == best.num && S < best.set) {
		best.found = true
		best.num = num
		best.set = S
		best.inner = inner
	}
}

// decRow ripple-subtracts one from the counter of every vertex in row m —
// the inverse of incRow.
func (pl *planes) decRow(m uint64) {
	old := pl.p0
	pl.p0 = old ^ m
	if m &^= old; m == 0 {
		return
	}
	old = pl.p1
	pl.p1 = old ^ m
	if m &^= old; m == 0 {
		return
	}
	old = pl.p2
	pl.p2 = old ^ m
	if m &^= old; m == 0 {
		return
	}
	old = pl.p3
	pl.p3 = old ^ m
	if m &^= old; m == 0 {
		return
	}
	old = pl.p4
	pl.p4 = old ^ m
	if m &^= old; m == 0 {
		return
	}
	pl.p5 ^= m
}

func (pl *planes) evalNum(obj Objective, S uint64) int {
	switch obj {
	case ObjOrdinary:
		return pl.covered(S)
	case ObjUnique:
		return pl.uniqueOut(S)
	default: // ObjEdge
		return pl.cut(S)
	}
}

func (e *bnbEngine) leafSmallCount(best *chunkBest, ar *bnbArena, members []int32, t, k, r int) error {
	m := e.n - t
	count := binom(m, r)
	if !e.meter.charge(count) {
		return e.budgetErr()
	}
	var pl planes
	var S uint64
	for _, v := range members {
		pl.incRow(e.masks[v])
		S |= 1 << uint(v)
	}
	rd := ar.rd
	rd.Reset(m, r, 0)
	for _, v := range rd.Members() {
		w := v + t
		pl.incRow(e.masks[w])
		S |= 1 << uint(w)
	}
	best.sets++
	considerSmall(best, pl.evalNum(e.obj, S), S, 0)
	for {
		out, in, ok := rd.Next()
		if !ok {
			return nil
		}
		pl.decRow(e.masks[out+t])
		pl.incRow(e.masks[in+t])
		S ^= 1<<uint(out+t) | 1<<uint(in+t)
		best.sets++
		considerSmall(best, pl.evalNum(e.obj, S), S, 0)
	}
}

func (e *bnbEngine) leafSmallWireless(best *chunkBest, ar *bnbArena, members []int32, t, k, r int) error {
	m := e.n - t
	degCount := ar.degCount
	clear(degCount)
	maxDeg := 0
	var S uint64
	for _, v := range members {
		degCount[e.deg[v]]++
		if e.deg[v] > maxDeg {
			maxDeg = e.deg[v]
		}
		S |= 1 << uint(v)
	}
	rd := ar.rd
	rd.Reset(m, r, 0)
	for _, v := range rd.Members() {
		w := v + t
		degCount[e.deg[w]]++
		if e.deg[w] > maxDeg {
			maxDeg = e.deg[w]
		}
		S |= 1 << uint(w)
	}
	cost := setCost(ObjWireless, k)
	var skipped uint64
	for {
		// The per-set degree floor rides the incrementally maintained
		// multiset, exactly as in the flat wireless kernels; a skipped set
		// is charged one unit, an evaluated one its full 2^k scan.
		if e.prunable(maxDeg-(k-1), k, best.found, best.num) {
			best.pruned = addSat64(best.pruned, 1)
			skipped++
		} else {
			if !e.meter.charge(cost) {
				return e.budgetErr()
			}
			num, inner := WirelessOfSet(e.masks, S)
			best.sets++
			considerSmall(best, num, S, inner)
		}
		out, in, ok := rd.Next()
		if !ok {
			break
		}
		u, w := out+t, in+t
		S ^= 1<<uint(u) | 1<<uint(w)
		dOut, dIn := e.deg[u], e.deg[w]
		degCount[dOut]--
		degCount[dIn]++
		if dIn > maxDeg {
			maxDeg = dIn
		} else if dOut == maxDeg && degCount[dOut] == 0 {
			for maxDeg > 0 && degCount[maxDeg] == 0 {
				maxDeg--
			}
		}
	}
	if skipped > 0 && !e.meter.charge(skipped) {
		return e.budgetErr()
	}
	return nil
}

// considerBig folds one evaluated set (the arena's S bitset) into the
// subproblem best. Witness buffers belong to the chunkBest — they escape
// into the merged results, so they are never pooled.
func (e *bnbEngine) considerBig(best *chunkBest, num int, S *bitset.Set, innerSub uint64, mem []int) {
	if best.found && (num > best.num || (num == best.num && S.Compare(best.setBig) >= 0)) {
		return
	}
	best.found = true
	best.num = num
	if best.setBig == nil {
		best.setBig = bitset.New(e.n)
	}
	best.setBig.Copy(S)
	if e.obj != ObjWireless {
		return
	}
	if innerSub == 0 {
		best.innerBig = nil
		return
	}
	if best.innerBig == nil {
		best.innerBig = bitset.New(e.n)
	}
	expandSubInto(best.innerBig, innerSub, mem)
}

func (e *bnbEngine) leafBigCount(best *chunkBest, ar *bnbArena, members []int32, t, k, r int) error {
	m := e.n - t
	count := binom(m, r)
	if !e.meter.charge(count) {
		return e.budgetErr()
	}
	obj := e.obj
	cnt := ar.cnt
	clear(cnt)
	mem := ar.members[:0]
	for _, v := range members {
		mem = append(mem, int(v))
	}
	rd := ar.rd
	rd.Reset(m, r, 0)
	for _, v := range rd.Members() {
		mem = append(mem, v+t)
	}
	S := ar.S
	S.Clear()
	var total int32
	for _, v := range mem {
		S.Add(v)
		switch obj {
		case ObjOrdinary:
			for _, w := range e.rows[v] {
				old := cnt[w]
				cnt[w] = old + 1
				total += b2i(old == 0)
			}
		case ObjUnique:
			for _, w := range e.rows[v] {
				old := cnt[w]
				cnt[w] = old + 1
				total += b2i(old == 0) - b2i(old == 1)
			}
		default: // ObjEdge
			total += int32(e.deg[v]) - 2*cnt[v]
			for _, w := range e.rows[v] {
				cnt[w]++
			}
		}
	}
	corr := func() int32 {
		c := int32(0)
		switch obj {
		case ObjOrdinary:
			for _, v := range mem {
				c += b2i(cnt[v] > 0)
			}
		case ObjUnique:
			for _, v := range mem {
				c += b2i(cnt[v] == 1)
			}
		}
		return c
	}
	best.sets++
	e.considerBig(best, int(total-corr()), S, 0, mem)
	for done := uint64(1); done < count; {
		want := count - done
		if want > swapBatch {
			want = swapBatch
		}
		bm := rd.NextBatch(ar.outs[:want], ar.ins[:want])
		if bm == 0 {
			break
		}
		for i := 0; i < bm; i++ {
			u, v := ar.outs[i]+t, ar.ins[i]+t
			for j, x := range mem {
				if x == u {
					mem[j] = v
					break
				}
			}
			switch obj {
			case ObjOrdinary:
				for _, w := range e.rows[u] {
					nw := cnt[w] - 1
					cnt[w] = nw
					total -= b2i(nw == 0)
				}
				for _, w := range e.rows[v] {
					old := cnt[w]
					cnt[w] = old + 1
					total += b2i(old == 0)
				}
			case ObjUnique:
				for _, w := range e.rows[u] {
					old := cnt[w]
					cnt[w] = old - 1
					total += b2i(old == 2) - b2i(old == 1)
				}
				for _, w := range e.rows[v] {
					old := cnt[w]
					cnt[w] = old + 1
					total += b2i(old == 0) - b2i(old == 1)
				}
			default: // ObjEdge
				total -= int32(e.deg[u]) - 2*cnt[u]
				for _, w := range e.rows[u] {
					cnt[w]--
				}
				total += int32(e.deg[v]) - 2*cnt[v]
				for _, w := range e.rows[v] {
					cnt[w]++
				}
			}
			S.Remove(u)
			S.Add(v)
			best.sets++
			e.considerBig(best, int(total-corr()), S, 0, mem)
		}
		done += uint64(bm)
	}
	ar.members = mem
	return nil
}

func (e *bnbEngine) leafBigWireless(best *chunkBest, ar *bnbArena, members []int32, t, k, r int) error {
	m := e.n - t
	degCount := ar.degCount
	clear(degCount)
	maxDeg := 0
	mem := ar.members[:0]
	for _, v := range members {
		mem = append(mem, int(v))
	}
	rd := ar.rd
	rd.Reset(m, r, 0)
	for _, v := range rd.Members() {
		mem = append(mem, v+t)
	}
	S := ar.S
	S.Clear()
	for _, v := range mem {
		S.Add(v)
		degCount[e.deg[v]]++
		if e.deg[v] > maxDeg {
			maxDeg = e.deg[v]
		}
	}
	cost := setCost(ObjWireless, k)
	var skipped uint64
	for {
		if e.prunable(maxDeg-(k-1), k, best.found, best.num) {
			best.pruned = addSat64(best.pruned, 1)
			skipped++
		} else {
			if !e.meter.charge(cost) {
				return e.budgetErr()
			}
			ar.sc.members = mem
			num, innerSub := wirelessScanBig(e.adj, S, ar.sc)
			best.sets++
			e.considerBig(best, num, S, innerSub, mem)
		}
		out, in, ok := rd.Next()
		if !ok {
			break
		}
		u, w := out+t, in+t
		S.Remove(u)
		S.Add(w)
		removeMember(&mem, u)
		insertMember(&mem, w)
		dOut, dIn := e.deg[u], e.deg[w]
		degCount[dOut]--
		degCount[dIn]++
		if dIn > maxDeg {
			maxDeg = dIn
		} else if dOut == maxDeg && degCount[dOut] == 0 {
			for maxDeg > 0 && degCount[maxDeg] == 0 {
				maxDeg--
			}
		}
	}
	ar.members = mem
	if skipped > 0 && !e.meter.charge(skipped) {
		return e.budgetErr()
	}
	return nil
}

// bnbSolve runs the full search: seed pass, deterministic subproblem
// partition, worker pool, index-order merge. perK selects per-cardinality
// incumbents (Profile needs the exact best for every k) over the stronger
// global-ratio incumbent (Exact only needs the overall minimum).
func bnbSolve(g *graph.Graph, obj Objective, maxK int, opt Options, budget uint64, perK bool) (*engineOut, error) {
	e := newBnbEngine(g, obj, maxK, opt, budget, perK)
	if err := e.seedPass(); err != nil {
		return nil, err
	}
	subs := bnbSubproblems(e.n, maxK)
	workers := opt.Workers
	if workers <= 0 {
		workers = poolWidth()
	}
	if workers > len(subs) {
		workers = len(subs)
	}
	results := make([]chunkBest, len(subs))
	var (
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	runOne := func(i int) {
		ar := e.pool.Get().(*bnbArena)
		best, err := e.runSub(subs[i], ar)
		e.pool.Put(ar)
		if err != nil {
			fail(err)
			return
		}
		results[i] = best
	}
	if workers <= 1 {
		for i := range subs {
			if e.cancelled() {
				return nil, e.opt.Ctx.Err()
			}
			if failed.Load() {
				break
			}
			runOne(i)
		}
	} else {
		var cursor atomic.Int64
		cursor.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !failed.Load() && !e.cancelled() {
					i := int(cursor.Add(1))
					if i >= len(subs) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	if e.cancelled() {
		return nil, e.opt.Ctx.Err()
	}
	if failed.Load() {
		return nil, firstErr
	}
	kernel := "big-bnb"
	if e.small {
		kernel = "small-bnb"
	}
	out := &engineOut{n: e.n, maxK: maxK, kernel: kernel, perK: make([]chunkBest, maxK+1)}
	out.sets = e.seedSets
	for i := range results {
		r := &results[i]
		out.sets += r.sets
		out.prun = addSat64(out.prun, r.pruned)
		out.visited += r.visited
		out.subtrees += r.subtrees
		if !r.found {
			continue
		}
		k := subs[i].k
		bst := &out.perK[k]
		if !bst.found || r.num < bst.num ||
			(r.num == bst.num && witnessLess(r, bst)) {
			out.perK[k] = *r
			out.perK[k].sets, out.perK[k].pruned = 0, 0
			out.perK[k].visited, out.perK[k].subtrees = 0, 0
		}
	}
	return out, nil
}
