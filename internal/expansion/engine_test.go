package expansion

import (
	"math"
	"math/bits"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// TestExactLargeN72 is the acceptance check for the size-agnostic engine:
// all three solvers on an n = 72 sparse graph (a cycle), under an explicit
// work budget, with known closed-form answers for k ≤ 3 (arcs are the
// minimizers: β = βw = 2/3, βu = 2/3 at the 3-arc).
func TestExactLargeN72(t *testing.T) {
	g := gen.Cycle(72)
	opt := Options{RunOpts: runopts.RunOpts{Budget: 1 << 22}, Alpha: 3.0 / 72.0}

	res, err := Exact(g, ObjOrdinary, opt)
	if err != nil {
		t.Fatalf("ordinary n=72: %v", err)
	}
	if math.Abs(res.Value-2.0/3) > 1e-12 {
		t.Fatalf("β(C72, k ≤ 3) = %g, want 2/3", res.Value)
	}
	if res.Witness == nil || res.Witness.Count() != 3 {
		t.Fatalf("witness %v should be a 3-arc", res.Witness)
	}
	// A 3-arc's external neighborhood really is 2.
	if got := GammaMinus(g, res.Witness).Count(); got != 2 {
		t.Fatalf("witness external neighborhood = %d, want 2", got)
	}

	resU, err := Exact(g, ObjUnique, opt)
	if err != nil {
		t.Fatalf("unique n=72: %v", err)
	}
	if math.Abs(resU.Value-2.0/3) > 1e-12 {
		t.Fatalf("βu(C72, k ≤ 3) = %g, want 2/3", resU.Value)
	}

	resW, err := Exact(g, ObjWireless, opt)
	if err != nil {
		t.Fatalf("wireless n=72: %v", err)
	}
	if math.Abs(resW.Value-2.0/3) > 1e-12 {
		t.Fatalf("βw(C72, k ≤ 3) = %g, want 2/3", resW.Value)
	}
	if resW.InnerWitness == nil || !resW.InnerWitness.IsSubsetOf(resW.Witness) {
		t.Fatal("inner witness must be a subset of the witness")
	}
	// Observation 2.1 on the large-n path.
	if res.Value < resW.Value-1e-9 || resW.Value < resU.Value-1e-9 {
		t.Fatalf("ordering violated at n=72: β=%g βw=%g βu=%g", res.Value, resW.Value, resU.Value)
	}

	// The same run without the explicit budget headroom must be refused:
	// the work (62,196 sets for β) exceeds a 1<<10 budget.
	if _, err := Exact(g, ObjOrdinary, Options{RunOpts: runopts.RunOpts{Budget: 1 << 10}, Alpha: 3.0 / 72.0}); err == nil {
		t.Fatal("n=72 accepted under a 1<<10 budget")
	}
}

// TestBigPathMatchesSmallPath is the regression guard demanded by the
// engine rewrite: the bitset (large-n) kernel must reproduce the uint64
// kernel bit-for-bit — Value, ArgSet, ArgInner, and Sets — on every graph
// both accept.
func TestBigPathMatchesSmallPath(t *testing.T) {
	r := rng.New(20180216)
	for n := 8; n <= 16; n++ {
		g := gen.ErdosRenyi(n, 0.35, r)
		for _, obj := range []Objective{ObjOrdinary, ObjUnique, ObjWireless, ObjEdge} {
			alpha := 0.5
			if obj == ObjWireless && n >= 14 {
				// Cap the 2^|S|-per-set cost so the bitset kernel stays
				// test-sized; the order/tie-break logic is identical at
				// every cardinality.
				alpha = 0.3
			}
			opt := Options{Alpha: alpha}
			small, err1 := Exact(g, obj, opt)
			opt.forceBig = true
			big, err2 := Exact(g, obj, opt)
			if err1 != nil || err2 != nil {
				t.Fatalf("n=%d %v: errors %v / %v", n, obj, err1, err2)
			}
			if small.Value != big.Value {
				t.Fatalf("n=%d %v: value %g != %g", n, obj, small.Value, big.Value)
			}
			if small.ArgSet != big.ArgSet {
				t.Fatalf("n=%d %v: witness %b != %b", n, obj, small.ArgSet, big.ArgSet)
			}
			if small.ArgInner != big.ArgInner {
				t.Fatalf("n=%d %v: inner %b != %b", n, obj, small.ArgInner, big.ArgInner)
			}
			if small.Sets != big.Sets {
				t.Fatalf("n=%d %v: sets %d != %d", n, obj, small.Sets, big.Sets)
			}
			if big.Witness == nil || toMask(big.Witness) != small.ArgSet {
				t.Fatalf("n=%d %v: bitset witness disagrees with mask", n, obj)
			}
		}
	}
}

// TestWorkerCountInvariance: the deterministic merge must make the result
// — including the witness and the Sets counter — identical at every pool
// width, for every objective. This subsumes the legacy serial-vs-parallel
// cross-check and extends it from βw to all solvers.
func TestWorkerCountInvariance(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 6; trial++ {
		g := gen.ErdosRenyi(11, 0.3, r)
		for _, obj := range []Objective{ObjOrdinary, ObjUnique, ObjWireless} {
			for _, alpha := range []float64{0.25, 0.5, 1.0} {
				serial, err1 := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: 1}, Alpha: alpha})
				if err1 != nil {
					t.Fatal(err1)
				}
				for _, w := range []int{2, 3, 8, 64} {
					par, err2 := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: alpha})
					if err2 != nil {
						t.Fatal(err2)
					}
					if serial.Value != par.Value || serial.ArgSet != par.ArgSet ||
						serial.ArgInner != par.ArgInner || serial.Sets != par.Sets {
						t.Fatalf("trial %d %v α=%g workers=%d: (%g,%b,%b,%d) != (%g,%b,%b,%d)",
							trial, obj, alpha, w,
							serial.Value, serial.ArgSet, serial.ArgInner, serial.Sets,
							par.Value, par.ArgSet, par.ArgInner, par.Sets)
					}
				}
			}
		}
	}
}

// TestDegeneratePoolRanges: tiny graphs with pool widths far above the
// chunk count — the regression class of the legacy parallel.go, where a
// chunk boundary could produce lo ≥ hi.
func TestDegeneratePoolRanges(t *testing.T) {
	for n := 3; n <= 6; n++ {
		g := gen.Cycle(n)
		for _, w := range []int{1, 7, 16, 1024} {
			// NoPrune selects the flat full enumeration, whose Sets count is
			// the whole space — the property the pool partition must preserve.
			res, err := Exact(g, ObjWireless, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: 1, NoPrune: true})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			want := (1 << uint(n)) - 1 // all nonempty subsets
			if res.Sets != want {
				t.Fatalf("n=%d workers=%d: enumerated %d sets, want %d", n, w, res.Sets, want)
			}
		}
	}
}

// TestPruningIsInvisible: the branch-and-bound search must change only the
// counters (Sets/Pruned/Visited are search-shaped), never the answer.
func TestPruningIsInvisible(t *testing.T) {
	r := rng.New(7)
	pruned := false
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyi(12, 0.4, r)
		for _, obj := range []Objective{ObjOrdinary, ObjWireless, ObjEdge} {
			on, err1 := Exact(g, obj, Options{Alpha: 0.5})
			off, err2 := Exact(g, obj, Options{Alpha: 0.5, NoPrune: true})
			if err1 != nil || err2 != nil {
				t.Fatalf("%v / %v", err1, err2)
			}
			if on.Value != off.Value || on.ArgSet != off.ArgSet ||
				on.ArgInner != off.ArgInner {
				t.Fatalf("trial %d %v: pruning changed the result", trial, obj)
			}
			if off.Pruned != 0 {
				t.Fatalf("NoPrune still pruned %d sets", off.Pruned)
			}
			if on.Sets+int(min64(on.Pruned, 1<<40)) < off.Sets {
				t.Fatalf("trial %d %v: bnb accounted for %d+%d sets, full space is %d",
					trial, obj, on.Sets, on.Pruned, off.Sets)
			}
			if on.Pruned > 0 || on.SubtreesPruned > 0 {
				pruned = true
			}
		}
	}
	if !pruned {
		t.Fatal("branch-and-bound never fired on any trial; the bound is dead code")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestEnumWorkAndBinom pins the combinatorics the budget check rests on.
func TestEnumWorkAndBinom(t *testing.T) {
	if got := binom(30, 15); got != 155117520 {
		t.Fatalf("C(30,15) = %d", got)
	}
	if got := binom(72, 3); got != 59640 {
		t.Fatalf("C(72,3) = %d", got)
	}
	if got := binom(200, 100); got != math.MaxUint64 {
		t.Fatalf("C(200,100) should saturate, got %d", got)
	}
	// Ordinary work = Σ C(n,k), here all nonempty subsets of a 10-universe.
	if got := enumWork(10, 10, ObjOrdinary); got != (1<<10)-1 {
		t.Fatalf("enumWork(10,10,ordinary) = %d", got)
	}
	// Wireless work = Σ C(n,k)·2^k = 3^n − 1.
	want := uint64(1)
	for i := 0; i < 10; i++ {
		want *= 3
	}
	if got := enumWork(10, 10, ObjWireless); got != want-1 {
		t.Fatalf("enumWork(10,10,wireless) = %d, want %d", got, want-1)
	}
	if !Feasible(16, 16, ObjWireless, 0) {
		t.Fatal("n=16 wireless should fit the default budget")
	}
	if Feasible(26, 13, ObjWireless, 0) {
		t.Fatal("n=26 wireless should not fit the default budget")
	}
}

// TestCombinationUnranking pins the colex unranking both kernels seed
// chunks with: walking rank-by-rank must agree with Gosper enumeration.
func TestCombinationUnranking(t *testing.T) {
	const n, k = 10, 4
	mask := uint64(1)<<k - 1 // first combination
	for r := uint64(0); r < binom(n, k); r++ {
		if got := combinationMask(n, k, r); got != mask {
			t.Fatalf("rank %d: unranked %b, Gosper %b", r, got, mask)
		}
		if r+1 < binom(n, k) {
			mask = gosperNext(mask)
		}
	}
}

// TestProfileLargeN checks the by-cardinality profile on the big path.
func TestProfileLargeN(t *testing.T) {
	g := gen.Cycle(70)
	p, err := Profile(g, ObjOrdinary, 4, Options{RunOpts: runopts.RunOpts{Budget: 1 << 22}})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		want := 2.0 / float64(k)
		if math.Abs(p.MinExpansion[k]-want) > 1e-12 {
			t.Fatalf("profile[%d] = %g, want %g", k, p.MinExpansion[k], want)
		}
		if p.Witnesses[k] == nil || p.Witnesses[k].Count() != k {
			t.Fatalf("profile witness %d missing or wrong size", k)
		}
	}
}

// TestResultWitnessBitsets: the bitset witnesses must agree with the
// legacy uint64 masks on small graphs.
func TestResultWitnessBitsets(t *testing.T) {
	g := gen.CPlus(6)
	res, err := ExactWireless(g, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness == nil || toMask(res.Witness) != res.ArgSet {
		t.Fatalf("witness bitset %v != mask %b", res.Witness, res.ArgSet)
	}
	if res.ArgInner != 0 {
		if res.InnerWitness == nil || toMask(res.InnerWitness) != res.ArgInner {
			t.Fatalf("inner witness bitset %v != mask %b", res.InnerWitness, res.ArgInner)
		}
	}
	if bits.OnesCount64(res.ArgSet) != res.Witness.Count() {
		t.Fatal("witness popcount mismatch")
	}
}
