package expansion

import (
	"fmt"
	"math"

	"wexp/internal/graph"
	"wexp/internal/rng"
)

// SpectralResult reports an eigenvalue estimate from power iteration.
type SpectralResult struct {
	Lambda     float64 // the eigenvalue estimate
	Iterations int
	Converged  bool
}

// Lambda2Regular estimates λ2, the second-largest adjacency eigenvalue of a
// d-regular graph — the quantity of Lemma 3.1. The largest eigenvalue of a
// connected d-regular graph is d with the all-ones eigenvector, so the
// method power-iterates the shifted operator A + dI (whose spectrum is
// non-negative, making the iteration converge to the second-*largest*
// rather than second-in-magnitude eigenvalue) on the complement of the
// all-ones direction, and reports the Rayleigh quotient minus d.
func Lambda2Regular(g *graph.Graph, r *rng.RNG) (SpectralResult, error) {
	regular, d := g.IsRegular()
	if !regular {
		return SpectralResult{}, fmt.Errorf("expansion: Lambda2Regular requires a regular graph")
	}
	n := g.N()
	if n < 2 {
		return SpectralResult{}, fmt.Errorf("expansion: need n >= 2")
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	deflate(x)
	normalize(x)
	const (
		maxIter = 5000
		tol     = 1e-12
	)
	shift := float64(d)
	prev := math.Inf(1)
	res := SpectralResult{}
	for it := 0; it < maxIter; it++ {
		// y = (A + dI) x
		for v := 0; v < n; v++ {
			sum := shift * x[v]
			for _, w := range g.Neighbors(v) {
				sum += x[w]
			}
			y[v] = sum
		}
		deflate(y)
		norm := normalize(y)
		x, y = y, x
		lambda := norm - shift
		res.Iterations = it + 1
		if math.Abs(lambda-prev) < tol {
			res.Lambda = lambda
			res.Converged = true
			return res, nil
		}
		prev = lambda
	}
	res.Lambda = prev
	return res, nil
}

// SpectralGapRegular returns d − λ2 for a d-regular graph, the edge-count
// driver in Lemma 3.1's bound |e(A,B)| ≥ (d−λ)|A||B|/|V|.
func SpectralGapRegular(g *graph.Graph, r *rng.RNG) (float64, error) {
	regular, d := g.IsRegular()
	if !regular {
		return 0, fmt.Errorf("expansion: SpectralGapRegular requires a regular graph")
	}
	res, err := Lambda2Regular(g, r)
	if err != nil {
		return 0, err
	}
	return float64(d) - res.Lambda, nil
}

// EdgeCut returns |e(S, V\S)|, the number of edges crossing the cut.
func EdgeCut(g *graph.Graph, inS []bool) int {
	cut := 0
	for v := 0; v < g.N(); v++ {
		if !inS[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if !inS[w] {
				cut++
			}
		}
	}
	return cut
}

// AlonSpencerLowerBound returns the Alon–Spencer mixing bound used inside
// Lemma 3.1: every cut (S, V\S) of a d-regular graph with second eigenvalue
// λ has at least (d−λ)·|S|·|V\S|/|V| crossing edges.
func AlonSpencerLowerBound(n, sizeS int, d, lambda float64) float64 {
	if n == 0 {
		return 0
	}
	return (d - lambda) * float64(sizeS) * float64(n-sizeS) / float64(n)
}

// deflate removes the all-ones component: x ← x − mean(x)·1.
func deflate(x []float64) {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

// normalize scales x to unit 2-norm and returns the prior norm.
func normalize(x []float64) float64 {
	ss := 0.0
	for _, v := range x {
		ss += v * v
	}
	norm := math.Sqrt(ss)
	if norm == 0 {
		// Degenerate start (orthogonal complement hit exactly); reseed
		// deterministically.
		x[0] = 1
		if len(x) > 1 {
			x[1] = -1
		}
		return normalize(x)
	}
	inv := 1 / norm
	for i := range x {
		x[i] *= inv
	}
	return norm
}
