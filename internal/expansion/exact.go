package expansion

import (
	"fmt"
	"math/bits"

	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// Result reports a measured expansion value together with the set that
// realizes the minimum and, for wireless expansion, the inner subset
// realizing the max. ArgSet/ArgInner are uint64 masks and are populated
// only when n ≤ 64; Witness/InnerWitness are populated for every n.
type Result struct {
	Value    float64 // the expansion parameter (β, βu, or βw)
	ArgSet   uint64  // minimizing set S (bitmask over vertices; n ≤ 64 only)
	ArgInner uint64  // for βw: the maximizing S' ⊆ S; zero otherwise
	Sets     int     // number of candidate sets actually evaluated

	Witness      *bitset.Set // minimizing set S, any n
	InnerWitness *bitset.Set // for βw: the maximizing S' ⊆ S; nil otherwise

	// Pruned counts candidate sets skipped without evaluation: on the
	// default branch-and-bound path, sets inside subtrees cut by the bound
	// plus per-set floor skips inside leaves; on the flat paths, per-set
	// floor skips only. Saturates at MaxInt64 (a single pruned subtree can
	// cover more sets than int64 holds). Deterministic at every worker
	// count — the search partitions work by instance shape, not schedule.
	Pruned int64

	// Visited counts search-tree nodes expanded by the branch-and-bound
	// path (0 on the flat paths); SubtreesPruned counts whole subtrees cut
	// without a visit. Both are worker-invariant like Pruned.
	Visited        int64
	SubtreesPruned int64

	// Kernel names the enumeration kernel that produced the result
	// (small|big × bnb|incremental|recompute, or randomized-ppsz) —
	// observability only (it feeds wexpd's /metrics); every kernel returns
	// bit-identical results.
	Kernel string

	// Cert states what Value is worth: exact proof, randomized certificate
	// with explicit failure probability, or uncertified estimate.
	Cert Certificate
}

// Exact computes the chosen expansion objective exactly, enumerating
// candidate sets by cardinality under opt's work budget, fanned over the
// deterministic worker pool. Any n is accepted as long as the enumeration
// fits the budget.
func Exact(g *graph.Graph, obj Objective, opt Options) (Result, error) {
	n := g.N()
	maxK := opt.MaxK
	if maxK == 0 {
		maxK = MaxSetSize(n, opt.Alpha)
	}
	if maxK <= 0 {
		return Result{}, fmt.Errorf("expansion: α=%g admits no nonempty set on n=%d", opt.Alpha, n)
	}
	if maxK > n {
		maxK = n
	}
	out, err := solve(g, obj, maxK, opt, false)
	if err != nil {
		return Result{}, err
	}
	return out.aggregate(), nil
}

// ExactOrdinary computes β(G) = min{|Γ⁻(S)|/|S| : 0 < |S| ≤ α·n} exactly
// under the default work budget.
func ExactOrdinary(g *graph.Graph, alpha float64) (Result, error) {
	return Exact(g, ObjOrdinary, Options{Alpha: alpha})
}

// ExactUnique computes βu(G) = min{|Γ¹(S)|/|S| : 0 < |S| ≤ α·n} exactly
// under the default work budget.
func ExactUnique(g *graph.Graph, alpha float64) (Result, error) {
	return Exact(g, ObjUnique, Options{Alpha: alpha})
}

// ExactWireless computes βw(G) = min over S (|S| ≤ α·n) of
// max over S' ⊆ S of |Γ¹_S(S')| / |S|, exactly, under the default work
// budget (which covers n ≤ 16 at α = 1 with headroom).
func ExactWireless(g *graph.Graph, alpha float64) (Result, error) {
	return Exact(g, ObjWireless, Options{Alpha: alpha})
}

// WirelessOfSet returns max over S' ⊆ S of |Γ¹_S(S')| and the maximizing
// subset, for adjacency masks of a graph with n ≤ 64. The caller guarantees
// S ≠ 0. Enumeration walks all submasks of S.
func WirelessOfSet(masks []uint64, S uint64) (int, uint64) {
	bestCount, bestSet := 0, uint64(0)
	// Standard submask enumeration: S' = (S'-1) & S visits every submask.
	for sub := S; ; sub = (sub - 1) & S {
		if sub != 0 {
			uniq := uniqueMask(masks, sub) &^ S
			if c := bits.OnesCount64(uniq); c > bestCount {
				bestCount = c
				bestSet = sub
			}
		}
		if sub == 0 {
			break
		}
	}
	return bestCount, bestSet
}

// uniqueMask returns the mask of vertices outside S' covered by exactly one
// vertex of S' — note: outside S', not outside a containing S; callers
// subtract S themselves when computing Γ¹_S.
func uniqueMask(masks []uint64, Sprime uint64) uint64 {
	var once, twice uint64
	for rest := Sprime; rest != 0; rest &= rest - 1 {
		m := masks[bits.TrailingZeros64(rest)]
		twice |= once & m
		once |= m
	}
	return once &^ twice &^ Sprime
}

// MaxSetSize converts α into the paper's |S| ≤ α·n cap — the single
// definition the engine, the feasibility check, and the CLI all share.
func MaxSetSize(n int, alpha float64) int {
	if alpha <= 0 {
		return 0
	}
	maxSize := int(alpha * float64(n))
	if maxSize > n {
		maxSize = n
	}
	return maxSize
}

// Ordering verifies Observation 2.1 — β(G) ≥ βw(G) ≥ βu(G) for a common α
// — exactly, returning the three values. Intended for budget-sized graphs.
func Ordering(g *graph.Graph, alpha float64) (beta, betaW, betaU float64, err error) {
	rb, err := ExactOrdinary(g, alpha)
	if err != nil {
		return 0, 0, 0, err
	}
	rw, err := ExactWireless(g, alpha)
	if err != nil {
		return 0, 0, 0, err
	}
	ru, err := ExactUnique(g, alpha)
	if err != nil {
		return 0, 0, 0, err
	}
	return rb.Value, rw.Value, ru.Value, nil
}
