package expansion

import (
	"fmt"
	"math"
	"math/bits"

	"wexp/internal/graph"
)

// Result reports a measured expansion value together with the set that
// realizes the minimum (as a vertex mask) and, for wireless expansion, the
// inner subset realizing the max.
type Result struct {
	Value    float64 // the expansion parameter (β, βu, or βw)
	ArgSet   uint64  // minimizing set S (bitmask over vertices)
	ArgInner uint64  // for βw: the maximizing S' ⊆ S; zero otherwise
	Sets     int     // number of sets examined
}

// maxExactN is the largest vertex count the exhaustive β/βu solvers accept.
// 2^20 masks with O(|S|) work per mask stays under a second.
const maxExactN = 20

// maxExactWirelessN bounds the exhaustive βw solver, whose cost is Σ 3^n.
const maxExactWirelessN = 16

// ExactOrdinary computes β(G) = min{|Γ⁻(S)|/|S| : 0 < |S| ≤ α·n} by
// exhaustive enumeration. It returns an error if n exceeds the exact-solver
// limit or no set satisfies the size bound.
func ExactOrdinary(g *graph.Graph, alpha float64) (Result, error) {
	n := g.N()
	if n > maxExactN {
		return Result{}, fmt.Errorf("expansion: n=%d exceeds exact limit %d", n, maxExactN)
	}
	maxSize := maxSetSize(n, alpha)
	if maxSize == 0 {
		return Result{}, fmt.Errorf("expansion: α=%g admits no nonempty set on n=%d", alpha, n)
	}
	masks := adjMasks(g)
	best := Result{Value: math.Inf(1)}
	for S := uint64(1); S < 1<<uint(n); S++ {
		size := bits.OnesCount64(S)
		if size > maxSize {
			continue
		}
		var nbr uint64
		for rest := S; rest != 0; rest &= rest - 1 {
			nbr |= masks[bits.TrailingZeros64(rest)]
		}
		ext := bits.OnesCount64(nbr &^ S)
		ratio := float64(ext) / float64(size)
		best.Sets++
		if ratio < best.Value {
			best.Value = ratio
			best.ArgSet = S
		}
	}
	return best, nil
}

// ExactUnique computes βu(G) = min{|Γ¹(S)|/|S| : 0 < |S| ≤ α·n} by
// exhaustive enumeration.
func ExactUnique(g *graph.Graph, alpha float64) (Result, error) {
	n := g.N()
	if n > maxExactN {
		return Result{}, fmt.Errorf("expansion: n=%d exceeds exact limit %d", n, maxExactN)
	}
	maxSize := maxSetSize(n, alpha)
	if maxSize == 0 {
		return Result{}, fmt.Errorf("expansion: α=%g admits no nonempty set on n=%d", alpha, n)
	}
	masks := adjMasks(g)
	best := Result{Value: math.Inf(1)}
	for S := uint64(1); S < 1<<uint(n); S++ {
		size := bits.OnesCount64(S)
		if size > maxSize {
			continue
		}
		uniq := uniqueMask(masks, S)
		ratio := float64(bits.OnesCount64(uniq)) / float64(size)
		best.Sets++
		if ratio < best.Value {
			best.Value = ratio
			best.ArgSet = S
		}
	}
	return best, nil
}

// ExactWireless computes βw(G) = min over S (|S| ≤ α·n) of
// max over S' ⊆ S of |Γ¹_S(S')| / |S|, by full double enumeration.
func ExactWireless(g *graph.Graph, alpha float64) (Result, error) {
	n := g.N()
	if n > maxExactWirelessN {
		return Result{}, fmt.Errorf("expansion: n=%d exceeds exact wireless limit %d", n, maxExactWirelessN)
	}
	maxSize := maxSetSize(n, alpha)
	if maxSize == 0 {
		return Result{}, fmt.Errorf("expansion: α=%g admits no nonempty set on n=%d", alpha, n)
	}
	masks := adjMasks(g)
	best := Result{Value: math.Inf(1)}
	for S := uint64(1); S < 1<<uint(n); S++ {
		size := bits.OnesCount64(S)
		if size > maxSize {
			continue
		}
		inner, innerSet := WirelessOfSet(masks, S)
		ratio := float64(inner) / float64(size)
		best.Sets++
		if ratio < best.Value {
			best.Value = ratio
			best.ArgSet = S
			best.ArgInner = innerSet
		}
	}
	return best, nil
}

// WirelessOfSet returns max over S' ⊆ S of |Γ¹_S(S')| and the maximizing
// subset, for adjacency masks of a graph with n ≤ 64. The caller guarantees
// S ≠ 0. Enumeration walks all submasks of S.
func WirelessOfSet(masks []uint64, S uint64) (int, uint64) {
	bestCount, bestSet := 0, uint64(0)
	// Standard submask enumeration: S' = (S'-1) & S visits every submask.
	for sub := S; ; sub = (sub - 1) & S {
		if sub != 0 {
			uniq := uniqueMask(masks, sub) &^ S
			if c := bits.OnesCount64(uniq); c > bestCount {
				bestCount = c
				bestSet = sub
			}
		}
		if sub == 0 {
			break
		}
	}
	return bestCount, bestSet
}

// uniqueMask returns the mask of vertices outside S' covered by exactly one
// vertex of S' — note: outside S', not outside a containing S; callers
// subtract S themselves when computing Γ¹_S.
func uniqueMask(masks []uint64, Sprime uint64) uint64 {
	var once, twice uint64
	for rest := Sprime; rest != 0; rest &= rest - 1 {
		m := masks[bits.TrailingZeros64(rest)]
		twice |= once & m
		once |= m
	}
	return once &^ twice &^ Sprime
}

// maxSetSize converts α into the paper's |S| ≤ α·n cap.
func maxSetSize(n int, alpha float64) int {
	if alpha <= 0 {
		return 0
	}
	maxSize := int(math.Floor(alpha * float64(n)))
	if maxSize > n {
		maxSize = n
	}
	return maxSize
}

// Ordering verifies Observation 2.1 — β(G) ≥ βw(G) ≥ βu(G) for a common α
// — exactly, returning the three values. Intended for test-sized graphs.
func Ordering(g *graph.Graph, alpha float64) (beta, betaW, betaU float64, err error) {
	rb, err := ExactOrdinary(g, alpha)
	if err != nil {
		return 0, 0, 0, err
	}
	rw, err := ExactWireless(g, alpha)
	if err != nil {
		return 0, 0, 0, err
	}
	ru, err := ExactUnique(g, alpha)
	if err != nil {
		return 0, 0, 0, err
	}
	return rb.Value, rw.Value, ru.Value, nil
}
