package expansion

import (
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// assertSameAnswer demands bit-for-bit agreement on the answer — Value,
// both witness representations, the inner witness — across paths whose
// enumeration shapes (and hence Sets/Pruned counters) legitimately differ,
// such as branch-and-bound vs the flat kernels.
func assertSameAnswer(t *testing.T, ctx string, want, got Result) {
	t.Helper()
	if want.Value != got.Value {
		t.Fatalf("%s: value %g != %g", ctx, want.Value, got.Value)
	}
	if want.ArgSet != got.ArgSet || want.ArgInner != got.ArgInner {
		t.Fatalf("%s: witness masks (%b,%b) != (%b,%b)",
			ctx, want.ArgSet, want.ArgInner, got.ArgSet, got.ArgInner)
	}
	if (want.Witness == nil) != (got.Witness == nil) ||
		(want.Witness != nil && !want.Witness.Equal(got.Witness)) {
		t.Fatalf("%s: bitset witness %v != %v", ctx, want.Witness, got.Witness)
	}
	if (want.InnerWitness == nil) != (got.InnerWitness == nil) ||
		(want.InnerWitness != nil && !want.InnerWitness.Equal(got.InnerWitness)) {
		t.Fatalf("%s: inner witness %v != %v", ctx, want.InnerWitness, got.InnerWitness)
	}
}

// assertSameResult additionally demands the same Sets count — the full
// contract between the flat kernels (incremental vs recompute), which walk
// the identical rank space.
func assertSameResult(t *testing.T, ctx string, want, got Result) {
	t.Helper()
	assertSameAnswer(t, ctx, want, got)
	if want.Sets != got.Sets {
		t.Fatalf("%s: sets %d != %d", ctx, want.Sets, got.Sets)
	}
}

var allObjectives = []Objective{ObjOrdinary, ObjUnique, ObjWireless, ObjEdge}

// TestIncrementalMatchesRecompute is the differential acceptance test of
// the enumeration paths: on random graphs, for all four objectives,
// several α and pool widths, the flat incremental kernels (NoPrune) must
// reproduce the recompute oracle bit for bit — including the Sets count —
// and the default branch-and-bound search must reproduce the same answer
// (its Sets/Pruned counters are search-shaped by design). All of the
// uint64 path, the bitset path (forceBig), and cross-path agreement.
func TestIncrementalMatchesRecompute(t *testing.T) {
	r := rng.New(20260728)
	for trial := 0; trial < 4; trial++ {
		n := 7 + trial*2
		g := gen.ErdosRenyi(n, 0.35, r)
		for _, obj := range allObjectives {
			for _, alpha := range []float64{0.3, 0.6, 1.0} {
				if obj == ObjWireless && n >= 13 && alpha > 0.6 {
					alpha = 0.5 // cap the 2^k inner scan at test size
				}
				for _, w := range []int{1, 3, 8} {
					ctx := func(kind string) string {
						return obj.String() + kind
					}
					oracle, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: alpha, Recompute: true})
					if err != nil {
						t.Fatal(err)
					}
					inc, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: alpha, NoPrune: true})
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, ctx(" small"), oracle, inc)
					if inc.Kernel != "small-incremental" || oracle.Kernel != "small-recompute" {
						t.Fatalf("kernel labels %q / %q", inc.Kernel, oracle.Kernel)
					}
					bnb, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: alpha})
					if err != nil {
						t.Fatal(err)
					}
					assertSameAnswer(t, ctx(" bnb"), oracle, bnb)
					if bnb.Kernel != "small-bnb" {
						t.Fatalf("kernel label %q", bnb.Kernel)
					}
					incBig, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: alpha, NoPrune: true, forceBig: true})
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, ctx(" big"), oracle, incBig)
					if incBig.Kernel != "big-incremental" {
						t.Fatalf("kernel label %q", incBig.Kernel)
					}
					bnbBig, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: alpha, forceBig: true})
					if err != nil {
						t.Fatal(err)
					}
					assertSameAnswer(t, ctx(" big-bnb"), oracle, bnbBig)
					if bnbBig.Kernel != "big-bnb" {
						t.Fatalf("kernel label %q", bnbBig.Kernel)
					}
				}
			}
		}
	}
}

// TestIncrementalMatchesRecomputeLargeN runs the differential check on the
// genuine n > 64 path, where only the bitset kernels apply.
func TestIncrementalMatchesRecomputeLargeN(t *testing.T) {
	r := rng.New(68)
	graphs := map[string]*graph.Graph{
		"cycle68": gen.Cycle(68),
		"er68":    gen.ErdosRenyi(68, 0.08, r),
	}
	for name, g := range graphs {
		for _, obj := range allObjectives {
			maxK := 3
			if obj == ObjWireless {
				maxK = 2
			}
			for _, w := range []int{1, 4} {
				opt := Options{RunOpts: runopts.RunOpts{Budget: 1 << 22, Workers: w}, MaxK: maxK, NoPrune: true}
				inc, err1 := Exact(g, obj, opt)
				opt.NoPrune, opt.Recompute = false, true
				oracle, err2 := Exact(g, obj, opt)
				opt.Recompute = false
				bnb, err3 := Exact(g, obj, opt)
				if err1 != nil || err2 != nil || err3 != nil {
					t.Fatalf("%s %v: %v / %v / %v", name, obj, err1, err2, err3)
				}
				assertSameResult(t, name+" "+obj.String(), oracle, inc)
				assertSameAnswer(t, name+" "+obj.String()+" bnb", oracle, bnb)
			}
		}
	}
}

// TestIncrementalChunkBoundaries sweeps pool widths far beyond the chunk
// count: every width induces a different chunk partition of the same rank
// space, and all of them — incremental and recompute — must agree with the
// serial recompute scan.
func TestIncrementalChunkBoundaries(t *testing.T) {
	g := gen.ErdosRenyi(12, 0.3, rng.New(5))
	for _, obj := range allObjectives {
		serial, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: 1}, Alpha: 0.75, Recompute: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 3, 5, 8, 13, 64, 512} {
			inc, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: 0.75, NoPrune: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, obj.String(), serial, inc)
			bnb, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: w}, Alpha: 0.75})
			if err != nil {
				t.Fatal(err)
			}
			assertSameAnswer(t, obj.String()+" bnb", serial, bnb)
		}
	}
}

// TestBipartiteIncrementalMatchesRecompute checks the bipartite
// by-cardinality kernel pair: identical values, witnesses and set counts,
// and agreement with the Gray-code walk on the value (the Gray path's
// tie-break differs by design, so witnesses are not compared against it).
func TestBipartiteIncrementalMatchesRecompute(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		s := 8 + trial*3
		bg := gen.RandomBipartite(s, s+s/2, 0.25, r)
		// A budget of exactly 2^s − 1 covers the full enumeration but fails
		// the Gray-code gate (which needs 2^s), forcing the big path.
		budget := uint64(1)<<uint(s) - 1
		for _, w := range []int{1, 3, 16} {
			inc, err1 := MinBipartiteExpansionOpts(bg, Options{RunOpts: runopts.RunOpts{Budget: budget, Workers: w}, NoPrune: true})
			oracle, err2 := MinBipartiteExpansionOpts(bg, Options{RunOpts: runopts.RunOpts{Budget: budget, Workers: w}, Recompute: true})
			if err1 != nil || err2 != nil {
				t.Fatalf("s=%d: %v / %v", s, err1, err2)
			}
			if inc.Value != oracle.Value || inc.ArgSet != oracle.ArgSet || inc.Sets != oracle.Sets {
				t.Fatalf("s=%d w=%d: (%g,%b,%d) != (%g,%b,%d)", s, w,
					inc.Value, inc.ArgSet, inc.Sets, oracle.Value, oracle.ArgSet, oracle.Sets)
			}
			if !inc.Witness.Equal(oracle.Witness) {
				t.Fatalf("s=%d w=%d: witness %v != %v", s, w, inc.Witness, oracle.Witness)
			}
			// The bipartite branch-and-bound (default under a MaxK cutoff)
			// must agree with the flat path at the same cutoff — and its
			// counters must be worker-invariant.
			flat, err1 := MinBipartiteExpansionOpts(bg, Options{MaxK: s - 1, NoPrune: true})
			bnb, err2 := MinBipartiteExpansionOpts(bg, Options{RunOpts: runopts.RunOpts{Workers: w}, MaxK: s - 1})
			if err1 != nil || err2 != nil {
				t.Fatalf("s=%d bnb: %v / %v", s, err1, err2)
			}
			if flat.Value != bnb.Value || flat.ArgSet != bnb.ArgSet || !flat.Witness.Equal(bnb.Witness) {
				t.Fatalf("s=%d w=%d: flat (%g,%b) != bnb (%g,%b)", s, w,
					flat.Value, flat.ArgSet, bnb.Value, bnb.ArgSet)
			}
			serial, err := MinBipartiteExpansionOpts(bg, Options{RunOpts: runopts.RunOpts{Workers: 1}, MaxK: s - 1})
			if err != nil {
				t.Fatal(err)
			}
			if serial.Sets != bnb.Sets || serial.Pruned != bnb.Pruned ||
				serial.Visited != bnb.Visited || serial.SubtreesPruned != bnb.SubtreesPruned {
				t.Fatalf("s=%d w=%d: bnb counters (%d,%d,%d,%d) != serial (%d,%d,%d,%d)", s, w,
					bnb.Sets, bnb.Pruned, bnb.Visited, bnb.SubtreesPruned,
					serial.Sets, serial.Pruned, serial.Visited, serial.SubtreesPruned)
			}
		}
		gray, err := MinBipartiteExpansion(bg)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := MinBipartiteExpansionOpts(bg, Options{RunOpts: runopts.RunOpts{Budget: budget}, NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if gray.Value != inc.Value || gray.Sets != inc.Sets {
			t.Fatalf("s=%d: big path (%g,%d) != gray walk (%g,%d)",
				s, inc.Value, inc.Sets, gray.Value, gray.Sets)
		}
	}
}

// TestIncrementalHotLoopAllocs pins the arena design: once the worker pool
// is warm, enumerating thousands of sets allocates (amortized) nothing per
// set — the small kernel's chunk is fully allocation-free, the big
// kernel's only escapes are its per-chunk witness hand-offs.
func TestIncrementalHotLoopAllocs(t *testing.T) {
	gSmall := gen.ErdosRenyi(24, 0.3, rng.New(7))
	knSmall := newSmallIncKernel(gSmall, ObjOrdinary, true)
	cSmall := chunk{k: 5, start: 0, count: 20000}
	knSmall.run(cSmall) // warm the arena pool
	const sets = 20000.0
	if allocs := testing.AllocsPerRun(10, func() { knSmall.run(cSmall) }); allocs/sets > 0.001 {
		t.Fatalf("small incremental kernel: %.1f allocs per %d-set chunk", allocs, int(sets))
	}

	gBig := gen.ErdosRenyi(72, 0.3, rng.New(8))
	knBig := newBigIncKernel(gBig, ObjOrdinary, true)
	cBig := chunk{k: 3, start: 0, count: 20000}
	knBig.run(cBig)
	// Steady state re-allocates only the escaping witness buffer (plus pool
	// slack when a GC empties it mid-measurement).
	if allocs := testing.AllocsPerRun(10, func() { knBig.run(cBig) }); allocs/sets > 0.001 {
		t.Fatalf("big incremental kernel: %.1f allocs per %d-set chunk", allocs, int(sets))
	}
}

// FuzzExpansionKernels drives randomized graphs, objectives, size caps and
// pool widths through both kernel families and requires bit-for-bit
// agreement with the recompute oracle.
func FuzzExpansionKernels(f *testing.F) {
	f.Add(uint64(1), uint8(9), uint8(3), uint8(0), uint8(5), uint8(1))
	f.Add(uint64(42), uint8(12), uint8(6), uint8(2), uint8(4), uint8(3))
	f.Add(uint64(7), uint8(5), uint8(1), uint8(3), uint8(9), uint8(8))
	f.Add(uint64(1234), uint8(14), uint8(2), uint8(1), uint8(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, pRaw, objRaw, alphaRaw, wRaw uint8) {
		n := 4 + int(nRaw)%11 // 4..14
		p := 0.1 + float64(pRaw%8)*0.1
		obj := allObjectives[objRaw%4]
		alpha := 0.2 + float64(alphaRaw%9)*0.1 // 0.2..1.0
		if obj == ObjWireless && alpha > 0.6 {
			alpha = 0.6 // bound the 2^k inner scan
		}
		workers := 1 + int(wRaw)%8
		g := gen.ErdosRenyi(n, p, rng.New(seed))
		oracle, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: workers}, Alpha: alpha, Recompute: true})
		if err != nil {
			return // α too small for a nonempty set — same error on all paths
		}
		inc, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: workers}, Alpha: alpha, NoPrune: true})
		if err != nil {
			t.Fatalf("incremental errored where oracle ran: %v", err)
		}
		assertSameResult(t, "small "+obj.String(), oracle, inc)
		bnb, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: workers}, Alpha: alpha})
		if err != nil {
			t.Fatalf("branch-and-bound errored where oracle ran: %v", err)
		}
		assertSameAnswer(t, "small-bnb "+obj.String(), oracle, bnb)
		incBig, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: workers}, Alpha: alpha, NoPrune: true, forceBig: true})
		if err != nil {
			t.Fatalf("big incremental errored: %v", err)
		}
		assertSameResult(t, "big "+obj.String(), oracle, incBig)
		bnbBig, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: workers}, Alpha: alpha, forceBig: true})
		if err != nil {
			t.Fatalf("big branch-and-bound errored: %v", err)
		}
		assertSameAnswer(t, "big-bnb "+obj.String(), oracle, bnbBig)
		// The two search representations must also agree on every counter —
		// they walk the same tree.
		if bnb.Sets != bnbBig.Sets || bnb.Pruned != bnbBig.Pruned ||
			bnb.Visited != bnbBig.Visited || bnb.SubtreesPruned != bnbBig.SubtreesPruned {
			t.Fatalf("bnb counters small(%d,%d,%d,%d) != big(%d,%d,%d,%d)",
				bnb.Sets, bnb.Pruned, bnb.Visited, bnb.SubtreesPruned,
				bnbBig.Sets, bnbBig.Pruned, bnbBig.Visited, bnbBig.SubtreesPruned)
		}
		oracleBig, err := Exact(g, obj, Options{RunOpts: runopts.RunOpts{Workers: workers}, Alpha: alpha, Recompute: true, forceBig: true})
		if err != nil {
			t.Fatalf("big recompute errored: %v", err)
		}
		assertSameResult(t, "big-recompute "+obj.String(), oracle, oracleBig)
	})
}
