package expansion

import (
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

// assertSameResult demands bit-for-bit agreement on everything except the
// scheduling-shaped Pruned counter (and the Kernel label): Value, both
// witness representations, the inner witness, and the Sets count.
func assertSameResult(t *testing.T, ctx string, want, got Result) {
	t.Helper()
	if want.Value != got.Value {
		t.Fatalf("%s: value %g != %g", ctx, want.Value, got.Value)
	}
	if want.ArgSet != got.ArgSet || want.ArgInner != got.ArgInner {
		t.Fatalf("%s: witness masks (%b,%b) != (%b,%b)",
			ctx, want.ArgSet, want.ArgInner, got.ArgSet, got.ArgInner)
	}
	if want.Sets != got.Sets {
		t.Fatalf("%s: sets %d != %d", ctx, want.Sets, got.Sets)
	}
	if (want.Witness == nil) != (got.Witness == nil) ||
		(want.Witness != nil && !want.Witness.Equal(got.Witness)) {
		t.Fatalf("%s: bitset witness %v != %v", ctx, want.Witness, got.Witness)
	}
	if (want.InnerWitness == nil) != (got.InnerWitness == nil) ||
		(want.InnerWitness != nil && !want.InnerWitness.Equal(got.InnerWitness)) {
		t.Fatalf("%s: inner witness %v != %v", ctx, want.InnerWitness, got.InnerWitness)
	}
}

var allObjectives = []Objective{ObjOrdinary, ObjUnique, ObjWireless, ObjEdge}

// TestIncrementalMatchesRecompute is the differential acceptance test of
// the revolving-door kernels: on random graphs, for all four objectives,
// several α and pool widths (each width is a different chunk partition,
// exercising chunk-boundary unranking), the incremental kernels must
// reproduce the recompute oracle bit for bit — on the uint64 path, the
// bitset path (forceBig), and across the two.
func TestIncrementalMatchesRecompute(t *testing.T) {
	r := rng.New(20260728)
	for trial := 0; trial < 4; trial++ {
		n := 7 + trial*2
		g := gen.ErdosRenyi(n, 0.35, r)
		for _, obj := range allObjectives {
			for _, alpha := range []float64{0.3, 0.6, 1.0} {
				if obj == ObjWireless && n >= 13 && alpha > 0.6 {
					alpha = 0.5 // cap the 2^k inner scan at test size
				}
				for _, w := range []int{1, 3, 8} {
					opt := Options{Alpha: alpha, Workers: w}
					ctx := func(kind string) string {
						return obj.String() + kind
					}
					oracle, err := Exact(g, obj, Options{Alpha: alpha, Workers: w, Recompute: true})
					if err != nil {
						t.Fatal(err)
					}
					inc, err := Exact(g, obj, opt)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, ctx(" small"), oracle, inc)
					if inc.Kernel != "small-incremental" || oracle.Kernel != "small-recompute" {
						t.Fatalf("kernel labels %q / %q", inc.Kernel, oracle.Kernel)
					}
					opt.forceBig = true
					incBig, err := Exact(g, obj, opt)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, ctx(" big"), oracle, incBig)
					if incBig.Kernel != "big-incremental" {
						t.Fatalf("kernel label %q", incBig.Kernel)
					}
				}
			}
		}
	}
}

// TestIncrementalMatchesRecomputeLargeN runs the differential check on the
// genuine n > 64 path, where only the bitset kernels apply.
func TestIncrementalMatchesRecomputeLargeN(t *testing.T) {
	r := rng.New(68)
	graphs := map[string]*graph.Graph{
		"cycle68": gen.Cycle(68),
		"er68":    gen.ErdosRenyi(68, 0.08, r),
	}
	for name, g := range graphs {
		for _, obj := range allObjectives {
			maxK := 3
			if obj == ObjWireless {
				maxK = 2
			}
			for _, w := range []int{1, 4} {
				opt := Options{MaxK: maxK, Budget: 1 << 22, Workers: w}
				inc, err1 := Exact(g, obj, opt)
				opt.Recompute = true
				oracle, err2 := Exact(g, obj, opt)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s %v: %v / %v", name, obj, err1, err2)
				}
				assertSameResult(t, name+" "+obj.String(), oracle, inc)
			}
		}
	}
}

// TestIncrementalChunkBoundaries sweeps pool widths far beyond the chunk
// count: every width induces a different chunk partition of the same rank
// space, and all of them — incremental and recompute — must agree with the
// serial recompute scan.
func TestIncrementalChunkBoundaries(t *testing.T) {
	g := gen.ErdosRenyi(12, 0.3, rng.New(5))
	for _, obj := range allObjectives {
		serial, err := Exact(g, obj, Options{Alpha: 0.75, Workers: 1, Recompute: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 3, 5, 8, 13, 64, 512} {
			inc, err := Exact(g, obj, Options{Alpha: 0.75, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, obj.String(), serial, inc)
		}
	}
}

// TestBipartiteIncrementalMatchesRecompute checks the bipartite
// by-cardinality kernel pair: identical values, witnesses and set counts,
// and agreement with the Gray-code walk on the value (the Gray path's
// tie-break differs by design, so witnesses are not compared against it).
func TestBipartiteIncrementalMatchesRecompute(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		s := 8 + trial*3
		bg := gen.RandomBipartite(s, s+s/2, 0.25, r)
		// A budget of exactly 2^s − 1 covers the full enumeration but fails
		// the Gray-code gate (which needs 2^s), forcing the big path.
		budget := uint64(1)<<uint(s) - 1
		for _, w := range []int{1, 3, 16} {
			inc, err1 := MinBipartiteExpansionOpts(bg, Options{Budget: budget, Workers: w})
			oracle, err2 := MinBipartiteExpansionOpts(bg, Options{Budget: budget, Workers: w, Recompute: true})
			if err1 != nil || err2 != nil {
				t.Fatalf("s=%d: %v / %v", s, err1, err2)
			}
			if inc.Value != oracle.Value || inc.ArgSet != oracle.ArgSet || inc.Sets != oracle.Sets {
				t.Fatalf("s=%d w=%d: (%g,%b,%d) != (%g,%b,%d)", s, w,
					inc.Value, inc.ArgSet, inc.Sets, oracle.Value, oracle.ArgSet, oracle.Sets)
			}
			if !inc.Witness.Equal(oracle.Witness) {
				t.Fatalf("s=%d w=%d: witness %v != %v", s, w, inc.Witness, oracle.Witness)
			}
		}
		gray, err := MinBipartiteExpansion(bg)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := MinBipartiteExpansionOpts(bg, Options{Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		if gray.Value != inc.Value || gray.Sets != inc.Sets {
			t.Fatalf("s=%d: big path (%g,%d) != gray walk (%g,%d)",
				s, inc.Value, inc.Sets, gray.Value, gray.Sets)
		}
	}
}

// TestIncrementalHotLoopAllocs pins the arena design: once the worker pool
// is warm, enumerating thousands of sets allocates (amortized) nothing per
// set — the small kernel's chunk is fully allocation-free, the big
// kernel's only escapes are its per-chunk witness hand-offs.
func TestIncrementalHotLoopAllocs(t *testing.T) {
	gSmall := gen.ErdosRenyi(24, 0.3, rng.New(7))
	knSmall := newSmallIncKernel(gSmall, ObjOrdinary, true)
	cSmall := chunk{k: 5, start: 0, count: 20000}
	knSmall.run(cSmall) // warm the arena pool
	const sets = 20000.0
	if allocs := testing.AllocsPerRun(10, func() { knSmall.run(cSmall) }); allocs/sets > 0.001 {
		t.Fatalf("small incremental kernel: %.1f allocs per %d-set chunk", allocs, int(sets))
	}

	gBig := gen.ErdosRenyi(72, 0.3, rng.New(8))
	knBig := newBigIncKernel(gBig, ObjOrdinary, true)
	cBig := chunk{k: 3, start: 0, count: 20000}
	knBig.run(cBig)
	// Steady state re-allocates only the escaping witness buffer (plus pool
	// slack when a GC empties it mid-measurement).
	if allocs := testing.AllocsPerRun(10, func() { knBig.run(cBig) }); allocs/sets > 0.001 {
		t.Fatalf("big incremental kernel: %.1f allocs per %d-set chunk", allocs, int(sets))
	}
}

// FuzzExpansionKernels drives randomized graphs, objectives, size caps and
// pool widths through both kernel families and requires bit-for-bit
// agreement with the recompute oracle.
func FuzzExpansionKernels(f *testing.F) {
	f.Add(uint64(1), uint8(9), uint8(3), uint8(0), uint8(5), uint8(1))
	f.Add(uint64(42), uint8(12), uint8(6), uint8(2), uint8(4), uint8(3))
	f.Add(uint64(7), uint8(5), uint8(1), uint8(3), uint8(9), uint8(8))
	f.Add(uint64(1234), uint8(14), uint8(2), uint8(1), uint8(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, pRaw, objRaw, alphaRaw, wRaw uint8) {
		n := 4 + int(nRaw)%11 // 4..14
		p := 0.1 + float64(pRaw%8)*0.1
		obj := allObjectives[objRaw%4]
		alpha := 0.2 + float64(alphaRaw%9)*0.1 // 0.2..1.0
		if obj == ObjWireless && alpha > 0.6 {
			alpha = 0.6 // bound the 2^k inner scan
		}
		workers := 1 + int(wRaw)%8
		g := gen.ErdosRenyi(n, p, rng.New(seed))
		opt := Options{Alpha: alpha, Workers: workers}
		oracle, err := Exact(g, obj, Options{Alpha: alpha, Workers: workers, Recompute: true})
		if err != nil {
			return // α too small for a nonempty set — same error on all paths
		}
		inc, err := Exact(g, obj, opt)
		if err != nil {
			t.Fatalf("incremental errored where oracle ran: %v", err)
		}
		assertSameResult(t, "small "+obj.String(), oracle, inc)
		opt.forceBig = true
		incBig, err := Exact(g, obj, opt)
		if err != nil {
			t.Fatalf("big incremental errored: %v", err)
		}
		assertSameResult(t, "big "+obj.String(), oracle, incBig)
		opt.Recompute = true
		oracleBig, err := Exact(g, obj, opt)
		if err != nil {
			t.Fatalf("big recompute errored: %v", err)
		}
		assertSameResult(t, "big-recompute "+obj.String(), oracle, oracleBig)
	})
}
