package expansion

import (
	"math"

	"wexp/internal/bitset"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

// Estimate is a one-sided measurement on a graph too large for the exact
// solvers. Bound is an upper bound for β/βu estimates (the minimum over the
// sampled adversarial sets — the true minimum can only be lower), together
// with the realizing set.
type Estimate struct {
	Bound   float64
	ArgSet  []int
	Sampled int
}

// SampleSets generates an adversarial family of candidate sets S with
// |S| ≤ α·n: uniform random k-sets over a log-spaced size ladder, BFS balls
// around random centers (locally dense sets, the usual worst cases for
// vertex expansion), and lowest-degree prefix sets. Each set is nonempty.
func SampleSets(g *graph.Graph, alpha float64, trials int, r *rng.RNG) [][]int {
	n := g.N()
	maxSize := MaxSetSize(n, alpha)
	if maxSize == 0 || n == 0 {
		return nil
	}
	var out [][]int
	// Size ladder: 1, 2, 4, ..., maxSize.
	var ladder []int
	for k := 1; k <= maxSize; k *= 2 {
		ladder = append(ladder, k)
	}
	if ladder[len(ladder)-1] != maxSize {
		ladder = append(ladder, maxSize)
	}
	for t := 0; t < trials; t++ {
		k := ladder[t%len(ladder)]
		out = append(out, r.Choose(n, k))
	}
	// BFS balls truncated to each ladder size.
	for t := 0; t < trials; t++ {
		center := r.Intn(n)
		orderd := bfsOrder(g, center)
		k := ladder[t%len(ladder)]
		if k > len(orderd) {
			k = len(orderd)
		}
		ball := make([]int, k)
		copy(ball, orderd[:k])
		out = append(out, ball)
	}
	// Lowest-degree prefixes: vertices sorted by degree ascending.
	byDeg := r.Perm(n)
	insertionSortBy(byDeg, func(a, b int) bool { return g.Degree(a) < g.Degree(b) })
	for _, k := range ladder {
		pre := make([]int, k)
		copy(pre, byDeg[:k])
		out = append(out, pre)
	}
	return out
}

// EstimateOrdinary returns an upper bound on β(G) from the sampled family,
// refined by greedy local search (swap single vertices while the expansion
// decreases).
func EstimateOrdinary(g *graph.Graph, alpha float64, trials int, r *rng.RNG) Estimate {
	sets := SampleSets(g, alpha, trials, r)
	best := Estimate{Bound: math.Inf(1)}
	for _, S := range sets {
		S = localSearchMinExpansion(g, S, r)
		v := ratioOrdinary(g, S)
		best.Sampled++
		if v < best.Bound {
			best.Bound = v
			best.ArgSet = S
		}
	}
	return best
}

// EstimateUnique returns an upper bound on βu(G) from the sampled family.
func EstimateUnique(g *graph.Graph, alpha float64, trials int, r *rng.RNG) Estimate {
	sets := SampleSets(g, alpha, trials, r)
	best := Estimate{Bound: math.Inf(1)}
	for _, S := range sets {
		bs := bitset.FromIndices(g.N(), S)
		v := SetUniqueExpansion(g, bs)
		best.Sampled++
		if v < best.Bound {
			best.Bound = v
			best.ArgSet = S
		}
	}
	return best
}

// WirelessBounds reports a two-sided bracket on the wireless expansion of
// the specific sets sampled: for each S the inner max is bracketed by
// [solve(S)/|S|, |Γ⁻(S)|/|S|], where solve is a certified spokesman
// algorithm supplied by the caller (avoiding a package cycle with the
// spokesman package). The returned values bracket min over sampled S only —
// an upper bound on βw; Lower additionally lower-bounds the wireless
// expansion restricted to this family.
func WirelessBounds(g *graph.Graph, sets [][]int, solve func(b *graph.Bipartite) int) (lower, upper float64, argSet []int) {
	lower, upper = math.Inf(1), math.Inf(1)
	for _, S := range sets {
		if len(S) == 0 {
			continue
		}
		b, _ := graph.InducedBipartite(g, S)
		lo := float64(solve(b)) / float64(len(S))
		hi := float64(b.NN()) / float64(len(S))
		if hi < upper {
			upper = hi
		}
		if lo < lower {
			lower = lo
			argSet = S
		}
	}
	return lower, upper, argSet
}

// ratioOrdinary computes |Γ⁻(S)|/|S| using a flat visit array (no bitset
// allocation churn in the local-search loop).
func ratioOrdinary(g *graph.Graph, S []int) float64 {
	if len(S) == 0 {
		return 0
	}
	mark := make([]int8, g.N())
	for _, v := range S {
		mark[v] = 1
	}
	ext := 0
	for _, v := range S {
		for _, w := range g.Neighbors(v) {
			if mark[w] == 0 {
				mark[w] = 2
				ext++
			}
		}
	}
	return float64(ext) / float64(len(S))
}

// localSearchMinExpansion greedily swaps one member for one outside vertex
// while the expansion ratio strictly decreases, up to a fixed number of
// passes. It preserves |S|.
func localSearchMinExpansion(g *graph.Graph, S []int, r *rng.RNG) []int {
	const passes = 3
	cur := append([]int(nil), S...)
	curVal := ratioOrdinary(g, cur)
	n := g.N()
	inS := make([]bool, n)
	for _, v := range cur {
		inS[v] = true
	}
	for p := 0; p < passes; p++ {
		improved := false
		for i := range cur {
			// Candidate replacements: external neighbors of the set (moves
			// that tend to internalize boundary), plus one random vertex.
			cands := candidateSwaps(g, cur, inS, r)
			old := cur[i]
			for _, c := range cands {
				if inS[c] {
					continue
				}
				inS[old] = false
				inS[c] = true
				cur[i] = c
				if v := ratioOrdinary(g, cur); v < curVal {
					curVal = v
					old = c
					improved = true
				} else {
					inS[c] = false
					inS[old] = true
					cur[i] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

func candidateSwaps(g *graph.Graph, S []int, inS []bool, r *rng.RNG) []int {
	seen := make(map[int]struct{})
	var out []int
	for _, v := range S {
		for _, w := range g.Neighbors(v) {
			if !inS[w] {
				if _, ok := seen[int(w)]; !ok {
					seen[int(w)] = struct{}{}
					out = append(out, int(w))
				}
			}
		}
		if len(out) > 4*len(S) {
			break
		}
	}
	out = append(out, r.Intn(g.N()))
	return out
}

func bfsOrder(g *graph.Graph, src int) []int {
	dist := g.BFS(src)
	type dv struct{ d, v int }
	var order []dv
	for v, d := range dist {
		if d >= 0 {
			order = append(order, dv{d, v})
		}
	}
	// Stable-ish sort by distance (insertion sort; balls are small-to-medium
	// and this code path is not hot).
	for i := 1; i < len(order); i++ {
		x := order[i]
		j := i - 1
		for j >= 0 && order[j].d > x.d {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
	out := make([]int, len(order))
	for i, e := range order {
		out[i] = e.v
	}
	return out
}

func insertionSortBy(a []int, less func(x, y int) bool) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && less(x, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}
