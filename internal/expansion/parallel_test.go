package expansion

import (
	"testing"

	"wexp/internal/gen"
	"wexp/internal/rng"
)

func TestExactWirelessParallelMatchesSerial(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 8; trial++ {
		g := gen.ErdosRenyi(11, 0.3, r)
		for _, alpha := range []float64{0.25, 0.5, 1.0} {
			serial, err1 := ExactWireless(g, alpha)
			par, err2 := ExactWirelessParallel(g, alpha)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: %v vs %v", err1, err2)
			}
			if err1 != nil {
				continue
			}
			if serial.Value != par.Value {
				t.Fatalf("trial %d α=%g: serial %g != parallel %g", trial, alpha, serial.Value, par.Value)
			}
			if serial.ArgSet != par.ArgSet {
				t.Fatalf("trial %d α=%g: witness %b != %b", trial, alpha, serial.ArgSet, par.ArgSet)
			}
			if serial.Sets != par.Sets {
				t.Fatalf("trial %d α=%g: set counts %d != %d", trial, alpha, serial.Sets, par.Sets)
			}
		}
	}
}

func TestExactWirelessParallelKnownValues(t *testing.T) {
	res, err := ExactWirelessParallel(gen.Complete(8), 0.5)
	if err != nil || res.Value != 1 {
		t.Fatalf("βw(K8) = %g, %v", res.Value, err)
	}
	res, err = ExactWirelessParallel(gen.CPlus(6), 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value <= 0 {
		t.Fatalf("βw(C+) = %g, want > 0", res.Value)
	}
}

func TestExactWirelessParallelValidation(t *testing.T) {
	if _, err := ExactWirelessParallel(gen.Cycle(26), 0.5); err == nil {
		t.Fatal("budget-exceeding graph accepted")
	}
	if _, err := ExactWirelessParallel(gen.Cycle(8), 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}
