package expansion

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"wexp/internal/bitset"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// Randomized certified solver for the infeasible regime (tier three of the
// wexp fallback gate, between exact branch-and-bound and the crude
// estimators).
//
// The solver answers the decision problem "does a set S with |S| = k and
// objective ratio below θ exist?" with PPSZ-style randomized trials — a
// random vertex ordering walked once, with forced choices where a bound
// decides the vertex outright (the degree floor deg(v) − (k−1) ≥ θ·k
// force-excludes v for every objective except βu) and biased coin flips
// where it does not — and binary-searches θ to bracket the optimum:
//
//   - the upper end of the bracket is always witnessed by an exactly
//     evaluated set, so Value/CIHigh is a sound upper bound, certificate or
//     not;
//   - a NO answer at θ raises the lower end; its failure contribution is
//     (1 − p*)^T per sampled stratum, under the documented model that a
//     single trial finds a below-θ set, when one exists, with probability
//     at least p* = 1/4. The model is a heuristic — the walk is biased
//     toward low-coverage-increment vertices, the forced rules never
//     exclude a member of any below-θ set — and is validated differentially
//     against the exact oracle (every n ≤ 24 corpus instance and the fuzz
//     harness must agree bit-for-bit).
//
// Strata small enough to enumerate (C(n,k) ≤ randExhaustiveCutoff) are
// scanned exhaustively with the flat incremental kernels instead of being
// sampled, so their contribution to the failure probability is exactly
// zero; when every stratum is exhaustive the result is exact and says so.
// Before the search, a stratified sampling pass draws uniform k-sets per
// stratum through the revolving-door rank bijection (rank → set) and
// evaluates them exactly, seeding the bracket's upper end; the certificate
// it feeds is the explicit confidence statement {failure_prob, ci_low,
// ci_high, trials} carried on every Result.
//
// Determinism contract (same as the rest of the engine, plus randomness):
// every trial draws from its own RNG stream derived from
// Seed ⊕ Salt("expansion/randomized") ⊕ FNV-mix(phase, k, step, index) —
// never from a shared sequential source — and ALL planned trials always
// execute (no cross-trial early exit), with results merged in task-index
// order under the engine's cross-multiplied rational compare and
// smallest-witness tie-break. Results, certificates, and trial counts are
// therefore bit-identical at any Workers setting.
const (
	// randExhaustiveCutoff is the largest C(n,k) scanned exhaustively
	// instead of sampled; matches the branch-and-bound leafCap.
	randExhaustiveCutoff = 2048
	// randTrialSuccess is p*: the modeled per-trial success probability at
	// a stratum containing a below-θ set (see the package comment above).
	randTrialSuccess = 0.25
	// defaultRandFailure is the failure-probability target when
	// RandOptions.TargetFailure is zero.
	defaultRandFailure = 1e-9
	// defaultRandSamples is the per-stratum sample count of the stratified
	// sampling pass when RandOptions.Samples is zero.
	defaultRandSamples = 192
	// defaultRandSteps caps the binary-search decision steps when
	// RandOptions.Steps is zero.
	defaultRandSteps = 24
	// randSampleChunk is the pool granularity of the sampling pass.
	randSampleChunk = 32
	// descentPasses / descentDraws bound the stochastic single-swap descent
	// every trial runs after its walk: per pass, each member tries up to
	// descentDraws random replacements and takes the first improvement.
	descentPasses = 2
	descentDraws  = 6
)

// RandOptions configures the randomized certified solver. The zero value of
// every field selects a sensible default, except that exactly one of Alpha
// and MaxK must be positive. Seed is live here (unlike the exact engine):
// the certificate is a deterministic function of (graph, objective,
// options) including the seed.
type RandOptions struct {
	runopts.RunOpts

	// Alpha is the paper's size parameter: sets with 0 < |S| ≤ α·n are
	// considered. Ignored when MaxK > 0.
	Alpha float64
	// MaxK, when positive, caps |S| directly instead of via Alpha.
	MaxK int
	// TargetFailure is the bound the certificate's FailureProb must not
	// exceed (default 1e-9). The per-decision trial count is sized so the
	// worst case — every step answering NO in every sampled stratum —
	// stays under it.
	TargetFailure float64
	// Samples is the stratified sampling pass's per-stratum draw count
	// (default 192).
	Samples int
	// Steps caps the binary-search decision steps (default 24); the search
	// also stops on its own once the bracket is tighter than the rational
	// resolution 1/MaxK².
	Steps int
	// Ctx, when non-nil, cancels the solve between pool tasks.
	Ctx context.Context
}

// randEngine holds the immutable per-solve state.
type randEngine struct {
	g    *graph.Graph
	obj  Objective
	n    int
	maxK int

	seed    uint64
	salt    uint64
	workers int
	ctx     context.Context

	small   bool
	smallKn *smallKernel // single-set oracle (n ≤ 64)
	bigKn   *bigKernel   // single-set oracle (any n)
	deg     []int

	trialsPerDecision int

	scratch sync.Pool // *randScratch
}

// randScratch is the pooled per-task state of the sampling and trial pools.
type randScratch struct {
	rd      *bitset.RevolvingDoor
	S       *bitset.Set // big-path candidate set
	sc      *bigScratch
	members []int
	perm    []int
}

// stratum describes one cardinality of the search space.
type stratum struct {
	k          int
	count      uint64 // C(n, k)
	exhaustive bool
}

// randCandidate is one exactly evaluated set, comparable across strata.
type randCandidate struct {
	found bool
	k     int
	best  chunkBest // found/num/set/setBig/inner/innerBig only
}

// better reports whether a beats b under the engine's rational compare with
// the smallest-witness tie-break (a.k a's cardinality, b.k b's).
func (a *randCandidate) better(b *randCandidate) bool {
	if !a.found {
		return false
	}
	if !b.found {
		return true
	}
	an, bn := int64(a.best.num), int64(b.best.num)
	ak, bk := int64(a.k), int64(b.k)
	if an*bk != bn*ak {
		return an*bk < bn*ak
	}
	return witnessLess(&a.best, &b.best)
}

// Randomized brackets the chosen expansion objective with the randomized
// certified solver. The returned Result's Value is a witnessed (exactly
// evaluated) upper bound; Cert states the bracket, its failure probability,
// and the trial count. When every cardinality fits the exhaustive cutoff
// the result is a full enumeration and Cert.Kind is CertExact.
//
// The planned work — exhaustive scans, sampling pass, and the worst-case
// trial schedule — is priced up front against Budget in the engine's usual
// units; an infeasible plan refuses with an ErrBudget-wrapped error before
// any work runs, like the flat exact paths.
func Randomized(g *graph.Graph, obj Objective, opt RandOptions) (Result, error) {
	n := g.N()
	maxK := opt.MaxK
	if maxK == 0 {
		maxK = MaxSetSize(n, opt.Alpha)
	}
	if maxK <= 0 {
		return Result{}, fmt.Errorf("expansion: α=%g admits no nonempty set on n=%d", opt.Alpha, n)
	}
	if maxK > n {
		maxK = n
	}
	budget := opt.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	targetFail := opt.TargetFailure
	if targetFail <= 0 {
		targetFail = defaultRandFailure
	}
	samples := opt.Samples
	if samples <= 0 {
		samples = defaultRandSamples
	}
	steps := opt.Steps
	if steps <= 0 {
		steps = defaultRandSteps
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = poolWidth()
	}

	strata := make([]stratum, 0, maxK)
	sampled := 0
	for k := 1; k <= maxK; k++ {
		c := binom(n, k)
		st := stratum{k: k, count: c, exhaustive: c <= randExhaustiveCutoff}
		if !st.exhaustive {
			sampled++
		}
		strata = append(strata, st)
	}

	// Worst-case trial schedule: T per (step, sampled stratum) decision,
	// sized so steps·sampled·(1−p*)^T ≤ TargetFailure.
	trialsPer := 0
	if sampled > 0 {
		decisions := float64(steps * sampled)
		trialsPer = int(math.Ceil(math.Log(decisions/targetFail) / -math.Log(1-randTrialSuccess)))
		if trialsPer < 1 {
			trialsPer = 1
		}
	}

	// Up-front budget pricing, saturating like enumWork: exhaustive scans at
	// C(n,k)·setCost, the sampling pass at samples·setCost, and the search
	// at one eval per walked vertex — n·setCost per trial, worst case.
	var planned uint64
	addPlanned := func(w uint64) {
		if planned+w < planned {
			planned = math.MaxUint64
			return
		}
		planned += w
	}
	for _, st := range strata {
		cost := setCost(obj, st.k)
		if st.exhaustive {
			hi, lo := bits.Mul64(st.count, cost)
			if hi != 0 {
				planned = math.MaxUint64
				break
			}
			addPlanned(lo)
			continue
		}
		perTrial := uint64(n + descentPasses*descentDraws*st.k + 4)
		perStratum := uint64(samples) + uint64(steps)*uint64(trialsPer)*perTrial
		hi, lo := bits.Mul64(perStratum, cost)
		if hi != 0 {
			planned = math.MaxUint64
			break
		}
		addPlanned(lo)
	}
	if planned > budget {
		return Result{}, fmt.Errorf("expansion: randomized %v solver on n=%d (|S| ≤ %d) plans %d work units: %w (budget %d); raise Options.Budget or lower α",
			obj, n, maxK, planned, ErrBudget, budget)
	}

	e := &randEngine{
		g: g, obj: obj, n: n, maxK: maxK,
		seed: opt.Seed, salt: rng.Salt("expansion/randomized"),
		workers: workers, ctx: opt.Ctx,
		small:             n <= 64,
		deg:               make([]int, n),
		trialsPerDecision: trialsPer,
	}
	for v := 0; v < n; v++ {
		e.deg[v] = g.Degree(v)
	}
	if e.small {
		e.smallKn = newSmallKernel(g, obj, false)
	} else {
		e.bigKn = newBigKernel(g, obj, false)
	}
	e.scratch.New = func() any {
		sc := &randScratch{rd: &bitset.RevolvingDoor{}}
		if !e.small {
			sc.S = bitset.New(n)
			sc.sc = &bigScratch{once: bitset.New(n), twice: bitset.New(n), tmp: bitset.New(n)}
		}
		return sc
	}

	var (
		best       randCandidate
		totalSets  int
		totalTrial int
	)

	// Phase 1 — exhaustive strata: full flat-kernel scans, one pool task
	// per stratum, merged in stratum order.
	var exhChunks []chunk
	for _, st := range strata {
		if st.exhaustive {
			exhChunks = append(exhChunks, chunk{k: st.k, start: 0, count: st.count})
		}
	}
	if len(exhChunks) > 0 {
		var run func(chunk) chunkBest
		if e.small {
			run = newSmallIncKernel(g, obj, true).run
		} else {
			run = newBigIncKernel(g, obj, true).run
		}
		outs, err := runPool(opt.Ctx, exhChunks, workers, run)
		if err != nil {
			return Result{}, err
		}
		for i, r := range outs {
			totalSets += r.sets
			if r.found {
				cand := randCandidate{found: true, k: exhChunks[i].k, best: r}
				cand.best.sets, cand.best.pruned = 0, 0
				if cand.better(&best) {
					best = cand
				}
			}
		}
	}

	if sampled == 0 {
		// Every stratum was enumerated: the result is exact.
		res := e.finish(&best, totalSets, 0, Certificate{Kind: CertExact})
		res.Cert.CILow, res.Cert.CIHigh = res.Value, res.Value
		return res, nil
	}

	// Phase 2 — stratified sampling pass: uniform ranks unranked through
	// the revolving-door bijection, evaluated exactly; seeds the bracket's
	// witnessed upper end.
	type sampleTask struct {
		k     int
		count uint64 // C(n, k)
		lo    int    // sample-index range [lo, hi)
		hi    int
	}
	var sTasks []sampleTask
	for _, st := range strata {
		if st.exhaustive {
			continue
		}
		for lo := 0; lo < samples; lo += randSampleChunk {
			hi := lo + randSampleChunk
			if hi > samples {
				hi = samples
			}
			sTasks = append(sTasks, sampleTask{k: st.k, count: st.count, lo: lo, hi: hi})
		}
	}
	sOuts := make([]randCandidate, len(sTasks))
	sSets := make([]int, len(sTasks))
	err := e.pool(len(sTasks), func(i int) {
		t := sTasks[i]
		sc := e.scratch.Get().(*randScratch)
		defer e.scratch.Put(sc)
		cand := randCandidate{k: t.k}
		for s := t.lo; s < t.hi; s++ {
			stream := e.stream(1, t.k, 0, s)
			rank := stream.Uint64n(t.count)
			num, cb := e.evalRank(sc, t.k, rank)
			sSets[i]++
			cb.num = num
			one := randCandidate{found: true, k: t.k, best: cb}
			if one.better(&cand) {
				cand = one
			}
		}
		sOuts[i] = cand
	})
	if err != nil {
		return Result{}, err
	}
	for i := range sOuts {
		totalSets += sSets[i]
		if sOuts[i].better(&best) {
			best = sOuts[i]
		}
	}
	totalTrial += samples * sampled

	if !best.found {
		// Unreachable for nonempty strata — every sample evaluates a set —
		// but refuse loudly rather than certify nothing.
		return Result{}, fmt.Errorf("expansion: randomized %v solver found no candidate on n=%d", obj, n)
	}

	// Phase 3 — binary search on θ. YES tightens the witnessed upper end;
	// NO raises the certified lower end and pays its failure contribution.
	lo := 0.0
	hi := float64(best.best.num) / float64(best.k)
	resolution := 1.0 / float64(maxK*maxK)
	failure := 0.0
	var sampledStrata []stratum
	for _, st := range strata {
		if !st.exhaustive {
			sampledStrata = append(sampledStrata, st)
		}
	}
	tOuts := make([]randCandidate, sampled*trialsPer)
	tSets := make([]int, sampled*trialsPer)
	for step := 0; step < steps && hi-lo > resolution; step++ {
		theta := lo + (hi-lo)/2
		err := e.pool(len(tOuts), func(i int) {
			st := sampledStrata[i/trialsPer]
			trial := i % trialsPer
			sc := e.scratch.Get().(*randScratch)
			defer e.scratch.Put(sc)
			stream := e.stream(2, st.k, step, trial)
			tOuts[i], tSets[i] = e.trial(sc, stream, st.k, theta)
		})
		if err != nil {
			return Result{}, err
		}
		totalTrial += len(tOuts)
		stepBest := randCandidate{}
		for i := range tOuts {
			totalSets += tSets[i]
			if tOuts[i].better(&stepBest) {
				stepBest = tOuts[i]
			}
		}
		if stepBest.found {
			// YES: a set strictly below θ was witnessed.
			if stepBest.better(&best) {
				best = stepBest
			}
			hi = float64(best.best.num) / float64(best.k)
			if hi < lo {
				// The witness refutes an earlier NO decision — the trial
				// model missed a below-lo set at a previous step. Drop the
				// contradicted lower end and keep searching below the new
				// witness; the failure already charged for the refuted
				// steps stays (conservative).
				lo = 0
			}
		} else {
			// NO: every sampled stratum pays the modeled miss probability.
			lo = theta
			failure += float64(sampled) * math.Pow(1-randTrialSuccess, float64(trialsPer))
		}
	}

	cert := Certificate{
		Kind:        CertCertified,
		FailureProb: failure,
		CILow:       lo,
		CIHigh:      hi,
		Trials:      totalTrial,
	}
	return e.finish(&best, totalSets, totalTrial, cert), nil
}

// finish assembles the Result from the winning candidate.
func (e *randEngine) finish(best *randCandidate, sets, trials int, cert Certificate) Result {
	res := Result{Value: math.Inf(1), Sets: sets, Kernel: "randomized-ppsz", Cert: cert}
	if best.found {
		res.Value = float64(best.best.num) / float64(best.k)
		fillWitness(&res, &best.best, e.n)
	}
	res.Cert.Trials = trials
	return res
}

// stream derives the per-task RNG stream from (phase, k, step, index) —
// a pure function of the options and the task's identity, never of
// scheduling, which is what keeps every randomized artifact worker-
// invariant.
func (e *randEngine) stream(phase uint64, k, step, idx int) *rng.RNG {
	h := e.salt
	h = fnvMix(h, phase)
	h = fnvMix(h, uint64(k))
	h = fnvMix(h, uint64(step))
	h = fnvMix(h, uint64(idx))
	return rng.New(e.seed ^ h)
}

// fnvMix folds one 64-bit word into an FNV-1a style accumulator.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

// pool runs fn(0..tasks-1) over the worker pool with an atomic cursor.
// Every task always executes (short of cancellation): no early exit, so
// counters folded per task are scheduling-independent.
func (e *randEngine) pool(tasks int, fn func(int)) error {
	cancelled := func() bool { return e.ctx != nil && e.ctx.Err() != nil }
	workers := e.workers
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for i := 0; i < tasks; i++ {
			if cancelled() {
				return e.ctx.Err()
			}
			fn(i)
		}
		return nil
	}
	var cursor atomic.Int64
	cursor.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !cancelled() {
				i := int(cursor.Add(1))
				if i >= tasks {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if cancelled() {
		return e.ctx.Err()
	}
	return nil
}

// evalRank exactly evaluates the k-set at revolving-door rank r, returning
// its numerator and a witness-carrying chunkBest.
func (e *randEngine) evalRank(sc *randScratch, k int, rank uint64) (int, chunkBest) {
	sc.rd.Reset(e.n, k, rank)
	if e.small {
		S := sc.rd.Mask()
		num, inner := e.smallKn.eval(S)
		return num, chunkBest{found: true, num: num, set: S, inner: inner}
	}
	if sc.S == nil {
		sc.S = bitset.New(e.n)
	}
	sc.rd.FillSet(sc.S)
	sc.members = sc.S.AppendIndices(sc.members[:0])
	sc.sc.members = sc.members
	num, innerSub := e.bigKn.eval(sc.S, sc.sc)
	cb := chunkBest{found: true, num: num, setBig: bitset.New(e.n)}
	cb.setBig.Copy(sc.S)
	if innerSub != 0 {
		cb.innerBig = bitset.New(e.n)
		expandSubInto(cb.innerBig, innerSub, sc.members)
	}
	return num, cb
}

// trial runs one PPSZ-style randomized walk at threshold θ in stratum k:
// a random vertex ordering, forced exclusion where the degree floor proves
// v cannot sit in any below-θ k-set, forced inclusion when the tail is
// exactly what the set still needs, and a biased coin — include with
// probability 7/8 when the vertex is coverage-free, 5/8 while the running
// set stays below the θ·k numerator target, 1/8 otherwise — everywhere
// else. Returns the found below-θ candidate (found=false on a miss) and
// the number of exact set evaluations spent.
func (e *randEngine) trial(sc *randScratch, stream *rng.RNG, k int, theta float64) (randCandidate, int) {
	n := e.n
	if cap(sc.perm) < n {
		sc.perm = make([]int, n)
	}
	perm := sc.perm[:n]
	for i := range perm {
		perm[i] = i
	}
	stream.ShuffleInts(perm)

	target := theta * float64(k)
	evals := 0
	var (
		maskS    uint64 // small path
		num      int
		size     int
		inner    uint64
		innerSub uint64
	)
	if !e.small {
		sc.S.Clear()
		sc.members = sc.members[:0]
	}
	evalWith := func(v int) (int, uint64) {
		// Evaluate S ∪ {v} with the single-set oracle; caller decides
		// whether the inclusion sticks.
		evals++
		if e.small {
			return e.smallKn.eval(maskS | 1<<uint(v))
		}
		sc.S.Add(v)
		insertMember(&sc.members, v)
		sc.sc.members = sc.members
		return e.bigKn.eval(sc.S, sc.sc)
	}
	reject := func(v int) {
		if !e.small {
			sc.S.Remove(v)
			removeMember(&sc.members, v)
		}
	}
	accept := func(v int, newNum int, sub uint64) {
		if e.small {
			maskS |= 1 << uint(v)
			inner = sub
		} else {
			innerSub = sub
		}
		num = newNum
		size++
	}

	for idx := 0; idx < n && size < k; idx++ {
		v := perm[idx]
		need := k - size
		remaining := n - idx
		if need < remaining {
			// Degree floor: every k-set containing v has numerator at least
			// deg(v) − (k−1); if that already meets the target, v is out of
			// every below-θ set — a sound forced exclusion (βu admits no
			// such floor).
			if e.obj != ObjUnique && float64(e.deg[v]-(k-1)) >= target {
				continue
			}
			newNum, sub := evalWith(v)
			var p uint64
			switch {
			case newNum <= num:
				p = 7 // coverage-free (or better): almost always take it
			case float64(newNum) < target:
				p = 5 // still under the final numerator target
			default:
				p = 1 // overshooting: mostly reject, keep some exploration
			}
			if stream.Uint64n(8) < p {
				accept(v, newNum, sub)
			} else {
				reject(v)
			}
			continue
		}
		// Forced fill: the tail is exactly what the set still needs.
		newNum, sub := evalWith(v)
		accept(v, newNum, sub)
	}

	// Bounded stochastic single-swap descent: per pass, every member tries
	// a handful of random replacements and the first strict improvement
	// sticks. O(k) evals per pass — cheap next to the walk — and it
	// converts near-misses into hits, which is what keeps the modeled
	// per-trial success probability honest in practice.
	contains := func(v int) bool {
		if e.small {
			return maskS>>uint(v)&1 == 1
		}
		return sc.S.Contains(v)
	}
	for pass := 0; pass < descentPasses; pass++ {
		improved := false
		var snapshot []int
		if e.small {
			snapshot = snapshot[:0]
			for rest := maskS; rest != 0; rest &= rest - 1 {
				snapshot = append(snapshot, bits.TrailingZeros64(rest))
			}
		} else {
			snapshot = append(snapshot[:0], sc.members...)
		}
		for _, u := range snapshot {
			if !contains(u) {
				continue
			}
			for d := 0; d < descentDraws; d++ {
				v := stream.Intn(n)
				if contains(v) {
					continue
				}
				evals++
				var newNum int
				var sub uint64
				if e.small {
					cand := maskS&^(1<<uint(u)) | 1<<uint(v)
					newNum, sub = e.smallKn.eval(cand)
					if newNum < num {
						maskS = cand
						num, inner = newNum, sub
						improved = true
						break
					}
				} else {
					sc.S.Remove(u)
					removeMember(&sc.members, u)
					sc.S.Add(v)
					insertMember(&sc.members, v)
					sc.sc.members = sc.members
					newNum, sub = e.bigKn.eval(sc.S, sc.sc)
					if newNum < num {
						num, innerSub = newNum, sub
						improved = true
						break
					}
					sc.S.Remove(v)
					removeMember(&sc.members, v)
					sc.S.Add(u)
					insertMember(&sc.members, u)
				}
			}
		}
		if !improved {
			break
		}
	}

	if size != k || !(float64(num) < target) {
		return randCandidate{}, evals
	}
	cand := randCandidate{found: true, k: k, best: chunkBest{found: true, num: num}}
	if e.small {
		cand.best.set = maskS
		cand.best.inner = inner
	} else {
		cand.best.setBig = bitset.New(n)
		cand.best.setBig.Copy(sc.S)
		if innerSub != 0 {
			cand.best.innerBig = bitset.New(n)
			expandSubInto(cand.best.innerBig, innerSub, sc.members)
		}
	}
	return cand, evals
}
