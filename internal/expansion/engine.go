package expansion

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"wexp/internal/bitset"
	"wexp/internal/graph"
	"wexp/internal/runopts"
)

// Objective selects which quantity the exact engine minimizes over vertex
// sets S.
type Objective int

const (
	// ObjOrdinary is β: |Γ⁻(S)| / |S|.
	ObjOrdinary Objective = iota
	// ObjUnique is βu: |Γ¹(S)| / |S|.
	ObjUnique
	// ObjWireless is βw: max over S' ⊆ S of |Γ¹_S(S')| / |S|.
	ObjWireless
	// ObjEdge is the Cheeger constant numerator: |e(S, S̄)| / |S|.
	ObjEdge
)

func (o Objective) String() string {
	switch o {
	case ObjOrdinary:
		return "ordinary"
	case ObjUnique:
		return "unique"
	case ObjWireless:
		return "wireless"
	case ObjEdge:
		return "edge"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// DefaultBudget is the work-unit budget used when Options.Budget is zero.
// One unit is one candidate set for β/βu/edge and 2^|S| submask evaluations
// for βw, so the default covers the legacy hard limits (n ≤ 20 for β/βu,
// n ≤ 16 for βw) with headroom.
const DefaultBudget = 1 << 26

// Options configures an exact expansion computation. The zero value of
// every field selects a sensible default, except that exactly one of Alpha
// and MaxK must be positive.
//
// The common run-control knobs are the embedded runopts.RunOpts: Workers
// is the pool width (results are bit-identical for every width — chunks
// and subproblems are merged in a deterministic order with a
// smallest-witness tie-break); Budget bounds the total work in enumeration
// units (see DefaultBudget) — the flat paths refuse up front with the
// required amount in the error, the branch-and-bound default charges as it
// goes and aborts with an ErrBudget-wrapped error; Seed is ignored (the
// engine is fully deterministic).
type Options struct {
	runopts.RunOpts

	// Alpha is the paper's size parameter: sets with 0 < |S| ≤ α·n are
	// enumerated. Ignored when MaxK > 0.
	Alpha float64
	// MaxK, when positive, caps |S| directly instead of via Alpha.
	MaxK int
	// NoPrune disables pruning entirely, selecting the flat incremental
	// full enumeration. The answer never depends on pruning (only the
	// Sets/Pruned/Visited counters do); the switch exists for cross-checks
	// and measurement.
	NoPrune bool
	// Recompute forces the legacy full-recomputation kernels — the
	// correctness oracle for the default revolving-door incremental kernels,
	// exactly as radio's StepScalar is for its word-parallel step. Results
	// are bit-identical either way; only speed and the scheduling-shaped
	// Pruned counter differ.
	Recompute bool
	// Ctx, when non-nil, cancels the enumeration: workers observe it at
	// chunk boundaries and the solve returns Ctx.Err(). A nil Ctx means
	// run to completion.
	Ctx context.Context

	// forceBig routes graphs with n ≤ 64 through the large-n bitset kernel;
	// a test hook for cross-validating the two paths.
	forceBig bool
}

// chunk is one contiguous slice of the by-cardinality enumeration: `count`
// k-combinations starting at colex rank `start`.
type chunk struct {
	k     int
	start uint64
	count uint64
}

// chunkBest is a worker's private best over one chunk. Exactly one of
// set/setBig (and inner/innerBig) is meaningful, depending on the kernel.
type chunkBest struct {
	found    bool
	num      int // objective numerator; the value is num / k
	set      uint64
	setBig   *bitset.Set
	inner    uint64
	innerBig *bitset.Set
	sets     int
	pruned   int64
	visited  int64 // search-tree nodes expanded (branch-and-bound only)
	subtrees int64 // whole subtrees cut without a visit (branch-and-bound only)
}

// engineOut is the raw per-cardinality outcome of a solve: perK[k] holds
// the best set of size exactly k (chunks already merged deterministically).
type engineOut struct {
	n        int
	maxK     int
	kernel   string
	perK     []chunkBest
	sets     int
	prun     int64
	visited  int64
	subtrees int64
}

// binom returns C(n, k), saturating at MaxUint64 on overflow — the shared
// implementation lives next to the revolving-door enumerator whose rank
// bijection depends on it.
func binom(n, k int) uint64 {
	return bitset.Binomial(n, k)
}

// setCost is the work-unit price of evaluating one set of size k.
func setCost(obj Objective, k int) uint64 {
	if obj == ObjWireless {
		if k >= 62 {
			return math.MaxUint64
		}
		return 1 << uint(k)
	}
	return 1
}

// enumWork returns the total work units of the full enumeration, saturating.
func enumWork(n, maxK int, obj Objective) uint64 {
	var total uint64
	for k := 1; k <= maxK; k++ {
		hi, lo := bits.Mul64(binom(n, k), setCost(obj, k))
		if hi != 0 || total+lo < total {
			return math.MaxUint64
		}
		total += lo
	}
	return total
}

// Feasible reports whether the exact engine would accept an enumeration of
// sets up to size maxK on n vertices under the given budget (0 means
// DefaultBudget). Callers use it to decide between the exact solvers and
// the sampling estimators.
func Feasible(n, maxK int, obj Objective, budget uint64) bool {
	if budget == 0 {
		budget = DefaultBudget
	}
	if maxK < 1 || maxK > n {
		return false
	}
	return enumWork(n, maxK, obj) <= budget
}

// combinationMask returns the k-combination of {0..n-1} with colex rank r
// as a uint64 mask (n ≤ 64). Colex rank order coincides with numeric mask
// order, the order Gosper's hack enumerates.
func combinationMask(n, k int, r uint64) uint64 {
	var mask uint64
	p := n - 1
	for i := k; i >= 1; i-- {
		for binom(p, i) > r {
			p--
		}
		mask |= 1 << uint(p)
		r -= binom(p, i)
		p--
	}
	return mask
}

// combinationInto writes the colex-rank-r k-combination of {0..n-1} into s.
func combinationInto(s *bitset.Set, n, k int, r uint64) {
	s.Clear()
	p := n - 1
	for i := k; i >= 1; i-- {
		for binom(p, i) > r {
			p--
		}
		s.Add(p)
		r -= binom(p, i)
		p--
	}
}

// gosperNext returns the next mask with the same popcount in increasing
// numeric order (Gosper's hack). The caller guarantees a successor exists.
func gosperNext(x uint64) uint64 {
	u := x & (^x + 1)
	v := x + u
	return v | ((x ^ v) / u >> 2)
}

// makeChunks splits the by-cardinality enumeration into work-balanced
// contiguous chunks. The chunk list depends only on (n, maxK, obj,
// workers), never on scheduling, so the deterministic merge sees a fixed
// partition.
func makeChunks(n, maxK int, obj Objective, totalWork uint64, workers int) []chunk {
	target := totalWork/uint64(workers*8) + 1
	var chunks []chunk
	for k := 1; k <= maxK; k++ {
		ck := binom(n, k)
		per := target / setCost(obj, k)
		if per < 1 {
			per = 1
		}
		for start := uint64(0); start < ck; start += per {
			cnt := per
			if cnt > ck-start {
				cnt = ck - start
			}
			chunks = append(chunks, chunk{k: k, start: start, count: cnt})
		}
	}
	return chunks
}

// poolWidth is the default worker-pool width.
func poolWidth() int {
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return w
	}
	return 1
}

// runPool fans the chunks over `workers` goroutines pulling from an atomic
// cursor. Output is indexed by chunk, so scheduling order is invisible to
// the merge. Cancellation is observed between chunks: a cancelled pool
// stops promptly and returns ctx.Err() (partial output is discarded by the
// caller).
func runPool(ctx context.Context, chunks []chunk, workers int, run func(chunk) chunkBest) ([]chunkBest, error) {
	out := make([]chunkBest, len(chunks))
	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers <= 1 {
		for i, c := range chunks {
			if cancelled() {
				return nil, ctx.Err()
			}
			out[i] = run(c)
		}
		return out, nil
	}
	var cursor atomic.Int64
	cursor.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !cancelled() {
				i := int(cursor.Add(1))
				if i >= len(chunks) {
					return
				}
				out[i] = run(chunks[i])
			}
		}()
	}
	wg.Wait()
	if cancelled() {
		return nil, ctx.Err()
	}
	return out, nil
}

// witnessLess orders two found chunkBests by their witness set's numeric
// value — the tie-break that reproduces the legacy serial scan (which kept
// the numerically smallest mask among all minimizers).
func witnessLess(a, b *chunkBest) bool {
	if a.setBig != nil {
		return a.setBig.Compare(b.setBig) < 0
	}
	return a.set < b.set
}

// solve runs the engine. The default path is the branch-and-bound search
// tree (bnb.go); Options.Recompute selects the flat recompute oracle and
// Options.NoPrune the flat incremental full enumeration, both of which
// keep the legacy rank-interval chunking and its up-front budget refusal.
// perKBests selects per-cardinality incumbents for the search (Profile
// needs the exact best at every k) over the stronger global-ratio
// incumbent (Exact only needs the overall minimum).
func solve(g *graph.Graph, obj Objective, maxK int, opt Options, perKBests bool) (*engineOut, error) {
	n := g.N()
	if maxK < 1 || maxK > n {
		return nil, fmt.Errorf("expansion: size cap %d out of range [1,%d]", maxK, n)
	}
	budget := opt.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	if !opt.Recompute && !opt.NoPrune {
		return bnbSolve(g, obj, maxK, opt, budget, perKBests)
	}
	work := enumWork(n, maxK, obj)
	if work > budget {
		return nil, fmt.Errorf("expansion: exact %v enumeration on n=%d (|S| ≤ %d) needs %d work units, budget is %d; raise Options.Budget or lower α",
			obj, n, maxK, work, budget)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = poolWidth()
	}
	chunks := makeChunks(n, maxK, obj, work, workers)
	var run func(chunk) chunkBest
	var kernel string
	switch small := n <= 64 && !opt.forceBig; {
	case small && opt.Recompute:
		kn := newSmallKernel(g, obj, !opt.NoPrune)
		run, kernel = kn.run, "small-recompute"
	case small:
		kn := newSmallIncKernel(g, obj, !opt.NoPrune)
		run, kernel = kn.run, "small-incremental"
	case opt.Recompute:
		kn := newBigKernel(g, obj, !opt.NoPrune)
		run, kernel = kn.run, "big-recompute"
	default:
		kn := newBigIncKernel(g, obj, !opt.NoPrune)
		run, kernel = kn.run, "big-incremental"
	}
	results, err := runPool(opt.Ctx, chunks, workers, run)
	if err != nil {
		return nil, err
	}
	out := &engineOut{n: n, maxK: maxK, kernel: kernel, perK: make([]chunkBest, maxK+1)}
	for i, r := range results {
		out.sets += r.sets
		out.prun += r.pruned
		if !r.found {
			continue
		}
		k := chunks[i].k
		best := &out.perK[k]
		if !best.found || r.num < best.num ||
			(r.num == best.num && witnessLess(&r, best)) {
			out.perK[k] = r
			// Per-chunk counters were already folded into the totals.
			out.perK[k].sets, out.perK[k].pruned = 0, 0
		}
	}
	return out, nil
}

// aggregate reduces the per-cardinality bests to a single Result, comparing
// the rationals num/k exactly by cross-multiplication and breaking ties by
// numerically smallest witness — reproducing the legacy serial scan
// bit-for-bit.
func (e *engineOut) aggregate() Result {
	res := Result{Value: math.Inf(1), Sets: e.sets, Pruned: e.prun,
		Visited: e.visited, SubtreesPruned: e.subtrees, Kernel: e.kernel}
	var best *chunkBest
	bestK := 0
	for k := 1; k <= e.maxK; k++ {
		c := &e.perK[k]
		if !c.found {
			continue
		}
		if best == nil ||
			int64(c.num)*int64(bestK) < int64(best.num)*int64(k) ||
			(int64(c.num)*int64(bestK) == int64(best.num)*int64(k) && witnessLess(c, best)) {
			best = c
			bestK = k
		}
	}
	if best == nil {
		res.Cert = Certificate{Kind: CertExact}
		return res
	}
	res.Value = float64(best.num) / float64(bestK)
	res.Cert = Certificate{Kind: CertExact, CILow: res.Value, CIHigh: res.Value}
	fillWitness(&res, best, e.n)
	return res
}

// fillWitness populates both witness representations of a Result from a
// chunkBest: the legacy uint64 masks whenever n ≤ 64, and the bitsets
// always.
func fillWitness(res *Result, c *chunkBest, n int) {
	if c.setBig != nil {
		res.Witness = c.setBig
		res.InnerWitness = c.innerBig
		if n <= 64 {
			res.ArgSet = toMask(c.setBig)
			if c.innerBig != nil {
				res.ArgInner = toMask(c.innerBig)
			}
		}
		return
	}
	res.ArgSet = c.set
	res.ArgInner = c.inner
	res.Witness = fromMask(n, c.set)
	if c.inner != 0 {
		res.InnerWitness = fromMask(n, c.inner)
	}
}

func toMask(s *bitset.Set) uint64 {
	var m uint64
	s.ForEach(func(i int) { m |= 1 << uint(i) })
	return m
}

func fromMask(n int, m uint64) *bitset.Set {
	s := bitset.New(n)
	for rest := m; rest != 0; rest &= rest - 1 {
		s.Add(bits.TrailingZeros64(rest))
	}
	return s
}

// --- Small kernel: n ≤ 64, uint64 adjacency masks ---------------------------

type smallKernel struct {
	masks []uint64
	deg   []int
	obj   Objective
	n     int
	prune bool
}

func newSmallKernel(g *graph.Graph, obj Objective, prune bool) *smallKernel {
	n := g.N()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	// βu admits no degree-based lower bound (unique coverage can vanish for
	// any degrees), so pruning is ordinary/wireless/edge only.
	return &smallKernel{masks: adjMasks(g), deg: deg, obj: obj, n: n, prune: prune && obj != ObjUnique}
}

// lowerBoundSmall is the branch-and-bound floor: any v ∈ S has at least
// deg(v) − (|S|−1) neighbors outside S, each contributing ≥ 1 to |Γ⁻(S)|,
// to the wireless inner max (take S' = {v}), and to the edge cut.
func (kn *smallKernel) lowerBoundSmall(S uint64, k int) int {
	maxDeg := 0
	for rest := S; rest != 0; rest &= rest - 1 {
		if d := kn.deg[bits.TrailingZeros64(rest)]; d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg - (k - 1)
}

func (kn *smallKernel) run(c chunk) chunkBest {
	best := chunkBest{}
	S := combinationMask(kn.n, c.k, c.start)
	for i := uint64(0); ; {
		best.sets++
		if kn.prune && best.found && kn.lowerBoundSmall(S, c.k) > best.num {
			best.pruned++
		} else {
			num, inner := kn.eval(S)
			// Strict improvement keeps the first — numerically smallest —
			// witness within the chunk, matching the legacy serial scan.
			if !best.found || num < best.num {
				best.found = true
				best.num = num
				best.set = S
				best.inner = inner
			}
		}
		if i++; i >= c.count {
			return best
		}
		S = gosperNext(S)
	}
}

func (kn *smallKernel) eval(S uint64) (num int, inner uint64) {
	switch kn.obj {
	case ObjOrdinary:
		var nbr uint64
		for rest := S; rest != 0; rest &= rest - 1 {
			nbr |= kn.masks[bits.TrailingZeros64(rest)]
		}
		return bits.OnesCount64(nbr &^ S), 0
	case ObjUnique:
		return bits.OnesCount64(uniqueMask(kn.masks, S)), 0
	case ObjWireless:
		return WirelessOfSet(kn.masks, S)
	case ObjEdge:
		cut := 0
		for rest := S; rest != 0; rest &= rest - 1 {
			cut += bits.OnesCount64(kn.masks[bits.TrailingZeros64(rest)] &^ S)
		}
		return cut, 0
	}
	panic("expansion: unknown objective")
}

// --- Big kernel: any n, bitset adjacency -------------------------------------

type bigKernel struct {
	adj   []*bitset.Set
	deg   []int
	obj   Objective
	n     int
	prune bool
}

func newBigKernel(g *graph.Graph, obj Objective, prune bool) *bigKernel {
	n := g.N()
	adj := make([]*bitset.Set, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		adj[v] = bitset.New(n)
		for _, w := range g.Neighbors(v) {
			adj[v].Add(int(w))
		}
		deg[v] = g.Degree(v)
	}
	return &bigKernel{adj: adj, deg: deg, obj: obj, n: n, prune: prune && obj != ObjUnique}
}

// run enumerates the chunk with per-chunk scratch (kernels are shared
// across workers; scratch is not). Witnesses land in chunk-lifetime arena
// buffers via Copy — one allocation per chunk that found a best, not one
// per improvement.
func (kn *bigKernel) run(c chunk) chunkBest {
	S := bitset.New(kn.n)
	combinationInto(S, kn.n, c.k, c.start)
	sc := &bigScratch{
		members: make([]int, 0, c.k),
		once:    bitset.New(kn.n),
		twice:   bitset.New(kn.n),
		tmp:     bitset.New(kn.n),
	}
	var setBuf, innerBuf *bitset.Set
	best := chunkBest{}
	for i := uint64(0); ; {
		best.sets++
		sc.members = S.AppendIndices(sc.members[:0])
		if kn.prune && best.found && kn.lowerBoundBig(sc.members, c.k) > best.num {
			best.pruned++
		} else {
			num, innerSub := kn.eval(S, sc)
			if !best.found || num < best.num {
				best.found = true
				best.num = num
				if setBuf == nil {
					setBuf = bitset.New(kn.n)
				}
				setBuf.Copy(S)
				best.setBig = setBuf
				if innerSub == 0 {
					best.innerBig = nil
				} else {
					if innerBuf == nil {
						innerBuf = bitset.New(kn.n)
					}
					expandSubInto(innerBuf, innerSub, sc.members)
					best.innerBig = innerBuf
				}
			}
		}
		if i++; i >= c.count {
			return best
		}
		if !S.NextCombination() {
			return best
		}
	}
}

type bigScratch struct {
	members []int
	once    *bitset.Set
	twice   *bitset.Set
	tmp     *bitset.Set
}

func (kn *bigKernel) lowerBoundBig(members []int, k int) int {
	maxDeg := 0
	for _, v := range members {
		if kn.deg[v] > maxDeg {
			maxDeg = kn.deg[v]
		}
	}
	return maxDeg - (k - 1)
}

// eval returns the objective numerator for S and, for βw, the maximizing
// subset as a compressed mask over sc.members.
func (kn *bigKernel) eval(S *bitset.Set, sc *bigScratch) (num int, innerSub uint64) {
	switch kn.obj {
	case ObjOrdinary:
		sc.once.Clear()
		for _, v := range sc.members {
			sc.once.Union(kn.adj[v])
		}
		return sc.once.SubtractCount(S), 0
	case ObjUnique:
		// Iterate members directly: |S| may exceed 64, unlike the wireless
		// submask scan whose 2^|S| cost already bounds |S| via the budget.
		sc.once.Clear()
		sc.twice.Clear()
		for _, v := range sc.members {
			sc.tmp.Copy(sc.once)
			sc.tmp.Intersect(kn.adj[v])
			sc.twice.Union(sc.tmp)
			sc.once.Union(kn.adj[v])
		}
		sc.once.Subtract(sc.twice)
		return sc.once.SubtractCount(S), 0
	case ObjWireless:
		return wirelessScanBig(kn.adj, S, sc)
	case ObjEdge:
		cut := 0
		for _, v := range sc.members {
			cut += kn.adj[v].SubtractCount(S)
		}
		return cut, 0
	}
	panic("expansion: unknown objective")
}

// wirelessScanBig is the βw inner optimization shared by the recompute and
// incremental big kernels: max over S' ⊆ S of |Γ¹_S(S')| plus the
// maximizing subset as a compressed mask over sc.members. The submask
// order (descending) matches WirelessOfSet, so the first strict max — and
// hence the inner witness — matches the small kernel bit-for-bit on graphs
// both paths accept.
func wirelessScanBig(adj []*bitset.Set, S *bitset.Set, sc *bigScratch) (int, uint64) {
	full := full64(len(sc.members))
	bestInner, bestSub := 0, uint64(0)
	for sub := full; ; sub = (sub - 1) & full {
		if sub != 0 {
			uniqueInto(adj, sc, sub)
			sc.once.Subtract(sc.twice)
			if c := sc.once.SubtractCount(S); c > bestInner {
				bestInner = c
				bestSub = sub
			}
		}
		if sub == 0 {
			break
		}
	}
	return bestInner, bestSub
}

// uniqueInto computes once/twice coverage over the members selected by the
// compressed mask sub.
func uniqueInto(adj []*bitset.Set, sc *bigScratch, sub uint64) {
	sc.once.Clear()
	sc.twice.Clear()
	for rest := sub; rest != 0; rest &= rest - 1 {
		v := sc.members[bits.TrailingZeros64(rest)]
		sc.tmp.Copy(sc.once)
		sc.tmp.Intersect(adj[v])
		sc.twice.Union(sc.tmp)
		sc.once.Union(adj[v])
	}
}

func full64(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(k) - 1
}
