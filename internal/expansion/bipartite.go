package expansion

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// BipartiteResult reports an exact bipartite measurement with its witness
// subset. ArgSet is a bitmask over the S side, populated when |S| ≤ 64;
// Witness is populated for every |S|. Pruned/Visited/SubtreesPruned mirror
// the graph engine's search statistics (zero on the flat and Gray-code
// paths) and are deterministic at every worker count.
type BipartiteResult struct {
	Value          float64
	ArgSet         uint64
	Witness        *bitset.Set
	Sets           int
	Pruned         int64
	Visited        int64
	SubtreesPruned int64
}

// MinBipartiteExpansion computes min over nonempty S' ⊆ S of
// |Γ(S')| / |S'| — the bipartite vertex expansion of Section 2.1, the
// quantity lower-bounded by Lemma 4.4(4) for the core graph — under the
// default work budget.
func MinBipartiteExpansion(b *graph.Bipartite) (BipartiteResult, error) {
	return MinBipartiteExpansionOpts(b, Options{})
}

// MinBipartiteExpansionOpts is MinBipartiteExpansion with an explicit work
// budget, pool width, and optional subset-size cap (Options.MaxK; 0 means
// all sizes). Three regimes:
//
//   - |S| ≤ 62 and the 2^|S| Gray-code walk fits the budget: all subsets
//     are visited in Gray order, maintaining per-N-vertex coverage counts
//     incrementally — O(2^|S| · avg-deg) total, one unit of work per set.
//   - otherwise, by default: the branch-and-bound prefix search, pruning
//     subtrees whose coverage |Γ(P)| — monotone under adding S-side
//     vertices — already exceeds the incumbent ratio; aborts with an
//     ErrBudget-wrapped error only when the search itself exhausts the
//     budget.
//   - with Options.Recompute or Options.NoPrune: the flat by-cardinality
//     enumeration over the chunked worker pool (full-recompute oracle or
//     revolving-door incremental respectively), refused up front when
//     Σ C(|S|,k) exceeds the budget.
func MinBipartiteExpansionOpts(b *graph.Bipartite, opt Options) (BipartiteResult, error) {
	s := b.NS()
	if s == 0 {
		return BipartiteResult{}, fmt.Errorf("expansion: empty S side")
	}
	budget := opt.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	maxK := opt.MaxK
	if maxK <= 0 || maxK > s {
		maxK = s
	}
	if s <= 62 && maxK == s && uint64(1)<<uint(s) <= budget {
		return grayBipartite(b), nil
	}
	if !opt.Recompute && !opt.NoPrune {
		return bipBnb(b, maxK, budget, opt.Workers, opt.Ctx)
	}
	return bigBipartite(b, maxK, budget, opt.Workers, opt.Recompute, opt.Ctx)
}

// bipRecomputeRun is the legacy colex chunk walk: a full CoverSet
// recomputation per set, kept as the oracle for bipIncRun.
func bipRecomputeRun(b *graph.Bipartite) func(chunk) chunkBest {
	s := b.NS()
	return func(c chunk) chunkBest {
		S := bitset.New(s)
		combinationInto(S, s, c.k, c.start)
		members := make([]int, 0, c.k)
		scratch := make([]int8, b.NN())
		var setBuf *bitset.Set
		best := chunkBest{}
		for i := uint64(0); ; {
			best.sets++
			members = S.AppendIndices(members[:0])
			if num := b.CoverSet(members, scratch); !best.found || num < best.num {
				best.found = true
				best.num = num
				if setBuf == nil {
					setBuf = bitset.New(s)
				}
				setBuf.Copy(S)
				best.setBig = setBuf
			}
			if i++; i >= c.count {
				return best
			}
			if !S.NextCombination() {
				return best
			}
		}
	}
}

// bipIncRun is the revolving-door incremental kernel: counts[v] is the
// number of chosen S-side vertices adjacent to N-side vertex v, and the
// covered total |Γ(S')| moves only along the two swapped vertices' rows.
func bipIncRun(b *graph.Bipartite) func(chunk) chunkBest {
	s := b.NS()
	var pool sync.Pool
	pool.New = func() any {
		return &incArena{
			rd:   &bitset.RevolvingDoor{},
			outs: make([]int, swapBatch),
			ins:  make([]int, swapBatch),
			cnt:  make([]int32, b.NN()),
			S:    bitset.New(s),
		}
	}
	return func(c chunk) chunkBest {
		ar := pool.Get().(*incArena)
		defer pool.Put(ar)
		rd, cnt, S := ar.rd, ar.cnt, ar.S
		rd.Reset(s, c.k, c.start)
		rd.FillSet(S)
		clear(cnt)
		covered := 0
		for _, u := range rd.Members() {
			for _, v := range b.NeighborsOfS(u) {
				if cnt[v] == 0 {
					covered++
				}
				cnt[v]++
			}
		}
		improve := func(best *chunkBest, num int) {
			best.found = true
			best.num = num
			if ar.setBuf == nil {
				ar.setBuf = bitset.New(s)
			}
			ar.setBuf.Copy(S)
			best.setBig = ar.setBuf
		}
		best := chunkBest{sets: 1}
		improve(&best, covered)
		for done := uint64(1); done < c.count; {
			want := c.count - done
			if want > swapBatch {
				want = swapBatch
			}
			m := rd.NextBatch(ar.outs[:want], ar.ins[:want])
			if m == 0 {
				break
			}
			for i := 0; i < m; i++ {
				out, in := ar.outs[i], ar.ins[i]
				for _, v := range b.NeighborsOfS(out) {
					cnt[v]--
					if cnt[v] == 0 {
						covered--
					}
				}
				for _, v := range b.NeighborsOfS(in) {
					if cnt[v] == 0 {
						covered++
					}
					cnt[v]++
				}
				S.Remove(out)
				S.Add(in)
				if covered < best.num || (covered == best.num && S.Compare(best.setBig) < 0) {
					improve(&best, covered)
				}
			}
			done += uint64(m)
			best.sets += m
		}
		if best.setBig != nil {
			ar.setBuf = nil
		}
		return best
	}
}

// grayBipartite is the legacy incremental Gray-code walk (|S| ≤ 62).
func grayBipartite(b *graph.Bipartite) BipartiteResult {
	s := b.NS()
	counts := make([]int32, b.NN())
	inSet := make([]bool, s)
	covered := 0
	size := 0
	cur := uint64(0)
	best := BipartiteResult{Value: math.Inf(1)}
	total := uint64(1) << uint(s)
	for i := uint64(1); i < total; i++ {
		flip := bits.TrailingZeros64(i)
		adding := !inSet[flip]
		inSet[flip] = adding
		if adding {
			cur |= 1 << uint(flip)
			size++
			for _, v := range b.NeighborsOfS(flip) {
				if counts[v] == 0 {
					covered++
				}
				counts[v]++
			}
		} else {
			cur &^= 1 << uint(flip)
			size--
			for _, v := range b.NeighborsOfS(flip) {
				counts[v]--
				if counts[v] == 0 {
					covered--
				}
			}
		}
		if size == 0 {
			continue
		}
		best.Sets++
		if ratio := float64(covered) / float64(size); ratio < best.Value {
			best.Value = ratio
			best.ArgSet = cur
		}
	}
	best.Witness = fromMask(s, best.ArgSet)
	return best
}

// bigBipartite enumerates subsets of the S side by cardinality over the
// chunked pool, with the same deterministic smallest-witness merge as the
// graph engine. The default kernel walks each chunk in revolving-door
// order with an incrementally maintained N-side coverage-count array —
// O(deg(out)+deg(in)) per set; the colex recompute walk survives behind
// recompute as the correctness oracle. Both produce identical chunk
// winners: (min covered count, numerically smallest witness).
func bigBipartite(b *graph.Bipartite, maxK int, budget uint64, workers int, recompute bool, ctx context.Context) (BipartiteResult, error) {
	s := b.NS()
	work := enumWork(s, maxK, ObjOrdinary) // one unit per set
	if work > budget {
		return BipartiteResult{}, fmt.Errorf("expansion: bipartite enumeration on |S|=%d (|S'| ≤ %d) needs %d work units, budget is %d; raise Options.Budget or set Options.MaxK",
			s, maxK, work, budget)
	}
	if workers <= 0 {
		workers = poolWidth()
	}
	chunks := makeChunks(s, maxK, ObjOrdinary, work, workers)
	run := bipIncRun(b)
	if recompute {
		run = bipRecomputeRun(b)
	}
	results, err := runPool(ctx, chunks, workers, run)
	if err != nil {
		return BipartiteResult{}, err
	}
	res := BipartiteResult{Value: math.Inf(1)}
	var best *chunkBest
	bestK := 0
	for i := range results {
		r := &results[i]
		res.Sets += r.sets
		if !r.found {
			continue
		}
		k := chunks[i].k
		if best == nil ||
			int64(r.num)*int64(bestK) < int64(best.num)*int64(k) ||
			(int64(r.num)*int64(bestK) == int64(best.num)*int64(k) && r.setBig.Compare(best.setBig) < 0) {
			best = r
			bestK = k
		}
	}
	if best == nil {
		return res, fmt.Errorf("expansion: no nonempty subset enumerated")
	}
	res.Value = float64(best.num) / float64(bestK)
	res.Witness = best.setBig
	if s <= 64 {
		res.ArgSet = toMask(best.setBig)
	}
	return res, nil
}

// bipArena is the pooled per-worker scratch of the bipartite search.
type bipArena struct {
	rd    *bitset.RevolvingDoor
	heap  nodeHeap
	outs  []int
	ins   []int
	cnt   []int32
	cover *bitset.Set
	S     *bitset.Set
}

// bipEngine is the bipartite instantiation of the branch-and-bound search:
// same deterministic subproblem partition and best-first node order as the
// graph engine, with the coverage count |Γ(P)| — monotone under adding
// S-side vertices — as the (exact-on-prefixes) lower bound.
type bipEngine struct {
	b      *graph.Bipartite
	s      int
	maxK   int
	budget uint64
	ctx    context.Context
	meter  workMeter

	// Deterministic global-ratio seed incumbent (seedK = 0 = none).
	seedNum  int
	seedK    int
	seedSets int

	pool sync.Pool // *bipArena
}

func (e *bipEngine) budgetErr() error {
	return fmt.Errorf("expansion: bipartite branch-and-bound on |S|=%d (|S'| ≤ %d): %w (budget %d); raise Options.Budget or set Options.MaxK",
		e.s, e.maxK, ErrBudget, e.budget)
}

func (e *bipEngine) prunable(bound, k int, localFound bool, localNum int) bool {
	if localFound && bound > localNum {
		return true
	}
	return e.seedK != 0 && int64(bound)*int64(e.seedK) > int64(e.seedNum)*int64(k)
}

// seedPass evaluates the prefixes of the degree-ascending S-side order —
// the cheapest deterministic guess at low-coverage subsets — to give every
// subproblem an incumbent before the search starts.
func (e *bipEngine) seedPass() error {
	order := make([]int, e.s)
	for u := range order {
		order[u] = u
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(e.b.NeighborsOfS(order[i])), len(e.b.NeighborsOfS(order[j]))
		return di < dj || (di == dj && order[i] < order[j])
	})
	cnt := make([]int32, e.b.NN())
	covered := 0
	for k := 1; k <= e.maxK; k++ {
		if !e.meter.charge(1) {
			return e.budgetErr()
		}
		for _, v := range e.b.NeighborsOfS(order[k-1]) {
			if cnt[v] == 0 {
				covered++
			}
			cnt[v]++
		}
		e.seedSets++
		if e.seedK == 0 || int64(covered)*int64(e.seedK) < int64(e.seedNum)*int64(k) {
			e.seedNum, e.seedK = covered, k
		}
	}
	return nil
}

// bound returns |Γ(P)| — every completion of the prefix covers at least
// what the prefix already covers.
func (e *bipEngine) bound(ar *bipArena, members []int32) int {
	cover := ar.cover
	cover.Clear()
	for _, u := range members {
		for _, v := range e.b.NeighborsOfS(int(u)) {
			cover.Add(int(v))
		}
	}
	return cover.Count()
}

func (e *bipEngine) runSub(sp subproblem, ar *bipArena) (chunkBest, error) {
	best := chunkBest{}
	k := sp.k
	h := ar.heap[:0]
	defer func() { ar.heap = h[:0] }()
	seq := int32(0)
	push := func(members []int32, t, r, bound int) {
		if e.prunable(bound, k, best.found, best.num) {
			best.pruned = addSat64(best.pruned, satInt64(binom(e.s-t, r)))
			best.subtrees++
			return
		}
		h.push(bnbNode{bound: int32(bound), seq: seq, t: int32(t), r: int32(r), members: members})
		seq++
	}
	root := make([]int32, 0, bits.OnesCount64(sp.prefix))
	for rest := sp.prefix; rest != 0; rest &= rest - 1 {
		root = append(root, int32(bits.TrailingZeros64(rest)))
	}
	push(root, sp.depth, k-len(root), e.bound(ar, root))
	for len(h) > 0 {
		if e.ctx != nil && e.ctx.Err() != nil {
			return best, e.ctx.Err()
		}
		if e.meter.blown.Load() {
			return best, e.budgetErr()
		}
		nd := h.pop()
		if e.prunable(int(nd.bound), k, best.found, best.num) {
			best.pruned = addSat64(best.pruned, satInt64(binom(e.s-int(nd.t), int(nd.r))))
			best.subtrees++
			for i := range h {
				best.pruned = addSat64(best.pruned, satInt64(binom(e.s-int(h[i].t), int(h[i].r))))
				best.subtrees++
			}
			h = h[:0]
			break
		}
		if !e.meter.charge(1) {
			return best, e.budgetErr()
		}
		best.visited++
		t, r := int(nd.t), int(nd.r)
		if r == 0 || binom(e.s-t, r) <= leafCap {
			if err := e.leaf(&best, ar, nd.members, t, r); err != nil {
				return best, err
			}
			continue
		}
		// Excluding t leaves the prefix — and its bound — unchanged.
		push(nd.members, t+1, r, int(nd.bound))
		inc := make([]int32, len(nd.members)+1)
		copy(inc, nd.members)
		inc[len(nd.members)] = int32(t)
		push(inc, t+1, r-1, e.bound(ar, inc))
	}
	return best, nil
}

// leaf enumerates every completion in revolving-door order over the tail,
// with the prefix coverage preloaded into the count array.
func (e *bipEngine) leaf(best *chunkBest, ar *bipArena, members []int32, t, r int) error {
	m := e.s - t
	count := binom(m, r)
	if !e.meter.charge(count) {
		return e.budgetErr()
	}
	cnt := ar.cnt
	clear(cnt)
	S := ar.S
	S.Clear()
	covered := 0
	addVertex := func(u int) {
		S.Add(u)
		for _, v := range e.b.NeighborsOfS(u) {
			if cnt[v] == 0 {
				covered++
			}
			cnt[v]++
		}
	}
	for _, u := range members {
		addVertex(int(u))
	}
	rd := ar.rd
	rd.Reset(m, r, 0)
	for _, u := range rd.Members() {
		addVertex(u + t)
	}
	consider := func() {
		if !best.found || covered < best.num ||
			(covered == best.num && S.Compare(best.setBig) < 0) {
			best.found = true
			best.num = covered
			if best.setBig == nil {
				best.setBig = bitset.New(e.s)
			}
			best.setBig.Copy(S)
		}
	}
	best.sets++
	consider()
	for done := uint64(1); done < count; {
		want := count - done
		if want > swapBatch {
			want = swapBatch
		}
		bm := rd.NextBatch(ar.outs[:want], ar.ins[:want])
		if bm == 0 {
			break
		}
		for i := 0; i < bm; i++ {
			out, in := ar.outs[i]+t, ar.ins[i]+t
			for _, v := range e.b.NeighborsOfS(out) {
				cnt[v]--
				if cnt[v] == 0 {
					covered--
				}
			}
			for _, v := range e.b.NeighborsOfS(in) {
				if cnt[v] == 0 {
					covered++
				}
				cnt[v]++
			}
			S.Remove(out)
			S.Add(in)
			best.sets++
			consider()
		}
		done += uint64(bm)
	}
	return nil
}

// bipBnb is the bipartite branch-and-bound driver: seed pass, the same
// deterministic subproblem partition as the graph engine, worker pool,
// index-order ratio merge.
func bipBnb(b *graph.Bipartite, maxK int, budget uint64, workers int, ctx context.Context) (BipartiteResult, error) {
	e := &bipEngine{b: b, s: b.NS(), maxK: maxK, budget: budget, ctx: ctx}
	e.meter.budget = budget
	e.pool.New = func() any {
		return &bipArena{
			rd:    &bitset.RevolvingDoor{},
			outs:  make([]int, swapBatch),
			ins:   make([]int, swapBatch),
			cnt:   make([]int32, b.NN()),
			cover: bitset.New(b.NN()),
			S:     bitset.New(e.s),
		}
	}
	if err := e.seedPass(); err != nil {
		return BipartiteResult{}, err
	}
	subs := bnbSubproblems(e.s, maxK)
	if workers <= 0 {
		workers = poolWidth()
	}
	if workers > len(subs) {
		workers = len(subs)
	}
	results := make([]chunkBest, len(subs))
	var (
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }
	runOne := func(i int) {
		ar := e.pool.Get().(*bipArena)
		best, err := e.runSub(subs[i], ar)
		e.pool.Put(ar)
		if err != nil {
			fail(err)
			return
		}
		results[i] = best
	}
	if workers <= 1 {
		for i := range subs {
			if cancelled() || failed.Load() {
				break
			}
			runOne(i)
		}
	} else {
		var cursor atomic.Int64
		cursor.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !failed.Load() && !cancelled() {
					i := int(cursor.Add(1))
					if i >= len(subs) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	if cancelled() {
		return BipartiteResult{}, ctx.Err()
	}
	if failed.Load() {
		return BipartiteResult{}, firstErr
	}
	res := BipartiteResult{Value: math.Inf(1), Sets: e.seedSets}
	var best *chunkBest
	bestK := 0
	for i := range results {
		r := &results[i]
		res.Sets += r.sets
		res.Pruned = addSat64(res.Pruned, r.pruned)
		res.Visited += r.visited
		res.SubtreesPruned += r.subtrees
		if !r.found {
			continue
		}
		k := subs[i].k
		if best == nil ||
			int64(r.num)*int64(bestK) < int64(best.num)*int64(k) ||
			(int64(r.num)*int64(bestK) == int64(best.num)*int64(k) && r.setBig.Compare(best.setBig) < 0) {
			best = r
			bestK = k
		}
	}
	if best == nil {
		return res, fmt.Errorf("expansion: no nonempty subset enumerated")
	}
	res.Value = float64(best.num) / float64(bestK)
	res.Witness = best.setBig
	if e.s <= 64 {
		res.ArgSet = toMask(best.setBig)
	}
	return res, nil
}

// SizeProfile is the per-size expansion profile of a graph: Profile[k]
// (1-indexed by set size) is the minimum objective ratio over sets of size
// exactly k. ArgSets holds uint64 witnesses (n ≤ 64 only); Witnesses holds
// them for every n.
type SizeProfile struct {
	MinExpansion []float64 // index 0 unused
	ArgSets      []uint64
	Witnesses    []*bitset.Set
}

// OrdinaryProfile computes the exact per-size expansion profile up to sets
// of size maxK under the default work budget. The overall β for
// α = maxK/n is the minimum over the profile — the profile additionally
// shows *where* the bottleneck sits, which the paper's α-parameterized
// definition quantifies over.
func OrdinaryProfile(g *graph.Graph, maxK int) (*SizeProfile, error) {
	return Profile(g, ObjOrdinary, maxK, Options{})
}

// Beta returns the aggregate β over the profile: the minimum across sizes.
func (p *SizeProfile) Beta() float64 {
	best := math.Inf(1)
	for k := 1; k < len(p.MinExpansion); k++ {
		if p.MinExpansion[k] < best {
			best = p.MinExpansion[k]
		}
	}
	return best
}

// EdgeExpansion computes the exact edge expansion (Cheeger constant)
// h(G) = min over 0 < |S| ≤ n/2 of |e(S, S̄)| / |S|, under the default
// work budget, via the engine's by-cardinality enumeration (ObjEdge). Used
// to sanity-check the spectral machinery: for d-regular graphs the
// discrete Cheeger inequality gives (d−λ2)/2 ≤ h(G) ≤ sqrt(2d(d−λ2)).
func EdgeExpansion(g *graph.Graph) (BipartiteResult, error) {
	return EdgeExpansionOpts(g, Options{})
}

// EdgeExpansionOpts is EdgeExpansion with an explicit work budget and pool
// width.
func EdgeExpansionOpts(g *graph.Graph, opt Options) (BipartiteResult, error) {
	n := g.N()
	if n < 2 {
		return BipartiteResult{}, fmt.Errorf("expansion: need n >= 2")
	}
	opt.MaxK = n / 2
	opt.Alpha = 0
	res, err := Exact(g, ObjEdge, opt)
	if err != nil {
		return BipartiteResult{}, err
	}
	return BipartiteResult{Value: res.Value, ArgSet: res.ArgSet, Witness: res.Witness, Sets: res.Sets}, nil
}

// CheegerBounds returns the discrete Cheeger bracket
// [(d−λ2)/2, sqrt(2d(d−λ2))] for a d-regular graph with second eigenvalue
// lambda2.
func CheegerBounds(d int, lambda2 float64) (lo, hi float64) {
	gap := float64(d) - lambda2
	if gap < 0 {
		gap = 0
	}
	return gap / 2, math.Sqrt(2 * float64(d) * gap)
}
