package expansion

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// BipartiteResult reports an exact bipartite measurement with its witness
// subset. ArgSet is a bitmask over the S side, populated when |S| ≤ 64;
// Witness is populated for every |S|.
type BipartiteResult struct {
	Value   float64
	ArgSet  uint64
	Witness *bitset.Set
	Sets    int
}

// MinBipartiteExpansion computes min over nonempty S' ⊆ S of
// |Γ(S')| / |S'| — the bipartite vertex expansion of Section 2.1, the
// quantity lower-bounded by Lemma 4.4(4) for the core graph — under the
// default work budget.
func MinBipartiteExpansion(b *graph.Bipartite) (BipartiteResult, error) {
	return MinBipartiteExpansionOpts(b, Options{})
}

// MinBipartiteExpansionOpts is MinBipartiteExpansion with an explicit work
// budget, pool width, and optional subset-size cap (Options.MaxK; 0 means
// all sizes). Two regimes:
//
//   - |S| ≤ 64 and the 2^|S| Gray-code walk fits the budget: all subsets
//     are visited in Gray order, maintaining per-N-vertex coverage counts
//     incrementally — O(2^|S| · avg-deg) total, one unit of work per set.
//   - otherwise: by-cardinality enumeration over the chunked worker pool,
//     which makes a MaxK cutoff prune the space instead of filtering, at
//     O(|S'| · avg-deg) per set.
func MinBipartiteExpansionOpts(b *graph.Bipartite, opt Options) (BipartiteResult, error) {
	s := b.NS()
	if s == 0 {
		return BipartiteResult{}, fmt.Errorf("expansion: empty S side")
	}
	budget := opt.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	maxK := opt.MaxK
	if maxK <= 0 || maxK > s {
		maxK = s
	}
	if s <= 62 && maxK == s && uint64(1)<<uint(s) <= budget {
		return grayBipartite(b), nil
	}
	return bigBipartite(b, maxK, budget, opt.Workers, opt.Recompute, opt.Ctx)
}

// bipRecomputeRun is the legacy colex chunk walk: a full CoverSet
// recomputation per set, kept as the oracle for bipIncRun.
func bipRecomputeRun(b *graph.Bipartite) func(chunk) chunkBest {
	s := b.NS()
	return func(c chunk) chunkBest {
		S := bitset.New(s)
		combinationInto(S, s, c.k, c.start)
		members := make([]int, 0, c.k)
		scratch := make([]int8, b.NN())
		var setBuf *bitset.Set
		best := chunkBest{}
		for i := uint64(0); ; {
			best.sets++
			members = S.AppendIndices(members[:0])
			if num := b.CoverSet(members, scratch); !best.found || num < best.num {
				best.found = true
				best.num = num
				if setBuf == nil {
					setBuf = bitset.New(s)
				}
				setBuf.Copy(S)
				best.setBig = setBuf
			}
			if i++; i >= c.count {
				return best
			}
			if !S.NextCombination() {
				return best
			}
		}
	}
}

// bipIncRun is the revolving-door incremental kernel: counts[v] is the
// number of chosen S-side vertices adjacent to N-side vertex v, and the
// covered total |Γ(S')| moves only along the two swapped vertices' rows.
func bipIncRun(b *graph.Bipartite) func(chunk) chunkBest {
	s := b.NS()
	var pool sync.Pool
	pool.New = func() any {
		return &incArena{
			rd:   &bitset.RevolvingDoor{},
			outs: make([]int, swapBatch),
			ins:  make([]int, swapBatch),
			cnt:  make([]int32, b.NN()),
			S:    bitset.New(s),
		}
	}
	return func(c chunk) chunkBest {
		ar := pool.Get().(*incArena)
		defer pool.Put(ar)
		rd, cnt, S := ar.rd, ar.cnt, ar.S
		rd.Reset(s, c.k, c.start)
		rd.FillSet(S)
		clear(cnt)
		covered := 0
		for _, u := range rd.Members() {
			for _, v := range b.NeighborsOfS(u) {
				if cnt[v] == 0 {
					covered++
				}
				cnt[v]++
			}
		}
		improve := func(best *chunkBest, num int) {
			best.found = true
			best.num = num
			if ar.setBuf == nil {
				ar.setBuf = bitset.New(s)
			}
			ar.setBuf.Copy(S)
			best.setBig = ar.setBuf
		}
		best := chunkBest{sets: 1}
		improve(&best, covered)
		for done := uint64(1); done < c.count; {
			want := c.count - done
			if want > swapBatch {
				want = swapBatch
			}
			m := rd.NextBatch(ar.outs[:want], ar.ins[:want])
			if m == 0 {
				break
			}
			for i := 0; i < m; i++ {
				out, in := ar.outs[i], ar.ins[i]
				for _, v := range b.NeighborsOfS(out) {
					cnt[v]--
					if cnt[v] == 0 {
						covered--
					}
				}
				for _, v := range b.NeighborsOfS(in) {
					if cnt[v] == 0 {
						covered++
					}
					cnt[v]++
				}
				S.Remove(out)
				S.Add(in)
				if covered < best.num || (covered == best.num && S.Compare(best.setBig) < 0) {
					improve(&best, covered)
				}
			}
			done += uint64(m)
			best.sets += m
		}
		if best.setBig != nil {
			ar.setBuf = nil
		}
		return best
	}
}

// grayBipartite is the legacy incremental Gray-code walk (|S| ≤ 62).
func grayBipartite(b *graph.Bipartite) BipartiteResult {
	s := b.NS()
	counts := make([]int32, b.NN())
	inSet := make([]bool, s)
	covered := 0
	size := 0
	cur := uint64(0)
	best := BipartiteResult{Value: math.Inf(1)}
	total := uint64(1) << uint(s)
	for i := uint64(1); i < total; i++ {
		flip := bits.TrailingZeros64(i)
		adding := !inSet[flip]
		inSet[flip] = adding
		if adding {
			cur |= 1 << uint(flip)
			size++
			for _, v := range b.NeighborsOfS(flip) {
				if counts[v] == 0 {
					covered++
				}
				counts[v]++
			}
		} else {
			cur &^= 1 << uint(flip)
			size--
			for _, v := range b.NeighborsOfS(flip) {
				counts[v]--
				if counts[v] == 0 {
					covered--
				}
			}
		}
		if size == 0 {
			continue
		}
		best.Sets++
		if ratio := float64(covered) / float64(size); ratio < best.Value {
			best.Value = ratio
			best.ArgSet = cur
		}
	}
	best.Witness = fromMask(s, best.ArgSet)
	return best
}

// bigBipartite enumerates subsets of the S side by cardinality over the
// chunked pool, with the same deterministic smallest-witness merge as the
// graph engine. The default kernel walks each chunk in revolving-door
// order with an incrementally maintained N-side coverage-count array —
// O(deg(out)+deg(in)) per set; the colex recompute walk survives behind
// recompute as the correctness oracle. Both produce identical chunk
// winners: (min covered count, numerically smallest witness).
func bigBipartite(b *graph.Bipartite, maxK int, budget uint64, workers int, recompute bool, ctx context.Context) (BipartiteResult, error) {
	s := b.NS()
	work := enumWork(s, maxK, ObjOrdinary) // one unit per set
	if work > budget {
		return BipartiteResult{}, fmt.Errorf("expansion: bipartite enumeration on |S|=%d (|S'| ≤ %d) needs %d work units, budget is %d; raise Options.Budget or set Options.MaxK",
			s, maxK, work, budget)
	}
	if workers <= 0 {
		workers = poolWidth()
	}
	chunks := makeChunks(s, maxK, ObjOrdinary, work, workers)
	run := bipIncRun(b)
	if recompute {
		run = bipRecomputeRun(b)
	}
	results, err := runPool(ctx, chunks, workers, run)
	if err != nil {
		return BipartiteResult{}, err
	}
	res := BipartiteResult{Value: math.Inf(1)}
	var best *chunkBest
	bestK := 0
	for i := range results {
		r := &results[i]
		res.Sets += r.sets
		if !r.found {
			continue
		}
		k := chunks[i].k
		if best == nil ||
			int64(r.num)*int64(bestK) < int64(best.num)*int64(k) ||
			(int64(r.num)*int64(bestK) == int64(best.num)*int64(k) && r.setBig.Compare(best.setBig) < 0) {
			best = r
			bestK = k
		}
	}
	if best == nil {
		return res, fmt.Errorf("expansion: no nonempty subset enumerated")
	}
	res.Value = float64(best.num) / float64(bestK)
	res.Witness = best.setBig
	if s <= 64 {
		res.ArgSet = toMask(best.setBig)
	}
	return res, nil
}

// SizeProfile is the per-size expansion profile of a graph: Profile[k]
// (1-indexed by set size) is the minimum objective ratio over sets of size
// exactly k. ArgSets holds uint64 witnesses (n ≤ 64 only); Witnesses holds
// them for every n.
type SizeProfile struct {
	MinExpansion []float64 // index 0 unused
	ArgSets      []uint64
	Witnesses    []*bitset.Set
}

// OrdinaryProfile computes the exact per-size expansion profile up to sets
// of size maxK under the default work budget. The overall β for
// α = maxK/n is the minimum over the profile — the profile additionally
// shows *where* the bottleneck sits, which the paper's α-parameterized
// definition quantifies over.
func OrdinaryProfile(g *graph.Graph, maxK int) (*SizeProfile, error) {
	return Profile(g, ObjOrdinary, maxK, Options{})
}

// Beta returns the aggregate β over the profile: the minimum across sizes.
func (p *SizeProfile) Beta() float64 {
	best := math.Inf(1)
	for k := 1; k < len(p.MinExpansion); k++ {
		if p.MinExpansion[k] < best {
			best = p.MinExpansion[k]
		}
	}
	return best
}

// EdgeExpansion computes the exact edge expansion (Cheeger constant)
// h(G) = min over 0 < |S| ≤ n/2 of |e(S, S̄)| / |S|, under the default
// work budget, via the engine's by-cardinality enumeration (ObjEdge). Used
// to sanity-check the spectral machinery: for d-regular graphs the
// discrete Cheeger inequality gives (d−λ2)/2 ≤ h(G) ≤ sqrt(2d(d−λ2)).
func EdgeExpansion(g *graph.Graph) (BipartiteResult, error) {
	return EdgeExpansionOpts(g, Options{})
}

// EdgeExpansionOpts is EdgeExpansion with an explicit work budget and pool
// width.
func EdgeExpansionOpts(g *graph.Graph, opt Options) (BipartiteResult, error) {
	n := g.N()
	if n < 2 {
		return BipartiteResult{}, fmt.Errorf("expansion: need n >= 2")
	}
	opt.MaxK = n / 2
	opt.Alpha = 0
	res, err := Exact(g, ObjEdge, opt)
	if err != nil {
		return BipartiteResult{}, err
	}
	return BipartiteResult{Value: res.Value, ArgSet: res.ArgSet, Witness: res.Witness, Sets: res.Sets}, nil
}

// CheegerBounds returns the discrete Cheeger bracket
// [(d−λ2)/2, sqrt(2d(d−λ2))] for a d-regular graph with second eigenvalue
// lambda2.
func CheegerBounds(d int, lambda2 float64) (lo, hi float64) {
	gap := float64(d) - lambda2
	if gap < 0 {
		gap = 0
	}
	return gap / 2, math.Sqrt(2 * float64(d) * gap)
}
