package expansion

import (
	"fmt"
	"math"
	"math/bits"

	"wexp/internal/graph"
)

// BipartiteResult reports an exact bipartite measurement with its witness
// subset (as a bitmask over the S side).
type BipartiteResult struct {
	Value  float64
	ArgSet uint64
}

// MaxExactBipartiteS bounds the exhaustive bipartite solvers.
const MaxExactBipartiteS = 24

// MinBipartiteExpansion computes min over nonempty S' ⊆ S of
// |Γ(S')| / |S'| — the bipartite vertex expansion of Section 2.1, the
// quantity lower-bounded by Lemma 4.4(4) for the core graph. It walks all
// subsets in Gray-code order, maintaining the per-N-vertex coverage count
// incrementally, so the cost is O(2^|S| · avg-deg).
func MinBipartiteExpansion(b *graph.Bipartite) (BipartiteResult, error) {
	s := b.NS()
	if s > MaxExactBipartiteS {
		return BipartiteResult{}, fmt.Errorf("expansion: |S|=%d exceeds bipartite exact limit %d", s, MaxExactBipartiteS)
	}
	if s == 0 {
		return BipartiteResult{}, fmt.Errorf("expansion: empty S side")
	}
	counts := make([]int32, b.NN())
	inSet := make([]bool, s)
	covered := 0
	size := 0
	cur := uint64(0)
	best := BipartiteResult{Value: math.Inf(1)}
	total := uint64(1) << uint(s)
	for i := uint64(1); i < total; i++ {
		flip := bits.TrailingZeros64(i)
		adding := !inSet[flip]
		inSet[flip] = adding
		if adding {
			cur |= 1 << uint(flip)
			size++
			for _, v := range b.NeighborsOfS(flip) {
				if counts[v] == 0 {
					covered++
				}
				counts[v]++
			}
		} else {
			cur &^= 1 << uint(flip)
			size--
			for _, v := range b.NeighborsOfS(flip) {
				counts[v]--
				if counts[v] == 0 {
					covered--
				}
			}
		}
		if size == 0 {
			continue
		}
		if ratio := float64(covered) / float64(size); ratio < best.Value {
			best.Value = ratio
			best.ArgSet = cur
		}
	}
	return best, nil
}

// SizeProfile is the per-size expansion profile of a graph: Profile[k]
// (1-indexed by set size) is the minimum |Γ⁻(S)|/|S| over sets of size
// exactly k.
type SizeProfile struct {
	MinExpansion []float64 // index 0 unused
	ArgSets      []uint64
}

// OrdinaryProfile computes the exact per-size expansion profile up to sets
// of size maxK (graph must have n ≤ 20). The overall β for α = maxK/n is
// the minimum over the profile — the profile additionally shows *where*
// the bottleneck sits, which the paper's α-parameterized definition
// quantifies over.
func OrdinaryProfile(g *graph.Graph, maxK int) (*SizeProfile, error) {
	n := g.N()
	if n > maxExactN {
		return nil, fmt.Errorf("expansion: n=%d exceeds exact limit %d", n, maxExactN)
	}
	if maxK < 1 || maxK > n {
		return nil, fmt.Errorf("expansion: bad maxK %d", maxK)
	}
	masks := adjMasks(g)
	p := &SizeProfile{
		MinExpansion: make([]float64, maxK+1),
		ArgSets:      make([]uint64, maxK+1),
	}
	for k := 1; k <= maxK; k++ {
		p.MinExpansion[k] = math.Inf(1)
	}
	for S := uint64(1); S < 1<<uint(n); S++ {
		k := bits.OnesCount64(S)
		if k > maxK {
			continue
		}
		var nbr uint64
		for rest := S; rest != 0; rest &= rest - 1 {
			nbr |= masks[bits.TrailingZeros64(rest)]
		}
		ratio := float64(bits.OnesCount64(nbr&^S)) / float64(k)
		if ratio < p.MinExpansion[k] {
			p.MinExpansion[k] = ratio
			p.ArgSets[k] = S
		}
	}
	return p, nil
}

// Beta returns the aggregate β over the profile: the minimum across sizes.
func (p *SizeProfile) Beta() float64 {
	best := math.Inf(1)
	for k := 1; k < len(p.MinExpansion); k++ {
		if p.MinExpansion[k] < best {
			best = p.MinExpansion[k]
		}
	}
	return best
}

// EdgeExpansion computes the exact edge expansion (Cheeger constant)
// h(G) = min over 0 < |S| ≤ n/2 of |e(S, S̄)| / |S|, for n ≤ 20. Used to
// sanity-check the spectral machinery: for d-regular graphs the discrete
// Cheeger inequality gives (d−λ2)/2 ≤ h(G) ≤ sqrt(2d(d−λ2)).
func EdgeExpansion(g *graph.Graph) (BipartiteResult, error) {
	n := g.N()
	if n > maxExactN {
		return BipartiteResult{}, fmt.Errorf("expansion: n=%d exceeds exact limit %d", n, maxExactN)
	}
	if n < 2 {
		return BipartiteResult{}, fmt.Errorf("expansion: need n >= 2")
	}
	masks := adjMasks(g)
	best := BipartiteResult{Value: math.Inf(1)}
	half := n / 2
	for S := uint64(1); S < 1<<uint(n); S++ {
		k := bits.OnesCount64(S)
		if k > half {
			continue
		}
		cut := 0
		for rest := S; rest != 0; rest &= rest - 1 {
			v := bits.TrailingZeros64(rest)
			cut += bits.OnesCount64(masks[v] &^ S)
		}
		if ratio := float64(cut) / float64(k); ratio < best.Value {
			best.Value = ratio
			best.ArgSet = S
		}
	}
	return best, nil
}

// CheegerBounds returns the discrete Cheeger bracket
// [(d−λ2)/2, sqrt(2d(d−λ2))] for a d-regular graph with second eigenvalue
// lambda2.
func CheegerBounds(d int, lambda2 float64) (lo, hi float64) {
	gap := float64(d) - lambda2
	if gap < 0 {
		gap = 0
	}
	return gap / 2, math.Sqrt(2 * float64(d) * gap)
}
