package expansion

import (
	"math"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/rng"
)

func TestUniqueProfileStar(t *testing.T) {
	// Star: singletons have unique expansion deg ≥ 1; any two leaves share
	// the center (collision) → 0.
	g := gen.Star(8)
	p, err := UniqueProfile(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.MinExpansion[1] != 1 {
		t.Fatalf("size-1 unique = %g", p.MinExpansion[1])
	}
	for k := 2; k <= 4; k++ {
		if p.MinExpansion[k] != 0 {
			t.Fatalf("size-%d unique = %g, want 0", k, p.MinExpansion[k])
		}
	}
}

func TestWirelessProfileCPlus(t *testing.T) {
	g := gen.CPlus(6)
	p, err := WirelessProfile(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Size-3 worst case {s0,x,y}: a singleton subset still covers the
	// remaining clique; positive.
	if p.MinExpansion[3] <= 0 {
		t.Fatalf("size-3 wireless = %g", p.MinExpansion[3])
	}
}

func TestProfilesOrderingPointwise(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyi(10, 0.35, r)
		tp, err := Profiles(g, 5)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= tp.MaxK; k++ {
			if tp.Ordinary[k] < tp.Wireless[k]-1e-9 || tp.Wireless[k] < tp.Unique[k]-1e-9 {
				t.Fatalf("trial %d size %d: ordering violated β=%g βw=%g βu=%g",
					trial, k, tp.Ordinary[k], tp.Wireless[k], tp.Unique[k])
			}
		}
	}
}

func TestProfilesAgreeWithAggregates(t *testing.T) {
	r := rng.New(2)
	g := gen.ErdosRenyi(10, 0.4, r)
	tp, err := Profiles(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	minOver := func(xs []float64) float64 {
		m := math.Inf(1)
		for k := 1; k < len(xs); k++ {
			if xs[k] < m {
				m = xs[k]
			}
		}
		return m
	}
	exact, err := ExactWireless(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(minOver(tp.Wireless)-exact.Value) > 1e-12 {
		t.Fatalf("wireless profile min %g != exact %g", minOver(tp.Wireless), exact.Value)
	}
	exactU, err := ExactUnique(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(minOver(tp.Unique)-exactU.Value) > 1e-12 {
		t.Fatalf("unique profile min %g != exact %g", minOver(tp.Unique), exactU.Value)
	}
}

func TestProfileValidation(t *testing.T) {
	// C(40,20) ≈ 1.4e11 sets exceed the default budget.
	if _, err := UniqueProfile(gen.Cycle(40), 20); err == nil {
		t.Fatal("budget-exceeding unique profile accepted")
	}
	// Wireless cost Σ C(30,k≤15)·2^k is far over budget.
	if _, err := WirelessProfile(gen.Cycle(30), 15); err == nil {
		t.Fatal("budget-exceeding wireless profile accepted")
	}
	if _, err := WirelessProfile(gen.Cycle(8), 0); err == nil {
		t.Fatal("maxK=0 accepted")
	}
	if _, err := UniqueProfile(gen.Cycle(8), 9); err == nil {
		t.Fatal("maxK>n accepted")
	}
	// Profiles that the old uint64 path rejected outright now run: n=24
	// with a small cutoff fits the default budget.
	p, err := UniqueProfile(gen.Cycle(24), 3)
	if err != nil {
		t.Fatalf("n=24 maxK=3 rejected: %v", err)
	}
	if p.MinExpansion[1] != 2 {
		t.Fatalf("cycle singleton unique expansion = %g, want 2", p.MinExpansion[1])
	}
}

func TestAlphaSweepMonotone(t *testing.T) {
	r := rng.New(3)
	g := gen.ErdosRenyi(10, 0.4, r)
	pts, err := AlphaSweep(g, []float64{0.1, 0.2, 0.3, 0.5, 0.8, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Ordinary > pts[i-1].Ordinary+1e-9 ||
			pts[i].Wireless > pts[i-1].Wireless+1e-9 ||
			pts[i].Unique > pts[i-1].Unique+1e-9 {
			t.Fatalf("β(α) not non-increasing at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	// Each point agrees with the direct exact solver.
	for _, pt := range pts {
		direct, err := ExactWireless(g, pt.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct.Value-pt.Wireless) > 1e-12 {
			t.Fatalf("α=%g: sweep %g vs direct %g", pt.Alpha, pt.Wireless, direct.Value)
		}
	}
}

func TestAlphaSweepDegenerate(t *testing.T) {
	if _, err := AlphaSweep(gen.Cycle(8), []float64{0.01}); err == nil {
		t.Fatal("no admissible α accepted")
	}
}
