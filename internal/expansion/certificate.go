package expansion

// CertKind classifies how much trust a Result carries: a full exact
// enumeration, a randomized-certified bracket with an explicit failure
// probability, or an uncertified estimate.
type CertKind string

const (
	// CertExact marks a value proved by exhaustive (possibly
	// branch-and-bound-pruned) enumeration. FailureProb is 0 and the CI
	// collapses to the value itself.
	CertExact CertKind = "exact"
	// CertCertified marks a value bracketed by the randomized PPSZ-style
	// solver: the upper end is witnessed by an exactly evaluated set, the
	// lower end holds except with probability ≤ FailureProb.
	CertCertified CertKind = "certified"
	// CertEstimate marks an uncertified sampling estimate (tier four).
	CertEstimate CertKind = "estimate"
)

// Certificate states what a Result's Value is worth. It is carried through
// expansion.Result, the facade, cmd/wexp JSON output, and wexpd response
// bodies. All fields are deterministic functions of (graph, objective,
// options) — in particular of the seed — so certificates are safe to embed
// in byte-level memoized response caches.
type Certificate struct {
	// Kind is exact, certified, or estimate.
	Kind CertKind `json:"kind"`
	// FailureProb bounds the probability that the true value lies below
	// CILow (certified kind only; 0 for exact).
	FailureProb float64 `json:"failure_prob,omitempty"`
	// CILow / CIHigh bracket the value. For certified results CIHigh is a
	// witnessed (exactly evaluated) upper bound and CILow the largest
	// threshold the trial pool rejected; for exact results both equal Value.
	CILow  float64 `json:"ci_low,omitempty"`
	CIHigh float64 `json:"ci_high,omitempty"`
	// Trials counts randomized trials executed (0 for exact). Deterministic
	// at any worker count: the trial plan depends only on the instance and
	// options, never on scheduling.
	Trials int `json:"trials,omitempty"`
}
