package expansion

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// countdownCtx is a context whose Err() flips to Canceled after a fixed
// number of observations — a deterministic stand-in for "cancelled while
// the enumeration is in flight", independent of scheduling and timers.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestExactCancelledBeforeStart(t *testing.T) {
	g := gen.ErdosRenyi(20, 0.3, rng.New(7))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Exact(g, ObjOrdinary, Options{RunOpts: runopts.RunOpts{Workers: workers}, Alpha: 0.5, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got err %v, want context.Canceled", workers, err)
		}
	}
}

func TestExactCancelledMidRun(t *testing.T) {
	g := gen.ErdosRenyi(20, 0.3, rng.New(7))
	for _, workers := range []int{1, 4} {
		ctx := newCountdownCtx(2)
		_, err := Exact(g, ObjOrdinary, Options{RunOpts: runopts.RunOpts{Workers: workers}, Alpha: 0.5, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got err %v, want context.Canceled", workers, err)
		}
	}
}

func TestExactContextDoesNotPerturbResult(t *testing.T) {
	// A live (never-cancelled) context must be invisible: same value, same
	// witness as the nil-context run.
	g := gen.ErdosRenyi(18, 0.3, rng.New(3))
	for _, obj := range []Objective{ObjOrdinary, ObjUnique, ObjWireless} {
		base, err := Exact(g, obj, Options{Alpha: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := Exact(g, obj, Options{Alpha: 0.5, Ctx: context.Background()})
		if err != nil {
			t.Fatal(err)
		}
		if base.Value != withCtx.Value || base.ArgSet != withCtx.ArgSet {
			t.Fatalf("%v: context run diverged: %v/%x vs %v/%x",
				obj, base.Value, base.ArgSet, withCtx.Value, withCtx.ArgSet)
		}
	}
}

func TestBipartiteCancelled(t *testing.T) {
	r := rng.New(5)
	b := gen.RandomBipartite(70, 40, 0.1, r) // |S| > 62 forces the pooled path
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MinBipartiteExpansionOpts(b, Options{MaxK: 2, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
}
