package expansion

import (
	"errors"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// sameSearch asserts two branch-and-bound results are bit-identical in
// every observable field — answer, witnesses, and all four search-effort
// counters.
func sameSearch(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Value != b.Value || a.ArgSet != b.ArgSet || a.ArgInner != b.ArgInner {
		t.Fatalf("%s: answer differs: (%v,%b,%b) vs (%v,%b,%b)",
			label, a.Value, a.ArgSet, a.ArgInner, b.Value, b.ArgSet, b.ArgInner)
	}
	if (a.Witness == nil) != (b.Witness == nil) ||
		(a.Witness != nil && a.Witness.Compare(b.Witness) != 0) {
		t.Fatalf("%s: witness differs", label)
	}
	if a.Sets != b.Sets || a.Pruned != b.Pruned ||
		a.Visited != b.Visited || a.SubtreesPruned != b.SubtreesPruned {
		t.Fatalf("%s: counters differ: sets %d/%d pruned %d/%d visited %d/%d subtrees %d/%d",
			label, a.Sets, b.Sets, a.Pruned, b.Pruned,
			a.Visited, b.Visited, a.SubtreesPruned, b.SubtreesPruned)
	}
}

// TestBnbWorkerInvariance: the branch-and-bound search partitions the
// prefix-decision tree into subproblems that are a function of the
// instance alone, so Value, witnesses, AND the Sets/Pruned/Visited/
// SubtreesPruned counters must be bit-identical at every worker count.
func TestBnbWorkerInvariance(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		obj  Objective
		opt  Options
	}{
		{"hypercube4-ordinary", gen.Hypercube(4), ObjOrdinary, Options{Alpha: 0.5}},
		{"hypercube4-wireless", gen.Hypercube(4), ObjWireless, Options{Alpha: 0.5}},
		{"hypercube4-edge", gen.Hypercube(4), ObjEdge, Options{MaxK: 8}},
		{"er24-ordinary", gen.ErdosRenyi(24, 0.2, rng.New(7)), ObjOrdinary, Options{Alpha: 0.5}},
		{"er40-ordinary", gen.ErdosRenyi(40, 0.15, rng.New(9)), ObjOrdinary, Options{MaxK: 8}},
		{"er70-big-ordinary", gen.ErdosRenyi(70, 0.1, rng.New(11)), ObjOrdinary, Options{MaxK: 5}},
	}
	for _, tc := range cases {
		opt := tc.opt
		opt.Workers = 1
		base, err := Exact(tc.g, tc.obj, opt)
		if err != nil {
			t.Fatalf("%s: workers=1: %v", tc.name, err)
		}
		if base.Visited == 0 {
			t.Fatalf("%s: expected the branch-and-bound path (visited=0, kernel %s)",
				tc.name, base.Kernel)
		}
		for _, w := range []int{2, 8} {
			opt.Workers = w
			r, err := Exact(tc.g, tc.obj, opt)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", tc.name, w, err)
			}
			sameSearch(t, tc.name, base, r)
		}
	}
}

// TestBnbPruneSoundness: on a random corpus spanning densities and
// objectives, the default branch-and-bound search must reproduce the
// recompute oracle's value and witness exactly — pruning may only skip
// sets that provably cannot improve the minimum — and its accounting must
// cover the full enumeration space: every candidate set is either
// evaluated or pruned (seed evaluations can only add to the left side).
func TestBnbPruneSoundness(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 12; trial++ {
		n := 10 + int(r.Uint64()%7) // 10..16
		p := 0.15 + 0.05*float64(trial%5)
		g := gen.ErdosRenyi(n, p, r)
		for _, obj := range []Objective{ObjOrdinary, ObjWireless, ObjUnique, ObjEdge} {
			opt := Options{MaxK: n / 2}
			bnb, err1 := Exact(g, obj, opt)
			oracle, err2 := Exact(g, obj, Options{MaxK: n / 2, Recompute: true})
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d n=%d obj=%v: errs %v / %v", trial, n, obj, err1, err2)
			}
			if bnb.Value != oracle.Value || bnb.ArgSet != oracle.ArgSet {
				t.Fatalf("trial %d n=%d obj=%v: bnb (%v,%b) != oracle (%v,%b)",
					trial, n, obj, bnb.Value, bnb.ArgSet, oracle.Value, oracle.ArgSet)
			}
			if obj == ObjWireless && bnb.ArgInner != oracle.ArgInner {
				t.Fatalf("trial %d n=%d: inner witness %b != %b", trial, n, bnb.ArgInner, oracle.ArgInner)
			}
			// Full-space accounting: every candidate set is either evaluated
			// or pruned (seed-pass evaluations can only add to the left side).
			space := int64(0)
			for k := 1; k <= n/2; k++ {
				c := int64(1)
				for i := 0; i < k; i++ {
					c = c * int64(n-i) / int64(i+1)
				}
				space += c
			}
			if got := int64(bnb.Sets) + bnb.Pruned; got < space {
				t.Fatalf("trial %d n=%d obj=%v: bnb accounts for %d sets < space %d",
					trial, n, obj, got, space)
			}
		}
	}
}

// TestBnbExactFrontierN120: the acceptance instance for this change — an
// exact β on n=120 completing within the default budget, far past the
// flat enumeration frontier (C(120,6) ≈ 3.7e9 alone overflows it), with a
// subtree-prune rate ≥ 50% and bit-identical results and counters at
// 1, 2, and 8 workers.
func TestBnbExactFrontierN120(t *testing.T) {
	g := gen.ErdosRenyi(120, 0.08, rng.New(120))
	base, err := Exact(g, ObjOrdinary, Options{MaxK: 6, RunOpts: runopts.RunOpts{Workers: 1}})
	if err != nil {
		t.Fatalf("n=120 under default budget: %v", err)
	}
	if base.Kernel != "big-bnb" {
		t.Fatalf("kernel = %s, want big-bnb", base.Kernel)
	}
	if base.Value != 2.0 {
		t.Fatalf("β(ER(120,0.08), k≤6) = %v, want 2", base.Value)
	}
	if base.Witness == nil || base.Witness.Count() == 0 {
		t.Fatal("missing witness")
	}
	rate := float64(base.Pruned) / (float64(base.Pruned) + float64(base.Sets))
	if rate < 0.5 {
		t.Fatalf("prune rate %.3f < 0.5 (sets=%d pruned=%d)", rate, base.Sets, base.Pruned)
	}
	if base.SubtreesPruned == 0 {
		t.Fatal("no subtrees pruned on a 3.7e9-set instance")
	}
	for _, w := range []int{2, 8} {
		r, err := Exact(g, ObjOrdinary, Options{MaxK: 6, RunOpts: runopts.RunOpts{Workers: w}})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameSearch(t, "n120", base, r)
	}
}

// TestBnbBudgetErrorIsTyped: a budget blow-up must wrap ErrBudget so
// callers can fall back (cmd/wexp's bracket/estimate tiers key on it).
func TestBnbBudgetErrorIsTyped(t *testing.T) {
	_, err := Exact(gen.ErdosRenyi(60, 0.5, rng.New(1)), ObjOrdinary,
		Options{MaxK: 30, RunOpts: runopts.RunOpts{Budget: 1 << 12}})
	if err == nil {
		t.Fatal("2^12 budget accepted a C(60,30) search")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err %v does not wrap ErrBudget", err)
	}
}
