package spokesman

import (
	"fmt"

	"wexp/internal/graph"
)

// PartitionResult is the output of Procedure Partition (Appendix A.1.2,
// illustrated by the paper's Figure 4): a partition of the considered
// N-vertices into Nuni, Nmany, Ntmp and of S into Suni, Stmp satisfying the
// partition conditions (P1)–(P4).
type PartitionResult struct {
	B *graph.Bipartite

	Considered []bool // which N-vertices participated (the procedure may be run on a subset of N)
	InSuni     []bool
	InStmp     []bool
	InNuni     []bool
	InNmany    []bool
	InNtmp     []bool

	Suni  []int // promotion order
	Steps int
}

// Partition runs Procedure Partition on the N-subset given by consider
// (nil means all of N). At each step it promotes the Stmp-vertex v
// maximizing gain(v) = |Ntmp(v)| − 2|Nuni(v)|, stopping when Stmp is empty
// or every gain is non-positive.
func Partition(b *graph.Bipartite, consider []bool) *PartitionResult {
	s, n := b.NS(), b.NN()
	if consider == nil {
		consider = make([]bool, n)
		for i := range consider {
			consider[i] = true
		}
	}
	res := &PartitionResult{
		B:          b,
		Considered: consider,
		InSuni:     make([]bool, s),
		InStmp:     make([]bool, s),
		InNuni:     make([]bool, n),
		InNmany:    make([]bool, n),
		InNtmp:     make([]bool, n),
	}
	// ntmpDeg[u], nuniDeg[u]: |Ntmp(u)| and |Nuni(u)| for u ∈ Stmp.
	ntmpDeg := make([]int, s)
	nuniDeg := make([]int, s)
	for u := 0; u < s; u++ {
		res.InStmp[u] = true
		for _, v := range b.NeighborsOfS(u) {
			if consider[v] {
				ntmpDeg[u]++
			}
		}
	}
	for v := 0; v < n; v++ {
		res.InNtmp[v] = consider[v]
	}
	for {
		// Pick v ∈ Stmp maximizing gain.
		best, bestGain := -1, 0
		for u := 0; u < s; u++ {
			if !res.InStmp[u] {
				continue
			}
			if g := ntmpDeg[u] - 2*nuniDeg[u]; best == -1 || g > bestGain {
				best, bestGain = u, g
			}
		}
		if best == -1 || bestGain <= 0 {
			break
		}
		v := best
		res.InStmp[v] = false
		res.InSuni[v] = true
		res.Suni = append(res.Suni, v)
		res.Steps++
		// Nuni(v) → Nmany; Ntmp(v) → Nuni. Update neighbor counters of the
		// affected N-vertices' other S-neighbors.
		for _, x := range b.NeighborsOfS(v) {
			switch {
			case res.InNuni[x]:
				res.InNuni[x] = false
				res.InNmany[x] = true
				for _, u := range b.NeighborsOfN(int(x)) {
					nuniDeg[u]--
				}
			case res.InNtmp[x]:
				res.InNtmp[x] = false
				res.InNuni[x] = true
				for _, u := range b.NeighborsOfN(int(x)) {
					ntmpDeg[u]--
					nuniDeg[u]++
				}
			}
		}
	}
	return res
}

// Counts returns (|Nuni|, |Nmany|, |Ntmp|).
func (p *PartitionResult) Counts() (nuni, nmany, ntmp int) {
	for v := range p.InNuni {
		switch {
		case p.InNuni[v]:
			nuni++
		case p.InNmany[v]:
			nmany++
		case p.InNtmp[v]:
			ntmp++
		}
	}
	return
}

// EdgeCounts returns (|Euni|, |Etmp|): edges from Stmp to Nuni and to Ntmp
// respectively (partition condition P4's quantities).
func (p *PartitionResult) EdgeCounts() (euni, etmp int) {
	for u := 0; u < p.B.NS(); u++ {
		if !p.InStmp[u] {
			continue
		}
		for _, v := range p.B.NeighborsOfS(u) {
			switch {
			case p.InNuni[v]:
				euni++
			case p.InNtmp[v]:
				etmp++
			}
		}
	}
	return
}

// CheckInvariants verifies partition conditions (P1)–(P4) and the
// disjointness of the partition, returning the first violation found.
func (p *PartitionResult) CheckInvariants() error {
	b := p.B
	for u := 0; u < b.NS(); u++ {
		if p.InSuni[u] && p.InStmp[u] {
			return fmt.Errorf("partition: S-vertex %d in both Suni and Stmp", u)
		}
	}
	for v := 0; v < b.NN(); v++ {
		cnt := 0
		for _, in := range []bool{p.InNuni[v], p.InNmany[v], p.InNtmp[v]} {
			if in {
				cnt++
			}
		}
		if cnt > 1 {
			return fmt.Errorf("partition: N-vertex %d in multiple N-parts", v)
		}
		if p.Considered[v] && cnt != 1 {
			return fmt.Errorf("partition: considered N-vertex %d unassigned", v)
		}
		if !p.Considered[v] && cnt != 0 {
			return fmt.Errorf("partition: unconsidered N-vertex %d assigned", v)
		}
	}
	// (P1) every Nuni vertex has a unique neighbor in Suni.
	for v := 0; v < b.NN(); v++ {
		if !p.InNuni[v] {
			continue
		}
		c := 0
		for _, u := range b.NeighborsOfN(v) {
			if p.InSuni[u] {
				c++
			}
		}
		if c != 1 {
			return fmt.Errorf("partition: P1 violated at N-vertex %d (deg into Suni = %d)", v, c)
		}
	}
	// (P2) every Ntmp vertex has ≥1 Stmp-neighbor and no Suni-neighbor.
	for v := 0; v < b.NN(); v++ {
		if !p.InNtmp[v] {
			continue
		}
		stmpDeg, suniDeg := 0, 0
		for _, u := range b.NeighborsOfN(v) {
			if p.InStmp[u] {
				stmpDeg++
			}
			if p.InSuni[u] {
				suniDeg++
			}
		}
		if suniDeg != 0 {
			return fmt.Errorf("partition: P2 violated at N-vertex %d (has Suni neighbor)", v)
		}
		if stmpDeg == 0 {
			return fmt.Errorf("partition: P2 violated at N-vertex %d (no Stmp neighbor)", v)
		}
	}
	// (P3) |Nuni| ≥ |Nmany|.
	nuni, nmany, ntmp := p.Counts()
	if nuni < nmany {
		return fmt.Errorf("partition: P3 violated (|Nuni|=%d < |Nmany|=%d)", nuni, nmany)
	}
	// (P4) Ntmp empty or |Etmp| ≤ 2|Euni|.
	if ntmp > 0 {
		euni, etmp := p.EdgeCounts()
		if etmp > 2*euni {
			return fmt.Errorf("partition: P4 violated (|Etmp|=%d > 2|Euni|=%d)", etmp, 2*euni)
		}
	}
	return nil
}

// PartitionSelect implements Lemma A.3's selection: run Procedure Partition
// on N^{2δ} (the N-vertices of degree at most twice the average) and return
// Suni, which uniquely covers |Nuni| ≥ γ/(8δ) vertices.
func PartitionSelect(b *graph.Bipartite) Selection {
	twoDelta := 2 * b.AvgDegN()
	consider := make([]bool, b.NN())
	for v := 0; v < b.NN(); v++ {
		consider[v] = float64(b.DegN(v)) <= twoDelta && b.DegN(v) > 0
	}
	p := Partition(b, consider)
	if len(p.Suni) == 0 {
		sb := SingleBest(b)
		sb.Method = "partition"
		return sb
	}
	return Evaluate(b, p.Suni, "partition")
}

// PartitionRecursive implements the near-optimal deterministic argument of
// Lemma A.13 (and its refinement A.15): run Procedure Partition; if Ntmp is
// nonempty, recurse on the residual bipartite graph (Stmp, Ntmp) and return
// whichever of {this level's Suni, the recursive selection} certifies a
// larger unique cover. The guarantee is |Γ¹_S(S')| ≥ γ/(9·log 2δ).
func PartitionRecursive(b *graph.Bipartite) Selection {
	subset := partitionRecurse(b, 0)
	if len(subset) == 0 {
		sb := SingleBest(b)
		sb.Method = "partition-recursive"
		return sb
	}
	return Evaluate(b, subset, "partition-recursive")
}

// maxPartitionDepth caps the recursion defensively; the residual N shrinks
// by ≥1 vertex per level (Lemma A.13 shows |Nuni| ≥ 1 whenever Ntmp ≠ ∅),
// so depth is at most |N|, but a cap keeps adversarial inputs cheap.
const maxPartitionDepth = 64

// partitionRecurse returns a spokesman subset of b's S side in b's local
// index space. Candidates at each level are compared by their unique cover
// measured in that level's graph; by partition condition (P2) the residual
// Ntmp vertices have all their S-neighbors inside Stmp, so the residual
// graph's unique covers agree with the parent's on Ntmp and the comparison
// is conservative.
func partitionRecurse(b *graph.Bipartite, depth int) []int {
	if b.NS() == 0 || b.NN() == 0 {
		return nil
	}
	p := Partition(b, nil)
	cur := p.Suni
	_, _, ntmp := p.Counts()
	if ntmp == 0 || depth >= maxPartitionDepth {
		return cur
	}
	var keepS []int
	for u := 0; u < b.NS(); u++ {
		if p.InStmp[u] {
			keepS = append(keepS, u)
		}
	}
	sub, _ := induceOnSN(b, keepS, p.InNtmp)
	if sub.NS() == 0 || sub.NN() == 0 || sub.NN() >= b.NN() {
		return cur
	}
	recLocal := partitionRecurse(sub, depth+1)
	rec := make([]int, 0, len(recLocal))
	for _, u := range recLocal {
		rec = append(rec, keepS[u])
	}
	if b.UniqueCoverSet(rec, nil) > b.UniqueCoverSet(cur, nil) {
		return rec
	}
	return cur
}

// induceOnSN builds the bipartite subgraph keeping the given S-vertices and
// the N-vertices marked keepN, relabeling both sides densely.
func induceOnSN(b *graph.Bipartite, keepS []int, keepN []bool) (*graph.Bipartite, []int) {
	nMap := make(map[int32]int)
	var nOrig []int
	var edges [][2]int
	for newU, u := range keepS {
		for _, v := range b.NeighborsOfS(u) {
			if !keepN[v] {
				continue
			}
			nv, ok := nMap[v]
			if !ok {
				nv = len(nMap)
				nMap[v] = nv
				nOrig = append(nOrig, int(v))
			}
			edges = append(edges, [2]int{newU, nv})
		}
	}
	bb := graph.NewBipartiteBuilder(len(keepS), len(nMap))
	for _, e := range edges {
		bb.MustAddEdge(e[0], e[1])
	}
	return bb.Build(), nOrig
}
