package spokesman

import (
	"math"
	"testing"

	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

// starBip: S = {0}, N = {0..4}, center covers all uniquely.
func starBip() *graph.Bipartite {
	bb := graph.NewBipartiteBuilder(1, 5)
	for v := 0; v < 5; v++ {
		bb.MustAddEdge(0, v)
	}
	return bb.Build()
}

// collisionBip: two S-vertices with identical neighborhoods — S'={one of
// them} is optimal.
func collisionBip() *graph.Bipartite {
	bb := graph.NewBipartiteBuilder(2, 4)
	for v := 0; v < 4; v++ {
		bb.MustAddEdge(0, v)
		bb.MustAddEdge(1, v)
	}
	return bb.Build()
}

func TestEvaluateCertifies(t *testing.T) {
	b := collisionBip()
	sel := Evaluate(b, []int{0, 1}, "test")
	if sel.Unique != 0 {
		t.Fatalf("both vertices: unique = %d, want 0", sel.Unique)
	}
	sel = Evaluate(b, []int{1}, "test")
	if sel.Unique != 4 {
		t.Fatalf("single vertex: unique = %d, want 4", sel.Unique)
	}
}

func TestEvaluateSortsSubset(t *testing.T) {
	bb := graph.NewBipartiteBuilder(3, 3)
	bb.MustAddEdge(0, 0)
	bb.MustAddEdge(1, 1)
	bb.MustAddEdge(2, 2)
	sel := Evaluate(bb.Build(), []int{2, 0, 1}, "t")
	for i := 1; i < len(sel.Subset); i++ {
		if sel.Subset[i-1] >= sel.Subset[i] {
			t.Fatalf("subset not sorted: %v", sel.Subset)
		}
	}
	if sel.Unique != 3 {
		t.Fatalf("unique = %d", sel.Unique)
	}
}

func TestExhaustiveStarAndCollision(t *testing.T) {
	sel, err := Exhaustive(starBip())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Unique != 5 {
		t.Fatalf("star optimum = %d, want 5", sel.Unique)
	}
	sel, err = Exhaustive(collisionBip())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Unique != 4 || len(sel.Subset) != 1 {
		t.Fatalf("collision optimum = %d via %v, want 4 via singleton", sel.Unique, sel.Subset)
	}
}

func TestExhaustiveMatchesNaive(t *testing.T) {
	// Gray-code incremental counts vs naive recount on random graphs.
	r := rng.New(1)
	for trial := 0; trial < 25; trial++ {
		b := gen.RandomBipartite(8, 10, 0.3, r)
		sel, err := Exhaustive(b)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveOptimum(b)
		if sel.Unique != want {
			t.Fatalf("trial %d: exhaustive=%d naive=%d", trial, sel.Unique, want)
		}
	}
}

// naiveOptimum enumerates subsets recomputing from scratch.
func naiveOptimum(b *graph.Bipartite) int {
	s := b.NS()
	best := 0
	var sub []int
	for mask := 1; mask < 1<<uint(s); mask++ {
		sub = sub[:0]
		for u := 0; u < s; u++ {
			if mask&(1<<uint(u)) != 0 {
				sub = append(sub, u)
			}
		}
		if u := b.UniqueCoverSet(sub, nil); u > best {
			best = u
		}
	}
	return best
}

func TestExhaustiveLimits(t *testing.T) {
	big := gen.RandomBipartite(MaxExhaustiveS+1, 5, 0.5, rng.New(2))
	if _, err := Exhaustive(big); err == nil {
		t.Fatal("oversize S accepted")
	}
	empty := graph.NewBipartiteBuilder(0, 0).Build()
	sel, err := Exhaustive(empty)
	if err != nil || sel.Unique != 0 {
		t.Fatal("empty graph mishandled")
	}
}

func TestSingleBest(t *testing.T) {
	b := starBip()
	sel := SingleBest(b)
	if sel.Unique != 5 || len(sel.Subset) != 1 || sel.Subset[0] != 0 {
		t.Fatalf("single best = %+v", sel)
	}
}

func TestAllOfS(t *testing.T) {
	b := collisionBip()
	if sel := AllOfS(b); sel.Unique != 0 {
		t.Fatalf("AllOfS on collision graph = %d, want 0", sel.Unique)
	}
}

// --- Guarantee assertions -------------------------------------------------

// Every algorithm must be within the exhaustive optimum and ≥ its claimed
// floor, on a corpus of random instances.
func TestAlgorithmsAgainstExhaustive(t *testing.T) {
	r := rng.New(3)
	algos := []struct {
		name string
		run  func(b *graph.Bipartite) Selection
	}{
		{"greedy", GreedyUnique},
		{"partition", PartitionSelect},
		{"partition-recursive", PartitionRecursive},
		{"degree-class", func(b *graph.Bipartite) Selection { return DegreeClass(b, OptimalC) }},
		{"decay", func(b *graph.Bipartite) Selection { return Decay(b, 6, r) }},
		{"best", func(b *graph.Bipartite) Selection { return Best(b, 6, r) }},
	}
	for trial := 0; trial < 15; trial++ {
		b := gen.RandomBipartite(9, 12, 0.25, r)
		opt, err := Exhaustive(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range algos {
			sel := a.run(b)
			if sel.Unique > opt.Unique {
				t.Fatalf("trial %d: %s exceeded optimum: %d > %d", trial, a.name, sel.Unique, opt.Unique)
			}
			// Certification: re-evaluating the subset reproduces Unique.
			if got := b.UniqueCoverSet(sel.Subset, nil); got != sel.Unique {
				t.Fatalf("trial %d: %s reported %d but certifies %d", trial, a.name, sel.Unique, got)
			}
		}
	}
}

func TestGreedyGuaranteeLemmaA1(t *testing.T) {
	// |Γ¹_S(Suni)| ≥ γ/∆S (Lemma A.1, with the S-side max degree).
	r := rng.New(4)
	for trial := 0; trial < 25; trial++ {
		b := gen.RandomBipartite(10, 15, 0.2, r)
		sel := GreedyUnique(b)
		floor := float64(b.NN()) / float64(max(1, b.MaxDegS()))
		if float64(sel.Unique) < floor-1e-9 {
			t.Fatalf("trial %d: greedy %d below γ/∆S = %g", trial, sel.Unique, floor)
		}
	}
}

func TestPartitionRecursiveGuaranteeLemmaA13(t *testing.T) {
	// |Γ¹_S(S')| ≥ γ/(9·log 4δ) — we assert against log(4δ) rather than the
	// paper's log(2δ) to absorb integer-rounding slack on tiny instances;
	// the experiment harness tracks the sharper constant.
	r := rng.New(5)
	for trial := 0; trial < 25; trial++ {
		b := gen.RandomBipartite(12, 18, 0.25, r)
		sel := PartitionRecursive(b)
		delta := b.AvgDegN()
		floor := float64(b.NN()) / (9 * math.Log2(4*math.Max(delta, 1)))
		if float64(sel.Unique) < floor-1e-9 {
			t.Fatalf("trial %d: recursive %d below floor %g (δ=%g γ=%d)",
				trial, sel.Unique, floor, delta, b.NN())
		}
	}
}

func TestPartitionSelectGuaranteeLemmaA3(t *testing.T) {
	// |Nuni| ≥ γ/(8δ) (Lemma A.3).
	r := rng.New(6)
	for trial := 0; trial < 25; trial++ {
		b := gen.RandomBipartite(12, 16, 0.3, r)
		sel := PartitionSelect(b)
		floor := float64(b.NN()) / (8 * math.Max(b.AvgDegN(), 1))
		if float64(sel.Unique) < floor-1e-9 {
			t.Fatalf("trial %d: partition %d below γ/(8δ) = %g", trial, sel.Unique, floor)
		}
	}
}

func TestDecayGuaranteeOnCoreLikeInstances(t *testing.T) {
	// The decay sampler should achieve Ω(γ / log 2δN); assert with a
	// conservative constant (1/9, matching Lemma A.13's scale) across
	// random instances.
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		b := gen.RandomBipartite(16, 24, 0.25, r)
		sel := Decay(b, 16, r)
		floor := float64(b.NN()) / (9 * math.Log2(4*math.Max(b.AvgDegN(), 1)))
		if float64(sel.Unique) < floor-1e-9 {
			t.Fatalf("trial %d: decay %d below conservative floor %g", trial, sel.Unique, floor)
		}
	}
}

func TestChlamtacWeinsteinComparison(t *testing.T) {
	// Section 4.2.1: the paper's guarantee |N|/log(2 min{δN, δS}) at scale
	// should dominate CW's |N|/log|S| whenever min{δN,δS} ≪ |S|. Verify the
	// *measured* best selection meets the CW bound too (sanity).
	r := rng.New(8)
	b := gen.RandomBipartite(40, 60, 0.08, r)
	sel := Best(b, 12, r)
	cw := bounds.ChlamtacWeinstein(b.NN(), b.NS())
	// Our solver should do at least ~as well as the CW guarantee scale.
	if float64(sel.Unique) < 0.5*cw {
		t.Fatalf("best %d ≪ CW scale %g", sel.Unique, cw)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
