package spokesman

import (
	"math"
	"testing"

	"wexp/internal/graph"
	"wexp/internal/rng"
)

// TestDecayCoverageProbabilityLemma42 tests the probabilistic heart of
// Lemma 4.2 directly: if every N-vertex has degree in [2^j, 2^{j+1}), then
// sampling S at rate 2^{-j} uniquely covers each N-vertex with probability
// p·(1−p)^{deg−1} ≥ e^{-3} where p = deg/2^j ∈ [1, 2).
func TestDecayCoverageProbabilityLemma42(t *testing.T) {
	const (
		j      = 3  // sampling level: rate 1/8
		s      = 64 // |S|
		trials = 4000
	)
	r := rng.New(42)
	// Build an instance where every N-vertex has degree exactly 2^j = 8 or
	// 2^{j+1}−1 = 15 (the extremes of the class).
	for _, deg := range []int{8, 15} {
		nSize := 48
		bb := graph.NewBipartiteBuilder(s, nSize)
		for v := 0; v < nSize; v++ {
			for _, u := range r.Choose(s, deg) {
				bb.MustAddEdge(u, v)
			}
		}
		b := bb.Build()
		p := math.Pow(2, -float64(j))
		totalUnique := 0
		var sample []int
		scratch := make([]int8, nSize)
		for trial := 0; trial < trials; trial++ {
			sample = r.SampleSubset(s, p, sample)
			totalUnique += b.UniqueCoverSet(sample, scratch)
		}
		empirical := float64(totalUnique) / float64(trials*nSize)
		// Theoretical per-vertex probability: deg·p·(1−p)^{deg−1}.
		theory := float64(deg) * p * math.Pow(1-p, float64(deg-1))
		floor := math.Exp(-3)
		if theory < floor {
			t.Fatalf("deg=%d: theoretical %g below e^-3 — lemma misapplied", deg, theory)
		}
		// The empirical rate must match theory within Monte-Carlo noise and
		// in particular clear the paper's e^{-3} floor.
		if math.Abs(empirical-theory) > 0.03 {
			t.Fatalf("deg=%d: empirical %g vs theory %g", deg, empirical, theory)
		}
		if empirical < floor-0.02 {
			t.Fatalf("deg=%d: empirical %g below e^-3 = %g", deg, empirical, floor)
		}
	}
}

// TestDecayExpectationScale confirms the aggregated claim: the expected
// number of uniquely covered vertices at the right level is Ω(|Nj|), so the
// best-of-T maximum certifies Ω(|N|/log 2δN).
func TestDecayExpectationScale(t *testing.T) {
	r := rng.New(7)
	const s, deg, nSize = 96, 8, 64
	bb := graph.NewBipartiteBuilder(s, nSize)
	for v := 0; v < nSize; v++ {
		for _, u := range r.Choose(s, deg) {
			bb.MustAddEdge(u, v)
		}
	}
	b := bb.Build()
	sel := DecaySample(b, 32, r)
	floor := math.Exp(-3) * float64(nSize)
	if float64(sel.Unique) < floor {
		t.Fatalf("best-of-32 unique %d below e^-3·|N| = %g", sel.Unique, floor)
	}
}
