package spokesman

import (
	"fmt"

	"wexp/internal/graph"
)

// GreedyUnique implements the deterministic procedure of Lemma A.1
// (illustrated by the paper's Figure 3). It maintains Suni/Stmp ⊆ S and
// Nuni/Ntmp ⊆ N under invariants (I1)–(I4) and guarantees
// |Γ¹_S(Suni)| ≥ |Nuni| ≥ γ/∆S, where ∆S is the maximum S-side degree.
//
// Each step picks v ∈ Ntmp with the fewest Stmp-neighbors, promotes one of
// those neighbors w into Suni, deletes the rest of Γ(v, Stmp) from Stmp,
// moves the vertices whose Stmp-neighborhood equaled Γ(v, Stmp) into Nuni
// (they now have w as their unique Suni-neighbor, forever), and evicts the
// other Ntmp-neighbors of w.
func GreedyUnique(b *graph.Bipartite) Selection {
	suni, _ := greedyRun(b, nil)
	return Evaluate(b, suni, "greedy-unique")
}

// GreedyState is a snapshot of the procedure's four sets, passed to the
// invariant checker after every step.
type GreedyState struct {
	InStmp []bool // alive in Stmp
	InSuni []bool
	InNtmp []bool // alive in Ntmp
	InNuni []bool
}

// GreedyUniqueChecked runs the procedure invoking check after every step;
// check returning an error aborts with that error. Used by the test suite
// to property-test invariants (I1)–(I4).
func GreedyUniqueChecked(b *graph.Bipartite, check func(GreedyState) error) (Selection, error) {
	suni, err := greedyRun(b, check)
	if err != nil {
		return Selection{}, err
	}
	return Evaluate(b, suni, "greedy-unique"), nil
}

func greedyRun(b *graph.Bipartite, check func(GreedyState) error) ([]int, error) {
	s, n := b.NS(), b.NN()
	inStmp := make([]bool, s)
	inSuni := make([]bool, s)
	inNtmp := make([]bool, n)
	inNuni := make([]bool, n)
	degStmp := make([]int, n) // |Γ(v, Stmp)| for v ∈ Ntmp
	for u := 0; u < s; u++ {
		inStmp[u] = true
	}
	aliveN := 0
	for v := 0; v < n; v++ {
		d := b.DegN(v)
		degStmp[v] = d
		if d > 0 {
			inNtmp[v] = true
			aliveN++
		}
		// Isolated N-vertices (excluded by the paper's assumption, but
		// tolerated here) simply never enter Ntmp.
	}
	var suni []int
	gvMark := make([]bool, s)
	for aliveN > 0 {
		// Pick v ∈ Ntmp minimizing |Γ(v, Stmp)|.
		v, minDeg := -1, 0
		for x := 0; x < n; x++ {
			if inNtmp[x] && (v == -1 || degStmp[x] < minDeg) {
				v, minDeg = x, degStmp[x]
			}
		}
		if minDeg == 0 {
			return nil, fmt.Errorf("spokesman: invariant I4 violated — Ntmp vertex %d has no Stmp neighbor", v)
		}
		// G_v = Γ(v, Stmp).
		var gv []int
		for _, u := range b.NeighborsOfN(v) {
			if inStmp[u] {
				gv = append(gv, int(u))
				gvMark[u] = true
			}
		}
		w := gv[0]
		// Q'_v: Ntmp-vertices whose Stmp-neighborhood is contained in (hence,
		// by minimality of v, equal to) G_v; they must also touch G_v. Scan
		// the Ntmp-neighbors of G_v's members.
		qPrime := map[int]bool{}
		qSeen := map[int]bool{}
		for _, u := range gv {
			for _, x := range b.NeighborsOfS(u) {
				if !inNtmp[x] || qSeen[int(x)] {
					continue
				}
				qSeen[int(x)] = true
				subset := true
				for _, y := range b.NeighborsOfN(int(x)) {
					if inStmp[y] && !gvMark[y] {
						subset = false
						break
					}
				}
				if subset {
					qPrime[int(x)] = true
				}
			}
		}
		// Move w to Suni; delete the rest of G_v from Stmp. Update degStmp.
		for _, u := range gv {
			inStmp[u] = false
			for _, x := range b.NeighborsOfS(u) {
				degStmp[x]--
			}
		}
		inSuni[w] = true
		suni = append(suni, w)
		// Move Q'_v to Nuni; evict w's other Ntmp-neighbors.
		for x := range qPrime {
			inNtmp[x] = false
			inNuni[x] = true
			aliveN--
		}
		for _, x := range b.NeighborsOfS(w) {
			if inNtmp[x] {
				inNtmp[x] = false
				aliveN--
			}
		}
		for _, u := range gv {
			gvMark[u] = false
		}
		if check != nil {
			if err := check(GreedyState{InStmp: inStmp, InSuni: inSuni, InNtmp: inNtmp, InNuni: inNuni}); err != nil {
				return nil, err
			}
		}
	}
	return suni, nil
}
