package spokesman

import (
	"math"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

func TestDecayLowBetaUnbalanced(t *testing.T) {
	// |S| ≫ |N|: the Lemma 4.3 regime. The reduction must produce a
	// certified positive selection meeting the conservative floor.
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		b := gen.RandomBipartite(80, 20, 0.06, r)
		sel := DecayLowBeta(b, 12, r)
		if sel.Unique <= 0 {
			t.Fatalf("trial %d: empty selection", trial)
		}
		if got := b.UniqueCoverSet(sel.Subset, nil); got != sel.Unique {
			t.Fatal("certificate mismatch")
		}
		floor := float64(b.NN()) / (9 * math.Max(bounds2Log(4*b.AvgDegS()), 1))
		if float64(sel.Unique) < floor-1e-9 {
			t.Fatalf("trial %d: %d below conservative floor %g", trial, sel.Unique, floor)
		}
	}
}

// bounds2Log avoids importing the bounds package here (keeping the
// dependency direction spokesman ← bounds-free).
func bounds2Log(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

func TestDecayDispatchesOnRegime(t *testing.T) {
	r := rng.New(2)
	// Balanced: plain sampler path.
	bal := gen.RandomBipartite(12, 20, 0.2, r)
	if sel := Decay(bal, 8, r); sel.Unique <= 0 {
		t.Fatal("balanced decay empty")
	}
	// Unbalanced: both paths raced, best wins.
	unb := gen.RandomBipartite(40, 10, 0.08, r)
	if sel := Decay(unb, 8, r); sel.Unique <= 0 {
		t.Fatal("unbalanced decay empty")
	}
}

func TestDecayLowBetaDegenerateCases(t *testing.T) {
	empty := graph.NewBipartiteBuilder(0, 0).Build()
	if sel := DecayLowBeta(empty, 4, rng.New(3)); sel.Unique != 0 {
		t.Fatal("empty graph")
	}
	// All S-vertices share the one N-vertex: S'' is a single vertex.
	bb := graph.NewBipartiteBuilder(5, 1)
	for u := 0; u < 5; u++ {
		bb.MustAddEdge(u, 0)
	}
	sel := DecayLowBeta(bb.Build(), 4, rng.New(4))
	if sel.Unique != 1 {
		t.Fatalf("hub instance: unique = %d, want 1", sel.Unique)
	}
}

func TestInduceOnSPreservesAdjacency(t *testing.T) {
	r := rng.New(5)
	b := gen.RandomBipartite(10, 12, 0.3, r)
	keep := []int{1, 3, 7}
	sub, orig := induceOnS(b, keep)
	if sub.NS() != 3 {
		t.Fatalf("sub |S| = %d", sub.NS())
	}
	for i, u := range orig {
		if u != keep[i] {
			t.Fatalf("orig mapping %v", orig)
		}
	}
	// Degrees preserved.
	for newU, u := range keep {
		if sub.DegS(newU) != b.DegS(u) {
			t.Fatalf("degree changed for %d: %d vs %d", u, sub.DegS(newU), b.DegS(u))
		}
	}
}

func TestBestDeterministicIsDeterministic(t *testing.T) {
	r := rng.New(6)
	b := gen.RandomBipartite(15, 20, 0.2, r)
	a1 := BestDeterministic(b)
	a2 := BestDeterministic(b)
	if a1.Unique != a2.Unique || a1.Method != a2.Method {
		t.Fatal("BestDeterministic not deterministic")
	}
	if len(a1.Subset) != len(a2.Subset) {
		t.Fatal("subsets differ")
	}
	for i := range a1.Subset {
		if a1.Subset[i] != a2.Subset[i] {
			t.Fatal("subsets differ")
		}
	}
}

func TestLevelCountBounds(t *testing.T) {
	// levelCount never exceeds log2(|S|)+2 and is at least 1.
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		b := gen.RandomBipartite(16, 24, 0.2, r)
		lv := levelCount(b)
		if lv < 1 || lv > 7 {
			t.Fatalf("levelCount = %d out of expected range", lv)
		}
	}
	// Degenerate: a graph whose N side has max degree 0 after filtering.
	bb := graph.NewBipartiteBuilder(4, 2)
	bb.MustAddEdge(0, 0)
	bb.MustAddEdge(0, 1)
	if lv := levelCount(bb.Build()); lv < 1 {
		t.Fatalf("levelCount = %d", lv)
	}
}
