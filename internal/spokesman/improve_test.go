package spokesman

import (
	"testing"
	"testing/quick"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

func TestImproveNeverWorsens(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		b := gen.RandomBipartite(12, 16, 0.2, r)
		start := GreedyUnique(b)
		out := Improve(b, start, 5)
		if out.Unique < start.Unique {
			t.Fatalf("trial %d: improve worsened %d -> %d", trial, start.Unique, out.Unique)
		}
		// Certified: recompute matches.
		if got := b.UniqueCoverSet(out.Subset, nil); got != out.Unique {
			t.Fatalf("trial %d: certificate mismatch", trial)
		}
	}
}

func TestImproveReachesLocalOptimum(t *testing.T) {
	// After Improve, no single flip can increase the cover.
	r := rng.New(2)
	b := gen.RandomBipartite(10, 14, 0.25, r)
	out := Improve(b, SingleBest(b), 50)
	inSet := make([]bool, b.NS())
	for _, u := range out.Subset {
		inSet[u] = true
	}
	for u := 0; u < b.NS(); u++ {
		var flipped []int
		for v := 0; v < b.NS(); v++ {
			if (v == u) != inSet[v] { // toggle u
				flipped = append(flipped, v)
			}
		}
		if got := b.UniqueCoverSet(flipped, nil); got > out.Unique {
			t.Fatalf("flip of %d improves %d -> %d: not a local optimum", u, out.Unique, got)
		}
	}
}

func TestImproveFindsOptimumOnCollisionGraph(t *testing.T) {
	// Starting from the full set (unique cover 0), one flip reaches the
	// optimum singleton.
	b := collisionBip()
	start := AllOfS(b)
	out := Improve(b, start, 5)
	if out.Unique != 4 {
		t.Fatalf("improve reached %d, want 4", out.Unique)
	}
}

func TestImproveRespectsExhaustiveOptimum(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 15; trial++ {
		b := gen.RandomBipartite(9, 12, 0.3, r)
		opt, err := Exhaustive(b)
		if err != nil {
			t.Fatal(err)
		}
		out := BestImproved(b, 6, r)
		if out.Unique > opt.Unique {
			t.Fatalf("trial %d: improved %d beats optimum %d", trial, out.Unique, opt.Unique)
		}
	}
}

func TestImproveEmptyAndDegenerate(t *testing.T) {
	empty := graph.NewBipartiteBuilder(0, 0).Build()
	out := Improve(empty, Selection{Method: "x"}, 3)
	if out.Unique != 0 {
		t.Fatal("empty graph")
	}
	b := starBip()
	out = Improve(b, Selection{Method: "empty-start"}, 3)
	if out.Unique != 5 {
		t.Fatalf("from empty start on star: %d, want 5", out.Unique)
	}
}

// Property: Improve's incremental bookkeeping matches a from-scratch
// evaluation for arbitrary graphs and arbitrary starting subsets.
func TestQuickImproveCertified(t *testing.T) {
	f := func(edges []uint16, startPick []bool) bool {
		const s, n = 8, 10
		bb := graph.NewBipartiteBuilder(s, n)
		for i := 0; i+1 < len(edges); i += 2 {
			bb.MustAddEdge(int(edges[i])%s, int(edges[i+1])%n)
		}
		b := bb.Build()
		var start []int
		for u := 0; u < s && u < len(startPick); u++ {
			if startPick[u] {
				start = append(start, u)
			}
		}
		sel := Evaluate(b, start, "seed")
		out := Improve(b, sel, 4)
		return out.Unique >= sel.Unique &&
			b.UniqueCoverSet(out.Subset, nil) == out.Unique
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeClassT(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 10; trial++ {
		b := gen.RandomBipartite(12, 18, 0.25, r)
		sel := DegreeClassT(b, OptimalC, 2)
		if sel.Unique <= 0 {
			t.Fatalf("trial %d: empty selection", trial)
		}
		if got := b.UniqueCoverSet(sel.Subset, nil); got != sel.Unique {
			t.Fatal("certificate mismatch")
		}
	}
	// Degenerate parameters fall back to defaults.
	b := starBip()
	if sel := DegreeClassT(b, 0.5, 0.5); sel.Unique <= 0 {
		t.Fatal("degenerate params")
	}
}

func TestDegreeClassTEmpty(t *testing.T) {
	empty := graph.NewBipartiteBuilder(0, 0).Build()
	if sel := DegreeClassT(empty, 2, 2); sel.Unique != 0 {
		t.Fatal("empty graph")
	}
}
