package spokesman

import (
	"math"

	"wexp/internal/graph"
	"wexp/internal/rng"
)

// DecaySample implements the probabilistic-method argument of Lemma 4.2,
// turned into an algorithm: for each decay level j, sample each vertex of S
// independently with probability 2^{-j} and keep the sample with the
// largest certified unique cover.
//
// The analysis: let N' be the N-vertices of degree ≤ 2δN (at least half of
// N), bucket N' into k = ⌊log 4δN⌋+1 classes by degree ∈ [2^j, 2^{j+1}), and
// let Nj be the largest class, |Nj| ≥ |N|/(2k). A 2^{-j} sample uniquely
// covers each vertex of Nj with probability ≥ e^{-3}, so the expected
// unique cover at level j is Ω(|N| / log 2δN). Running `trials` independent
// samples per level and keeping the maximum exceeds the expectation with
// probability approaching 1; the returned selection's Unique field is exact
// regardless.
func DecaySample(b *graph.Bipartite, trials int, r *rng.RNG) Selection {
	if trials <= 0 {
		trials = 8
	}
	s := b.NS()
	best := Selection{Method: "decay"}
	if s == 0 {
		return best
	}
	maxLevel := levelCount(b)
	scratch := make([]int8, b.NN())
	var sample []int
	var bestSubset []int
	for j := 0; j <= maxLevel; j++ {
		p := math.Pow(2, -float64(j))
		for t := 0; t < trials; t++ {
			sample = r.SampleSubset(s, p, sample)
			uniq := b.UniqueCoverSet(sample, scratch)
			if uniq > best.Unique {
				best.Unique = uniq
				bestSubset = append(bestSubset[:0], sample...)
			}
		}
	}
	if bestSubset == nil {
		// Degenerate (e.g. all samples empty): fall back to the best single
		// vertex, which uniquely covers deg(u) ≥ 1 under the no-isolated
		// assumption.
		sb := SingleBest(b)
		sb.Method = "decay"
		return sb
	}
	return Evaluate(b, bestSubset, "decay")
}

// levelCount returns the largest decay level worth sampling: enough levels
// to cover the maximum S-side coverage degree of any N vertex, i.e.
// ⌈log2(∆N)⌉, capped at log2 |S| (a sample probability below 1/|S| is
// almost surely empty).
func levelCount(b *graph.Bipartite) int {
	maxD := b.MaxDegN()
	if maxD < 1 {
		maxD = 1
	}
	lv := int(math.Ceil(math.Log2(float64(maxD)))) + 1
	if cap := int(math.Ceil(math.Log2(float64(b.NS()+1)))) + 1; lv > cap {
		lv = cap
	}
	return lv
}

// DecayLowBeta implements the Lemma 4.3 reduction for the β < 1 regime
// (|N| < |S|): restrict S to its low-degree half S' = {u : deg(u) ≤ 2δS},
// greedily extract S” ⊆ S' that covers Γ(S') with |S”| ≤ |Γ(S')| (each
// added vertex must cover a new N-vertex), and run the decay sampler on the
// induced subgraph, whose N-side average degree is at most 2δS. The
// returned subset is re-certified against the original graph.
func DecayLowBeta(b *graph.Bipartite, trials int, r *rng.RNG) Selection {
	s := b.NS()
	if s == 0 {
		return Selection{Method: "decay-lowbeta"}
	}
	twoDeltaS := 2 * b.AvgDegS()
	var sPrime []int
	for u := 0; u < s; u++ {
		if float64(b.DegS(u)) <= twoDeltaS {
			sPrime = append(sPrime, u)
		}
	}
	// Greedy cover: iterate S' and keep u only if it covers an uncovered
	// N-vertex (the "iterate and add if it covers a new vertex" step of the
	// proof). |S''| ≤ |N'| follows because each kept vertex claims at least
	// one new N-vertex.
	covered := make([]bool, b.NN())
	var sDouble []int
	for _, u := range sPrime {
		isNew := false
		for _, v := range b.NeighborsOfS(u) {
			if !covered[v] {
				isNew = true
				break
			}
		}
		if !isNew {
			continue
		}
		sDouble = append(sDouble, u)
		for _, v := range b.NeighborsOfS(u) {
			covered[v] = true
		}
	}
	if len(sDouble) == 0 {
		sb := SingleBest(b)
		sb.Method = "decay-lowbeta"
		return sb
	}
	// Induced subgraph on (S'', Γ(S'')): relabel and sample there.
	sub, origIdx := induceOnS(b, sDouble)
	inner := DecaySample(sub, trials, r)
	subset := make([]int, len(inner.Subset))
	for i, u := range inner.Subset {
		subset[i] = origIdx[u]
	}
	return Evaluate(b, subset, "decay-lowbeta")
}

// induceOnS builds the bipartite subgraph induced by keeping only the given
// S-vertices (and the N-vertices they touch). Returns the subgraph and the
// map from new S-index to original S-index.
func induceOnS(b *graph.Bipartite, keep []int) (*graph.Bipartite, []int) {
	nMap := make(map[int32]int)
	var edges [][2]int
	for newU, u := range keep {
		for _, v := range b.NeighborsOfS(u) {
			nv, ok := nMap[v]
			if !ok {
				nv = len(nMap)
				nMap[v] = nv
			}
			edges = append(edges, [2]int{newU, nv})
		}
	}
	bb := graph.NewBipartiteBuilder(len(keep), len(nMap))
	for _, e := range edges {
		bb.MustAddEdge(e[0], e[1])
	}
	origIdx := append([]int(nil), keep...)
	return bb.Build(), origIdx
}

// Decay dispatches on the regime: the plain sampler when |N| ≥ |S| (β ≥ 1)
// and the Lemma 4.3 reduction otherwise, mirroring how Theorem 1.1 is
// assembled from Lemmas 4.2 and 4.3.
func Decay(b *graph.Bipartite, trials int, r *rng.RNG) Selection {
	if b.NN() >= b.NS() {
		return DecaySample(b, trials, r)
	}
	return better(DecaySample(b, trials, r), DecayLowBeta(b, trials, r))
}
