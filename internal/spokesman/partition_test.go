package spokesman

import (
	"fmt"
	"testing"
	"testing/quick"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

func TestPartitionInvariantsSmall(t *testing.T) {
	b := collisionBip()
	p := Partition(b, nil)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionInvariantsRandomCorpus(t *testing.T) {
	r := rng.New(10)
	for trial := 0; trial < 50; trial++ {
		b := gen.RandomBipartite(10, 14, 0.2, r)
		p := Partition(b, nil)
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPartitionOnSubset(t *testing.T) {
	r := rng.New(11)
	b := gen.RandomBipartite(10, 20, 0.25, r)
	consider := make([]bool, 20)
	for v := 0; v < 20; v += 2 {
		consider[v] = b.DegN(v) > 0
	}
	p := Partition(b, consider)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Unconsidered vertices must remain unassigned.
	for v := 1; v < 20; v += 2 {
		if p.InNuni[v] || p.InNmany[v] || p.InNtmp[v] {
			t.Fatalf("unconsidered vertex %d assigned", v)
		}
	}
}

func TestPartitionGainSemantics(t *testing.T) {
	// A single S-vertex covering everything: first promotion moves all of N
	// to Nuni, then the procedure halts with Stmp possibly nonempty but all
	// gains ≤ 0.
	b := starBip()
	p := Partition(b, nil)
	nuni, nmany, ntmp := p.Counts()
	if nuni != 5 || nmany != 0 || ntmp != 0 {
		t.Fatalf("counts = %d/%d/%d", nuni, nmany, ntmp)
	}
	if len(p.Suni) != 1 || p.Suni[0] != 0 {
		t.Fatalf("Suni = %v", p.Suni)
	}
}

func TestPartitionP3MovesToMany(t *testing.T) {
	// Construction where a later promotion demotes an Nuni vertex to Nmany:
	// u0 covers {n0}, u1 covers {n0, n1, n2}. Gain(u1)=3 > gain(u0)=1:
	// promote u1 first → Nuni={n0,n1,n2}. Then gain(u0) = 0−2·1 < 0: stop.
	bb := graph.NewBipartiteBuilder(2, 3)
	bb.MustAddEdge(0, 0)
	bb.MustAddEdge(1, 0)
	bb.MustAddEdge(1, 1)
	bb.MustAddEdge(1, 2)
	p := Partition(bb.Build(), nil)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(p.Suni) != 1 || p.Suni[0] != 1 {
		t.Fatalf("Suni = %v, want [1]", p.Suni)
	}
}

func TestPartitionEdgeCountsConsistent(t *testing.T) {
	r := rng.New(12)
	b := gen.RandomBipartite(12, 18, 0.2, r)
	p := Partition(b, nil)
	euni, etmp := p.EdgeCounts()
	// Recount naively.
	e1, e2 := 0, 0
	for u := 0; u < b.NS(); u++ {
		if !p.InStmp[u] {
			continue
		}
		for _, v := range b.NeighborsOfS(u) {
			if p.InNuni[v] {
				e1++
			}
			if p.InNtmp[v] {
				e2++
			}
		}
	}
	if e1 != euni || e2 != etmp {
		t.Fatalf("edge counts (%d,%d) vs naive (%d,%d)", euni, etmp, e1, e2)
	}
}

// Property test: invariants hold across arbitrary random bipartite graphs.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(edges []uint16) bool {
		const s, n = 7, 9
		bb := graph.NewBipartiteBuilder(s, n)
		for i := 0; i+1 < len(edges); i += 2 {
			bb.MustAddEdge(int(edges[i])%s, int(edges[i+1])%n)
		}
		b := bb.Build()
		// Consider only non-isolated N-vertices (paper's assumption).
		consider := make([]bool, n)
		for v := 0; v < n; v++ {
			consider[v] = b.DegN(v) > 0
		}
		p := Partition(b, consider)
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRecursiveTerminatesOnPathological(t *testing.T) {
	// A graph where every vertex shares one hub neighbor: recursion must
	// terminate and return something sane.
	bb := graph.NewBipartiteBuilder(6, 7)
	for u := 0; u < 6; u++ {
		bb.MustAddEdge(u, 0) // shared hub
		bb.MustAddEdge(u, u+1)
	}
	sel := PartitionRecursive(bb.Build())
	// The exhaustive optimum is 6 (all of S: hub collides, the rest unique);
	// the recursion promotes the hub-coverer first and certifies 5. Anything
	// ≥ 5 demonstrates termination plus a near-optimal pick; the Lemma A.13
	// floor here is only ⌈γ/(9·log 2δ)⌉ = 1.
	if sel.Unique < 5 {
		t.Fatalf("pathological: unique = %d, want ≥ 5", sel.Unique)
	}
}

func TestGreedyInvariants(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 30; trial++ {
		b := gen.RandomBipartite(9, 12, 0.25, r)
		_, err := GreedyUniqueChecked(b, func(st GreedyState) error {
			return checkGreedyInvariants(b, st)
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// checkGreedyInvariants verifies (I1)–(I4) of Lemma A.1.
func checkGreedyInvariants(b *graph.Bipartite, st GreedyState) error {
	// (I1) Stmp ∩ Suni = ∅ (subset-of-S holds by construction).
	for u := 0; u < b.NS(); u++ {
		if st.InStmp[u] && st.InSuni[u] {
			return errf("I1: S-vertex %d in both", u)
		}
	}
	// (I2) Ntmp ∩ Nuni = ∅.
	for v := 0; v < b.NN(); v++ {
		if st.InNtmp[v] && st.InNuni[v] {
			return errf("I2: N-vertex %d in both", v)
		}
	}
	// (I3) every Nuni vertex has a unique Suni neighbor.
	for v := 0; v < b.NN(); v++ {
		if !st.InNuni[v] {
			continue
		}
		c := 0
		for _, u := range b.NeighborsOfN(v) {
			if st.InSuni[u] {
				c++
			}
		}
		if c != 1 {
			return errf("I3: N-vertex %d has %d Suni neighbors", v, c)
		}
	}
	// (I4) every Ntmp vertex has ≥1 Stmp neighbor and none in Suni.
	for v := 0; v < b.NN(); v++ {
		if !st.InNtmp[v] {
			continue
		}
		stmp, suni := 0, 0
		for _, u := range b.NeighborsOfN(v) {
			if st.InStmp[u] {
				stmp++
			}
			if st.InSuni[u] {
				suni++
			}
		}
		if stmp == 0 || suni != 0 {
			return errf("I4: N-vertex %d stmp=%d suni=%d", v, stmp, suni)
		}
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}
