package spokesman

import (
	"wexp/internal/graph"
	"wexp/internal/rng"
)

// Improve hill-climbs a selection by single-vertex flips: repeatedly toggle
// membership of the S-vertex whose flip most increases |Γ¹_S(S')|, until no
// flip helps or maxPasses passes complete. The unique cover is maintained
// incrementally, so one pass costs O(|E|). Improve never returns a worse
// selection than its input; combined with any algorithm's certified floor,
// the guarantee is preserved.
func Improve(b *graph.Bipartite, sel Selection, maxPasses int) Selection {
	if maxPasses <= 0 {
		maxPasses = 4
	}
	s := b.NS()
	if s == 0 {
		return sel
	}
	inSet := make([]bool, s)
	for _, u := range sel.Subset {
		inSet[u] = true
	}
	counts := make([]int32, b.NN())
	unique := 0
	for u := 0; u < s; u++ {
		if !inSet[u] {
			continue
		}
		for _, v := range b.NeighborsOfS(u) {
			counts[v]++
			switch counts[v] {
			case 1:
				unique++
			case 2:
				unique--
			}
		}
	}
	// flipGain computes the change in unique cover from toggling u.
	flipGain := func(u int) int {
		gain := 0
		if inSet[u] {
			for _, v := range b.NeighborsOfS(u) {
				switch counts[v] {
				case 1:
					gain-- // uniquely covered vertex loses its coverer
				case 2:
					gain++ // collision resolves to unique
				}
			}
		} else {
			for _, v := range b.NeighborsOfS(u) {
				switch counts[v] {
				case 0:
					gain++ // newly uniquely covered
				case 1:
					gain-- // unique becomes collision
				}
			}
		}
		return gain
	}
	apply := func(u int) {
		if inSet[u] {
			inSet[u] = false
			for _, v := range b.NeighborsOfS(u) {
				counts[v]--
				switch counts[v] {
				case 1:
					unique++
				case 0:
					unique--
				}
			}
		} else {
			inSet[u] = true
			for _, v := range b.NeighborsOfS(u) {
				counts[v]++
				switch counts[v] {
				case 1:
					unique++
				case 2:
					unique--
				}
			}
		}
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for u := 0; u < s; u++ {
			if flipGain(u) > 0 {
				apply(u)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	var subset []int
	for u := 0; u < s; u++ {
		if inSet[u] {
			subset = append(subset, u)
		}
	}
	out := Evaluate(b, subset, sel.Method+"+improve")
	// Defensive: the climb never loses ground, but certify anyway.
	if out.Unique < sel.Unique {
		return sel
	}
	return out
}

// BestImproved runs the full portfolio and hill-climbs the winner — the
// strongest certificate generator in the package.
func BestImproved(b *graph.Bipartite, trials int, r *rng.RNG) Selection {
	return Improve(b, Best(b, trials, r), 6)
}

// DegreeClassT implements the Corollary A.8 refinement: for parameters
// c > 1 and t > 1, restrict to the N-vertices of degree ≤ t·δ (at least a
// (1−1/t) fraction), bucket them into base-c degree classes, and run
// Procedure Partition per class. The guarantee scale is
// (1−1/t)·|N| / (2(1+c)·log_c(t·δ)).
func DegreeClassT(b *graph.Bipartite, c, t float64) Selection {
	if c <= 1 {
		c = OptimalC
	}
	if t <= 1 {
		t = 2
	}
	n := b.NN()
	if n == 0 || b.NS() == 0 {
		return Selection{Method: "degree-class-t"}
	}
	cap := t * b.AvgDegN()
	consider := make([]bool, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := b.DegN(v)
		consider[v] = d > 0 && float64(d) <= cap
		if consider[v] && d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg == 0 {
		sb := SingleBest(b)
		sb.Method = "degree-class-t"
		return sb
	}
	best := Selection{Method: "degree-class-t"}
	class := make([]bool, n)
	lo := 1.0
	for lo <= float64(maxDeg) {
		hi := lo * c
		nonEmpty := false
		for v := 0; v < n; v++ {
			d := float64(b.DegN(v))
			class[v] = consider[v] && d >= lo && d < hi
			if class[v] {
				nonEmpty = true
			}
		}
		if nonEmpty {
			p := Partition(b, class)
			if len(p.Suni) > 0 {
				best = better(best, Evaluate(b, p.Suni, "degree-class-t"))
			}
		}
		lo = hi
	}
	if len(best.Subset) == 0 {
		sb := SingleBest(b)
		sb.Method = "degree-class-t"
		return sb
	}
	return best
}
