package spokesman

import (
	"math"

	"wexp/internal/graph"
	"wexp/internal/rng"
)

// OptimalC is the base that maximizes f(c) = log₂c / (2(1+c)), the constant
// in Corollary A.7: c ≈ 3.59112 achieving f(c) ≈ 0.20087.
const OptimalC = 3.59112

// DegreeClass implements the "convenient degree constraints" argument of
// Lemmas A.5–A.7: bucket the N-vertices into geometric degree classes
// N^(i) = {v : deg(v, S) ∈ [c^{i-1}, c^i)}, run Procedure Partition
// restricted to each class (within a class all degrees agree up to a factor
// c, the regime where Partition's edge-counting is tight), and return the
// best resulting Suni. With c = OptimalC the guarantee of Corollary A.6 is
// |Γ¹_S(S')| ≥ γ·log₂c / (2(1+c)·log₂ ∆) ≈ 0.20087·γ/log₂ ∆.
func DegreeClass(b *graph.Bipartite, c float64) Selection {
	if c <= 1 {
		c = OptimalC
	}
	n := b.NN()
	best := Selection{Method: "degree-class"}
	if n == 0 || b.NS() == 0 {
		return best
	}
	maxDeg := b.MaxDegN()
	if maxDeg == 0 {
		return best
	}
	numClasses := int(math.Ceil(math.Log(float64(maxDeg))/math.Log(c))) + 1
	consider := make([]bool, n)
	for i := 1; i <= numClasses; i++ {
		lo := math.Pow(c, float64(i-1))
		hi := math.Pow(c, float64(i))
		nonEmpty := false
		for v := 0; v < n; v++ {
			d := float64(b.DegN(v))
			in := d >= lo && (d < hi || i == numClasses && d <= hi)
			consider[v] = in && d > 0
			if consider[v] {
				nonEmpty = true
			}
		}
		if !nonEmpty {
			continue
		}
		p := Partition(b, consider)
		if len(p.Suni) == 0 {
			continue
		}
		sel := Evaluate(b, p.Suni, "degree-class")
		best = better(best, sel)
	}
	if len(best.Subset) == 0 {
		sb := SingleBest(b)
		sb.Method = "degree-class"
		return sb
	}
	return best
}

// Best runs every algorithm in the package (except Exhaustive) and returns
// the selection with the largest certified unique cover. This is the
// library's default spokesman solver and the certificate generator for
// wireless-expansion lower bounds on large graphs.
func Best(b *graph.Bipartite, trials int, r *rng.RNG) Selection {
	best := SingleBest(b)
	best = better(best, AllOfS(b))
	best = better(best, GreedyUnique(b))
	best = better(best, PartitionSelect(b))
	best = better(best, PartitionRecursive(b))
	best = better(best, DegreeClass(b, OptimalC))
	best = better(best, Decay(b, trials, r))
	return best
}

// BestDeterministic is Best without the randomized decay sampler; its
// output depends only on the input graph.
func BestDeterministic(b *graph.Bipartite) Selection {
	best := SingleBest(b)
	best = better(best, AllOfS(b))
	best = better(best, GreedyUnique(b))
	best = better(best, PartitionSelect(b))
	best = better(best, PartitionRecursive(b))
	best = better(best, DegreeClass(b, OptimalC))
	return best
}
