// Package spokesman implements the paper's algorithms for the Spokesman
// Election problem (Section 4.2.1): given a bipartite graph G = (S, N, E),
// find a subset S' ⊆ S maximizing the number of unique neighbors
// |Γ¹_S(S')| in N. The problem is NP-hard [Chlamtac–Kutten 1985], so the
// package provides:
//
//   - Exhaustive: exact optimum by Gray-code subset enumeration (|S| ≤ 24);
//   - DecaySample: the probabilistic-method sampler of Lemma 4.2, which
//     guarantees Ω(|N| / log 2δN) when β ≥ 1;
//   - DecayLowBeta: the Lemma 4.3 reduction for the β < 1 regime;
//   - GreedyUnique: the deterministic procedure of Lemma A.1 (≥ γ/∆S);
//   - PartitionSelect / PartitionRecursive: the Procedure-Partition family
//     of Appendix A (Lemmas A.3 and A.13, ≥ γ/(8δ) and ≥ γ/(9·log 2δ));
//   - DegreeClass: the degree-bucketing argument of Lemmas A.5–A.7;
//   - Best: the maximum over all of the above.
//
// Every algorithm returns a Selection whose Unique field is recomputed from
// scratch by Evaluate, so reported values are certified regardless of any
// bug in an algorithm's internal bookkeeping.
package spokesman

import (
	"fmt"
	"math/bits"

	"wexp/internal/graph"
)

// Selection is a candidate spokesman set with its certified objective.
type Selection struct {
	Subset []int  // chosen S' ⊆ S, in increasing order
	Unique int    // |Γ¹_S(S')|, recomputed at construction
	Method string // which algorithm produced it
}

// Evaluate certifies a subset: it recomputes |Γ¹_S(S')| directly from the
// graph.
func Evaluate(b *graph.Bipartite, subset []int, method string) Selection {
	sorted := append([]int(nil), subset...)
	insertionSort(sorted)
	return Selection{
		Subset: sorted,
		Unique: b.UniqueCoverSet(sorted, nil),
		Method: method,
	}
}

// MaxExhaustiveS is the largest |S| accepted by Exhaustive.
const MaxExhaustiveS = 24

// Exhaustive computes the exact optimum by enumerating all 2^|S| subsets
// with a Gray-code walk: each step flips a single S-vertex and updates the
// per-N-vertex coverage counts along its adjacency list, so the total cost
// is O(2^|S| · avg-deg) rather than O(2^|S| · |E|).
func Exhaustive(b *graph.Bipartite) (Selection, error) {
	s := b.NS()
	if s > MaxExhaustiveS {
		return Selection{}, fmt.Errorf("spokesman: |S|=%d exceeds exhaustive limit %d", s, MaxExhaustiveS)
	}
	if s == 0 {
		return Selection{Method: "exhaustive"}, nil
	}
	counts := make([]int8, b.NN())
	inSet := make([]bool, s)
	unique := 0
	bestUnique, bestMask := 0, uint64(0)
	cur := uint64(0)
	total := uint64(1) << uint(s)
	for i := uint64(1); i < total; i++ {
		flip := bits.TrailingZeros64(i)
		adding := !inSet[flip]
		inSet[flip] = adding
		if adding {
			cur |= 1 << uint(flip)
			for _, v := range b.NeighborsOfS(flip) {
				counts[v]++
				switch counts[v] {
				case 1:
					unique++
				case 2:
					unique--
				}
			}
		} else {
			cur &^= 1 << uint(flip)
			for _, v := range b.NeighborsOfS(flip) {
				counts[v]--
				switch counts[v] {
				case 1:
					unique++
				case 0:
					unique--
				}
			}
		}
		if unique > bestUnique {
			bestUnique = unique
			bestMask = cur
		}
	}
	subset := make([]int, 0, bits.OnesCount64(bestMask))
	for u := 0; u < s; u++ {
		if bestMask&(1<<uint(u)) != 0 {
			subset = append(subset, u)
		}
	}
	return Evaluate(b, subset, "exhaustive"), nil
}

// AllOfS returns the trivial selection S' = S, whose unique cover is the
// plain unique neighborhood Γ¹(S) — the quantity a unique-neighbor
// expander guarantees. Used as the βu baseline in comparisons.
func AllOfS(b *graph.Bipartite) Selection {
	all := make([]int, b.NS())
	for i := range all {
		all[i] = i
	}
	return Evaluate(b, all, "all-of-S")
}

// SingleBest returns the best single-vertex selection {u}: a useful floor,
// since |Γ¹_S({u})| = deg(u) for any u (every neighbor of a singleton is
// unique).
func SingleBest(b *graph.Bipartite) Selection {
	bestU, bestD := -1, -1
	for u := 0; u < b.NS(); u++ {
		if d := b.DegS(u); d > bestD {
			bestD = d
			bestU = u
		}
	}
	if bestU < 0 {
		return Selection{Method: "single-best"}
	}
	return Evaluate(b, []int{bestU}, "single-best")
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

func better(a, b Selection) Selection {
	if b.Unique > a.Unique {
		return b
	}
	return a
}
