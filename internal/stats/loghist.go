package stats

import "math/bits"

// LogHistogram is an HDR-style log-linear histogram of non-negative int64
// samples (latencies in nanoseconds, typically): values below 2^subBits
// get exact unit buckets, and each octave above is split into sub/2
// linear sub-buckets, bounding the relative quantile error by
// 2^-(subBits-1) ≈ 3% while keeping the bucket array small and fixed —
// recording is O(1) with no allocation, suitable for the hot path of a
// load generator.
//
// The zero value is NOT ready to use; call NewLogHistogram.
type LogHistogram struct {
	counts []int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

const (
	subBits = 6
	sub     = 1 << subBits // exact buckets below this value
	half    = sub / 2      // linear sub-buckets per octave above
	// 63-subBits+1 octaves cover the full non-negative int64 range.
	logBuckets = sub + (63-subBits+1)*half
)

// NewLogHistogram returns an empty histogram covering [0, MaxInt64].
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{counts: make([]int64, logBuckets), min: int64(^uint64(0) >> 1)}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < sub {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1 // ≥ subBits
	octave := msb - subBits + 1
	normalized := int(v >> octave) // ∈ [half, sub)
	return sub + (octave-1)*half + (normalized - half)
}

// bucketBounds returns the half-open value range [lo, hi) of bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b < sub {
		return int64(b), int64(b) + 1
	}
	octave := (b-sub)/half + 1
	normalized := int64((b-sub)%half + half)
	return normalized << octave, (normalized + 1) << octave
}

// Record adds one sample. Negative samples clamp to zero.
func (h *LogHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *LogHistogram) Count() int64 { return h.count }

// Sum returns the sum of all recorded samples.
func (h *LogHistogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 if empty).
func (h *LogHistogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 if empty).
func (h *LogHistogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 if empty).
func (h *LogHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1): the
// midpoint of the bucket holding the rank-⌈q·n⌉ sample, clamped to the
// exact observed min and max so the tails never over-report. Relative
// error is bounded by the bucket width, ≈3%. Returns 0 if empty.
func (h *LogHistogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen int64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(b)
			mid := lo + (hi-lo)/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Merge folds other into h (other is unchanged). Histograms from
// concurrent workers merge exactly: bucket counts add.
func (h *LogHistogram) Merge(other *LogHistogram) {
	if other == nil || other.count == 0 {
		return
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}
