// Package stats provides the small statistical toolkit the experiment
// harness needs: moments, quantiles, linear regression, and correlation.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between order statistics. Returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is the clamp-and-interpolate core shared by Quantile and
// Quantiles; sorted must be non-empty and ascending.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantiles returns the q-quantiles for each q in qs, sorting the sample
// once. Each entry matches Quantile(xs, q); the result is all-NaN for
// empty input. Harnesses that stream per-round quantile summaries use
// this instead of one Quantile call (and one sort) per probe.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// Fit is an ordinary-least-squares line y ≈ Slope·x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y against x by least squares. Panics if lengths differ;
// returns a zero Fit for fewer than two points.
func LinearFit(x, y []float64) Fit {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return Fit{}
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Intercept: my}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // y constant and fully explained
	}
	return fit
}

// Pearson returns the Pearson correlation coefficient (NaN if either
// series is constant).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Summary bundles the headline statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples above Hi (Hi itself lands in the last bin)
}

// NewHistogram bins xs into `bins` equal-width intervals over [lo, hi].
// It panics if bins ≤ 0 or hi ≤ lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x > hi:
			h.Over++
		default:
			idx := int((x - lo) / width)
			if idx == bins { // x == hi
				idx = bins - 1
			}
			h.Counts[idx]++
		}
	}
	return h
}

// Total returns the number of binned samples (excluding under/overflow).
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the index of the fullest bin (ties to the lowest index).
func (h *Histogram) Mode() int {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}
