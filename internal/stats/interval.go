package stats

import "math"

// Interval is a two-sided confidence interval for a binomial proportion.
type Interval struct {
	Low  float64
	High float64
}

// WilsonInterval returns the Wilson score interval for observing k successes
// in n trials at confidence level 1-alpha. It is well-behaved for k = 0 and
// k = n (unlike the normal approximation) and is the cheap default for
// reporting sampled-fraction estimates. Returns [0,1] for n <= 0.
func WilsonInterval(k, n int, alpha float64) Interval {
	if n <= 0 {
		return Interval{0, 1}
	}
	z := normalQuantile(1 - alpha/2)
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{lo, hi}
}

// ClopperPearson returns the exact (conservative) Clopper–Pearson interval
// for k successes in n trials at confidence level 1-alpha. The bounds are
// found by bisection on the exact binomial tail computed in log space, so
// the helper needs no special functions beyond math.Lgamma and never
// undercovers. Returns [0,1] for n <= 0.
func ClopperPearson(k, n int, alpha float64) Interval {
	if n <= 0 {
		return Interval{0, 1}
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	half := alpha / 2
	iv := Interval{0, 1}
	if k > 0 {
		// Largest p with P[X >= k | p] <= alpha/2 fails; the bound is the p
		// where the upper tail equals alpha/2.
		iv.Low = bisectBinomial(func(p float64) float64 {
			return binomUpperTail(k, n, p) - half
		})
	}
	if k < n {
		// Smallest p with P[X <= k | p] <= alpha/2.
		iv.High = bisectBinomial(func(p float64) float64 {
			return half - binomLowerTail(k, n, p)
		})
	}
	return iv
}

// bisectBinomial finds the root of a monotone-increasing f on (0, 1) to
// ~1e-12 absolute tolerance.
func bisectBinomial(f func(float64) float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// binomLowerTail returns P[X <= k] for X ~ Binomial(n, p), summing exact
// terms in log space.
func binomLowerTail(k, n int, p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		if k >= n {
			return 1
		}
		return 0
	}
	s := 0.0
	for i := 0; i <= k; i++ {
		s += math.Exp(logBinomPMF(i, n, p))
	}
	if s > 1 {
		s = 1
	}
	return s
}

// binomUpperTail returns P[X >= k] for X ~ Binomial(n, p).
func binomUpperTail(k, n int, p float64) float64 {
	if p <= 0 {
		if k <= 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		return 1
	}
	s := 0.0
	for i := k; i <= n; i++ {
		s += math.Exp(logBinomPMF(i, n, p))
	}
	if s > 1 {
		s = 1
	}
	return s
}

// logBinomPMF returns log P[X = k] for X ~ Binomial(n, p), 0 < p < 1.
func logBinomPMF(k, n int, p float64) float64 {
	lc, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lc - lk - lnk + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// normalQuantile returns the standard normal quantile Φ⁻¹(p) using the
// Acklam rational approximation (relative error < 1.15e-9), which is more
// than enough precision for interval half-widths.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		plow  = 0.02425
		phigh = 1 - plow
	)
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}
