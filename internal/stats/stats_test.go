package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Fatalf("variance = %g", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes")
	}
	if Median(xs) != 3 {
		t.Fatalf("median = %g", Median(xs))
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %g", q)
	}
	if q := Quantile([]float64{1, 2}, 0.5); q != 1.5 {
		t.Fatalf("interp median = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile")
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Median(ys)
	if ys[0] != 3 || ys[1] != 1 {
		t.Fatal("quantile mutated input")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	f := LinearFit(x, y)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R² = %g", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 5, 9})
	if f.Slope != 0 || f.Intercept != 5 {
		t.Fatalf("constant-x fit = %+v", f)
	}
	f = LinearFit([]float64{1}, []float64{1})
	if f.Slope != 0 {
		t.Fatal("single point")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	LinearFit([]float64{1, 2}, []float64{1})
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if p := Pearson(x, x); math.Abs(p-1) > 1e-12 {
		t.Fatalf("self correlation = %g", p)
	}
	y := []float64{4, 3, 2, 1}
	if p := Pearson(x, y); math.Abs(p+1) > 1e-12 {
		t.Fatalf("anti correlation = %g", p)
	}
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1})) {
		t.Fatal("constant series should give NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

// Property: mean is within [min, max]; variance is non-negative.
func TestQuickMoments(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9 && Variance(xs) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the OLS fit minimizes SSE at least as well as the flat line.
func TestQuickFitBeatsFlat(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = float64(raw[i])
			y[i] = float64(raw[n+i])
		}
		fit := LinearFit(x, y)
		sseFit, sseFlat := 0.0, 0.0
		my := Mean(y)
		for i := range x {
			d1 := y[i] - (fit.Slope*x[i] + fit.Intercept)
			d2 := y[i] - my
			sseFit += d1 * d1
			sseFlat += d2 * d2
		}
		return sseFit <= sseFlat+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0, -1, 2}
	h := NewHistogram(xs, 0, 1, 2)
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Mode() != 1 {
		t.Fatalf("mode = %d", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(nil, 1, 0, 3)
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	xs := []float64{9, 1, 4, 4, 7, 2, 8, 3}
	qs := []float64{-0.1, 0, 0.1, 0.25, 0.5, 0.75, 0.9, 1, 1.5}
	got := Quantiles(xs, qs...)
	for i, q := range qs {
		if want := Quantile(xs, q); got[i] != want {
			t.Fatalf("Quantiles[%g] = %g, want %g", q, got[i], want)
		}
	}
	for _, v := range Quantiles(nil, 0.5, 0.9) {
		if !math.IsNaN(v) {
			t.Fatalf("empty input: got %g, want NaN", v)
		}
	}
	if out := Quantiles([]float64{5}); len(out) != 0 {
		t.Fatalf("no probes: got %v", out)
	}
}
