package stats

import (
	"math"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.0001, -3.719016},
	}
	for _, c := range cases {
		got := normalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-5 {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("normalQuantile endpoints should be infinite")
	}
}

func TestWilsonInterval(t *testing.T) {
	// Reference values computed from the closed-form Wilson formula.
	iv := WilsonInterval(8, 10, 0.05)
	if math.Abs(iv.Low-0.4901) > 5e-4 || math.Abs(iv.High-0.9433) > 5e-4 {
		t.Errorf("Wilson(8,10) = [%v, %v], want ≈ [0.4901, 0.9433]", iv.Low, iv.High)
	}
	// Degenerate counts stay inside [0,1] and are non-trivial.
	z := WilsonInterval(0, 20, 0.05)
	if z.Low != 0 || z.High <= 0 || z.High >= 0.5 {
		t.Errorf("Wilson(0,20) = %+v out of expected shape", z)
	}
	f := WilsonInterval(20, 20, 0.05)
	if f.High != 1 || f.Low >= 1 || f.Low <= 0.5 {
		t.Errorf("Wilson(20,20) = %+v out of expected shape", f)
	}
	if got := WilsonInterval(1, 0, 0.05); got.Low != 0 || got.High != 1 {
		t.Errorf("Wilson with n=0 should be [0,1], got %+v", got)
	}
}

func TestClopperPearson(t *testing.T) {
	// Classic textbook value: 0 successes in n trials has upper bound
	// 1 - (alpha/2)^(1/n) ("rule of three" neighborhood).
	iv := ClopperPearson(0, 30, 0.05)
	wantHi := 1 - math.Pow(0.025, 1.0/30)
	if iv.Low != 0 {
		t.Errorf("CP(0,30) low = %v, want 0", iv.Low)
	}
	if math.Abs(iv.High-wantHi) > 1e-9 {
		t.Errorf("CP(0,30) high = %v, want %v", iv.High, wantHi)
	}
	// Symmetry: CP(k,n) low == 1 - CP(n-k,n) high.
	a := ClopperPearson(7, 25, 0.05)
	b := ClopperPearson(18, 25, 0.05)
	if math.Abs(a.Low-(1-b.High)) > 1e-9 || math.Abs(a.High-(1-b.Low)) > 1e-9 {
		t.Errorf("CP symmetry violated: %+v vs %+v", a, b)
	}
	// Exact interval must contain the point estimate and the Wilson interval's
	// coverage (CP is conservative: at least as wide).
	w := WilsonInterval(7, 25, 0.05)
	p := 7.0 / 25.0
	if a.Low > p || a.High < p {
		t.Errorf("CP(7,25) = %+v does not contain p=%v", a, p)
	}
	if a.Low > w.Low+1e-9 || a.High < w.High-1e-9 {
		t.Errorf("CP %+v narrower than Wilson %+v", a, w)
	}
	if got := ClopperPearson(3, 0, 0.05); got.Low != 0 || got.High != 1 {
		t.Errorf("CP with n=0 should be [0,1], got %+v", got)
	}
}

func TestBinomialTails(t *testing.T) {
	// P[X <= 1 | n=3, p=0.5] = 4/8; P[X >= 2] = 4/8.
	if got := binomLowerTail(1, 3, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("lower tail = %v, want 0.5", got)
	}
	if got := binomUpperTail(2, 3, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("upper tail = %v, want 0.5", got)
	}
	if got := binomLowerTail(5, 5, 0.3); math.Abs(got-1) > 1e-12 {
		t.Errorf("full lower tail = %v, want 1", got)
	}
}
