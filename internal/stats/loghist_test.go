package stats

import (
	"math"
	"sort"
	"testing"

	"wexp/internal/rng"
)

func TestLogHistogramBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range vals {
		b := bucketOf(v)
		lo, hi := bucketBounds(b)
		if v < lo || (v >= hi && hi > lo) {
			t.Errorf("value %d maps to bucket %d with bounds [%d,%d)", v, b, lo, hi)
		}
		if b < 0 || b >= logBuckets {
			t.Errorf("bucket %d for %d out of range [0,%d)", b, v, logBuckets)
		}
	}
	// Bucket indices must be monotone in the value.
	prev := -1
	for v := int64(0); v < 10000; v++ {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestLogHistogramExactSmallValues(t *testing.T) {
	h := NewLogHistogram()
	for v := int64(0); v < 50; v++ {
		h.Record(v)
	}
	// Values below 64 land in unit buckets: quantiles are exact
	// (modulo min/max clamping at the ends).
	// Rank ⌈0.5·50⌉ = 25 → the 25th smallest of 0..49 is 24.
	if got := h.Quantile(0.5); got != 24 {
		t.Errorf("median = %d, want 24", got)
	}
	if h.Min() != 0 || h.Max() != 49 || h.Count() != 50 {
		t.Errorf("min/max/count = %d/%d/%d, want 0/49/50", h.Min(), h.Max(), h.Count())
	}
	if h.Sum() != 49*50/2 {
		t.Errorf("sum = %d, want %d", h.Sum(), 49*50/2)
	}
}

func TestLogHistogramQuantileAccuracy(t *testing.T) {
	// Log-uniform samples spanning six orders of magnitude: the regime a
	// latency histogram must handle. The estimate must stay within the
	// 2^-(subBits-1) relative error bound of the exact quantile.
	r := rng.New(7)
	h := NewLogHistogram()
	var exact []int64
	for i := 0; i < 20000; i++ {
		v := int64(math.Exp(r.Float64()*math.Log(1e9))) + 50
		h.Record(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	bound := 1.0 / float64(half) // 2^-(subBits-1)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(len(exact))+0.5) - 1
		want := exact[rank]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > bound+1e-9 {
			t.Errorf("q=%g: got %d want %d (rel err %.4f > %.4f)", q, got, want, relErr, bound)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) < h.Quantile(0.999) {
		t.Errorf("tail quantiles inconsistent: q0=%d min=%d q1=%d", h.Quantile(0), h.Min(), h.Quantile(1))
	}
	if h.Max() != exact[len(exact)-1] {
		t.Errorf("max = %d, want %d", h.Max(), exact[len(exact)-1])
	}
}

func TestLogHistogramMerge(t *testing.T) {
	r := rng.New(11)
	whole, a, b := NewLogHistogram(), NewLogHistogram(), NewLogHistogram()
	for i := 0; i < 5000; i++ {
		v := r.Int63() % 1_000_000
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge lost mass: count %d/%d sum %d/%d", a.Count(), whole.Count(), a.Sum(), whole.Sum())
	}
	// Bucket counts add exactly, so every quantile matches the single
	// histogram bit for bit.
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%g: merged %d != whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	a.Merge(nil) // must be a no-op
	if a.Count() != whole.Count() {
		t.Error("Merge(nil) changed the histogram")
	}
}

func TestLogHistogramEmptyAndNegative(t *testing.T) {
	h := NewLogHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to zero
	if h.Min() != 0 || h.Count() != 1 {
		t.Errorf("negative sample: min=%d count=%d, want 0/1", h.Min(), h.Count())
	}
}
