// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every randomized component of the library.
//
// Reproducibility is a first-class requirement for the experiment harness:
// each experiment seeds its own RNG, and parallel trial workers receive
// independent streams via Split, so results are bit-identical across runs
// regardless of goroutine scheduling. The generator is xoshiro256**, which
// has a 256-bit state, passes BigCrush, and is far faster than the stdlib's
// global locked source.
package rng

import "math/bits"

// RNG is a xoshiro256** generator. It is not safe for concurrent use; use
// Split to derive independent generators for concurrent workers.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed using splitmix64 state
// initialization, which guarantees a well-mixed nonzero state for any seed
// (including zero).
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split returns a new generator with a state derived from, but statistically
// independent of, the receiver's stream. The receiver advances.
func (r *RNG) Split() *RNG {
	// Feeding a fresh splitmix64 chain from the parent's output decorrelates
	// the child stream from subsequent parent output.
	return New(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias; the
// full 64-bit range lets callers draw uniform combination ranks up to
// C(n, k) without overflow.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Salt hashes a stream label to a 64-bit value (FNV-1a) suitable for
// XOR-mixing into a base seed: rng.New(seed ^ rng.Salt("phase")). Distinct
// labels give decorrelated streams from one user-facing seed, which is the
// library-wide idiom for deterministic, worker-invariant trial pools.
func Salt(label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Binomial returns a sample from Binomial(n, p) by direct simulation.
// It is O(n); the library only draws binomials with small n, so a fancier
// sampler is not warranted.
func (r *RNG) Binomial(n int, p float64) int {
	c := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			c++
		}
	}
	return c
}

// SampleSubset returns each of the n indices independently with probability
// p, appended to dst (which may be nil). This is the primitive used by the
// decay sampler of Lemma 4.2.
func (r *RNG) SampleSubset(n int, p float64, dst []int) []int {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Choose returns k distinct uniform indices from [0, n) in increasing order.
// It panics if k > n or k < 0.
func (r *RNG) Choose(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Choose with k out of range")
	}
	// Floyd's algorithm: O(k) expected time, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Insertion sort: k is small in all callers and the output contract is
	// "increasing order".
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
