package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream should not equal the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matches parent %d/100 times", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a, b := New(9), New(9)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("split streams diverge at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("value %d count %d deviates from %g", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %g, want ≈ 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(17)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli rate = %g, want ≈ %g", rate, p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChoose(t *testing.T) {
	r := New(23)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 5}, {10, 10}, {1000, 3}} {
		out := r.Choose(tc.n, tc.k)
		if len(out) != tc.k {
			t.Fatalf("Choose(%d,%d) returned %d elems", tc.n, tc.k, len(out))
		}
		for i := range out {
			if out[i] < 0 || out[i] >= tc.n {
				t.Fatalf("Choose element %d out of range", out[i])
			}
			if i > 0 && out[i] <= out[i-1] {
				t.Fatalf("Choose not strictly increasing: %v", out)
			}
		}
	}
}

func TestChoosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Choose(3, 4)
}

func TestChooseCoverage(t *testing.T) {
	// Every element should be chosen sometimes.
	r := New(29)
	const n = 8
	seen := make([]bool, n)
	for i := 0; i < 200; i++ {
		for _, v := range r.Choose(n, 2) {
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("element %d never chosen", v)
		}
	}
}

func TestBinomial(t *testing.T) {
	r := New(31)
	const n, p, trials = 20, 0.5, 20000
	sum := 0
	for i := 0; i < trials; i++ {
		b := r.Binomial(n, p)
		if b < 0 || b > n {
			t.Fatalf("Binomial out of range: %d", b)
		}
		sum += b
	}
	mean := float64(sum) / trials
	if math.Abs(mean-n*p) > 0.1 {
		t.Fatalf("Binomial mean = %g, want ≈ %g", mean, n*p)
	}
}

func TestSampleSubset(t *testing.T) {
	r := New(37)
	out := r.SampleSubset(100, 1, nil)
	if len(out) != 100 {
		t.Fatalf("SampleSubset p=1 returned %d", len(out))
	}
	out = r.SampleSubset(100, 0, out)
	if len(out) != 0 {
		t.Fatalf("SampleSubset p=0 returned %d", len(out))
	}
	// Reuse should not retain old elements.
	out = r.SampleSubset(10, 0.5, out)
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("SampleSubset not increasing: %v", out)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(41)
	a := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range a {
		sum += v
	}
	r.ShuffleInts(a)
	sum2 := 0
	for _, v := range a {
		sum2 += v
	}
	if sum != sum2 || len(a) != 7 {
		t.Fatalf("shuffle changed multiset: %v", a)
	}
}
