package radio

import (
	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// AdjRows caches a graph's adjacency as one bitset row per vertex — the
// representation the word-parallel receive step operates on. Rows are
// immutable after construction and safe to share across networks and
// goroutines; MonteCarlo builds them once per graph and hands them to
// every trial.
type AdjRows struct {
	n    int
	rows []*bitset.Set
	// words is the row width in 64-bit words; rows with fewer than `words`
	// neighbors are cheaper to scatter per neighbor than to OR word by
	// word, so Step picks per row.
	words int
	// vector selects the word-parallel receive step. The per-arc cost of
	// the scalar counting loop is lower than the bitset scatter, so when
	// most of the graph's arc mass sits in rows too sparse for the dense
	// word sweep, the whole round falls back to the counting loop — both
	// paths produce bit-identical results (enforced by the differential
	// corpus), so this is purely a performance decision, made once per
	// graph: vector iff at least half the arcs lie in rows with ≥ `words`
	// neighbors.
	vector bool
}

// BuildAdjRows constructs the adjacency row cache for g.
func BuildAdjRows(g *graph.Graph) *AdjRows {
	n := g.N()
	a := &AdjRows{n: n, rows: make([]*bitset.Set, n), words: (n + 63) / 64}
	denseArcs := 0
	for v := 0; v < n; v++ {
		row := bitset.New(n)
		for _, w := range g.Neighbors(v) {
			row.Add(int(w))
		}
		a.rows[v] = row
		if d := g.Degree(v); d >= a.words {
			denseArcs += d
		}
	}
	a.vector = denseArcs >= g.M() // denseArcs ≥ half of the 2m arcs
	return a
}

// stepScratch holds the per-network bitset accumulators of the vectorized
// step. Networks are not safe for concurrent use, so one set per network
// suffices.
type stepScratch struct {
	active *bitset.Set // transmit ∧ informed: the vertices that actually send
	hit    *bitset.Set // vertices with ≥1 transmitting neighbor
	multi  *bitset.Set // vertices with ≥2 transmitting neighbors
	newly  *bitset.Set // receive candidates: exactly one transmitting neighbor
}

func newStepScratch(n int) *stepScratch {
	return &stepScratch{
		active: bitset.New(n),
		hit:    bitset.New(n),
		multi:  bitset.New(n),
		newly:  bitset.New(n),
	}
}

// Step executes one synchronous round in which exactly the vertices marked
// by transmit send. Vertices that are not informed cannot transmit (their
// flag is ignored): a processor cannot send a message it does not hold.
// Returns the number of newly informed vertices.
//
// This is the word-parallel engine: the transmit set is a bitset, and the
// receive rule — a silent vertex receives iff exactly one neighbor
// transmits — is evaluated 64 vertices at a time with two accumulators,
// hit (≥1 transmitting neighbor) and multi (≥2), so collisions never need
// a per-neighbor counter:
//
//	multi |= hit & row(v);  hit |= row(v)        for each sender v
//	newly  = hit \ multi \ active \ informed
//
// Rows sparser than the row width in words scatter per neighbor instead
// (same sets, order-independent), and graphs whose arc mass is mostly in
// sparse rows skip the bitset machinery entirely in favor of the counting
// loop (see AdjRows.vector). Results are bit-identical to StepScalar on
// every input, whichever path runs.
func (n *Network) Step(transmit []bool) int {
	if !n.rows.vector {
		return n.StepScalar(transmit)
	}
	if n.scratch == nil {
		n.scratch = newStepScratch(n.G.N())
	}
	sc := n.scratch
	sc.active.Clear()
	sc.hit.Clear()
	sc.multi.Clear()
	dense := n.rows.words
	for v, inf := range n.Informed {
		if !inf || !transmit[v] {
			continue
		}
		sc.active.Add(v)
		if n.G.Degree(v) < dense {
			sc.hit.ScatterCover(sc.multi, n.G.Neighbors(v))
		} else {
			sc.hit.AccumulateCover(sc.multi, n.rows.rows[v])
		}
	}
	n.Round++
	n.Transmissions += sc.active.Count()
	n.Collisions += sc.multi.SubtractCount(sc.active)
	// Receive candidates: exactly one transmitting neighbor and not
	// transmitting. Candidates already informed (silent with one hit) are
	// filtered against the bool slice — typically a handful, so no
	// informed bitset is ever materialized.
	sc.newly.Copy(sc.hit)
	sc.newly.Subtract(sc.multi)
	sc.newly.Subtract(sc.active)
	newly := 0
	for v := range sc.newly.All() {
		if n.Informed[v] {
			continue
		}
		n.Informed[v] = true
		n.informedAtRnd[v] = n.Round
		newly++
	}
	n.InformedCount += newly
	return newly
}
