package radio

import (
	"wexp/internal/bitset"
	"wexp/internal/graph"
)

// rowsKind selects the adjacency representation behind the word-parallel
// step: dense bit rows for small graphs, CSR-only traversal above the
// memory budget.
type rowsKind uint8

const (
	// rowsDense materializes one n-bit row per vertex (n²/8 bytes total):
	// the fastest layout when it fits, because high-degree senders OR whole
	// words at a time.
	rowsDense rowsKind = iota
	// rowsSparse keeps only the graph's CSR and scatters neighbor ids into
	// the hit/multi accumulators, in receiver-chunked order for large
	// rounds. Memory is O(n) bits of accumulator on top of the shared CSR —
	// nothing quadratic — so n ≥ 10⁶ runs in O(n + m) words per trial.
	rowsSparse
)

// DefaultDenseRowBudget caps the dense bit-row cache at 64 MiB — dense up
// to n ≈ 23k, sparse beyond. The crossover is far below any size where
// dense rows win anyway (the row cache stops fitting in L2/L3 long before
// the budget trips), so the default never costs measurable speed.
const DefaultDenseRowBudget = 64 << 20

// MemModel is the explicit memory model that picks the adjacency strategy.
// The zero value selects the defaults; tests force the sparse engine on
// tiny graphs by setting a one-byte budget.
type MemModel struct {
	// DenseRowBudget is the maximum bytes the dense per-vertex bit rows may
	// occupy (n · ⌈n/64⌉ · 8). Graphs over budget use the sparse CSR
	// strategy. 0 (or negative) means DefaultDenseRowBudget.
	DenseRowBudget int64
}

func (mm MemModel) denseBudget() int64 {
	if mm.DenseRowBudget <= 0 {
		return DefaultDenseRowBudget
	}
	return mm.DenseRowBudget
}

// AdjRows caches a graph's adjacency strategy for the receive step. For
// small graphs it holds one bitset row per vertex — the representation the
// word-parallel step ORs 64 receivers at a time. Above the memory model's
// budget no rows are materialized: the step traverses the graph's own CSR.
// Either way the value is immutable after construction and safe to share
// across networks and goroutines; MonteCarlo builds it once per graph and
// hands it to every trial.
type AdjRows struct {
	n    int
	kind rowsKind
	rows []*bitset.Set // per-vertex bit rows; nil when kind == rowsSparse
	// words is the row width in 64-bit words; rows with fewer than `words`
	// neighbors are cheaper to scatter per neighbor than to OR word by
	// word, so Step picks per row.
	words int
	// vector selects the word-parallel receive step on the dense strategy.
	// The per-arc cost of the scalar counting loop is lower than the bitset
	// scatter, so when most of the graph's arc mass sits in rows too sparse
	// for the dense word sweep, the whole round falls back to the counting
	// loop — both paths produce bit-identical results (enforced by the
	// differential corpus), so this is purely a performance decision, made
	// once per graph: vector iff at least half the arcs lie in rows with ≥
	// `words` neighbors. The sparse strategy ignores it: set-based
	// accumulation is also what keeps its per-trial memory flat, so sparse
	// networks always take the bitset path.
	vector bool
}

// Strategy names the engine this row cache selects: "dense" (word-parallel
// over bit rows), "scalar" (counting loop; dense rows built but unprofitable),
// or "sparse" (CSR scatter, no rows materialized).
func (a *AdjRows) Strategy() string {
	switch {
	case a.kind == rowsSparse:
		return "sparse"
	case a.vector:
		return "dense"
	default:
		return "scalar"
	}
}

// BuildAdjRows constructs the adjacency strategy for g under the default
// memory model.
func BuildAdjRows(g *graph.Graph) *AdjRows {
	return BuildAdjRowsMem(g, MemModel{})
}

// BuildAdjRowsMem constructs the adjacency strategy for g under an explicit
// memory model: dense bit rows iff n · ⌈n/64⌉ · 8 bytes fit the budget,
// CSR-backed sparse traversal otherwise.
func BuildAdjRowsMem(g *graph.Graph, mm MemModel) *AdjRows {
	n := g.N()
	words := (n + 63) / 64
	a := &AdjRows{n: n, words: words}
	if int64(n)*int64(words)*8 > mm.denseBudget() {
		a.kind = rowsSparse
		return a
	}
	a.rows = make([]*bitset.Set, n)
	denseArcs := 0
	for v := 0; v < n; v++ {
		row := bitset.New(n)
		for _, w := range g.Neighbors(v) {
			row.Add(int(w))
		}
		a.rows[v] = row
		if d := g.Degree(v); d >= a.words {
			denseArcs += d
		}
	}
	a.vector = denseArcs >= g.M() // denseArcs ≥ half of the 2m arcs
	return a
}

// stepScratch holds the per-network bitset accumulators of the vectorized
// step. Networks are not safe for concurrent use, so one set per network
// suffices.
type stepScratch struct {
	active *bitset.Set // transmit ∧ informed: the vertices that actually send
	hit    *bitset.Set // vertices with ≥1 transmitting neighbor
	multi  *bitset.Set // vertices with ≥2 transmitting neighbors
	newly  *bitset.Set // receive candidates: exactly one transmitting neighbor
}

func newStepScratch(n int) *stepScratch {
	return &stepScratch{
		active: bitset.New(n),
		hit:    bitset.New(n),
		multi:  bitset.New(n),
		newly:  bitset.New(n),
	}
}

// Step executes one synchronous round in which exactly the vertices marked
// by transmit send. Vertices that are not informed cannot transmit (their
// flag is ignored): a processor cannot send a message it does not hold.
// Returns the number of newly informed vertices.
//
// This is the word-parallel engine: the transmit set is a bitset, and the
// receive rule — a silent vertex receives iff exactly one neighbor
// transmits — is evaluated 64 vertices at a time with two accumulators,
// hit (≥1 transmitting neighbor) and multi (≥2), so collisions never need
// a per-neighbor counter:
//
//	multi |= hit & row(v);  hit |= row(v)        for each sender v
//	newly  = hit \ multi \ active \ informed
//
// On the dense strategy, rows sparser than the row width in words scatter
// per neighbor instead (same sets, order-independent), and graphs whose
// arc mass is mostly in sparse rows skip the bitset machinery entirely in
// favor of the counting loop (see AdjRows.vector). On the sparse strategy
// every sender scatters its CSR neighbor list — receiver-chunked when the
// round is heavy enough for cache blocking to pay (see sparseAccumulate).
// Results are bit-identical to StepScalar on every input, whichever path
// runs: the accumulator algebra is order-independent set arithmetic.
func (n *Network) Step(transmit []bool) int {
	if n.rows.kind == rowsSparse {
		return n.stepSparse(transmit)
	}
	if !n.rows.vector {
		return n.StepScalar(transmit)
	}
	if n.scratch == nil {
		n.scratch = newStepScratch(n.G.N())
	}
	sc := n.scratch
	sc.active.Clear()
	sc.hit.Clear()
	sc.multi.Clear()
	dense := n.rows.words
	for v, inf := range n.Informed {
		if !inf || !transmit[v] {
			continue
		}
		sc.active.Add(v)
		if n.G.Degree(v) < dense {
			sc.hit.ScatterCover(sc.multi, n.G.Neighbors(v))
		} else {
			sc.hit.AccumulateCover(sc.multi, n.rows.rows[v])
		}
	}
	n.Round++
	n.Transmissions += sc.active.Count()
	n.Collisions += sc.multi.SubtractCount(sc.active)
	// Receive candidates: exactly one transmitting neighbor and not
	// transmitting. Candidates already informed (silent with one hit) are
	// filtered against the bool slice — typically a handful, so no
	// informed bitset is ever materialized.
	sc.newly.Copy(sc.hit)
	sc.newly.Subtract(sc.multi)
	sc.newly.Subtract(sc.active)
	newly := 0
	for v := range sc.newly.All() {
		if n.Informed[v] {
			continue
		}
		n.Informed[v] = true
		n.informedAtRnd[v] = int32(n.Round)
		newly++
	}
	n.InformedCount += newly
	return newly
}

// stepSparse is Step on the sparse strategy: identical accumulator algebra,
// no bit rows.
func (n *Network) stepSparse(transmit []bool) int {
	sc := n.sparseAccumulate(transmit)
	newly := 0
	for v := range sc.newly.All() {
		if n.Informed[v] {
			continue
		}
		n.Informed[v] = true
		n.informedAtRnd[v] = int32(n.Round)
		newly++
	}
	n.InformedCount += newly
	return newly
}

// Receiver-chunk blocking parameters for the sparse scatter. Chunking
// buckets the round's arcs by receiver id so each 2^sparseChunkShift-bit
// window of the hit/multi accumulators is touched by one contiguous burst
// instead of random-order scatter across n bits — the standard propagation
// blocking of large-graph frameworks. It costs two extra passes over the
// round's arcs (count + bucket), so it only pays once the accumulators
// themselves fall out of cache: at n = 10⁶ each bitset is 125 KiB and the
// direct scatter measures ~2.4× faster than the chunked one, so the vertex
// threshold sits where the hit+multi window (2·n/8 bytes) clears a typical
// L3 slice. The thresholds are package variables only so the differential
// tests can force either path on small inputs; production code never
// mutates them.
const sparseChunkShift = 16 // 64k receivers per chunk: 8 KiB of hit bits

var (
	sparseChunkMinVerts = 64 << 20 // 2·n/8 = 16 MiB of accumulator: past L3
	sparseChunkMinArcs  = 1 << 15  // light rounds: bucketing overhead beats locality gains
)

// sparseScratch extends the bitset accumulators with the arc-bucketing
// arena of the chunked scatter. All slices are reused round over round and
// sized by the largest round seen, so per-trial memory stays O(n + round
// arcs) with no allocation in steady state.
type sparseScratch struct {
	stepScratch
	frontier []int32 // this round's transmitting vertices
	counts   []int32 // per-chunk arc counts, then prefix-summed ends
	cursors  []int32 // per-chunk placement cursors
	arcs     []int32 // receiver ids bucketed by chunk
}

// sparseAccumulate runs the shared first half of a sparse round: collect
// the frontier, scatter every sender's CSR neighbor list into the hit and
// multi accumulators (receiver-chunked when the round is heavy), update
// Round/Transmissions/Collisions, and leave newly = hit \ multi \ active
// for the caller's commit rule. Both the unit-disk commit (stepSparse) and
// the jamming model's candidate collection consume it.
func (n *Network) sparseAccumulate(transmit []bool) *sparseScratch {
	if n.sparse == nil {
		n.sparse = &sparseScratch{stepScratch: *newStepScratch(n.G.N())}
	}
	sc := n.sparse
	sc.active.Clear()
	sc.hit.Clear()
	sc.multi.Clear()
	sc.frontier = sc.frontier[:0]
	arcTotal := 0
	for v, inf := range n.Informed {
		if !inf || !transmit[v] {
			continue
		}
		sc.active.Add(v)
		sc.frontier = append(sc.frontier, int32(v))
		arcTotal += n.G.Degree(v)
	}
	n.Round++
	n.Transmissions += len(sc.frontier)
	if n.G.N() >= sparseChunkMinVerts && arcTotal >= sparseChunkMinArcs {
		sc.scatterChunked(n.G, arcTotal)
	} else {
		for _, v := range sc.frontier {
			sc.hit.ScatterCover(sc.multi, n.G.Neighbors(int(v)))
		}
	}
	n.Collisions += sc.multi.SubtractCount(sc.active)
	sc.newly.Copy(sc.hit)
	sc.newly.Subtract(sc.multi)
	sc.newly.Subtract(sc.active)
	return sc
}

// scatterChunked performs the round's scatter in receiver-chunk order:
// count arcs per chunk, prefix-sum, place every receiver id into its
// chunk's bucket, then scatter one chunk at a time so the accumulator
// window stays cache-resident. The set arithmetic is order-independent, so
// the result is bit-identical to the direct scatter.
func (sc *sparseScratch) scatterChunked(g *graph.Graph, arcTotal int) {
	numChunks := (g.N()-1)>>sparseChunkShift + 1
	if cap(sc.counts) < numChunks+1 {
		sc.counts = make([]int32, numChunks+1)
		sc.cursors = make([]int32, numChunks)
	}
	counts := sc.counts[:numChunks+1]
	for i := range counts {
		counts[i] = 0
	}
	for _, v := range sc.frontier {
		for _, w := range g.Neighbors(int(v)) {
			counts[int(w)>>sparseChunkShift+1]++
		}
	}
	for c := 0; c < numChunks; c++ {
		counts[c+1] += counts[c]
	}
	cursors := sc.cursors[:numChunks]
	copy(cursors, counts[:numChunks])
	if cap(sc.arcs) < arcTotal {
		sc.arcs = make([]int32, arcTotal)
	}
	arcs := sc.arcs[:arcTotal]
	for _, v := range sc.frontier {
		for _, w := range g.Neighbors(int(v)) {
			c := int(w) >> sparseChunkShift
			arcs[cursors[c]] = w
			cursors[c]++
		}
	}
	for c := 0; c < numChunks; c++ {
		sc.hit.ScatterCover(sc.multi, arcs[counts[c]:counts[c+1]])
	}
}
