package radio

import (
	"testing"

	"wexp/internal/graph"
)

// FuzzRadioModels checks the cross-model invariants over adversarial
// (graph, model, transmit) inputs: the informed set only ever grows, the
// informed count matches the flags, per-round stats are monotone, and the
// UnitDisk model agrees bit-for-bit with the scalar oracle.
func FuzzRadioModels(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3}, []byte{0, 2, 1}, uint8(0))
	f.Add([]byte{0, 1, 0, 2, 0, 3, 4, 5}, []byte{0, 4, 5, 1}, uint8(1))
	f.Add([]byte{3, 7, 7, 11, 11, 3}, []byte{3, 7, 11, 2}, uint8(2))
	f.Add([]byte{1, 2, 2, 3, 3, 4, 4, 1}, []byte{1, 3, 0}, uint8(3))
	f.Add([]byte{}, []byte{}, uint8(4))
	f.Fuzz(func(t *testing.T, edges, transmitters []byte, sel uint8) {
		const n = 24
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(edges); i += 2 {
			u, v := int(edges[i])%n, int(edges[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		models := []Model{
			UnitDisk{},
			&SINR{Alpha: 1, Beta: 0.5, N0: 0.1, Power: 1},
			&Fading{P: float64(sel%128) / 128, Seed: uint64(sel)},
			&MultiMessage{M: 1 + int(sel)%8},
			&Jam{Budget: int(sel) % 4, Policy: []string{JamByDegree, JamByFrontier}[int(sel/4)%2]},
		}
		m := models[int(sel)%len(models)]
		net, err := NewNetwork(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		net.UseModel(m, uint64(sel))
		oracle, _ := NewNetwork(g, 0) // tracks UnitDisk only
		prevInformed := make([]bool, n)
		copy(prevInformed, net.Informed)
		prevCount := net.InformedCount
		for round := 0; round < 4; round++ {
			transmit := make([]bool, n)
			for i := round; i < len(transmitters); i += 4 {
				transmit[int(transmitters[i])%n] = true
			}
			newly := net.StepRound(transmit)
			if newly < 0 {
				t.Fatalf("round %d: negative newly %d", round, newly)
			}
			count := 0
			for v := 0; v < n; v++ {
				if prevInformed[v] && !net.Informed[v] {
					t.Fatalf("round %d: vertex %d became uninformed", round, v)
				}
				if net.Informed[v] {
					count++
					if at := net.InformedAt(v); at < 0 || at > net.Round {
						t.Fatalf("round %d: vertex %d informed-at %d out of range", round, v, at)
					}
				}
			}
			if count != net.InformedCount {
				t.Fatalf("round %d: InformedCount %d, flags say %d", round, net.InformedCount, count)
			}
			if net.InformedCount-prevCount != newly {
				t.Fatalf("round %d: newly %d but count went %d -> %d", round, newly, prevCount, net.InformedCount)
			}
			if net.Collisions < 0 || net.Transmissions < 0 {
				t.Fatalf("round %d: negative stats", round)
			}
			if _, isUD := m.(UnitDisk); isUD {
				ns := oracle.StepScalar(transmit)
				if ns != newly || oracle.InformedCount != net.InformedCount ||
					oracle.Collisions != net.Collisions || oracle.Transmissions != net.Transmissions {
					t.Fatalf("round %d: UnitDisk model diverged from scalar oracle", round)
				}
				for v := 0; v < n; v++ {
					if oracle.Informed[v] != net.Informed[v] {
						t.Fatalf("round %d: UnitDisk Informed[%d] mismatch", round, v)
					}
				}
			}
			copy(prevInformed, net.Informed)
			prevCount = net.InformedCount
		}
	})
}

// FuzzRadioStep feeds arbitrary (graph, informed set, transmit masks)
// triples to both engines and requires bit-for-bit agreement on every
// observable — the same contract the differential corpus checks, but over
// adversarial inputs: the fuzzer owns the edge list, the pre-informed
// set, and three consecutive rounds of transmit flags (including flags on
// uninformed vertices, which both engines must ignore).
func FuzzRadioStep(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2}, []byte{0}, []byte{0, 2})
	f.Add([]byte{0, 1, 0, 2, 1, 2}, []byte{0, 1}, []byte{0, 1, 2})
	f.Add([]byte{}, []byte{}, []byte{})
	f.Add([]byte{3, 7, 7, 11, 11, 3, 1, 2}, []byte{3, 9}, []byte{7, 3, 9, 1})
	f.Fuzz(func(t *testing.T, edges, informed, transmitters []byte) {
		const n = 24
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(edges); i += 2 {
			u, v := int(edges[i])%n, int(edges[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		rows := BuildAdjRows(g)
		rows.vector = true // always exercise the word-parallel kernel
		vec, err := NewNetworkRows(g, 0, rows)
		if err != nil {
			t.Fatal(err)
		}
		sca, _ := NewNetwork(g, 0)
		for _, raw := range informed {
			v := int(raw) % n
			if !vec.Informed[v] {
				vec.Informed[v] = true
				vec.InformedCount++
				sca.Informed[v] = true
				sca.InformedCount++
			}
		}
		// Three rounds from the fuzzed transmit bytes: round r uses every
		// third byte, so multi-round interactions (newly informed vertices
		// transmitting next round) are exercised too.
		for round := 0; round < 3; round++ {
			transmit := make([]bool, n)
			for i := round; i < len(transmitters); i += 3 {
				transmit[int(transmitters[i])%n] = true
			}
			nv := vec.Step(transmit)
			ns := sca.StepScalar(transmit)
			if nv != ns {
				t.Fatalf("round %d: newly informed %d (vectorized) != %d (scalar)", round, nv, ns)
			}
			if vec.InformedCount != sca.InformedCount ||
				vec.Collisions != sca.Collisions ||
				vec.Transmissions != sca.Transmissions {
				t.Fatalf("round %d: stats diverged: vec{%d,%d,%d} sca{%d,%d,%d}", round,
					vec.InformedCount, vec.Collisions, vec.Transmissions,
					sca.InformedCount, sca.Collisions, sca.Transmissions)
			}
			for v := 0; v < n; v++ {
				if vec.Informed[v] != sca.Informed[v] || vec.InformedAt(v) != sca.InformedAt(v) {
					t.Fatalf("round %d vertex %d: informed %v/%v at %d/%d", round, v,
						vec.Informed[v], sca.Informed[v], vec.InformedAt(v), sca.InformedAt(v))
				}
			}
		}
	})
}
