package radio

import (
	"testing"

	"wexp/internal/graph"
)

// FuzzRadioStep feeds arbitrary (graph, informed set, transmit masks)
// triples to both engines and requires bit-for-bit agreement on every
// observable — the same contract the differential corpus checks, but over
// adversarial inputs: the fuzzer owns the edge list, the pre-informed
// set, and three consecutive rounds of transmit flags (including flags on
// uninformed vertices, which both engines must ignore).
func FuzzRadioStep(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2}, []byte{0}, []byte{0, 2})
	f.Add([]byte{0, 1, 0, 2, 1, 2}, []byte{0, 1}, []byte{0, 1, 2})
	f.Add([]byte{}, []byte{}, []byte{})
	f.Add([]byte{3, 7, 7, 11, 11, 3, 1, 2}, []byte{3, 9}, []byte{7, 3, 9, 1})
	f.Fuzz(func(t *testing.T, edges, informed, transmitters []byte) {
		const n = 24
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(edges); i += 2 {
			u, v := int(edges[i])%n, int(edges[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		rows := BuildAdjRows(g)
		rows.vector = true // always exercise the word-parallel kernel
		vec, err := NewNetworkRows(g, 0, rows)
		if err != nil {
			t.Fatal(err)
		}
		sca, _ := NewNetwork(g, 0)
		for _, raw := range informed {
			v := int(raw) % n
			if !vec.Informed[v] {
				vec.Informed[v] = true
				vec.InformedCount++
				sca.Informed[v] = true
				sca.InformedCount++
			}
		}
		// Three rounds from the fuzzed transmit bytes: round r uses every
		// third byte, so multi-round interactions (newly informed vertices
		// transmitting next round) are exercised too.
		for round := 0; round < 3; round++ {
			transmit := make([]bool, n)
			for i := round; i < len(transmitters); i += 3 {
				transmit[int(transmitters[i])%n] = true
			}
			nv := vec.Step(transmit)
			ns := sca.StepScalar(transmit)
			if nv != ns {
				t.Fatalf("round %d: newly informed %d (vectorized) != %d (scalar)", round, nv, ns)
			}
			if vec.InformedCount != sca.InformedCount ||
				vec.Collisions != sca.Collisions ||
				vec.Transmissions != sca.Transmissions {
				t.Fatalf("round %d: stats diverged: vec{%d,%d,%d} sca{%d,%d,%d}", round,
					vec.InformedCount, vec.Collisions, vec.Transmissions,
					sca.InformedCount, sca.Collisions, sca.Transmissions)
			}
			for v := 0; v < n; v++ {
				if vec.Informed[v] != sca.Informed[v] || vec.InformedAt(v) != sca.InformedAt(v) {
					t.Fatalf("round %d vertex %d: informed %v/%v at %d/%d", round, v,
						vec.Informed[v], sca.Informed[v], vec.InformedAt(v), sca.InformedAt(v))
				}
			}
		}
	})
}
