package radio

import (
	"testing"

	"wexp/internal/gen"
	"wexp/internal/rng"
)

func TestRoundRobinScheduleMatchesProtocol(t *testing.T) {
	g := gen.CPlus(8)
	a, err := Run(g, 0, RoundRobin{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, 0, NewRoundRobinSchedule(g.N()), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Completed != b.Completed {
		t.Fatalf("schedule diverges from protocol: %+v vs %+v", a, b)
	}
}

func TestRandomScheduleCompletes(t *testing.T) {
	g := gen.Torus(6, 6)
	r := rng.New(1)
	sched, err := NewRandomSchedule(g.N(), 64, 0.1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, sched, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("random schedule incomplete: %d/%d", res.InformedCount, g.N())
	}
}

func TestDecayScheduleCompletes(t *testing.T) {
	g := gen.CPlus(16)
	r := rng.New(2)
	sched, err := NewDecaySchedule(g.N(), 32, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, sched, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("decay schedule incomplete: %d/%d", res.InformedCount, g.N())
	}
}

func TestScheduleValidation(t *testing.T) {
	r := rng.New(3)
	if _, err := NewRandomSchedule(10, 0, 0.5, r); err == nil {
		t.Fatal("period 0 accepted")
	}
	if _, err := NewRandomSchedule(10, 4, 0, r); err == nil {
		t.Fatal("density 0 accepted")
	}
	if _, err := NewRandomSchedule(10, 4, 1.5, r); err == nil {
		t.Fatal("density > 1 accepted")
	}
	if _, err := NewDecaySchedule(10, 0, r); err == nil {
		t.Fatal("decay period 0 accepted")
	}
}

func TestEmptyScheduleIsSilent(t *testing.T) {
	g := gen.Path(4)
	sched := &FixedSchedule{Label: "empty"}
	res, err := Run(g, 0, sched, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.InformedCount != 1 {
		t.Fatal("empty schedule should make no progress")
	}
	if sched.Name() != "empty" {
		t.Fatal("label not used")
	}
	if (&FixedSchedule{}).Name() != "fixed-schedule" {
		t.Fatal("default name wrong")
	}
}
