package radio

import (
	"fmt"

	"wexp/internal/rng"
)

// FixedSchedule is an oblivious protocol: which vertices transmit in round
// r depends only on (r, vertex id), fixed before execution — the protocol
// class against which Section 5's lower bound is cleanest (the relay rtᵢ is
// a uniformly random N-vertex, so no oblivious schedule can favor it).
// The schedule cycles with period len(Slots).
type FixedSchedule struct {
	Label string
	Slots [][]int // Slots[r % period] = vertex ids allowed to transmit
}

// Name implements Protocol.
func (f *FixedSchedule) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fixed-schedule"
}

// Transmitters implements Protocol.
func (f *FixedSchedule) Transmitters(n *Network, transmit []bool) {
	if len(f.Slots) == 0 {
		return
	}
	for _, v := range f.Slots[n.Round%len(f.Slots)] {
		if v >= 0 && v < len(transmit) {
			transmit[v] = n.Informed[v]
		}
	}
}

// NewRoundRobinSchedule returns the oblivious schedule equivalent of
// RoundRobin: period n, one vertex per slot.
func NewRoundRobinSchedule(n int) *FixedSchedule {
	slots := make([][]int, n)
	for v := 0; v < n; v++ {
		slots[v] = []int{v}
	}
	return &FixedSchedule{Label: "rr-schedule", Slots: slots}
}

// NewRandomSchedule returns an oblivious schedule with the given period in
// which each vertex appears in each slot independently with probability p.
// Varying p trades collision risk against progress rate — every choice
// still obeys the Ω(D·log(n/D)) broadcast lower bound on the chain.
func NewRandomSchedule(n, period int, p float64, r *rng.RNG) (*FixedSchedule, error) {
	if period <= 0 {
		return nil, fmt.Errorf("radio: schedule period must be positive, got %d", period)
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("radio: schedule density must be in (0,1], got %g", p)
	}
	slots := make([][]int, period)
	for t := range slots {
		for v := 0; v < n; v++ {
			if r.Bernoulli(p) {
				slots[t] = append(slots[t], v)
			}
		}
	}
	return &FixedSchedule{
		Label: fmt.Sprintf("random-schedule-p%.3g", p),
		Slots: slots,
	}, nil
}

// NewDecaySchedule returns an oblivious decay-style schedule: slot i of
// each period has each vertex present with probability 2^{-(i mod L)},
// where L = period. This is the derandomization-resistant pattern behind
// the Decay protocol, frozen into a fixed schedule.
func NewDecaySchedule(n, period int, r *rng.RNG) (*FixedSchedule, error) {
	if period <= 0 {
		return nil, fmt.Errorf("radio: schedule period must be positive, got %d", period)
	}
	slots := make([][]int, period)
	p := 1.0
	for t := range slots {
		for v := 0; v < n; v++ {
			if r.Bernoulli(p) {
				slots[t] = append(slots[t], v)
			}
		}
		p /= 2
		if p < 1.0/float64(2*n) {
			p = 1.0
		}
	}
	return &FixedSchedule{Label: "decay-schedule", Slots: slots}, nil
}
