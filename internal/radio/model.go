package radio

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"wexp/internal/rng"
)

// Model is the pluggable per-round receive rule. The engine's historical
// behaviour — the Chlamtac–Kutten unit-disk rule "a silent vertex receives
// iff exactly one neighbor transmits" — is the UnitDisk model; the other
// models replace or extend that rule while reusing the same Network state,
// protocols, and Monte-Carlo harness.
//
// Determinism contract: a model execution is a pure function of (graph,
// source, transmit sets, model parameters, fork salt). Models that need
// randomness (Fading) derive a fresh per-round stream from their parameters,
// the fork salt, and the round number only — never from shared state — so
// Monte-Carlo aggregates are bit-identical at any worker count. Models with
// per-execution state (message sets, scratch buffers) return a fresh
// instance from Fork; a Model value handed to Options.Model is never
// mutated by the run itself.
type Model interface {
	// Name is the canonical parameterized name (e.g. "fading(p=0.25)"),
	// stable across runs — it is used in CLI reports, experiment tables,
	// and wexpd cache keys.
	Name() string
	// Fork returns an instance private to one execution (trial). salt is
	// the execution's pre-split identity; stateless deterministic models
	// may ignore it and return the receiver.
	Fork(salt uint64) Model
	// Init prepares per-execution state after the network is built (and
	// may seed extra initial knowledge, e.g. MultiMessage origins).
	Init(n *Network)
	// Step executes one synchronous round in which exactly the informed
	// vertices marked by transmit send, and returns the number of newly
	// informed vertices.
	Step(n *Network, transmit []bool) int
	// Done reports whether the execution's completion condition holds.
	Done(n *Network) bool
}

// ParseModel parses a model spec of the form "name" or "name:p1,p2,...".
// Accepted forms (missing parameters take the given defaults):
//
//	unit-disk
//	sinr[:alpha[,beta[,n0[,power]]]]   defaults 1, 0.5, 0.1, 1
//	fading[:p[,seed]]                  defaults 0.25, 0
//	multi[:m]                          default 4 (1 ≤ m ≤ 64)
//	jam[:k[,policy]]                   defaults 1, degree (or frontier)
//
// The empty spec selects unit-disk.
func ParseModel(spec string) (Model, error) {
	name, rest, hasArgs := strings.Cut(spec, ":")
	var args []string
	if hasArgs {
		args = strings.Split(rest, ",")
	}
	argf := func(i int, def float64) (float64, error) {
		if i >= len(args) || strings.TrimSpace(args[i]) == "" {
			return def, nil
		}
		return strconv.ParseFloat(strings.TrimSpace(args[i]), 64)
	}
	argi := func(i int, def int) (int, error) {
		if i >= len(args) || strings.TrimSpace(args[i]) == "" {
			return def, nil
		}
		return strconv.Atoi(strings.TrimSpace(args[i]))
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "unit-disk", "unitdisk":
		if len(args) > 0 {
			return nil, fmt.Errorf("radio: unit-disk takes no parameters, got %q", spec)
		}
		return UnitDisk{}, nil
	case "sinr":
		m := &SINR{}
		var err error
		if m.Alpha, err = argf(0, 1); err != nil {
			return nil, fmt.Errorf("radio: sinr alpha: %v", err)
		}
		if m.Beta, err = argf(1, 0.5); err != nil {
			return nil, fmt.Errorf("radio: sinr beta: %v", err)
		}
		if m.N0, err = argf(2, 0.1); err != nil {
			return nil, fmt.Errorf("radio: sinr n0: %v", err)
		}
		if m.Power, err = argf(3, 1); err != nil {
			return nil, fmt.Errorf("radio: sinr power: %v", err)
		}
		if len(args) > 4 {
			return nil, fmt.Errorf("radio: sinr takes at most 4 parameters, got %q", spec)
		}
		if m.Alpha < 0 || m.Beta <= 0 || m.N0 < 0 || m.Power <= 0 {
			return nil, fmt.Errorf("radio: sinr needs alpha ≥ 0, beta > 0, n0 ≥ 0, power > 0, got %s", m.Name())
		}
		return m, nil
	case "fading":
		m := &Fading{}
		var err error
		if m.P, err = argf(0, 0.25); err != nil {
			return nil, fmt.Errorf("radio: fading p: %v", err)
		}
		if len(args) > 1 {
			s, err := strconv.ParseUint(strings.TrimSpace(args[1]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("radio: fading seed: %v", err)
			}
			m.Seed = s
		}
		if len(args) > 2 {
			return nil, fmt.Errorf("radio: fading takes at most 2 parameters, got %q", spec)
		}
		if m.P < 0 || m.P >= 1 {
			return nil, fmt.Errorf("radio: fading needs 0 ≤ p < 1, got %g", m.P)
		}
		return m, nil
	case "multi", "multi-message":
		m := &MultiMessage{}
		var err error
		if m.M, err = argi(0, 4); err != nil {
			return nil, fmt.Errorf("radio: multi m: %v", err)
		}
		if len(args) > 1 {
			return nil, fmt.Errorf("radio: multi takes at most 1 parameter, got %q", spec)
		}
		if m.M < 1 || m.M > 64 {
			return nil, fmt.Errorf("radio: multi needs 1 ≤ m ≤ 64, got %d", m.M)
		}
		return m, nil
	case "jam":
		m := &Jam{}
		var err error
		if m.Budget, err = argi(0, 1); err != nil {
			return nil, fmt.Errorf("radio: jam budget: %v", err)
		}
		if len(args) > 1 {
			m.Policy = strings.TrimSpace(args[1])
		}
		if len(args) > 2 {
			return nil, fmt.Errorf("radio: jam takes at most 2 parameters, got %q", spec)
		}
		if m.Budget < 0 {
			return nil, fmt.Errorf("radio: jam needs budget ≥ 0, got %d", m.Budget)
		}
		switch m.Policy {
		case "":
			m.Policy = JamByDegree
		case JamByDegree, JamByFrontier:
		default:
			return nil, fmt.Errorf("radio: jam policy must be %q or %q, got %q", JamByDegree, JamByFrontier, m.Policy)
		}
		return m, nil
	}
	return nil, fmt.Errorf("radio: unknown model %q (want unit-disk, sinr, fading, multi, jam)", spec)
}

func fmtParam(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// UnitDisk is the paper's collision rule as a Model: a silent vertex
// receives iff exactly one neighbor transmits. It delegates to the engine's
// Step, so its results are bit-identical to the pre-model engine (and to
// StepScalar, the shared oracle) on every input. Completion is every vertex
// informed.
type UnitDisk struct{}

// Name implements Model.
func (UnitDisk) Name() string { return "unit-disk" }

// Fork implements Model; UnitDisk is stateless.
func (UnitDisk) Fork(uint64) Model { return UnitDisk{} }

// Init implements Model.
func (UnitDisk) Init(*Network) {}

// Step implements Model by delegating to the engine's adaptive
// scalar/word-parallel step.
func (UnitDisk) Step(n *Network, transmit []bool) int { return n.Step(transmit) }

// Done implements Model.
func (UnitDisk) Done(n *Network) bool { return n.InformedCount == n.G.N() }

// SINR is a physical-interference receive rule with distance-free
// degree-weighted power: a transmitter v radiates Power spread over its
// neighborhood, contributing signal
//
//	s(v) = Power / (1+deg(v))^Alpha
//
// to each neighbor. A silent vertex w with at least one transmitting
// neighbor receives iff the strongest single signal beats noise plus the
// interference of all the others:
//
//	max_v s(v)  ≥  Beta · (N0 + Σ_v s(v) − max_v s(v))
//
// A silent vertex that hears transmitters but fails the threshold counts
// one collision (it is drowned, indistinguishable from silence). The rule
// is fully deterministic: signals are summed in ascending vertex order, so
// the float result is a pure function of the graph and the transmit set.
// With N0 = 0 and Beta = 1 this is the capture model; the defaults
// (Alpha=1, Beta=0.5, N0=0.1) make low-degree neighborhoods tolerate a
// second simultaneous transmitter that the unit-disk rule would turn into
// a collision. Completion is every vertex informed.
type SINR struct {
	Alpha float64 // degree-spreading exponent (path-loss analogue)
	Beta  float64 // SINR acceptance threshold
	N0    float64 // ambient noise floor
	Power float64 // per-transmitter radiated power

	sum, best []float64 // per-round scratch, lazily sized to the network
}

// Name implements Model.
func (m *SINR) Name() string {
	return fmt.Sprintf("sinr(alpha=%s,beta=%s,n0=%s,power=%s)",
		fmtParam(m.Alpha), fmtParam(m.Beta), fmtParam(m.N0), fmtParam(m.Power))
}

// Fork implements Model: the copy shares parameters but not scratch.
func (m *SINR) Fork(uint64) Model {
	return &SINR{Alpha: m.Alpha, Beta: m.Beta, N0: m.N0, Power: m.Power}
}

// Init implements Model.
func (m *SINR) Init(n *Network) {
	m.sum = make([]float64, n.G.N())
	m.best = make([]float64, n.G.N())
}

// Step implements Model with the scalar accumulation described on the type.
func (m *SINR) Step(n *Network, transmit []bool) int {
	for i := range m.sum {
		m.sum[i], m.best[i] = 0, 0
	}
	for v := 0; v < n.G.N(); v++ {
		if !transmit[v] || !n.Informed[v] {
			continue
		}
		n.Transmissions++
		s := m.Power / math.Pow(1+float64(n.G.Degree(v)), m.Alpha)
		for _, w := range n.G.Neighbors(v) {
			m.sum[w] += s
			if s > m.best[w] {
				m.best[w] = s
			}
		}
	}
	n.Round++
	newly := 0
	for v := 0; v < n.G.N(); v++ {
		if (transmit[v] && n.Informed[v]) || m.best[v] == 0 {
			continue // transmitting, or no signal at all
		}
		if m.best[v] >= m.Beta*(m.N0+m.sum[v]-m.best[v]) {
			if n.inform(v) {
				newly++
			}
		} else {
			n.Collisions++
		}
	}
	return newly
}

// Done implements Model.
func (m *SINR) Done(n *Network) bool { return n.InformedCount == n.G.N() }

// fadingStream labels the fading model's RNG streams; mixed with the model
// seed and the fork salt so fading draws never collide with protocol
// streams.
var fadingStream = rng.Salt("radio/fading")

// Fading is the unit-disk rule over an erasure channel: each arc from a
// transmitter to a neighbor is independently erased with probability P, and
// the exactly-one-delivery rule applies to the arcs that survive. Erasure
// draws come from a fresh per-round stream seeded by (Seed ⊕ fork salt ⊕
// stream label) + round, consumed in ascending sender order and adjacency
// order — one draw per arc of every active sender, regardless of receiver
// state — so an execution is a pure function of its inputs and Monte-Carlo
// results are bit-identical at any worker count. Note an erasure can help:
// losing one of two colliding arcs turns a collision into a delivery.
// Completion is every vertex informed.
type Fading struct {
	P    float64 // per-arc erasure probability, 0 ≤ p < 1
	Seed uint64  // model-level seed, mixed with the per-execution fork salt

	salt uint64
	hits []int32
}

// Name implements Model. The fork salt is execution identity, not a
// parameter, so it does not appear.
func (m *Fading) Name() string {
	if m.Seed != 0 {
		return fmt.Sprintf("fading(p=%s,seed=%d)", fmtParam(m.P), m.Seed)
	}
	return fmt.Sprintf("fading(p=%s)", fmtParam(m.P))
}

// Fork implements Model, binding the execution's salt.
func (m *Fading) Fork(salt uint64) Model {
	return &Fading{P: m.P, Seed: m.Seed, salt: salt}
}

// Init implements Model.
func (m *Fading) Init(n *Network) { m.hits = make([]int32, n.G.N()) }

// Step implements Model.
func (m *Fading) Step(n *Network, transmit []bool) int {
	// A fresh generator per round: draws depend only on (seed, salt,
	// round), never on how many draws earlier rounds consumed.
	r := rng.New((m.Seed ^ m.salt ^ fadingStream) + uint64(n.Round+1)*0x9E3779B97F4A7C15)
	for i := range m.hits {
		m.hits[i] = 0
	}
	for v := 0; v < n.G.N(); v++ {
		if !transmit[v] || !n.Informed[v] {
			continue
		}
		n.Transmissions++
		for _, w := range n.G.Neighbors(v) {
			if !r.Bernoulli(m.P) {
				m.hits[w]++
			}
		}
	}
	n.Round++
	newly := 0
	for v := 0; v < n.G.N(); v++ {
		switch {
		case transmit[v] && n.Informed[v]:
		case m.hits[v] == 1:
			if n.inform(v) {
				newly++
			}
		case m.hits[v] >= 2:
			n.Collisions++
		}
	}
	return newly
}

// Done implements Model.
func (m *Fading) Done(n *Network) bool { return n.InformedCount == n.G.N() }

// MultiMessage runs M concurrent broadcasts under unit-disk arbitration:
// message j originates at vertex (source + j·⌈n/M⌉) mod n (origins may
// coincide on tiny graphs), a transmitter sends its entire current message
// set, and a silent vertex with exactly one transmitting neighbor receives
// that neighbor's whole set. Informed means "holds at least one message"
// (so protocols and traces keep their usual meaning); completion requires
// every vertex to hold all M messages. Fully deterministic. Note the
// initial informed count is the number of distinct origins, not 1.
type MultiMessage struct {
	M int // number of messages, 1 ≤ M ≤ 64

	have []uint64 // per-vertex message bitmask
	hits []int32
	from []int32 // sole transmitting neighbor when hits==1
}

// Name implements Model.
func (m *MultiMessage) Name() string { return fmt.Sprintf("multi(m=%d)", m.M) }

// Fork implements Model.
func (m *MultiMessage) Fork(uint64) Model { return &MultiMessage{M: m.M} }

// full is the all-messages mask.
func (m *MultiMessage) full() uint64 {
	if m.M >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(m.M) - 1
}

// Init implements Model: place the M origins and mark them informed at
// round 0.
func (m *MultiMessage) Init(n *Network) {
	nv := n.G.N()
	m.have = make([]uint64, nv)
	m.hits = make([]int32, nv)
	m.from = make([]int32, nv)
	stride := (nv + m.M - 1) / m.M
	if stride < 1 {
		stride = 1
	}
	for j := 0; j < m.M; j++ {
		o := (n.source + j*stride) % nv
		m.have[o] |= uint64(1) << uint(j)
		n.inform(o)
	}
}

// Holds reports whether vertex v currently holds message j. It is a
// testing/analysis hook; protocols must not use it.
func (m *MultiMessage) Holds(v, j int) bool { return m.have[v]&(uint64(1)<<uint(j)) != 0 }

// Step implements Model. In-place commit is safe: new message bits only
// flow out of transmitters, and transmitters (not silent) never receive,
// so no mask read during the commit phase was written this round.
func (m *MultiMessage) Step(n *Network, transmit []bool) int {
	for i := range m.hits {
		m.hits[i] = 0
	}
	for v := 0; v < n.G.N(); v++ {
		if !transmit[v] || !n.Informed[v] {
			continue
		}
		n.Transmissions++
		for _, w := range n.G.Neighbors(v) {
			m.hits[w]++
			m.from[w] = int32(v)
		}
	}
	n.Round++
	newly := 0
	for v := 0; v < n.G.N(); v++ {
		switch {
		case transmit[v] && n.Informed[v]:
		case m.hits[v] == 1:
			m.have[v] |= m.have[m.from[v]]
			if n.inform(v) {
				newly++
			}
		case m.hits[v] >= 2:
			n.Collisions++
		}
	}
	return newly
}

// Done implements Model: every vertex holds every message.
func (m *MultiMessage) Done(n *Network) bool {
	full := m.full()
	for _, h := range m.have {
		if h != full {
			return false
		}
	}
	return true
}

// Jam policies: which candidate receivers the adversary values most.
const (
	// JamByDegree silences the highest-degree candidates (hubs first).
	JamByDegree = "degree"
	// JamByFrontier silences the candidates with the most uninformed
	// neighbors (future spreaders first).
	JamByFrontier = "frontier"
)

// Jam is the unit-disk rule under a round-budgeted adversary: after the
// exactly-one-transmitter candidates of a round are determined, the jammer
// silences the Budget most valuable uninformed candidates (by Policy, ties
// broken toward the lower vertex id) and each silenced reception counts as
// a collision — jamming is indistinguishable from interference. All other
// candidates receive as usual.
//
// With Budget ≥ 1 a broadcast can never complete: the last uninformed
// vertex is always within the jammer's budget, so experiments should read
// the informed plateau rather than completion. Fully deterministic; like
// UnitDisk it has both a scalar and a word-parallel path (reusing the
// engine's AccumulateCover machinery), chosen per graph and bit-identical
// to each other.
type Jam struct {
	Budget int    // receptions silenced per round
	Policy string // JamByDegree (default) or JamByFrontier

	cands []int32
	sc    *stepScratch
	hits  []int32
}

// Name implements Model.
func (m *Jam) Name() string {
	policy := m.Policy
	if policy == "" {
		policy = JamByDegree
	}
	return fmt.Sprintf("jam(k=%d,policy=%s)", m.Budget, policy)
}

// Fork implements Model.
func (m *Jam) Fork(uint64) Model { return &Jam{Budget: m.Budget, Policy: m.Policy} }

// Init implements Model.
func (m *Jam) Init(*Network) {}

// Step implements Model, delegating to the sparse, word-parallel, or
// scalar path by the graph's AdjRows decision (same rule the engine's Step
// uses).
func (m *Jam) Step(n *Network, transmit []bool) int {
	switch {
	case n.rows.kind == rowsSparse:
		return m.stepSparse(n, transmit)
	case n.rows.vector:
		return m.stepVector(n, transmit)
	default:
		return m.stepScalar(n, transmit)
	}
}

// stepSparse is the CSR-backed path: the shared sparse accumulator pass
// computes newly = hit \ multi \ active, and the jammer's commit rule
// silences the top-Budget candidates exactly as on the other paths.
func (m *Jam) stepSparse(n *Network, transmit []bool) int {
	sc := n.sparseAccumulate(transmit)
	m.cands = m.cands[:0]
	for v := range sc.newly.All() {
		if !n.Informed[v] {
			m.cands = append(m.cands, int32(v))
		}
	}
	return m.commit(n, m.cands)
}

// value is the jammer's preference for candidate v under the policy.
func (m *Jam) value(n *Network, v int32) int {
	if m.Policy == JamByFrontier {
		c := 0
		for _, w := range n.G.Neighbors(int(v)) {
			if !n.Informed[w] {
				c++
			}
		}
		return c
	}
	return n.G.Degree(int(v))
}

// commit silences the top-Budget candidates and informs the rest,
// returning the newly informed count. cands is ascending by vertex id, so
// the stable sort's tie-break is the lower id.
func (m *Jam) commit(n *Network, cands []int32) int {
	if m.Budget > 0 && len(cands) > 0 {
		jam := min(m.Budget, len(cands))
		sort.SliceStable(cands, func(i, j int) bool {
			return m.value(n, cands[i]) > m.value(n, cands[j])
		})
		n.Collisions += jam
		cands = cands[jam:]
	}
	newly := 0
	for _, v := range cands {
		if n.inform(int(v)) {
			newly++
		}
	}
	return newly
}

func (m *Jam) stepScalar(n *Network, transmit []bool) int {
	if m.hits == nil {
		m.hits = make([]int32, n.G.N())
	}
	for i := range m.hits {
		m.hits[i] = 0
	}
	for v := 0; v < n.G.N(); v++ {
		if !transmit[v] || !n.Informed[v] {
			continue
		}
		n.Transmissions++
		for _, w := range n.G.Neighbors(v) {
			m.hits[w]++
		}
	}
	n.Round++
	m.cands = m.cands[:0]
	for v := 0; v < n.G.N(); v++ {
		switch {
		case transmit[v] && n.Informed[v]:
		case m.hits[v] == 1:
			if !n.Informed[v] {
				m.cands = append(m.cands, int32(v))
			}
		case m.hits[v] >= 2:
			n.Collisions++
		}
	}
	return m.commit(n, m.cands)
}

func (m *Jam) stepVector(n *Network, transmit []bool) int {
	if m.sc == nil {
		m.sc = newStepScratch(n.G.N())
	}
	sc := m.sc
	sc.active.Clear()
	sc.hit.Clear()
	sc.multi.Clear()
	dense := n.rows.words
	for v, inf := range n.Informed {
		if !inf || !transmit[v] {
			continue
		}
		sc.active.Add(v)
		if n.G.Degree(v) < dense {
			sc.hit.ScatterCover(sc.multi, n.G.Neighbors(v))
		} else {
			sc.hit.AccumulateCover(sc.multi, n.rows.rows[v])
		}
	}
	n.Round++
	n.Transmissions += sc.active.Count()
	n.Collisions += sc.multi.SubtractCount(sc.active)
	sc.newly.Copy(sc.hit)
	sc.newly.Subtract(sc.multi)
	sc.newly.Subtract(sc.active)
	m.cands = m.cands[:0]
	for v := range sc.newly.All() {
		if !n.Informed[v] {
			m.cands = append(m.cands, int32(v))
		}
	}
	return m.commit(n, m.cands)
}

// Done implements Model.
func (m *Jam) Done(n *Network) bool { return n.InformedCount == n.G.N() }
