package radio

import (
	"wexp/internal/graph"
	"wexp/internal/rng"
)

// Trace records the per-round progress of a broadcast execution, enabling
// the E9-style analyses: informed counts over time and the round at which
// given vertex groups were reached.
type Trace struct {
	Informed      []int // Informed[t] = informed count after round t (index 0 = initial)
	Newly         []int // Newly[t] = newly informed in round t (index 0 unused)
	Collisions    []int // per-round collision counts
	Transmissions []int // per-round transmission counts
}

// RunTraced executes the protocol like Run, additionally recording a Trace.
func RunTraced(g *graph.Graph, source int, p Protocol, maxRounds int) (RunResult, *Trace, error) {
	n, err := NewNetwork(g, source)
	if err != nil {
		return RunResult{}, nil, err
	}
	tr := &Trace{
		Informed:      []int{n.InformedCount},
		Newly:         []int{0},
		Collisions:    []int{0},
		Transmissions: []int{0},
	}
	transmit := make([]bool, g.N())
	for n.Round < maxRounds && !n.Done() {
		for i := range transmit {
			transmit[i] = false
		}
		prevColl, prevTx := n.Collisions, n.Transmissions
		p.Transmitters(n, transmit)
		newly := n.Step(transmit)
		tr.Informed = append(tr.Informed, n.InformedCount)
		tr.Newly = append(tr.Newly, newly)
		tr.Collisions = append(tr.Collisions, n.Collisions-prevColl)
		tr.Transmissions = append(tr.Transmissions, n.Transmissions-prevTx)
	}
	return RunResult{
		Protocol:      p.Name(),
		Rounds:        n.Round,
		Completed:     n.Done(),
		InformedCount: n.InformedCount,
		Collisions:    n.Collisions,
		Transmissions: n.Transmissions,
	}, tr, nil
}

// RoundsToReach returns the first round index at which the informed count
// reached the target, or -1 if it never did.
func (t *Trace) RoundsToReach(target int) int {
	for round, c := range t.Informed {
		if c >= target {
			return round
		}
	}
	return -1
}

// ProbFlood is the probabilistic flooding protocol: every informed vertex
// transmits independently with a fixed probability p each round. It
// interpolates between flooding (p = 1, deadlocks on C⁺) and heavy backoff
// (small p, slow); unlike Decay it does not adapt to unknown degrees, so on
// graphs with mixed neighborhood sizes some vertices starve — a useful
// baseline against which Decay's log-sweep shows its value.
type ProbFlood struct {
	P float64
	R *rng.RNG
}

// Name implements Protocol.
func (*ProbFlood) Name() string { return "prob-flood" }

// Transmitters implements Protocol.
func (pf *ProbFlood) Transmitters(n *Network, transmit []bool) {
	for v, inf := range n.Informed {
		if inf {
			transmit[v] = pf.R.Bernoulli(pf.P)
		}
	}
}
