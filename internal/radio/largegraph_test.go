package radio

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"

	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// TestLargeGraphStreamingAcceptance is the end-to-end acceptance check for
// the million-vertex path: a synthetic SNAP-scale edge list is streamed
// into CSR, the sparse engine runs a Decay Monte-Carlo trial set, and both
// phases are held to the O(n + m)-words memory contract via
// runtime.ReadMemStats. Results must be bit-identical at workers 1, 2, 8.
//
// The default configuration (n = 10⁵, m ≈ 10⁶) runs in every tier-1 pass,
// including under -race. Setting WEXP_LARGE=1 scales to the full
// acceptance size n = 10⁶, m ≈ 10⁷ — CI runs that in the dedicated
// large-graph-smoke job under GOMEMLIMIT.
func TestLargeGraphStreamingAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph acceptance skipped in -short mode")
	}
	n, extra, trials, maxRounds := 100_000, 900_000, 4, 24
	if os.Getenv("WEXP_LARGE") == "1" {
		n, extra, trials, maxRounds = 1_000_000, 9_000_000, 6, 40
	}

	var before, afterIngest runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	g, st, err := graph.StreamEdgeListStats(graph.SynthEdgeList(n, extra, 7), graph.EdgeListOptions{})
	if err != nil {
		t.Fatalf("streaming ingest: %v", err)
	}
	if g.N() != n {
		t.Fatalf("ingested n=%d, want %d", g.N(), n)
	}
	if g.M() < (n-1+extra)*9/10 {
		t.Fatalf("ingested m=%d, want ≈%d (duplicate collapse should be light)", g.M(), n-1+extra)
	}
	if st.Edges != int64(n-1+extra) {
		t.Fatalf("ingest stats saw %d edge records, want %d", st.Edges, n-1+extra)
	}

	// Memory contract, ingestion: after the arc blocks are released, the
	// live heap added by ingestion is the CSR itself plus bounded slack —
	// well under 8 words per (n + m).
	words := uint64(g.N() + g.M())
	runtime.GC()
	runtime.ReadMemStats(&afterIngest)
	liveIngest := heapDelta(before, afterIngest)
	if budget := 8*8*words + (16 << 20); liveIngest > budget {
		t.Fatalf("ingestion leaves %d bytes live, budget %d (8 words × (n+m) + slack)", liveIngest, budget)
	}

	// Strategy: a graph this size must select the sparse engine under the
	// default memory model.
	if s := BuildAdjRows(g).Strategy(); s != "sparse" {
		t.Fatalf("n=%d selected strategy %q, want sparse", n, s)
	}

	factory := func(r *rng.RNG) Protocol { return &Decay{R: r} }
	opts := Options{
		RunOpts:     runopts.RunOpts{Seed: 42, Workers: 1},
		MaxRounds:   maxRounds,
		TraceRounds: -1,
	}
	var results []*Result
	for _, workers := range []int{1, 2, 8} {
		o := opts
		o.Workers = workers
		res, err := MonteCarlo(g, 0, factory, trials, o)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("Monte-Carlo results diverge between worker counts (index %d)", i)
		}
	}
	if got := results[0].Rounds.N; got != trials {
		t.Fatalf("aggregated %d trials, want %d", got, trials)
	}
	// The trial set must make real progress: Decay on a connected synthetic
	// graph informs a large set within the round budget.
	if inf := results[0].PerTrial[0].InformedCount; inf < n/10 {
		t.Fatalf("after %d rounds only %d/%d informed — engine is not propagating", maxRounds, inf, n)
	}

	// Memory contract, simulation: live heap after the runs — graph
	// included — stays O(n + m) words. Dense rows at this n would need
	// n²/8 bytes (≫ this budget by orders of magnitude).
	var afterMC runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&afterMC)
	liveMC := heapDelta(before, afterMC)
	if budget := 16*8*words + (32 << 20); liveMC > budget {
		t.Fatalf("Monte-Carlo leaves %d bytes live, budget %d (16 words × (n+m) + slack)", liveMC, budget)
	}
	t.Logf("n=%d m=%d ingest-live=%s mc-live=%s trials=%d informed[0]=%d",
		g.N(), g.M(), fmtBytes(liveIngest), fmtBytes(liveMC), trials, results[0].PerTrial[0].InformedCount)
}

func heapDelta(before, after runtime.MemStats) uint64 {
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
