package radio

import (
	"testing"

	"wexp/internal/gen"
	"wexp/internal/rng"
)

func TestRunTracedMatchesRun(t *testing.T) {
	g := gen.Path(12)
	res, tr, err := RunTraced(g, 0, Flood{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 11 {
		t.Fatalf("traced flood on path: %+v", res)
	}
	if len(tr.Informed) != res.Rounds+1 {
		t.Fatalf("trace length %d, want %d", len(tr.Informed), res.Rounds+1)
	}
	if tr.Informed[0] != 1 {
		t.Fatal("initial informed count should be 1")
	}
	if tr.Informed[res.Rounds] != g.N() {
		t.Fatal("final informed count wrong")
	}
	// Monotone non-decreasing; Newly consistent with differences.
	for i := 1; i < len(tr.Informed); i++ {
		if tr.Informed[i] < tr.Informed[i-1] {
			t.Fatal("informed count decreased")
		}
		if tr.Informed[i]-tr.Informed[i-1] != tr.Newly[i] {
			t.Fatalf("round %d: newly %d != diff %d", i, tr.Newly[i], tr.Informed[i]-tr.Informed[i-1])
		}
	}
}

func TestRoundsToReach(t *testing.T) {
	g := gen.Path(6)
	_, tr, err := RunTraced(g, 0, Flood{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.RoundsToReach(1); got != 0 {
		t.Fatalf("reach 1 at %d, want 0", got)
	}
	if got := tr.RoundsToReach(3); got != 2 {
		t.Fatalf("reach 3 at %d, want 2", got)
	}
	if got := tr.RoundsToReach(100); got != -1 {
		t.Fatalf("unreachable target returned %d", got)
	}
}

func TestTraceCollisionAccounting(t *testing.T) {
	g := gen.CPlus(8)
	res, tr, err := RunTraced(g, 0, Flood{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range tr.Collisions {
		sum += c
	}
	if sum != res.Collisions {
		t.Fatalf("per-round collisions sum %d != total %d", sum, res.Collisions)
	}
	sumTx := 0
	for _, c := range tr.Transmissions {
		sumTx += c
	}
	if sumTx != res.Transmissions {
		t.Fatalf("per-round transmissions sum %d != total %d", sumTx, res.Transmissions)
	}
}

func TestProbFloodOnPath(t *testing.T) {
	g := gen.Path(10)
	r := rng.New(1)
	res, err := Run(g, 0, &ProbFlood{P: 0.7, R: r}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("prob-flood incomplete on path")
	}
}

func TestProbFloodP1DeadlocksOnCPlus(t *testing.T) {
	g := gen.CPlus(8)
	r := rng.New(2)
	res, err := Run(g, 0, &ProbFlood{P: 1, R: r}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("p=1 prob-flood should behave like flooding on C⁺")
	}
}

func TestProbFloodHalfCompletesOnCPlus(t *testing.T) {
	g := gen.CPlus(8)
	r := rng.New(3)
	res, err := Run(g, 0, &ProbFlood{P: 0.5, R: r}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("p=0.5 prob-flood should eventually break the symmetry")
	}
}
