// Package radio simulates multihop radio networks under the model of
// Chlamtac–Kutten [8] used throughout the paper: processors communicate in
// synchronous rounds; in each round a processor either transmits or stays
// silent; a silent processor receives a message if and only if exactly one
// of its neighbors transmits; a collision (two or more transmitting
// neighbors) is indistinguishable from silence.
//
// The package provides the primitive round engine plus the broadcast
// protocols the paper discusses: naive flooding (which deadlocks on C⁺),
// the Decay protocol of Bar-Yehuda–Goldreich–Itai [5], round-robin, and an
// offline spokesman-scheduled protocol that transmits only a chosen subset
// of informed vertices each round — the algorithmic counterpart of wireless
// expansion.
package radio

import (
	"fmt"

	"wexp/internal/graph"
)

// Network is the simulation state for one broadcast execution.
type Network struct {
	G        *graph.Graph
	Informed []bool // has the vertex received (or originated) the message
	Round    int    // rounds elapsed

	// Stats
	Collisions    int // vertex-rounds in which ≥2 neighbors transmitted
	Transmissions int // total transmit actions
	InformedCount int
	receivedHits  []int32 // scalar-engine scratch, allocated on first StepScalar
	informedAtRnd []int32 // round at which each vertex became informed (-1 if never)

	rows    *AdjRows       // shared adjacency strategy (bit rows or CSR-only)
	scratch *stepScratch   // dense-engine scratch, allocated on first vectorized Step
	sparse  *sparseScratch // sparse-engine scratch, allocated on first sparse Step

	source int   // broadcast origin, recorded for models that seed extra state
	model  Model // receive-rule override; nil = the legacy unit-disk fast path
}

// NewNetwork creates a network with the single source informed at round 0.
func NewNetwork(g *graph.Graph, source int) (*Network, error) {
	return NewNetworkRows(g, source, nil)
}

// NewNetworkRows is NewNetwork with a pre-built adjacency row cache, so
// harnesses running many trials on one graph (MonteCarlo) pay the row
// construction once. rows == nil builds a private cache; a non-nil rows
// must have been built from g.
func NewNetworkRows(g *graph.Graph, source int, rows *AdjRows) (*Network, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("radio: source %d out of range [0,%d)", source, g.N())
	}
	if rows == nil {
		rows = BuildAdjRows(g)
	} else if rows.n != g.N() {
		return nil, fmt.Errorf("radio: adjacency rows built for n=%d, graph has n=%d", rows.n, g.N())
	}
	// Engine scratch (receivedHits for the scalar path, scratch bitsets
	// for the vectorized one) is allocated lazily by the step that needs
	// it: MonteCarlo creates one Network per trial and only ever runs one
	// of the two engines.
	n := &Network{
		G:        g,
		Informed: make([]bool, g.N()),
		rows:     rows,
		source:   source,
	}
	n.informedAtRnd = make([]int32, g.N())
	n.resetFor(source)
	return n, nil
}

// resetFor rewinds the network to a fresh round-0 state with the given
// source informed, keeping every allocation (Informed, informed-at rounds,
// engine scratch) for reuse. MonteCarlo's trial arenas recycle networks
// through it so steady-state memory stays O(workers × per-trial scratch)
// regardless of the trial count. The caller must re-install any Model.
func (n *Network) resetFor(source int) {
	clear(n.Informed)
	for i := range n.informedAtRnd {
		n.informedAtRnd[i] = -1
	}
	n.Round, n.Collisions, n.Transmissions = 0, 0, 0
	n.model = nil
	n.source = source
	n.Informed[source] = true
	n.informedAtRnd[source] = 0
	n.InformedCount = 1
}

// StepScalar executes one synchronous round with the original per-vertex
// counting loop. It is the correctness oracle for the word-parallel Step:
// both compute identical Informed, Collisions, Transmissions, and
// informed-at rounds on every input (enforced by the differential corpus
// and FuzzRadioStep). Vertices that are not informed cannot transmit
// (their flag is ignored): a processor cannot send a message it does not
// hold. Returns the number of newly informed vertices.
func (n *Network) StepScalar(transmit []bool) int {
	if n.receivedHits == nil {
		n.receivedHits = make([]int32, n.G.N())
	}
	hits := n.receivedHits
	for i := range hits {
		hits[i] = 0
	}
	for v := 0; v < n.G.N(); v++ {
		if !transmit[v] || !n.Informed[v] {
			continue
		}
		n.Transmissions++
		for _, w := range n.G.Neighbors(v) {
			hits[w]++
		}
	}
	n.Round++
	newly := 0
	for v := 0; v < n.G.N(); v++ {
		switch {
		case transmit[v] && n.Informed[v]:
			// A transmitting processor receives nothing this round (it is
			// not silent), but it is already informed so nothing changes.
		case hits[v] == 1:
			if !n.Informed[v] {
				n.Informed[v] = true
				n.informedAtRnd[v] = int32(n.Round)
				newly++
				n.InformedCount++
			}
		case hits[v] >= 2:
			n.Collisions++
		}
	}
	return newly
}

// Done reports whether the execution's completion condition holds: every
// vertex informed under the default rule, or the installed Model's
// condition (e.g. MultiMessage requires every vertex to hold all M
// messages).
func (n *Network) Done() bool {
	if n.model != nil {
		return n.model.Done(n)
	}
	return n.InformedCount == n.G.N()
}

// Source returns the broadcast origin the network was built with.
func (n *Network) Source() int { return n.source }

// UseModel installs the receive-rule model for this execution: the model
// is forked with salt (giving it private state and its random identity)
// and initialized against the network. A nil model restores the default
// unit-disk rule.
func (n *Network) UseModel(m Model, salt uint64) {
	if m == nil {
		n.model = nil
		return
	}
	n.model = m.Fork(salt)
	n.model.Init(n)
}

// StepRound executes one synchronous round under the installed model
// (unit-disk when none is installed) and returns the number of newly
// informed vertices.
func (n *Network) StepRound(transmit []bool) int {
	if n.model == nil {
		return n.Step(transmit)
	}
	return n.model.Step(n, transmit)
}

// inform marks v informed at the current round if it is not already,
// reporting whether it was newly informed. Models use it so informed-at
// rounds and the informed count stay consistent with the engine's own
// bookkeeping.
func (n *Network) inform(v int) bool {
	if n.Informed[v] {
		return false
	}
	n.Informed[v] = true
	n.informedAtRnd[v] = int32(n.Round)
	n.InformedCount++
	return true
}

// InformedAt returns the round at which v became informed, or -1. Rounds
// are stored as int32 (4 bytes per vertex matters at n = 10⁶; round counts
// are bounded by MaxRounds, far under 2³¹).
func (n *Network) InformedAt(v int) int { return int(n.informedAtRnd[v]) }

// CountInformedIn returns how many of the given vertices are informed.
func (n *Network) CountInformedIn(verts []int) int {
	c := 0
	for _, v := range verts {
		if n.Informed[v] {
			c++
		}
	}
	return c
}

// Protocol decides, each round, which vertices transmit. Implementations
// may only use information a distributed protocol could know (informed
// status, round number, per-vertex randomness) unless explicitly documented
// as an offline/centralized schedule.
type Protocol interface {
	// Name identifies the protocol in experiment tables.
	Name() string
	// Transmitters fills transmit[v] = true for each vertex that transmits
	// this round. The engine ignores transmit flags on uninformed vertices.
	Transmitters(n *Network, transmit []bool)
}

// RunResult summarizes one broadcast execution.
type RunResult struct {
	Protocol      string
	Rounds        int
	Completed     bool
	InformedCount int
	Collisions    int
	Transmissions int
}

// Run executes the protocol until broadcast completes or maxRounds elapse.
func Run(g *graph.Graph, source int, p Protocol, maxRounds int) (RunResult, error) {
	n, err := NewNetwork(g, source)
	if err != nil {
		return RunResult{}, err
	}
	transmit := make([]bool, g.N())
	for n.Round < maxRounds && !n.Done() {
		for i := range transmit {
			transmit[i] = false
		}
		p.Transmitters(n, transmit)
		n.Step(transmit)
	}
	return RunResult{
		Protocol:      p.Name(),
		Rounds:        n.Round,
		Completed:     n.Done(),
		InformedCount: n.InformedCount,
		Collisions:    n.Collisions,
		Transmissions: n.Transmissions,
	}, nil
}

// RunNetwork executes the protocol like Run but returns the final Network,
// exposing per-vertex informed-at rounds for post-hoc analyses (e.g. the
// Section 5 per-hop decomposition R = R₁ + ... + R_{D/2}).
func RunNetwork(g *graph.Graph, source int, p Protocol, maxRounds int) (*Network, error) {
	n, err := NewNetwork(g, source)
	if err != nil {
		return nil, err
	}
	transmit := make([]bool, g.N())
	for n.Round < maxRounds && !n.Done() {
		for i := range transmit {
			transmit[i] = false
		}
		p.Transmitters(n, transmit)
		n.Step(transmit)
	}
	return n, nil
}
