package radio

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// countdownCtx flips Err() to Canceled after a fixed number of
// observations, making mid-run cancellation deterministic in tests.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func decayFactory(r *rng.RNG) Protocol { return &Decay{R: r} }

func TestMonteCarloCancelledBeforeStart(t *testing.T) {
	g := gen.CPlus(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := MonteCarlo(g, 0, decayFactory, 32, Options{RunOpts: runopts.RunOpts{Workers: workers, Seed: 1}, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got err %v, want context.Canceled", workers, err)
		}
	}
}

func TestMonteCarloCancelledMidRun(t *testing.T) {
	g := gen.CPlus(16)
	for _, workers := range []int{1, 4} {
		ctx := newCountdownCtx(3)
		_, err := MonteCarlo(g, 0, decayFactory, 64, Options{RunOpts: runopts.RunOpts{Workers: workers, Seed: 1}, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got err %v, want context.Canceled", workers, err)
		}
	}
}

func TestMonteCarloRerunAfterCancelIsIdentical(t *testing.T) {
	// A cancelled run must leave no trace: a fresh run with the same seed
	// produces the same bytes as one that was never preceded by a
	// cancellation (trial RNG streams are pre-split per run).
	g := gen.CPlus(16)
	opt := Options{RunOpts: runopts.RunOpts{Workers: 2, Seed: 9}, TraceRounds: -1}
	want, err := MonteCarlo(g, 0, decayFactory, 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	cancelledOpt := opt
	cancelledOpt.Ctx = newCountdownCtx(2)
	if _, err := MonteCarlo(g, 0, decayFactory, 16, cancelledOpt); !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	got, err := MonteCarlo(g, 0, decayFactory, 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatal("result after a cancelled run differs from a fresh run")
	}
}
