package radio

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

func TestParseModel(t *testing.T) {
	valid := []struct {
		spec, name string
	}{
		{"", "unit-disk"},
		{"unit-disk", "unit-disk"},
		{"unitdisk", "unit-disk"},
		{"sinr", "sinr(alpha=1,beta=0.5,n0=0.1,power=1)"},
		{"sinr:2,1,0,4", "sinr(alpha=2,beta=1,n0=0,power=4)"},
		{"sinr:2", "sinr(alpha=2,beta=0.5,n0=0.1,power=1)"},
		{"fading", "fading(p=0.25)"},
		{"fading:0.5", "fading(p=0.5)"},
		{"fading:0.5,9", "fading(p=0.5,seed=9)"},
		{"multi", "multi(m=4)"},
		{"multi:7", "multi(m=7)"},
		{"multi-message:64", "multi(m=64)"},
		{"jam", "jam(k=1,policy=degree)"},
		{"jam:3", "jam(k=3,policy=degree)"},
		{"jam:2,frontier", "jam(k=2,policy=frontier)"},
	}
	for _, c := range valid {
		m, err := ParseModel(c.spec)
		if err != nil {
			t.Errorf("ParseModel(%q): %v", c.spec, err)
			continue
		}
		if m.Name() != c.name {
			t.Errorf("ParseModel(%q).Name() = %q, want %q", c.spec, m.Name(), c.name)
		}
	}
	invalid := []string{
		"nope", "unit-disk:1", "sinr:x", "sinr:1,2,3,4,5", "sinr:1,-1",
		"fading:1", "fading:-0.1", "fading:0.2,notanumber", "fading:0.2,1,2",
		"multi:0", "multi:65", "multi:1,2", "jam:-1", "jam:2,sideways", "jam:1,degree,x",
	}
	for _, spec := range invalid {
		if m, err := ParseModel(spec); err == nil {
			t.Errorf("ParseModel(%q) accepted as %q, want error", spec, m.Name())
		}
	}
}

// corpusGraphs is a small slice of the differential corpus used by the
// per-model agreement tests below.
func corpusGraphs(r *rng.RNG) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"cplus-12":    gen.CPlus(12),
		"torus-5x5":   gen.Torus(5, 5),
		"hypercube-5": gen.Hypercube(5),
		"star-16":     gen.Star(16),
		"er-70":       gen.ErdosRenyi(70, 0.08, r),
	}
}

// modelLockstep drives proto on a model-routed network and a reference
// network stepped by ref each round, comparing every observable.
func modelLockstep(t *testing.T, g *graph.Graph, m Model, ref func(n *Network, transmit []bool) int, maxRounds int) {
	t.Helper()
	mod, err := NewNetwork(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	mod.UseModel(m, 42)
	oracle, err := NewNetwork(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	proto := &Decay{R: r}
	transmit := make([]bool, g.N())
	for mod.Round < maxRounds && !mod.Done() {
		for i := range transmit {
			transmit[i] = false
		}
		proto.Transmitters(mod, transmit)
		nm := mod.StepRound(transmit)
		nr := ref(oracle, transmit)
		if nm != nr {
			t.Fatalf("round %d: newly informed %d (model) != %d (reference)", mod.Round, nm, nr)
		}
		compareNetworks(t, mod, oracle)
	}
}

// TestFadingZeroPMatchesOracle: with p = 0 no arc is ever erased, so the
// fading model must replay the unit-disk oracle exactly.
func TestFadingZeroPMatchesOracle(t *testing.T) {
	for name, g := range corpusGraphs(rng.New(1)) {
		t.Run(name, func(t *testing.T) {
			modelLockstep(t, g, &Fading{P: 0}, (*Network).StepScalar, 200)
		})
	}
}

// TestMultiMessageSingleMatchesOracle: with m = 1 the only message
// originates at the source, so trajectories match unit-disk exactly.
func TestMultiMessageSingleMatchesOracle(t *testing.T) {
	for name, g := range corpusGraphs(rng.New(2)) {
		t.Run(name, func(t *testing.T) {
			modelLockstep(t, g, &MultiMessage{M: 1}, (*Network).StepScalar, 200)
		})
	}
}

// TestJamZeroBudgetMatchesOracle: a jammer with no budget silences nobody.
func TestJamZeroBudgetMatchesOracle(t *testing.T) {
	for name, g := range corpusGraphs(rng.New(3)) {
		t.Run(name, func(t *testing.T) {
			modelLockstep(t, g, &Jam{Budget: 0}, (*Network).StepScalar, 200)
		})
	}
}

// TestJamScalarVectorAgree is the jam model's own differential test: the
// word-parallel path must match the scalar path on every observable, for
// both policies.
func TestJamScalarVectorAgree(t *testing.T) {
	for _, policy := range []string{JamByDegree, JamByFrontier} {
		r := rng.New(11)
		for name, g := range corpusGraphs(r) {
			t.Run(policy+"/"+name, func(t *testing.T) {
				rows := BuildAdjRows(g)
				rows.vector = true
				vec, err := NewNetworkRows(g, 0, rows)
				if err != nil {
					t.Fatal(err)
				}
				vec.UseModel(&Jam{Budget: 2, Policy: policy}, 0)
				sparse := BuildAdjRows(g)
				sparse.vector = false
				sca, err := NewNetworkRows(g, 0, sparse)
				if err != nil {
					t.Fatal(err)
				}
				sca.UseModel(&Jam{Budget: 2, Policy: policy}, 0)
				pr := rng.New(9)
				proto := &Decay{R: pr}
				transmit := make([]bool, g.N())
				for round := 0; round < 120; round++ {
					for i := range transmit {
						transmit[i] = false
					}
					proto.Transmitters(vec, transmit)
					nv := vec.StepRound(transmit)
					ns := sca.StepRound(transmit)
					if nv != ns {
						t.Fatalf("round %d: newly %d (vector) != %d (scalar)", vec.Round, nv, ns)
					}
					compareNetworks(t, vec, sca)
				}
			})
		}
	}
}

// TestSINRReference checks the sender-centric production loop against an
// independent receiver-centric evaluation of the same threshold rule.
func TestSINRReference(t *testing.T) {
	m := &SINR{Alpha: 1, Beta: 0.5, N0: 0.1, Power: 1}
	sinrRef := func(n *Network, transmit []bool) int {
		g := n.G
		// Count transmissions like the model does.
		for v := 0; v < g.N(); v++ {
			if transmit[v] && n.Informed[v] {
				n.Transmissions++
			}
		}
		n.Round++
		newly := 0
		for w := 0; w < g.N(); w++ {
			if transmit[w] && n.Informed[w] {
				continue
			}
			sum, best := 0.0, 0.0
			for _, v := range g.Neighbors(w) {
				if !transmit[v] || !n.Informed[v] {
					continue
				}
				s := m.Power / math.Pow(1+float64(g.Degree(int(v))), m.Alpha)
				sum += s
				if s > best {
					best = s
				}
			}
			if best == 0 {
				continue
			}
			if best >= m.Beta*(m.N0+sum-best) {
				if n.inform(w) {
					newly++
				}
			} else {
				n.Collisions++
			}
		}
		return newly
	}
	for name, g := range corpusGraphs(rng.New(4)) {
		t.Run(name, func(t *testing.T) {
			modelLockstep(t, g, m.Fork(0), sinrRef, 200)
		})
	}
}

// TestSINRSingleTransmitterAlwaysDelivers: with one transmitter there is
// no interference, so every neighbor under the default parameters (degree
// ≤ 19) receives — the rule strictly extends unit-disk reception here.
func TestSINRSingleTransmitterAlwaysDelivers(t *testing.T) {
	g := gen.Star(10)
	n, _ := NewNetwork(g, 0) // center of the star
	n.UseModel(&SINR{Alpha: 1, Beta: 0.5, N0: 0.1, Power: 1}, 0)
	transmit := make([]bool, g.N())
	transmit[0] = true
	if newly := n.StepRound(transmit); newly != g.N()-1 {
		t.Fatalf("single transmitter informed %d of %d neighbors", newly, g.N()-1)
	}
	if !n.Done() {
		t.Fatal("star broadcast should complete in one round")
	}
}

// TestFadingDeterminism: identical (seed, salt) replays identically;
// different salts give different erasure patterns (on a graph large enough
// for a collision-free coincidence to be negligible).
func TestFadingDeterminism(t *testing.T) {
	g := gen.Hypercube(6)
	run := func(salt uint64) *Network {
		n, _ := NewNetwork(g, 0)
		n.UseModel(&Fading{P: 0.4, Seed: 17}, salt)
		r := rng.New(8)
		proto := &Decay{R: r}
		transmit := make([]bool, g.N())
		for n.Round < 300 && !n.Done() {
			for i := range transmit {
				transmit[i] = false
			}
			proto.Transmitters(n, transmit)
			n.StepRound(transmit)
		}
		return n
	}
	a, b, c := run(1), run(1), run(2)
	if a.Round != b.Round || a.Collisions != b.Collisions || a.Transmissions != b.Transmissions ||
		!reflect.DeepEqual(a.Informed, b.Informed) {
		t.Fatal("identical salts diverged")
	}
	if a.Round == c.Round && a.Collisions == c.Collisions && a.Transmissions == c.Transmissions {
		t.Fatal("different salts produced identical executions (suspicious)")
	}
}

// TestMultiMessageCompletion: completion requires all M messages
// everywhere, and Informed keeps meaning "holds ≥ 1 message".
func TestMultiMessageCompletion(t *testing.T) {
	g := gen.Cycle(12)
	n, _ := NewNetwork(g, 0)
	n.UseModel(&MultiMessage{M: 3}, 0)
	mm := n.model.(*MultiMessage)
	if n.InformedCount != 3 {
		t.Fatalf("3 distinct origins should start informed, got %d", n.InformedCount)
	}
	r := rng.New(6)
	proto := &Decay{R: r}
	transmit := make([]bool, g.N())
	for n.Round < 4000 && !n.Done() {
		if n.InformedCount == g.N() && !n.Done() {
			// The informative window: everyone holds something, not
			// everything — the unit-disk completion test would stop here.
			for j := 0; j < 3; j++ {
				held := 0
				for v := 0; v < g.N(); v++ {
					if mm.Holds(v, j) {
						held++
					}
				}
				if held == 0 {
					t.Fatalf("message %d vanished", j)
				}
			}
		}
		for i := range transmit {
			transmit[i] = false
		}
		proto.Transmitters(n, transmit)
		n.StepRound(transmit)
	}
	if !n.Done() {
		t.Fatalf("multi-message broadcast did not complete in %d rounds", n.Round)
	}
	for v := 0; v < g.N(); v++ {
		for j := 0; j < 3; j++ {
			if !mm.Holds(v, j) {
				t.Fatalf("done, but vertex %d misses message %d", v, j)
			}
		}
	}
}

// TestJamNeverCompletes: with budget ≥ 1 the last uninformed vertex is
// always within the jammer's budget, so broadcast can never complete.
func TestJamNeverCompletes(t *testing.T) {
	g := gen.Hypercube(5)
	res, err := MonteCarlo(g, 0, func(r *rng.RNG) Protocol { return &Decay{R: r} }, 8,
		Options{RunOpts: runopts.RunOpts{Seed: 21}, MaxRounds: 600, TraceRounds: -1,
			Model: &Jam{Budget: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("jammed broadcast completed %d trials", res.Completed)
	}
	for _, tr := range res.PerTrial {
		if tr.InformedCount >= g.N() {
			t.Fatalf("trial %d fully informed despite jammer", tr.Trial)
		}
		if tr.InformedCount < g.N()*3/4 {
			t.Fatalf("trial %d plateaued at %d/%d — jammer stronger than intended", tr.Trial, tr.InformedCount, g.N())
		}
	}
}

// TestModelMonteCarloWorkerInvariance is the satellite determinism suite:
// every model's full Monte-Carlo aggregate is bit-identical at workers
// 1, 2, and 8.
func TestModelMonteCarloWorkerInvariance(t *testing.T) {
	models := []Model{
		UnitDisk{},
		&SINR{Alpha: 1, Beta: 0.5, N0: 0.1, Power: 1},
		&Fading{P: 0.3},
		&MultiMessage{M: 4},
		&Jam{Budget: 1, Policy: JamByFrontier},
	}
	g := gen.Torus(6, 6)
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			var base *Result
			for _, workers := range []int{1, 2, 8} {
				res, err := MonteCarlo(g, 0, func(r *rng.RNG) Protocol { return &Decay{R: r} }, 24,
					Options{RunOpts: runopts.RunOpts{Workers: workers, Seed: 7}, MaxRounds: 500, Model: m})
				if err != nil {
					t.Fatal(err)
				}
				if res.Model != m.Name() {
					t.Fatalf("Result.Model = %q, want %q", res.Model, m.Name())
				}
				if base == nil {
					base = res
					continue
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("%s aggregate differs between 1 and %d workers", m.Name(), workers)
				}
			}
		})
	}
}

// TestUnitDiskModelMatchesLegacyMonteCarlo: routing through the UnitDisk
// model changes nothing but the Model label — protocol RNG streams are
// untouched, so every aggregate byte matches a nil-model (legacy) run.
func TestUnitDiskModelMatchesLegacyMonteCarlo(t *testing.T) {
	g := gen.CPlus(20)
	opt := Options{RunOpts: runopts.RunOpts{Seed: 13}, MaxRounds: 4000}
	legacy, err := MonteCarlo(g, 0, func(r *rng.RNG) Protocol { return &Decay{R: r} }, 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Model = UnitDisk{}
	routed, err := MonteCarlo(g, 0, func(r *rng.RNG) Protocol { return &Decay{R: r} }, 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Model != "" || routed.Model != "unit-disk" {
		t.Fatalf("model labels: legacy %q, routed %q", legacy.Model, routed.Model)
	}
	routed.Model = ""
	if !reflect.DeepEqual(legacy, routed) {
		t.Fatal("UnitDisk-routed Monte-Carlo differs from the legacy path")
	}
}

// TestModelNamesCanonical: Fork preserves the name and ParseModel
// round-trips through it (the property wexpd cache keys rely on).
func TestModelNamesCanonical(t *testing.T) {
	for _, spec := range []string{"unit-disk", "sinr", "fading:0.5,3", "multi:8", "jam:2,frontier"} {
		m, err := ParseModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Fork(99).Name(); got != m.Name() {
			t.Fatalf("Fork changed name: %q -> %q", m.Name(), got)
		}
		family, _, _ := strings.Cut(spec, ":")
		if !strings.HasPrefix(m.Name(), family) {
			t.Fatalf("name %q does not echo family of %q", m.Name(), spec)
		}
	}
}
