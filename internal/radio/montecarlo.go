package radio

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
	"wexp/internal/stats"
)

// Factory creates a fresh protocol instance for one Monte-Carlo trial.
// The supplied generator is the trial's private random stream; protocols
// must draw all randomness from it so trials are independent and the
// whole run is reproducible from Options.Seed alone.
type Factory func(r *rng.RNG) Protocol

// DefaultMaxRounds is the per-trial round budget when Options.MaxRounds
// is zero.
const DefaultMaxRounds = 1_000_000

// DefaultTraceRounds is the per-round summary depth when
// Options.TraceRounds is zero: informed-count quantiles are reported for
// rounds 0..DefaultTraceRounds (trials that finish earlier contribute
// their final count to later rounds).
const DefaultTraceRounds = 1024

// Options configures a Monte-Carlo run. The zero value of every field
// selects a sensible default.
//
// The common run-control knobs are the embedded runopts.RunOpts: Workers
// is the trial pool width (results are bit-identical at every width —
// trial RNG streams are pre-split in index order and aggregation is by
// trial index, so scheduling is invisible); Seed seeds the run, every
// trial deriving its stream from it; Budget is ignored (the per-trial
// bound is MaxRounds, in rounds rather than abstract work units).
type Options struct {
	runopts.RunOpts

	// MaxRounds is the per-trial round budget (0 = DefaultMaxRounds).
	MaxRounds int
	// TraceRounds caps the per-round informed-count summaries (0 =
	// DefaultTraceRounds, negative = none). Totals and per-trial records
	// always cover the full run regardless of this cap.
	TraceRounds int
	// Model selects the per-round receive rule (nil = the legacy
	// unit-disk path, byte-identical to runs predating the Model
	// subsystem). Each trial gets a private fork whose salt is pre-split
	// from a dedicated stream, so trial RNG streams for protocols are
	// unchanged and aggregates stay bit-identical at any worker count.
	Model Model
	// Ctx, when non-nil, cancels the run: workers observe it at trial
	// boundaries and MonteCarlo returns Ctx.Err(). A nil Ctx means run to
	// completion.
	Ctx context.Context
	// Mem is the explicit memory model that picks the adjacency strategy
	// (dense bit rows vs sparse CSR traversal). The zero value selects the
	// defaults; see MemModel.
	Mem MemModel
}

// TrialResult is the per-trial record of a Monte-Carlo run.
type TrialResult struct {
	Trial         int  `json:"trial"`
	Rounds        int  `json:"rounds"`
	Completed     bool `json:"completed"`
	InformedCount int  `json:"informed"`
	Collisions    int  `json:"collisions"`
	Transmissions int  `json:"transmissions"`
}

// RoundSummary is the cross-trial distribution of informed counts after a
// given round. Trials that completed (or hit the budget) earlier
// contribute their final informed count.
type RoundSummary struct {
	Round  int     `json:"round"`
	Mean   float64 `json:"mean"`
	P10    float64 `json:"p10"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Result aggregates a Monte-Carlo run. Every field is a deterministic
// function of (graph, source, factory, trials, Options.Seed,
// Options.MaxRounds, Options.TraceRounds) — the worker count never shows.
type Result struct {
	Protocol string `json:"protocol"`
	// Model is the canonical receive-rule name; empty on legacy runs
	// (Options.Model == nil) so their serialized form is unchanged.
	Model     string `json:"model,omitempty"`
	Trials    int    `json:"trials"`
	Completed int    `json:"completed"` // trials that met the model's completion condition

	// Rounds summarizes per-trial round counts over all trials (budget-
	// capped trials contribute MaxRounds).
	Rounds stats.Summary `json:"rounds"`
	// CompletionHist bins the completion rounds of completed trials;
	// nil when no trial completed.
	CompletionHist *stats.Histogram `json:"completion_hist,omitempty"`

	TotalCollisions    int64 `json:"total_collisions"`
	TotalTransmissions int64 `json:"total_transmissions"`

	// InformedByRound holds per-round informed-count summaries up to the
	// trace cap (see Options.TraceRounds).
	InformedByRound []RoundSummary `json:"informed_by_round,omitempty"`

	// PerTrial holds the individual trial records in trial order.
	PerTrial []TrialResult `json:"per_trial"`
}

// MonteCarlo fans `trials` independent seeded broadcast executions of the
// protocol over a deterministic worker pool and aggregates them. The
// adjacency rows are built once and shared read-only by every trial; each
// trial gets a pre-split RNG stream, so the result is bit-identical at
// any Options.Workers.
func MonteCarlo(g *graph.Graph, source int, factory Factory, trials int, opt Options) (*Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("radio: trials must be positive, got %d", trials)
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("radio: source %d out of range [0,%d)", source, g.N())
	}
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	traceRounds := opt.TraceRounds
	if traceRounds == 0 {
		traceRounds = DefaultTraceRounds
	}
	if traceRounds > maxRounds {
		traceRounds = maxRounds
	}
	rows := BuildAdjRowsMem(g, opt.Mem)

	// Pre-split one stream per trial in index order: the only RNG
	// consumption that depends on anything but the trial index.
	parent := rng.New(opt.Seed)
	rngs := make([]*rng.RNG, trials)
	for i := range rngs {
		rngs[i] = parent.Split()
	}

	// Per-trial model salts come from their own stream so installing a
	// model never perturbs the protocol streams above: a UnitDisk run
	// replays a legacy run bit for bit.
	var modelSalts []uint64
	if opt.Model != nil {
		ms := rng.New(opt.Seed ^ rng.Salt("radio/model"))
		modelSalts = make([]uint64, trials)
		for i := range modelSalts {
			modelSalts[i] = ms.Uint64()
		}
	}

	type trialOut struct {
		res      TrialResult
		informed []int32 // informed count after round t, t ≤ traceRounds
		err      error
		name     string
	}
	outs := make([]trialOut, trials)

	// Trial arenas: a Network (with its informed/informed-at arrays and
	// lazily built engine scratch) plus a transmit slice together cost
	// O(n + m') words at large n, so allocating them per trial would make
	// peak memory grow with the trial count between GC cycles. The pool
	// bounds steady state to O(workers) arenas: each worker recycles the
	// arena it just finished via resetFor.
	type trialArena struct {
		net      *Network
		transmit []bool
	}
	var arenas sync.Pool
	runTrial := func(i int) {
		p := factory(rngs[i])
		var arena *trialArena
		if x := arenas.Get(); x != nil {
			arena = x.(*trialArena)
			arena.net.resetFor(source)
		} else {
			net, err := NewNetworkRows(g, source, rows)
			if err != nil {
				outs[i].err = err
				return
			}
			arena = &trialArena{net: net, transmit: make([]bool, g.N())}
		}
		net := arena.net
		if opt.Model != nil {
			net.UseModel(opt.Model, modelSalts[i])
		}
		var trace []int32
		if traceRounds > 0 {
			trace = append(trace, int32(net.InformedCount))
		}
		transmit := arena.transmit
		for net.Round < maxRounds && !net.Done() {
			for j := range transmit {
				transmit[j] = false
			}
			p.Transmitters(net, transmit)
			net.StepRound(transmit)
			if net.Round <= traceRounds {
				trace = append(trace, int32(net.InformedCount))
			}
		}
		outs[i] = trialOut{
			res: TrialResult{
				Trial:         i,
				Rounds:        net.Round,
				Completed:     net.Done(),
				InformedCount: net.InformedCount,
				Collisions:    net.Collisions,
				Transmissions: net.Transmissions,
			},
			informed: trace,
			name:     p.Name(),
		}
		arenas.Put(arena)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	cancelled := func() bool { return opt.Ctx != nil && opt.Ctx.Err() != nil }
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			if cancelled() {
				return nil, opt.Ctx.Err()
			}
			runTrial(i)
		}
	} else {
		var cursor atomic.Int64
		cursor.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !cancelled() {
					i := int(cursor.Add(1))
					if i >= trials {
						return
					}
					runTrial(i)
				}
			}()
		}
		wg.Wait()
		if cancelled() {
			return nil, opt.Ctx.Err()
		}
	}

	// Deterministic merge: everything below iterates in trial index order.
	res := &Result{Trials: trials}
	if opt.Model != nil {
		res.Model = opt.Model.Name()
	}
	rounds := make([]float64, 0, trials)
	var completion []float64
	maxTrace := 0
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		t := outs[i].res
		res.Protocol = outs[i].name
		res.PerTrial = append(res.PerTrial, t)
		rounds = append(rounds, float64(t.Rounds))
		res.TotalCollisions += int64(t.Collisions)
		res.TotalTransmissions += int64(t.Transmissions)
		if t.Completed {
			res.Completed++
			completion = append(completion, float64(t.Rounds))
		}
		if len(outs[i].informed) > maxTrace {
			maxTrace = len(outs[i].informed)
		}
	}
	res.Rounds = stats.Summarize(rounds)
	if len(completion) > 0 {
		hi := stats.Max(completion)
		if hi < 1 {
			hi = 1
		}
		bins := 16
		if len(completion) < bins {
			bins = len(completion)
		}
		res.CompletionHist = stats.NewHistogram(completion, 0, hi, bins)
	}
	if maxTrace > 0 {
		sample := make([]float64, trials)
		for t := 0; t < maxTrace; t++ {
			for i := range outs {
				tr := outs[i].informed
				if t < len(tr) {
					sample[i] = float64(tr[t])
				} else {
					// Trial ended earlier: its informed count is final.
					sample[i] = float64(tr[len(tr)-1])
				}
			}
			qs := stats.Quantiles(sample, 0.1, 0.5, 0.9)
			res.InformedByRound = append(res.InformedByRound, RoundSummary{
				Round:  t,
				Mean:   stats.Mean(sample),
				P10:    qs[0],
				Median: qs[1],
				P90:    qs[2],
				Min:    stats.Min(sample),
				Max:    stats.Max(sample),
			})
		}
	}
	return res, nil
}
