package radio

import (
	"testing"

	"wexp/internal/badgraph"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

func TestCollisionSemantics(t *testing.T) {
	// Path 0-1-2 with 0 and 2 informed and transmitting: vertex 1 hears a
	// collision and learns nothing.
	g := gen.Path(3)
	n, err := NewNetwork(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Informed[2] = true
	n.InformedCount++
	newly := n.Step([]bool{true, false, true})
	if newly != 0 {
		t.Fatalf("collision informed %d vertices", newly)
	}
	if n.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", n.Collisions)
	}
	if n.Informed[1] {
		t.Fatal("vertex 1 informed despite collision")
	}
}

func TestSingleTransmitterInforms(t *testing.T) {
	g := gen.Path(3)
	n, _ := NewNetwork(g, 0)
	newly := n.Step([]bool{true, false, false})
	if newly != 1 || !n.Informed[1] {
		t.Fatal("single transmitter failed to inform neighbor")
	}
	if n.InformedAt(1) != 1 {
		t.Fatalf("InformedAt(1) = %d, want 1", n.InformedAt(1))
	}
	if n.InformedAt(2) != -1 {
		t.Fatal("vertex 2 should be uninformed")
	}
}

func TestUninformedCannotTransmit(t *testing.T) {
	g := gen.Path(3)
	n, _ := NewNetwork(g, 0)
	// Vertex 2 flagged but uninformed: must be ignored, so vertex 1
	// receives only from 0 (no collision).
	newly := n.Step([]bool{true, false, true})
	if newly != 1 || !n.Informed[1] {
		t.Fatal("uninformed transmitter was not ignored")
	}
	if n.Transmissions != 1 {
		t.Fatalf("transmissions = %d, want 1", n.Transmissions)
	}
}

func TestTransmitterDoesNotReceive(t *testing.T) {
	// Triangle where 0 transmits and 1 transmits: 2 collides; and a
	// transmitting vertex never counts as receiving (it is not silent).
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(0, 2)
	g := b.Build()
	n, _ := NewNetwork(g, 0)
	n.Informed[1] = true
	n.InformedCount++
	newly := n.Step([]bool{true, true, false})
	if newly != 0 || n.Informed[2] {
		t.Fatal("vertex 2 should see a collision")
	}
}

func TestSourceValidation(t *testing.T) {
	if _, err := NewNetwork(gen.Path(3), 5); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := NewNetwork(gen.Path(3), -1); err == nil {
		t.Fatal("negative source accepted")
	}
}

func TestFloodDeadlocksOnCPlus(t *testing.T) {
	// The Introduction's example: flooding on C⁺ informs x, y in round one
	// and then every clique vertex hears collisions forever.
	g := gen.CPlus(8)
	res, err := Run(g, 0, Flood{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("flooding should never complete on C⁺")
	}
	if res.InformedCount != 3 { // s0, x, y
		t.Fatalf("informed = %d, want 3", res.InformedCount)
	}
	if res.Collisions == 0 {
		t.Fatal("expected collisions")
	}
}

func TestFloodCompletesOnPath(t *testing.T) {
	// On a path, flooding works: the frontier is always a single vertex...
	// actually two after the first step, but their neighborhoods are
	// disjoint, so no blocking collision.
	g := gen.Path(10)
	res, err := Run(g, 0, Flood{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 9 {
		t.Fatalf("path flood: completed=%v rounds=%d", res.Completed, res.Rounds)
	}
}

func TestRoundRobinAlwaysCompletes(t *testing.T) {
	for _, g := range []*graph.Graph{gen.CPlus(6), gen.Cycle(9), gen.Torus(4, 4)} {
		res, err := Run(g, 0, RoundRobin{}, g.N()*g.N()+10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("round robin incomplete on %v", g)
		}
		if res.Collisions != 0 {
			t.Fatal("round robin should never collide")
		}
	}
}

func TestDecayCompletesOnCPlus(t *testing.T) {
	g := gen.CPlus(16)
	r := rng.New(1)
	res, err := Run(g, 0, &Decay{R: r}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("decay incomplete after %d rounds (informed %d/%d)",
			res.Rounds, res.InformedCount, g.N())
	}
}

func TestSpokesmanCompletesOnCPlus(t *testing.T) {
	g := gen.CPlus(16)
	res, err := Run(g, 0, &Spokesman{}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("spokesman incomplete: informed %d/%d", res.InformedCount, g.N())
	}
	// The spokesman schedule should beat flooding trivially and finish fast:
	// C⁺ has tiny diameter.
	if res.Rounds > 10 {
		t.Fatalf("spokesman took %d rounds on C⁺", res.Rounds)
	}
}

func TestSpokesmanCompletesOnTorus(t *testing.T) {
	g := gen.Torus(6, 6)
	res, err := Run(g, 0, &Spokesman{}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("spokesman incomplete on torus")
	}
}

func TestSpokesmanRandomizedVariant(t *testing.T) {
	g := gen.CPlus(12)
	r := rng.New(2)
	res, err := Run(g, 0, &Spokesman{R: r, Trials: 4}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("randomized spokesman incomplete")
	}
}

func TestDecayOnChainRespectsLowerBound(t *testing.T) {
	// Section 5: broadcast needs Ω(D·log(n/D)) rounds. On a small chain,
	// verify the decay protocol's round count is at least the number of
	// hops (trivial) and the per-copy structure forces multiple rounds per
	// hop. This is a smoke check; experiment E9 does the scaling study.
	r := rng.New(3)
	ch, err := badgraph.NewChain(4, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ch.G, ch.Root, &Decay{R: r}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("decay incomplete on chain: %d/%d", res.InformedCount, ch.N())
	}
	if res.Rounds < 2*ch.Hops {
		t.Fatalf("rounds = %d < 2·hops = %d", res.Rounds, 2*ch.Hops)
	}
}

func TestRunMaxRounds(t *testing.T) {
	g := gen.CPlus(6)
	res, err := Run(g, 0, Flood{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Rounds != 7 {
		t.Fatalf("maxRounds not honored: %+v", res)
	}
}

func TestCountInformedIn(t *testing.T) {
	g := gen.Path(5)
	n, _ := NewNetwork(g, 0)
	n.Step([]bool{true, false, false, false, false})
	if got := n.CountInformedIn([]int{0, 1, 2}); got != 2 {
		t.Fatalf("CountInformedIn = %d, want 2", got)
	}
}

func TestRunNetworkInformedAtOrder(t *testing.T) {
	g := gen.Path(8)
	net, err := RunNetwork(g, 0, Flood{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Done() {
		t.Fatal("flood on path should complete")
	}
	for v := 1; v < 8; v++ {
		if net.InformedAt(v) != v {
			t.Fatalf("InformedAt(%d) = %d, want %d", v, net.InformedAt(v), v)
		}
	}
}
