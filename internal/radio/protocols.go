package radio

import (
	"math"

	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
)

// Flood is the naive protocol: every informed vertex transmits every round.
// On the Introduction's C⁺ graph it informs x and y in round one and then
// deadlocks forever — every clique vertex has ≥ 2 transmitting neighbors.
type Flood struct{}

// Name implements Protocol.
func (Flood) Name() string { return "flood" }

// Transmitters implements Protocol.
func (Flood) Transmitters(n *Network, transmit []bool) {
	for v, inf := range n.Informed {
		transmit[v] = inf
	}
}

// RoundRobin is the trivial collision-free protocol: vertex (round mod n)
// transmits alone. Always completes on connected graphs, in O(n·D) rounds.
type RoundRobin struct{}

// Name implements Protocol.
func (RoundRobin) Name() string { return "round-robin" }

// Transmitters implements Protocol.
func (RoundRobin) Transmitters(n *Network, transmit []bool) {
	v := n.Round % n.G.N()
	transmit[v] = n.Informed[v]
}

// Decay is the randomized protocol of Bar-Yehuda, Goldreich and Itai [5]:
// time is divided into phases of ⌈log₂ n⌉+1 rounds, and in round i of each
// phase every informed vertex transmits independently with probability
// 2^{-i}. Each vertex with an informed neighbor is informed within O(log n)
// phases in expectation.
type Decay struct {
	R *rng.RNG
}

// Name implements Protocol.
func (*Decay) Name() string { return "decay-bgi" }

// Transmitters implements Protocol.
func (d *Decay) Transmitters(n *Network, transmit []bool) {
	phaseLen := int(math.Ceil(math.Log2(float64(n.G.N())))) + 1
	i := n.Round%phaseLen + 1
	p := math.Pow(2, -float64(i-1))
	for v, inf := range n.Informed {
		if inf {
			transmit[v] = d.R.Bernoulli(p)
		}
	}
}

// Spokesman is the offline/centralized schedule that realizes wireless
// expansion operationally: each round it takes the frontier S (informed
// vertices with at least one uninformed neighbor), builds the induced
// bipartite graph GS = (S, Γ⁻(S) ∩ uninformed), elects a spokesman subset
// S' ⊆ S with a large S-excluding unique neighborhood, and transmits
// exactly S'. On an (αw, βw)-wireless expander the frontier's uninformed
// neighborhood shrinks geometrically.
//
// This is a *centralized* benchmark protocol (it reads global state), used
// to demonstrate achievable schedules, not a distributed algorithm.
type Spokesman struct {
	R      *rng.RNG
	Trials int // decay-sampler trials per round (0 = deterministic only)
}

// Name implements Protocol.
func (*Spokesman) Name() string { return "spokesman" }

// Transmitters implements Protocol.
func (sp *Spokesman) Transmitters(n *Network, transmit []bool) {
	// Frontier: informed vertices with an uninformed neighbor.
	var frontier []int
	for v, inf := range n.Informed {
		if !inf {
			continue
		}
		for _, w := range n.G.Neighbors(v) {
			if !n.Informed[w] {
				frontier = append(frontier, v)
				break
			}
		}
	}
	if len(frontier) == 0 {
		return
	}
	b, _ := uninformedBipartite(n, frontier)
	var sel spokesman.Selection
	if sp.Trials > 0 && sp.R != nil {
		sel = spokesman.Best(b, sp.Trials, sp.R)
	} else {
		sel = spokesman.BestDeterministic(b)
	}
	for _, i := range sel.Subset {
		transmit[frontier[i]] = true
	}
}

// uninformedBipartite builds the bipartite graph from the frontier to its
// uninformed neighbors.
func uninformedBipartite(n *Network, frontier []int) (*graph.Bipartite, []int) {
	nIndex := make(map[int32]int)
	var nVerts []int
	var edges [][2]int
	for i, u := range frontier {
		for _, w := range n.G.Neighbors(u) {
			if n.Informed[w] {
				continue
			}
			idx, ok := nIndex[w]
			if !ok {
				idx = len(nVerts)
				nIndex[w] = idx
				nVerts = append(nVerts, int(w))
			}
			edges = append(edges, [2]int{i, idx})
		}
	}
	bb := graph.NewBipartiteBuilder(len(frontier), len(nVerts))
	for _, e := range edges {
		bb.MustAddEdge(e[0], e[1])
	}
	return bb.Build(), nVerts
}
