package radio

import (
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

// TestInformedMonotone checks the model's basic safety property: a vertex
// that is informed stays informed, so the informed set is monotone
// nondecreasing under every protocol.
func TestInformedMonotone(t *testing.T) {
	r := rng.New(11)
	g := gen.Torus(6, 6)
	protos := []Protocol{Flood{}, RoundRobin{}, &Decay{R: r.Split()},
		&ProbFlood{P: 0.5, R: r.Split()}, &Spokesman{R: r.Split(), Trials: 2}}
	for _, p := range protos {
		net, err := NewNetwork(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		prev := make([]bool, g.N())
		copy(prev, net.Informed)
		transmit := make([]bool, g.N())
		for net.Round < 200 && !net.Done() {
			for i := range transmit {
				transmit[i] = false
			}
			p.Transmitters(net, transmit)
			net.Step(transmit)
			for v, was := range prev {
				if was && !net.Informed[v] {
					t.Fatalf("%s: vertex %d forgot the message at round %d", p.Name(), v, net.Round)
				}
			}
			copy(prev, net.Informed)
		}
	}
}

// TestFloodDeadlocksForeverOnCPlus strengthens the Section 2 example: on
// C⁺ flooding informs exactly {s0, x, y} in round one and then the
// informed set is a fixed point — every clique vertex hears a collision
// in every subsequent round, forever (checked over a long horizon, with
// per-round collision counts constant once deadlocked).
func TestFloodDeadlocksForeverOnCPlus(t *testing.T) {
	g := gen.CPlus(20)
	res, tr, err := RunTraced(g, 0, Flood{}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("flood completed on C⁺")
	}
	if res.InformedCount != 3 {
		t.Fatalf("informed = %d, want 3 (s0, x, y)", res.InformedCount)
	}
	for round, c := range tr.Informed {
		if round >= 1 && c != 3 {
			t.Fatalf("round %d: informed %d, want fixed point 3", round, c)
		}
	}
	// From round 2 on, x and y transmit into the clique: all n−2 remaining
	// clique vertices (plus none else) hear ≥2 transmitters every round.
	for round := 2; round < len(tr.Collisions); round++ {
		if tr.Collisions[round] != g.N()-3 {
			t.Fatalf("round %d: %d collisions, want %d every round forever",
				round, tr.Collisions[round], g.N()-3)
		}
	}
}

// TestFixedScheduleIgnoresOutOfRange checks that slots may contain ids
// outside [0, n) without panicking or transmitting.
func TestFixedScheduleIgnoresOutOfRange(t *testing.T) {
	g := gen.Path(4)
	net, err := NewNetwork(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sched := &FixedSchedule{Slots: [][]int{{-3, 99, 0}}}
	transmit := make([]bool, g.N())
	sched.Transmitters(net, transmit)
	for v, tx := range transmit {
		if tx != (v == 0) {
			t.Fatalf("transmit[%d] = %v", v, tx)
		}
	}
	net.Step(transmit)
	if net.Transmissions != 1 || !net.Informed[1] {
		t.Fatalf("out-of-range slot corrupted the round: %+v", net)
	}
	// Empty schedule: no transmitters at all.
	empty := &FixedSchedule{}
	for i := range transmit {
		transmit[i] = false
	}
	empty.Transmitters(net, transmit)
	for v, tx := range transmit {
		if tx {
			t.Fatalf("empty schedule transmitted at %d", v)
		}
	}
	if empty.Name() != "fixed-schedule" {
		t.Fatalf("default name = %q", empty.Name())
	}
}

// TestFixedScheduleIgnoresUninformed checks that a scheduled vertex that
// does not hold the message stays silent.
func TestFixedScheduleIgnoresUninformed(t *testing.T) {
	g := gen.Path(5)
	net, err := NewNetwork(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Slot schedules vertices 0 and 3; only 0 is informed.
	sched := &FixedSchedule{Label: "probe", Slots: [][]int{{0, 3}}}
	transmit := make([]bool, g.N())
	sched.Transmitters(net, transmit)
	if transmit[3] {
		t.Fatal("uninformed vertex 3 scheduled to transmit")
	}
	net.Step(transmit)
	if net.Transmissions != 1 {
		t.Fatalf("transmissions = %d, want 1", net.Transmissions)
	}
	if net.Informed[2] || net.Informed[4] {
		t.Fatal("silence from vertex 3 informed its neighbors")
	}
	if sched.Name() != "probe" {
		t.Fatalf("label not used: %q", sched.Name())
	}
}

// TestAdaptiveEngineChoice pins the per-graph engine heuristic: dense
// graphs take the word-parallel path, sparse ones the counting loop (the
// outputs are identical either way; this is a performance contract).
func TestAdaptiveEngineChoice(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		vector bool
	}{
		{"cplus-256", gen.CPlus(255), true},
		{"er-256-dense", gen.ErdosRenyi(256, 0.1, rng.New(1)), true},
		// Torus(16,16): degree 4 equals the 4-word row width, so even this
		// sparse family rides the word sweep at small n.
		{"torus-16x16", gen.Torus(16, 16), true},
		{"hypercube-12", gen.Hypercube(12), false},
		{"torus-64x64", gen.Torus(64, 64), false},
		{"path-500", gen.Path(500), false},
	}
	for _, c := range cases {
		if got := BuildAdjRows(c.g).vector; got != c.vector {
			t.Errorf("%s: vector=%v, want %v", c.name, got, c.vector)
		}
	}
}

// TestNewNetworkRowsValidation checks the shared-rows constructor rejects
// mismatched caches.
func TestNewNetworkRowsValidation(t *testing.T) {
	rows := BuildAdjRows(gen.Path(5))
	if _, err := NewNetworkRows(gen.Path(6), 0, rows); err == nil {
		t.Fatal("mismatched rows accepted")
	}
	net, err := NewNetworkRows(gen.Path(5), 0, rows)
	if err != nil || net == nil {
		t.Fatalf("matching rows rejected: %v", err)
	}
}
