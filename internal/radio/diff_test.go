package radio

import (
	"fmt"
	"reflect"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// lockstep runs proto on three copies of the same network — one stepping
// the vectorized engine, one the scalar oracle, one routed through the
// UnitDisk model — feeding all the identical transmit set each round, and
// fails on the first divergence in any observable: newly-informed count,
// Informed, InformedCount, Collisions, Transmissions, or per-vertex
// informed-at rounds.
func lockstep(t *testing.T, g *graph.Graph, source int, proto Protocol, maxRounds int) {
	t.Helper()
	// Force the word-parallel kernel even on graphs where the adaptive
	// engine would pick the counting loop: the kernel must agree with the
	// oracle everywhere, not just where it is fast.
	rows := BuildAdjRows(g)
	rows.vector = true
	vec, err := NewNetworkRows(g, source, rows)
	if err != nil {
		t.Fatal(err)
	}
	sca, err := NewNetwork(g, source)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewNetworkRows(g, source, rows)
	if err != nil {
		t.Fatal(err)
	}
	mod.UseModel(UnitDisk{}, 0)
	transmit := make([]bool, g.N())
	for vec.Round < maxRounds && !vec.Done() {
		for i := range transmit {
			transmit[i] = false
		}
		proto.Transmitters(vec, transmit)
		nv := vec.Step(transmit)
		ns := sca.StepScalar(transmit)
		nm := mod.StepRound(transmit)
		if nv != ns {
			t.Fatalf("round %d: newly informed %d (vectorized) != %d (scalar)", vec.Round, nv, ns)
		}
		if nm != ns {
			t.Fatalf("round %d: newly informed %d (unit-disk model) != %d (scalar)", mod.Round, nm, ns)
		}
		compareNetworks(t, vec, sca)
		compareNetworks(t, mod, sca)
		if mod.Done() != vec.Done() {
			t.Fatalf("round %d: Done %v (unit-disk model) != %v (engine)", mod.Round, mod.Done(), vec.Done())
		}
	}
}

func compareNetworks(t *testing.T, vec, sca *Network) {
	t.Helper()
	if vec.InformedCount != sca.InformedCount {
		t.Fatalf("round %d: InformedCount %d != %d", vec.Round, vec.InformedCount, sca.InformedCount)
	}
	if vec.Collisions != sca.Collisions {
		t.Fatalf("round %d: Collisions %d != %d", vec.Round, vec.Collisions, sca.Collisions)
	}
	if vec.Transmissions != sca.Transmissions {
		t.Fatalf("round %d: Transmissions %d != %d", vec.Round, vec.Transmissions, sca.Transmissions)
	}
	for v := range vec.Informed {
		if vec.Informed[v] != sca.Informed[v] {
			t.Fatalf("round %d: Informed[%d] %v != %v", vec.Round, v, vec.Informed[v], sca.Informed[v])
		}
		if vec.InformedAt(v) != sca.InformedAt(v) {
			t.Fatalf("round %d: InformedAt(%d) %d != %d", vec.Round, v, vec.InformedAt(v), sca.InformedAt(v))
		}
	}
}

// TestStepMatchesScalarCorpus is the differential corpus: every graph
// family × protocol × seed combination runs vectorized and scalar engines
// in lockstep (240 cases).
func TestStepMatchesScalarCorpus(t *testing.T) {
	families := []struct {
		name string
		make func(r *rng.RNG) *graph.Graph
	}{
		{"path-17", func(*rng.RNG) *graph.Graph { return gen.Path(17) }},
		{"cycle-24", func(*rng.RNG) *graph.Graph { return gen.Cycle(24) }},
		{"cplus-12", func(*rng.RNG) *graph.Graph { return gen.CPlus(12) }},
		{"torus-5x5", func(*rng.RNG) *graph.Graph { return gen.Torus(5, 5) }},
		{"hypercube-5", func(*rng.RNG) *graph.Graph { return gen.Hypercube(5) }},
		{"star-16", func(*rng.RNG) *graph.Graph { return gen.Star(16) }},
		{"er-30", func(r *rng.RNG) *graph.Graph { return gen.ErdosRenyi(30, 0.15, r) }},
		// n = 70 crosses the one-word boundary of the bitset rows.
		{"er-70", func(r *rng.RNG) *graph.Graph { return gen.ErdosRenyi(70, 0.08, r) }},
	}
	protocols := []struct {
		name string
		make func(n int, r *rng.RNG) Protocol
	}{
		{"flood", func(int, *rng.RNG) Protocol { return Flood{} }},
		{"round-robin", func(int, *rng.RNG) Protocol { return RoundRobin{} }},
		{"decay", func(_ int, r *rng.RNG) Protocol { return &Decay{R: r} }},
		{"prob-flood", func(_ int, r *rng.RNG) Protocol { return &ProbFlood{P: 0.3, R: r} }},
		{"spokesman", func(_ int, r *rng.RNG) Protocol { return &Spokesman{R: r, Trials: 2} }},
		{"random-schedule", func(n int, r *rng.RNG) Protocol {
			sched, err := NewRandomSchedule(n, 16, 0.2, r)
			if err != nil {
				panic(err)
			}
			return sched
		}},
	}
	cases := 0
	for _, fam := range families {
		for _, pr := range protocols {
			for seed := uint64(1); seed <= 5; seed++ {
				cases++
				t.Run(fmt.Sprintf("%s/%s/seed-%d", fam.name, pr.name, seed), func(t *testing.T) {
					r := rng.New(seed)
					g := fam.make(r)
					lockstep(t, g, 0, pr.make(g.N(), r), 80)
				})
			}
		}
	}
	if cases < 200 {
		t.Fatalf("differential corpus has %d cases, want ≥ 200", cases)
	}
}

// TestStepMatchesScalarPreinformed covers states a protocol run never
// reaches from a single source: arbitrary informed sets and transmit
// flags on uninformed vertices.
func TestStepMatchesScalarPreinformed(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		g := gen.ErdosRenyi(40, 0.12, r)
		rows := BuildAdjRows(g)
		rows.vector = true
		vec, _ := NewNetworkRows(g, 0, rows)
		sca, _ := NewNetwork(g, 0)
		for v := 1; v < g.N(); v++ {
			if r.Bernoulli(0.3) {
				vec.Informed[v] = true
				vec.InformedCount++
				sca.Informed[v] = true
				sca.InformedCount++
			}
		}
		transmit := make([]bool, g.N())
		for rounds := 0; rounds < 10; rounds++ {
			for v := range transmit {
				transmit[v] = r.Bernoulli(0.4) // flags on uninformed vertices too
			}
			if nv, ns := vec.Step(transmit), sca.StepScalar(transmit); nv != ns {
				t.Fatalf("trial %d round %d: newly %d != %d", trial, vec.Round, nv, ns)
			}
			compareNetworks(t, vec, sca)
		}
	}
}

// TestMonteCarloWorkerInvariance checks the determinism contract: the
// full Monte-Carlo aggregate is identical at every worker-pool width.
func TestMonteCarloWorkerInvariance(t *testing.T) {
	configs := []struct {
		name    string
		g       *graph.Graph
		factory Factory
	}{
		{"cplus-24/decay", gen.CPlus(24), func(r *rng.RNG) Protocol { return &Decay{R: r} }},
		{"torus-6x6/prob-flood", gen.Torus(6, 6), func(r *rng.RNG) Protocol { return &ProbFlood{P: 0.4, R: r} }},
		{"hypercube-5/spokesman", gen.Hypercube(5), func(r *rng.RNG) Protocol { return &Spokesman{R: r, Trials: 2} }},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			var base *Result
			for _, workers := range []int{1, 2, 8} {
				res, err := MonteCarlo(c.g, 0, c.factory, 24,
					Options{RunOpts: runopts.RunOpts{Workers: workers, Seed: 7}, MaxRounds: 4000})
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = res
					continue
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("MonteCarlo result differs between 1 and %d workers:\n%+v\nvs\n%+v",
						workers, base, res)
				}
			}
			if base.Completed == 0 {
				t.Fatal("no trial completed; invariance check vacuous")
			}
		})
	}
}

// TestMonteCarloAggregates sanity-checks the aggregate fields against the
// per-trial records.
func TestMonteCarloAggregates(t *testing.T) {
	g := gen.CPlus(16)
	res, err := MonteCarlo(g, 0, func(r *rng.RNG) Protocol { return &Decay{R: r} }, 32,
		Options{RunOpts: runopts.RunOpts{Seed: 3}, MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "decay-bgi" {
		t.Fatalf("protocol = %q", res.Protocol)
	}
	if len(res.PerTrial) != 32 || res.Trials != 32 {
		t.Fatalf("per-trial records: %d", len(res.PerTrial))
	}
	var coll, tx int64
	completed := 0
	for i, tr := range res.PerTrial {
		if tr.Trial != i {
			t.Fatalf("trial order broken at %d", i)
		}
		coll += int64(tr.Collisions)
		tx += int64(tr.Transmissions)
		if tr.Completed {
			completed++
			if tr.InformedCount != g.N() {
				t.Fatalf("completed trial %d informed %d/%d", i, tr.InformedCount, g.N())
			}
		}
	}
	if res.TotalCollisions != coll || res.TotalTransmissions != tx {
		t.Fatal("totals disagree with per-trial sums")
	}
	if res.Completed != completed || completed == 0 {
		t.Fatalf("completed = %d, counted %d", res.Completed, completed)
	}
	if res.Rounds.N != 32 {
		t.Fatalf("rounds summary over %d trials", res.Rounds.N)
	}
	if res.CompletionHist == nil || res.CompletionHist.Total() != completed {
		t.Fatal("completion histogram missing or inconsistent")
	}
	if len(res.InformedByRound) == 0 {
		t.Fatal("no per-round summaries")
	}
	first := res.InformedByRound[0]
	if first.Mean != 1 || first.Min != 1 || first.Max != 1 {
		t.Fatalf("round 0 should have exactly the source informed: %+v", first)
	}
	last := res.InformedByRound[len(res.InformedByRound)-1]
	if last.Max > float64(g.N()) || last.Mean < first.Mean {
		t.Fatalf("per-round summary implausible: %+v", last)
	}
	// Monotone in every quantile: informed counts never decrease.
	for i := 1; i < len(res.InformedByRound); i++ {
		if res.InformedByRound[i].Mean+1e-9 < res.InformedByRound[i-1].Mean {
			t.Fatalf("mean informed decreased at round %d", i)
		}
	}
	// Error paths.
	if _, err := MonteCarlo(g, 0, nil, 0, Options{}); err == nil {
		t.Fatal("trials=0 accepted")
	}
	if _, err := MonteCarlo(g, -1, nil, 1, Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
}
