package radio

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// sparseRows forces the CSR-backed sparse strategy on any graph by
// shrinking the dense-row budget to one byte.
func sparseRows(g *graph.Graph) *AdjRows {
	return BuildAdjRowsMem(g, MemModel{DenseRowBudget: 1})
}

// setChunkThresholds overrides the receiver-chunking thresholds for the
// duration of a test so the chunked scatter runs on corpus-sized graphs.
func setChunkThresholds(t *testing.T, minVerts, minArcs int) {
	t.Helper()
	savedV, savedA := sparseChunkMinVerts, sparseChunkMinArcs
	sparseChunkMinVerts, sparseChunkMinArcs = minVerts, minArcs
	t.Cleanup(func() {
		sparseChunkMinVerts, sparseChunkMinArcs = savedV, savedA
	})
}

// lockstepSparse runs proto on four copies of the same network — sparse
// direct scatter, sparse chunked scatter, dense word-parallel, and the
// scalar oracle — feeding all the identical transmit set each round, and
// fails on the first divergence in any observable.
func lockstepSparse(t *testing.T, g *graph.Graph, source int, proto Protocol, maxRounds int) {
	t.Helper()
	srows := sparseRows(g)
	if srows.Strategy() != "sparse" {
		t.Fatalf("forced-sparse rows report strategy %q", srows.Strategy())
	}
	drows := BuildAdjRows(g)
	drows.vector = true
	spd, err := NewNetworkRows(g, source, srows)
	if err != nil {
		t.Fatal(err)
	}
	spc, err := NewNetworkRows(g, source, srows)
	if err != nil {
		t.Fatal(err)
	}
	den, err := NewNetworkRows(g, source, drows)
	if err != nil {
		t.Fatal(err)
	}
	sca, err := NewNetwork(g, source)
	if err != nil {
		t.Fatal(err)
	}
	transmit := make([]bool, g.N())
	huge := 1 << 30
	for spd.Round < maxRounds && !spd.Done() {
		for i := range transmit {
			transmit[i] = false
		}
		proto.Transmitters(spd, transmit)
		ns := sca.StepScalar(transmit)
		// Direct scatter: thresholds out of reach.
		setChunkThresholds(t, huge, huge)
		nd := spd.Step(transmit)
		// Chunked scatter: always bucket.
		setChunkThresholds(t, 0, 0)
		nc := spc.Step(transmit)
		nv := den.Step(transmit)
		if nd != ns || nc != ns || nv != ns {
			t.Fatalf("round %d: newly informed scalar=%d sparse-direct=%d sparse-chunked=%d dense=%d",
				sca.Round, ns, nd, nc, nv)
		}
		compareNetworks(t, spd, sca)
		compareNetworks(t, spc, sca)
		compareNetworks(t, den, sca)
	}
}

// TestSparseStepMatchesScalarCorpus is the sparse leg of the differential
// corpus: every family × protocol × seed runs the sparse engine (direct
// and chunked) in lockstep against the scalar oracle and the dense
// word-parallel path.
func TestSparseStepMatchesScalarCorpus(t *testing.T) {
	families := []struct {
		name string
		make func(r *rng.RNG) *graph.Graph
	}{
		{"path-17", func(*rng.RNG) *graph.Graph { return gen.Path(17) }},
		{"cycle-24", func(*rng.RNG) *graph.Graph { return gen.Cycle(24) }},
		{"cplus-12", func(*rng.RNG) *graph.Graph { return gen.CPlus(12) }},
		{"torus-5x5", func(*rng.RNG) *graph.Graph { return gen.Torus(5, 5) }},
		{"hypercube-5", func(*rng.RNG) *graph.Graph { return gen.Hypercube(5) }},
		{"star-16", func(*rng.RNG) *graph.Graph { return gen.Star(16) }},
		{"er-30", func(r *rng.RNG) *graph.Graph { return gen.ErdosRenyi(30, 0.15, r) }},
		// n = 70 crosses the one-word boundary of the bitset accumulators.
		{"er-70", func(r *rng.RNG) *graph.Graph { return gen.ErdosRenyi(70, 0.08, r) }},
	}
	protocols := []struct {
		name string
		make func(n int, r *rng.RNG) Protocol
	}{
		{"flood", func(int, *rng.RNG) Protocol { return Flood{} }},
		{"round-robin", func(int, *rng.RNG) Protocol { return RoundRobin{} }},
		{"decay", func(_ int, r *rng.RNG) Protocol { return &Decay{R: r} }},
		{"prob-flood", func(_ int, r *rng.RNG) Protocol { return &ProbFlood{P: 0.3, R: r} }},
		{"spokesman", func(_ int, r *rng.RNG) Protocol { return &Spokesman{R: r, Trials: 2} }},
		{"random-schedule", func(n int, r *rng.RNG) Protocol {
			sched, err := NewRandomSchedule(n, 16, 0.2, r)
			if err != nil {
				panic(err)
			}
			return sched
		}},
	}
	for _, fam := range families {
		for _, pr := range protocols {
			for seed := uint64(1); seed <= 5; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed-%d", fam.name, pr.name, seed), func(t *testing.T) {
					r := rng.New(seed)
					g := fam.make(r)
					lockstepSparse(t, g, 0, pr.make(g.N(), r), 80)
				})
			}
		}
	}
}

// TestSparseStepPreinformed covers states a protocol run never reaches
// from a single source: arbitrary informed sets and transmit flags on
// uninformed vertices, stepped once per random state on both sparse paths.
func TestSparseStepPreinformed(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 60; trial++ {
		g := gen.ErdosRenyi(48, 0.12, r)
		srows := sparseRows(g)
		spd, _ := NewNetworkRows(g, 0, srows)
		spc, _ := NewNetworkRows(g, 0, srows)
		sca, _ := NewNetwork(g, 0)
		transmit := make([]bool, g.N())
		for v := 1; v < g.N(); v++ {
			if r.Bernoulli(0.4) {
				spd.Informed[v] = true
				spc.Informed[v] = true
				sca.Informed[v] = true
				spd.InformedCount++
				spc.InformedCount++
				sca.InformedCount++
			}
		}
		for v := range transmit {
			transmit[v] = r.Bernoulli(0.5)
		}
		huge := 1 << 30
		ns := sca.StepScalar(transmit)
		setChunkThresholds(t, huge, huge)
		nd := spd.Step(transmit)
		setChunkThresholds(t, 0, 0)
		nc := spc.Step(transmit)
		if nd != ns || nc != ns {
			t.Fatalf("trial %d: newly informed scalar=%d direct=%d chunked=%d", trial, ns, nd, nc)
		}
		compareNetworks(t, spd, sca)
		compareNetworks(t, spc, sca)
	}
}

// TestSparseModelsMatchDense runs every receive-rule model under MonteCarlo
// twice — adjacency strategy forced sparse vs the default dense — and
// requires bit-identical results. Models draw all randomness from pre-split
// streams keyed by seed and trial index, so the strategy must be invisible.
func TestSparseModelsMatchDense(t *testing.T) {
	r := rng.New(7)
	g := gen.ErdosRenyi(64, 0.15, r)
	models := []Model{
		nil, // legacy unit-disk fast path
		UnitDisk{},
		&SINR{},
		&Fading{P: 0.7},
		&MultiMessage{M: 2},
		&Jam{Budget: 2},
		&Jam{Budget: 1, Policy: JamByFrontier},
	}
	for _, m := range models {
		name := "legacy"
		if m != nil {
			name = m.Name()
		}
		t.Run(name, func(t *testing.T) {
			factory := func(r *rng.RNG) Protocol { return &Decay{R: r} }
			base := Options{
				RunOpts:   runopts.RunOpts{Seed: 11, Workers: 1},
				MaxRounds: 120,
				Model:     m,
			}
			dense, err := MonteCarlo(g, 0, factory, 12, base)
			if err != nil {
				t.Fatal(err)
			}
			forced := base
			forced.Mem = MemModel{DenseRowBudget: 1}
			sparse, err := MonteCarlo(g, 0, factory, 12, forced)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dense, sparse) {
				t.Fatalf("model %s: sparse strategy diverged from dense\ndense:  %+v\nsparse: %+v",
					name, dense, sparse)
			}
		})
	}
}

// TestMonteCarloSparseWorkerInvariance pins the determinism contract on
// the sparse engine: identical results at workers 1, 2, and 8.
func TestMonteCarloSparseWorkerInvariance(t *testing.T) {
	r := rng.New(3)
	g := gen.ErdosRenyi(96, 0.1, r)
	factory := func(r *rng.RNG) Protocol { return &Decay{R: r} }
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		res, err := MonteCarlo(g, 0, factory, 24, Options{
			RunOpts:   runopts.RunOpts{Seed: 5, Workers: workers},
			MaxRounds: 200,
			Model:     &Fading{P: 0.8},
			Mem:       MemModel{DenseRowBudget: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
	}
}

// TestAdjRowsStrategySelection pins the memory model's selection rule:
// dense iff n · ⌈n/64⌉ · 8 bytes fit the budget.
func TestAdjRowsStrategySelection(t *testing.T) {
	g := gen.Cycle(100) // words = 2 → dense rows cost exactly 1600 bytes
	cost := int64(100 * 2 * 8)
	if rows := BuildAdjRowsMem(g, MemModel{DenseRowBudget: cost}); rows.kind != rowsDense || rows.rows == nil {
		t.Fatalf("budget == cost must stay dense, got %s", rows.Strategy())
	}
	if rows := BuildAdjRowsMem(g, MemModel{DenseRowBudget: cost - 1}); rows.kind != rowsSparse || rows.rows != nil {
		t.Fatalf("budget < cost must go sparse, got %s", rows.Strategy())
	}
	// The default budget keeps every small graph on the dense strategy the
	// legacy engine used (the vector heuristic is unchanged).
	if rows := BuildAdjRows(g); rows.kind != rowsDense {
		t.Fatalf("default budget on n=100 must be dense, got %s", rows.Strategy())
	}
	// A million-vertex CSR must select sparse under the default model
	// without materializing anything quadratic; constructing the strategy
	// for it is O(1).
	big := hugeEmptyGraph(1 << 20)
	if rows := BuildAdjRows(big); rows.kind != rowsSparse || rows.rows != nil {
		t.Fatalf("n=2^20 must be sparse by default, got %s", rows.Strategy())
	}
}

// hugeEmptyGraph builds an edgeless n-vertex graph (CSR is just the offset
// array, so this is cheap even at n = 2^20).
func hugeEmptyGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	return b.Build()
}

// TestMonteCarloArenaReuse bounds steady-state allocation: with pooled
// trial arenas, 200 single-worker trials on an 8k-vertex graph must not
// allocate fresh per-trial networks (≈100 KiB each) every trial.
func TestMonteCarloArenaReuse(t *testing.T) {
	r := rng.New(21)
	g := gen.ErdosRenyi(8192, 0.0008, r)
	factory := func(r *rng.RNG) Protocol { return &Decay{R: r} }
	opts := Options{
		RunOpts:     runopts.RunOpts{Seed: 9, Workers: 1},
		MaxRounds:   4,
		TraceRounds: -1,
		Mem:         MemModel{DenseRowBudget: 1},
	}
	// Warm up once so lazily built scratch does not count.
	if _, err := MonteCarlo(g, 0, factory, 2, opts); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	trials := 200
	if _, err := MonteCarlo(g, 0, factory, trials, opts); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	perTrialBudget := uint64(8 << 10) // protocol + result records, not arenas
	fixed := uint64(4 << 20)          // rows, pre-split RNGs, aggregation
	total := after.TotalAlloc - before.TotalAlloc
	if total > fixed+uint64(trials)*perTrialBudget {
		t.Fatalf("MonteCarlo allocated %d bytes over %d trials (%.0f B/trial); arenas are not being reused",
			total, trials, float64(total)/float64(trials))
	}
}
