// Package experiments implements the reproduction harness: one runner per
// experiment in DESIGN.md's per-experiment index (E1–E12), each regenerating
// the measured counterpart of a claim from the paper and checking it.
//
// Every runner is deterministic given Config.Seed: parallel trial fan-out
// uses pre-split RNG streams merged by index, so results are identical
// regardless of scheduling.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"wexp/internal/rng"
	"wexp/internal/table"
)

// Config controls an experiment run.
type Config struct {
	Seed   uint64
	Quick  bool // reduced parameter grids (used by `go test`)
	Trials int  // per-point repetitions for randomized measurements (0 = default)
}

func (c Config) trials(def, quickDef int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return quickDef
	}
	return def
}

// Result is the outcome of one experiment.
type Result struct {
	ID       string
	Title    string
	PaperRef string
	Tables   []*table.Table
	Pass     bool
	Notes    []string
}

func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) failf(format string, args ...interface{}) {
	r.Pass = false
	r.note("FAIL: "+format, args...)
}

// Text renders the full result as plain text.
func (r *Result) Text() string {
	out := fmt.Sprintf("%s — %s (%s)\n", r.ID, r.Title, r.PaperRef)
	for _, t := range r.Tables {
		out += t.Text() + "\n"
	}
	for _, n := range r.Notes {
		out += n + "\n"
	}
	if r.Pass {
		out += "RESULT: PASS\n"
	} else {
		out += "RESULT: FAIL\n"
	}
	return out
}

// Markdown renders the full result as Markdown (for EXPERIMENTS.md).
func (r *Result) Markdown() string {
	out := fmt.Sprintf("## %s — %s\n\n*Paper reference: %s.*\n\n", r.ID, r.Title, r.PaperRef)
	for _, t := range r.Tables {
		out += t.Markdown() + "\n"
	}
	for _, n := range r.Notes {
		out += "- " + n + "\n"
	}
	if r.Pass {
		out += "\n**Result: PASS**\n"
	} else {
		out += "\n**Result: FAIL**\n"
	}
	return out
}

// Runner executes one experiment.
type Runner func(cfg Config) (*Result, error)

// Entry pairs an experiment ID with its runner.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

// All lists every experiment in index order.
var All = []Entry{
	{"E1", "Spectral relation between unique and ordinary expansion (Lemma 3.1)", E1Spectral},
	{"E2", "Gbad: tightness of βu = 2β−∆ and its wireless floor (Lemmas 3.2–3.3, Fig. 1)", E2GBad},
	{"E3", "Positive result, β ≥ 1 regime (Theorem 1.1 / Lemma 4.2)", E3PositiveHighBeta},
	{"E4", "Positive result, β < 1 regime (Theorem 1.1 / Lemma 4.3)", E4PositiveLowBeta},
	{"E5", "Core graph properties (Lemma 4.4, Fig. 2)", E5CoreGraph},
	{"E6", "Generalized core graph (Lemmas 4.6–4.8)", E6GeneralizedCore},
	{"E7", "Worst-case plugged expander (Section 4.3.3, Corollary 4.11, Theorem 1.2)", E7WorstCase},
	{"E8", "Spokesman election: algorithms vs bounds (Section 4.2.1)", E8Spokesman},
	{"E9", "Broadcast lower bound Ω(D·log(n/D)) (Section 5)", E9BroadcastChain},
	{"E10", "C⁺ flooding deadlock and expansion ordering (Introduction, Obs. 2.1)", E10CPlus},
	{"E11", "Low-arboricity graphs: βw ≈ β (Theorem 1.1 corollary)", E11LowArboricity},
	{"E12", "Deterministic appendix algorithms and their floors (Appendix A, Figs. 3–4)", E12Deterministic},
	{"E13", "Ablations: decay trials, portfolio composition, local refinement", E13Ablation},
	{"E14", "Radio broadcast protocols across topologies (applications)", E14Broadcast},
}

// ByID returns the entry with the given ID.
func ByID(id string) (Entry, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// RunAll executes every experiment with the given config.
func RunAll(cfg Config) ([]*Result, error) {
	var out []*Result
	for _, e := range All {
		res, err := e.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// parallelFor runs fn(i) for i in [0, n) on up to GOMAXPROCS workers.
// Each invocation receives its own pre-split RNG so results are
// deterministic regardless of scheduling; outputs must be written to
// index-distinct locations by the caller.
func parallelFor(n int, parent *rng.RNG, fn func(i int, r *rng.RNG)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, parent.Split())
		}
		return
	}
	rngs := make([]*rng.RNG, n)
	for i := range rngs {
		rngs[i] = parent.Split()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i, rngs[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
