// Package experiments implements the reproduction harness: one registered
// Spec per experiment in DESIGN.md's per-experiment index (E1–E14), each
// regenerating the measured counterpart of a claim from the paper and
// checking it.
//
// Experiments run through a sharded job engine (see engine.go): every Spec
// declares its parameter grid as deterministic shards, the engine fans them
// over a worker pool with pre-split RNG streams and merges outputs in shard
// index order, so results — including the emitted JSON artifacts — are
// bit-identical at every worker count and across checkpoint/resume
// boundaries.
package experiments

import (
	"fmt"

	"wexp/internal/table"
)

// Config controls an experiment run.
type Config struct {
	Seed   uint64 `json:"seed"`
	Quick  bool   `json:"quick"`  // reduced parameter grids (used by `go test`)
	Trials int    `json:"trials"` // per-point repetitions for randomized measurements (0 = default)
}

func (c Config) trials(def, quickDef int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return quickDef
	}
	return def
}

// Result is the outcome of one experiment.
type Result struct {
	ID       string
	Title    string
	PaperRef string
	Tables   []*table.Table
	Pass     bool
	Notes    []string
}

func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) failf(format string, args ...interface{}) {
	r.Pass = false
	r.note("FAIL: "+format, args...)
}

// Text renders the full result as plain text.
func (r *Result) Text() string {
	out := fmt.Sprintf("%s — %s (%s)\n", r.ID, r.Title, r.PaperRef)
	for _, t := range r.Tables {
		out += t.Text() + "\n"
	}
	for _, n := range r.Notes {
		out += n + "\n"
	}
	if r.Pass {
		out += "RESULT: PASS\n"
	} else {
		out += "RESULT: FAIL\n"
	}
	return out
}

// Markdown renders the full result as Markdown (for EXPERIMENTS.md).
func (r *Result) Markdown() string {
	out := fmt.Sprintf("## %s — %s\n\n*Paper reference: %s.*\n\n", r.ID, r.Title, r.PaperRef)
	for _, t := range r.Tables {
		out += t.Markdown() + "\n"
	}
	for _, n := range r.Notes {
		out += "- " + n + "\n"
	}
	if r.Pass {
		out += "\n**Result: PASS**\n"
	} else {
		out += "\n**Result: FAIL**\n"
	}
	return out
}

// All lists every experiment Spec in index order — the registry.
var All = []*Spec{
	SpecE1, SpecE2, SpecE3, SpecE4, SpecE5, SpecE6, SpecE7,
	SpecE8, SpecE9, SpecE10, SpecE11, SpecE12, SpecE13, SpecE14,
	SpecE15, SpecE16,
}

// ByID returns the registered spec with the given ID.
func ByID(id string) (*Spec, bool) {
	for _, s := range All {
		if s.ID == id {
			return s, true
		}
	}
	return nil, false
}

// Select resolves a list of experiment IDs against the registry, in the
// order given.
func Select(ids []string) ([]*Spec, error) {
	var out []*Spec
	for _, id := range ids {
		s, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		out = append(out, s)
	}
	return out, nil
}

// RunAll executes every experiment with the given config through the
// engine at default options.
func RunAll(cfg Config) ([]*Result, error) {
	rep, err := Run(All, cfg, Options{})
	if err != nil {
		return rep.Results, err
	}
	return rep.Results, nil
}
