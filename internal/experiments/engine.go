package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// Spec declares one registered experiment: its identity, the deterministic
// decomposition of its parameter grid into shards, and the reduction of
// shard outputs into tables and a verdict.
//
// Determinism contract: Shards must be a pure function of Config (no RNG,
// no I/O); every shard's Run must draw all randomness from the supplied
// generator, which the engine pre-splits per shard index from
// Config.Seed ⊕ salt(ID); Reduce must depend only on Config and the shard
// outputs, which arrive in shard-index order. Under this contract the
// produced Result and Artifact are bit-identical at every worker count and
// across checkpoint/resume boundaries.
type Spec struct {
	ID       string
	Title    string
	PaperRef string
	// Shards returns the shard list for the config. Order and keys must be
	// a pure function of cfg; keys must be unique within the experiment.
	Shards func(cfg Config) ([]Shard, error)
	// Reduce merges the shard outputs (index order) into res, appending
	// tables and notes and calling res.failf on violated claims.
	Reduce func(cfg Config, shards []ShardResult, res *Result) error
}

// Run executes the spec with default engine options (in-memory, all cores).
func (s *Spec) Run(cfg Config) (*Result, error) {
	res, _, err := RunSpec(s, cfg, Options{})
	return res, err
}

// Shard is one unit of experiment work: a deterministic key plus the
// computation for that grid point. Run's return value must marshal to JSON
// (it is the checkpoint and artifact payload) and must not depend on
// anything but cfg and r.
type Shard struct {
	Key string
	Run func(cfg Config, r *rng.RNG) (any, error)
}

// ShardResult is a completed shard's output: the key and the result encoded
// as canonical (compact) JSON. Reduce functions decode it with decodeAll.
type ShardResult struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// Options configures the experiment engine.
type Options struct {
	// RunOpts holds the shared run-control knobs. Workers is the shard
	// worker-pool width; 0 means GOMAXPROCS, and artifacts are bit-identical
	// at every width. Budget and Seed are ignored here: shard work is bounded
	// by the experiment grids themselves, and randomness is seeded per
	// experiment from Config.Seed.
	runopts.RunOpts
	// OutDir, when non-empty, receives one artifact JSON per experiment
	// plus MANIFEST.json.
	OutDir string
	// CheckpointDir, when non-empty, receives one JSON file per completed
	// shard (written atomically as each shard finishes).
	CheckpointDir string
	// Resume consults existing checkpoint files in CheckpointDir and skips
	// shards whose checkpoints match the current config, loading their
	// stored results instead of recomputing.
	Resume bool
	// ShardLimit, when positive, stops the run after that many shard
	// executions (resumed shards do not count); RunSpec then returns
	// ErrInterrupted. Used to bound partial runs and by the kill/resume
	// tests.
	ShardLimit int
	// Progress, when non-nil, is called after every shard completes with
	// the experiment ID and completion counts. Calls may arrive from
	// worker goroutines in any order.
	Progress func(id string, done, total int)
	// Ctx, when non-nil, cancels the run: workers observe it at shard
	// boundaries and RunSpec returns Ctx.Err(). Checkpoints written before
	// the cancellation remain valid, so a later Resume continues from
	// them. A nil Ctx means run to completion.
	Ctx context.Context
}

// ErrInterrupted reports that Options.ShardLimit stopped a run before all
// shards completed; checkpoints for the finished shards are on disk when
// CheckpointDir is set.
var ErrInterrupted = errors.New("experiments: interrupted by shard limit")

// expSalt derives the per-experiment seed salt from the ID, so every
// experiment consumes an independent stream of Config.Seed. The hash itself
// (FNV-1a) lives in internal/rng as the library-wide stream-label idiom.
func expSalt(id string) uint64 { return rng.Salt(id) }

// checkpointFile is the on-disk schema of one completed shard.
type checkpointFile struct {
	Schema string          `json:"schema"`
	ID     string          `json:"id"`
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Config Config          `json:"config"`
	Result json.RawMessage `json:"result"`
}

const checkpointSchema = "wexp-experiments/checkpoint-v1"

func checkpointPath(dir, id string, index int) string {
	return filepath.Join(dir, id, fmt.Sprintf("shard-%04d.json", index))
}

// loadCheckpoint returns the stored shard result if a valid checkpoint for
// exactly this (experiment, index, key, config) exists.
func loadCheckpoint(dir, id string, index int, key string, cfg Config) (json.RawMessage, bool) {
	data, err := os.ReadFile(checkpointPath(dir, id, index))
	if err != nil {
		return nil, false
	}
	var cp checkpointFile
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, false
	}
	if cp.Schema != checkpointSchema || cp.ID != id || cp.Index != index ||
		cp.Key != key || cp.Config != cfg {
		return nil, false
	}
	return cp.Result, true
}

// writeCheckpoint persists one completed shard atomically (temp + rename),
// so a kill mid-write never leaves a truncated checkpoint behind.
func writeCheckpoint(dir, id string, index int, key string, cfg Config, result json.RawMessage) error {
	data, err := json.Marshal(checkpointFile{
		Schema: checkpointSchema,
		ID:     id,
		Index:  index,
		Key:    key,
		Config: cfg,
		Result: result,
	})
	if err != nil {
		return err
	}
	return writeFileAtomic(checkpointPath(dir, id, index), append(data, '\n'))
}

// RunSpec executes one experiment through the job engine: the shard list is
// fanned over a worker pool (each shard with its own pre-split RNG stream),
// outputs are merged in shard-index order, Reduce builds the Result, and an
// Artifact is assembled (and written, when Options.OutDir is set).
func RunSpec(spec *Spec, cfg Config, opt Options) (*Result, *Artifact, error) {
	shards, err := spec.Shards(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: shards: %w", spec.ID, err)
	}
	keys := make(map[string]bool, len(shards))
	for _, sh := range shards {
		if keys[sh.Key] {
			return nil, nil, fmt.Errorf("%s: duplicate shard key %q", spec.ID, sh.Key)
		}
		keys[sh.Key] = true
	}

	// Pre-split one stream per shard in index order — the only RNG
	// consumption outside the shards themselves, so a shard's stream
	// depends only on (Config.Seed, experiment ID, shard index), never on
	// which shards run, resume, or on how work is scheduled.
	parent := rng.New(cfg.Seed ^ expSalt(spec.ID))
	rngs := make([]*rng.RNG, len(shards))
	for i := range rngs {
		rngs[i] = parent.Split()
	}

	outs := make([]ShardResult, len(shards))
	done := make([]bool, len(shards))
	var pending []int
	for i, sh := range shards {
		if opt.Resume && opt.CheckpointDir != "" {
			if raw, ok := loadCheckpoint(opt.CheckpointDir, spec.ID, i, sh.Key, cfg); ok {
				outs[i] = ShardResult{Key: sh.Key, Result: raw}
				done[i] = true
				continue
			}
		}
		pending = append(pending, i)
	}

	var (
		completed atomic.Int64
		executed  atomic.Int64
		firstErr  atomic.Value
	)
	completed.Store(int64(len(shards) - len(pending)))
	runShard := func(i int) {
		sh := shards[i]
		val, err := sh.Run(cfg, rngs[i])
		if err != nil {
			firstErr.CompareAndSwap(nil, fmt.Errorf("%s shard %q: %w", spec.ID, sh.Key, err))
			return
		}
		raw, err := json.Marshal(val)
		if err != nil {
			firstErr.CompareAndSwap(nil, fmt.Errorf("%s shard %q: marshal: %w", spec.ID, sh.Key, err))
			return
		}
		if opt.CheckpointDir != "" {
			if err := writeCheckpoint(opt.CheckpointDir, spec.ID, i, sh.Key, cfg, raw); err != nil {
				firstErr.CompareAndSwap(nil, fmt.Errorf("%s shard %q: checkpoint: %w", spec.ID, sh.Key, err))
				return
			}
		}
		outs[i] = ShardResult{Key: sh.Key, Result: raw}
		done[i] = true
		if opt.Progress != nil {
			opt.Progress(spec.ID, int(completed.Add(1)), len(shards))
		} else {
			completed.Add(1)
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	limit := int64(opt.ShardLimit)
	// Hand out pending indices through an atomic cursor (the same pattern
	// as radio.MonteCarlo): no channels, no ordering dependence.
	var cursor atomic.Int64
	cursor.Store(-1)
	next := func() int {
		if firstErr.Load() != nil {
			return -1
		}
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			return -1
		}
		if limit > 0 && executed.Add(1) > limit {
			return -1
		}
		i := int(cursor.Add(1))
		if i >= len(pending) {
			return -1
		}
		return pending[i]
	}
	if workers <= 1 {
		for i := next(); i >= 0; i = next() {
			runShard(i)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := next(); i >= 0; i = next() {
					runShard(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := firstErr.Load(); err != nil {
		return nil, nil, err.(error)
	}
	if opt.Ctx != nil && opt.Ctx.Err() != nil {
		return nil, nil, opt.Ctx.Err()
	}
	for _, d := range done {
		if !d {
			return nil, nil, fmt.Errorf("%s: %d/%d shards complete: %w",
				spec.ID, int(completed.Load()), len(shards), ErrInterrupted)
		}
	}

	res := &Result{ID: spec.ID, Title: spec.Title, PaperRef: spec.PaperRef, Pass: true}
	if err := spec.Reduce(cfg, outs, res); err != nil {
		return nil, nil, fmt.Errorf("%s: reduce: %w", spec.ID, err)
	}
	art := newArtifact(spec, cfg, outs, res)
	if opt.OutDir != "" {
		if err := art.Write(opt.OutDir); err != nil {
			return res, art, err
		}
	}
	return res, art, nil
}

// RunReport is the outcome of a multi-experiment engine run.
type RunReport struct {
	Results   []*Result
	Artifacts []*Artifact
	Manifest  *Manifest
	Failures  int // experiments whose Result.Pass is false
}

// Run executes the given specs in order through the job engine and
// assembles the manifest. When Options.OutDir is set, every artifact plus
// MANIFEST.json is written there.
func Run(specs []*Spec, cfg Config, opt Options) (*RunReport, error) {
	rep := &RunReport{Manifest: newManifest(cfg)}
	for _, s := range specs {
		res, art, err := RunSpec(s, cfg, opt)
		if err != nil {
			return rep, err
		}
		rep.Results = append(rep.Results, res)
		rep.Artifacts = append(rep.Artifacts, art)
		if !res.Pass {
			rep.Failures++
		}
		if err := rep.Manifest.add(art); err != nil {
			return rep, err
		}
	}
	if opt.OutDir != "" {
		if err := rep.Manifest.Write(opt.OutDir); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// decodeShard unmarshals one shard output into out.
func decodeShard[T any](s ShardResult, out *T) error {
	if err := json.Unmarshal(s.Result, out); err != nil {
		return fmt.Errorf("shard %q: %w", s.Key, err)
	}
	return nil
}

// decodeAll unmarshals every shard output into T, preserving shard order.
func decodeAll[T any](shards []ShardResult) ([]T, error) {
	out := make([]T, len(shards))
	for i, s := range shards {
		if err := json.Unmarshal(s.Result, &out[i]); err != nil {
			return nil, fmt.Errorf("shard %q: %w", s.Key, err)
		}
	}
	return out, nil
}
