package experiments

import "testing"

func TestFullModeOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full parameter grids skipped in -short mode")
	}
	results, err := RunAll(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s FAILED:\n%s", r.ID, r.Text())
		}
	}
}
