package experiments

import (
	"math"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// E10CPlus regenerates the Introduction's motivating example and
// Observation 2.1: flooding on C⁺ deadlocks forever at 3 informed vertices,
// the spokesman schedule completes in O(1) rounds, and on a corpus of small
// graphs the exact expansions satisfy β ≥ βw ≥ βu.
func E10CPlus(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E10",
		Title:    "C⁺ flooding deadlock and expansion ordering",
		PaperRef: "Introduction; Observation 2.1",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0x10)
	sizes := []int{8, 16, 32, 64, 128}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	tb := table.New("Broadcast on C⁺ (clique size n, source s0)",
		"n", "flood informed", "flood done", "spokesman rounds", "decay rounds", "ok")
	for _, n := range sizes {
		g := gen.CPlus(n)
		flood, err := radio.Run(g, 0, radio.Flood{}, 200)
		if err != nil {
			return nil, err
		}
		spk, err := radio.Run(g, 0, &radio.Spokesman{}, 200)
		if err != nil {
			return nil, err
		}
		dec, err := radio.Run(g, 0, &radio.Decay{R: r}, 100000)
		if err != nil {
			return nil, err
		}
		ok := !flood.Completed && flood.InformedCount == 3 &&
			spk.Completed && spk.Rounds <= 10 && dec.Completed
		if !ok {
			res.failf("n=%d: flood=%+v spokesman=%+v", n, flood, spk)
		}
		tb.AddRow(n, flood.InformedCount, flood.Completed, spk.Rounds, dec.Rounds, ok)
	}
	res.Tables = append(res.Tables, tb)

	// Observation 2.1 on exact solvers.
	tb2 := table.New("Observation 2.1: β ≥ βw ≥ βu (exact, α = 1/2)",
		"graph", "β", "βw", "βu", "ok")
	corpus := []struct {
		name string
		g    *graph.Graph
	}{
		{"cplus-8", gen.CPlus(8)},
		{"cycle-10", gen.Cycle(10)},
		{"hypercube-3", gen.Hypercube(3)},
		{"grid-3x4", gen.Grid(3, 4)},
		{"barbell-6", gen.Barbell(6)},
	}
	for i := 0; i < cfg.trials(6, 2); i++ {
		corpus = append(corpus, struct {
			name string
			g    *graph.Graph
		}{sprintfName("gnp-12-#%d", i), gen.ErdosRenyi(12, 0.3, r)})
	}
	for _, in := range corpus {
		beta, betaW, betaU, err := expansion.Ordering(in.g, 0.5)
		if err != nil {
			return nil, err
		}
		ok := beta >= betaW-1e-9 && betaW >= betaU-1e-9
		if !ok {
			res.failf("%s: ordering violated (%g, %g, %g)", in.name, beta, betaW, betaU)
		}
		tb2.AddRow(in.name, beta, betaW, betaU, ok)
	}
	res.Tables = append(res.Tables, tb2)
	res.note("C⁺ is a good ordinary expander whose naive flooding never completes (the three informed vertices always collide); the wireless-expander schedule transmits a strict subset and finishes immediately — the definitional motivation for wireless expansion.")
	return res, nil
}

// E11LowArboricity regenerates the corollary of Theorem 1.1 for
// low-arboricity graphs: since arboricity ≥ min{∆/β, ∆β}, constant
// arboricity forces log(2·min{∆/β, ∆β}) = O(1), so the wireless expansion
// matches the ordinary expansion up to a constant. Measured: per sampled
// set S, the ratio (certified wireless cover)/|Γ⁻(S)| stays above a
// constant across growing sizes of planar/tree/toroidal families.
func E11LowArboricity(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E11",
		Title:    "Low-arboricity graphs: wireless ≈ ordinary expansion",
		PaperRef: "Theorem 1.1 corollary (arboricity); Section 2.1",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0x11)
	type inst struct {
		name string
		g    *graph.Graph
	}
	var instances []inst
	gridSizes := []int{8, 16, 32}
	if cfg.Quick {
		gridSizes = gridSizes[:2]
	}
	for _, sz := range gridSizes {
		instances = append(instances,
			inst{sprintfName("grid-%dx%d", sz, sz), gen.Grid(sz, sz)},
			inst{sprintfName("torus-%dx%d", sz, sz), gen.Torus(sz, sz)},
		)
	}
	instances = append(instances,
		inst{"tree-7", gen.CompleteBinaryTree(7)},
		inst{"tree-9", gen.CompleteBinaryTree(9)},
		inst{"randtree-256", gen.RandomTree(256, r)},
	)

	const floor = 0.2 // constant-factor match threshold
	tb := table.New("Per-set wireless/ordinary ratio on low-arboricity families",
		"graph", "n", "η bracket", "sets", "min ratio", "ok")
	for _, in := range instances {
		lo, hi := in.g.ArboricityEstimate()
		sets := expansion.SampleSets(in.g, 0.25, cfg.trials(20, 8), r)
		minRatio := math.Inf(1)
		for _, S := range sets {
			b, _ := graph.InducedBipartite(in.g, S)
			if b.NN() == 0 {
				continue
			}
			sel := spokesman.Best(b, cfg.trials(10, 4), r)
			ratio := float64(sel.Unique) / float64(b.NN())
			if ratio < minRatio {
				minRatio = ratio
			}
		}
		ok := minRatio >= floor
		if !ok {
			res.failf("%s: min wireless/ordinary ratio %g below constant floor %g",
				in.name, minRatio, floor)
		}
		tb.AddRow(in.name, in.g.N(), sprintfName("[%d,%d]", lo, hi),
			len(sets), minRatio, ok)
	}
	res.Tables = append(res.Tables, tb)

	// Section 2.1's arboricity inequality, checked where β is exactly
	// computable (n ≤ 16, α = 1/2). The paper phrases it as
	// η ≥ min{∆/β, ∆·β} alongside "the arboricity is the same (up to a
	// factor of 2) as the maximum average degree"; the form that holds for
	// irregular graphs is 2η ≥ min{∆/β, ∆β} (C⁺ itself is the witness:
	// min = 8 but η = 4). Since only the bracket [lo, hi] ∋ η is measured,
	// the necessary condition 2·hi ≥ m is asserted and the bracket printed.
	tb2 := table.New("Arboricity floor 2η ≥ min{∆/β, ∆β} (exact β, α = 1/2)",
		"graph", "∆", "β exact", "min{∆/β,∆β}", "η bracket", "ok")
	small := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-12", gen.Cycle(12)},
		{"grid-3x4", gen.Grid(3, 4)},
		{"hypercube-3", gen.Hypercube(3)},
		{"hypercube-4", gen.Hypercube(4)},
		{"complete-10", gen.Complete(10)},
		{"cplus-8", gen.CPlus(8)},
		{"tree-3", gen.CompleteBinaryTree(3)},
	}
	for _, in := range small {
		exact, err := expansion.ExactOrdinary(in.g, 0.5)
		if err != nil {
			return nil, err
		}
		m := graph.PaperArboricityFloor(in.g.MaxDegree(), exact.Value)
		lo, hi := in.g.ArboricityEstimate()
		ok := 2*float64(hi) >= m-1e-9
		if !ok {
			res.failf("%s: 2·degeneracy = %d below arboricity floor %g", in.name, 2*hi, m)
		}
		tb2.AddRow(in.name, in.g.MaxDegree(), exact.Value, m,
			sprintfName("[%d,%d]", lo, hi), ok)
	}
	res.Tables = append(res.Tables, tb2)
	res.note("On arboricity-O(1) families the measured wireless cover is a constant fraction of the full neighborhood — the paper's 'radio broadcast in low arboricity graphs can be done much more efficiently than previously known'.")
	res.note("The arboricity inequality uses the exact β: a sampled upper bound on β could spuriously inflate min{∆/β, ∆β} in the β < 1 regime.")
	return res, nil
}

// E12Deterministic verifies the appendix's deterministic floors
// per-instance: GreedyUnique ≥ γ/∆S (Lemma A.1), PartitionSelect ≥ γ/(8δ)
// (Lemma A.3), PartitionRecursive ≥ γ/(9·log 2δ) (Lemma A.13), and reports
// the DegreeClass constant (Corollaries A.6–A.7) for reference.
func E12Deterministic(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E12",
		Title:    "Deterministic appendix algorithms and their floors",
		PaperRef: "Appendix A: Lemmas A.1, A.3, A.13; Corollaries A.6–A.7; Figures 3–4",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0x12)
	type inst struct {
		name string
		b    *graph.Bipartite
	}
	var instances []inst
	core32, _ := badgraph.NewCore(32)
	instances = append(instances, inst{"core-32", core32.B})
	gb, _ := badgraph.NewGBad(24, 10, 6)
	instances = append(instances, inst{"gbad-24-10-6", gb.B})
	trials := cfg.trials(8, 3)
	for i := 0; i < trials; i++ {
		instances = append(instances,
			inst{sprintfName("bip-30x40-#%d", i), gen.RandomBipartite(30, 40, 0.12, r)})
	}
	if ec, err := badgraph.NewCoreExpandS(16, 2); err == nil {
		instances = append(instances, inst{"core-expandS-16x2", ec.B})
	}

	tb := table.New("Deterministic floors (values are |Γ¹_S(S')|)",
		"instance", "γ=|N|", "δ", "∆S",
		"greedy", "γ/∆S", "partition", "γ/8δ", "recursive", "γ/9log2δ", "deg-class", "A.7 scale", "ok")
	for _, in := range instances {
		b := in.b
		gamma := float64(b.NN())
		delta := math.Max(b.AvgDegN(), 1)
		dS := b.MaxDegS()
		greedy := spokesman.GreedyUnique(b).Unique
		part := spokesman.PartitionSelect(b).Unique
		rec := spokesman.PartitionRecursive(b).Unique
		dc := spokesman.DegreeClass(b, spokesman.OptimalC).Unique
		floorGreedy := gamma / float64(maxInt(dS, 1))
		floorPart := gamma / (8 * delta)
		floorRec := gamma / (9 * math.Max(bounds.Log2(4*delta), 1))
		a7 := bounds.CorollaryA7(maxInt(dS, b.MaxDegN()), 1) * gamma
		ok := float64(greedy) >= floorGreedy-1e-9 &&
			float64(part) >= floorPart-1e-9 &&
			float64(rec) >= floorRec-1e-9
		if !ok {
			res.failf("%s: floors violated (greedy %d/%g, partition %d/%g, recursive %d/%g)",
				in.name, greedy, floorGreedy, part, floorPart, rec, floorRec)
		}
		tb.AddRow(in.name, b.NN(), delta, dS,
			greedy, floorGreedy, part, floorPart, rec, floorRec, dc, a7, ok)
	}
	res.Tables = append(res.Tables, tb)

	// Lemma A.5's per-class claim, verified against the *exact* optimum on
	// small instances: for every degree class N^(i) (degrees in
	// [c^{i-1}, c^i)), some S' has |Γ¹_S(S')| ≥ |N^(i)|/(2(1+c)).
	tb2 := table.New("Lemma A.5 per-class floors (exact optimum, c = 3.59112)",
		"instance", "class i", "|N^(i)|", "floor", "exact opt", "ok")
	smallCorpus := []struct {
		name string
		b    *graph.Bipartite
	}{}
	for i := 0; i < cfg.trials(4, 2); i++ {
		smallCorpus = append(smallCorpus, struct {
			name string
			b    *graph.Bipartite
		}{sprintfName("bip-10x14-#%d", i), gen.RandomBipartite(10, 14, 0.3, r)})
	}
	coreA5, _ := badgraph.NewCore(8)
	smallCorpus = append(smallCorpus, struct {
		name string
		b    *graph.Bipartite
	}{"core-8", coreA5.B})
	const c = spokesman.OptimalC
	for _, in := range smallCorpus {
		opt, err := spokesman.Exhaustive(in.b)
		if err != nil {
			return nil, err
		}
		maxD := in.b.MaxDegN()
		lo := 1.0
		for i := 1; lo <= float64(maxD); i++ {
			hi := lo * c
			classSize := 0
			for v := 0; v < in.b.NN(); v++ {
				d := float64(in.b.DegN(v))
				if d >= lo && d < hi {
					classSize++
				}
			}
			if classSize > 0 {
				floor := float64(classSize) / (2 * (1 + c))
				ok := float64(opt.Unique) >= floor-1e-9
				if !ok {
					res.failf("%s class %d: optimum %d below A.5 floor %g",
						in.name, i, opt.Unique, floor)
				}
				tb2.AddRow(in.name, i, classSize, floor, opt.Unique, ok)
			}
			lo = hi
		}
	}
	res.Tables = append(res.Tables, tb2)
	res.note("Procedure Partition's invariants (P1)–(P4) and the greedy procedure's invariants (I1)–(I4) — the semantics of Figures 4 and 3 — are property-tested in the spokesman package on every step of random corpora.")
	res.note("The recursive floor is stated against log(4δ) (vs the paper's log(2δ)) to absorb integer rounding on small instances; constants sharpen as γ grows.")
	res.note("Lemma A.5 is checked against the exact spokesman optimum: the lemma asserts existence, and the optimum is the strongest witness.")
	return res, nil
}
