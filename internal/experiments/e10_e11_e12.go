package experiments

import (
	"fmt"
	"math"
	"strings"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// SpecE10 regenerates the Introduction's motivating example and
// Observation 2.1: flooding on C⁺ deadlocks forever at 3 informed vertices,
// the spokesman schedule completes in O(1) rounds, and on a corpus of small
// graphs the exact expansions satisfy β ≥ βw ≥ βu. One shard per clique
// size plus one per ordering-corpus graph.
var SpecE10 = &Spec{
	ID:       "E10",
	Title:    "C⁺ flooding deadlock and expansion ordering",
	PaperRef: "Introduction; Observation 2.1",
	Shards:   e10Shards,
	Reduce:   e10Reduce,
}

// e10Bcast is the per-clique-size shard result.
type e10Bcast struct {
	N             int  `json:"n"`
	FloodInformed int  `json:"flood_informed"`
	FloodDone     bool `json:"flood_done"`
	SpkRounds     int  `json:"spk_rounds"`
	SpkDone       bool `json:"spk_done"`
	DecRounds     int  `json:"dec_rounds"`
	DecDone       bool `json:"dec_done"`
}

// e10Order is the per-corpus-graph shard result for Observation 2.1.
type e10Order struct {
	Name  string  `json:"name"`
	Beta  float64 `json:"beta"`
	BetaW float64 `json:"beta_w"`
	BetaU float64 `json:"beta_u"`
}

func e10Sizes(cfg Config) []int {
	sizes := []int{8, 16, 32, 64, 128}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	return sizes
}

func e10CorpusNames(cfg Config) []string {
	names := []string{"cplus-8", "cycle-10", "hypercube-3", "grid-3x4", "barbell-6"}
	for i := 0; i < cfg.trials(6, 2); i++ {
		names = append(names, sprintfName("gnp-12-#%d", i))
	}
	return names
}

func e10BuildCorpus(name string, r *rng.RNG) (*graph.Graph, error) {
	switch {
	case name == "cplus-8":
		return gen.CPlus(8), nil
	case name == "cycle-10":
		return gen.Cycle(10), nil
	case name == "hypercube-3":
		return gen.Hypercube(3), nil
	case name == "grid-3x4":
		return gen.Grid(3, 4), nil
	case name == "barbell-6":
		return gen.Barbell(6), nil
	case strings.HasPrefix(name, "gnp-12-#"):
		return gen.ErdosRenyi(12, 0.3, r), nil
	default:
		return nil, fmt.Errorf("e10: unknown instance %q", name)
	}
}

func e10Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, n := range e10Sizes(cfg) {
		n := n
		shards = append(shards, Shard{
			Key: sprintfName("bcast/n=%d", n),
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g := gen.CPlus(n)
				flood, err := radio.Run(g, 0, radio.Flood{}, 200)
				if err != nil {
					return nil, err
				}
				spk, err := radio.Run(g, 0, &radio.Spokesman{}, 200)
				if err != nil {
					return nil, err
				}
				dec, err := radio.Run(g, 0, &radio.Decay{R: r}, 100000)
				if err != nil {
					return nil, err
				}
				return e10Bcast{
					N:             n,
					FloodInformed: flood.InformedCount,
					FloodDone:     flood.Completed,
					SpkRounds:     spk.Rounds,
					SpkDone:       spk.Completed,
					DecRounds:     dec.Rounds,
					DecDone:       dec.Completed,
				}, nil
			},
		})
	}
	for _, name := range e10CorpusNames(cfg) {
		name := name
		shards = append(shards, Shard{
			Key: "order/" + name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g, err := e10BuildCorpus(name, r)
				if err != nil {
					return nil, err
				}
				beta, betaW, betaU, err := expansion.Ordering(g, 0.5)
				if err != nil {
					return nil, err
				}
				return e10Order{Name: name, Beta: beta, BetaW: betaW, BetaU: betaU}, nil
			},
		})
	}
	return shards, nil
}

func e10Reduce(cfg Config, shards []ShardResult, res *Result) error {
	nBcast := len(e10Sizes(cfg))
	tb := table.New("Broadcast on C⁺ (clique size n, source s0)",
		"n", "flood informed", "flood done", "spokesman rounds", "decay rounds", "ok")
	bcast, err := decodeAll[e10Bcast](shards[:nBcast])
	if err != nil {
		return err
	}
	for _, p := range bcast {
		ok := !p.FloodDone && p.FloodInformed == 3 &&
			p.SpkDone && p.SpkRounds <= 10 && p.DecDone
		if !ok {
			res.failf("n=%d: flood informed=%d done=%v, spokesman rounds=%d done=%v",
				p.N, p.FloodInformed, p.FloodDone, p.SpkRounds, p.SpkDone)
		}
		tb.AddRow(p.N, p.FloodInformed, p.FloodDone, p.SpkRounds, p.DecRounds, ok)
	}
	res.Tables = append(res.Tables, tb)

	// Observation 2.1 on exact solvers.
	tb2 := table.New("Observation 2.1: β ≥ βw ≥ βu (exact, α = 1/2)",
		"graph", "β", "βw", "βu", "ok")
	order, err := decodeAll[e10Order](shards[nBcast:])
	if err != nil {
		return err
	}
	for _, p := range order {
		ok := p.Beta >= p.BetaW-1e-9 && p.BetaW >= p.BetaU-1e-9
		if !ok {
			res.failf("%s: ordering violated (%g, %g, %g)", p.Name, p.Beta, p.BetaW, p.BetaU)
		}
		tb2.AddRow(p.Name, p.Beta, p.BetaW, p.BetaU, ok)
	}
	res.Tables = append(res.Tables, tb2)
	res.note("C⁺ is a good ordinary expander whose naive flooding never completes (the three informed vertices always collide); the wireless-expander schedule transmits a strict subset and finishes immediately — the definitional motivation for wireless expansion.")
	return nil
}

// SpecE11 regenerates the corollary of Theorem 1.1 for low-arboricity
// graphs: since arboricity ≥ min{∆/β, ∆β}, constant arboricity forces
// log(2·min{∆/β, ∆β}) = O(1), so the wireless expansion matches the
// ordinary expansion up to a constant. One shard per family instance plus
// one per exact-β small graph.
var SpecE11 = &Spec{
	ID:       "E11",
	Title:    "Low-arboricity graphs: wireless ≈ ordinary expansion",
	PaperRef: "Theorem 1.1 corollary (arboricity); Section 2.1",
	Shards:   e11Shards,
	Reduce:   e11Reduce,
}

// e11Ratio is the per-family-instance shard result.
type e11Ratio struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	EtaLo    int     `json:"eta_lo"`
	EtaHi    int     `json:"eta_hi"`
	Sets     int     `json:"sets"`
	Contrib  int     `json:"contrib"` // sets with a nonempty neighborhood
	MinRatio float64 `json:"min_ratio"`
}

// e11Exact is the per-small-graph shard result for the arboricity floor.
type e11Exact struct {
	Name   string  `json:"name"`
	MaxDeg int     `json:"max_deg"`
	Beta   float64 `json:"beta"`
	Floor  float64 `json:"floor"`
	EtaLo  int     `json:"eta_lo"`
	EtaHi  int     `json:"eta_hi"`
}

// e11Instance names one low-arboricity family member.
type e11Instance struct {
	name string
	kind string
	sz   int
}

func e11Instances(cfg Config) []e11Instance {
	gridSizes := []int{8, 16, 32}
	if cfg.Quick {
		gridSizes = gridSizes[:2]
	}
	var out []e11Instance
	for _, sz := range gridSizes {
		out = append(out,
			e11Instance{sprintfName("grid-%dx%d", sz, sz), "grid", sz},
			e11Instance{sprintfName("torus-%dx%d", sz, sz), "torus", sz})
	}
	return append(out,
		e11Instance{"tree-7", "tree", 7},
		e11Instance{"tree-9", "tree", 9},
		e11Instance{"randtree-256", "randtree", 256})
}

func (in e11Instance) build(r *rng.RNG) *graph.Graph {
	switch in.kind {
	case "grid":
		return gen.Grid(in.sz, in.sz)
	case "torus":
		return gen.Torus(in.sz, in.sz)
	case "tree":
		return gen.CompleteBinaryTree(in.sz)
	default:
		return gen.RandomTree(in.sz, r)
	}
}

var e11Small = []string{
	"cycle-12", "grid-3x4", "hypercube-3", "hypercube-4",
	"complete-10", "cplus-8", "tree-3",
}

func e11BuildSmall(name string) (*graph.Graph, error) {
	switch name {
	case "cycle-12":
		return gen.Cycle(12), nil
	case "grid-3x4":
		return gen.Grid(3, 4), nil
	case "hypercube-3":
		return gen.Hypercube(3), nil
	case "hypercube-4":
		return gen.Hypercube(4), nil
	case "complete-10":
		return gen.Complete(10), nil
	case "cplus-8":
		return gen.CPlus(8), nil
	case "tree-3":
		return gen.CompleteBinaryTree(3), nil
	default:
		return nil, fmt.Errorf("e11: unknown instance %q", name)
	}
}

func e11Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, in := range e11Instances(cfg) {
		in := in
		shards = append(shards, Shard{
			Key: "ratio/" + in.name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g := in.build(r)
				lo, hi := g.ArboricityEstimate()
				sets := expansion.SampleSets(g, 0.25, cfg.trials(20, 8), r)
				pt := e11Ratio{Name: in.name, N: g.N(), EtaLo: lo, EtaHi: hi, Sets: len(sets)}
				minRatio := math.Inf(1)
				for _, S := range sets {
					b, _ := graph.InducedBipartite(g, S)
					if b.NN() == 0 {
						continue
					}
					pt.Contrib++
					sel := spokesman.Best(b, cfg.trials(10, 4), r)
					if ratio := float64(sel.Unique) / float64(b.NN()); ratio < minRatio {
						minRatio = ratio
					}
				}
				if pt.Contrib > 0 {
					pt.MinRatio = minRatio
				}
				return pt, nil
			},
		})
	}
	for _, name := range e11Small {
		name := name
		shards = append(shards, Shard{
			Key: "exact/" + name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g, err := e11BuildSmall(name)
				if err != nil {
					return nil, err
				}
				exact, err := expansion.ExactOrdinary(g, 0.5)
				if err != nil {
					return nil, err
				}
				lo, hi := g.ArboricityEstimate()
				return e11Exact{
					Name:   name,
					MaxDeg: g.MaxDegree(),
					Beta:   exact.Value,
					Floor:  graph.PaperArboricityFloor(g.MaxDegree(), exact.Value),
					EtaLo:  lo,
					EtaHi:  hi,
				}, nil
			},
		})
	}
	return shards, nil
}

func e11Reduce(cfg Config, shards []ShardResult, res *Result) error {
	nRatio := len(e11Instances(cfg))
	const floor = 0.2 // constant-factor match threshold
	tb := table.New("Per-set wireless/ordinary ratio on low-arboricity families",
		"graph", "n", "η bracket", "sets", "min ratio", "ok")
	ratios, err := decodeAll[e11Ratio](shards[:nRatio])
	if err != nil {
		return err
	}
	for _, p := range ratios {
		if p.Contrib == 0 {
			res.failf("%s: no sampled set had a nonempty neighborhood", p.Name)
			continue
		}
		ok := p.MinRatio >= floor
		if !ok {
			res.failf("%s: min wireless/ordinary ratio %g below constant floor %g",
				p.Name, p.MinRatio, floor)
		}
		tb.AddRow(p.Name, p.N, sprintfName("[%d,%d]", p.EtaLo, p.EtaHi),
			p.Sets, p.MinRatio, ok)
	}
	res.Tables = append(res.Tables, tb)

	// Section 2.1's arboricity inequality, checked where β is exactly
	// computable (n ≤ 16, α = 1/2). The paper phrases it as
	// η ≥ min{∆/β, ∆·β} alongside "the arboricity is the same (up to a
	// factor of 2) as the maximum average degree"; the form that holds for
	// irregular graphs is 2η ≥ min{∆/β, ∆β} (C⁺ itself is the witness:
	// min = 8 but η = 4). Since only the bracket [lo, hi] ∋ η is measured,
	// the necessary condition 2·hi ≥ m is asserted and the bracket printed.
	tb2 := table.New("Arboricity floor 2η ≥ min{∆/β, ∆β} (exact β, α = 1/2)",
		"graph", "∆", "β exact", "min{∆/β,∆β}", "η bracket", "ok")
	exacts, err := decodeAll[e11Exact](shards[nRatio:])
	if err != nil {
		return err
	}
	for _, p := range exacts {
		ok := 2*float64(p.EtaHi) >= p.Floor-1e-9
		if !ok {
			res.failf("%s: 2·degeneracy = %d below arboricity floor %g", p.Name, 2*p.EtaHi, p.Floor)
		}
		tb2.AddRow(p.Name, p.MaxDeg, p.Beta, p.Floor,
			sprintfName("[%d,%d]", p.EtaLo, p.EtaHi), ok)
	}
	res.Tables = append(res.Tables, tb2)
	res.note("On arboricity-O(1) families the measured wireless cover is a constant fraction of the full neighborhood — the paper's 'radio broadcast in low arboricity graphs can be done much more efficiently than previously known'.")
	res.note("The arboricity inequality uses the exact β: a sampled upper bound on β could spuriously inflate min{∆/β, ∆β} in the β < 1 regime.")
	return nil
}

// SpecE12 verifies the appendix's deterministic floors per-instance:
// GreedyUnique ≥ γ/∆S (Lemma A.1), PartitionSelect ≥ γ/(8δ) (Lemma A.3),
// PartitionRecursive ≥ γ/(9·log 2δ) (Lemma A.13), and reports the
// DegreeClass constant (Corollaries A.6–A.7) for reference. One shard per
// portfolio instance plus one per Lemma A.5 exact-optimum instance.
var SpecE12 = &Spec{
	ID:       "E12",
	Title:    "Deterministic appendix algorithms and their floors",
	PaperRef: "Appendix A: Lemmas A.1, A.3, A.13; Corollaries A.6–A.7; Figures 3–4",
	Shards:   e12Shards,
	Reduce:   e12Reduce,
}

// e12Point is the per-instance shard result for the floor table.
type e12Point struct {
	Name   string  `json:"name"`
	Skip   bool    `json:"skip,omitempty"`
	NN     int     `json:"nn"`
	Delta  float64 `json:"delta"`
	DS     int     `json:"ds"`
	Greedy int     `json:"greedy"`
	Part   int     `json:"partition"`
	Rec    int     `json:"recursive"`
	DC     int     `json:"deg_class"`
	MaxDeg int     `json:"max_deg"`
}

// e12Class is one populated degree class of an A.5 instance.
type e12Class struct {
	I    int `json:"i"`
	Size int `json:"size"`
}

// e12A5 is the per-instance shard result for the Lemma A.5 table.
type e12A5 struct {
	Name    string     `json:"name"`
	Opt     int        `json:"opt"`
	Classes []e12Class `json:"classes"`
}

func e12Names(cfg Config) []string {
	names := []string{"core-32", "gbad-24-10-6"}
	for i := 0; i < cfg.trials(8, 3); i++ {
		names = append(names, sprintfName("bip-30x40-#%d", i))
	}
	return append(names, "core-expandS-16x2")
}

func e12Build(name string, r *rng.RNG) (*graph.Bipartite, error) {
	switch name {
	case "core-32":
		c, err := badgraph.NewCore(32)
		if err != nil {
			return nil, err
		}
		return c.B, nil
	case "gbad-24-10-6":
		g, err := badgraph.NewGBad(24, 10, 6)
		if err != nil {
			return nil, err
		}
		return g.B, nil
	case "core-expandS-16x2":
		ec, err := badgraph.NewCoreExpandS(16, 2)
		if err != nil {
			return nil, err
		}
		return ec.B, nil
	default:
		if !strings.HasPrefix(name, "bip-30x40-#") {
			return nil, fmt.Errorf("e12: unknown instance %q", name)
		}
		return gen.RandomBipartite(30, 40, 0.12, r), nil
	}
}

func e12A5Names(cfg Config) []string {
	var names []string
	for i := 0; i < cfg.trials(4, 2); i++ {
		names = append(names, sprintfName("bip-10x14-#%d", i))
	}
	return append(names, "core-8")
}

func e12Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, name := range e12Names(cfg) {
		name := name
		shards = append(shards, Shard{
			Key: "floors/" + name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				b, err := e12Build(name, r)
				if err != nil {
					if name != "core-expandS-16x2" {
						return nil, err
					}
					// The expanded-core construction can fail on degenerate
					// parameters; drop it like the legacy driver did.
					return e12Point{Name: name, Skip: true}, nil
				}
				return e12Point{
					Name:   name,
					NN:     b.NN(),
					Delta:  math.Max(b.AvgDegN(), 1),
					DS:     b.MaxDegS(),
					Greedy: spokesman.GreedyUnique(b).Unique,
					Part:   spokesman.PartitionSelect(b).Unique,
					Rec:    spokesman.PartitionRecursive(b).Unique,
					DC:     spokesman.DegreeClass(b, spokesman.OptimalC).Unique,
					MaxDeg: b.MaxDegN(),
				}, nil
			},
		})
	}
	for _, name := range e12A5Names(cfg) {
		name := name
		shards = append(shards, Shard{
			Key: "a5/" + name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				var b *graph.Bipartite
				if name == "core-8" {
					c, err := badgraph.NewCore(8)
					if err != nil {
						return nil, err
					}
					b = c.B
				} else {
					b = gen.RandomBipartite(10, 14, 0.3, r)
				}
				opt, err := spokesman.Exhaustive(b)
				if err != nil {
					return nil, err
				}
				pt := e12A5{Name: name, Opt: opt.Unique}
				const c = spokesman.OptimalC
				maxD := b.MaxDegN()
				lo := 1.0
				for i := 1; lo <= float64(maxD); i++ {
					hi := lo * c
					classSize := 0
					for v := 0; v < b.NN(); v++ {
						d := float64(b.DegN(v))
						if d >= lo && d < hi {
							classSize++
						}
					}
					if classSize > 0 {
						pt.Classes = append(pt.Classes, e12Class{I: i, Size: classSize})
					}
					lo = hi
				}
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e12Reduce(cfg Config, shards []ShardResult, res *Result) error {
	nFloors := len(e12Names(cfg))
	tb := table.New("Deterministic floors (values are |Γ¹_S(S')|)",
		"instance", "γ=|N|", "δ", "∆S",
		"greedy", "γ/∆S", "partition", "γ/8δ", "recursive", "γ/9log2δ", "deg-class", "A.7 scale", "ok")
	points, err := decodeAll[e12Point](shards[:nFloors])
	if err != nil {
		return err
	}
	for _, p := range points {
		if p.Skip {
			continue
		}
		gamma := float64(p.NN)
		floorGreedy := gamma / float64(maxInt(p.DS, 1))
		floorPart := gamma / (8 * p.Delta)
		floorRec := gamma / (9 * math.Max(bounds.Log2(4*p.Delta), 1))
		a7 := bounds.CorollaryA7(maxInt(p.DS, p.MaxDeg), 1) * gamma
		ok := float64(p.Greedy) >= floorGreedy-1e-9 &&
			float64(p.Part) >= floorPart-1e-9 &&
			float64(p.Rec) >= floorRec-1e-9
		if !ok {
			res.failf("%s: floors violated (greedy %d/%g, partition %d/%g, recursive %d/%g)",
				p.Name, p.Greedy, floorGreedy, p.Part, floorPart, p.Rec, floorRec)
		}
		tb.AddRow(p.Name, p.NN, p.Delta, p.DS,
			p.Greedy, floorGreedy, p.Part, floorPart, p.Rec, floorRec, p.DC, a7, ok)
	}
	res.Tables = append(res.Tables, tb)

	// Lemma A.5's per-class claim, verified against the *exact* optimum on
	// small instances: for every degree class N^(i) (degrees in
	// [c^{i-1}, c^i)), some S' has |Γ¹_S(S')| ≥ |N^(i)|/(2(1+c)).
	tb2 := table.New("Lemma A.5 per-class floors (exact optimum, c = 3.59112)",
		"instance", "class i", "|N^(i)|", "floor", "exact opt", "ok")
	a5s, err := decodeAll[e12A5](shards[nFloors:])
	if err != nil {
		return err
	}
	const c = spokesman.OptimalC
	for _, p := range a5s {
		for _, cl := range p.Classes {
			floor := float64(cl.Size) / (2 * (1 + c))
			ok := float64(p.Opt) >= floor-1e-9
			if !ok {
				res.failf("%s class %d: optimum %d below A.5 floor %g",
					p.Name, cl.I, p.Opt, floor)
			}
			tb2.AddRow(p.Name, cl.I, cl.Size, floor, p.Opt, ok)
		}
	}
	res.Tables = append(res.Tables, tb2)
	res.note("Procedure Partition's invariants (P1)–(P4) and the greedy procedure's invariants (I1)–(I4) — the semantics of Figures 4 and 3 — are property-tested in the spokesman package on every step of random corpora.")
	res.note("The recursive floor is stated against log(4δ) (vs the paper's log(2δ)) to absorb integer rounding on small instances; constants sharpen as γ grows.")
	res.note("Lemma A.5 is checked against the exact spokesman optimum: the lemma asserts existence, and the optimum is the strongest witness.")
	return nil
}
