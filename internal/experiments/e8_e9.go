package experiments

import (
	"fmt"
	"math"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/runopts"
	"wexp/internal/spokesman"
	"wexp/internal/stats"
	"wexp/internal/table"
)

// SpecE8 compares every spokesman-election algorithm on a corpus of
// bipartite instances against the Chlamtac–Weinstein guarantee |N|/log|S|
// and the paper's sharper |N|/log(2·min{δN, δS}) scale (Section 4.2.1),
// plus the exact optimum where |S| permits. One shard per instance.
var SpecE8 = &Spec{
	ID:       "E8",
	Title:    "Spokesman election: algorithms vs bounds",
	PaperRef: "Section 4.2.1; [7]",
	Shards:   e8Shards,
	Reduce:   e8Reduce,
}

// e8Point is the per-instance shard result; Skip marks instances whose
// generation failed (dropped from the table, as the legacy driver did).
type e8Point struct {
	Name   string   `json:"name"`
	Skip   bool     `json:"skip,omitempty"`
	S      int      `json:"s"`
	N      int      `json:"n"`
	CW     float64  `json:"cw_bound"`
	Paper  float64  `json:"paper_scale"`
	Greedy int      `json:"greedy"`
	Part   int      `json:"partition"`
	Rec    int      `json:"recursive"`
	DC     int      `json:"deg_class"`
	Dec    int      `json:"decay"`
	Exact  *float64 `json:"exact,omitempty"`
}

func e8Names(cfg Config) []string {
	names := []string{"core-16"}
	if !cfg.Quick {
		names = append(names, "core-64")
	}
	return append(names,
		"gbad-16-8-4", "rand-bip-20x30", "rand-bip-unbal",
		"rand-reg-24x48-d5", "core-expandN-8x3")
}

func e8Build(name string, r *rng.RNG) (*graph.Bipartite, error) {
	switch name {
	case "core-16":
		c, err := badgraph.NewCore(16)
		if err != nil {
			return nil, err
		}
		return c.B, nil
	case "core-64":
		c, err := badgraph.NewCore(64)
		if err != nil {
			return nil, err
		}
		return c.B, nil
	case "gbad-16-8-4":
		g, err := badgraph.NewGBad(16, 8, 4)
		if err != nil {
			return nil, err
		}
		return g.B, nil
	case "rand-bip-20x30":
		return gen.RandomBipartite(20, 30, 0.15, r), nil
	case "rand-bip-unbal":
		return gen.RandomBipartite(60, 20, 0.1, r), nil
	case "rand-reg-24x48-d5":
		return gen.RandomBipartiteRegular(24, 48, 5, r)
	case "core-expandN-8x3":
		ec, err := badgraph.NewCoreExpandN(8, 3)
		if err != nil {
			return nil, err
		}
		return ec.B, nil
	default:
		return nil, fmt.Errorf("e8: unknown instance %q", name)
	}
}

func e8Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, name := range e8Names(cfg) {
		name := name
		shards = append(shards, Shard{
			Key: name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				b, err := e8Build(name, r)
				if err != nil {
					if name != "rand-reg-24x48-d5" {
						return nil, err
					}
					// Random regular-bipartite generation can fail (retries
					// exhausted); drop the instance like the legacy driver
					// did rather than failing the experiment.
					return e8Point{Name: name, Skip: true}, nil
				}
				pt := e8Point{
					Name:   name,
					S:      b.NS(),
					N:      b.NN(),
					CW:     bounds.ChlamtacWeinstein(b.NN(), b.NS()),
					Paper:  bounds.PaperSpokesman(b.NN(), b.AvgDegN(), b.AvgDegS()),
					Greedy: spokesman.GreedyUnique(b).Unique,
					Part:   spokesman.PartitionSelect(b).Unique,
					Rec:    spokesman.PartitionRecursive(b).Unique,
					DC:     spokesman.DegreeClass(b, spokesman.OptimalC).Unique,
					Dec:    spokesman.Decay(b, cfg.trials(16, 6), r).Unique,
				}
				if b.NS() <= spokesman.MaxExhaustiveS {
					if sel, err := spokesman.Exhaustive(b); err == nil {
						exact := float64(sel.Unique)
						pt.Exact = &exact
					}
				}
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e8Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e8Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("Algorithm comparison (|Γ¹_S(S')| per instance)",
		"instance", "|S|", "|N|", "CW bound", "paper scale",
		"greedy", "partition", "recursive", "deg-class", "decay", "best", "exact", "ok")
	for _, p := range points {
		if p.Skip {
			continue
		}
		best := maxInt(p.Greedy, maxInt(p.Part, maxInt(p.Rec, maxInt(p.DC, p.Dec))))
		exact := math.NaN()
		if p.Exact != nil {
			exact = *p.Exact
			if float64(best) > exact {
				res.failf("%s: algorithm beat the exact optimum!?", p.Name)
			}
		}
		// Pass criterion: best must reach a 1/9 fraction of the paper scale
		// (the deterministic Lemma A.13 constant); the CW bound is reported
		// for comparison only — on dense instances it can exceed what any
		// certified selection attains.
		ok := float64(best) >= p.Paper/9-1e-9
		if !ok {
			res.failf("%s: best=%d below paper/9=%g (CW=%g)", p.Name, best, p.Paper/9, p.CW)
		}
		tb.AddRow(p.Name, p.S, p.N, p.CW, p.Paper,
			p.Greedy, p.Part, p.Rec, p.DC, p.Dec, best, exact, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("The paper's scale |N|/log(2·min{δN,δS}) refines CW's |N|/log|S|: on sparse instances (min degree ≪ |S|) the paper guarantee is visibly larger, and the measured best selection always reaches the Lemma A.13 fraction of it.")
	res.note("The decay sampler (Lemma 4.2) is the paper's 'extremely simple' randomized solution; the table shows it is competitive with the deterministic portfolio.")
	return nil
}

// SpecE9 regenerates Section 5: on the chained core graph, broadcast time
// grows as Ω(D·log(n/D)). The grid shards run the Decay protocol of [5] to
// completion via the Monte-Carlo engine; three extra shards measure the
// Corollary 5.1 single-copy floor, protocol universality, and the per-hop
// decomposition of Observation 5.2. Reduce fits mean rounds against
// D·log2(n/D) across the grid shards.
var SpecE9 = &Spec{
	ID:       "E9",
	Title:    "Broadcast lower bound Ω(D·log(n/D))",
	PaperRef: "Section 5, Corollaries 5.1–5.2",
	Shards:   e9Shards,
	Reduce:   e9Reduce,
}

// e9GridPoint is the per-(hops, s) shard result.
type e9GridPoint struct {
	Hops      int     `json:"hops"`
	S         int     `json:"s"`
	Err       string  `json:"err,omitempty"`
	N         int     `json:"n,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	Mean      float64 `json:"mean_rounds,omitempty"`
	MinRounds float64 `json:"min_rounds,omitempty"`
	Floor     float64 `json:"floor,omitempty"`
	Valid     int     `json:"valid,omitempty"`
}

// e9HalfN is the Corollary 5.1 shard result.
type e9HalfN struct {
	S         int     `json:"s"`
	MinRounds float64 `json:"min_rounds"`
	Floor     float64 `json:"floor"`
}

// e9ProtoRow is one protocol of the universality shard.
type e9ProtoRow struct {
	Name      string `json:"name"`
	Rounds    int    `json:"rounds"`
	Completed bool   `json:"completed"`
}

// e9Universality is the every-protocol-obeys-the-floor shard result.
type e9Universality struct {
	Hops   int          `json:"hops"`
	S      int          `json:"s"`
	Floor  float64      `json:"floor"`
	Protos []e9ProtoRow `json:"protos"`
}

// e9HopRow is one hop of the per-hop decomposition shard.
type e9HopRow struct {
	Hop        int  `json:"hop"`
	InformedAt int  `json:"informed_at"`
	Ri         int  `json:"ri"`
	Mono       bool `json:"mono"`
}

// e9PerHop is the Observation 5.2 shard result.
type e9PerHop struct {
	S       int        `json:"s"`
	Hops    int        `json:"hops"`
	Rows    []e9HopRow `json:"rows"`
	Missing []int      `json:"missing,omitempty"` // relays never informed
}

func e9Grid(cfg Config) []struct{ hops, s int } {
	grid := []struct{ hops, s int }{
		{2, 16}, {4, 16}, {8, 16}, {4, 32}, {8, 32}, {16, 32}, {8, 64},
	}
	if cfg.Quick {
		grid = []struct{ hops, s int }{{2, 8}, {4, 8}, {4, 16}}
	}
	return grid
}

func e9Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, p := range e9Grid(cfg) {
		p := p
		shards = append(shards, Shard{
			Key: sprintfName("chain/h%d-s%d", p.hops, p.s),
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				pt := e9GridPoint{Hops: p.hops, S: p.s}
				// One chain instance per grid point; the Monte-Carlo engine
				// fans the decay trials over its own deterministic worker
				// pool (adjacency rows built once, results independent of
				// GOMAXPROCS).
				ch, err := badgraph.NewChain(p.hops, p.s, r)
				if err != nil {
					pt.Err = err.Error()
					return pt, nil
				}
				trials := cfg.trials(5, 2)
				mc, err := radio.MonteCarlo(ch.G, ch.Root,
					func(tr *rng.RNG) radio.Protocol { return &radio.Decay{R: tr} },
					trials, radio.Options{RunOpts: runopts.RunOpts{Seed: r.Uint64()}, MaxRounds: 5_000_000, TraceRounds: -1})
				if err != nil {
					pt.Err = err.Error()
					return pt, nil
				}
				var valid []float64
				for _, t := range mc.PerTrial {
					if t.Completed {
						valid = append(valid, float64(t.Rounds))
					}
				}
				pt.Valid = len(valid)
				if len(valid) == 0 {
					return pt, nil
				}
				n := ch.N()
				d := 2 * p.hops // diameter scale: the paper sets D/2 copies
				pt.N = n
				pt.Scale = bounds.BroadcastLower(d, n)
				pt.Mean = stats.Mean(valid)
				pt.MinRounds = stats.Min(valid)
				pt.Floor = float64(p.hops) * bounds.Log2(2*float64(p.s)) / 4
				return pt, nil
			},
		})
	}

	shards = append(shards, Shard{
		Key: "halfn",
		Run: func(cfg Config, r *rng.RNG) (any, error) {
			// Corollary 5.1 on a single copy: rounds to inform half of N
			// from a fully-informed S ∪ {root}.
			s := 32
			if cfg.Quick {
				s = 16
			}
			halfRounds, err := roundsToHalfN(s, cfg.trials(5, 2), r)
			if err != nil {
				return nil, err
			}
			return e9HalfN{
				S:         s,
				MinRounds: stats.Min(halfRounds),
				Floor:     bounds.Log2(2*float64(s))/4 + 1,
			}, nil
		},
	})

	shards = append(shards, Shard{
		Key: "universality",
		Run: func(cfg Config, r *rng.RNG) (any, error) {
			// The lower bound holds for *every* protocol. Check a spread of
			// protocol families — adaptive randomized (decay, prob-flood)
			// and oblivious fixed schedules — on one chain instance.
			hops, s := 4, 16
			ch, err := badgraph.NewChain(hops, s, r)
			if err != nil {
				return nil, err
			}
			out := e9Universality{
				Hops:  hops,
				S:     s,
				Floor: float64(hops) * bounds.Log2(2*float64(s)) / 4,
			}
			protos := []radio.Protocol{
				&radio.Decay{R: r.Split()},
				&radio.ProbFlood{P: 0.25, R: r.Split()},
			}
			if sched, err := radio.NewRandomSchedule(ch.N(), 64, 1.0/8, r.Split()); err == nil {
				protos = append(protos, sched)
			}
			if sched, err := radio.NewRandomSchedule(ch.N(), 64, 1.0/32, r.Split()); err == nil {
				protos = append(protos, sched)
			}
			if sched, err := radio.NewDecaySchedule(ch.N(), 32, r.Split()); err == nil {
				protos = append(protos, sched)
			}
			for _, p := range protos {
				run, err := radio.Run(ch.G, ch.Root, p, 400000)
				if err != nil {
					return nil, err
				}
				out.Protos = append(out.Protos, e9ProtoRow{
					Name: p.Name(), Rounds: run.Rounds, Completed: run.Completed,
				})
			}
			return out, nil
		},
	})

	shards = append(shards, Shard{
		Key: "perhop",
		Run: func(cfg Config, r *rng.RNG) (any, error) {
			// Per-hop decomposition (Observation 5.2): the message reaches
			// rt_{i−1} before rt_i, and R = ΣᵢRᵢ with each Rᵢ = Ω(log(n/D))
			// in expectation.
			s := 32
			if cfg.Quick {
				s = 16
			}
			const hops = 6
			ch, err := badgraph.NewChain(hops, s, r)
			if err != nil {
				return nil, err
			}
			net, err := radio.RunNetwork(ch.G, ch.Root, &radio.Decay{R: r.Split()}, 5_000_000)
			if err != nil {
				return nil, err
			}
			out := e9PerHop{S: s, Hops: hops}
			prev := 0
			for i, rt := range ch.RT {
				at := net.InformedAt(rt)
				if at < 0 {
					out.Missing = append(out.Missing, i)
					continue
				}
				out.Rows = append(out.Rows, e9HopRow{
					Hop: i + 1, InformedAt: at, Ri: at - prev,
					Mono: at > prev || i == 0,
				})
				prev = at
			}
			return out, nil
		},
	})
	return shards, nil
}

func e9Reduce(cfg Config, shards []ShardResult, res *Result) error {
	byKey := map[string]ShardResult{}
	for _, s := range shards {
		byKey[s.Key] = s
	}
	tb := table.New("Decay-protocol broadcast time on the chain",
		"hops", "s", "n", "D·log2(n/D)", "mean rounds", "min rounds", "floor hops·log(2s)/4", "ok")
	var xs, ys []float64
	for _, s := range shards[:len(e9Grid(cfg))] {
		var p e9GridPoint
		if err := decodeShard(s, &p); err != nil {
			return err
		}
		if p.Err != "" {
			res.failf("hops=%d s=%d: %s", p.Hops, p.S, p.Err)
			continue
		}
		if p.Valid == 0 {
			res.failf("hops=%d s=%d: no completed runs", p.Hops, p.S)
			continue
		}
		ok := p.MinRounds >= p.Floor
		if !ok {
			res.failf("hops=%d s=%d: min rounds %g below floor %g", p.Hops, p.S, p.MinRounds, p.Floor)
		}
		tb.AddRow(p.Hops, p.S, p.N, p.Scale, p.Mean, p.MinRounds, p.Floor, ok)
		xs = append(xs, p.Scale)
		ys = append(ys, p.Mean)
	}
	res.Tables = append(res.Tables, tb)
	if len(xs) >= 3 {
		fit := stats.LinearFit(xs, ys)
		corr := stats.Pearson(xs, ys)
		res.note("Scaling fit: rounds ≈ %.3g·(D·log(n/D)) + %.3g, R² = %.3f, Pearson = %.3f.",
			fit.Slope, fit.Intercept, fit.R2, corr)
		if corr < 0.9 {
			res.failf("correlation with D·log(n/D) too weak: %g", corr)
		}
	}

	var half e9HalfN
	if err := decodeShard(byKey["halfn"], &half); err != nil {
		return err
	}
	tb2 := table.New("Corollary 5.1: rounds to reach half of N on one core copy",
		"s", "trials min rounds", "floor (log 2s)/4 + 1", "ok")
	ok51 := half.MinRounds >= half.Floor
	tb2.AddRow(half.S, half.MinRounds, half.Floor, ok51)
	if !ok51 {
		res.failf("Corollary 5.1 floor violated: %g < %g", half.MinRounds, half.Floor)
	}
	res.Tables = append(res.Tables, tb2)
	res.note("Each round uniquely informs at most 2s vertices of N (Lemma 4.4(5), verified in E5), so reaching a 2i/log(2s) fraction needs ≥ 1+i rounds.")

	var uni e9Universality
	if err := decodeShard(byKey["universality"], &uni); err != nil {
		return err
	}
	tb3 := table.New(sprintfName("Universality: every protocol family obeys the floor (chain %d×%d)", uni.Hops, uni.S),
		"protocol", "rounds", "completed", "≥ floor "+sprintfName("%.3g", uni.Floor), "ok")
	for _, p := range uni.Protos {
		ok := float64(p.Rounds) >= uni.Floor
		if !ok {
			res.failf("protocol %s finished in %d rounds, below floor %g",
				p.Name, p.Rounds, uni.Floor)
		}
		tb3.AddRow(p.Name, p.Rounds, p.Completed, ok, ok)
	}
	res.Tables = append(res.Tables, tb3)

	var ph e9PerHop
	if err := decodeShard(byKey["perhop"], &ph); err != nil {
		return err
	}
	tb4 := table.New(sprintfName("Per-hop times Rᵢ (Observation 5.2; chain %d hops, decay protocol)", ph.Hops),
		"hop i", "rt_i informed at", "Rᵢ", "monotone ok")
	allMono := true
	var his []float64
	for _, row := range ph.Rows {
		if !row.Mono {
			allMono = false
		}
		tb4.AddRow(row.Hop, row.InformedAt, row.Ri, row.Mono)
		his = append(his, float64(row.Ri))
	}
	for _, i := range ph.Missing {
		res.failf("relay %d never informed", i)
	}
	if !allMono {
		res.failf("Observation 5.2 violated: relay times not strictly increasing")
	}
	if len(his) > 1 {
		// Expectation floor: E[Rᵢ] > log(2s)/4 (Corollary 5.1). The sample
		// mean over hops should clear half of it comfortably.
		floorR := bounds.Log2(2*float64(ph.S)) / 4
		mean := stats.Mean(his[1:]) // hop 1 includes the root's head start
		if mean < floorR/2 {
			res.failf("mean per-hop time %g implausibly below E[Rᵢ] floor %g", mean, floorR)
		}
		res.note("Mean per-hop time %.2f rounds vs Corollary 5.1 expectation floor (log 2s)/4 = %.2f.",
			mean, floorR)
	}
	res.Tables = append(res.Tables, tb4)
	return nil
}

// roundsToHalfN builds root + one core copy, informs the root, runs Decay,
// and counts rounds until half the N side is informed.
func roundsToHalfN(s, trials int, r *rng.RNG) ([]float64, error) {
	core, err := badgraph.NewCore(s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, trials)
	for i := 0; i < trials; i++ {
		tr := r.Split()
		// Graph: vertex 0 = root; 1..s = S side; s+1.. = N side.
		b := graph.NewBuilder(1 + s + core.B.NN())
		for u := 0; u < s; u++ {
			b.MustAddEdge(0, 1+u)
			for _, v := range core.B.NeighborsOfS(u) {
				b.MustAddEdge(1+u, 1+s+int(v))
			}
		}
		g := b.Build()
		net, err := radio.NewNetwork(g, 0)
		if err != nil {
			return nil, err
		}
		proto := &radio.Decay{R: tr}
		transmit := make([]bool, g.N())
		nVerts := make([]int, core.B.NN())
		for v := range nVerts {
			nVerts[v] = 1 + s + v
		}
		for net.Round < 1_000_000 {
			if net.CountInformedIn(nVerts)*2 >= len(nVerts) {
				break
			}
			for j := range transmit {
				transmit[j] = false
			}
			proto.Transmitters(net, transmit)
			net.Step(transmit)
		}
		out[i] = float64(net.Round)
	}
	return out, nil
}
