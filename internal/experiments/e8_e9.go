package experiments

import (
	"math"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/stats"
	"wexp/internal/table"
)

// E8Spokesman compares every spokesman-election algorithm on a corpus of
// bipartite instances against the Chlamtac–Weinstein guarantee |N|/log|S|
// and the paper's sharper |N|/log(2·min{δN, δS}) scale (Section 4.2.1),
// plus the exact optimum where |S| permits.
func E8Spokesman(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E8",
		Title:    "Spokesman election: algorithms vs bounds",
		PaperRef: "Section 4.2.1; [7]",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0xE8)
	type inst struct {
		name string
		b    *graph.Bipartite
	}
	var instances []inst
	mk := func(name string, b *graph.Bipartite) {
		instances = append(instances, inst{name, b})
	}
	core16, _ := badgraph.NewCore(16)
	core64, _ := badgraph.NewCore(64)
	mk("core-16", core16.B)
	if !cfg.Quick {
		mk("core-64", core64.B)
	}
	gb, _ := badgraph.NewGBad(16, 8, 4)
	mk("gbad-16-8-4", gb.B)
	mk("rand-bip-20x30", gen.RandomBipartite(20, 30, 0.15, r))
	mk("rand-bip-unbal", gen.RandomBipartite(60, 20, 0.1, r))
	if rb, err := gen.RandomBipartiteRegular(24, 48, 5, r); err == nil {
		mk("rand-reg-24x48-d5", rb)
	}
	if ec, err := badgraph.NewCoreExpandN(8, 3); err == nil {
		mk("core-expandN-8x3", ec.B)
	}

	tb := table.New("Algorithm comparison (|Γ¹_S(S')| per instance)",
		"instance", "|S|", "|N|", "CW bound", "paper scale",
		"greedy", "partition", "recursive", "deg-class", "decay", "best", "exact", "ok")
	for _, in := range instances {
		b := in.b
		cw := bounds.ChlamtacWeinstein(b.NN(), b.NS())
		paper := bounds.PaperSpokesman(b.NN(), b.AvgDegN(), b.AvgDegS())
		greedy := spokesman.GreedyUnique(b).Unique
		part := spokesman.PartitionSelect(b).Unique
		rec := spokesman.PartitionRecursive(b).Unique
		dc := spokesman.DegreeClass(b, spokesman.OptimalC).Unique
		dec := spokesman.Decay(b, cfg.trials(16, 6), r).Unique
		best := maxInt(greedy, maxInt(part, maxInt(rec, maxInt(dc, dec))))
		exact := math.NaN()
		if b.NS() <= spokesman.MaxExhaustiveS {
			if sel, err := spokesman.Exhaustive(b); err == nil {
				exact = float64(sel.Unique)
				if best > sel.Unique {
					res.failf("%s: algorithm beat the exact optimum!?", in.name)
				}
			}
		}
		// Pass criteria: best must reach the CW guarantee (our algorithms
		// subsume the CW-style argument) and a 1/9 fraction of the paper
		// scale (the deterministic Lemma A.13 constant).
		ok := float64(best) >= cw-1e-9 || float64(best) >= paper/9-1e-9
		if float64(best) < paper/9-1e-9 {
			ok = false
		}
		if !ok {
			res.failf("%s: best=%d below both CW=%g and paper/9=%g", in.name, best, cw, paper/9)
		}
		tb.AddRow(in.name, b.NS(), b.NN(), cw, paper,
			greedy, part, rec, dc, dec, best, exact, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("The paper's scale |N|/log(2·min{δN,δS}) refines CW's |N|/log|S|: on sparse instances (min degree ≪ |S|) the paper guarantee is visibly larger, and the measured best selection always reaches the Lemma A.13 fraction of it.")
	res.note("The decay sampler (Lemma 4.2) is the paper's 'extremely simple' randomized solution; the table shows it is competitive with the deterministic portfolio.")
	return res, nil
}

// E9BroadcastChain regenerates Section 5: on the chained core graph,
// broadcast time grows as Ω(D·log(n/D)). For each (hops, s) the Decay
// protocol of [5] is run to completion over several trials; the measured
// mean round count is then fitted against D·log2(n/D). The experiment
// passes when (i) the correlation is strong and (ii) every instance needs
// at least hops·(log 2s)/4 rounds — Corollary 5.1's per-hop floor — and
// (iii) on a single hop, reaching half of N takes ≥ log(2s)/4 + 1 rounds.
func E9BroadcastChain(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E9",
		Title:    "Broadcast lower bound Ω(D·log(n/D))",
		PaperRef: "Section 5, Corollaries 5.1–5.2",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0xE9)
	type pt struct{ hops, s int }
	grid := []pt{{2, 16}, {4, 16}, {8, 16}, {4, 32}, {8, 32}, {16, 32}, {8, 64}}
	if cfg.Quick {
		grid = []pt{{2, 8}, {4, 8}, {4, 16}}
	}
	trials := cfg.trials(5, 2)
	tb := table.New("Decay-protocol broadcast time on the chain",
		"hops", "s", "n", "D·log2(n/D)", "mean rounds", "min rounds", "floor hops·log(2s)/4", "ok")
	var xs, ys []float64
	for _, p := range grid {
		// One chain instance per grid point; the Monte-Carlo engine fans
		// the decay trials over its deterministic worker pool (adjacency
		// rows built once, results independent of GOMAXPROCS).
		ch, err := badgraph.NewChain(p.hops, p.s, r)
		if err != nil {
			res.failf("hops=%d s=%d: %v", p.hops, p.s, err)
			continue
		}
		mc, err := radio.MonteCarlo(ch.G, ch.Root,
			func(tr *rng.RNG) radio.Protocol { return &radio.Decay{R: tr} },
			trials, radio.Options{Seed: r.Uint64(), MaxRounds: 5_000_000, TraceRounds: -1})
		if err != nil {
			res.failf("hops=%d s=%d: %v", p.hops, p.s, err)
			continue
		}
		var valid []float64
		for _, t := range mc.PerTrial {
			if t.Completed {
				valid = append(valid, float64(t.Rounds))
			}
		}
		n := ch.N()
		if len(valid) == 0 {
			res.failf("hops=%d s=%d: no completed runs", p.hops, p.s)
			continue
		}
		d := 2 * p.hops // diameter scale: the paper sets D/2 copies
		scale := bounds.BroadcastLower(d, n)
		mean := stats.Mean(valid)
		minR := stats.Min(valid)
		floor := float64(p.hops) * bounds.Log2(2*float64(p.s)) / 4
		ok := minR >= floor
		if !ok {
			res.failf("hops=%d s=%d: min rounds %g below floor %g", p.hops, p.s, minR, floor)
		}
		tb.AddRow(p.hops, p.s, n, scale, mean, minR, floor, ok)
		xs = append(xs, scale)
		ys = append(ys, mean)
	}
	res.Tables = append(res.Tables, tb)
	if len(xs) >= 3 {
		fit := stats.LinearFit(xs, ys)
		corr := stats.Pearson(xs, ys)
		res.note("Scaling fit: rounds ≈ %.3g·(D·log(n/D)) + %.3g, R² = %.3f, Pearson = %.3f.",
			fit.Slope, fit.Intercept, fit.R2, corr)
		if corr < 0.9 {
			res.failf("correlation with D·log(n/D) too weak: %g", corr)
		}
	}

	// Corollary 5.1 on a single copy: rounds to inform half of N from a
	// fully-informed S ∪ {root}.
	sSingle := 32
	if cfg.Quick {
		sSingle = 16
	}
	halfRounds, err := roundsToHalfN(sSingle, cfg.trials(5, 2), r)
	if err != nil {
		return nil, err
	}
	floor51 := bounds.Log2(2*float64(sSingle))/4 + 1
	tb2 := table.New("Corollary 5.1: rounds to reach half of N on one core copy",
		"s", "trials min rounds", "floor (log 2s)/4 + 1", "ok")
	ok51 := stats.Min(halfRounds) >= floor51
	tb2.AddRow(sSingle, stats.Min(halfRounds), floor51, ok51)
	if !ok51 {
		res.failf("Corollary 5.1 floor violated: %g < %g", stats.Min(halfRounds), floor51)
	}
	res.Tables = append(res.Tables, tb2)
	res.note("Each round uniquely informs at most 2s vertices of N (Lemma 4.4(5), verified in E5), so reaching a 2i/log(2s) fraction needs ≥ 1+i rounds.")

	// Universality: the lower bound holds for *every* protocol. Check a
	// spread of protocol families — adaptive randomized (decay,
	// prob-flood) and oblivious fixed schedules — on one chain instance.
	hops, s := 4, 16
	ch, err := badgraph.NewChain(hops, s, r)
	if err != nil {
		return nil, err
	}
	floorU := float64(hops) * bounds.Log2(2*float64(s)) / 4
	protos := []radio.Protocol{
		&radio.Decay{R: r.Split()},
		&radio.ProbFlood{P: 0.25, R: r.Split()},
	}
	if sched, err := radio.NewRandomSchedule(ch.N(), 64, 1.0/8, r.Split()); err == nil {
		protos = append(protos, sched)
	}
	if sched, err := radio.NewRandomSchedule(ch.N(), 64, 1.0/32, r.Split()); err == nil {
		protos = append(protos, sched)
	}
	if sched, err := radio.NewDecaySchedule(ch.N(), 32, r.Split()); err == nil {
		protos = append(protos, sched)
	}
	tb3 := table.New("Universality: every protocol family obeys the floor (chain 4×16)",
		"protocol", "rounds", "completed", "≥ floor "+sprintfName("%.3g", floorU), "ok")
	for _, p := range protos {
		run, err := radio.Run(ch.G, ch.Root, p, 400000)
		if err != nil {
			return nil, err
		}
		ok := float64(run.Rounds) >= floorU
		if !ok {
			res.failf("protocol %s finished in %d rounds, below floor %g",
				p.Name(), run.Rounds, floorU)
		}
		tb3.AddRow(p.Name(), run.Rounds, run.Completed, float64(run.Rounds) >= floorU, ok)
	}
	res.Tables = append(res.Tables, tb3)

	// Per-hop decomposition (Observation 5.2): the message reaches rt_{i−1}
	// before rt_i, and R = ΣᵢRᵢ with each Rᵢ = Ω(log(n/D)) in expectation.
	hopS := 32
	if cfg.Quick {
		hopS = 16
	}
	hopHops := 6
	chHop, err := badgraph.NewChain(hopHops, hopS, r)
	if err != nil {
		return nil, err
	}
	net, err := radio.RunNetwork(chHop.G, chHop.Root, &radio.Decay{R: r.Split()}, 5_000_000)
	if err != nil {
		return nil, err
	}
	tb4 := table.New("Per-hop times Rᵢ (Observation 5.2; chain 6 hops, decay protocol)",
		"hop i", "rt_i informed at", "Rᵢ", "monotone ok")
	prev := 0
	allMono := true
	var his []float64
	for i, rt := range chHop.RT {
		at := net.InformedAt(rt)
		if at < 0 {
			res.failf("relay %d never informed", i)
			continue
		}
		ri := at - prev
		mono := at > prev || i == 0
		if !mono {
			allMono = false
		}
		tb4.AddRow(i+1, at, ri, mono)
		his = append(his, float64(ri))
		prev = at
	}
	if !allMono {
		res.failf("Observation 5.2 violated: relay times not strictly increasing")
	}
	if len(his) > 1 {
		// Expectation floor: E[Rᵢ] > log(2s)/4 (Corollary 5.1). The sample
		// mean over hops should clear half of it comfortably.
		floorR := bounds.Log2(2*float64(hopS)) / 4
		mean := stats.Mean(his[1:]) // hop 1 includes the root's head start
		if mean < floorR/2 {
			res.failf("mean per-hop time %g implausibly below E[Rᵢ] floor %g", mean, floorR)
		}
		res.note("Mean per-hop time %.2f rounds vs Corollary 5.1 expectation floor (log 2s)/4 = %.2f.",
			mean, floorR)
	}
	res.Tables = append(res.Tables, tb4)
	return res, nil
}

// roundsToHalfN builds root + one core copy, informs the root, runs Decay,
// and counts rounds until half the N side is informed.
func roundsToHalfN(s, trials int, r *rng.RNG) ([]float64, error) {
	core, err := badgraph.NewCore(s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, trials)
	parallelFor(trials, r, func(i int, tr *rng.RNG) {
		// Graph: vertex 0 = root; 1..s = S side; s+1.. = N side.
		b := graph.NewBuilder(1 + s + core.B.NN())
		for u := 0; u < s; u++ {
			b.MustAddEdge(0, 1+u)
			for _, v := range core.B.NeighborsOfS(u) {
				b.MustAddEdge(1+u, 1+s+int(v))
			}
		}
		g := b.Build()
		net, err := radio.NewNetwork(g, 0)
		if err != nil {
			out[i] = math.NaN()
			return
		}
		proto := &radio.Decay{R: tr}
		transmit := make([]bool, g.N())
		nVerts := make([]int, core.B.NN())
		for v := range nVerts {
			nVerts[v] = 1 + s + v
		}
		for net.Round < 1_000_000 {
			if net.CountInformedIn(nVerts)*2 >= len(nVerts) {
				break
			}
			for j := range transmit {
				transmit[j] = false
			}
			proto.Transmitters(net, transmit)
			net.Step(transmit)
		}
		out[i] = float64(net.Round)
	})
	return out, nil
}
