package experiments

import (
	"testing"

	"wexp/internal/badgraph"
	"wexp/internal/gen"
	"wexp/internal/rng"
)

func TestEnumerateOrSampleSmall(t *testing.T) {
	g := gen.Cycle(6)
	sets := enumerateOrSample(g, 0.5, 10, rng.New(1))
	// All nonempty subsets of size ≤ 3: C(6,1)+C(6,2)+C(6,3) = 6+15+20 = 41.
	if len(sets) != 41 {
		t.Fatalf("enumerated %d sets, want 41", len(sets))
	}
	for _, S := range sets {
		if len(S) == 0 || len(S) > 3 {
			t.Fatalf("bad set size %d", len(S))
		}
	}
}

func TestEnumerateOrSampleLarge(t *testing.T) {
	g := gen.Torus(6, 6)
	sets := enumerateOrSample(g, 0.25, 12, rng.New(2))
	if len(sets) == 0 {
		t.Fatal("no sets sampled")
	}
	for _, S := range sets {
		if len(S) == 0 || len(S) > 9 {
			t.Fatalf("sampled set size %d outside (0, 9]", len(S))
		}
	}
}

func TestCoreAdversariesShape(t *testing.T) {
	r := rng.New(3)
	subs := coreAdversaries(32, r, 5)
	if len(subs) < 8 {
		t.Fatalf("too few adversaries: %d", len(subs))
	}
	seenFull := false
	for _, sub := range subs {
		if len(sub) == 0 || len(sub) > 32 {
			t.Fatalf("bad adversary size %d", len(sub))
		}
		if len(sub) == 32 {
			seenFull = true
		}
		for _, v := range sub {
			if v < 0 || v >= 32 {
				t.Fatalf("vertex %d out of range", v)
			}
		}
	}
	if !seenFull {
		t.Fatal("full set missing from adversaries")
	}
}

func TestSampledExpansionFloorDeterministic(t *testing.T) {
	base := gen.Complete(96)
	r1, r2 := rng.New(4), rng.New(4)
	wc1, err := badgraph.NewWorstCase(base, 1.0, 0.4, r1)
	if err != nil {
		t.Fatal(err)
	}
	wc2, err := badgraph.NewWorstCase(base, 1.0, 0.4, r2)
	if err != nil {
		t.Fatal(err)
	}
	a := sampledExpansionFloor(wc1, 10, r1)
	b := sampledExpansionFloor(wc2, 10, r2)
	if a != b {
		t.Fatalf("nondeterministic floor: %g vs %g", a, b)
	}
	if a <= 0 {
		t.Fatalf("floor %g should be positive on a plugged complete graph", a)
	}
}

func TestMeasuredExpansionOfWitness(t *testing.T) {
	base := gen.Complete(128)
	r := rng.New(5)
	wc, err := badgraph.NewWorstCase(base, 1.0, 0.4, r)
	if err != nil {
		t.Fatal(err)
	}
	// The witness S* expands by at least the core's achieved β (Lemma
	// 4.6(2): |Γ(S')| ≥ β·|S'| within the core, and all neighbors are
	// outside S*).
	ord := measuredExpansionOf(wc, wc.SStar)
	if ord < wc.Core.Beta()-1e-9 {
		t.Fatalf("witness expansion %g below core β %g", ord, wc.Core.Beta())
	}
}

func TestConfigTrials(t *testing.T) {
	if (Config{}).trials(7, 3) != 7 {
		t.Fatal("default")
	}
	if (Config{Quick: true}).trials(7, 3) != 3 {
		t.Fatal("quick")
	}
	if (Config{Trials: 11, Quick: true}).trials(7, 3) != 11 {
		t.Fatal("override")
	}
}

func TestPopcountAndMax(t *testing.T) {
	if popcount(0) != 0 || popcount(0b1011) != 3 {
		t.Fatal("popcount")
	}
	if maxInt(3, 5) != 5 || maxInt(5, 3) != 5 {
		t.Fatal("maxInt")
	}
	if minOf([]float64{3, 1, 2}) != 1 {
		t.Fatal("minOf")
	}
	if medianOf([]float64{3, 1, 2}) != 2 {
		t.Fatal("medianOf")
	}
}
