package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wexp/internal/table"
)

// ArtifactSchema versions the per-experiment artifact document. Bump it
// whenever the JSON layout changes incompatibly.
const ArtifactSchema = "wexp-experiments/artifact-v1"

// ManifestSchema versions the run manifest document.
const ManifestSchema = "wexp-experiments/manifest-v1"

// ArtifactTable is the artifact form of a rendered result table. Cells are
// the already-formatted strings of table.Table, so the document is
// byte-stable across encoders.
type ArtifactTable struct {
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Artifact is the versioned JSON record of one experiment run: the exact
// inputs, every shard's raw result, the rendered summary tables, and the
// verdict. It contains no timestamps, host names, or toolchain versions —
// it is a pure function of (Spec, Config), so byte-level comparison is a
// valid regression check.
type Artifact struct {
	Schema   string          `json:"schema"`
	ID       string          `json:"id"`
	Title    string          `json:"title"`
	PaperRef string          `json:"paper_ref"`
	Config   Config          `json:"config"`
	Shards   []ShardResult   `json:"shards"`
	Tables   []ArtifactTable `json:"tables"`
	Notes    []string        `json:"notes,omitempty"`
	Pass     bool            `json:"pass"`

	// encoded memoizes Encode: the document is immutable once built, and
	// both Write and the manifest checksum need the same bytes.
	encoded []byte
}

func artifactTables(tables []*table.Table) []ArtifactTable {
	out := make([]ArtifactTable, len(tables))
	for i, t := range tables {
		out[i] = ArtifactTable{Title: t.Title, Note: t.Note, Header: t.Header, Rows: t.Rows}
	}
	return out
}

func newArtifact(spec *Spec, cfg Config, shards []ShardResult, res *Result) *Artifact {
	return &Artifact{
		Schema:   ArtifactSchema,
		ID:       spec.ID,
		Title:    spec.Title,
		PaperRef: spec.PaperRef,
		Config:   cfg,
		Shards:   shards,
		Tables:   artifactTables(res.Tables),
		Notes:    res.Notes,
		Pass:     res.Pass,
	}
}

// Filename returns the artifact's file name inside an output directory.
func (a *Artifact) Filename() string { return a.ID + ".json" }

// Encode returns the canonical indented JSON encoding of the artifact.
// The encoding is computed once and cached; callers must not mutate the
// returned slice.
func (a *Artifact) Encode() ([]byte, error) {
	if a.encoded != nil {
		return a.encoded, nil
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	a.encoded = append(data, '\n')
	return a.encoded, nil
}

// Write stores the artifact under dir (atomically: temp + rename).
func (a *Artifact) Write(dir string) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, a.Filename()), data)
}

// ManifestEntry summarizes one artifact inside the manifest.
type ManifestEntry struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Artifact string `json:"artifact"`
	SHA256   string `json:"sha256"`
	Shards   int    `json:"shards"`
	Pass     bool   `json:"pass"`
}

// Manifest indexes every artifact of a run with its checksum, so a
// directory of artifacts is self-describing and tamper-evident.
type Manifest struct {
	Schema      string          `json:"schema"`
	Config      Config          `json:"config"`
	Experiments []ManifestEntry `json:"experiments"`
}

func newManifest(cfg Config) *Manifest {
	return &Manifest{Schema: ManifestSchema, Config: cfg}
}

func (m *Manifest) add(a *Artifact) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	m.Experiments = append(m.Experiments, ManifestEntry{
		ID:       a.ID,
		Title:    a.Title,
		Artifact: a.Filename(),
		SHA256:   hex.EncodeToString(sum[:]),
		Shards:   len(a.Shards),
		Pass:     a.Pass,
	})
	return nil
}

// Encode returns the canonical indented JSON encoding of the manifest.
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Write stores MANIFEST.json under dir.
func (m *Manifest) Write(dir string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, "MANIFEST.json"), data)
}

func writeFileAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}
