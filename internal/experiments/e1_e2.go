package experiments

import (
	"fmt"
	"math"

	"wexp/internal/badgraph"
	"wexp/internal/bitset"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// SpecE1 verifies the per-set form of Lemma 3.1 on d-regular graphs:
// for every vertex set S,
//
//	|Γ⁻(S)| ≥ (1 − 1/d)·|Γ¹(S)| + (d − λ2)·(1 − |S|/n)·|S|/d,
//
// which is exactly the inequality chain of the lemma's proof with
// αu = |S|/n. Sets are enumerated exhaustively on small graphs and sampled
// adversarially on larger ones; one shard per instance measures the minimum
// slack (LHS − RHS), which must be non-negative.
var SpecE1 = &Spec{
	ID:       "E1",
	Title:    "Spectral relation between unique and ordinary expansion",
	PaperRef: "Lemma 3.1",
	Shards:   e1Shards,
	Reduce:   e1Reduce,
}

// e1Point is the per-instance shard result.
type e1Point struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	D        int     `json:"d"`
	Lambda   float64 `json:"lambda2"`
	Sets     int     `json:"sets"`
	MinSlack float64 `json:"min_slack"`
}

// e1Instance names one graph of E1's corpus; the graph itself is built
// inside the shard so random instances draw from the shard's own stream.
type e1Instance struct {
	name string
	n, d int // for random-regular instances; 0 otherwise
}

func e1Instances(cfg Config) []e1Instance {
	out := []e1Instance{
		{name: "complete-10"},
		{name: "cycle-12"},
		{name: "hypercube-3"},
		{name: "hypercube-4"},
	}
	regSizes := []struct{ n, d int }{{24, 4}, {64, 6}, {128, 8}}
	if cfg.Quick {
		regSizes = regSizes[:2]
	}
	for _, sz := range regSizes {
		out = append(out, e1Instance{sprintfName("regular-%d-%d", sz.n, sz.d), sz.n, sz.d})
	}
	return out
}

func (in e1Instance) build(r *rng.RNG) (*graph.Graph, error) {
	switch in.name {
	case "complete-10":
		return gen.Complete(10), nil
	case "cycle-12":
		return gen.Cycle(12), nil
	case "hypercube-3":
		return gen.Hypercube(3), nil
	case "hypercube-4":
		return gen.Hypercube(4), nil
	default:
		return gen.RandomRegular(in.n, in.d, r)
	}
}

func e1Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, in := range e1Instances(cfg) {
		in := in
		shards = append(shards, Shard{
			Key: in.name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g, err := in.build(r)
				if err != nil {
					return nil, err
				}
				_, d := g.IsRegular()
				spec, err := expansion.Lambda2Regular(g, r)
				if err != nil {
					return nil, err
				}
				sets := enumerateOrSample(g, 0.5, cfg.trials(60, 15), r)
				minSlack := math.Inf(1)
				n := g.N()
				for _, S := range sets {
					bs := bitset.FromIndices(n, S)
					lhs := float64(expansion.GammaMinus(g, bs).Count())
					uniq := float64(expansion.Gamma1(g, bs).Count())
					sz := float64(len(S))
					rhs := (1-1/float64(d))*uniq + (float64(d)-spec.Lambda)*(1-sz/float64(n))*sz/float64(d)
					if slack := lhs - rhs; slack < minSlack {
						minSlack = slack
					}
				}
				return e1Point{Name: in.name, N: n, D: d, Lambda: spec.Lambda,
					Sets: len(sets), MinSlack: minSlack}, nil
			},
		})
	}
	return shards, nil
}

func e1Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e1Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("Lemma 3.1 per-set inequality", "graph", "n", "d", "λ2", "sets", "min slack", "ok")
	for _, p := range points {
		ok := p.MinSlack >= -1e-6
		if !ok {
			res.failf("%s: inequality violated by %g", p.Name, -p.MinSlack)
		}
		tb.AddRow(p.Name, p.N, p.D, p.Lambda, p.Sets, p.MinSlack, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim: |Γ⁻(S)| ≥ (1−1/d)|Γ¹(S)| + (d−λ2)(1−|S|/n)|S|/d for all S (per-set Lemma 3.1).")
	return nil
}

// SpecE2 verifies Lemma 3.3 and its remark: the cyclic-overlap construction
// Gbad has unique expansion exactly 2β − ∆ (so Lemma 3.2's bound is tight),
// while its wireless expansion is at least max{2β − ∆, ∆/2} — a strict
// separation whenever β < 3∆/4. One shard per (s, ∆, β) grid point.
var SpecE2 = &Spec{
	ID:       "E2",
	Title:    "Gbad: tight unique expansion, separated wireless expansion",
	PaperRef: "Lemmas 3.2, 3.3 and remark; Figure 1",
	Shards:   e2Shards,
	Reduce:   e2Reduce,
}

// e2Point is the per-grid-point shard result. Exact is nil when s is past
// exhaustive reach (NaN does not survive JSON).
type e2Point struct {
	S          int      `json:"s"`
	Delta      int      `json:"delta"`
	Beta       int      `json:"beta"`
	MeasuredBu float64  `json:"measured_bu"`
	ClaimBu    float64  `json:"claim_bu"`
	Lower      float64  `json:"wireless_lower"`
	Floor      float64  `json:"wireless_floor"`
	Exact      *float64 `json:"wireless_exact,omitempty"`
}

func e2Grid(cfg Config) []struct{ s, delta, beta int } {
	params := []struct{ s, delta, beta int }{
		{8, 4, 2}, {8, 4, 3}, {8, 6, 3}, {8, 6, 4}, {8, 6, 5},
		{16, 8, 4}, {16, 8, 6}, {16, 10, 5}, {16, 10, 7},
		{32, 12, 6}, {32, 12, 9}, {64, 16, 8}, {64, 16, 12},
	}
	if cfg.Quick {
		params = params[:7]
	}
	return params
}

func e2Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, p := range e2Grid(cfg) {
		p := p
		shards = append(shards, Shard{
			Key: sprintfName("s=%d,delta=%d,beta=%d", p.s, p.delta, p.beta),
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g, err := badgraph.NewGBad(p.s, p.delta, p.beta)
				if err != nil {
					return nil, err
				}
				// Unique expansion of the full set S (per Lemma 3.3 the worst set).
				uniq := spokesman.AllOfS(g.B)
				pt := e2Point{
					S: p.s, Delta: p.delta, Beta: p.beta,
					MeasuredBu: float64(uniq.Unique) / float64(p.s),
					ClaimBu:    float64(g.UniqueExpansionClaim()),
					Floor:      g.WirelessFloorClaim(),
				}
				// Certified wireless lower bound via the alternating subset and
				// the solver portfolio.
				alt := g.B.UniqueCoverSet(g.EveryOther(), nil)
				det := spokesman.BestDeterministic(g.B)
				pt.Lower = float64(maxInt(alt, det.Unique)) / float64(p.s)
				if p.s <= spokesman.MaxExhaustiveS {
					opt, err := spokesman.Exhaustive(g.B)
					if err != nil {
						return nil, err
					}
					exact := float64(opt.Unique) / float64(p.s)
					pt.Exact = &exact
				}
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e2Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e2Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("Gbad measurements",
		"s", "∆", "β", "βu measured", "βu claim", "βw lower", "βw floor", "βw exact", "ok")
	for _, p := range points {
		ok := p.MeasuredBu == p.ClaimBu && p.Lower >= p.Floor-1e-9
		exact := math.NaN()
		if p.Exact != nil {
			exact = *p.Exact
			if exact < p.Floor-1e-9 {
				ok = false
			}
		}
		if !ok {
			res.failf("s=%d ∆=%d β=%d: βu=%g (claim %g), βw lower=%g floor=%g",
				p.S, p.Delta, p.Beta, p.MeasuredBu, p.ClaimBu, p.Lower, p.Floor)
		}
		tb.AddRow(p.S, p.Delta, p.Beta, p.MeasuredBu, p.ClaimBu, p.Lower, p.Floor, exact, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim 1 (Lemma 3.3): Γ¹(S)/|S| = 2β−∆ exactly.")
	res.note("Claim 2 (remark): wireless expansion ≥ max{2β−∆, ∆/2}; at β=∆/2 unique expansion is 0 yet wireless is ≥ ∆/2.")
	res.note("Consequence (Lemma 3.2 tightness): no bound better than βu ≥ 2β−∆ is possible in general.")
	return nil
}

// enumerateOrSample returns all nonempty subsets of size ≤ α·n for n ≤ 12,
// otherwise an adversarial sample.
func enumerateOrSample(g *graph.Graph, alpha float64, trials int, r *rng.RNG) [][]int {
	n := g.N()
	if n <= 12 {
		maxSize := int(alpha * float64(n))
		var out [][]int
		for mask := 1; mask < 1<<uint(n); mask++ {
			if popcount(mask) > maxSize {
				continue
			}
			var S []int
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					S = append(S, v)
				}
			}
			out = append(out, S)
		}
		return out
	}
	return expansion.SampleSets(g, alpha, trials, r)
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sprintfName(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
