package experiments

import (
	"fmt"
	"math"

	"wexp/internal/badgraph"
	"wexp/internal/bitset"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// E1Spectral verifies the per-set form of Lemma 3.1 on d-regular graphs:
// for every vertex set S,
//
//	|Γ⁻(S)| ≥ (1 − 1/d)·|Γ¹(S)| + (d − λ2)·(1 − |S|/n)·|S|/d,
//
// which is exactly the inequality chain of the lemma's proof with
// αu = |S|/n. Sets are enumerated exhaustively on small graphs and sampled
// adversarially on larger ones; the table reports the minimum slack
// (measured LHS − RHS) per instance, which must be non-negative.
func E1Spectral(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E1",
		Title:    "Spectral relation between unique and ordinary expansion",
		PaperRef: "Lemma 3.1",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0xE1)
	type inst struct {
		name string
		g    *graph.Graph
	}
	var instances []inst
	instances = append(instances,
		inst{"complete-10", gen.Complete(10)},
		inst{"cycle-12", gen.Cycle(12)},
		inst{"hypercube-3", gen.Hypercube(3)},
		inst{"hypercube-4", gen.Hypercube(4)},
	)
	regSizes := []struct{ n, d int }{{24, 4}, {64, 6}, {128, 8}}
	if cfg.Quick {
		regSizes = regSizes[:2]
	}
	for _, sz := range regSizes {
		g, err := gen.RandomRegular(sz.n, sz.d, r)
		if err != nil {
			return nil, err
		}
		instances = append(instances, inst{sprintfName("regular-%d-%d", sz.n, sz.d), g})
	}

	tb := table.New("Lemma 3.1 per-set inequality", "graph", "n", "d", "λ2", "sets", "min slack", "ok")
	for _, in := range instances {
		_, d := in.g.IsRegular()
		spec, err := expansion.Lambda2Regular(in.g, r)
		if err != nil {
			return nil, err
		}
		sets := enumerateOrSample(in.g, 0.5, cfg.trials(60, 15), r)
		minSlack := math.Inf(1)
		n := in.g.N()
		for _, S := range sets {
			bs := bitset.FromIndices(n, S)
			lhs := float64(expansion.GammaMinus(in.g, bs).Count())
			uniq := float64(expansion.Gamma1(in.g, bs).Count())
			sz := float64(len(S))
			rhs := (1-1/float64(d))*uniq + (float64(d)-spec.Lambda)*(1-sz/float64(n))*sz/float64(d)
			if slack := lhs - rhs; slack < minSlack {
				minSlack = slack
			}
		}
		ok := minSlack >= -1e-6
		if !ok {
			res.failf("%s: inequality violated by %g", in.name, -minSlack)
		}
		tb.AddRow(in.name, n, d, spec.Lambda, len(sets), minSlack, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim: |Γ⁻(S)| ≥ (1−1/d)|Γ¹(S)| + (d−λ2)(1−|S|/n)|S|/d for all S (per-set Lemma 3.1).")
	return res, nil
}

// E2GBad verifies Lemma 3.3 and its remark: the cyclic-overlap construction
// Gbad has unique expansion exactly 2β − ∆ (so Lemma 3.2's bound is tight),
// while its wireless expansion is at least max{2β − ∆, ∆/2} — a strict
// separation whenever β < 3∆/4.
func E2GBad(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E2",
		Title:    "Gbad: tight unique expansion, separated wireless expansion",
		PaperRef: "Lemmas 3.2, 3.3 and remark; Figure 1",
		Pass:     true,
	}
	params := []struct{ s, delta, beta int }{
		{8, 4, 2}, {8, 4, 3}, {8, 6, 3}, {8, 6, 4}, {8, 6, 5},
		{16, 8, 4}, {16, 8, 6}, {16, 10, 5}, {16, 10, 7},
		{32, 12, 6}, {32, 12, 9}, {64, 16, 8}, {64, 16, 12},
	}
	if cfg.Quick {
		params = params[:7]
	}
	tb := table.New("Gbad measurements",
		"s", "∆", "β", "βu measured", "βu claim", "βw lower", "βw floor", "βw exact", "ok")
	for _, p := range params {
		g, err := badgraph.NewGBad(p.s, p.delta, p.beta)
		if err != nil {
			return nil, err
		}
		// Unique expansion of the full set S (per Lemma 3.3 the worst set).
		uniq := spokesman.AllOfS(g.B)
		measuredBu := float64(uniq.Unique) / float64(p.s)
		claimBu := float64(g.UniqueExpansionClaim())
		// Certified wireless lower bound via the alternating subset and the
		// solver portfolio.
		alt := g.B.UniqueCoverSet(g.EveryOther(), nil)
		det := spokesman.BestDeterministic(g.B)
		lower := float64(maxInt(alt, det.Unique)) / float64(p.s)
		floor := g.WirelessFloorClaim()
		exact := math.NaN()
		if p.s <= spokesman.MaxExhaustiveS {
			opt, err := spokesman.Exhaustive(g.B)
			if err != nil {
				return nil, err
			}
			exact = float64(opt.Unique) / float64(p.s)
		}
		ok := measuredBu == claimBu && lower >= floor-1e-9
		if !math.IsNaN(exact) && exact < floor-1e-9 {
			ok = false
		}
		if !ok {
			res.failf("s=%d ∆=%d β=%d: βu=%g (claim %g), βw lower=%g floor=%g",
				p.s, p.delta, p.beta, measuredBu, claimBu, lower, floor)
		}
		tb.AddRow(p.s, p.delta, p.beta, measuredBu, claimBu, lower, floor, exact, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim 1 (Lemma 3.3): Γ¹(S)/|S| = 2β−∆ exactly.")
	res.note("Claim 2 (remark): wireless expansion ≥ max{2β−∆, ∆/2}; at β=∆/2 unique expansion is 0 yet wireless is ≥ ∆/2.")
	res.note("Consequence (Lemma 3.2 tightness): no bound better than βu ≥ 2β−∆ is possible in general.")
	return res, nil
}

// enumerateOrSample returns all nonempty subsets of size ≤ α·n for n ≤ 12,
// otherwise an adversarial sample.
func enumerateOrSample(g *graph.Graph, alpha float64, trials int, r *rng.RNG) [][]int {
	n := g.N()
	if n <= 12 {
		maxSize := int(alpha * float64(n))
		var out [][]int
		for mask := 1; mask < 1<<uint(n); mask++ {
			if popcount(mask) > maxSize {
				continue
			}
			var S []int
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					S = append(S, v)
				}
			}
			out = append(out, S)
		}
		return out
	}
	return expansion.SampleSets(g, alpha, trials, r)
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sprintfName(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
