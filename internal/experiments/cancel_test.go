package experiments

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"wexp/internal/runopts"
)

// TestRunSpecCancellation cancels a checkpointed run from its Progress
// hook, proves RunSpec returns ctx.Err(), and then resumes without a
// context to prove the checkpoints written before the cancellation are
// intact: the resumed artifact is byte-identical to an uninterrupted run.
func TestRunSpecCancellation(t *testing.T) {
	cfg := Config{Seed: testSeed, Quick: true}
	spec := SpecE2

	_, want, err := RunSpec(spec, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := encodeArtifact(t, want)

	ckpt := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err = RunSpec(spec, cfg, Options{
		RunOpts:       runopts.RunOpts{Workers: 2},
		CheckpointDir: ckpt,
		Ctx:           ctx,
		Progress: func(id string, done, total int) {
			if done >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: got err %v, want context.Canceled", err)
	}
	files, err := filepath.Glob(filepath.Join(ckpt, spec.ID, "shard-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected ≥ 3 checkpoints before cancellation, found %d", len(files))
	}
	shards, err := spec.Shards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) >= len(shards) {
		t.Fatalf("cancellation was not prompt: all %d shards completed", len(shards))
	}

	// Resume without a context: checkpointed shards are reused, the rest
	// recomputed, and the artifact matches the uninterrupted run.
	var executed atomic.Int64
	_, art, err := RunSpec(spec, cfg, Options{
		RunOpts: runopts.RunOpts{Workers: 2}, CheckpointDir: ckpt, Resume: true,
		Progress: func(id string, done, total int) { executed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, encodeArtifact(t, art)) {
		t.Fatal("artifact after cancel+resume differs from uninterrupted run")
	}
	if want := int64(len(shards) - len(files)); executed.Load() != want {
		t.Fatalf("resume recomputed %d shards, want %d", executed.Load(), want)
	}
}

// TestRunSpecCancelledBeforeStart: a pre-cancelled context stops the run
// before any shard executes.
func TestRunSpecCancelledBeforeStart(t *testing.T) {
	cfg := Config{Seed: testSeed, Quick: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int64
	_, _, err := RunSpec(SpecE2, cfg, Options{
		Ctx:      ctx,
		Progress: func(id string, done, total int) { executed.Add(1) },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if executed.Load() != 0 {
		t.Fatalf("%d shards executed under a pre-cancelled context", executed.Load())
	}
}
