package experiments

import (
	"fmt"
	"strings"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/runopts"
	"wexp/internal/spokesman"
	"wexp/internal/stats"
	"wexp/internal/table"
)

// SpecE13 quantifies the library's design choices on a fixed corpus:
// (a) the decay sampler's trial budget (Lemma 4.2 only guarantees the
// expectation; best-of-T sharpens it), (b) which portfolio member wins how
// often, and (c) what the hill-climbing refinement adds on top of the best
// certified selection. One shard per corpus instance measures all three;
// Reduce aggregates across the corpus.
var SpecE13 = &Spec{
	ID:       "E13",
	Title:    "Ablations: decay trials, portfolio composition, local refinement",
	PaperRef: "Lemma 4.2 (sampler); library design choices",
	Shards:   e13Shards,
	Reduce:   e13Reduce,
}

// e13Decay is one decay-budget measurement on one instance.
type e13Decay struct {
	Budget  int     `json:"budget"`
	Unique  int     `json:"unique"`
	Frac    float64 `json:"frac"` // fraction of the portfolio best (0 when best is 0)
	HasBest bool    `json:"has_best"`
}

// e13Point is the per-instance shard result.
type e13Point struct {
	Name    string     `json:"name"`
	DecayAt []e13Decay `json:"decay_at"`
	Scores  []int      `json:"scores"` // e13Algos order
	Base    int        `json:"base"`
	Improve int        `json:"improve"`
}

// e13Algos lists the portfolio members in table order.
var e13Algos = []string{"greedy", "partition", "recursive", "degree-class", "decay-16"}

func e13Budgets(cfg Config) []int {
	budgets := []int{1, 4, 16, 64}
	if cfg.Quick {
		budgets = budgets[:3]
	}
	return budgets
}

func e13Names(cfg Config) []string {
	names := []string{"core-32", "gbad-16-8-5"}
	for i := 0; i < cfg.trials(10, 4); i++ {
		names = append(names, sprintfName("rand-24x36-#%d", i))
	}
	return names
}

func e13Build(name string, r *rng.RNG) (*graph.Bipartite, error) {
	switch name {
	case "core-32":
		c, err := badgraph.NewCore(32)
		if err != nil {
			return nil, err
		}
		return c.B, nil
	case "gbad-16-8-5":
		g, err := badgraph.NewGBad(16, 8, 5)
		if err != nil {
			return nil, err
		}
		return g.B, nil
	default:
		if !strings.HasPrefix(name, "rand-24x36-#") {
			return nil, fmt.Errorf("e13: unknown instance %q", name)
		}
		return gen.RandomBipartite(24, 36, 0.12, r), nil
	}
}

func e13Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, name := range e13Names(cfg) {
		name := name
		shards = append(shards, Shard{
			Key: name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				b, err := e13Build(name, r)
				if err != nil {
					return nil, err
				}
				pt := e13Point{Name: name}
				// (a) Decay trial budget vs the deterministic portfolio.
				for _, T := range e13Budgets(cfg) {
					d := spokesman.Decay(b, T, r)
					best := spokesman.BestDeterministic(b)
					if d.Unique > best.Unique {
						best = d
					}
					m := e13Decay{Budget: T, Unique: d.Unique}
					if best.Unique > 0 {
						m.Frac = float64(d.Unique) / float64(best.Unique)
						m.HasBest = true
					}
					pt.DecayAt = append(pt.DecayAt, m)
				}
				// (b) Portfolio member scores (e13Algos order).
				pt.Scores = []int{
					spokesman.GreedyUnique(b).Unique,
					spokesman.PartitionSelect(b).Unique,
					spokesman.PartitionRecursive(b).Unique,
					spokesman.DegreeClass(b, spokesman.OptimalC).Unique,
					spokesman.Decay(b, 16, r).Unique,
				}
				// (c) Local refinement delta.
				base := spokesman.Best(b, 8, r)
				imp := spokesman.Improve(b, base, 6)
				pt.Base, pt.Improve = base.Unique, imp.Unique
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e13Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e13Point](shards)
	if err != nil {
		return err
	}
	budgets := e13Budgets(cfg)

	// (a) Decay trial budget.
	tb := table.New("Decay sampler: mean unique cover vs trial budget",
		"trials", "mean |Γ¹|", "min |Γ¹|", "mean fraction of portfolio best")
	meanAt := map[int]float64{}
	for bi, T := range budgets {
		var vals, fracs []float64
		for _, p := range points {
			m := p.DecayAt[bi]
			vals = append(vals, float64(m.Unique))
			if m.HasBest {
				fracs = append(fracs, m.Frac)
			}
		}
		meanAt[T] = stats.Mean(vals)
		tb.AddRow(T, stats.Mean(vals), stats.Min(vals), stats.Mean(fracs))
	}
	if meanAt[budgets[len(budgets)-1]] < meanAt[budgets[0]]-1e-9 {
		res.failf("decay quality decreased with budget: %g -> %g",
			meanAt[budgets[0]], meanAt[budgets[len(budgets)-1]])
	}
	res.Tables = append(res.Tables, tb)

	// (b) Portfolio composition: per algorithm, how often it attains the
	// portfolio maximum.
	wins := make([]int, len(e13Algos))
	for _, p := range points {
		best := 0
		for _, sc := range p.Scores {
			if sc > best {
				best = sc
			}
		}
		for i, sc := range p.Scores {
			if sc == best {
				wins[i]++
			}
		}
	}
	tb2 := table.New("Portfolio composition: times attaining the maximum",
		"algorithm", "wins", "corpus size")
	for i, name := range e13Algos {
		tb2.AddRow(name, wins[i], len(points))
	}
	res.Tables = append(res.Tables, tb2)

	// (c) Local refinement delta.
	var gains []float64
	for _, p := range points {
		if p.Improve < p.Base {
			res.failf("Improve worsened a selection: %d -> %d", p.Base, p.Improve)
		}
		gains = append(gains, float64(p.Improve-p.Base))
	}
	tb3 := table.New("Hill-climbing refinement over portfolio best",
		"mean gain", "max gain", "corpus size")
	tb3.AddRow(stats.Mean(gains), stats.Max(gains), len(points))
	res.Tables = append(res.Tables, tb3)
	res.note("Best-of-T sampling dominates single-shot sampling (the Lemma 4.2 expectation argument converts to a high-probability statement); the portfolio is genuinely heterogeneous — no single algorithm wins everywhere; hill climbing never loses and occasionally sharpens the certificate.")
	return nil
}

// SpecE14 compares broadcast protocols across topologies — the paper's
// application: wireless-expansion-based schedules make radio broadcast
// effective where flooding deadlocks, and the decay protocol of [5] pays
// the log factor that Theorem 1.1 says is necessary in general. One shard
// per topology plus one per torus size for the scaling study.
var SpecE14 = &Spec{
	ID:       "E14",
	Title:    "Radio broadcast protocols across topologies",
	PaperRef: "Introduction; Section 5; [5], [7]",
	Shards:   e14Shards,
	Reduce:   e14Reduce,
}

// e14Proto is one protocol run on one topology.
type e14Proto struct {
	Rounds    int  `json:"rounds"`
	Completed bool `json:"completed"`
}

// e14Point is the per-topology shard result.
type e14Point struct {
	Name  string   `json:"name"`
	Skip  bool     `json:"skip,omitempty"`
	N     int      `json:"n"`
	Flood e14Proto `json:"flood"`
	PF    e14Proto `json:"prob_flood"`
	Dec   e14Proto `json:"decay"`
	RR    e14Proto `json:"round_robin"`
	Spk   e14Proto `json:"spokesman"`
}

// e14Torus is the per-torus-size shard result for the scaling study.
type e14Torus struct {
	Size      int     `json:"size"`
	N         int     `json:"n"`
	Diam      int     `json:"diam"`
	Scale     float64 `json:"scale"`
	Mean      float64 `json:"mean_rounds"`
	Trials    int     `json:"trials"`
	Completed int     `json:"completed"`
	SpkRounds int     `json:"spk_rounds"`
}

func e14Names(cfg Config) []string {
	return []string{"cplus", "torus", "hypercube", "margulis", "chain-4x16"}
}

func e14Build(name string, cfg Config, r *rng.RNG) (*graph.Graph, int, error) {
	cpSize, torusSize, hyperDim := 32, 12, 7
	if cfg.Quick {
		cpSize, torusSize, hyperDim = 16, 8, 5
	}
	switch name {
	case "cplus":
		return gen.CPlus(cpSize), 0, nil
	case "torus":
		return gen.Torus(torusSize, torusSize), 0, nil
	case "hypercube":
		return gen.Hypercube(hyperDim), 0, nil
	case "margulis":
		return gen.Margulis(8), 0, nil
	case "chain-4x16":
		ch, err := badgraph.NewChain(4, 16, r)
		if err != nil {
			return nil, 0, err
		}
		return ch.G, ch.Root, nil
	default:
		return nil, 0, fmt.Errorf("e14: unknown instance %q", name)
	}
}

func e14TorusSizes(cfg Config) []int {
	sizes := []int{6, 9, 12, 16}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	return sizes
}

func e14Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, name := range e14Names(cfg) {
		name := name
		shards = append(shards, Shard{
			Key: "proto/" + name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g, source, err := e14Build(name, cfg, r)
				if err != nil {
					if name != "chain-4x16" {
						return nil, err
					}
					// Chain construction can fail on degenerate parameters;
					// drop the instance rather than failing the experiment.
					return e14Point{Name: name, Skip: true}, nil
				}
				const budget = 2_000_000
				pt := e14Point{Name: name, N: g.N()}
				flood, err := radio.Run(g, source, radio.Flood{}, 2000)
				if err != nil {
					return nil, err
				}
				pf, err := radio.Run(g, source, &radio.ProbFlood{P: 0.5, R: r.Split()}, budget)
				if err != nil {
					return nil, err
				}
				dec, err := radio.Run(g, source, &radio.Decay{R: r.Split()}, budget)
				if err != nil {
					return nil, err
				}
				rr, err := radio.Run(g, source, radio.RoundRobin{}, g.N()*g.N()+g.N())
				if err != nil {
					return nil, err
				}
				spk, err := radio.Run(g, source, &radio.Spokesman{R: r.Split(), Trials: 4}, budget)
				if err != nil {
					return nil, err
				}
				pt.Flood = e14Proto{flood.Rounds, flood.Completed}
				pt.PF = e14Proto{pf.Rounds, pf.Completed}
				pt.Dec = e14Proto{dec.Rounds, dec.Completed}
				pt.RR = e14Proto{rr.Rounds, rr.Completed}
				pt.Spk = e14Proto{spk.Rounds, spk.Completed}
				return pt, nil
			},
		})
	}
	for _, sz := range e14TorusSizes(cfg) {
		sz := sz
		shards = append(shards, Shard{
			Key: sprintfName("scaling/torus-%d", sz),
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g := gen.Torus(sz, sz)
				diam, _ := g.Diameter()
				trials := cfg.trials(5, 2)
				// The Monte-Carlo engine replaces the hand-rolled trial
				// loop: one shared adjacency-row build, deterministic at any
				// worker count.
				mc, err := radio.MonteCarlo(g, 0,
					func(tr *rng.RNG) radio.Protocol { return &radio.Decay{R: tr} },
					trials, radio.Options{RunOpts: runopts.RunOpts{Seed: r.Uint64()}, MaxRounds: 2_000_000, TraceRounds: -1})
				if err != nil {
					return nil, err
				}
				spk, err := radio.Run(g, 0, &radio.Spokesman{}, 2_000_000)
				if err != nil {
					return nil, err
				}
				return e14Torus{
					Size: sz, N: g.N(), Diam: diam,
					Scale:     float64(diam) * bounds.Log2(float64(g.N())),
					Mean:      mc.Rounds.Mean,
					Trials:    trials,
					Completed: mc.Completed,
					SpkRounds: spk.Rounds,
				}, nil
			},
		})
	}
	return shards, nil
}

func e14Reduce(cfg Config, shards []ShardResult, res *Result) error {
	nProto := len(e14Names(cfg))
	tb := table.New("Rounds to complete (DNF = did not finish in budget)",
		"graph", "n", "flood", "prob-flood-0.5", "decay", "round-robin", "spokesman")
	fmtRounds := func(p e14Proto) interface{} {
		if !p.Completed {
			return "DNF"
		}
		return p.Rounds
	}
	points, err := decodeAll[e14Point](shards[:nProto])
	if err != nil {
		return err
	}
	for _, p := range points {
		if p.Skip {
			continue
		}
		if !p.Dec.Completed || !p.Spk.Completed || !p.RR.Completed {
			res.failf("%s: decay/spokesman/round-robin must complete (got %v/%v/%v)",
				p.Name, p.Dec.Completed, p.Spk.Completed, p.RR.Completed)
		}
		if p.Name == "cplus" && p.Flood.Completed {
			res.failf("flooding completed on C⁺ — collision model broken")
		}
		if p.Spk.Completed && p.Dec.Completed && p.Spk.Rounds > p.Dec.Rounds*4+16 {
			// The centralized spokesman schedule should never be far worse
			// than decay.
			res.failf("%s: spokesman (%d) much slower than decay (%d)",
				p.Name, p.Spk.Rounds, p.Dec.Rounds)
		}
		tb.AddRow(p.Name, p.N, fmtRounds(p.Flood), fmtRounds(p.PF),
			fmtRounds(p.Dec), fmtRounds(p.RR), fmtRounds(p.Spk))
	}
	res.Tables = append(res.Tables, tb)

	// Decay scaling on a benign family: on tori (constant arboricity!) the
	// decay protocol's completion time grows near-linearly with D·log n —
	// the generic overhead that the low-arboricity corollary says a
	// topology-aware spokesman schedule avoids.
	tb2 := table.New("Decay vs spokesman scaling on tori",
		"torus", "n", "D", "D·log2 n", "decay rounds (mean)", "spokesman rounds")
	tori, err := decodeAll[e14Torus](shards[nProto:])
	if err != nil {
		return err
	}
	var xs, ys []float64
	for _, t := range tori {
		if t.Completed < t.Trials {
			res.failf("torus %dx%d: %d/%d decay trials did not complete",
				t.Size, t.Size, t.Trials-t.Completed, t.Trials)
		}
		tb2.AddRow(sprintfName("%dx%d", t.Size, t.Size), t.N, t.Diam, t.Scale, t.Mean, t.SpkRounds)
		xs = append(xs, t.Scale)
		ys = append(ys, t.Mean)
	}
	if len(xs) >= 3 {
		corr := stats.Pearson(xs, ys)
		res.note("Decay completion time vs D·log2(n): Pearson correlation %.3f (positive scaling as the BGI analysis predicts).", corr)
		if corr < 0.5 {
			res.failf("decay scaling correlation too weak: %g", corr)
		}
	}
	res.Tables = append(res.Tables, tb2)
	res.note("Flooding deadlocks exactly where unique-neighbor expansion vanishes (C⁺); the spokesman schedule — transmit a subset with a large S-excluding unique neighborhood — completes everywhere, operationalizing wireless expansion; Decay [5] pays its log-factor overhead but needs no topology knowledge.")
	return nil
}
