package experiments

import (
	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/stats"
	"wexp/internal/table"
)

// E13Ablation quantifies the library's design choices on a fixed corpus:
// (a) the decay sampler's trial budget (Lemma 4.2 only guarantees the
// expectation; best-of-T sharpens it), (b) which portfolio member wins how
// often, and (c) what the hill-climbing refinement adds on top of the best
// certified selection.
func E13Ablation(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E13",
		Title:    "Ablations: decay trials, portfolio composition, local refinement",
		PaperRef: "Lemma 4.2 (sampler); library design choices",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0x13)
	var corpus []*graph.Bipartite
	core32, _ := badgraph.NewCore(32)
	corpus = append(corpus, core32.B)
	gb, _ := badgraph.NewGBad(16, 8, 5)
	corpus = append(corpus, gb.B)
	count := cfg.trials(10, 4)
	for i := 0; i < count; i++ {
		corpus = append(corpus, gen.RandomBipartite(24, 36, 0.12, r))
	}

	// (a) Decay trial budget.
	budgets := []int{1, 4, 16, 64}
	if cfg.Quick {
		budgets = budgets[:3]
	}
	tb := table.New("Decay sampler: mean unique cover vs trial budget",
		"trials", "mean |Γ¹|", "min |Γ¹|", "mean fraction of portfolio best")
	meanAt := map[int]float64{}
	for _, T := range budgets {
		var vals, fracs []float64
		for _, b := range corpus {
			d := spokesman.Decay(b, T, r)
			best := spokesman.BestDeterministic(b)
			if d2 := d.Unique; d2 > best.Unique {
				best = d
			}
			vals = append(vals, float64(d.Unique))
			if best.Unique > 0 {
				fracs = append(fracs, float64(d.Unique)/float64(best.Unique))
			}
		}
		meanAt[T] = stats.Mean(vals)
		tb.AddRow(T, stats.Mean(vals), stats.Min(vals), stats.Mean(fracs))
	}
	if meanAt[budgets[len(budgets)-1]] < meanAt[budgets[0]]-1e-9 {
		res.failf("decay quality decreased with budget: %g -> %g",
			meanAt[budgets[0]], meanAt[budgets[len(budgets)-1]])
	}
	res.Tables = append(res.Tables, tb)

	// (b) Portfolio composition: per algorithm, how often it attains the
	// portfolio maximum.
	algos := []struct {
		name string
		run  func(b *graph.Bipartite) spokesman.Selection
	}{
		{"greedy", spokesman.GreedyUnique},
		{"partition", spokesman.PartitionSelect},
		{"recursive", spokesman.PartitionRecursive},
		{"degree-class", func(b *graph.Bipartite) spokesman.Selection {
			return spokesman.DegreeClass(b, spokesman.OptimalC)
		}},
		{"decay-16", func(b *graph.Bipartite) spokesman.Selection {
			return spokesman.Decay(b, 16, r)
		}},
	}
	wins := make([]int, len(algos))
	for _, b := range corpus {
		best := 0
		scores := make([]int, len(algos))
		for i, a := range algos {
			scores[i] = a.run(b).Unique
			if scores[i] > best {
				best = scores[i]
			}
		}
		for i, sc := range scores {
			if sc == best {
				wins[i]++
			}
		}
	}
	tb2 := table.New("Portfolio composition: times attaining the maximum",
		"algorithm", "wins", "corpus size")
	for i, a := range algos {
		tb2.AddRow(a.name, wins[i], len(corpus))
	}
	res.Tables = append(res.Tables, tb2)

	// (c) Local refinement delta.
	var gains []float64
	for _, b := range corpus {
		base := spokesman.Best(b, 8, r)
		imp := spokesman.Improve(b, base, 6)
		if imp.Unique < base.Unique {
			res.failf("Improve worsened a selection: %d -> %d", base.Unique, imp.Unique)
		}
		gains = append(gains, float64(imp.Unique-base.Unique))
	}
	tb3 := table.New("Hill-climbing refinement over portfolio best",
		"mean gain", "max gain", "corpus size")
	tb3.AddRow(stats.Mean(gains), stats.Max(gains), len(corpus))
	res.Tables = append(res.Tables, tb3)
	res.note("Best-of-T sampling dominates single-shot sampling (the Lemma 4.2 expectation argument converts to a high-probability statement); the portfolio is genuinely heterogeneous — no single algorithm wins everywhere; hill climbing never loses and occasionally sharpens the certificate.")
	return res, nil
}

// E14Broadcast compares broadcast protocols across topologies — the
// paper's application: wireless-expansion-based schedules make radio
// broadcast effective where flooding deadlocks, and the decay protocol of
// [5] pays the log factor that Theorem 1.1 says is necessary in general.
func E14Broadcast(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E14",
		Title:    "Radio broadcast protocols across topologies",
		PaperRef: "Introduction; Section 5; [5], [7]",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0x14)
	type inst struct {
		name   string
		g      *graph.Graph
		source int
	}
	var instances []inst
	cpSize, torusSize, hyperDim := 32, 12, 7
	if cfg.Quick {
		cpSize, torusSize, hyperDim = 16, 8, 5
	}
	instances = append(instances,
		inst{"cplus", gen.CPlus(cpSize), 0},
		inst{"torus", gen.Torus(torusSize, torusSize), 0},
		inst{"hypercube", gen.Hypercube(hyperDim), 0},
		inst{"margulis", gen.Margulis(8), 0},
	)
	if ch, err := badgraph.NewChain(4, 16, r); err == nil {
		instances = append(instances, inst{"chain-4x16", ch.G, ch.Root})
	}

	tb := table.New("Rounds to complete (DNF = did not finish in budget)",
		"graph", "n", "flood", "prob-flood-0.5", "decay", "round-robin", "spokesman")
	budget := 2_000_000
	fmtRounds := func(r radio.RunResult) interface{} {
		if !r.Completed {
			return "DNF"
		}
		return r.Rounds
	}
	for _, in := range instances {
		flood, err := radio.Run(in.g, in.source, radio.Flood{}, 2000)
		if err != nil {
			return nil, err
		}
		pf, err := radio.Run(in.g, in.source, &radio.ProbFlood{P: 0.5, R: r.Split()}, budget)
		if err != nil {
			return nil, err
		}
		dec, err := radio.Run(in.g, in.source, &radio.Decay{R: r.Split()}, budget)
		if err != nil {
			return nil, err
		}
		rr, err := radio.Run(in.g, in.source, radio.RoundRobin{}, in.g.N()*in.g.N()+in.g.N())
		if err != nil {
			return nil, err
		}
		spk, err := radio.Run(in.g, in.source, &radio.Spokesman{R: r.Split(), Trials: 4}, budget)
		if err != nil {
			return nil, err
		}
		if !dec.Completed || !spk.Completed || !rr.Completed {
			res.failf("%s: decay/spokesman/round-robin must complete (got %v/%v/%v)",
				in.name, dec.Completed, spk.Completed, rr.Completed)
		}
		if in.name == "cplus" && flood.Completed {
			res.failf("flooding completed on C⁺ — collision model broken")
		}
		if spk.Completed && dec.Completed && spk.Rounds > dec.Rounds*4+16 {
			// The centralized spokesman schedule should never be far worse
			// than decay.
			res.failf("%s: spokesman (%d) much slower than decay (%d)",
				in.name, spk.Rounds, dec.Rounds)
		}
		tb.AddRow(in.name, in.g.N(), fmtRounds(flood), fmtRounds(pf),
			fmtRounds(dec), fmtRounds(rr), fmtRounds(spk))
	}
	res.Tables = append(res.Tables, tb)

	// Decay scaling on a benign family: on tori (constant arboricity!) the
	// decay protocol's completion time grows near-linearly with D·log n —
	// the generic overhead that the low-arboricity corollary says a
	// topology-aware spokesman schedule avoids.
	sizes := []int{6, 9, 12, 16}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	tb2 := table.New("Decay vs spokesman scaling on tori",
		"torus", "n", "D", "D·log2 n", "decay rounds (mean)", "spokesman rounds")
	var xs2, ys2 []float64
	trials := cfg.trials(5, 2)
	for _, sz := range sizes {
		g := gen.Torus(sz, sz)
		diam, _ := g.Diameter()
		scale := float64(diam) * bounds.Log2(float64(g.N()))
		// The Monte-Carlo engine replaces the hand-rolled trial loop: one
		// shared adjacency-row build, deterministic at any worker count.
		mc, err := radio.MonteCarlo(g, 0,
			func(tr *rng.RNG) radio.Protocol { return &radio.Decay{R: tr} },
			trials, radio.Options{Seed: r.Uint64(), MaxRounds: 2_000_000, TraceRounds: -1})
		if err != nil {
			return nil, err
		}
		if mc.Completed < trials {
			res.failf("torus %dx%d: %d/%d decay trials did not complete", sz, sz, trials-mc.Completed, trials)
		}
		spk, err := radio.Run(g, 0, &radio.Spokesman{}, 2_000_000)
		if err != nil {
			return nil, err
		}
		mean := mc.Rounds.Mean
		tb2.AddRow(sprintfName("%dx%d", sz, sz), g.N(), diam, scale, mean, spk.Rounds)
		xs2 = append(xs2, scale)
		ys2 = append(ys2, mean)
	}
	if len(xs2) >= 3 {
		corr := stats.Pearson(xs2, ys2)
		res.note("Decay completion time vs D·log2(n): Pearson correlation %.3f (positive scaling as the BGI analysis predicts).", corr)
		if corr < 0.5 {
			res.failf("decay scaling correlation too weak: %g", corr)
		}
	}
	res.Tables = append(res.Tables, tb2)
	res.note("Flooding deadlocks exactly where unique-neighbor expansion vanishes (C⁺); the spokesman schedule — transmit a subset with a large S-excluding unique neighborhood — completes everywhere, operationalizing wireless expansion; Decay [5] pays its log-factor overhead but needs no topology knowledge.")
	return res, nil
}
