package experiments

import (
	"fmt"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/runopts"
	"wexp/internal/table"
)

// SpecE15 stresses the Decay protocol beyond the Chlamtac–Kutten unit-disk
// rule: the same schedule runs under SINR/physical interference,
// probabilistic arc fading, and a budgeted jammer, one shard per
// (graph, model) grid point. The reproduction's headline protocol must
// survive the models the paper abstracts away — and the jammer shard
// demonstrates the model where no protocol can finish.
var SpecE15 = &Spec{
	ID:       "E15",
	Title:    "Decay broadcast across interference models",
	PaperRef: "Section 2 model discussion; [5], [8]",
	Shards:   e15Shards,
	Reduce:   e15Reduce,
}

// e15Point is the per-(graph, model) shard result.
type e15Point struct {
	Graph        string  `json:"graph"`
	Model        string  `json:"model"` // canonical model name
	Spec         string  `json:"spec"`  // the short spec the grid used
	N            int     `json:"n"`
	Trials       int     `json:"trials"`
	Completed    int     `json:"completed"`
	MeanRounds   float64 `json:"mean_rounds"`
	MeanInformed float64 `json:"mean_informed"`
	Collisions   int64   `json:"collisions"`
}

// e15MaxRounds bounds every trial; completing models finish orders of
// magnitude earlier, and jammed trials plateau long before it.
const e15MaxRounds = 4000

func e15Graphs(cfg Config) []struct {
	name string
	make func() *graph.Graph
} {
	if cfg.Quick {
		return []struct {
			name string
			make func() *graph.Graph
		}{
			{"hypercube-4", func() *graph.Graph { return gen.Hypercube(4) }},
			{"torus-4x4", func() *graph.Graph { return gen.Torus(4, 4) }},
		}
	}
	return []struct {
		name string
		make func() *graph.Graph
	}{
		{"hypercube-6", func() *graph.Graph { return gen.Hypercube(6) }},
		{"torus-8x8", func() *graph.Graph { return gen.Torus(8, 8) }},
	}
}

// e15Models is the model grid, by short spec (parsed per shard).
var e15Models = []string{"unit-disk", "sinr", "fading:0.25", "jam:2"}

func e15Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, gr := range e15Graphs(cfg) {
		for _, spec := range e15Models {
			gr, spec := gr, spec
			shards = append(shards, Shard{
				Key: gr.name + "/" + spec,
				Run: func(cfg Config, r *rng.RNG) (any, error) {
					model, err := radio.ParseModel(spec)
					if err != nil {
						return nil, err
					}
					g := gr.make()
					trials := cfg.trials(8, 3)
					mc, err := radio.MonteCarlo(g, 0,
						func(r *rng.RNG) radio.Protocol { return &radio.Decay{R: r} },
						trials, radio.Options{
							RunOpts:     runopts.RunOpts{Seed: r.Uint64()},
							MaxRounds:   e15MaxRounds,
							TraceRounds: -1,
							Model:       model,
						})
					if err != nil {
						return nil, err
					}
					informed := 0.0
					for _, tr := range mc.PerTrial {
						informed += float64(tr.InformedCount)
					}
					return e15Point{
						Graph:        gr.name,
						Model:        mc.Model,
						Spec:         spec,
						N:            g.N(),
						Trials:       trials,
						Completed:    mc.Completed,
						MeanRounds:   mc.Rounds.Mean,
						MeanInformed: informed / float64(trials),
						Collisions:   mc.TotalCollisions,
					}, nil
				},
			})
		}
	}
	return shards, nil
}

func e15Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e15Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("Decay under interference models",
		"graph", "model", "n", "completed", "rounds (mean)", "informed (mean)", "collisions")
	for _, p := range points {
		tb.AddRow(p.Graph, p.Model, p.N, fmt.Sprintf("%d/%d", p.Completed, p.Trials),
			p.MeanRounds, p.MeanInformed, p.Collisions)
		switch p.Spec {
		case "unit-disk", "sinr", "fading:0.25":
			// Decay's completion guarantee is robust to the benign models:
			// SINR reception here strictly contains unit-disk reception
			// (single transmitters always pass at degree ≤ 19), and p=0.25
			// fading only delays delivery.
			if p.Completed != p.Trials {
				res.failf("%s/%s: only %d/%d trials completed", p.Graph, p.Spec, p.Completed, p.Trials)
			}
		case "jam:2":
			// A budget-k jammer always has the last uninformed vertex's
			// sole reception within budget, so no trial can ever complete —
			// but Decay still informs the bulk of the graph before the
			// plateau.
			if p.Completed != 0 {
				res.failf("%s/jam: %d trials completed despite the jammer", p.Graph, p.Completed)
			}
			if p.MeanInformed < float64(p.N)*3/4 {
				res.failf("%s/jam: mean informed plateau %.1f below 3n/4=%.1f",
					p.Graph, p.MeanInformed, float64(p.N)*3/4)
			}
			if p.MeanRounds != e15MaxRounds {
				res.failf("%s/jam: jammed trials should exhaust the %d-round budget, mean %.1f",
					p.Graph, e15MaxRounds, p.MeanRounds)
			}
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("Decay completes under every benign model: the unit-disk rule, the SINR threshold (whose reception set contains unit-disk's at these degrees), and 25%% arc fading.")
	res.note("The budget-2 jammer proves the negative: completion is impossible for any protocol (the last reception is always within budget), yet the informed plateau stays above 3n/4 — the adversary postpones, it cannot contain.")
	return nil
}

// SpecE16 compares the centralized spokesman schedule against Decay across
// receive-rule models, including multi-message broadcast where completion
// means every vertex holds all M messages. One shard per
// (graph, protocol, model).
var SpecE16 = &Spec{
	ID:       "E16",
	Title:    "Spokesman vs Decay schedules across models",
	PaperRef: "Sections 4–5; [7]",
	Shards:   e16Shards,
	Reduce:   e16Reduce,
}

// e16Point is the per-(graph, protocol, model) shard result.
type e16Point struct {
	Graph      string  `json:"graph"`
	Protocol   string  `json:"protocol"`
	Model      string  `json:"model"`
	Spec       string  `json:"spec"`
	N          int     `json:"n"`
	Trials     int     `json:"trials"`
	Completed  int     `json:"completed"`
	MeanRounds float64 `json:"mean_rounds"`
	Collisions int64   `json:"collisions"`
}

var e16Models = []string{"unit-disk", "multi:4", "fading:0.25"}

func e16Graphs(cfg Config) []struct {
	name string
	make func() *graph.Graph
} {
	if cfg.Quick {
		return []struct {
			name string
			make func() *graph.Graph
		}{
			{"cplus-12", func() *graph.Graph { return gen.CPlus(12) }},
		}
	}
	return []struct {
		name string
		make func() *graph.Graph
	}{
		{"cplus-24", func() *graph.Graph { return gen.CPlus(24) }},
		{"hypercube-5", func() *graph.Graph { return gen.Hypercube(5) }},
	}
}

var e16Protocols = []struct {
	name    string
	factory radio.Factory
}{
	{"decay", func(r *rng.RNG) radio.Protocol { return &radio.Decay{R: r} }},
	{"spokesman", func(r *rng.RNG) radio.Protocol { return &radio.Spokesman{R: r, Trials: 4} }},
}

func e16Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, gr := range e16Graphs(cfg) {
		for _, pr := range e16Protocols {
			for _, spec := range e16Models {
				gr, pr, spec := gr, pr, spec
				shards = append(shards, Shard{
					Key: fmt.Sprintf("%s/%s/%s", gr.name, pr.name, spec),
					Run: func(cfg Config, r *rng.RNG) (any, error) {
						model, err := radio.ParseModel(spec)
						if err != nil {
							return nil, err
						}
						g := gr.make()
						trials := cfg.trials(6, 2)
						mc, err := radio.MonteCarlo(g, 0, pr.factory, trials, radio.Options{
							RunOpts:     runopts.RunOpts{Seed: r.Uint64()},
							MaxRounds:   e15MaxRounds,
							TraceRounds: -1,
							Model:       model,
						})
						if err != nil {
							return nil, err
						}
						return e16Point{
							Graph:      gr.name,
							Protocol:   pr.name,
							Model:      mc.Model,
							Spec:       spec,
							N:          g.N(),
							Trials:     trials,
							Completed:  mc.Completed,
							MeanRounds: mc.Rounds.Mean,
							Collisions: mc.TotalCollisions,
						}, nil
					},
				})
			}
		}
	}
	return shards, nil
}

func e16Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e16Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("Spokesman vs Decay across models",
		"graph", "protocol", "model", "completed", "rounds (mean)", "collisions")
	// Index mean rounds by (graph, protocol, spec) for the cross claims.
	mean := map[string]float64{}
	for _, p := range points {
		tb.AddRow(p.Graph, p.Protocol, p.Model, fmt.Sprintf("%d/%d", p.Completed, p.Trials),
			p.MeanRounds, p.Collisions)
		mean[p.Graph+"|"+p.Protocol+"|"+p.Spec] = p.MeanRounds
		if p.Protocol == "spokesman" && p.Spec == "multi:4" {
			// The centralized spokesman schedule is frontier-driven: once
			// every vertex holds ≥ 1 message there is no uninformed
			// frontier, nobody is scheduled, and the remaining message
			// exchange deadlocks — informed is not done under
			// multi-message. The experiment pins this failure mode.
			if p.Completed != 0 {
				res.failf("%s/spokesman/multi: %d trials completed — frontier schedules should deadlock",
					p.Graph, p.Completed)
			}
			continue
		}
		if p.Completed != p.Trials {
			res.failf("%s/%s/%s: only %d/%d trials completed",
				p.Graph, p.Protocol, p.Spec, p.Completed, p.Trials)
		}
	}
	for _, gr := range e16Graphs(cfg) {
		// Four concurrent broadcasts cannot be meaningfully cheaper than
		// one for a schedule that actually finishes them: all four
		// messages must still reach everyone. The extra origins buy a
		// little parallel head start, hence the small slack.
		single := mean[gr.name+"|decay|unit-disk"]
		multi := mean[gr.name+"|decay|multi:4"]
		if multi < single*0.9 {
			res.failf("%s/decay: multi-message mean %.1f well below single-message %.1f",
				gr.name, multi, single)
		}
		// The centralized spokesman schedule must not lose to the
		// distributed Decay protocol under the paper's own model — that
		// advantage is the point of wireless expansion.
		if sp, dec := mean[gr.name+"|spokesman|unit-disk"], mean[gr.name+"|decay|unit-disk"]; sp > dec {
			res.failf("%s: spokesman mean %.1f slower than decay %.1f under unit-disk", gr.name, sp, dec)
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("Decay completes every model including multi-message; the spokesman schedule survives fading but deadlocks under multi-message — it schedules only while an uninformed frontier exists, and 'everyone holds one message' is not 'everyone holds all four'.")
	res.note("Multi-message broadcast (m=4) costs Decay at least as much as single-message, and the centralized spokesman schedule stays ahead of Decay under the paper's model.")
	return nil
}
