package experiments

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"wexp/internal/rng"
	"wexp/internal/runopts"
)

// encodeArtifact fails the test on error.
func encodeArtifact(t *testing.T, a *Artifact) []byte {
	t.Helper()
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWorkerCountInvariance is the engine's central determinism guarantee:
// the artifact bytes of a run are identical at every worker-pool width.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := Config{Seed: testSeed, Quick: true}
	// E9 exercises nested Monte-Carlo parallelism, E13 random corpora, E5
	// mixed exhaustive/adversarial shards.
	for _, spec := range []*Spec{SpecE5, SpecE9, SpecE13} {
		t.Run(spec.ID, func(t *testing.T) {
			var ref []byte
			for _, workers := range []int{1, 2, 8} {
				_, art, err := RunSpec(spec, cfg, Options{RunOpts: runopts.RunOpts{Workers: workers}})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				data := encodeArtifact(t, art)
				if ref == nil {
					ref = data
					continue
				}
				if !bytes.Equal(ref, data) {
					t.Fatalf("workers=%d produced different artifact bytes", workers)
				}
			}
		})
	}
}

// TestKillResume interrupts a checkpointed run partway (the engine's
// ShardLimit stands in for a kill) and proves that resuming reproduces the
// uninterrupted run's artifact byte-for-byte.
func TestKillResume(t *testing.T) {
	cfg := Config{Seed: testSeed, Quick: true}
	spec := SpecE2 // 7 quick shards, all cheap

	_, want, err := RunSpec(spec, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := encodeArtifact(t, want)

	ckpt := t.TempDir()
	_, _, err = RunSpec(spec, cfg, Options{
		RunOpts: runopts.RunOpts{Workers: 2}, CheckpointDir: ckpt, ShardLimit: 3,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: got err %v, want ErrInterrupted", err)
	}
	files, err := filepath.Glob(filepath.Join(ckpt, spec.ID, "shard-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("expected 3 checkpoints after interruption, found %d", len(files))
	}

	// Resume: the three checkpointed shards must be reused, the remainder
	// recomputed, and the artifact identical to the uninterrupted run.
	// Progress arrives from worker goroutines, so the counter is atomic.
	var executed atomic.Int64
	_, art, err := RunSpec(spec, cfg, Options{
		RunOpts: runopts.RunOpts{Workers: 2}, CheckpointDir: ckpt, Resume: true,
		Progress: func(id string, done, total int) { executed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, encodeArtifact(t, art)) {
		t.Fatal("resumed artifact differs from uninterrupted run")
	}
	shards, err := spec.Shards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(shards) - 3); executed.Load() != want {
		t.Fatalf("resume recomputed %d shards, want %d", executed.Load(), want)
	}

	// A second resume is a full cache hit and still byte-identical.
	executed.Store(0)
	_, art, err = RunSpec(spec, cfg, Options{
		CheckpointDir: ckpt, Resume: true,
		Progress: func(id string, done, total int) { executed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 {
		t.Fatalf("second resume recomputed %d shards, want 0", executed.Load())
	}
	if !bytes.Equal(wantBytes, encodeArtifact(t, art)) {
		t.Fatal("fully-resumed artifact differs from uninterrupted run")
	}
}

// TestResumeIgnoresStaleCheckpoints proves a checkpoint written under a
// different config is not reused.
func TestResumeIgnoresStaleCheckpoints(t *testing.T) {
	spec := SpecE2
	ckpt := t.TempDir()
	cfgA := Config{Seed: 1, Quick: true}
	if _, _, err := RunSpec(spec, cfgA, Options{CheckpointDir: ckpt}); err != nil {
		t.Fatal(err)
	}
	cfgB := Config{Seed: 2, Quick: true}
	var executed atomic.Int64
	_, _, err := RunSpec(spec, cfgB, Options{
		CheckpointDir: ckpt, Resume: true,
		Progress: func(id string, done, total int) { executed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, _ := spec.Shards(cfgB)
	if executed.Load() != int64(len(shards)) {
		t.Fatalf("stale checkpoints were reused: recomputed %d of %d shards",
			executed.Load(), len(shards))
	}
}

// TestRunWritesArtifactsAndManifest checks the on-disk layout of a multi-
// experiment run: one JSON per experiment plus MANIFEST.json, with the
// manifest checksums matching the artifact bytes.
func TestRunWritesArtifactsAndManifest(t *testing.T) {
	out := t.TempDir()
	cfg := Config{Seed: testSeed, Quick: true}
	specs := []*Spec{SpecE2, SpecE5}
	rep, err := Run(specs, cfg, Options{OutDir: out})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("unexpected failures: %d", rep.Failures)
	}
	if len(rep.Manifest.Experiments) != len(specs) {
		t.Fatalf("manifest has %d entries, want %d", len(rep.Manifest.Experiments), len(specs))
	}
	for i, e := range rep.Manifest.Experiments {
		data, err := os.ReadFile(filepath.Join(out, e.Artifact))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, encodeArtifact(t, rep.Artifacts[i])) {
			t.Fatalf("%s: on-disk artifact differs from in-memory encoding", e.ID)
		}
		if e.SHA256 == "" || !e.Pass {
			t.Fatalf("manifest entry %+v incomplete", e)
		}
	}
	if _, err := os.Stat(filepath.Join(out, "MANIFEST.json")); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateShardKeyRejected guards the registry invariant Reduce
// relies on.
func TestDuplicateShardKeyRejected(t *testing.T) {
	spec := &Spec{
		ID: "EDUP", Title: "dup", PaperRef: "-",
		Shards: func(cfg Config) ([]Shard, error) {
			sh := Shard{Key: "same", Run: func(Config, *rng.RNG) (any, error) { return 1, nil }}
			return []Shard{sh, sh}, nil
		},
		Reduce: func(Config, []ShardResult, *Result) error { return nil },
	}
	if _, _, err := RunSpec(spec, Config{}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "duplicate shard key") {
		t.Fatalf("duplicate keys not rejected: %v", err)
	}
}

// TestShardErrorPropagates checks that a failing shard aborts the run with
// the experiment and shard key in the error.
func TestShardErrorPropagates(t *testing.T) {
	spec := &Spec{
		ID: "EERR", Title: "err", PaperRef: "-",
		Shards: func(cfg Config) ([]Shard, error) {
			return []Shard{{Key: "boom", Run: func(Config, *rng.RNG) (any, error) {
				return nil, errors.New("kaput")
			}}}, nil
		},
		Reduce: func(Config, []ShardResult, *Result) error { return nil },
	}
	_, _, err := RunSpec(spec, Config{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("shard error not propagated: %v", err)
	}
}

// TestExpSaltDistinct: experiments must consume distinct streams of the
// same user seed.
func TestExpSaltDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, s := range All {
		salt := expSalt(s.ID)
		if prev, dup := seen[salt]; dup {
			t.Fatalf("salt collision between %s and %s", prev, s.ID)
		}
		seen[salt] = s.ID
	}
}
