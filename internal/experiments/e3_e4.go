package experiments

import (
	"math"

	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// SpecE3 measures the β ≥ 1 regime of Theorem 1.1 (Lemma 4.2): for
// framework graphs GS = (S, Γ⁻(S)) extracted from expander families, the
// certified spokesman cover satisfies
//
//	|Γ¹_S(S')| ≥ c · |N| / log(2·δN)
//
// with a constant c bounded away from zero across growing sizes. One shard
// per instance reports the minimum observed c; the experiment passes when
// every c exceeds a conservative floor (1/9, Lemma A.13's constant).
var SpecE3 = &Spec{
	ID:       "E3",
	Title:    "Positive result, β ≥ 1 regime",
	PaperRef: "Theorem 1.1, Lemma 4.2",
	Shards:   e3Shards,
	Reduce:   e3Reduce,
}

// e3Point is the per-instance shard result; Count is the number of sampled
// sets that landed in the β ≥ 1 regime (rows with Count == 0 are dropped).
type e3Point struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	MaxDeg  int     `json:"max_deg"`
	Count   int     `json:"sets"`
	MinC    float64 `json:"min_c"`
	MedianC float64 `json:"median_c"`
}

// e3Instance names one instance; random-regular graphs are built from the
// shard's stream.
type e3Instance struct {
	name string
	kind string
	a, b int
}

func e3Instances(cfg Config) []e3Instance {
	hyper := []int{5, 7, 9}
	marg := []int{8, 16, 24}
	regs := []struct{ n, d int }{{128, 6}, {512, 8}, {2048, 10}}
	if cfg.Quick {
		hyper, marg, regs = hyper[:2], marg[:2], regs[:2]
	}
	var out []e3Instance
	for _, d := range hyper {
		out = append(out, e3Instance{sprintfName("hypercube-%d", d), "hypercube", d, 0})
	}
	for _, m := range marg {
		out = append(out, e3Instance{sprintfName("margulis-%d", m), "margulis", m, 0})
	}
	for _, sz := range regs {
		out = append(out, e3Instance{sprintfName("regular-%d-%d", sz.n, sz.d), "regular", sz.n, sz.d})
	}
	return out
}

func (in e3Instance) build(r *rng.RNG) (*graph.Graph, error) {
	switch in.kind {
	case "hypercube":
		return gen.Hypercube(in.a), nil
	case "margulis":
		return gen.Margulis(in.a), nil
	default:
		return gen.RandomRegular(in.a, in.b, r)
	}
}

func e3Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, in := range e3Instances(cfg) {
		in := in
		shards = append(shards, Shard{
			Key: in.name,
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				g, err := in.build(r)
				if err != nil {
					return nil, err
				}
				sets := expansion.SampleSets(g, 0.25, cfg.trials(24, 8), r)
				var cs []float64
				for _, S := range sets {
					b, _ := graph.InducedBipartite(g, S)
					if b.NN() < b.NS() || b.NN() == 0 {
						continue // not the β ≥ 1 regime
					}
					sel := spokesman.Best(b, cfg.trials(12, 4), r)
					scale := bounds.PaperSpokesman(b.NN(), b.AvgDegN(), math.Inf(1))
					if scale <= 0 {
						continue
					}
					cs = append(cs, float64(sel.Unique)/scale)
				}
				pt := e3Point{Name: in.name, N: g.N(), MaxDeg: g.MaxDegree(), Count: len(cs)}
				if len(cs) > 0 {
					pt.MinC, pt.MedianC = minOf(cs), medianOf(cs)
				}
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e3Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e3Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("β ≥ 1: certified wireless cover vs |N|/log(2δN)",
		"graph", "n", "∆", "sets", "min c", "median c", "thm1.1 scale ok")
	const floor = 1.0 / 9
	for _, p := range points {
		if p.Count == 0 {
			continue
		}
		ok := p.MinC >= floor
		if !ok {
			res.failf("%s: min c = %g below floor %g", p.Name, p.MinC, floor)
		}
		tb.AddRow(p.Name, p.N, p.MaxDeg, p.Count, p.MinC, p.MedianC, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim (Lemma 4.2): there exists S' ⊆ S with |Γ¹_S(S')| = Ω(|N|/log 2δN); measured constants stay ≥ 1/9 across scales, i.e. the ratio does not decay with n — the finite-size analogue of Ω(·).")
	return nil
}

// SpecE4 measures the β < 1 regime of Theorem 1.1 (Lemma 4.3) on unbalanced
// bipartite frameworks with |S| > |N|: the certified cover must satisfy
// |Γ¹_S(S')| ≥ c·β/log(2·δS)·|S| = c·|N|/log(2δS). One shard per (|S|, |N|,
// d) grid point runs its trials sequentially on the shard's stream.
var SpecE4 = &Spec{
	ID:       "E4",
	Title:    "Positive result, β < 1 regime",
	PaperRef: "Theorem 1.1, Lemma 4.3",
	Shards:   e4Shards,
	Reduce:   e4Reduce,
}

// e4Point is the per-grid-point shard result; Valid counts the trials whose
// instance generation succeeded.
type e4Point struct {
	S     int     `json:"s"`
	N     int     `json:"n"`
	D     int     `json:"d"`
	Valid int     `json:"valid"`
	MinC  float64 `json:"min_c"`
}

func e4Grid(cfg Config) []struct{ s, n, d int } {
	params := []struct{ s, n, d int }{
		{64, 16, 3}, {128, 32, 4}, {256, 64, 4}, {512, 128, 6}, {1024, 128, 6},
	}
	if cfg.Quick {
		params = params[:3]
	}
	return params
}

func e4Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, p := range e4Grid(cfg) {
		p := p
		shards = append(shards, Shard{
			Key: sprintfName("s=%d,n=%d,d=%d", p.s, p.n, p.d),
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				trialCount := cfg.trials(5, 2)
				var valid []float64
				for i := 0; i < trialCount; i++ {
					tr := r.Split()
					b, err := gen.RandomBipartiteRegular(p.s, p.n, p.d, tr)
					if err != nil {
						continue
					}
					sel := spokesman.Best(b, 12, tr)
					scale := float64(b.NN()) / math.Max(bounds.Log2(2*b.AvgDegS()), 1)
					valid = append(valid, float64(sel.Unique)/scale)
				}
				pt := e4Point{S: p.s, N: p.n, D: p.d, Valid: len(valid)}
				if len(valid) > 0 {
					pt.MinC = minOf(valid)
				}
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e4Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e4Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("β < 1: certified cover vs |N|/log(2δS)",
		"|S|", "|N|", "β", "δS", "c = cover·log(2δS)/|N|", "ok")
	const floor = 1.0 / 9
	for _, p := range points {
		if p.Valid == 0 {
			continue
		}
		beta := float64(p.N) / float64(p.S)
		ok := p.MinC >= floor
		if !ok {
			res.failf("|S|=%d |N|=%d: min c = %g below floor %g", p.S, p.N, p.MinC, floor)
		}
		tb.AddRow(p.S, p.N, beta, float64(p.D), p.MinC, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim (Lemma 4.3): for β ∈ [1/∆, 1), |Γ¹_S(S')| = Ω(β/log δS)·|S|; the reduction to the β ≥ 1 regime via the greedy sub-cover S'' preserves the guarantee.")
	return nil
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
			cp[j-1], cp[j] = cp[j], cp[j-1]
		}
	}
	if len(cp) == 0 {
		return math.NaN()
	}
	return cp[len(cp)/2]
}
