package experiments

import (
	"math"

	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// E3PositiveHighBeta measures the β ≥ 1 regime of Theorem 1.1 (Lemma 4.2):
// for framework graphs GS = (S, Γ⁻(S)) extracted from expander families,
// the certified spokesman cover satisfies
//
//	|Γ¹_S(S')| ≥ c · |N| / log(2·δN)
//
// with a constant c bounded away from zero across growing sizes. The table
// reports the minimum observed c per instance; the experiment passes when
// every c exceeds a conservative floor (1/9, Lemma A.13's constant).
func E3PositiveHighBeta(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E3",
		Title:    "Positive result, β ≥ 1 regime",
		PaperRef: "Theorem 1.1, Lemma 4.2",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0xE3)
	type inst struct {
		name string
		g    *graph.Graph
	}
	var instances []inst
	hyper := []int{5, 7, 9}
	marg := []int{8, 16, 24}
	regs := []struct{ n, d int }{{128, 6}, {512, 8}, {2048, 10}}
	if cfg.Quick {
		hyper, marg, regs = hyper[:2], marg[:2], regs[:2]
	}
	for _, d := range hyper {
		instances = append(instances, inst{sprintfName("hypercube-%d", d), gen.Hypercube(d)})
	}
	for _, m := range marg {
		instances = append(instances, inst{sprintfName("margulis-%d", m), gen.Margulis(m)})
	}
	for _, sz := range regs {
		g, err := gen.RandomRegular(sz.n, sz.d, r)
		if err != nil {
			return nil, err
		}
		instances = append(instances, inst{sprintfName("regular-%d-%d", sz.n, sz.d), g})
	}

	tb := table.New("β ≥ 1: certified wireless cover vs |N|/log(2δN)",
		"graph", "n", "∆", "sets", "min c", "median c", "thm1.1 scale ok")
	const floor = 1.0 / 9
	for _, in := range instances {
		sets := expansion.SampleSets(in.g, 0.25, cfg.trials(24, 8), r)
		var cs []float64
		for _, S := range sets {
			b, _ := graph.InducedBipartite(in.g, S)
			if b.NN() < b.NS() || b.NN() == 0 {
				continue // not the β ≥ 1 regime
			}
			sel := spokesman.Best(b, cfg.trials(12, 4), r)
			scale := bounds.PaperSpokesman(b.NN(), b.AvgDegN(), math.Inf(1))
			if scale <= 0 {
				continue
			}
			cs = append(cs, float64(sel.Unique)/scale)
		}
		if len(cs) == 0 {
			continue
		}
		minC, medC := minOf(cs), medianOf(cs)
		ok := minC >= floor
		if !ok {
			res.failf("%s: min c = %g below floor %g", in.name, minC, floor)
		}
		tb.AddRow(in.name, in.g.N(), in.g.MaxDegree(), len(cs), minC, medC, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim (Lemma 4.2): there exists S' ⊆ S with |Γ¹_S(S')| = Ω(|N|/log 2δN); measured constants stay ≥ 1/9 across scales, i.e. the ratio does not decay with n — the finite-size analogue of Ω(·).")
	return res, nil
}

// E4PositiveLowBeta measures the β < 1 regime of Theorem 1.1 (Lemma 4.3) on
// unbalanced bipartite frameworks with |S| > |N|: the certified cover must
// satisfy |Γ¹_S(S')| ≥ c·β/log(2·δS)·|S| = c·|N|/log(2δS).
func E4PositiveLowBeta(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E4",
		Title:    "Positive result, β < 1 regime",
		PaperRef: "Theorem 1.1, Lemma 4.3",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0xE4)
	params := []struct {
		s, n, d int
	}{
		{64, 16, 3}, {128, 32, 4}, {256, 64, 4}, {512, 128, 6}, {1024, 128, 6},
	}
	if cfg.Quick {
		params = params[:3]
	}
	tb := table.New("β < 1: certified cover vs |N|/log(2δS)",
		"|S|", "|N|", "β", "δS", "c = cover·log(2δS)/|N|", "ok")
	const floor = 1.0 / 9
	for _, p := range params {
		trialCount := cfg.trials(5, 2)
		cs := make([]float64, trialCount)
		parallelFor(trialCount, r, func(i int, tr *rng.RNG) {
			b, err := gen.RandomBipartiteRegular(p.s, p.n, p.d, tr)
			if err != nil {
				cs[i] = math.NaN()
				return
			}
			sel := spokesman.Best(b, 12, tr)
			scale := float64(b.NN()) / math.Max(bounds.Log2(2*b.AvgDegS()), 1)
			cs[i] = float64(sel.Unique) / scale
		})
		valid := cs[:0]
		for _, c := range cs {
			if !math.IsNaN(c) {
				valid = append(valid, c)
			}
		}
		if len(valid) == 0 {
			continue
		}
		minC := minOf(valid)
		beta := float64(p.n) / float64(p.s)
		ok := minC >= floor
		if !ok {
			res.failf("|S|=%d |N|=%d: min c = %g below floor %g", p.s, p.n, minC, floor)
		}
		tb.AddRow(p.s, p.n, beta, float64(p.d), minC, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim (Lemma 4.3): for β ∈ [1/∆, 1), |Γ¹_S(S')| = Ω(β/log δS)·|S|; the reduction to the β ≥ 1 regime via the greedy sub-cover S'' preserves the guarantee.")
	return res, nil
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
			cp[j-1], cp[j] = cp[j], cp[j-1]
		}
	}
	if len(cp) == 0 {
		return math.NaN()
	}
	return cp[len(cp)/2]
}
