package experiments

import (
	"math"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// SpecE5 regenerates Lemma 4.4's five properties for a sweep of core sizes
// s: exact sizes and degrees, the expansion floor β ≥ log 2s (checked
// exhaustively for s ≤ 16 and on structured adversaries beyond), and the
// wireless ceiling |Γ¹_S(S')| ≤ 2s (same exhaustive/adversarial split) —
// the paper's Figure 2 construction. One shard per core size.
var SpecE5 = &Spec{
	ID:       "E5",
	Title:    "Core graph properties",
	PaperRef: "Lemma 4.4, Figure 2",
	Shards:   e5Shards,
	Reduce:   e5Reduce,
}

// e5Point is the per-size shard result.
type e5Point struct {
	S            int     `json:"s"`
	SizeN        int     `json:"size_n"`
	DegS         int     `json:"deg_s"`
	MaxDegN      int     `json:"max_deg_n"`
	AvgDegN      float64 `json:"avg_deg_n"`
	StructOK     bool    `json:"struct_ok"` // sizes/degrees match Lemma 4.4(1)–(4)
	BetaFloor    float64 `json:"beta_floor"`
	MinExpansion float64 `json:"min_expansion"`
	WirelessCeil float64 `json:"wireless_ceil"`
	MaxUnique    int     `json:"max_unique"`
	Mode         string  `json:"mode"`
}

func e5Sizes(cfg Config) []int {
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		sizes = sizes[:5]
	}
	return sizes
}

func e5Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, s := range e5Sizes(cfg) {
		s := s
		shards = append(shards, Shard{
			Key: sprintfName("s=%d", s),
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				c, err := badgraph.NewCore(s)
				if err != nil {
					return nil, err
				}
				claims := bounds.CoreGraphClaims(s)
				b := c.B
				pt := e5Point{
					S: s, SizeN: b.NN(), DegS: b.DegS(0), MaxDegN: b.MaxDegN(),
					AvgDegN: b.AvgDegN(),
					StructOK: b.NN() == int(claims.SizeN) &&
						b.DegS(0) == claims.DegS &&
						b.MaxDegN() == claims.MaxDegN &&
						b.AvgDegN() <= claims.AvgDegNCeil+1e-9,
					BetaFloor:    claims.BetaFloor,
					WirelessCeil: claims.WirelessCeil,
				}
				// Expansion floor and wireless ceiling.
				if s <= 16 {
					pt.Mode = "exhaustive"
					// Gray-code exact solvers over all 2^s subsets.
					minRes, err := expansion.MinBipartiteExpansion(b)
					if err != nil {
						return nil, err
					}
					pt.MinExpansion = minRes.Value
					opt, err := spokesman.Exhaustive(b)
					if err != nil {
						return nil, err
					}
					pt.MaxUnique = opt.Unique
				} else {
					pt.Mode = "adversarial"
					pt.MinExpansion = math.Inf(1)
					for _, sub := range coreAdversaries(s, r, cfg.trials(60, 20)) {
						cov := float64(b.CoverSet(sub, nil)) / float64(len(sub))
						if cov < pt.MinExpansion {
							pt.MinExpansion = cov
						}
						if uq := b.UniqueCoverSet(sub, nil); uq > pt.MaxUnique {
							pt.MaxUnique = uq
						}
					}
					if sel := spokesman.BestDeterministic(b); sel.Unique > pt.MaxUnique {
						pt.MaxUnique = sel.Unique
					}
				}
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e5Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e5Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("Core graph: claimed vs measured",
		"s", "|N| (=s·log2s)", "degS (=2s−1)", "∆N (=s)", "δN (≤2s/log2s)",
		"β floor", "β measured", "βw ceil (=2s)", "best found", "mode", "ok")
	for _, p := range points {
		ok := p.StructOK &&
			p.MinExpansion >= p.BetaFloor-1e-9 &&
			float64(p.MaxUnique) <= p.WirelessCeil+1e-9
		if !ok {
			res.failf("s=%d: property violated (|N|=%d, β=%g, maxUnique=%d)",
				p.S, p.SizeN, p.MinExpansion, p.MaxUnique)
		}
		tb.AddRow(p.S, p.SizeN, p.DegS, p.MaxDegN, p.AvgDegN,
			p.BetaFloor, p.MinExpansion, p.WirelessCeil, p.MaxUnique, p.Mode, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claims 1–5 of Lemma 4.4. βw/β ≤ (2/log 2s): the wireless expansion of the core graph is smaller than its ordinary expansion by a Θ(log s) factor — the engine of the negative result.")
	return nil
}

// SpecE6 regenerates Lemmas 4.6–4.8: the expanded-core family achieves
// arbitrary expansion β* while keeping the wireless ceiling at a
// 4/log(min{∆*/β, ∆*β}) fraction of |N*|. One shard per (∆*, β*) point.
var SpecE6 = &Spec{
	ID:       "E6",
	Title:    "Generalized core graph with arbitrary expansion",
	PaperRef: "Lemmas 4.6, 4.7, 4.8",
	Shards:   e6Shards,
	Reduce:   e6Reduce,
}

// e6Point is the per-grid-point shard result; Err records a construction
// failure (reported as a FAIL by Reduce without aborting the run).
type e6Point struct {
	DeltaStar int     `json:"delta_star"`
	BetaStar  float64 `json:"beta_star"`
	Err       string  `json:"err,omitempty"`
	Branch    string  `json:"branch,omitempty"`
	CoreS     int     `json:"core_s,omitempty"`
	K         int     `json:"k,omitempty"`
	Beta      float64 `json:"beta,omitempty"`
	NS        int     `json:"ns,omitempty"`
	NN        int     `json:"nn,omitempty"`
	MaxDeg    int     `json:"max_deg,omitempty"`
	Ceil      int     `json:"ceil,omitempty"`
	LemmaCeil float64 `json:"lemma_ceil,omitempty"`
	Best      int     `json:"best,omitempty"`
}

func e6Grid(cfg Config) []struct {
	deltaStar int
	betaStar  float64
} {
	grid := []struct {
		deltaStar int
		betaStar  float64
	}{
		{32, 0.5}, {32, 1}, {32, 2}, {32, 4},
		{64, 0.5}, {64, 2}, {64, 8},
		{128, 0.25}, {128, 4}, {128, 16},
		{256, 0.125}, {256, 8}, {256, 32},
	}
	if cfg.Quick {
		grid = grid[:7]
	}
	return grid
}

func e6Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, p := range e6Grid(cfg) {
		p := p
		shards = append(shards, Shard{
			Key: sprintfName("delta=%d,beta=%g", p.deltaStar, p.betaStar),
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				pt := e6Point{DeltaStar: p.deltaStar, BetaStar: p.betaStar}
				e, err := badgraph.GeneralizedCore(p.deltaStar, p.betaStar)
				if err != nil {
					pt.Err = err.Error()
					return pt, nil
				}
				pt.Branch = "expand-S (4.8)"
				if e.SideN {
					pt.Branch = "expand-N (4.7)"
				}
				pt.CoreS, pt.K, pt.Beta = e.Core.S, e.K, e.Beta()
				pt.NS, pt.NN = e.B.NS(), e.B.NN()
				pt.MaxDeg = maxInt(e.B.MaxDegS(), e.B.MaxDegN())
				pt.Ceil = e.WirelessCeil()
				frac := bounds.GeneralizedCoreWirelessFrac(p.deltaStar, e.Beta())
				pt.LemmaCeil = frac * float64(e.B.NN())
				pt.Best = spokesman.BestDeterministic(e.B).Unique
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e6Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e6Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("Generalized core: achieved parameters and ceiling",
		"∆* budget", "β* target", "branch", "s", "k", "β achieved",
		"|S*|", "|N*|", "max deg", "ceiling", "lemma frac·|N*|", "best found", "ok")
	for _, p := range points {
		if p.Err != "" {
			res.failf("∆*=%d β*=%g: %s", p.DeltaStar, p.BetaStar, p.Err)
			continue
		}
		ok := p.MaxDeg <= p.DeltaStar &&
			float64(p.Ceil) <= p.LemmaCeil+1e-9 &&
			p.Best <= p.Ceil &&
			math.Abs(float64(p.NN)-p.Beta*float64(p.NS)) < 1e-6
		if !ok {
			res.failf("∆*=%d β*=%g: claims violated", p.DeltaStar, p.BetaStar)
		}
		tb.AddRow(p.DeltaStar, p.BetaStar, p.Branch, p.CoreS, p.K, p.Beta,
			p.NS, p.NN, p.MaxDeg, p.Ceil, p.LemmaCeil, p.Best, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claims of Lemma 4.6: max degree ≤ ∆*, |N*| = β·|S*|, wireless ceiling ≤ (4/log min{∆*/β, ∆*β})·|N*|; integer rounding makes achieved β differ from β* by at most a constant factor.")
	return nil
}

// SpecE7 regenerates Section 4.3.3 / Corollary 4.11 / Theorem 1.2: a
// generalized core plugged onto a good expander yields a graph whose
// ordinary expansion survives (β̃ ≥ (1−ε)β on sampled sets) while the
// witness set S* has wireless expansion at most ceiling/|S*| — smaller than
// β̃ by the promised Θ(log) factor. One shard per (n, ε) point.
var SpecE7 = &Spec{
	ID:       "E7",
	Title:    "Worst-case plugged expander",
	PaperRef: "Section 4.3.3, Claims 4.9–4.10, Corollary 4.11, Theorem 1.2",
	Shards:   e7Shards,
	Reduce:   e7Reduce,
}

// e7Point is the per-(n, ε) shard result.
type e7Point struct {
	N           int     `json:"n"`
	Eps         float64 `json:"eps"`
	Err         string  `json:"err,omitempty"`
	NTilde      int     `json:"n_tilde,omitempty"`
	MaxDeg      int     `json:"max_deg,omitempty"`
	SStar       int     `json:"s_star,omitempty"`
	Est         float64 `json:"beta_sampled,omitempty"`
	Want        float64 `json:"beta_want,omitempty"`
	OrdStar     float64 `json:"ord_star,omitempty"`
	WUpper      float64 `json:"w_upper,omitempty"`
	CoreBeta    float64 `json:"core_beta,omitempty"`
	WirelessMax float64 `json:"wireless_max,omitempty"`
}

func e7Grid(cfg Config) []struct {
	n   int
	eps float64
} {
	epsList := []float64{0.25, 0.4}
	nList := []int{128, 256, 512}
	if cfg.Quick {
		nList = nList[:2]
	}
	var out []struct {
		n   int
		eps float64
	}
	for _, n := range nList {
		for _, eps := range epsList {
			out = append(out, struct {
				n   int
				eps float64
			}{n, eps})
		}
	}
	return out
}

func e7Shards(cfg Config) ([]Shard, error) {
	var shards []Shard
	for _, p := range e7Grid(cfg) {
		p := p
		shards = append(shards, Shard{
			Key: sprintfName("n=%d,eps=%g", p.n, p.eps),
			Run: func(cfg Config, r *rng.RNG) (any, error) {
				pt := e7Point{N: p.n, Eps: p.eps}
				g := gen.Complete(p.n) // (1/2, 1)-expander with ∆ = n−1
				const beta = 1.0
				wc, err := badgraph.NewWorstCase(g, beta, p.eps, r)
				if err != nil {
					pt.Err = err.Error()
					return pt, nil
				}
				// Claim 4.9: sampled ordinary expansion of G̃ stays ≥ (1−ε)β.
				pt.Est = sampledExpansionFloor(wc, cfg.trials(40, 10), r)
				pt.Want = (1 - p.eps) * beta
				// The witness S*: its ordinary expansion is ≥ β* (Lemma 4.6(2))
				// but its wireless expansion is ≤ ceiling/|S*| — the separation
				// that drives Theorem 1.2.
				pt.SStar = len(wc.SStar)
				pt.WUpper = float64(wc.Core.WirelessCeil()) / float64(pt.SStar)
				pt.OrdStar = measuredExpansionOf(wc, wc.SStar)
				pt.CoreBeta = wc.Core.Beta()
				pt.NTilde = wc.G.N()
				pt.MaxDeg = wc.G.MaxDegree()
				// Corollary 4.11's cap on the wireless expansion.
				pt.WirelessMax = bounds.Corollary411(p.n, g.MaxDegree(), 0.5, beta, p.eps).WirelessMax
				return pt, nil
			},
		})
	}
	return shards, nil
}

func e7Reduce(cfg Config, shards []ShardResult, res *Result) error {
	points, err := decodeAll[e7Point](shards)
	if err != nil {
		return err
	}
	tb := table.New("Plugged expander measurements",
		"base", "ε", "ñ", "∆̃", "|S*|", "β̃ sampled", "(1−ε)β",
		"β(S*) ≥", "βw(S*) ≤", "S* separation", "Cor4.11 cap", "ok")
	for _, p := range points {
		if p.Err != "" {
			res.failf("n=%d ε=%g: %s", p.N, p.Eps, p.Err)
			continue
		}
		separation := p.OrdStar / p.WUpper
		ok := p.Est >= p.Want-1e-9 &&
			p.WUpper <= p.WirelessMax+1e-9 &&
			separation > 1 &&
			p.OrdStar >= p.CoreBeta-1e-9
		if !ok {
			res.failf("n=%d ε=%g: β̃=%g (≥%g?), βw(S*)≤%g (cap %g), ord(S*)=%g (≥β*=%g?)",
				p.N, p.Eps, p.Est, p.Want, p.WUpper, p.WirelessMax, p.OrdStar, p.CoreBeta)
		}
		tb.AddRow(sprintfName("K_%d", p.N), p.Eps, p.NTilde, p.MaxDeg,
			p.SStar, p.Est, p.Want, p.OrdStar, p.WUpper, separation, p.WirelessMax, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim 4.9: G̃ remains an ordinary expander with β̃ = (1−ε)β (minimum over sampled sets, including S* and mixed sets, stays above (1−ε)β).")
	res.note("Claim 4.10 / Theorem 1.2: the witness S* has ordinary expansion ≥ β* = β/ε but wireless expansion ≤ (2/log 2s)·β* — the 'S* separation' column is the measured ratio, > 1 and growing with the core size; the wireless value stays under Corollary 4.11's cap 24β̃/(ε³·log min{∆̃/β̃, ∆̃β̃}).")
	res.note("The paper notes Claim 4.10 is vacuous when ε³·log(·) < 2; instances here sit on both sides, and the cap holds throughout.")
	return nil
}

// measuredExpansionOf returns |Γ⁻(X)|/|X| in the plugged graph.
func measuredExpansionOf(wc *badgraph.WorstCase, X []int) float64 {
	g := wc.G
	mark := make([]int8, g.N())
	for _, v := range X {
		mark[v] = 1
	}
	ext := 0
	for _, v := range X {
		for _, w := range g.Neighbors(v) {
			if mark[w] == 0 {
				mark[w] = 2
				ext++
			}
		}
	}
	return float64(ext) / float64(len(X))
}

// sampledExpansionFloor returns the minimum |Γ⁻(X)|/|X| over sampled sets X
// of G̃ with |X| ≤ α̃·ñ, mixing base-only, S*-only, and mixed sets — the
// three regimes of Claim 4.9's proof.
func sampledExpansionFloor(wc *badgraph.WorstCase, trials int, r *rng.RNG) float64 {
	g := wc.G
	minRatio := math.Inf(1)
	measure := func(X []int) {
		if len(X) == 0 {
			return
		}
		mark := make([]int8, g.N())
		for _, v := range X {
			mark[v] = 1
		}
		ext := 0
		for _, v := range X {
			for _, w := range g.Neighbors(v) {
				if mark[w] == 0 {
					mark[w] = 2
					ext++
				}
			}
		}
		if ratio := float64(ext) / float64(len(X)); ratio < minRatio {
			minRatio = ratio
		}
	}
	maxSize := wc.Base / 4
	for t := 0; t < trials; t++ {
		k := 1 + r.Intn(maxSize)
		measure(r.Choose(wc.Base, k)) // base-only
		// S*-only subsets.
		ks := 1 + r.Intn(len(wc.SStar))
		var xs []int
		for _, i := range r.Choose(len(wc.SStar), ks) {
			xs = append(xs, wc.SStar[i])
		}
		measure(xs)
		// Mixed.
		measure(append(xs, r.Choose(wc.Base, 1+r.Intn(maxSize))...))
	}
	measure(wc.SStar) // the designated witness
	return minRatio
}

// coreAdversaries returns the structured subsets used to attack the core
// graph's claims at sizes beyond exhaustive reach.
func coreAdversaries(s int, r *rng.RNG, trials int) [][]int {
	var out [][]int
	full := make([]int, s)
	for i := range full {
		full[i] = i
	}
	out = append(out, full, []int{0}, []int{0, 1})
	var alt []int
	for i := 0; i < s; i += 2 {
		alt = append(alt, i)
	}
	out = append(out, alt)
	// Subtrees at every level: leaves i·2^j..(i+1)·2^j−1.
	for width := 2; width <= s/2; width *= 2 {
		var sub []int
		for i := 0; i < width; i++ {
			sub = append(sub, i)
		}
		out = append(out, sub)
	}
	for t := 0; t < trials; t++ {
		k := 1 + r.Intn(s)
		out = append(out, r.Choose(s, k))
	}
	return out
}
