package experiments

import (
	"math"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// E5CoreGraph regenerates Lemma 4.4's five properties for a sweep of core
// sizes s: exact sizes and degrees, the expansion floor β ≥ log 2s (checked
// exhaustively for s ≤ 16 and on structured adversaries beyond), and the
// wireless ceiling |Γ¹_S(S')| ≤ 2s (same exhaustive/adversarial split) —
// the paper's Figure 2 construction.
func E5CoreGraph(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E5",
		Title:    "Core graph properties",
		PaperRef: "Lemma 4.4, Figure 2",
		Pass:     true,
	}
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		sizes = sizes[:5]
	}
	r := rng.New(cfg.Seed ^ 0xE5)
	tb := table.New("Core graph: claimed vs measured",
		"s", "|N| (=s·log2s)", "degS (=2s−1)", "∆N (=s)", "δN (≤2s/log2s)",
		"β floor", "β measured", "βw ceil (=2s)", "best found", "mode", "ok")
	for _, s := range sizes {
		c, err := badgraph.NewCore(s)
		if err != nil {
			return nil, err
		}
		claims := bounds.CoreGraphClaims(s)
		b := c.B
		ok := b.NN() == int(claims.SizeN) &&
			b.DegS(0) == claims.DegS &&
			b.MaxDegN() == claims.MaxDegN &&
			b.AvgDegN() <= claims.AvgDegNCeil+1e-9

		// Expansion floor and wireless ceiling.
		exhaustive := s <= 16
		mode := "exhaustive"
		minExpansion := math.Inf(1)
		maxUnique := 0
		if exhaustive {
			// Gray-code exact solvers over all 2^s subsets.
			minRes, err := expansion.MinBipartiteExpansion(b)
			if err != nil {
				return nil, err
			}
			minExpansion = minRes.Value
			opt, err := spokesman.Exhaustive(b)
			if err != nil {
				return nil, err
			}
			maxUnique = opt.Unique
		} else {
			mode = "adversarial"
			for _, sub := range coreAdversaries(s, r, cfg.trials(60, 20)) {
				cov := float64(b.CoverSet(sub, nil)) / float64(len(sub))
				if cov < minExpansion {
					minExpansion = cov
				}
				if uq := b.UniqueCoverSet(sub, nil); uq > maxUnique {
					maxUnique = uq
				}
			}
			if sel := spokesman.BestDeterministic(b); sel.Unique > maxUnique {
				maxUnique = sel.Unique
			}
		}
		if minExpansion < claims.BetaFloor-1e-9 {
			ok = false
		}
		if float64(maxUnique) > claims.WirelessCeil+1e-9 {
			ok = false
		}
		if !ok {
			res.failf("s=%d: property violated (|N|=%d, β=%g, maxUnique=%d)",
				s, b.NN(), minExpansion, maxUnique)
		}
		tb.AddRow(s, b.NN(), b.DegS(0), b.MaxDegN(), b.AvgDegN(),
			claims.BetaFloor, minExpansion, claims.WirelessCeil, maxUnique, mode, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claims 1–5 of Lemma 4.4. βw/β ≤ (2/log 2s): the wireless expansion of the core graph is smaller than its ordinary expansion by a Θ(log s) factor — the engine of the negative result.")
	return res, nil
}

// E6GeneralizedCore regenerates Lemmas 4.6–4.8: the expanded-core family
// achieves arbitrary expansion β* while keeping the wireless ceiling at a
// 4/log(min{∆*/β, ∆*β}) fraction of |N*|.
func E6GeneralizedCore(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E6",
		Title:    "Generalized core graph with arbitrary expansion",
		PaperRef: "Lemmas 4.6, 4.7, 4.8",
		Pass:     true,
	}
	type pt struct {
		deltaStar int
		betaStar  float64
	}
	grid := []pt{
		{32, 0.5}, {32, 1}, {32, 2}, {32, 4},
		{64, 0.5}, {64, 2}, {64, 8},
		{128, 0.25}, {128, 4}, {128, 16},
		{256, 0.125}, {256, 8}, {256, 32},
	}
	if cfg.Quick {
		grid = grid[:7]
	}
	tb := table.New("Generalized core: achieved parameters and ceiling",
		"∆* budget", "β* target", "branch", "s", "k", "β achieved",
		"|S*|", "|N*|", "max deg", "ceiling", "lemma frac·|N*|", "best found", "ok")
	for _, p := range grid {
		e, err := badgraph.GeneralizedCore(p.deltaStar, p.betaStar)
		if err != nil {
			res.failf("∆*=%d β*=%g: %v", p.deltaStar, p.betaStar, err)
			continue
		}
		branch := "expand-S (4.8)"
		if e.SideN {
			branch = "expand-N (4.7)"
		}
		maxDeg := maxInt(e.B.MaxDegS(), e.B.MaxDegN())
		frac := bounds.GeneralizedCoreWirelessFrac(p.deltaStar, e.Beta())
		lemmaCeil := frac * float64(e.B.NN())
		best := spokesman.BestDeterministic(e.B).Unique
		ok := maxDeg <= p.deltaStar &&
			float64(e.WirelessCeil()) <= lemmaCeil+1e-9 &&
			best <= e.WirelessCeil() &&
			math.Abs(float64(e.B.NN())-e.Beta()*float64(e.B.NS())) < 1e-6
		if !ok {
			res.failf("∆*=%d β*=%g: claims violated", p.deltaStar, p.betaStar)
		}
		tb.AddRow(p.deltaStar, p.betaStar, branch, e.Core.S, e.K, e.Beta(),
			e.B.NS(), e.B.NN(), maxDeg, e.WirelessCeil(), lemmaCeil, best, ok)
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claims of Lemma 4.6: max degree ≤ ∆*, |N*| = β·|S*|, wireless ceiling ≤ (4/log min{∆*/β, ∆*β})·|N*|; integer rounding makes achieved β differ from β* by at most a constant factor.")
	return res, nil
}

// E7WorstCase regenerates Section 4.3.3 / Corollary 4.11 / Theorem 1.2: a
// generalized core plugged onto a good expander yields a graph whose
// ordinary expansion survives (β̃ ≥ (1−ε)β on sampled sets) while the
// witness set S* has wireless expansion at most ceiling/|S*| — smaller than
// β̃ by the promised Θ(log) factor.
func E7WorstCase(cfg Config) (*Result, error) {
	res := &Result{
		ID:       "E7",
		Title:    "Worst-case plugged expander",
		PaperRef: "Section 4.3.3, Claims 4.9–4.10, Corollary 4.11, Theorem 1.2",
		Pass:     true,
	}
	r := rng.New(cfg.Seed ^ 0xE7)
	epsList := []float64{0.25, 0.4}
	nList := []int{128, 256, 512}
	if cfg.Quick {
		nList = nList[:2]
	}
	tb := table.New("Plugged expander measurements",
		"base", "ε", "ñ", "∆̃", "|S*|", "β̃ sampled", "(1−ε)β",
		"β(S*) ≥", "βw(S*) ≤", "S* separation", "Cor4.11 cap", "ok")
	for _, n := range nList {
		for _, eps := range epsList {
			g := gen.Complete(n) // (1/2, 1)-expander with ∆ = n−1
			beta := 1.0
			wc, err := badgraph.NewWorstCase(g, beta, eps, r)
			if err != nil {
				res.failf("n=%d ε=%g: %v", n, eps, err)
				continue
			}
			// Claim 4.9: sampled ordinary expansion of G̃ stays ≥ (1−ε)β.
			est := sampledExpansionFloor(wc, cfg.trials(40, 10), r)
			want := (1 - eps) * beta
			// The witness S*: its ordinary expansion is ≥ β* (Lemma 4.6(2))
			// but its wireless expansion is ≤ ceiling/|S*| — the separation
			// that drives Theorem 1.2.
			sStar := len(wc.SStar)
			wUpper := float64(wc.Core.WirelessCeil()) / float64(sStar)
			ordStar := measuredExpansionOf(wc, wc.SStar)
			separation := ordStar / wUpper
			// Corollary 4.11's cap on the wireless expansion.
			params := bounds.Corollary411(n, g.MaxDegree(), 0.5, beta, eps)
			ok := est >= want-1e-9 &&
				wUpper <= params.WirelessMax+1e-9 &&
				separation > 1 &&
				ordStar >= wc.Core.Beta()-1e-9
			if !ok {
				res.failf("n=%d ε=%g: β̃=%g (≥%g?), βw(S*)≤%g (cap %g), ord(S*)=%g (≥β*=%g?)",
					n, eps, est, want, wUpper, params.WirelessMax, ordStar, wc.Core.Beta())
			}
			tb.AddRow(sprintfName("K_%d", n), eps, wc.G.N(), wc.G.MaxDegree(),
				sStar, est, want, ordStar, wUpper, separation, params.WirelessMax, ok)
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("Claim 4.9: G̃ remains an ordinary expander with β̃ = (1−ε)β (minimum over sampled sets, including S* and mixed sets, stays above (1−ε)β).")
	res.note("Claim 4.10 / Theorem 1.2: the witness S* has ordinary expansion ≥ β* = β/ε but wireless expansion ≤ (2/log 2s)·β* — the 'S* separation' column is the measured ratio, > 1 and growing with the core size; the wireless value stays under Corollary 4.11's cap 24β̃/(ε³·log min{∆̃/β̃, ∆̃β̃}).")
	res.note("The paper notes Claim 4.10 is vacuous when ε³·log(·) < 2; instances here sit on both sides, and the cap holds throughout.")
	return res, nil
}

// measuredExpansionOf returns |Γ⁻(X)|/|X| in the plugged graph.
func measuredExpansionOf(wc *badgraph.WorstCase, X []int) float64 {
	g := wc.G
	mark := make([]int8, g.N())
	for _, v := range X {
		mark[v] = 1
	}
	ext := 0
	for _, v := range X {
		for _, w := range g.Neighbors(v) {
			if mark[w] == 0 {
				mark[w] = 2
				ext++
			}
		}
	}
	return float64(ext) / float64(len(X))
}

// sampledExpansionFloor returns the minimum |Γ⁻(X)|/|X| over sampled sets X
// of G̃ with |X| ≤ α̃·ñ, mixing base-only, S*-only, and mixed sets — the
// three regimes of Claim 4.9's proof.
func sampledExpansionFloor(wc *badgraph.WorstCase, trials int, r *rng.RNG) float64 {
	g := wc.G
	minRatio := math.Inf(1)
	measure := func(X []int) {
		if len(X) == 0 {
			return
		}
		mark := make([]int8, g.N())
		for _, v := range X {
			mark[v] = 1
		}
		ext := 0
		for _, v := range X {
			for _, w := range g.Neighbors(v) {
				if mark[w] == 0 {
					mark[w] = 2
					ext++
				}
			}
		}
		if ratio := float64(ext) / float64(len(X)); ratio < minRatio {
			minRatio = ratio
		}
	}
	maxSize := wc.Base / 4
	for t := 0; t < trials; t++ {
		k := 1 + r.Intn(maxSize)
		measure(r.Choose(wc.Base, k)) // base-only
		// S*-only subsets.
		ks := 1 + r.Intn(len(wc.SStar))
		var xs []int
		for _, i := range r.Choose(len(wc.SStar), ks) {
			xs = append(xs, wc.SStar[i])
		}
		measure(xs)
		// Mixed.
		measure(append(xs, r.Choose(wc.Base, 1+r.Intn(maxSize))...))
	}
	measure(wc.SStar) // the designated witness
	return minRatio
}

// coreAdversaries returns the structured subsets used to attack the core
// graph's claims at sizes beyond exhaustive reach.
func coreAdversaries(s int, r *rng.RNG, trials int) [][]int {
	var out [][]int
	full := make([]int, s)
	for i := range full {
		full[i] = i
	}
	out = append(out, full, []int{0}, []int{0, 1})
	var alt []int
	for i := 0; i < s; i += 2 {
		alt = append(alt, i)
	}
	out = append(out, alt)
	// Subtrees at every level: leaves i·2^j..(i+1)·2^j−1.
	for width := 2; width <= s/2; width *= 2 {
		var sub []int
		for i := 0; i < width; i++ {
			sub = append(sub, i)
		}
		out = append(out, sub)
	}
	for t := 0; t < trials; t++ {
		k := 1 + r.Intn(s)
		out = append(out, r.Choose(s, k))
	}
	return out
}
