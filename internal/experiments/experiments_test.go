package experiments

import (
	"strings"
	"testing"
)

const testSeed = 20180220 // arXiv submission date of the paper

func TestAllExperimentsPassQuick(t *testing.T) {
	cfg := Config{Seed: testSeed, Quick: true}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s errored: %v", e.ID, err)
			}
			if !res.Pass {
				t.Fatalf("%s failed:\n%s", e.ID, res.Text())
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			if res.ID != e.ID {
				t.Fatalf("result ID %q != entry ID %q", res.ID, e.ID)
			}
		})
	}
}

func TestRunAllAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covered per-experiment above")
	}
	results, err := RunAll(Config{Seed: testSeed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(All) {
		t.Fatalf("got %d results, want %d", len(results), len(All))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestSelect(t *testing.T) {
	specs, err := Select([]string{"E5", "E1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].ID != "E5" || specs[1].ID != "E1" {
		t.Fatalf("Select order wrong: %v", specs)
	}
	if _, err := Select([]string{"E5", "bogus"}); err == nil {
		t.Fatal("Select should reject unknown ids")
	}
}

func TestResultRendering(t *testing.T) {
	res, err := SpecE2.Run(Config{Seed: testSeed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	txt := res.Text()
	if !strings.Contains(txt, "E2") || !strings.Contains(txt, "RESULT: PASS") {
		t.Fatalf("Text rendering wrong:\n%s", txt)
	}
	md := res.Markdown()
	if !strings.Contains(md, "## E2") || !strings.Contains(md, "**Result: PASS**") {
		t.Fatalf("Markdown rendering wrong:\n%s", md)
	}
}

func TestDeterminism(t *testing.T) {
	// Same seed → identical tables, even with parallel shard fan-out.
	run := func() string {
		res, err := SpecE9.Run(Config{Seed: 7, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Text()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic experiment output:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
