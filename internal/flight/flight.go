// Package flight provides singleflight request coalescing with
// reference-counted cancellation: concurrent calls with the same key
// share one execution whose context is cancelled only when every
// interested caller has cancelled. It is the stdlib-only equivalent of
// golang.org/x/sync/singleflight, used per node by the wexpd service and
// lifted to the fleet edge by the shard router — N identical concurrent
// requests anywhere behind one router still compute once.
package flight

import (
	"context"
	"sync"
)

// Group coalesces concurrent Do calls with the same key into one
// execution whose result every caller receives.
type Group[T any] struct {
	mu        sync.Mutex
	calls     map[string]*call[T]
	executed  int64 // calls that ran the function
	coalesced int64 // calls that waited on another call's execution
}

type call[T any] struct {
	done chan struct{} // closed when val/err are final
	val  T
	err  error

	mu      sync.Mutex
	waiters int                // callers still interested in the result
	cancel  context.CancelFunc // cancels the execution context
}

// drop records that one caller lost interest; the last one out cancels
// the execution.
func (c *call[T]) drop() {
	c.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	c.mu.Unlock()
	if last {
		c.cancel()
	}
}

// New returns an empty group.
func New[T any]() *Group[T] {
	return &Group[T]{calls: make(map[string]*call[T])}
}

// Do executes fn once per key at a time: the first caller runs it (under
// a private execution context), every concurrent caller with the same key
// blocks and receives the same value and error. A caller whose ctx is
// cancelled stops waiting and gets ctx.Err(); the execution itself is
// cancelled only when no caller remains. The returned bool reports
// whether this caller was coalesced onto another caller's execution.
func (g *Group[T]) Do(ctx context.Context, key string, fn func(context.Context) (T, error)) (T, error, bool) {
	var zero T
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.mu.Lock()
		c.waiters++
		c.mu.Unlock()
		g.coalesced++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			c.drop()
			return zero, ctx.Err(), true
		}
	}
	runCtx, cancel := context.WithCancel(context.Background())
	c := &call[T]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.executed++
	g.mu.Unlock()

	// The owner executes fn synchronously, so it cannot abandon the flight
	// early — but its cancellation must still count: a watcher drops the
	// owner's reference the moment its ctx fires, letting the computation
	// stop at the next boundary (unless other waiters keep the flight
	// alive).
	watcherDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.drop()
		case <-watcherDone:
		}
	}()

	c.val, c.err = fn(runCtx)

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(watcherDone)
	close(c.done)
	cancel() // release the context regardless of how fn returned
	// The owner's result respects its own cancellation even if a waiter
	// kept the execution running to completion.
	if ctx.Err() != nil && c.err == nil {
		return zero, ctx.Err(), false
	}
	return c.val, c.err, false
}

// Stats snapshots the execution/coalescing counters.
type Stats struct {
	Executed  int64
	Coalesced int64
}

// Stats returns the counters.
func (g *Group[T]) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{Executed: g.executed, Coalesced: g.coalesced}
}
