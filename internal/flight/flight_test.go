package flight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestGroupCoalesces(t *testing.T) {
	g := New[[]byte]()
	const n = 16
	gate := make(chan struct{})
	arrived := make(chan struct{}, n)
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			val, err, _ := g.Do(nil, "key", func(context.Context) ([]byte, error) {
				<-gate // hold the first execution until everyone arrived
				return []byte("value"), nil
			})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
			results[i] = val
		}(i)
	}
	for i := 0; i < n; i++ {
		<-arrived
	}
	close(gate)
	wg.Wait()
	for i, r := range results {
		if string(r) != "value" {
			t.Fatalf("call %d got %q", i, r)
		}
	}
	st := g.Stats()
	if st.Executed+st.Coalesced != n {
		t.Fatalf("executed %d + coalesced %d != %d calls", st.Executed, st.Coalesced, n)
	}
	// The gate guarantees the first call is still executing while the rest
	// arrive — but a goroutine may be preempted between `arrived` and
	// `Do`, landing after the flight closed and starting a new execution.
	// What must never happen is n executions (no coalescing at all).
	if st.Executed >= n {
		t.Fatalf("no coalescing happened: %d executions for %d calls", st.Executed, n)
	}
}

func TestGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	g := New[[]byte]()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		val, err, shared := g.Do(nil, key, func(context.Context) ([]byte, error) { return []byte(key), nil })
		if err != nil || shared || string(val) != key {
			t.Fatalf("key %s: val=%q err=%v shared=%v", key, val, err, shared)
		}
	}
	if st := g.Stats(); st.Executed != 3 || st.Coalesced != 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// TestGroupWaiterCancelDoesNotAbortExecution: a waiter abandoning the
// flight returns its own ctx.Err() while the execution — still wanted by
// the owner — runs to completion.
func TestGroupWaiterCancelDoesNotAbortExecution(t *testing.T) {
	g := New[[]byte]()
	inFlight := make(chan struct{})
	gate := make(chan struct{})
	var ownerVal []byte
	var ownerErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		ownerVal, ownerErr, _ = g.Do(nil, "key", func(runCtx context.Context) ([]byte, error) {
			close(inFlight)
			<-gate
			if runCtx.Err() != nil {
				return nil, runCtx.Err()
			}
			return []byte("value"), nil
		})
	}()
	<-inFlight
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.Do(ctx, "key", func(context.Context) ([]byte, error) {
		t.Error("waiter must not execute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || !shared {
		t.Fatalf("cancelled waiter: err=%v shared=%v", err, shared)
	}
	close(gate)
	<-done
	if ownerErr != nil || string(ownerVal) != "value" {
		t.Fatalf("owner was disturbed by the waiter's cancellation: val=%q err=%v", ownerVal, ownerErr)
	}
}

// TestGroupLastCancelAbortsExecution: when every caller has cancelled,
// the execution context fires so the computation can stop at the next
// boundary.
func TestGroupLastCancelAbortsExecution(t *testing.T) {
	g := New[[]byte]()
	inFlight := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, runErr, _ = g.Do(ctx, "key", func(runCtx context.Context) ([]byte, error) {
			close(inFlight)
			<-runCtx.Done() // the refcount dropping to zero must fire this
			return nil, runCtx.Err()
		})
	}()
	<-inFlight
	cancel() // the sole caller cancels → execution ctx must be cancelled
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("execution context never fired after the last caller cancelled")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", runErr)
	}
}

// TestGroupNonByteValue exercises the generic instantiation the router
// uses (a struct value, not raw bytes).
func TestGroupNonByteValue(t *testing.T) {
	type reply struct {
		Status int
		Body   string
	}
	g := New[reply]()
	val, err, shared := g.Do(nil, "k", func(context.Context) (reply, error) {
		return reply{Status: 200, Body: "ok"}, nil
	})
	if err != nil || shared || val.Status != 200 || val.Body != "ok" {
		t.Fatalf("val=%+v err=%v shared=%v", val, err, shared)
	}
}
