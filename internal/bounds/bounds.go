// Package bounds collects the paper's closed-form bounds so the experiment
// harness can print measured values side-by-side with claimed ones.
//
// All logarithms are base 2, matching the paper's binary-tree constructions
// (Section 4.3.1) and the convention log 2s = 1 + log s. Asymptotic Ω/O
// statements are rendered with their leading constants where the paper
// gives them (the appendix bounds) and with constant 1 as a reference scale
// otherwise; the harness checks *boundedness of ratios* rather than the
// arbitrary constant.
package bounds

import "math"

// Log2 is the paper's logarithm. Guarded so callers can feed boundary
// values without producing NaN: log of anything ≤ 1 is clamped to 0.
func Log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// MinDeltaRatio returns min{∆/β, ∆·β}, the quantity controlling both the
// positive (Theorem 1.1) and negative (Theorem 1.2) results and a lower
// bound on the arboricity (Section 2.1).
func MinDeltaRatio(delta int, beta float64) float64 {
	if beta <= 0 {
		return 0
	}
	return math.Min(float64(delta)/beta, float64(delta)*beta)
}

// Theorem11 returns the positive result's reference scale
// β / log(2·min{∆/β, ∆·β}): Theorem 1.1 states βw = Ω of this quantity for
// every (α,β)-expander with maximum degree ∆ and β ≥ 1/∆.
func Theorem11(delta int, beta float64) float64 {
	denom := Log2(2 * MinDeltaRatio(delta, beta))
	if denom < 1 {
		denom = 1
	}
	return beta / denom
}

// Lemma42 returns the β ≥ 1 regime's reference scale β / log(2∆/β)
// (Lemma 4.2, proved via the decay sampler).
func Lemma42(delta int, beta float64) float64 {
	denom := Log2(2 * float64(delta) / beta)
	if denom < 1 {
		denom = 1
	}
	return beta / denom
}

// Lemma43 returns the β < 1 regime's reference scale β / log(2∆β)
// (Lemma 4.3).
func Lemma43(delta int, beta float64) float64 {
	denom := Log2(2 * float64(delta) * beta)
	if denom < 1 {
		denom = 1
	}
	return beta / denom
}

// Lemma31 returns the ordinary-expansion lower bound implied by unique
// expansion on a d-regular graph with second adjacency eigenvalue λ:
// β ≥ (1 − 1/d)·βu + (d − λ)·(1 − αu)/d.
func Lemma31(d int, lambda, betaU, alphaU float64) float64 {
	if d <= 0 {
		return 0
	}
	fd := float64(d)
	return (1-1/fd)*betaU + (fd-lambda)*(1-alphaU)/fd
}

// Lemma32 returns the unique-expansion lower bound βu ≥ 2β − ∆ implied by
// ordinary expansion (meaningful only when β > ∆/2). Lemma 3.3 shows it is
// tight: the Gbad construction achieves equality.
func Lemma32(delta int, beta float64) float64 {
	return 2*beta - float64(delta)
}

// GBadWirelessFloor returns the wireless-expansion lower bound
// max{2β − ∆, ∆/2} the paper derives for the Gbad construction in the
// remark after Lemma 3.3.
func GBadWirelessFloor(delta int, beta float64) float64 {
	return math.Max(2*beta-float64(delta), float64(delta)/2)
}

// CorollaryA2 returns the naive wireless lower bound βw ≥ β/∆ (Lemma A.1 /
// Corollary A.2).
func CorollaryA2(delta int, beta float64) float64 {
	if delta <= 0 {
		return 0
	}
	return beta / float64(delta)
}

// CorollaryA4 returns βw ≥ β/(8·δ̄) (Corollary A.4(1)), where δ̄ is the
// worst-case average N-side degree over small sets; callers typically pass
// the measured δ of a concrete GS.
func CorollaryA4(deltaBar, beta float64) float64 {
	if deltaBar < 1 {
		deltaBar = 1
	}
	return beta / (8 * deltaBar)
}

// CorollaryA4Beta1 returns the β ≥ 1 specialization βw ≥ β²/(8∆).
func CorollaryA4Beta1(delta int, beta float64) float64 {
	if delta <= 0 {
		return 0
	}
	return beta * beta / (8 * float64(delta))
}

// FConstant is f(c) = log₂c / (2(1+c)) — Corollary A.6's per-class
// constant.
func FConstant(c float64) float64 {
	if c <= 1 {
		return 0
	}
	return math.Log2(c) / (2 * (1 + c))
}

// OptimalF is the maximum of FConstant, attained at c ≈ 3.59112
// (Corollary A.7's constant 0.20087).
const (
	OptimalC = 3.59112
	OptimalF = 0.20087
)

// CorollaryA7 returns βw ≥ 0.20087·β / log₂∆.
func CorollaryA7(delta int, beta float64) float64 {
	denom := Log2(float64(delta))
	if denom < 1 {
		denom = 1
	}
	return OptimalF * beta / denom
}

// CorollaryA14 returns the near-optimal deterministic bound
// βw ≥ β / (9·log(2δ̄)) (Corollary A.14(1)).
func CorollaryA14(deltaBar, beta float64) float64 {
	denom := 9 * Log2(2*deltaBar)
	if denom < 9 {
		denom = 9
	}
	return beta / denom
}

// CorollaryA14Beta1 returns the β ≥ 1 specialization β / (9·log(2∆/β)).
func CorollaryA14Beta1(delta int, beta float64) float64 {
	denom := 9 * Log2(2*float64(delta)/beta)
	if denom < 9 {
		denom = 9
	}
	return beta / denom
}

// MG evaluates Corollary A.16's piecewise guarantee function MG(x): the
// best of (i) min{1/(9·log x), 1/20}, (ii) 1/(9·log 2x), and (iii) the
// Corollary A.8 family sup_{t>1} (1 − 1/t)·2.0087/log(t·x), maximized
// numerically over a geometric t-grid.
func MG(x float64) float64 {
	if x < 1 {
		x = 1
	}
	best := term2(x)
	if v := term1(x); v > best {
		best = v
	}
	if v := term3(x); v > best {
		best = v
	}
	return best
}

func term1(x float64) float64 {
	lx := Log2(x)
	if lx <= 0 {
		return 1.0 / 20
	}
	return math.Min(1/(9*lx), 1.0/20)
}

func term2(x float64) float64 {
	l2x := Log2(2 * x)
	if l2x <= 0 {
		return 0
	}
	return 1 / (9 * l2x)
}

func term3(x float64) float64 {
	best := 0.0
	for t := 1.05; t <= 4096; t *= 1.1 {
		denom := Log2(t * x)
		if denom <= 0 {
			continue
		}
		v := (1 - 1/t) * 2.0087 / denom
		if v > best {
			best = v
		}
	}
	return best
}

// LemmaA18 returns βw ≥ β·MG(δ̄) (Lemma A.18(1)); with β ≥ 1 callers may
// pass δ̄ = ∆/β per Lemma A.18(2).
func LemmaA18(deltaBar, beta float64) float64 {
	return beta * MG(deltaBar)
}

// ChlamtacWeinstein returns the prior-art spokesman guarantee
// |Γ¹(S')| ≥ |N| / log |S| from [7], against which Section 4.2.1 compares.
func ChlamtacWeinstein(sizeN, sizeS int) float64 {
	denom := Log2(float64(sizeS))
	if denom < 1 {
		denom = 1
	}
	return float64(sizeN) / denom
}

// PaperSpokesman returns the paper's improved spokesman guarantee scale
// |N| / log(2·min{δN, δS}) (Section 4.2.1).
func PaperSpokesman(sizeN int, deltaN, deltaS float64) float64 {
	m := math.Min(deltaN, deltaS)
	if m < 1 {
		m = 1
	}
	denom := Log2(2 * m)
	if denom < 1 {
		denom = 1
	}
	return float64(sizeN) / denom
}

// CoreGraph returns Lemma 4.4's claimed quantities for parameter s:
// |N| = s·log 2s, S-degree 2s−1, ∆N = s, δN ≤ 2s/log 2s, β ≥ log 2s, and
// the wireless ceiling |Γ¹_S(S')| ≤ 2s for every S'.
type CoreGraph struct {
	SizeN          float64
	DegS           int
	MaxDegN        int
	AvgDegNCeil    float64
	BetaFloor      float64
	WirelessCeil   float64 // absolute: 2s
	WirelessFrac   float64 // relative: 2/log 2s of |N|
	BroadcastRatio float64 // βw/β ≤ 2/log 2s
}

// CoreGraphClaims evaluates the Lemma 4.4 claim set at size s (s a power of
// two in the construction).
func CoreGraphClaims(s int) CoreGraph {
	fs := float64(s)
	l2s := Log2(2 * fs)
	return CoreGraph{
		SizeN:          fs * l2s,
		DegS:           2*s - 1,
		MaxDegN:        s,
		AvgDegNCeil:    2 * fs / l2s,
		BetaFloor:      l2s,
		WirelessCeil:   2 * fs,
		WirelessFrac:   2 / l2s,
		BroadcastRatio: 2 / l2s,
	}
}

// GeneralizedCoreWirelessFrac returns Lemma 4.6's wireless ceiling as a
// fraction of |N*|: 4 / log(min{∆*/β*, ∆*·β*}).
func GeneralizedCoreWirelessFrac(deltaStar int, betaStar float64) float64 {
	denom := Log2(MinDeltaRatio(deltaStar, betaStar))
	if denom < 1 {
		denom = 1
	}
	return 4 / denom
}

// WorstCaseParams holds Corollary 4.11's parameter transforms for plugging
// a generalized core graph onto an (α,β)-expander with blow-up ε.
type WorstCaseParams struct {
	NTildeMax   float64 // ñ ≤ (1+ε)·n
	DeltaTilde  float64 // ∆̃ = (1+ε)·∆
	BetaTilde   float64 // β̃ = (1−ε)·β
	AlphaTilde  float64 // α̃ = (1−ε)·α
	WirelessMax float64 // β̃w ≤ 24·β̃/(ε³·log min{∆̃/β̃, ∆̃·β̃})
}

// Corollary411 evaluates the worst-case expander parameter transforms.
func Corollary411(n, delta int, alpha, beta, eps float64) WorstCaseParams {
	dt := (1 + eps) * float64(delta)
	bt := (1 - eps) * beta
	denom := eps * eps * eps * Log2(math.Min(dt/bt, dt*bt))
	w := math.Inf(1)
	if denom > 0 {
		w = 24 * bt / denom
	}
	return WorstCaseParams{
		NTildeMax:   (1 + eps) * float64(n),
		DeltaTilde:  dt,
		BetaTilde:   bt,
		AlphaTilde:  (1 - eps) * alpha,
		WirelessMax: w,
	}
}

// BroadcastLower returns the Section 5 reference scale D·log(n/D) for the
// radio-broadcast round lower bound Ω(D·log(n/D)).
func BroadcastLower(diameter, n int) float64 {
	if diameter <= 0 || n <= diameter {
		return 0
	}
	return float64(diameter) * Log2(float64(n)/float64(diameter))
}

// Corollary51 returns the minimum number of rounds needed for broadcast to
// reach a 2i/log(2s) fraction of the core graph's N side: at least 1 + i,
// for 0 ≤ i ≤ log(2s)/2.
func Corollary51(i int) int { return 1 + i }

// MGRegime labels which component of MG(x) dominates (Observation A.17).
type MGRegime string

// The regimes of Observation A.17 for the max of the first two MG terms,
// plus the Corollary A.8/A.9 family that overtakes both for moderate δ.
const (
	RegimeLog2x  MGRegime = "1/(9·log 2x)" // x ≤ 2^{11/9}
	RegimeFlat   MGRegime = "1/20"         // 2^{11/9} ≤ x ≤ 2^{20/9}
	RegimeLogx   MGRegime = "1/(9·log x)"  // x ≥ 2^{20/9}
	RegimeFamily MGRegime = "(1−1/t)·2.0087/log(tx)"
)

// ObservationA17Thresholds are the crossover points 2^{11/9} and 2^{20/9}
// between the first two MG components.
var ObservationA17Thresholds = [2]float64{
	math.Exp2(11.0 / 9), // ≈ 2.33: term2 vs 1/20
	math.Exp2(20.0 / 9), // ≈ 4.67: 1/20 vs term1
}

// MGDominant returns the component attaining MG(x) (ties resolved in the
// order of Observation A.17: term2, flat, term1, family).
func MGDominant(x float64) MGRegime {
	if x < 1 {
		x = 1
	}
	v2 := term2(x)
	v1 := term1(x)
	v3 := term3(x)
	best := math.Max(math.Max(v1, v2), v3)
	const eps = 1e-12
	switch {
	case v2 >= best-eps:
		return RegimeLog2x
	case v1 >= best-eps && v1 == 1.0/20:
		return RegimeFlat
	case v1 >= best-eps:
		return RegimeLogx
	default:
		return RegimeFamily
	}
}

// A9Condition reports whether δ satisfies the footnote condition of
// Corollary A.9: ε·ln δ − ln ln δ − ln(1+ε) − 1 ≥ 0 (δ must exceed e so
// the double logarithm is defined; smaller δ fail the condition).
func A9Condition(delta, eps float64) bool {
	if delta <= math.E || eps <= 0 {
		return false
	}
	return eps*math.Log(delta)-math.Log(math.Log(delta))-math.Log(1+eps)-1 >= 0
}
