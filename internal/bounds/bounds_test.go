package bounds

import (
	"math"
	"testing"
)

func TestLog2Clamps(t *testing.T) {
	if Log2(0.5) != 0 || Log2(1) != 0 || Log2(-3) != 0 {
		t.Fatal("Log2 should clamp ≤1 to 0")
	}
	if Log2(8) != 3 {
		t.Fatalf("Log2(8) = %g", Log2(8))
	}
}

func TestMinDeltaRatio(t *testing.T) {
	if got := MinDeltaRatio(8, 2); got != 4 {
		t.Fatalf("min{4,16} = %g", got)
	}
	if got := MinDeltaRatio(8, 0.25); got != 2 {
		t.Fatalf("min{32,2} = %g", got)
	}
	if MinDeltaRatio(8, 0) != 0 {
		t.Fatal("β=0")
	}
}

func TestTheorem11Regimes(t *testing.T) {
	// β ≥ 1: min = ∆/β, so Theorem11 = Lemma42.
	if a, b := Theorem11(64, 4), Lemma42(64, 4); math.Abs(a-b) > 1e-12 {
		t.Fatalf("β≥1: %g vs %g", a, b)
	}
	// β < 1: min = ∆·β, so Theorem11 = Lemma43.
	if a, b := Theorem11(64, 0.25), Lemma43(64, 0.25); math.Abs(a-b) > 1e-12 {
		t.Fatalf("β<1: %g vs %g", a, b)
	}
	// Monotone in β on a fixed ∆ over the β ≥ 1 regime.
	prev := 0.0
	for _, beta := range []float64{1, 2, 4, 8} {
		v := Theorem11(256, beta)
		if v <= prev {
			t.Fatalf("Theorem11 not increasing at β=%g", beta)
		}
		prev = v
	}
}

func TestLemma31(t *testing.T) {
	// d=4, λ=2, βu=1, αu=0.5: (3/4)·1 + (2)·(0.5)/4 = 0.75 + 0.25 = 1.
	if got := Lemma31(4, 2, 1, 0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Lemma31 = %g, want 1", got)
	}
	if Lemma31(0, 0, 1, 0) != 0 {
		t.Fatal("d=0 should yield 0")
	}
}

func TestLemma32AndGBadFloor(t *testing.T) {
	if got := Lemma32(6, 4); got != 2 {
		t.Fatalf("2·4−6 = %g", got)
	}
	if got := GBadWirelessFloor(6, 4); got != 3 {
		t.Fatalf("max{2, 3} = %g", got)
	}
	if got := GBadWirelessFloor(6, 5); got != 4 {
		t.Fatalf("max{4, 3} = %g", got)
	}
}

func TestAppendixBounds(t *testing.T) {
	if got := CorollaryA2(8, 2); got != 0.25 {
		t.Fatalf("β/∆ = %g", got)
	}
	if got := CorollaryA4(4, 2); got != 2.0/32 {
		t.Fatalf("β/8δ = %g", got)
	}
	if got := CorollaryA4Beta1(16, 4); got != 0.125 {
		t.Fatalf("β²/8∆ = %g", got)
	}
	if got := CorollaryA14(8, 2); math.Abs(got-2.0/36) > 1e-12 {
		t.Fatalf("β/9log16 = %g", got)
	}
	if got := CorollaryA14Beta1(16, 2); math.Abs(got-2.0/36) > 1e-12 {
		t.Fatalf("β/9log(2∆/β) = %g", got)
	}
}

func TestFConstantOptimum(t *testing.T) {
	best := FConstant(OptimalC)
	if math.Abs(best-OptimalF) > 1e-4 {
		t.Fatalf("f(c*) = %g, want ≈ %g", best, OptimalF)
	}
	// Optimality: nearby c values don't exceed it.
	for _, c := range []float64{2, 3, 3.3, 3.9, 4.5, 6} {
		if FConstant(c) > best+1e-9 {
			t.Fatalf("f(%g) = %g exceeds optimum", c, FConstant(c))
		}
	}
	if FConstant(1) != 0 || FConstant(0.5) != 0 {
		t.Fatal("degenerate c should yield 0")
	}
}

func TestCorollaryA7(t *testing.T) {
	got := CorollaryA7(16, 2)
	want := OptimalF * 2 / 4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("A7 = %g, want %g", got, want)
	}
}

func TestMGPiecewise(t *testing.T) {
	// MG must dominate its components and be decreasing.
	prev := math.Inf(1)
	for _, x := range []float64{1, 2, 4, 8, 16, 64, 256, 4096} {
		v := MG(x)
		if v <= 0 {
			t.Fatalf("MG(%g) = %g", x, v)
		}
		if v > prev+1e-12 {
			t.Fatalf("MG not non-increasing at %g", x)
		}
		prev = v
		if v < term2(x)-1e-12 {
			t.Fatalf("MG(%g) below term2", x)
		}
	}
	// For large x, the A.8/A.9 term dominates term2 by a wide margin
	// (approaching a 2.0087·9 ≈ 18× advantage as x → ∞).
	x := 1024.0
	if MG(x) < 5*term2(x) {
		t.Fatalf("MG(%g) = %g; term2 = %g should be dominated", x, MG(x), term2(x))
	}
}

func TestLemmaA18(t *testing.T) {
	if got := LemmaA18(16, 2); math.Abs(got-2*MG(16)) > 1e-12 {
		t.Fatalf("A18 = %g", got)
	}
}

func TestSpokesmanBounds(t *testing.T) {
	if got := ChlamtacWeinstein(100, 16); got != 25 {
		t.Fatalf("CW = %g, want 100/4", got)
	}
	if got := PaperSpokesman(100, 4, 9); got != 100.0/3 {
		t.Fatalf("paper = %g, want 100/log(8)", got)
	}
	// Paper bound beats CW when min{δN, δS} ≪ |S|.
	if PaperSpokesman(100, 4, 9) <= ChlamtacWeinstein(100, 1<<20) {
		t.Fatal("paper bound should beat CW for huge |S|")
	}
}

func TestCoreGraphClaims(t *testing.T) {
	c := CoreGraphClaims(8)
	if c.SizeN != 32 { // 8·log 16 = 8·4
		t.Fatalf("SizeN = %g", c.SizeN)
	}
	if c.DegS != 15 || c.MaxDegN != 8 {
		t.Fatalf("degrees %d/%d", c.DegS, c.MaxDegN)
	}
	if c.BetaFloor != 4 {
		t.Fatalf("BetaFloor = %g", c.BetaFloor)
	}
	if c.WirelessCeil != 16 {
		t.Fatalf("WirelessCeil = %g", c.WirelessCeil)
	}
	if math.Abs(c.WirelessFrac-0.5) > 1e-12 {
		t.Fatalf("WirelessFrac = %g", c.WirelessFrac)
	}
	if math.Abs(c.AvgDegNCeil-4) > 1e-12 {
		t.Fatalf("AvgDegNCeil = %g", c.AvgDegNCeil)
	}
}

func TestGeneralizedCoreWirelessFrac(t *testing.T) {
	if got := GeneralizedCoreWirelessFrac(64, 4); got != 1 {
		t.Fatalf("4/log(16) = %g", got)
	}
}

func TestCorollary411(t *testing.T) {
	p := Corollary411(1000, 100, 0.5, 4, 0.25)
	if p.NTildeMax != 1250 {
		t.Fatalf("ñ = %g", p.NTildeMax)
	}
	if p.DeltaTilde != 125 || p.BetaTilde != 3 {
		t.Fatalf("∆̃=%g β̃=%g", p.DeltaTilde, p.BetaTilde)
	}
	if p.AlphaTilde != 0.375 {
		t.Fatalf("α̃ = %g", p.AlphaTilde)
	}
	if p.WirelessMax <= 0 || math.IsInf(p.WirelessMax, 1) {
		t.Fatalf("wireless max = %g", p.WirelessMax)
	}
}

func TestBroadcastLower(t *testing.T) {
	if got := BroadcastLower(8, 128); got != 8*4 {
		t.Fatalf("D log(n/D) = %g, want 32", got)
	}
	if BroadcastLower(0, 128) != 0 || BroadcastLower(10, 5) != 0 {
		t.Fatal("degenerate cases should be 0")
	}
}

func TestCorollary51(t *testing.T) {
	for i := 0; i < 5; i++ {
		if Corollary51(i) != i+1 {
			t.Fatal("Corollary51 wrong")
		}
	}
}

func TestBoundDegenerateClamps(t *testing.T) {
	// Every formula must clamp degenerate inputs rather than return NaN/Inf.
	if v := Theorem11(1, 1); v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("Theorem11 degenerate: %g", v)
	}
	if v := Lemma42(1, 2); v <= 0 || math.IsNaN(v) {
		t.Fatalf("Lemma42 degenerate: %g", v)
	}
	if v := Lemma43(1, 0.5); v <= 0 || math.IsNaN(v) {
		t.Fatalf("Lemma43 degenerate: %g", v)
	}
	if CorollaryA2(0, 1) != 0 {
		t.Fatal("A2 with ∆=0")
	}
	if v := CorollaryA4(0.5, 1); v != 1.0/8 {
		t.Fatalf("A4 clamps δ̄ to 1: %g", v)
	}
	if CorollaryA4Beta1(0, 1) != 0 {
		t.Fatal("A4β1 with ∆=0")
	}
	if v := CorollaryA7(1, 1); v != OptimalF {
		t.Fatalf("A7 clamps log: %g", v)
	}
	if v := CorollaryA14(0.25, 9); v != 1 {
		t.Fatalf("A14 clamps denominator to 9: %g", v)
	}
	if v := CorollaryA14Beta1(1, 4); v <= 0 {
		t.Fatalf("A14β1 degenerate: %g", v)
	}
	if v := MG(0.5); v <= 0 {
		t.Fatalf("MG clamps x to 1: %g", v)
	}
}

func TestObservationA17Regimes(t *testing.T) {
	t1, t2 := ObservationA17Thresholds[0], ObservationA17Thresholds[1]
	// Compare only the first two components (the observation's max): below
	// t1 term2 wins, between t1 and t2 the flat 1/20 wins, above t2 term1.
	maxOf2 := func(x float64) MGRegime {
		v1, v2 := term1(x), term2(x)
		if v2 >= v1 {
			return RegimeLog2x
		}
		if v1 == 1.0/20 {
			return RegimeFlat
		}
		return RegimeLogx
	}
	if got := maxOf2(t1 * 0.9); got != RegimeLog2x {
		t.Fatalf("below first threshold: %s", got)
	}
	if got := maxOf2((t1 + t2) / 2); got != RegimeFlat {
		t.Fatalf("between thresholds: %s", got)
	}
	if got := maxOf2(t2 * 1.5); got != RegimeLogx {
		t.Fatalf("above second threshold: %s", got)
	}
	// Crossover equalities at the thresholds, per the observation:
	// term2(2^{11/9}) = 1/20 and term1(2^{20/9}) = 1/20.
	if math.Abs(term2(t1)-1.0/20) > 1e-12 {
		t.Fatalf("term2 at threshold = %g", term2(t1))
	}
	if math.Abs(term1(t2)-1.0/20) > 1e-12 {
		t.Fatalf("term1 at threshold = %g", term1(t2))
	}
}

func TestMGDominantConsistent(t *testing.T) {
	// Whatever regime is reported, its value must equal MG(x).
	for _, x := range []float64{1, 2, 2.5, 4, 5, 10, 100, 10000} {
		reg := MGDominant(x)
		var v float64
		switch reg {
		case RegimeLog2x:
			v = term2(x)
		case RegimeFlat, RegimeLogx:
			v = term1(x)
		case RegimeFamily:
			v = term3(x)
		}
		if math.Abs(v-MG(x)) > 1e-12 {
			t.Fatalf("x=%g: regime %s value %g != MG %g", x, reg, v, MG(x))
		}
	}
}

func TestA9Condition(t *testing.T) {
	if A9Condition(2, 1) {
		t.Fatal("δ ≤ e should fail")
	}
	if A9Condition(100, 0) {
		t.Fatal("ε = 0 should fail")
	}
	// Large δ with moderate ε satisfies the condition.
	if !A9Condition(1e6, 1) {
		t.Fatal("δ=1e6, ε=1 should satisfy")
	}
	// Monotone in δ for fixed ε: once satisfied, stays satisfied.
	sat := false
	for _, d := range []float64{3, 10, 100, 1e4, 1e8} {
		now := A9Condition(d, 0.5)
		if sat && !now {
			t.Fatalf("condition lost at δ=%g", d)
		}
		if now {
			sat = true
		}
	}
	if !sat {
		t.Fatal("condition never satisfied for ε=0.5")
	}
}
