package badgraph

import (
	"math"
	"testing"

	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
)

func TestCoreExpandNProperties(t *testing.T) {
	// Lemma 4.7 with s=8, k=3: |N̂| = 3·|N|, S-degrees (2s−1)·k, expansion
	// floor k·log 2s, wireless ceiling 2s·k.
	s, k := 8, 3
	e, err := NewCoreExpandN(s, k)
	if err != nil {
		t.Fatal(err)
	}
	if e.B.NS() != s || e.B.NN() != e.Core.B.NN()*k {
		t.Fatalf("dims s=%d n=%d", e.B.NS(), e.B.NN())
	}
	for u := 0; u < s; u++ {
		if d := e.B.DegS(u); d != (2*s-1)*k {
			t.Fatalf("deg = %d, want %d", d, (2*s-1)*k)
		}
	}
	if e.B.MaxDegN() != s {
		t.Fatalf("∆N = %d, want %d (unchanged by copying)", e.B.MaxDegN(), s)
	}
	// Expansion: every subset S' has |Γ(S')| ≥ k·log2s·|S'| (exhaustive).
	l2s := e.Core.L + 1
	for mask := 1; mask < 1<<uint(s); mask++ {
		var sub []int
		for u := 0; u < s; u++ {
			if mask&(1<<uint(u)) != 0 {
				sub = append(sub, u)
			}
		}
		if cov := e.B.CoverSet(sub, nil); cov < k*l2s*len(sub) {
			t.Fatalf("mask %b: cover %d < %d", mask, cov, k*l2s*len(sub))
		}
		if uniq := e.B.UniqueCoverSet(sub, nil); uniq > e.WirelessCeil() {
			t.Fatalf("mask %b: unique %d > ceiling %d", mask, uniq, e.WirelessCeil())
		}
	}
	if got, want := e.Beta(), float64(k)*float64(l2s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Beta() = %g, want %g", got, want)
	}
}

func TestCoreExpandSProperties(t *testing.T) {
	// Lemma 4.8 with s=8, k=2: |Š| = s·k, N unchanged, S-degrees 2s−1,
	// N-degrees scaled by k, expansion floor log 2s / k, wireless ceiling 2s.
	s, k := 8, 2
	e, err := NewCoreExpandS(s, k)
	if err != nil {
		t.Fatal(err)
	}
	if e.B.NS() != s*k || e.B.NN() != e.Core.B.NN() {
		t.Fatalf("dims s=%d n=%d", e.B.NS(), e.B.NN())
	}
	for u := 0; u < s*k; u++ {
		if d := e.B.DegS(u); d != 2*s-1 {
			t.Fatalf("deg = %d, want %d", d, 2*s-1)
		}
	}
	if e.B.MaxDegN() != s*k {
		t.Fatalf("∆N = %d, want %d", e.B.MaxDegN(), s*k)
	}
	l2s := float64(e.Core.L + 1)
	if got, want := e.Beta(), l2s/float64(k); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Beta() = %g, want %g", got, want)
	}
	// Wireless ceiling unchanged at 2s: sampled subsets.
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		kk := 1 + r.Intn(s*k)
		sub := r.Choose(s*k, kk)
		if uniq := e.B.UniqueCoverSet(sub, nil); uniq > e.WirelessCeil() {
			t.Fatalf("unique %d > ceiling %d", uniq, e.WirelessCeil())
		}
	}
	// Copies of the same S-vertex have identical neighborhoods, so any set
	// containing two copies of the same original vertex has those copies
	// contribute zero unique coverage.
	sel := spokesman.Evaluate(e.B, []int{0, 1}, "copies") // copies of leaf 0
	if sel.Unique != 0 {
		t.Fatalf("two copies unique = %d, want 0", sel.Unique)
	}
}

func TestCoreExpandRejectsBadK(t *testing.T) {
	if _, err := NewCoreExpandN(8, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewCoreExpandS(8, -1); err == nil {
		t.Fatal("k<0 accepted")
	}
}

func TestGeneralizedCoreBranchHigh(t *testing.T) {
	// β* well above log 2s: expect the N-expansion branch (Lemma 4.7).
	e, err := GeneralizedCore(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !e.SideN {
		t.Fatal("expected N-side expansion branch")
	}
	checkGeneralizedClaims(t, e, 64)
}

func TestGeneralizedCoreBranchLow(t *testing.T) {
	// β* below 1: expect the S-expansion branch (Lemma 4.8).
	e, err := GeneralizedCore(64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.SideN {
		t.Fatal("expected S-side expansion branch")
	}
	checkGeneralizedClaims(t, e, 64)
}

func TestGeneralizedCoreSweep(t *testing.T) {
	for _, deltaStar := range []int{16, 32, 64, 128} {
		lo := 2 * math.E / float64(deltaStar)
		hi := float64(deltaStar) / (2 * math.E)
		for _, beta := range []float64{lo, 0.5, 1, 2, 4, hi} {
			if beta < lo || beta > hi {
				continue
			}
			e, err := GeneralizedCore(deltaStar, beta)
			if err != nil {
				t.Fatalf("∆*=%d β*=%g: %v", deltaStar, beta, err)
			}
			checkGeneralizedClaims(t, e, deltaStar)
		}
	}
}

// checkGeneralizedClaims verifies Lemma 4.6's assertions against the
// *achieved* parameters of the constructed instance.
func checkGeneralizedClaims(t *testing.T, e *ExpandedCore, deltaStar int) {
	t.Helper()
	// Max degree within budget.
	maxDeg := e.B.MaxDegS()
	if d := e.B.MaxDegN(); d > maxDeg {
		maxDeg = d
	}
	if maxDeg > deltaStar {
		t.Fatalf("max degree %d exceeds ∆* = %d", maxDeg, deltaStar)
	}
	// |N*| = β·|S*| for the achieved β.
	beta := e.Beta()
	if got := float64(e.B.NN()); math.Abs(got-beta*float64(e.B.NS())) > 1e-6 {
		t.Fatalf("|N*| = %g, want β·|S*| = %g", got, beta*float64(e.B.NS()))
	}
	// Wireless ceiling ≤ (4/log min{∆*/β, ∆*·β})·|N*| — the lemma's third
	// assertion, evaluated at achieved β.
	frac := bounds.GeneralizedCoreWirelessFrac(deltaStar, beta)
	ceil := float64(e.WirelessCeil())
	if ceil > frac*float64(e.B.NN())+1e-6 {
		t.Fatalf("ceiling %g exceeds lemma fraction %g·|N*| = %g",
			ceil, frac, frac*float64(e.B.NN()))
	}
	// Spot-check the ceiling empirically with the solvers.
	sel := spokesman.BestDeterministic(e.B)
	if float64(sel.Unique) > ceil {
		t.Fatalf("solver found %d > claimed ceiling %g", sel.Unique, ceil)
	}
}

func TestGeneralizedCoreRejectsOutOfRange(t *testing.T) {
	if _, err := GeneralizedCore(10, 100); err == nil {
		t.Fatal("β* > ∆*/2e accepted")
	}
	if _, err := GeneralizedCore(10, 0.01); err == nil {
		t.Fatal("β* < 2e/∆* accepted")
	}
}

func TestWorstCaseConstruction(t *testing.T) {
	// Feasibility needs ε²·∆ ≥ 2e·β (so that β* ≤ ∆*/(2e)), hence a
	// high-degree base; K_200 is a (1/2, 1)-expander with ∆ = 199.
	r := rng.New(5)
	base := gen.Complete(200)
	wc, err := NewWorstCase(base, 1.0, 0.4, r)
	if err != nil {
		t.Fatal(err)
	}
	// ñ ≤ (1+ε)·n.
	if wc.G.N() > int(1.4*float64(base.N()))+1 {
		t.Fatalf("ñ = %d too large", wc.G.N())
	}
	// ∆̃ ≤ (1+ε)∆.
	if wc.G.MaxDegree() > int(math.Ceil(1.4*float64(base.MaxDegree()))) {
		t.Fatalf("∆̃ = %d too large vs base %d", wc.G.MaxDegree(), base.MaxDegree())
	}
	// The witness set S* has wireless expansion ≤ ceiling/|S*|.
	witness := wc.WitnessSet()
	if len(witness) == 0 {
		t.Fatal("empty witness")
	}
	// All S* adjacency goes into N* only.
	inN := map[int]bool{}
	for _, v := range wc.NStar {
		inN[v] = true
	}
	for _, u := range witness {
		for _, w := range wc.G.Neighbors(u) {
			if !inN[int(w)] {
				t.Fatalf("S* vertex %d adjacent to non-N* vertex %d", u, w)
			}
		}
	}
}

func TestWorstCaseValidation(t *testing.T) {
	r := rng.New(6)
	base := gen.Margulis(8)
	if _, err := NewWorstCase(base, 2.0, 0.6, r); err == nil {
		t.Fatal("ε ≥ 1/2 accepted")
	}
	if _, err := NewWorstCase(base, 2.0, 0, r); err == nil {
		t.Fatal("ε = 0 accepted")
	}
	tiny := gen.Cycle(4) // ∆ = 2: ε∆ < 1
	if _, err := NewWorstCase(tiny, 1.0, 0.4, r); err == nil {
		t.Fatal("degenerate base accepted")
	}
}

func TestChainStructure(t *testing.T) {
	r := rng.New(7)
	ch, err := NewChain(4, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	core, _ := NewCore(8)
	wantN := 1 + 4*(8+core.B.NN())
	if ch.N() != wantN {
		t.Fatalf("chain n = %d, want %d", ch.N(), wantN)
	}
	if len(ch.RT) != 4 {
		t.Fatalf("relays = %d", len(ch.RT))
	}
	// Root connects to all of S¹ and nothing else.
	if ch.G.Degree(ch.Root) != 8 {
		t.Fatalf("root degree = %d, want 8", ch.G.Degree(ch.Root))
	}
	// Each rtᵢ (except the last) connects to all of S^{i+1}.
	for i := 0; i+1 < ch.Hops; i++ {
		rt := ch.RT[i]
		cnt := 0
		for _, w := range ch.G.Neighbors(rt) {
			if int(w) >= ch.SStart[i+1] && int(w) < ch.SStart[i+1]+ch.S {
				cnt++
			}
		}
		if cnt != ch.S {
			t.Fatalf("relay %d connects to %d of S^%d", i, cnt, i+2)
		}
	}
	// Connectivity and diameter Θ(hops).
	if !ch.G.Connected() {
		t.Fatal("chain disconnected")
	}
	diam, _ := ch.G.Diameter()
	if diam < ch.Hops || diam > 3*ch.Hops+4 {
		t.Fatalf("diameter %d implausible for %d hops", diam, ch.Hops)
	}
}

func TestChainCopyOfVertex(t *testing.T) {
	r := rng.New(8)
	ch, err := NewChain(3, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := ch.CopyOfVertex(ch.Root); c != -1 {
		t.Fatal("root copy should be -1")
	}
	for i := 0; i < 3; i++ {
		if c, isS := ch.CopyOfVertex(ch.SStart[i]); c != i || !isS {
			t.Fatalf("SStart[%d]: copy=%d isS=%v", i, c, isS)
		}
		if c, isS := ch.CopyOfVertex(ch.NStart[i]); c != i || isS {
			t.Fatalf("NStart[%d]: copy=%d isS=%v", i, c, isS)
		}
	}
}

func TestChainRejectsBadParams(t *testing.T) {
	if _, err := NewChain(0, 8, rng.New(1)); err == nil {
		t.Fatal("hops=0 accepted")
	}
	if _, err := NewChain(2, 3, rng.New(1)); err == nil {
		t.Fatal("non-power-of-two s accepted")
	}
}
