package badgraph

import (
	"testing"

	"wexp/internal/spokesman"
)

func TestGBadStructure(t *testing.T) {
	g, err := NewGBad(8, 6, 4) // s=8, ∆=6, β=4
	if err != nil {
		t.Fatal(err)
	}
	b := g.B
	if b.NS() != 8 || b.NN() != 32 {
		t.Fatalf("dims s=%d n=%d", b.NS(), b.NN())
	}
	// Every S-vertex has degree exactly ∆.
	for u := 0; u < 8; u++ {
		if b.DegS(u) != 6 {
			t.Fatalf("deg(v%d) = %d, want 6", u, b.DegS(u))
		}
	}
	// Consecutive vertices share exactly ∆−β = 2 neighbors; non-adjacent
	// pairs share none.
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			shared := sharedNeighbors(g, i, j)
			cyclicAdjacent := (j-i)%8 == 1 || (j-i)%8 == 7
			want := 0
			if cyclicAdjacent {
				want = 2
			}
			if shared != want {
				t.Fatalf("shared(v%d, v%d) = %d, want %d", i, j, shared, want)
			}
		}
	}
}

func sharedNeighbors(g *GBad, i, j int) int {
	seen := map[int32]bool{}
	for _, v := range g.B.NeighborsOfS(i) {
		seen[v] = true
	}
	c := 0
	for _, v := range g.B.NeighborsOfS(j) {
		if seen[v] {
			c++
		}
	}
	return c
}

func TestGBadUniqueExpansionExactly2BetaMinusDelta(t *testing.T) {
	// Lemma 3.3: |Γ¹(S)| = s·(2β − ∆), i.e. unique expansion 2β − ∆.
	for _, tc := range []struct{ s, delta, beta int }{
		{8, 6, 4}, {10, 8, 5}, {6, 4, 3}, {12, 10, 5}, {5, 4, 2},
	} {
		g, err := NewGBad(tc.s, tc.delta, tc.beta)
		if err != nil {
			t.Fatal(err)
		}
		sel := spokesman.AllOfS(g.B)
		want := tc.s * g.UniqueExpansionClaim()
		if sel.Unique != want {
			t.Fatalf("s=%d ∆=%d β=%d: Γ¹(S)=%d, want %d",
				tc.s, tc.delta, tc.beta, sel.Unique, want)
		}
	}
}

func TestGBadZeroUniqueAtHalfDelta(t *testing.T) {
	// β = ∆/2 ⇒ unique-neighbor expansion 0 but wireless ≥ ∆/2 (remark).
	g, err := NewGBad(8, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sel := spokesman.AllOfS(g.B); sel.Unique != 0 {
		t.Fatalf("Γ¹(S) = %d, want 0 at β = ∆/2", sel.Unique)
	}
	// The alternating subset achieves ≥ (s/2)·∆ unique vertices... each
	// chosen vertex is isolated from other chosen ones, so all its ∆
	// neighbors are unique.
	alt := g.EveryOther()
	got := g.B.UniqueCoverSet(alt, nil)
	want := len(alt) * g.Delta
	if got != want {
		t.Fatalf("alternating cover = %d, want %d", got, want)
	}
	// Wireless expansion of the full set S is ≥ ∆/2 via the alternating
	// subset: |Γ¹_S(S')|/|S| = (s/2·∆)/s = ∆/2.
	ratio := float64(got) / float64(g.S)
	if ratio < g.WirelessFloorClaim()-1e-9 {
		t.Fatalf("wireless ratio %g below claimed floor %g", ratio, g.WirelessFloorClaim())
	}
}

func TestGBadExhaustiveWirelessFloor(t *testing.T) {
	// On a small instance, check the exact wireless optimum of the full set
	// meets max{2β−∆, ∆/2}·|S| (remark after Lemma 3.3).
	g, err := NewGBad(6, 4, 2) // βu = 0 case
	if err != nil {
		t.Fatal(err)
	}
	opt, err := spokesman.Exhaustive(g.B)
	if err != nil {
		t.Fatal(err)
	}
	floor := g.WirelessFloorClaim() * float64(g.S)
	if float64(opt.Unique) < floor-1e-9 {
		t.Fatalf("exact wireless %d below floor %g", opt.Unique, floor)
	}
}

func TestGBadParameterValidation(t *testing.T) {
	if _, err := NewGBad(8, 6, 2); err == nil {
		t.Fatal("β < ∆/2 accepted")
	}
	if _, err := NewGBad(8, 6, 7); err == nil {
		t.Fatal("β > ∆ accepted")
	}
	if _, err := NewGBad(2, 4, 3); err == nil {
		t.Fatal("s < 3 accepted")
	}
}

func TestGBadNoIsolated(t *testing.T) {
	g, err := NewGBad(7, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.B.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGBadOrdinaryExpansionIsBeta(t *testing.T) {
	// Every single vertex has ∆ ≥ β neighbors; the full set S has exactly
	// s·β neighbors (expansion exactly β); contiguous arcs have ≥ β·|arc|.
	g, err := NewGBad(8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]int, g.S)
	for i := range full {
		full[i] = i
	}
	cov := g.B.CoverSet(full, nil)
	if cov != g.S*g.Beta {
		t.Fatalf("|Γ(S)| = %d, want %d", cov, g.S*g.Beta)
	}
	// Arcs of every length.
	for l := 1; l <= g.S; l++ {
		arc := make([]int, l)
		for i := range arc {
			arc[i] = i
		}
		cov := g.B.CoverSet(arc, nil)
		if cov < g.Beta*l {
			t.Fatalf("arc length %d covers %d < β·l = %d", l, cov, g.Beta*l)
		}
	}
}
