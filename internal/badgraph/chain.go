package badgraph

import (
	"fmt"

	"wexp/internal/graph"
	"wexp/internal/rng"
)

// Chain is the Section 5 broadcast lower-bound graph: D/2 copies of the
// core graph G¹S, ..., G^{D/2}_S chained together. The root rt₀ is
// connected to all of S¹; for each i, a uniformly random vertex rtᵢ ∈ Nⁱ is
// connected to all of S^{i+1}. The diameter is Θ(D) and any broadcast from
// rt₀ needs Ω(D·log(n/D)) rounds, because Corollary 5.1 bounds the rate at
// which new Nⁱ-vertices can be uniquely informed.
type Chain struct {
	G      *graph.Graph
	Hops   int   // number of core-graph copies (= D/2 in the paper)
	S      int   // per-copy core parameter s
	Root   int   // vertex id of rt₀
	RT     []int // rtᵢ for i = 1..Hops (vertex ids), the sampled relays
	SStart []int // SStart[i]: first vertex id of copy i's S side (i = 0-based)
	NStart []int // NStart[i]: first vertex id of copy i's N side
	NSize  int   // |Nⁱ| = s·log 2s per copy
}

// NewChain builds the chained graph with `hops` core copies of parameter s
// (a power of two). Relay vertices rtᵢ are sampled with r; the caller keeps
// the same seed to reproduce an instance.
func NewChain(hops, s int, r *rng.RNG) (*Chain, error) {
	if hops < 1 {
		return nil, fmt.Errorf("badgraph: chain needs at least one hop, got %d", hops)
	}
	core, err := NewCore(s)
	if err != nil {
		return nil, err
	}
	nSize := core.B.NN()
	perCopy := s + nSize
	total := 1 + hops*perCopy // rt0 + copies
	b := graph.NewBuilder(total)
	ch := &Chain{
		Hops:  hops,
		S:     s,
		Root:  0,
		NSize: nSize,
	}
	for i := 0; i < hops; i++ {
		sStart := 1 + i*perCopy
		nStart := sStart + s
		ch.SStart = append(ch.SStart, sStart)
		ch.NStart = append(ch.NStart, nStart)
		// Core edges of copy i.
		for u := 0; u < s; u++ {
			for _, v := range core.B.NeighborsOfS(u) {
				b.MustAddEdge(sStart+u, nStart+int(v))
			}
		}
	}
	// rt0 to all of S¹.
	for u := 0; u < s; u++ {
		b.MustAddEdge(0, ch.SStart[0]+u)
	}
	// rtᵢ ∈ Nⁱ to all of S^{i+1}.
	for i := 0; i < hops; i++ {
		rt := ch.NStart[i] + r.Intn(nSize)
		ch.RT = append(ch.RT, rt)
		if i+1 < hops {
			for u := 0; u < s; u++ {
				b.MustAddEdge(rt, ch.SStart[i+1]+u)
			}
		}
	}
	ch.G = b.Build()
	return ch, nil
}

// N returns the total vertex count of the chain graph.
func (c *Chain) N() int { return c.G.N() }

// CopyOfVertex returns which copy (0-based) a vertex belongs to and whether
// it is on the S side; the root returns (-1, false).
func (c *Chain) CopyOfVertex(v int) (copyIdx int, isS bool) {
	if v == c.Root {
		return -1, false
	}
	perCopy := c.S + c.NSize
	idx := (v - 1) / perCopy
	off := (v - 1) % perCopy
	return idx, off < c.S
}
