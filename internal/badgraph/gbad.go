// Package badgraph implements the paper's explicit worst-case
// constructions: the cyclic-overlap bipartite expander Gbad of Lemma 3.3
// (Figure 1), the binary-tree core graph of Lemma 4.4 (Figure 2), its
// arbitrary-expansion generalizations (Lemmas 4.6–4.8), the plugged
// worst-case expander of Section 4.3.3, and the chained broadcast
// lower-bound graph of Section 5.
package badgraph

import (
	"fmt"

	"wexp/internal/graph"
)

// GBad is the Lemma 3.3 construction: a bipartite (α, β)-expander with
// maximum degree ∆ whose unique-neighbor expansion is exactly 2β − ∆.
//
// S = {v_0, ..., v_{s-1}} arranged on an implicit cycle; N has s·β vertices
// arranged on a circle, and v_i is adjacent to the ∆ consecutive N-vertices
// starting at position i·β, so consecutive S-vertices share exactly ∆ − β
// neighbors and each v_i uniquely covers the middle 2β − ∆ of its range.
type GBad struct {
	B     *graph.Bipartite
	S     int // |S|
	Delta int // ∆, the S-side degree
	Beta  int // β, the per-vertex fresh-neighbor count
}

// NewGBad builds the construction. Requirements from the lemma:
// ∆/2 ≤ β ≤ ∆ (so overlaps involve only cyclically adjacent S-vertices)
// and s ≥ 3 (so the two overlap ranges of a vertex are distinct).
func NewGBad(s, delta, beta int) (*GBad, error) {
	if beta < (delta+1)/2 || beta > delta {
		return nil, fmt.Errorf("badgraph: GBad requires ∆/2 ≤ β ≤ ∆, got ∆=%d β=%d", delta, beta)
	}
	if s < 3 {
		return nil, fmt.Errorf("badgraph: GBad requires s ≥ 3, got %d", s)
	}
	n := s * beta
	if delta > n {
		return nil, fmt.Errorf("badgraph: GBad degenerate — ∆=%d exceeds |N|=%d", delta, n)
	}
	bb := graph.NewBipartiteBuilder(s, n)
	for i := 0; i < s; i++ {
		for j := 0; j < delta; j++ {
			bb.MustAddEdge(i, (i*beta+j)%n)
		}
	}
	return &GBad{B: bb.Build(), S: s, Delta: delta, Beta: beta}, nil
}

// UniqueExpansionClaim returns the claimed unique-neighbor expansion
// βu = 2β − ∆ (Lemma 3.3).
func (g *GBad) UniqueExpansionClaim() int { return 2*g.Beta - g.Delta }

// WirelessFloorClaim returns the remark's wireless-expansion floor
// max{2β − ∆, ∆/2} for the full set S' = S decomposition argument.
func (g *GBad) WirelessFloorClaim() float64 {
	u := float64(2*g.Beta - g.Delta)
	h := float64(g.Delta) / 2
	if u > h {
		return u
	}
	return h
}

// EveryOther returns the alternating subset {v_0, v_2, v_4, ...} of S,
// the remark's second choice of S” (drop the last vertex when s is odd so
// no two chosen vertices are cyclically adjacent).
func (g *GBad) EveryOther() []int {
	var out []int
	limit := g.S
	if g.S%2 == 1 {
		limit = g.S - 1
	}
	for i := 0; i < limit; i += 2 {
		out = append(out, i)
	}
	return out
}
