package badgraph

import (
	"fmt"
	"math/bits"

	"wexp/internal/graph"
)

// Core is the Lemma 4.4 core graph: a bipartite GS = (S, N, ES) built from
// a perfect binary tree TS with s leaves. Each tree vertex v at level i
// carries a disjoint set Nv of s/2^i N-vertices; leaf z ∈ S is adjacent to
// every vertex of Nw for every ancestor w of z (including z itself).
//
// Properties (verified by the test suite and experiment E5):
//  1. |S| = s, |N| = s·log 2s;
//  2. every S-vertex has degree 2s − 1;
//  3. ∆N = s, δN ≤ 2s / log 2s;
//  4. |Γ(S')| ≥ log 2s · |S'| for every S' ⊆ S (ordinary expansion ≥ log 2s);
//  5. |Γ¹_S(S')| ≤ 2s for every S' ⊆ S (wireless ceiling).
//
// Tree nodes are heap-indexed: node 1 is the root, node k has children 2k
// and 2k+1, leaves are nodes s..2s−1; leaf node s+j corresponds to S-vertex
// j.
type Core struct {
	B *graph.Bipartite
	S int // s = |S|, a power of two
	L int // log2 s, the leaf level

	nodeStart []int // nodeStart[k] = first N-index of node k's set Nv; len 2s
	nodeLen   []int // |Nv| for node k
}

// NewCore builds the core graph for s a power of two (s ≥ 1).
func NewCore(s int) (*Core, error) {
	if s < 1 || s&(s-1) != 0 {
		return nil, fmt.Errorf("badgraph: core graph needs s a positive power of two, got %d", s)
	}
	L := bits.TrailingZeros(uint(s)) // log2 s
	numNodes := 2 * s                // 1..2s-1 used
	nodeStart := make([]int, numNodes)
	nodeLen := make([]int, numNodes)
	next := 0
	for k := 1; k < numNodes; k++ {
		level := bits.Len(uint(k)) - 1 // node k is at tree level ⌊log2 k⌋
		size := s >> uint(level)       // |Nv| = s / 2^level
		nodeStart[k] = next
		nodeLen[k] = size
		next += size
	}
	totalN := next // = s·(log s + 1) = s·log 2s
	bb := graph.NewBipartiteBuilder(s, totalN)
	for j := 0; j < s; j++ {
		for k := s + j; k >= 1; k /= 2 { // walk leaf → root
			for t := 0; t < nodeLen[k]; t++ {
				bb.MustAddEdge(j, nodeStart[k]+t)
			}
		}
	}
	return &Core{B: bb.Build(), S: s, L: L, nodeStart: nodeStart, nodeLen: nodeLen}, nil
}

// NodeOfN returns the tree node whose set Nv contains the N-vertex v, and
// the node's level (0 = root).
func (c *Core) NodeOfN(v int) (node, level int) {
	// Node ranges are laid out in increasing k; binary search.
	lo, hi := 1, 2*c.S-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.nodeStart[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, bits.Len(uint(lo)) - 1
}

// NvRange returns the half-open N-index range [start, end) of node k's set.
func (c *Core) NvRange(k int) (start, end int) {
	return c.nodeStart[k], c.nodeStart[k] + c.nodeLen[k]
}

// LeafNode returns the tree node of S-vertex j.
func (c *Core) LeafNode(j int) int { return c.S + j }

// IsAncestor reports whether tree node a is an ancestor of node b
// (inclusive).
func (c *Core) IsAncestor(a, b int) bool {
	for b >= 1 {
		if a == b {
			return true
		}
		b /= 2
	}
	return false
}

// Levels returns log 2s = L + 1, the number of tree levels.
func (c *Core) Levels() int { return c.L + 1 }

// CoverUpperBound returns Lemma 4.4(5)'s ceiling 2s on |Γ¹_S(S')|.
func (c *Core) CoverUpperBound() int { return 2 * c.S }

// SubtreeUniqueBound returns the induction bound of the Lemma 4.4 proof:
// for a node at inverse-level j (leaves have inverse-level 0),
// |Γ¹_S(S') ∩ Ňv| ≤ 2^{j+1} − 1.
func (c *Core) SubtreeUniqueBound(node int) int {
	level := bits.Len(uint(node)) - 1
	inv := c.L - level
	return 1<<(uint(inv)+1) - 1
}

// DescendantNRange computes Ňv = ∪_{w ∈ D(v)} Nw as a boolean mask over N.
func (c *Core) DescendantNRange(node int) []bool {
	mask := make([]bool, c.B.NN())
	var walk func(k int)
	walk = func(k int) {
		if k >= 2*c.S {
			return
		}
		st, en := c.NvRange(k)
		for v := st; v < en; v++ {
			mask[v] = true
		}
		if k < c.S { // internal node
			walk(2 * k)
			walk(2*k + 1)
		}
	}
	walk(node)
	return mask
}

// OptimalSpokesman returns a selection achieving the core graph's exact
// spokesman optimum, together with its value 2s − 1: any single leaf z has
// degree 2s − 1 and, being a singleton, covers every neighbor uniquely.
// No subset can do better — Lemma 4.4(5) caps |Γ¹_S(S')| at 2s, and a
// parity argument over the proof's subtree induction shows 2s itself is
// unattainable (the root set Nrt of size s is fully covered only by a
// single leaf, which then reaches only 2s−1 vertices in total; any S' with
// two leaves collides on every common ancestor's set). The test suite
// cross-checks this against the exhaustive solver for s ≤ 16.
func (c *Core) OptimalSpokesman() ([]int, int) {
	return []int{0}, 2*c.S - 1
}
