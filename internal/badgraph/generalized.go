package badgraph

import (
	"fmt"
	"math"

	"wexp/internal/bounds"
	"wexp/internal/graph"
)

// ExpandedCore is a generalized core graph with integer copy factor k
// applied to one side of the Lemma 4.4 construction, realizing Lemma 4.7
// (N-side copies, expansion k·log 2s > log 2s) or Lemma 4.8 (S-side copies,
// expansion log 2s / k < log 2s).
type ExpandedCore struct {
	B    *graph.Bipartite
	Core *Core // the underlying Lemma 4.4 core on parameter s
	K    int   // copy factor (≥ 1)
	// SideN reports which side was expanded: true for Lemma 4.7 (each
	// N-vertex has K copies), false for Lemma 4.8 (each S-vertex has K
	// copies).
	SideN bool
}

// Beta returns the achieved ordinary-expansion floor: k·log 2s for N-side
// expansion, log 2s / k for S-side expansion.
func (e *ExpandedCore) Beta() float64 {
	l2s := bounds.Log2(2 * float64(e.Core.S))
	if e.SideN {
		return float64(e.K) * l2s
	}
	return l2s / float64(e.K)
}

// WirelessCeil returns the claimed absolute ceiling on |Γ¹_S(S')|:
// 2s·k for Lemma 4.7, 2s for Lemma 4.8 — both equal to (2/log 2s)·|N|.
func (e *ExpandedCore) WirelessCeil() int {
	if e.SideN {
		return 2 * e.Core.S * e.K
	}
	return 2 * e.Core.S
}

// NewCoreExpandN builds Lemma 4.7's graph ĜS = (S, N̂, ÊS): the core graph
// on s with every N-vertex replaced by k identical copies. The resulting
// expansion floor is β = k·log 2s and |N̂| = s·β.
func NewCoreExpandN(s, k int) (*ExpandedCore, error) {
	if k < 1 {
		return nil, fmt.Errorf("badgraph: copy factor k must be ≥ 1, got %d", k)
	}
	c, err := NewCore(s)
	if err != nil {
		return nil, err
	}
	bb := graph.NewBipartiteBuilder(s, c.B.NN()*k)
	for u := 0; u < s; u++ {
		for _, v := range c.B.NeighborsOfS(u) {
			for t := 0; t < k; t++ {
				bb.MustAddEdge(u, int(v)*k+t)
			}
		}
	}
	return &ExpandedCore{B: bb.Build(), Core: c, K: k, SideN: true}, nil
}

// NewCoreExpandS builds Lemma 4.8's graph ǦS = (Š, N, ĚS): the core graph
// on s with every S-vertex replaced by k identical copies. The resulting
// expansion floor is β = log 2s / k and |Š| = s·k.
func NewCoreExpandS(s, k int) (*ExpandedCore, error) {
	if k < 1 {
		return nil, fmt.Errorf("badgraph: copy factor k must be ≥ 1, got %d", k)
	}
	c, err := NewCore(s)
	if err != nil {
		return nil, err
	}
	bb := graph.NewBipartiteBuilder(s*k, c.B.NN())
	for u := 0; u < s; u++ {
		for _, v := range c.B.NeighborsOfS(u) {
			for t := 0; t < k; t++ {
				bb.MustAddEdge(u*k+t, int(v))
			}
		}
	}
	return &ExpandedCore{B: bb.Build(), Core: c, K: k, SideN: false}, nil
}

// GeneralizedCore realizes Lemma 4.6: given a degree budget ∆* and a target
// expansion β* with (2e)/∆* ≤ β* ≤ ∆*/(2e), it selects the branch and
// integer parameters (s, k) so that the constructed graph G*S = (S*, N*)
// has maximum degree ≤ ∆*, ordinary expansion ≥ its achieved β (returned;
// within a constant factor of β*), |S*| ≤ ∆*/2... and wireless ceiling
// |Γ¹_{S*}(S')| ≤ (4 / log min{∆*/β, ∆*·β})·|N*|.
//
// The paper assumes real-valued s and exact divisibility "for simplicity";
// the integer rounding here changes parameters by at most a constant
// factor, and all claims are checked against the *achieved* parameters
// reported in the returned struct.
func GeneralizedCore(deltaStar int, betaStar float64) (*ExpandedCore, error) {
	const twoE = 2 * math.E
	if betaStar < twoE/float64(deltaStar) || betaStar > float64(deltaStar)/twoE {
		return nil, fmt.Errorf("badgraph: need 2e/∆* ≤ β* ≤ ∆*/(2e), got ∆*=%d β*=%g", deltaStar, betaStar)
	}
	// Lemma 4.6's proof branches on β* vs log 2s where ∆* = 2s·β*/log 2s.
	// The integer grid (s a power of two, k an integer) can make exactly one
	// branch degenerate near the boundary, so both branches are constructed
	// and each candidate is verified against the lemma's third assertion
	// before being returned; the largest verified instance wins.
	var best *ExpandedCore
	if s, k := fitExpandN(deltaStar, betaStar); s > 0 {
		if e, err := NewCoreExpandN(s, k); err == nil && satisfiesLemma46(e, deltaStar) {
			best = e
		}
	}
	if s, k := fitExpandS(deltaStar, betaStar); s > 0 {
		if e, err := NewCoreExpandS(s, k); err == nil && satisfiesLemma46(e, deltaStar) {
			if best == nil || e.B.NN() > best.B.NN() {
				best = e
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("badgraph: no feasible core parameters for ∆*=%d β*=%g", deltaStar, betaStar)
	}
	return best, nil
}

// satisfiesLemma46 checks the lemma's wireless assertion at the achieved
// parameters: ceiling ≤ (4/log min{∆*/β, ∆*·β})·|N*|.
func satisfiesLemma46(e *ExpandedCore, deltaStar int) bool {
	frac := bounds.GeneralizedCoreWirelessFrac(deltaStar, e.Beta())
	return float64(e.WirelessCeil()) <= frac*float64(e.B.NN())+1e-9
}

// fitExpandN finds the largest power-of-two s ≥ 2 with k = ⌊β*/log 2s⌋ ≥ 1
// and S-degree (2s−1)·k ≤ ∆*; returns (0,0) if the branch is infeasible
// (β* ≤ log 2s for all feasible s).
func fitExpandN(deltaStar int, betaStar float64) (int, int) {
	bestS, bestK := 0, 0
	for s := 2; 2*s-1 <= deltaStar; s *= 2 {
		l2s := bounds.Log2(2 * float64(s))
		k := int(betaStar / l2s)
		if k < 1 {
			continue
		}
		if (2*s-1)*k <= deltaStar {
			bestS, bestK = s, k
		}
	}
	return bestS, bestK
}

// fitExpandS finds the largest power-of-two s ≥ 2 with k = ⌊log 2s/β*⌋ ≥ 1
// and max degree max{2s−1, s·k} ≤ ∆*; returns (0,0) if infeasible.
func fitExpandS(deltaStar int, betaStar float64) (int, int) {
	bestS, bestK := 0, 0
	for s := 2; 2*s-1 <= deltaStar; s *= 2 {
		l2s := bounds.Log2(2 * float64(s))
		k := int(l2s / betaStar)
		if k < 1 {
			continue
		}
		maxDeg := 2*s - 1
		if s*k > maxDeg {
			maxDeg = s * k
		}
		if maxDeg <= deltaStar {
			bestS, bestK = s, k
		}
	}
	return bestS, bestK
}
