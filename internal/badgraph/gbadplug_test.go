package badgraph

import (
	"testing"

	"wexp/internal/bitset"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/rng"
)

func TestGBadPluggedStructure(t *testing.T) {
	r := rng.New(1)
	base := gen.Margulis(8) // n=64
	p, err := NewGBadPlugged(base, 8, 6, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.G.N() != base.N()+8 {
		t.Fatalf("n = %d, want %d", p.G.N(), base.N()+8)
	}
	// The witness vertices connect only into the planted N side.
	inN := map[int]bool{}
	for _, v := range p.N {
		inN[v] = true
	}
	for _, u := range p.S {
		if p.G.Degree(u) != 6 {
			t.Fatalf("witness degree %d, want ∆bad = 6", p.G.Degree(u))
		}
		for _, w := range p.G.Neighbors(u) {
			if !inN[int(w)] {
				t.Fatalf("witness %d adjacent to non-planted vertex %d", u, w)
			}
		}
	}
	// ∆' ≤ ∆(G) + ∆N(Gbad): each planted vertex gains at most its Gbad
	// N-side degree.
	maxGain := p.Bad.B.MaxDegN()
	if p.G.MaxDegree() > base.MaxDegree()+maxGain {
		t.Fatalf("∆' = %d exceeds ∆ + ∆N = %d", p.G.MaxDegree(), base.MaxDegree()+maxGain)
	}
}

func TestGBadPluggedUniqueCap(t *testing.T) {
	// The witness set's unique neighborhood within the planted N side is
	// exactly s·(2β−∆); base vertices may add nothing because the witness
	// has no other neighbors.
	r := rng.New(2)
	base := gen.Torus(10, 10)
	p, err := NewGBadPlugged(base, 8, 6, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	S := bitset.FromIndices(p.G.N(), p.WitnessSet())
	got := expansion.Gamma1(p.G, S).Count()
	if got != p.UniqueCap() {
		t.Fatalf("Γ¹(S witness) = %d, want exactly %d", got, p.UniqueCap())
	}
	// Unique expansion of the witness = 2β−∆ = 2 < ordinary expansion,
	// which is β = 4 (the full Gbad neighborhood).
	gm := expansion.GammaMinus(p.G, S).Count()
	if gm != p.Bad.S*p.Bad.Beta {
		t.Fatalf("Γ⁻ = %d, want %d", gm, p.Bad.S*p.Bad.Beta)
	}
}

func TestGBadPluggedRejectsOversize(t *testing.T) {
	r := rng.New(3)
	tiny := gen.Cycle(5)
	if _, err := NewGBadPlugged(tiny, 8, 6, 4, r); err == nil {
		t.Fatal("oversized Gbad accepted")
	}
	if _, err := NewGBadPlugged(tiny, 3, 4, 1, r); err == nil {
		t.Fatal("invalid Gbad parameters accepted")
	}
}
