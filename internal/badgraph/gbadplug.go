package badgraph

import (
	"fmt"

	"wexp/internal/graph"
	"wexp/internal/rng"
)

// GBadPlugged realizes remark (2) after Lemma 3.3: the bad bipartite graph
// Gbad laid on top of an ordinary expander G, producing a non-bipartite
// ordinary expander whose unique-neighbor expansion is capped by 2β − ∆
// (witnessed by the new S side). The maximum degree of the result is at
// most ∆(G) + ∆(Gbad), matching the remark's ∆' accounting.
type GBadPlugged struct {
	G    *graph.Graph
	Base int   // |V(G)|
	S    []int // the Gbad S-side vertex ids in the combined graph
	N    []int // the base vertices playing Gbad's N side
	Bad  *GBad
}

// NewGBadPlugged plugs Gbad(s, ∆bad, βbad) onto g. The N side (s·βbad
// vertices) is sampled uniformly from V(g) without replacement.
func NewGBadPlugged(g *graph.Graph, s, deltaBad, betaBad int, r *rng.RNG) (*GBadPlugged, error) {
	bad, err := NewGBad(s, deltaBad, betaBad)
	if err != nil {
		return nil, err
	}
	nSize := bad.B.NN()
	if nSize > g.N() {
		return nil, fmt.Errorf("badgraph: Gbad N side (%d) larger than base graph (%d)", nSize, g.N())
	}
	nVerts := r.Choose(g.N(), nSize)
	b := graph.NewBuilder(g.N() + s)
	for _, e := range g.Edges() {
		b.MustAddEdge(e[0], e[1])
	}
	sVerts := make([]int, s)
	for i := range sVerts {
		sVerts[i] = g.N() + i
	}
	for u := 0; u < s; u++ {
		for _, v := range bad.B.NeighborsOfS(u) {
			b.MustAddEdge(sVerts[u], nVerts[v])
		}
	}
	return &GBadPlugged{
		G:    b.Build(),
		Base: g.N(),
		S:    sVerts,
		N:    nVerts,
		Bad:  bad,
	}, nil
}

// UniqueCap returns the remark's ceiling on |Γ¹(S)| for the witness set:
// s·(2β − ∆) plus nothing — every neighbor of the new S side lies in the
// planted N side, where the cyclic overlap limits unique coverage exactly
// as in Lemma 3.3.
func (p *GBadPlugged) UniqueCap() int {
	return p.Bad.S * p.Bad.UniqueExpansionClaim()
}

// WitnessSet returns the Gbad S side as combined-graph vertex ids.
func (p *GBadPlugged) WitnessSet() []int {
	return append([]int(nil), p.S...)
}
