package badgraph

import (
	"math"
	"math/bits"
	"testing"

	"wexp/internal/rng"
	"wexp/internal/spokesman"
)

func TestCoreProperty1Sizes(t *testing.T) {
	for _, s := range []int{1, 2, 4, 8, 16, 32, 64} {
		c, err := NewCore(s)
		if err != nil {
			t.Fatal(err)
		}
		if c.B.NS() != s {
			t.Fatalf("s=%d: |S|=%d", s, c.B.NS())
		}
		wantN := s * (c.L + 1) // s·log 2s
		if c.B.NN() != wantN {
			t.Fatalf("s=%d: |N|=%d, want %d", s, c.B.NN(), wantN)
		}
	}
}

func TestCoreProperty2SDegrees(t *testing.T) {
	for _, s := range []int{1, 4, 16, 64} {
		c, _ := NewCore(s)
		for j := 0; j < s; j++ {
			if d := c.B.DegS(j); d != 2*s-1 {
				t.Fatalf("s=%d: deg(leaf %d) = %d, want %d", s, j, d, 2*s-1)
			}
		}
	}
}

func TestCoreProperty3NDegrees(t *testing.T) {
	for _, s := range []int{2, 8, 32} {
		c, _ := NewCore(s)
		if got := c.B.MaxDegN(); got != s {
			t.Fatalf("s=%d: ∆N = %d, want %d", s, got, s)
		}
		l2s := math.Log2(2 * float64(s))
		if got := c.B.AvgDegN(); got > 2*float64(s)/l2s+1e-9 {
			t.Fatalf("s=%d: δN = %g exceeds 2s/log2s = %g", s, got, 2*float64(s)/l2s)
		}
		// Per-level degree: a vertex of Nv at level i has degree s/2^i.
		for v := 0; v < c.B.NN(); v++ {
			node, level := c.NodeOfN(v)
			want := s >> uint(level)
			if got := c.B.DegN(v); got != want {
				t.Fatalf("s=%d: N-vertex %d (node %d, level %d) degree %d, want %d",
					s, v, node, level, got, want)
			}
		}
	}
}

func TestCoreProperty4ExpansionExhaustive(t *testing.T) {
	// |Γ(S')| ≥ log 2s · |S'| for every nonempty S' ⊆ S — full enumeration
	// for s ≤ 16.
	for _, s := range []int{2, 4, 8, 16} {
		c, _ := NewCore(s)
		l2s := c.L + 1
		var sub []int
		for mask := 1; mask < 1<<uint(s); mask++ {
			sub = sub[:0]
			for u := 0; u < s; u++ {
				if mask&(1<<uint(u)) != 0 {
					sub = append(sub, u)
				}
			}
			cov := c.B.CoverSet(sub, nil)
			if cov < l2s*len(sub) {
				t.Fatalf("s=%d: |Γ(S')|=%d < log2s·|S'|=%d for mask %b",
					s, cov, l2s*len(sub), mask)
			}
		}
	}
}

func TestCoreProperty5WirelessCeilingExhaustive(t *testing.T) {
	// |Γ¹_S(S')| ≤ 2s for every S' ⊆ S — full enumeration for s ≤ 16.
	for _, s := range []int{2, 4, 8, 16} {
		c, _ := NewCore(s)
		var sub []int
		scratch := make([]int8, c.B.NN())
		for mask := 1; mask < 1<<uint(s); mask++ {
			sub = sub[:0]
			for u := 0; u < s; u++ {
				if mask&(1<<uint(u)) != 0 {
					sub = append(sub, u)
				}
			}
			uniq := c.B.UniqueCoverSet(sub, scratch)
			if uniq > 2*s {
				t.Fatalf("s=%d: |Γ¹_S(S')|=%d > 2s=%d for mask %b", s, uniq, 2*s, mask)
			}
		}
	}
}

func TestCoreProperty5LargeSampled(t *testing.T) {
	// For larger s, check the ceiling on structured adversaries: singletons,
	// sibling pairs, full S, random subsets, every-other leaves, subtrees.
	for _, s := range []int{32, 64, 128} {
		c, _ := NewCore(s)
		r := rng.New(uint64(s))
		check := func(sub []int, label string) {
			if len(sub) == 0 {
				return
			}
			uniq := c.B.UniqueCoverSet(sub, nil)
			if uniq > c.CoverUpperBound() {
				t.Fatalf("s=%d %s: unique %d > 2s=%d", s, label, uniq, 2*s)
			}
		}
		full := make([]int, s)
		for i := range full {
			full[i] = i
		}
		check(full, "full")
		check([]int{0}, "singleton")
		check([]int{0, 1}, "sibling-pair")
		var alt []int
		for i := 0; i < s; i += 2 {
			alt = append(alt, i)
		}
		check(alt, "every-other")
		// Subtree: leaves of the left child of the root.
		var left []int
		for i := 0; i < s/2; i++ {
			left = append(left, i)
		}
		check(left, "left-subtree")
		for trial := 0; trial < 50; trial++ {
			k := 1 + r.Intn(s)
			check(r.Choose(s, k), "random")
		}
		// The spokesman solvers' certified value must also respect it.
		sel := spokesman.BestDeterministic(c.B)
		if sel.Unique > 2*s {
			t.Fatalf("s=%d: best deterministic %d > 2s", s, sel.Unique)
		}
	}
}

func TestCoreWirelessCeilingIsNearlyTight(t *testing.T) {
	// The ceiling 2s is achievable up to a constant: taking every other
	// leaf covers at least s/2 vertices at the leaf level plus s/2 at the
	// level above... concretely, assert the best solver finds ≥ s.
	for _, s := range []int{8, 16, 32} {
		c, _ := NewCore(s)
		sel := spokesman.BestDeterministic(c.B)
		if sel.Unique < s {
			t.Fatalf("s=%d: best = %d, want ≥ s = %d", s, sel.Unique, s)
		}
	}
}

func TestCoreInductionBound(t *testing.T) {
	// The proof's induction: |Γ¹_S(S') ∩ Ňv| ≤ 2^{j+1}−1 for every node v at
	// inverse-level j and every S'. Checked exhaustively for s = 8.
	s := 8
	c, _ := NewCore(s)
	masks := make([][]bool, 2*s)
	for k := 1; k < 2*s; k++ {
		masks[k] = c.DescendantNRange(k)
	}
	cover := make([]int8, c.B.NN())
	var sub []int
	for m := 1; m < 1<<uint(s); m++ {
		sub = sub[:0]
		for u := 0; u < s; u++ {
			if m&(1<<uint(u)) != 0 {
				sub = append(sub, u)
			}
		}
		c.B.UniqueCover(func(u int) bool { return m&(1<<uint(u)) != 0 }, cover)
		for k := 1; k < 2*s; k++ {
			cnt := 0
			for v := 0; v < c.B.NN(); v++ {
				if masks[k][v] && cover[v] == 1 {
					cnt++
				}
			}
			if cnt > c.SubtreeUniqueBound(k) {
				t.Fatalf("mask %b node %d: %d > bound %d", m, k, cnt, c.SubtreeUniqueBound(k))
			}
		}
		_ = sub
	}
}

func TestCoreObservation45(t *testing.T) {
	// Edge (z, v) exists iff the node holding v is an ancestor of leaf z.
	s := 16
	c, _ := NewCore(s)
	for j := 0; j < s; j++ {
		adj := map[int]bool{}
		for _, v := range c.B.NeighborsOfS(j) {
			adj[int(v)] = true
		}
		for v := 0; v < c.B.NN(); v++ {
			node, _ := c.NodeOfN(v)
			want := c.IsAncestor(node, c.LeafNode(j))
			if adj[v] != want {
				t.Fatalf("leaf %d, N-vertex %d (node %d): edge=%v want %v",
					j, v, node, adj[v], want)
			}
		}
	}
}

func TestCoreRejectsNonPowerOfTwo(t *testing.T) {
	for _, s := range []int{0, 3, 5, 6, 7, 12, -4} {
		if _, err := NewCore(s); err == nil {
			t.Fatalf("s=%d accepted", s)
		}
	}
}

func TestCoreNodeOfNConsistency(t *testing.T) {
	s := 32
	c, _ := NewCore(s)
	total := 0
	for k := 1; k < 2*s; k++ {
		st, en := c.NvRange(k)
		level := bits.Len(uint(k)) - 1
		if en-st != s>>uint(level) {
			t.Fatalf("node %d size %d, want %d", k, en-st, s>>uint(level))
		}
		for v := st; v < en; v++ {
			node, lv := c.NodeOfN(v)
			if node != k || lv != level {
				t.Fatalf("NodeOfN(%d) = (%d,%d), want (%d,%d)", v, node, lv, k, level)
			}
		}
		total += en - st
	}
	if total != c.B.NN() {
		t.Fatalf("node ranges cover %d of %d", total, c.B.NN())
	}
}

func TestCoreOptimalSpokesmanExact(t *testing.T) {
	// The exact optimum of the spokesman problem on the core graph is
	// 2s − 1, achieved by any singleton leaf.
	for _, s := range []int{1, 2, 4, 8, 16} {
		c, err := NewCore(s)
		if err != nil {
			t.Fatal(err)
		}
		sub, claim := c.OptimalSpokesman()
		if got := c.B.UniqueCoverSet(sub, nil); got != claim {
			t.Fatalf("s=%d: singleton covers %d, claim %d", s, got, claim)
		}
		opt, err := spokesman.Exhaustive(c.B)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Unique != claim {
			t.Fatalf("s=%d: exhaustive optimum %d != 2s−1 = %d", s, opt.Unique, claim)
		}
	}
}
