package badgraph

import (
	"fmt"

	"wexp/internal/graph"
	"wexp/internal/rng"
)

// WorstCase is the Section 4.3.3 plugged expander G̃: a generalized core
// graph G*S = (S*, N*) with ∆* = ε·∆ and β* = β/ε laid on top of an
// ordinary (α, β)-expander G. The S*-vertices are new; N* is a subset of
// V(G). The result is an (α̃, β̃)-expander with β̃ = (1−ε)·β whose wireless
// expansion is O(β̃ / (ε³ · log min{∆̃/β̃, ∆̃·β̃})) — the witness sets are the
// subsets of S*.
type WorstCase struct {
	G     *graph.Graph // the combined graph G̃
	Base  int          // |V(G)|: vertices 0..Base-1 are the original expander
	SStar []int        // vertex ids of S* in G̃ (Base..Base+|S*|-1)
	NStar []int        // vertex ids of N* in G̃ (chosen from the base graph)
	Core  *ExpandedCore
	Eps   float64
}

// NewWorstCase plugs a generalized core with parameters ∆* = ⌊ε∆⌋,
// β* = β/ε onto the expander g. The N* vertices are sampled uniformly from
// V(g) without replacement. Requires ∆·β ≥ 1/(1−2ε) and 0 < ε < 1/2 per
// Section 4.3.3 (checked), plus feasibility of the core parameters.
func NewWorstCase(g *graph.Graph, beta, eps float64, r *rng.RNG) (*WorstCase, error) {
	if eps <= 0 || eps >= 0.5 {
		return nil, fmt.Errorf("badgraph: blow-up ε must be in (0, 1/2), got %g", eps)
	}
	delta := g.MaxDegree()
	if float64(delta)*beta < 1/(1-2*eps) {
		return nil, fmt.Errorf("badgraph: requires ∆·β ≥ 1/(1−2ε): ∆=%d β=%g ε=%g", delta, beta, eps)
	}
	deltaStar := int(eps * float64(delta))
	if deltaStar < 1 {
		return nil, fmt.Errorf("badgraph: ε∆ < 1 (∆=%d, ε=%g): base expander degree too small", delta, eps)
	}
	betaStar := beta / eps
	core, err := GeneralizedCore(deltaStar, betaStar)
	if err != nil {
		return nil, err
	}
	sStarSize := core.B.NS()
	nStarSize := core.B.NN()
	if nStarSize > g.N() {
		return nil, fmt.Errorf("badgraph: core N* (%d) larger than base graph (%d)", nStarSize, g.N())
	}
	nStar := r.Choose(g.N(), nStarSize)

	b := graph.NewBuilder(g.N() + sStarSize)
	for _, e := range g.Edges() {
		b.MustAddEdge(e[0], e[1])
	}
	sStar := make([]int, sStarSize)
	for i := range sStar {
		sStar[i] = g.N() + i
	}
	for u := 0; u < sStarSize; u++ {
		for _, v := range core.B.NeighborsOfS(u) {
			b.MustAddEdge(sStar[u], nStar[v])
		}
	}
	return &WorstCase{
		G:     b.Build(),
		Base:  g.N(),
		SStar: sStar,
		NStar: nStar,
		Core:  core,
		Eps:   eps,
	}, nil
}

// WitnessSet returns the wireless-expansion witness: the full S* as vertex
// ids of G̃. Every subset S' ⊆ S* has |Γ¹_{S*}(S')| ≤ the core's wireless
// ceiling, so the wireless expansion of S* in G̃ is at most
// WirelessCeil / |S*|.
func (w *WorstCase) WitnessSet() []int {
	return append([]int(nil), w.SStar...)
}
