package graph

import (
	"testing"
	"testing/quick"
)

func TestInducedSubgraph(t *testing.T) {
	g := pathGraph(5) // 0-1-2-3-4
	sub, mapping, err := InducedSubgraph(g, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced path: n=%d m=%d", sub.N(), sub.M())
	}
	if mapping[0] != 1 || mapping[2] != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	// Non-adjacent selection.
	sub, _, err = InducedSubgraph(g, []int{0, 2, 4})
	if err != nil || sub.M() != 0 {
		t.Fatal("independent set should induce empty graph")
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := pathGraph(3)
	if _, _, err := InducedSubgraph(g, []int{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, _, err := InducedSubgraph(g, []int{5}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestDisjointUnion(t *testing.T) {
	g := pathGraph(3)
	h := completeGraph(3)
	u := DisjointUnion(g, h)
	if u.N() != 6 || u.M() != g.M()+h.M() {
		t.Fatalf("union dims n=%d m=%d", u.N(), u.M())
	}
	if u.Connected() {
		t.Fatal("disjoint union should be disconnected")
	}
	if _, k := u.Components(); k != 2 {
		t.Fatal("should have 2 components")
	}
}

func TestComplement(t *testing.T) {
	g := completeGraph(5)
	c := Complement(g)
	if c.M() != 0 {
		t.Fatalf("complement of K5 has %d edges", c.M())
	}
	empty := NewBuilder(4).Build()
	if got := Complement(empty); got.M() != 6 {
		t.Fatalf("complement of empty-4 has %d edges, want 6", got.M())
	}
	// Path complement check by hand: P3 = 0-1-2; complement has only 0-2.
	p := pathGraph(3)
	pc := Complement(p)
	if pc.M() != 1 || !pc.HasEdge(0, 2) {
		t.Fatalf("complement of P3 wrong: %v", pc.Edges())
	}
}

func TestComplementInvolution(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 12
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		return Equal(g, Complement(Complement(g)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComplementEdgeCount(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 10
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		return g.M()+Complement(g).M() == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddVertexConnected(t *testing.T) {
	g := completeGraph(4)
	g2, err := AddVertexConnected(g, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 5 || g2.Degree(4) != 2 {
		t.Fatalf("added vertex: n=%d deg=%d", g2.N(), g2.Degree(4))
	}
	if !g2.HasEdge(4, 0) || !g2.HasEdge(4, 2) || g2.HasEdge(4, 1) {
		t.Fatal("attachments wrong")
	}
	if _, err := AddVertexConnected(g, []int{9}); err == nil {
		t.Fatal("bad attachment accepted")
	}
}

func TestEqual(t *testing.T) {
	a := pathGraph(4)
	b := pathGraph(4)
	if !Equal(a, b) {
		t.Fatal("identical graphs unequal")
	}
	if Equal(a, pathGraph(5)) {
		t.Fatal("different sizes equal")
	}
	c := NewBuilder(4)
	c.MustAddEdge(0, 1)
	c.MustAddEdge(1, 2)
	c.MustAddEdge(0, 3) // different edge set, same m
	if Equal(a, c.Build()) {
		t.Fatal("different graphs equal")
	}
}
