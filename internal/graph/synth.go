package graph

import (
	"io"
	"strconv"
)

// SynthEdgeList returns a deterministic pseudo-random edge-list stream for
// large-scale ingestion tests and benchmarks: a headered list ("n <n>")
// whose first n-1 edges form a random recursive tree (vertex v attaches to
// a uniform parent < v, so the graph is connected) followed by extra
// uniform non-loop edges. Lines are generated lazily in small chunks — the
// full text is never materialized, which keeps a 10⁷-edge input from
// costing ~150 MB of buffer in the very tests that assert ingestion's
// memory bound.
//
// The stream is a pure function of (n, extra, seed): every Read sequence
// observes identical bytes, so graph digests are reproducible across
// processes and machines.
func SynthEdgeList(n, extra int, seed uint64) io.Reader {
	if n < 0 {
		n = 0
	}
	if extra < 0 {
		extra = 0
	}
	return &synthReader{n: n, extra: extra, state: seed + 0x9e3779b97f4a7c15}
}

type synthReader struct {
	n     int
	extra int
	i     int // edges emitted so far
	state uint64

	wroteHeader bool
	done        bool
	chunk       []byte
	pend        []byte
}

// next is splitmix64: a tiny, dependency-free PRNG with full 64-bit state
// avalanche, more than enough for synthetic topology.
func (r *synthReader) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *synthReader) intn(n int) int {
	return int(r.next() % uint64(n))
}

func (r *synthReader) Read(p []byte) (int, error) {
	if len(r.pend) == 0 {
		if r.done {
			return 0, io.EOF
		}
		r.fill()
	}
	n := copy(p, r.pend)
	r.pend = r.pend[n:]
	return n, nil
}

// fill regenerates the chunk buffer with as many whole lines as fit in
// ~64 KiB.
func (r *synthReader) fill() {
	const chunkSize = 64 << 10
	if r.chunk == nil {
		r.chunk = make([]byte, 0, chunkSize+32)
	}
	buf := r.chunk[:0]
	if !r.wroteHeader {
		buf = append(buf, 'n', ' ')
		buf = strconv.AppendInt(buf, int64(r.n), 10)
		buf = append(buf, '\n')
		r.wroteHeader = true
	}
	tree := r.n - 1
	if tree < 0 {
		tree = 0
	}
	total := tree + r.extra
	for len(buf) < chunkSize {
		if r.i >= total || r.n < 2 {
			r.done = true
			break
		}
		var u, v int
		if r.i < tree {
			v = r.i + 1
			u = r.intn(v)
		} else {
			u = r.intn(r.n)
			v = r.intn(r.n)
			for u == v {
				v = r.intn(r.n)
			}
		}
		buf = strconv.AppendInt(buf, int64(u), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, '\n')
		r.i++
	}
	// pend aliases chunk; fill only runs once pend is fully drained, and
	// the loop bound guarantees append never outgrows the chunk capacity.
	r.chunk = buf
	r.pend = buf
}
