package graph

import (
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 0)
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := triangle(t)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("triangle: n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("deg(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("negative edge accepted")
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 0)
	b.MustAddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1 after dedup", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("degrees wrong after dedup")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	for _, w := range []int{5, 1, 3, 2, 4} {
		b.MustAddEdge(0, w)
	}
	g := b.Build()
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbors not sorted: %v", nbrs)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 || g.MinDegree() != 0 {
		t.Fatal("empty graph stats wrong")
	}
	if g.AvgDegree() != 0 {
		t.Fatal("empty graph avg degree")
	}
	reg, d := g.IsRegular()
	if !reg || d != 0 {
		t.Fatal("empty graph regularity")
	}
}

func TestDegreeStats(t *testing.T) {
	b := NewBuilder(4) // star K_{1,3}
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(0, 3)
	g := b.Build()
	if g.MaxDegree() != 3 || g.MinDegree() != 1 {
		t.Fatalf("max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	if g.AvgDegree() != 1.5 {
		t.Fatalf("avg = %g, want 1.5", g.AvgDegree())
	}
	if reg, _ := g.IsRegular(); reg {
		t.Fatal("star reported regular")
	}
	if reg, d := triangle(t).IsRegular(); !reg || d != 2 {
		t.Fatal("triangle not 2-regular")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	want := [][2]int{{0, 1}, {0, 4}, {1, 2}, {2, 3}, {3, 4}}
	for _, e := range want {
		b.MustAddEdge(e[1], e[0]) // insert reversed to test normalization
	}
	g := b.Build()
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHasEdgeBinarySearch(t *testing.T) {
	// High-degree vertex to exercise the search path.
	const n = 200
	b := NewBuilder(n)
	for v := 1; v < n; v += 2 {
		b.MustAddEdge(0, v)
	}
	g := b.Build()
	for v := 1; v < n; v++ {
		want := v%2 == 1
		if g.HasEdge(0, v) != want {
			t.Fatalf("HasEdge(0,%d) = %v, want %v", v, !want, want)
		}
		if g.HasEdge(v, 0) != want {
			t.Fatalf("HasEdge(%d,0) = %v, want %v", v, !want, want)
		}
	}
}

// Property: a graph rebuilt from its own edge list is identical.
func TestQuickRebuildRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 40
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		b2 := NewBuilder(n)
		for _, e := range g.Edges() {
			b2.MustAddEdge(e[0], e[1])
		}
		g2 := b2.Build()
		if g.M() != g2.M() {
			return false
		}
		for v := 0; v < n; v++ {
			a, bb := g.Neighbors(v), g2.Neighbors(v)
			if len(a) != len(bb) {
				return false
			}
			for i := range a {
				if a[i] != bb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: handshake lemma — sum of degrees equals 2m.
func TestQuickHandshake(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 30
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortInt32LargeList(t *testing.T) {
	// Exercise the merge-sort path (len > 32).
	const n = 100
	b := NewBuilder(n)
	for v := n - 1; v >= 1; v-- {
		b.MustAddEdge(0, v)
	}
	g := b.Build()
	nbrs := g.Neighbors(0)
	if len(nbrs) != n-1 {
		t.Fatalf("degree = %d", len(nbrs))
	}
	for i := range nbrs {
		if int(nbrs[i]) != i+1 {
			t.Fatalf("sorted order broken at %d: %v", i, nbrs[:i+2])
		}
	}
}
