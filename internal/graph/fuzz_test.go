package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks that the parser never panics and that every
// successfully parsed graph round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# comment\nn 5\n0 4\n")
	f.Add("n 0\n")
	f.Add("garbage")
	f.Add("n 2\n0 1\n0 1\n1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip re-read failed: %v", err)
		}
		if !Equal(g, g2) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadBipartiteEdgeList mirrors FuzzReadEdgeList for the bipartite
// format.
func FuzzReadBipartiteEdgeList(f *testing.F) {
	f.Add("bipartite 2 3\n0 0\n1 2\n")
	f.Add("bipartite 0 0\n")
	f.Add("bipartite 1 1\n0 0\n0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		b, err := ReadBipartiteEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBipartiteEdgeList(&buf, b); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		b2, err := ReadBipartiteEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if b.NS() != b2.NS() || b.NN() != b2.NN() || b.M() != b2.M() {
			t.Fatal("round trip changed dimensions")
		}
	})
}

// FuzzBuilder checks the builder's CSR construction on arbitrary edge
// dumps: degrees must sum to 2m, adjacency must be sorted and mutual.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 3, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 16
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		degSum := 0
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			degSum += len(nbrs)
			for i := range nbrs {
				if i > 0 && nbrs[i-1] >= nbrs[i] {
					t.Fatal("adjacency not strictly sorted")
				}
				if !g.HasEdge(int(nbrs[i]), v) {
					t.Fatal("adjacency not mutual")
				}
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("handshake violated: %d != %d", degSum, 2*g.M())
		}
	})
}
