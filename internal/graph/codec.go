package graph

import (
	"encoding/binary"
	"fmt"
)

// binaryMagic tags the pinned v1 binary CSR encoding. The durable
// content-addressed store writes one file per graph in this format; the
// magic (with its version digit) is the only compatibility switch, so a
// future v2 encoding can coexist without ambiguity.
const binaryMagic = "WEXPCSR1"

// MarshalBinary encodes the graph in the pinned v1 binary CSR layout:
//
//	bytes 0..7   magic "WEXPCSR1"
//	bytes 8..11  n           (uint32 LE)
//	bytes 12..15 len(adj)    (uint32 LE, = 2m)
//	then         offsets     ((n+1) × uint32 LE)
//	then         adj         (len(adj) × uint32 LE)
//
// The encoding is a pure function of the canonical CSR form — the same
// arrays Digest hashes — so for a given graph the bytes are identical
// across processes, platforms, and releases (pinned by a golden test).
// MarshalBinary never fails; the error return satisfies
// encoding.BinaryMarshaler.
func (g *Graph) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 16+4*(len(g.offsets)+len(g.adj)))
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(g.adj)))
	for _, o := range g.offsets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o))
	}
	for _, w := range g.adj {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w))
	}
	return buf, nil
}

// UnmarshalBinary decodes the MarshalBinary v1 format, validating the
// structural invariants of the CSR form (monotone offsets, in-range
// neighbors, exact length). It does not verify content identity — callers
// that need tamper detection recompute Digest on the decoded graph and
// compare, which subsumes any embedded checksum.
func UnmarshalBinary(data []byte) (*Graph, error) {
	if len(data) < 16 || string(data[:8]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary header (want magic %q)", binaryMagic)
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	arcs := int(binary.LittleEndian.Uint32(data[12:16]))
	if arcs%2 != 0 {
		return nil, fmt.Errorf("graph: odd arc count %d", arcs)
	}
	want := 16 + 4*(n+1+arcs)
	if n < 0 || arcs < 0 || len(data) != want {
		return nil, fmt.Errorf("graph: binary length %d, want %d for n=%d arcs=%d", len(data), want, n, arcs)
	}
	offsets := make([]int32, n+1)
	p := 16
	for i := range offsets {
		offsets[i] = int32(binary.LittleEndian.Uint32(data[p:]))
		p += 4
	}
	if offsets[0] != 0 || int(offsets[n]) != arcs {
		return nil, fmt.Errorf("graph: offsets span [%d,%d], want [0,%d]", offsets[0], offsets[n], arcs)
	}
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at vertex %d", i)
		}
	}
	adj := make([]int32, arcs)
	for i := range adj {
		w := binary.LittleEndian.Uint32(data[p:])
		if int(w) >= n {
			return nil, fmt.Errorf("graph: neighbor %d out of range [0,%d)", w, n)
		}
		adj[i] = int32(w)
		p += 4
	}
	return &Graph{n: n, m: arcs / 2, offsets: offsets, adj: adj}, nil
}
