package graph

import (
	"testing"
	"testing/quick"
)

// smallBip: S = {0,1}, N = {0,1,2}; edges 0-0, 0-1, 1-1, 1-2.
func smallBip(t *testing.T) *Bipartite {
	t.Helper()
	bb := NewBipartiteBuilder(2, 3)
	bb.MustAddEdge(0, 0)
	bb.MustAddEdge(0, 1)
	bb.MustAddEdge(1, 1)
	bb.MustAddEdge(1, 2)
	return bb.Build()
}

func TestBipartiteBasic(t *testing.T) {
	b := smallBip(t)
	if b.NS() != 2 || b.NN() != 3 || b.M() != 4 {
		t.Fatalf("dims: s=%d n=%d m=%d", b.NS(), b.NN(), b.M())
	}
	if b.DegS(0) != 2 || b.DegS(1) != 2 {
		t.Fatal("S degrees wrong")
	}
	if b.DegN(0) != 1 || b.DegN(1) != 2 || b.DegN(2) != 1 {
		t.Fatal("N degrees wrong")
	}
	if b.MaxDegS() != 2 || b.MaxDegN() != 2 {
		t.Fatal("max degrees wrong")
	}
	if b.AvgDegS() != 2 {
		t.Fatalf("δS = %g", b.AvgDegS())
	}
	if got := b.AvgDegN(); got != 4.0/3 {
		t.Fatalf("δN = %g", got)
	}
	if b.Expansion() != 1.5 {
		t.Fatalf("expansion = %g", b.Expansion())
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBipartiteDuplicateMerge(t *testing.T) {
	bb := NewBipartiteBuilder(1, 1)
	bb.MustAddEdge(0, 0)
	bb.MustAddEdge(0, 0)
	b := bb.Build()
	if b.M() != 1 {
		t.Fatalf("m = %d after dedup", b.M())
	}
}

func TestBipartiteOutOfRange(t *testing.T) {
	bb := NewBipartiteBuilder(2, 2)
	if err := bb.AddEdge(2, 0); err == nil {
		t.Fatal("S out of range accepted")
	}
	if err := bb.AddEdge(0, 2); err == nil {
		t.Fatal("N out of range accepted")
	}
}

func TestValidateIsolated(t *testing.T) {
	bb := NewBipartiteBuilder(2, 2)
	bb.MustAddEdge(0, 0)
	b := bb.Build()
	if err := b.Validate(); err == nil {
		t.Fatal("isolated vertices not detected")
	}
}

func TestUniqueCover(t *testing.T) {
	b := smallBip(t)
	// S' = {0}: covers N0 uniquely, N1 uniquely → 2.
	if got := b.UniqueCoverSet([]int{0}, nil); got != 2 {
		t.Fatalf("unique({0}) = %d, want 2", got)
	}
	// S' = {0,1}: N1 covered twice → unique = {N0, N2} = 2.
	if got := b.UniqueCoverSet([]int{0, 1}, nil); got != 2 {
		t.Fatalf("unique({0,1}) = %d, want 2", got)
	}
	// Mask-based variant agrees.
	inS := func(u int) bool { return true }
	if got := b.UniqueCover(inS, nil); got != 2 {
		t.Fatalf("UniqueCover = %d, want 2", got)
	}
	cover := make([]int8, 3)
	b.UniqueCover(inS, cover)
	if cover[0] != 1 || cover[1] != 2 || cover[2] != 1 {
		t.Fatalf("cover = %v", cover)
	}
}

func TestCoverSet(t *testing.T) {
	b := smallBip(t)
	if got := b.CoverSet([]int{0}, nil); got != 2 {
		t.Fatalf("cover({0}) = %d", got)
	}
	if got := b.CoverSet([]int{0, 1}, nil); got != 3 {
		t.Fatalf("cover({0,1}) = %d", got)
	}
	if got := b.CoverSet(nil, nil); got != 0 {
		t.Fatalf("cover(∅) = %d", got)
	}
}

func TestUniqueCoverScratchReuse(t *testing.T) {
	b := smallBip(t)
	scratch := make([]int8, b.NN())
	a := b.UniqueCoverSet([]int{0, 1}, scratch)
	bv := b.UniqueCoverSet([]int{0, 1}, scratch)
	if a != bv {
		t.Fatalf("scratch reuse changed result: %d vs %d", a, bv)
	}
}

func TestInducedBipartite(t *testing.T) {
	// Path 0-1-2-3; S = {1,2} → N = {0,3}, plus internal edge 1-2 dropped.
	g := pathGraph(4)
	b, nVerts := InducedBipartite(g, []int{1, 2})
	if b.NS() != 2 || b.NN() != 2 {
		t.Fatalf("dims s=%d n=%d", b.NS(), b.NN())
	}
	if b.M() != 2 {
		t.Fatalf("m = %d, want 2 (internal edge dropped)", b.M())
	}
	// nVerts must be exactly {0, 3}.
	seen := map[int]bool{}
	for _, v := range nVerts {
		seen[v] = true
	}
	if !seen[0] || !seen[3] || len(nVerts) != 2 {
		t.Fatalf("nVerts = %v", nVerts)
	}
}

func TestInducedBipartiteNoExternal(t *testing.T) {
	// Whole triangle as S: no external neighbors.
	b3 := NewBuilder(3)
	b3.MustAddEdge(0, 1)
	b3.MustAddEdge(1, 2)
	b3.MustAddEdge(2, 0)
	g := b3.Build()
	b, nVerts := InducedBipartite(g, []int{0, 1, 2})
	if b.NN() != 0 || len(nVerts) != 0 || b.M() != 0 {
		t.Fatal("expected empty N side")
	}
}

// Property: |Γ¹_S(S')| ≤ |Γ_S(S')| ≤ Σ deg(u) for any subset.
func TestQuickCoverInequalities(t *testing.T) {
	f := func(edges []uint16, pick []bool) bool {
		const s, n = 8, 12
		bb := NewBipartiteBuilder(s, n)
		for i := 0; i+1 < len(edges); i += 2 {
			bb.MustAddEdge(int(edges[i])%s, int(edges[i+1])%n)
		}
		b := bb.Build()
		var sub []int
		for u := 0; u < s && u < len(pick); u++ {
			if pick[u] {
				sub = append(sub, u)
			}
		}
		uniq := b.UniqueCoverSet(sub, nil)
		cov := b.CoverSet(sub, nil)
		degSum := 0
		for _, u := range sub {
			degSum += b.DegS(u)
		}
		return uniq <= cov && cov <= degSum && uniq >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the two CSR directions agree — edge (u,v) seen from S iff seen
// from N.
func TestQuickCSRSymmetry(t *testing.T) {
	f := func(edges []uint16) bool {
		const s, n = 9, 7
		bb := NewBipartiteBuilder(s, n)
		for i := 0; i+1 < len(edges); i += 2 {
			bb.MustAddEdge(int(edges[i])%s, int(edges[i+1])%n)
		}
		b := bb.Build()
		fromS := map[[2]int]bool{}
		for u := 0; u < s; u++ {
			for _, v := range b.NeighborsOfS(u) {
				fromS[[2]int{u, int(v)}] = true
			}
		}
		cnt := 0
		for v := 0; v < n; v++ {
			for _, u := range b.NeighborsOfN(v) {
				if !fromS[[2]int{int(u), v}] {
					return false
				}
				cnt++
			}
		}
		return cnt == len(fromS) && cnt == b.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
