package graph

import "fmt"

// InducedSubgraph returns the subgraph induced by the given vertices
// (dense relabeling in input order) and the mapping from new ids to old.
// Duplicate vertices in the input are rejected.
func InducedSubgraph(g *Graph, verts []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d", v)
		}
		idx[v] = i
	}
	b := NewBuilder(len(verts))
	for i, v := range verts {
		for _, w := range g.Neighbors(v) {
			if j, ok := idx[int(w)]; ok && j > i {
				b.MustAddEdge(i, j)
			}
		}
	}
	mapping := append([]int(nil), verts...)
	return b.Build(), mapping, nil
}

// DisjointUnion returns the disjoint union of g and h: h's vertices are
// renumbered to start at g.N().
func DisjointUnion(g, h *Graph) *Graph {
	b := NewBuilder(g.N() + h.N())
	for _, e := range g.Edges() {
		b.MustAddEdge(e[0], e[1])
	}
	off := g.N()
	for _, e := range h.Edges() {
		b.MustAddEdge(e[0]+off, e[1]+off)
	}
	return b.Build()
}

// Complement returns the complement graph: {u,v} is an edge iff it is not
// an edge of g (no self-loops). Quadratic; intended for small graphs.
func Complement(g *Graph) *Graph {
	n := g.N()
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		k := 0
		for v := u + 1; v < n; v++ {
			for k < len(nbrs) && int(nbrs[k]) < v {
				k++
			}
			if k < len(nbrs) && int(nbrs[k]) == v {
				continue
			}
			b.MustAddEdge(u, v)
		}
	}
	return b.Build()
}

// AddVertexConnected returns a copy of g with one extra vertex (id g.N())
// adjacent to the given attachment points — the "plug a source onto the
// graph" primitive used by C⁺-style constructions.
func AddVertexConnected(g *Graph, attach []int) (*Graph, error) {
	b := NewBuilder(g.N() + 1)
	for _, e := range g.Edges() {
		b.MustAddEdge(e[0], e[1])
	}
	for _, v := range attach {
		if err := b.AddEdge(g.N(), v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Equal reports whether two graphs have identical vertex counts and edge
// sets (labels included).
func Equal(g, h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := 0; v < g.N(); v++ {
		a, b := g.Neighbors(v), h.Neighbors(v)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}
