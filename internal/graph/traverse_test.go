package graph

import "testing"

func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	return b.Build()
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFS(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	dist = g.BFS(2)
	for v, want := range []int{2, 1, 0, 1, 2} {
		if dist[v] != want {
			t.Fatalf("from 2: dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	g := b.Build()
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatal("unreachable vertices should have dist -1")
	}
	if _, all := g.Eccentricity(0); all {
		t.Fatal("Eccentricity should report unreachable")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestBFSInvalidSource(t *testing.T) {
	g := pathGraph(3)
	dist := g.BFS(-1)
	for _, d := range dist {
		if d != -1 {
			t.Fatal("invalid source should yield all -1")
		}
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
		conn bool
	}{
		{pathGraph(5), 4, true},
		{pathGraph(1), 0, true},
	}
	// Cycle of 6: diameter 3.
	b := NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.MustAddEdge(v, (v+1)%6)
	}
	cases = append(cases, struct {
		g    *Graph
		want int
		conn bool
	}{b.Build(), 3, true})

	for i, tc := range cases {
		d, conn := tc.g.Diameter()
		if d != tc.want || conn != tc.conn {
			t.Fatalf("case %d: diameter=%d conn=%v, want %d %v", i, d, conn, tc.want, tc.conn)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(3, 4)
	g := b.Build()
	comp, k := g.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatal("3,4 component wrong")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("5 should be its own component")
	}
}

func TestConnectedTrivial(t *testing.T) {
	if !NewBuilder(0).Build().Connected() {
		t.Fatal("empty graph should be connected")
	}
	if !NewBuilder(1).Build().Connected() {
		t.Fatal("single vertex should be connected")
	}
}

func TestIsBipartition(t *testing.T) {
	// Even cycle: bipartite.
	b := NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.MustAddEdge(v, (v+1)%6)
	}
	color, ok := b.Build().IsBipartition()
	if !ok {
		t.Fatal("even cycle should be bipartite")
	}
	for v := 0; v < 6; v++ {
		if color[v] == color[(v+1)%6] {
			t.Fatal("coloring invalid")
		}
	}
	// Odd cycle: not bipartite.
	b = NewBuilder(5)
	for v := 0; v < 5; v++ {
		b.MustAddEdge(v, (v+1)%5)
	}
	if _, ok := b.Build().IsBipartition(); ok {
		t.Fatal("odd cycle should not be bipartite")
	}
}
