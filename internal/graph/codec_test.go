package graph

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// TestBinaryGolden pins the v1 binary CSR encoding byte for byte: the
// durable store's graph files must stay readable across releases, so any
// change here is a format break and needs a new magic, not an edit.
func TestBinaryGolden(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	g := b.Build()
	got, err := g.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	const golden = "5745585043535231" + // magic "WEXPCSR1"
		"03000000" + "04000000" + // n=3, arcs=4
		"00000000010000000300000004000000" + // offsets 0,1,3,4
		"01000000000000000200000001000000" // adj 1,0,2,1
	want, _ := hex.DecodeString(golden)
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding drifted from the pinned v1 layout:\n got %x\nwant %x", got, want)
	}
}

// TestBinaryRoundTrip checks encode→decode identity (digest-level) across
// a spread of shapes, including the empty and edgeless graphs.
func TestBinaryRoundTrip(t *testing.T) {
	graphs := []*Graph{
		NewBuilder(0).Build(),
		NewBuilder(5).Build(),
		func() *Graph {
			b := NewBuilder(6)
			for u := 0; u < 6; u++ {
				for v := u + 1; v < 6; v++ {
					b.MustAddEdge(u, v)
				}
			}
			return b.Build()
		}(),
		func() *Graph {
			b := NewBuilder(70) // multiword-regime size
			for v := 1; v < 70; v++ {
				b.MustAddEdge(v-1, v)
			}
			b.MustAddEdge(0, 69)
			return b.Build()
		}(),
	}
	for _, g := range graphs {
		data, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary(%v): %v", g, err)
		}
		back, err := UnmarshalBinary(data)
		if err != nil {
			t.Fatalf("UnmarshalBinary(%v): %v", g, err)
		}
		if Digest(back) != Digest(g) {
			t.Fatalf("round trip changed digest for %v", g)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed shape: %v → %v", g, back)
		}
	}
}

// TestBinaryDecodeRejects feeds structural corruptions to the decoder;
// every one must come back a clean error, never a panic or a bad graph.
func TestBinaryDecodeRejects(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	good, _ := b.Build().MarshalBinary()

	cases := map[string][]byte{
		"empty":        {},
		"short":        good[:10],
		"bad magic":    append([]byte("WEXPCSR9"), good[8:]...),
		"truncated":    good[:len(good)-4],
		"trailing":     append(append([]byte{}, good...), 0, 0, 0, 0),
		"neighbor oob": func() []byte { c := append([]byte{}, good...); c[len(c)-4] = 0xEE; return c }(),
		"offsets skew": func() []byte { c := append([]byte{}, good...); c[16] = 9; return c }(),
	}
	for name, data := range cases {
		if g, err := UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decoded %v, want error", name, g)
		}
	}
}
