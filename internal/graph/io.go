package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList writes the graph in a plain text format:
//
//	# comment lines start with '#'
//	n <vertex-count>
//	<u> <v>          (one undirected edge per line, u < v)
//
// The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and '#'
// comments are ignored; the "n" header must precede any edge.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListOptions(r, EdgeListOptions{})
}

// EdgeListOptions relaxes ReadEdgeList toward real-world exports (SNAP and
// friends). The zero value is the strict WriteEdgeList format.
type EdgeListOptions struct {
	// OneBased treats vertex ids as 1-based, as many published edge lists
	// are; id 0 becomes an error.
	OneBased bool
	// InferN accepts headerless input: when no "n" line appears before the
	// edges, the vertex count is inferred as the maximum id + 1 (after the
	// OneBased shift). SNAP exports carry counts only in '# Nodes: …'
	// comments, which are skipped like any comment. A header, if present,
	// still wins and still rejects out-of-range ids.
	InferN bool
}

// ReadEdgeListOptions parses an edge list under the given options. '#'
// comments, blank lines, and arbitrary whitespace runs (spaces or tabs)
// between the two endpoint ids are accepted in every mode; duplicate edges
// — e.g. a directed export listing both (u,v) and (v,u) — collapse to one
// undirected edge.
//
// Each endpoint field must be a strict base-10 integer (strconv.Atoi
// semantics): trailing junk like "1 2x" is rejected rather than silently
// parsed as (1,2). The implementation is StreamEdgeList, which builds the
// CSR graph in O(n + m) words without buffering edges; errors carry the
// scanner's line number and byte offset.
func ReadEdgeListOptions(r io.Reader, opt EdgeListOptions) (*Graph, error) {
	return StreamEdgeList(r, opt)
}

// WriteBipartiteEdgeList writes a bipartite graph as:
//
//	bipartite <|S|> <|N|>
//	<u> <v>          (u ∈ S, v ∈ N)
func WriteBipartiteEdgeList(w io.Writer, b *Bipartite) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "bipartite %d %d\n", b.NS(), b.NN()); err != nil {
		return err
	}
	for u := 0; u < b.NS(); u++ {
		for _, v := range b.NeighborsOfS(u) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBipartiteEdgeList parses the WriteBipartiteEdgeList format.
func ReadBipartiteEdgeList(r io.Reader) (*Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var bb *BipartiteBuilder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "bipartite":
			if bb != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed header %q", line, text)
			}
			var s, n int
			if _, err := fmt.Sscanf(text, "bipartite %d %d", &s, &n); err != nil || s < 0 || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad header %q", line, text)
			}
			bb = NewBipartiteBuilder(s, n)
		default:
			if bb == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			var u, v int
			if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if err := bb.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if bb == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	return bb.Build(), nil
}
