package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList writes the graph in a plain text format:
//
//	# comment lines start with '#'
//	n <vertex-count>
//	<u> <v>          (one undirected edge per line, u < v)
//
// The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and '#'
// comments are ignored; the "n" header must precede any edge.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListOptions(r, EdgeListOptions{})
}

// EdgeListOptions relaxes ReadEdgeList toward real-world exports (SNAP and
// friends). The zero value is the strict WriteEdgeList format.
type EdgeListOptions struct {
	// OneBased treats vertex ids as 1-based, as many published edge lists
	// are; id 0 becomes an error.
	OneBased bool
	// InferN accepts headerless input: when no "n" line appears before the
	// edges, the vertex count is inferred as the maximum id + 1 (after the
	// OneBased shift). SNAP exports carry counts only in '# Nodes: …'
	// comments, which are skipped like any comment. A header, if present,
	// still wins and still rejects out-of-range ids.
	InferN bool
}

// ReadEdgeListOptions parses an edge list under the given options. '#'
// comments, blank lines, and arbitrary whitespace runs (spaces or tabs)
// between the two endpoint ids are accepted in every mode; duplicate edges
// — e.g. a directed export listing both (u,v) and (v,u) — collapse to one
// undirected edge.
func ReadEdgeListOptions(r io.Reader, opt EdgeListOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	headerN := -1
	sawHeader := false
	type edge struct{ u, v, line int }
	var edges []edge
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "n":
			if sawHeader {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed header %q", line, text)
			}
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[1])
			}
			if len(edges) > 0 {
				return nil, fmt.Errorf("graph: line %d: header after edges", line)
			}
			headerN, sawHeader = n, true
		default:
			if !sawHeader && !opt.InferN {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed edge %q", line, text)
			}
			var u, v int
			if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if opt.OneBased {
				if u < 1 || v < 1 {
					return nil, fmt.Errorf("graph: line %d: vertex id < 1 in 1-based input: %q", line, text)
				}
				u, v = u-1, v-1
			}
			if u > maxID {
				maxID = u
			}
			if v > maxID {
				maxID = v
			}
			edges = append(edges, edge{u, v, line})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := headerN
	if !sawHeader {
		if !opt.InferN {
			return nil, fmt.Errorf("graph: missing header")
		}
		if maxID < 0 {
			return nil, fmt.Errorf("graph: empty input (no header, no edges)")
		}
		n = maxID + 1
	}
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", e.line, err)
		}
	}
	return b.Build(), nil
}

// WriteBipartiteEdgeList writes a bipartite graph as:
//
//	bipartite <|S|> <|N|>
//	<u> <v>          (u ∈ S, v ∈ N)
func WriteBipartiteEdgeList(w io.Writer, b *Bipartite) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "bipartite %d %d\n", b.NS(), b.NN()); err != nil {
		return err
	}
	for u := 0; u < b.NS(); u++ {
		for _, v := range b.NeighborsOfS(u) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBipartiteEdgeList parses the WriteBipartiteEdgeList format.
func ReadBipartiteEdgeList(r io.Reader) (*Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var bb *BipartiteBuilder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "bipartite":
			if bb != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed header %q", line, text)
			}
			var s, n int
			if _, err := fmt.Sscanf(text, "bipartite %d %d", &s, &n); err != nil || s < 0 || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad header %q", line, text)
			}
			bb = NewBipartiteBuilder(s, n)
		default:
			if bb == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			var u, v int
			if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if err := bb.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if bb == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	return bb.Build(), nil
}
