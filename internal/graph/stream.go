package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Streaming edge-list ingestion.
//
// StreamEdgeList builds a CSR graph directly from a text stream in two
// passes without ever materializing a per-edge struct buffer or a map:
//
//  1. The text pass tokenizes each line with strict per-field integer
//     parsing (strconv.Atoi semantics, no trailing junk) and appends each
//     edge as a pair of int32s into fixed-size arc blocks — 8 bytes per
//     edge, allocated in 2 MiB slabs so there are no realloc-copy spikes.
//     When a header fixed n up front, degrees are counted on the fly.
//  2. The placement pass counting-sorts the arcs into an exactly sized
//     adjacency array, frees the arc blocks, then sorts and dedups each
//     row in place.
//
// Peak memory is O(n + m) words: at most 2m int32 arcs in blocks plus the
// 2m'-arc adjacency array (m' ≤ m after directed-duplicate collapse), an
// (n+1)-word offset array, an n-word cursor array, and a bounded scanner
// buffer. No intermediate structure is proportional to anything larger.

// IngestStats reports what a streaming ingestion pass consumed. Bytes
// counts input bytes as seen by the line scanner (each line plus one
// newline), Lines counts all input lines including comments and blanks,
// and Edges counts parsed edge records before duplicate collapse.
type IngestStats struct {
	Lines int64
	Edges int64
	Bytes int64
}

// arc blocks hold parsed (u, v) pairs flattened into int32 slabs. A slab
// is 1<<19 int32s = 2 MiB; full slabs are never reallocated or copied.
const arcBlockInts = 1 << 19

type arcStore struct {
	full [][]int32 // completed slabs, each exactly arcBlockInts long
	cur  []int32   // slab being filled
	n    int64     // total int32s stored (2 per edge)
}

func (a *arcStore) append2(u, v int32) {
	if len(a.cur)+2 > cap(a.cur) {
		if a.cur != nil {
			a.full = append(a.full, a.cur)
		}
		a.cur = make([]int32, 0, arcBlockInts)
	}
	a.cur = append(a.cur, u, v)
	a.n += 2
}

// each calls fn for every stored (u, v) pair in insertion order.
func (a *arcStore) each(fn func(u, v int32)) {
	for _, blk := range a.full {
		for i := 0; i < len(blk); i += 2 {
			fn(blk[i], blk[i+1])
		}
	}
	for i := 0; i < len(a.cur); i += 2 {
		fn(a.cur[i], a.cur[i+1])
	}
}

// release drops all slabs so the GC can reclaim them before the adjacency
// rows are canonicalized.
func (a *arcStore) release() {
	a.full, a.cur = nil, nil
}

// StreamEdgeList parses an edge list from r under opt and builds the CSR
// graph in O(n + m) words of memory (see the package comment above for the
// exact accounting). It accepts the same format as ReadEdgeListOptions —
// which is now a thin wrapper over this function — but never buffers the
// input: r can be a pipe, an HTTP request body, or a multi-gigabyte file.
func StreamEdgeList(r io.Reader, opt EdgeListOptions) (*Graph, error) {
	g, _, err := StreamEdgeListStats(r, opt)
	return g, err
}

// StreamEdgeListStats is StreamEdgeList returning ingestion statistics
// alongside the graph. Stats are valid even partially when an error is
// returned (they describe the input consumed up to the failure point).
func StreamEdgeListStats(r io.Reader, opt EdgeListOptions) (*Graph, IngestStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<24)

	var (
		st        IngestStats
		arcs      arcStore
		deg       []int32 // allocated once n is known; counts arcs per vertex
		headerN   = -1
		sawHeader bool
		maxID     = -1
		line      int64
		offset    int64 // byte offset of the current line start
	)
	// fail reports a parse error anchored at the offending line's first
	// byte; the per-edge line bookkeeping of the old buffered reader is
	// gone, so the scanner position is the sole source of error locations.
	fail := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		return fmt.Errorf("graph: line %d (byte offset %d): %s", line, offset, msg)
	}
	processLine := func(raw []byte) error {
		f0, f1, nf, junk := splitTwoFields(raw)
		if nf == 0 {
			return nil // blank or comment
		}
		if len(f0) == 1 && f0[0] == 'n' {
			// Header line: "n <count>".
			if sawHeader {
				return fail("duplicate header")
			}
			if nf != 2 || junk {
				return fail("malformed header %q", string(raw))
			}
			n, err := strconv.Atoi(string(f1))
			if err != nil || n < 0 {
				return fail("bad vertex count %q", string(f1))
			}
			if int64(n) > math.MaxInt32 {
				return fail("vertex count %d exceeds CSR id range", n)
			}
			if arcs.n > 0 {
				return fail("header after edges")
			}
			headerN, sawHeader = n, true
			deg = make([]int32, n+1)
			return nil
		}
		// Edge line: exactly two strictly-parsed integer fields.
		if !sawHeader && !opt.InferN {
			return fail("edge before header")
		}
		if nf != 2 || junk {
			return fail("malformed edge %q", string(raw))
		}
		u, ok1 := parseID(f0)
		v, ok2 := parseID(f1)
		if !ok1 || !ok2 {
			return fail("bad edge %q", string(raw))
		}
		if opt.OneBased {
			if u < 1 || v < 1 {
				return fail("vertex id < 1 in 1-based input: %q", string(raw))
			}
			u, v = u-1, v-1
		}
		if u < 0 || v < 0 || (sawHeader && (u >= headerN || v >= headerN)) {
			return fail("edge (%d,%d) out of range [0,%d)", u, v, headerN)
		}
		if u == v {
			return fail("self-loop at vertex %d", u)
		}
		if u >= math.MaxInt32 || v >= math.MaxInt32 {
			return fail("vertex id exceeds CSR id range in %q", string(raw))
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		arcs.append2(int32(u), int32(v))
		if deg != nil {
			// Counts live at index+1 so the prefix sum yields start offsets.
			deg[u+1]++
			deg[v+1]++
		}
		st.Edges++
		return nil
	}

	for sc.Scan() {
		raw := sc.Bytes()
		line++
		st.Lines++
		st.Bytes += int64(len(raw)) + 1
		if err := processLine(raw); err != nil {
			return nil, st, err
		}
		offset += int64(len(raw)) + 1
	}
	if err := sc.Err(); err != nil {
		return nil, st, err
	}

	n := headerN
	if !sawHeader {
		if !opt.InferN {
			return nil, st, fmt.Errorf("graph: missing header")
		}
		if maxID < 0 {
			return nil, st, fmt.Errorf("graph: empty input (no header, no edges)")
		}
		n = maxID + 1
	}
	if arcs.n > math.MaxInt32 {
		return nil, st, fmt.Errorf("graph: %d arcs exceed the int32 CSR offset range", arcs.n)
	}
	if deg == nil {
		// Headerless input: n was unknown during the text pass, so count
		// degrees now with one sweep over the arc blocks.
		deg = make([]int32, n+1)
		arcs.each(func(u, v int32) {
			deg[u+1]++
			deg[v+1]++
		})
	}

	// Counting-sort placement: prefix-sum the degree counts into offsets,
	// scatter the arcs, then free the blocks before canonicalizing rows.
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	offsets := deg // deg is consumed; reuse it as the offset array
	adj := make([]int32, arcs.n)
	cursors := make([]int32, n)
	copy(cursors, offsets[:n])
	arcs.each(func(u, v int32) {
		adj[cursors[u]] = v
		cursors[u]++
		adj[cursors[v]] = u
		cursors[v]++
	})
	arcs.release()

	out, newOff := canonicalizeAdj(n, offsets, adj)
	if len(out) < cap(out)*3/4 {
		// Heavy duplicate collapse (e.g. a fully directed export): reclaim
		// the dead capacity with one exact-size copy.
		exact := make([]int32, len(out))
		copy(exact, out)
		out = exact
	}
	return &Graph{n: n, m: len(out) / 2, offsets: newOff, adj: out}, st, nil
}

// splitTwoFields tokenizes one line into at most two whitespace-separated
// fields. It returns the two field slices, the field count (0 for blank or
// '#'-comment lines), and junk=true when a third field is present. Spaces,
// tabs, and a trailing '\r' count as separators, matching strings.Fields
// on the ASCII inputs this format allows.
func splitTwoFields(b []byte) (f0, f1 []byte, nf int, junk bool) {
	i := 0
	skip := func() {
		for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r' || b[i] == '\v' || b[i] == '\f') {
			i++
		}
	}
	field := func() []byte {
		start := i
		for i < len(b) && b[i] != ' ' && b[i] != '\t' && b[i] != '\r' && b[i] != '\v' && b[i] != '\f' {
			i++
		}
		return b[start:i]
	}
	skip()
	if i == len(b) || b[i] == '#' {
		return nil, nil, 0, false
	}
	f0 = field()
	nf = 1
	skip()
	if i < len(b) {
		f1 = field()
		nf = 2
		skip()
		if i < len(b) {
			junk = true
		}
	}
	return f0, f1, nf, junk
}

// parseID parses a strict base-10 vertex id with strconv.Atoi semantics on
// the accepted range: an optional sign followed by one or more ASCII
// digits and nothing else. It is allocation-free (no []byte→string
// conversion) and rejects anything strconv.Atoi would reject; the
// equivalence is differential-tested in stream_test.go.
func parseID(b []byte) (int, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 || len(b) > 18 { // >18 digits cannot be a CSR id
		return 0, false
	}
	v := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// canonicalizeAdj sorts each CSR row in place and drops duplicate
// neighbors, compacting the adjacency toward the front of adj. The
// returned slice aliases adj; newOff is the rebuilt offset array. Shared
// by Builder.Build and StreamEdgeListStats.
func canonicalizeAdj(n int, offsets, adj []int32) (out, newOff []int32) {
	out = adj[:0]
	newOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		lst := adj[offsets[v]:offsets[v+1]]
		sortInt32(lst)
		newOff[v] = int32(len(out))
		var prev int32 = -1
		for _, w := range lst {
			if w != prev {
				out = append(out, w)
				prev = w
			}
		}
	}
	newOff[n] = int32(len(out))
	return out, newOff
}
