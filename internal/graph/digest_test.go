package graph

import (
	"bytes"
	"testing"
)

func buildFromEdges(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestDigestInsensitiveToEdgeOrder(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}}
	g1 := buildFromEdges(t, 4, edges)
	// Reversed insertion order, flipped endpoints, and a duplicate edge all
	// canonicalize away at Build time.
	rev := [][2]int{{3, 1}, {3, 0}, {3, 2}, {2, 1}, {1, 0}, {0, 1}}
	g2 := buildFromEdges(t, 4, rev)
	if Digest(g1) != Digest(g2) {
		t.Fatal("digest differs across edge insertion orders of the same graph")
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := buildFromEdges(t, 4, [][2]int{{0, 1}, {1, 2}})
	cases := map[string]*Graph{
		"extra edge":      buildFromEdges(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		"different edge":  buildFromEdges(t, 4, [][2]int{{0, 1}, {1, 3}}),
		"extra vertex":    buildFromEdges(t, 5, [][2]int{{0, 1}, {1, 2}}),
		"relabeled":       buildFromEdges(t, 4, [][2]int{{0, 2}, {2, 1}}),
		"empty same size": buildFromEdges(t, 4, nil),
	}
	bd := Digest(base)
	for name, g := range cases {
		if Digest(g) == bd {
			t.Errorf("%s: digest collided with base graph", name)
		}
	}
}

func TestDigestStableAcrossSerialization(t *testing.T) {
	// Round-tripping through the edge-list format must preserve the digest:
	// this is the contract that lets the service dedupe uploads of graphs it
	// has previously served.
	g := buildFromEdges(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Digest(g) != Digest(g2) {
		t.Fatal("digest changed across WriteEdgeList/ReadEdgeList round trip")
	}
}

func TestDigestStringGolden(t *testing.T) {
	// Pin the v1 encoding: if this digest ever changes, the on-the-wire
	// schema changed and digestSchema must be bumped.
	g := buildFromEdges(t, 3, [][2]int{{0, 1}, {1, 2}})
	const want = "32698a540025812f19cf4b6f642da4f3bfd4db69a7fe48142fcef58ad4d5fdbc"
	if got := DigestString(g); got != want {
		t.Fatalf("DigestString = %s, want %s (v1 encoding changed?)", got, want)
	}
}
