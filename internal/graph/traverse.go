package graph

// BFS runs a breadth-first search from src and returns the distance slice,
// with -1 for unreachable vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range g.Neighbors(int(u)) {
			if dist[w] == -1 {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from src, and whether
// every vertex was reachable.
func (g *Graph) Eccentricity(src int) (int, bool) {
	dist := g.BFS(src)
	ecc, all := 0, true
	for _, d := range dist {
		if d == -1 {
			all = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, all
}

// Diameter returns the exact diameter of the graph by running a BFS from
// every vertex, and whether the graph is connected. For a disconnected
// graph it returns the maximum eccentricity within components and false.
// O(n·m); intended for the modest graph sizes of the experiment harness.
func (g *Graph) Diameter() (int, bool) {
	diam, connected := 0, true
	for v := 0; v < g.n; v++ {
		ecc, all := g.Eccentricity(v)
		if !all {
			connected = false
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, connected
}

// Connected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := 0
	for _, d := range g.BFS(0) {
		if d >= 0 {
			seen++
		}
	}
	return seen == g.n
}

// Components returns the component id of every vertex (ids are dense,
// assigned in order of discovery) and the number of components.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] == -1 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp, next
}

// IsBipartition checks two-colorability and returns a valid 0/1 coloring if
// the graph is bipartite (nil otherwise).
func (g *Graph) IsBipartition() ([]int8, bool) {
	color := make([]int8, g.n)
	for i := range color {
		color[i] = -1
	}
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			cu := color[u]
			for _, w := range g.Neighbors(int(u)) {
				switch color[w] {
				case -1:
					color[w] = 1 - cu
					queue = append(queue, w)
				case cu:
					return nil, false
				}
			}
		}
	}
	return color, true
}
