package graph

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// referenceReadEdgeList is a deliberately naive buffered implementation of
// the edge-list grammar — strings.Fields tokenization, strconv.Atoi per
// field, every edge buffered, Builder at the end. It exists only as the
// differential oracle for the streaming ingester.
func referenceReadEdgeList(r io.Reader, opt EdgeListOptions) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	headerN, sawHeader := -1, false
	type edge struct{ u, v int }
	var edges []edge
	maxID := -1
	for _, text := range strings.Split(string(data), "\n") {
		text = strings.TrimSpace(text)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if sawHeader || len(fields) != 2 || len(edges) > 0 {
				return nil, fmt.Errorf("reference: bad header %q", text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("reference: bad count %q", text)
			}
			headerN, sawHeader = n, true
			continue
		}
		if !sawHeader && !opt.InferN {
			return nil, fmt.Errorf("reference: edge before header")
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("reference: malformed edge %q", text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("reference: bad edge %q", text)
		}
		if opt.OneBased {
			if u < 1 || v < 1 {
				return nil, fmt.Errorf("reference: id < 1 in %q", text)
			}
			u, v = u-1, v-1
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, edge{u, v})
	}
	n := headerN
	if !sawHeader {
		if maxID < 0 {
			return nil, fmt.Errorf("reference: empty input")
		}
		n = maxID + 1
	}
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v); err != nil {
			return nil, fmt.Errorf("reference: %v", err)
		}
	}
	return b.Build(), nil
}

// optsFor maps a testdata file to the options it needs.
func optsFor(name string) EdgeListOptions {
	switch {
	case strings.Contains(name, "snap"):
		return EdgeListOptions{InferN: true}
	case strings.Contains(name, "onebased"):
		return EdgeListOptions{OneBased: true, InferN: true}
	default:
		return EdgeListOptions{}
	}
}

// TestStreamMatchesBufferedTestdata is the digest-equality property test:
// streaming ingestion must produce a bit-identical CSR (same SHA-256
// digest) as the buffered reference on every testdata edge list.
func TestStreamMatchesBufferedTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.edges"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata edge lists found: %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			opt := optsFor(path)
			want, err := referenceReadEdgeList(strings.NewReader(string(data)), opt)
			if err != nil {
				t.Fatalf("reference read: %v", err)
			}
			got, st, err := StreamEdgeListStats(strings.NewReader(string(data)), opt)
			if err != nil {
				t.Fatalf("streaming read: %v", err)
			}
			if DigestString(got) != DigestString(want) {
				t.Fatalf("digest mismatch: streaming %s vs buffered %s (%v vs %v)",
					DigestString(got), DigestString(want), got, want)
			}
			if !Equal(got, want) {
				t.Fatal("Equal disagrees with digest equality")
			}
			if st.Edges == 0 || st.Lines == 0 || st.Bytes == 0 {
				t.Fatalf("implausible ingest stats: %+v", st)
			}
		})
	}
}

// TestStreamMatchesBufferedSynthetic extends the digest property to
// generated inputs: random recursive trees plus extra edges at several
// scales, fed once through the streaming path and once through the
// buffered reference.
func TestStreamMatchesBufferedSynthetic(t *testing.T) {
	cases := []struct {
		n, extra int
		seed     uint64
	}{
		{2, 0, 1},
		{17, 40, 2},
		{257, 1000, 3},
		{5000, 20000, 4},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d/extra=%d", c.n, c.extra), func(t *testing.T) {
			text, err := io.ReadAll(SynthEdgeList(c.n, c.extra, c.seed))
			if err != nil {
				t.Fatal(err)
			}
			want, err := referenceReadEdgeList(strings.NewReader(string(text)), EdgeListOptions{})
			if err != nil {
				t.Fatalf("reference read: %v", err)
			}
			got, err := StreamEdgeList(strings.NewReader(string(text)), EdgeListOptions{})
			if err != nil {
				t.Fatalf("streaming read: %v", err)
			}
			if DigestString(got) != DigestString(want) {
				t.Fatalf("digest mismatch on synthetic input")
			}
			// The same parameters must regenerate the same stream.
			again, err := StreamEdgeList(SynthEdgeList(c.n, c.extra, c.seed), EdgeListOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if DigestString(again) != DigestString(got) {
				t.Fatal("SynthEdgeList is not deterministic")
			}
		})
	}
}

// TestStreamStrictTokenRejection covers the satellite fix: fmt.Sscanf used
// to parse "1 2x" as edge (1,2); every field must now be a strict integer
// in both strict and SNAP (InferN/OneBased) modes.
func TestStreamStrictTokenRejection(t *testing.T) {
	type tc struct {
		name  string
		input string
		opt   EdgeListOptions
		ok    bool
	}
	cases := []tc{
		{"trailing-junk-strict", "n 3\n1 2x\n", EdgeListOptions{}, false},
		{"trailing-junk-snap", "1 2x\n", EdgeListOptions{InferN: true}, false},
		{"trailing-junk-onebased", "1 2x\n", EdgeListOptions{OneBased: true, InferN: true}, false},
		{"leading-junk", "n 3\nx1 2\n", EdgeListOptions{}, false},
		{"hex-prefix", "n 3\n0x1 2\n", EdgeListOptions{}, false},
		{"float-id", "n 3\n1.0 2\n", EdgeListOptions{}, false},
		{"inline-comment", "n 3\n1 2 # note\n", EdgeListOptions{}, false},
		{"three-fields", "n 4\n1 2 3\n", EdgeListOptions{}, false},
		{"junk-header-count", "n 3z\n0 1\n", EdgeListOptions{}, false},
		{"header-extra-field", "n 3 4\n0 1\n", EdgeListOptions{}, false},
		{"empty-sign", "n 3\n- 2\n", EdgeListOptions{}, false},
		{"double-sign", "n 3\n--1 2\n", EdgeListOptions{}, false},
		{"plus-sign-ok", "n 3\n+1 2\n", EdgeListOptions{}, true},
		{"tabs-ok", "n 3\n1\t2\n", EdgeListOptions{}, true},
		{"crlf-ok", "n 3\r\n1 2\r\n", EdgeListOptions{}, true},
		{"snap-tabs-ok", "# Nodes: 3\n0\t1\n1\t2\n", EdgeListOptions{InferN: true}, true},
		{"whitespace-runs-ok", "n 3\n  1   2  \n", EdgeListOptions{}, true},
		{"huge-id", "n 3\n1 99999999999999999999\n", EdgeListOptions{}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := StreamEdgeList(strings.NewReader(c.input), c.opt)
			if c.ok && err != nil {
				t.Fatalf("want success, got %v", err)
			}
			if !c.ok {
				if err == nil {
					t.Fatalf("want error, parsed %v", g)
				}
				if !strings.Contains(err.Error(), "line ") {
					t.Fatalf("error lacks line anchor: %v", err)
				}
			}
		})
	}
}

// TestStreamErrorOffsets checks that parse errors report the byte offset
// of the offending line's first byte.
func TestStreamErrorOffsets(t *testing.T) {
	input := "n 4\n0 1\n1 2x\n"
	_, _, err := StreamEdgeListStats(strings.NewReader(input), EdgeListOptions{})
	if err == nil {
		t.Fatal("want error")
	}
	wantOffset := int64(len("n 4\n0 1\n"))
	want := fmt.Sprintf("line 3 (byte offset %d)", wantOffset)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

// TestStreamStats pins the stats contract on a known input.
func TestStreamStats(t *testing.T) {
	input := "# c\nn 3\n0 1\n\n1 2\n"
	g, st, err := StreamEdgeListStats(strings.NewReader(input), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got %v", g)
	}
	if st.Lines != 5 || st.Edges != 2 || st.Bytes != int64(len(input)) {
		t.Fatalf("stats %+v", st)
	}
}

// TestParseIDMatchesAtoi differential-tests the zero-copy field parser
// against strconv.Atoi on a corpus of accept and reject tokens.
func TestParseIDMatchesAtoi(t *testing.T) {
	tokens := []string{
		"0", "1", "42", "007", "123456789", "999999999999999999",
		"-1", "-0", "+5", "+", "-", "", " ", "1 ", " 1", "1x", "x1",
		"0x10", "1.5", "1e3", "--1", "+-1", "１", "٤٢",
	}
	for _, tok := range tokens {
		got, ok := parseID([]byte(tok))
		want, err := strconv.Atoi(tok)
		if ok != (err == nil) {
			t.Fatalf("parseID(%q) ok=%v, Atoi err=%v", tok, ok, err)
		}
		if ok && got != want {
			t.Fatalf("parseID(%q)=%d, Atoi=%d", tok, got, want)
		}
	}
}

// TestStreamLargeHeaderless exercises the deferred degree-count path (no
// header, n unknown until EOF) across more than one arc block.
func TestStreamLargeHeaderless(t *testing.T) {
	var sb strings.Builder
	n := 700
	for v := 1; v < n; v++ {
		for k := 0; k < 600 && k < v; k++ { // ~420k edges → >1 slab
			fmt.Fprintf(&sb, "%d %d\n", v, (v+k*37)%v)
		}
	}
	text := sb.String()
	want, err := referenceReadEdgeList(strings.NewReader(text), EdgeListOptions{InferN: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamEdgeList(strings.NewReader(text), EdgeListOptions{InferN: true})
	if err != nil {
		t.Fatal(err)
	}
	if DigestString(got) != DigestString(want) {
		t.Fatal("multi-block headerless digest mismatch")
	}
}
