// Package graph provides the undirected-graph and bipartite-graph substrate
// on which all expansion measurements, worst-case constructions, and the
// radio-network simulator operate.
//
// Graphs are immutable once built: a Builder accumulates edges and Build
// freezes them into a compressed sparse row (CSR) adjacency structure whose
// neighbor iteration is allocation-free. Vertices are dense integers
// 0..n-1. Self-loops are rejected and parallel edges are merged, matching
// the simple-graph setting of the paper.
package graph

import "fmt"

// Graph is an immutable simple undirected graph in CSR form.
type Graph struct {
	n       int
	m       int     // number of undirected edges
	offsets []int32 // len n+1
	adj     []int32 // len 2m, neighbors sorted increasing per vertex
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor slice of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, by binary search over the
// smaller adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	a := g.Neighbors(u)
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == int32(v)
}

// MaxDegree returns ∆(G), the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if dv := g.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if dv := g.Degree(v); dv < d {
			d = dv
		}
	}
	return d
}

// AvgDegree returns 2m/n, or 0 for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// IsRegular reports whether every vertex has the same degree, and returns
// that degree (0 for the empty graph).
func (g *Graph) IsRegular() (bool, int) {
	if g.n == 0 {
		return true, 0
	}
	d := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if g.Degree(v) != d {
			return false, d
		}
	}
	return true, d
}

// Edges returns all undirected edges as (u, v) pairs with u < v, in
// lexicographic order. This allocates; it is intended for I/O and tests,
// not hot loops.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d, ∆=%d)", g.n, g.m, g.MaxDegree())
}

// Builder accumulates edges for a Graph. The zero value is not usable; call
// NewBuilder.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices. It panics if n is
// negative.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// N returns the number of vertices the builder was created with.
func (b *Builder) N() int { return b.n }

// AddEdge records the undirected edge {u, v}. Self-loops are rejected with
// an error; duplicate edges are tolerated and merged at Build time.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
	return nil
}

// MustAddEdge is AddEdge that panics on error; used by generators whose
// index arithmetic guarantees validity.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Build freezes the builder into an immutable Graph, merging duplicate
// edges. The builder may be reused afterwards (its edge list is preserved).
func (b *Builder) Build() *Graph {
	n := b.n
	// Counting sort of directed arcs by source gives CSR directly.
	deg := make([]int32, n+1)
	for _, e := range b.edges {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]int32, 2*len(b.edges))
	next := make([]int32, n)
	copy(next, deg[:n])
	for _, e := range b.edges {
		adj[next[e[0]]] = e[1]
		next[e[0]]++
		adj[next[e[1]]] = e[0]
		next[e[1]]++
	}
	// Sort each adjacency list and drop duplicates in place, then copy to
	// exact size (the builder's arc array may be much larger than the
	// deduplicated result).
	out, newOff := canonicalizeAdj(n, deg, adj)
	final := make([]int32, len(out))
	copy(final, out)
	return &Graph{n: n, m: len(final) / 2, offsets: newOff, adj: final}
}

// sortInt32 sorts a small int32 slice. Insertion sort is used for short
// lists (the common case: adjacency lists of bounded-degree graphs) and a
// simple bottom-up merge otherwise.
func sortInt32(a []int32) {
	if len(a) <= 32 {
		for i := 1; i < len(a); i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && a[j] > x {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	buf := make([]int32, len(a))
	for width := 1; width < len(a); width *= 2 {
		for lo := 0; lo < len(a); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(a) {
				mid = len(a)
			}
			if hi > len(a) {
				hi = len(a)
			}
			mergeInt32(a[lo:mid], a[mid:hi], buf[lo:hi])
			copy(a[lo:hi], buf[lo:hi])
		}
	}
}

func mergeInt32(x, y, out []int32) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			out[k] = x[i]
			i++
		} else {
			out[k] = y[j]
			j++
		}
		k++
	}
	for i < len(x) {
		out[k] = x[i]
		i++
		k++
	}
	for j < len(y) {
		out[k] = y[j]
		j++
		k++
	}
}
