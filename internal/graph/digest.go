package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// digestSchema versions the canonical byte encoding Digest hashes. Bump it
// whenever the encoding changes, so digests from different schema
// generations can never collide silently.
const digestSchema = "wexp-graph-digest/v1"

// Digest returns the canonical SHA-256 digest of the graph: a hash over
// the schema tag, the vertex count, and the CSR adjacency arrays in
// little-endian binary. Because Build canonicalizes every graph (sorted
// neighbor lists, duplicates merged), two graphs built from any edge
// orderings of the same simple graph digest identically — the property the
// content-addressed graph store relies on. The digest covers labeled
// structure only; it is not an isomorphism invariant.
func Digest(g *Graph) [32]byte {
	h := sha256.New()
	h.Write([]byte(digestSchema))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.n))
	h.Write(buf[:])
	// offsets is redundant given adj lengths, but hashing it pins the exact
	// CSR layout: a future encoding change cannot collide with v1.
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint32(buf[:4], uint32(o))
		h.Write(buf[:4])
	}
	for _, w := range g.adj {
		binary.LittleEndian.PutUint32(buf[:4], uint32(w))
		h.Write(buf[:4])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// DigestString returns Digest as lowercase hex — the form used in service
// URLs and JSON responses.
func DigestString(g *Graph) string {
	d := Digest(g)
	return hex.EncodeToString(d[:])
}
