package graph

import "testing"

func completeGraph(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Build()
}

func gridGraph(r, c int) *Graph {
	b := NewBuilder(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.MustAddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				b.MustAddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

func TestDegeneracyTree(t *testing.T) {
	g := pathGraph(10)
	d, order := g.DegeneracyOrder()
	if d != 1 {
		t.Fatalf("path degeneracy = %d, want 1", d)
	}
	if len(order) != 10 {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, 10)
	for _, v := range order {
		if seen[v] {
			t.Fatal("order repeats a vertex")
		}
		seen[v] = true
	}
}

func TestDegeneracyComplete(t *testing.T) {
	g := completeGraph(6)
	d, _ := g.DegeneracyOrder()
	if d != 5 {
		t.Fatalf("K6 degeneracy = %d, want 5", d)
	}
}

func TestDegeneracyCycle(t *testing.T) {
	b := NewBuilder(8)
	for v := 0; v < 8; v++ {
		b.MustAddEdge(v, (v+1)%8)
	}
	d, _ := b.Build().DegeneracyOrder()
	if d != 2 {
		t.Fatalf("cycle degeneracy = %d, want 2", d)
	}
}

func TestDegeneracyGrid(t *testing.T) {
	d, _ := gridGraph(5, 5).DegeneracyOrder()
	if d != 2 {
		t.Fatalf("grid degeneracy = %d, want 2", d)
	}
}

func TestArboricityTree(t *testing.T) {
	lo, hi := pathGraph(20).ArboricityEstimate()
	if lo != 1 || hi != 1 {
		t.Fatalf("tree arboricity bracket [%d,%d], want [1,1]", lo, hi)
	}
}

func TestArboricityComplete(t *testing.T) {
	// η(K_n) = ⌈n/2⌉ by Nash–Williams.
	g := completeGraph(8)
	lo, hi := g.ArboricityEstimate()
	if lo != 4 {
		t.Fatalf("K8 arboricity lower = %d, want 4", lo)
	}
	if hi < lo {
		t.Fatalf("bracket inverted [%d,%d]", lo, hi)
	}
	// Degeneracy of K8 is 7, so the bracket is [4, 7].
	if hi != 7 {
		t.Fatalf("K8 degeneracy = %d, want 7", hi)
	}
}

func TestArboricityGrid(t *testing.T) {
	lo, hi := gridGraph(6, 6).ArboricityEstimate()
	if lo < 1 || hi > 2 || lo > hi {
		t.Fatalf("grid bracket [%d,%d], want within [1,2]", lo, hi)
	}
	if hi != 2 {
		t.Fatalf("grid degeneracy = %d, want 2", hi)
	}
}

func TestArboricityEmptyAndTiny(t *testing.T) {
	if lb := NewBuilder(0).Build().ArboricityLowerBound(); lb != 0 {
		t.Fatalf("empty lower = %d", lb)
	}
	if lb := NewBuilder(1).Build().ArboricityLowerBound(); lb != 0 {
		t.Fatalf("single lower = %d", lb)
	}
}

func TestPaperArboricityFloor(t *testing.T) {
	if got := PaperArboricityFloor(8, 2); got != 4 {
		t.Fatalf("min{8/2, 8·2} = %g, want 4", got)
	}
	if got := PaperArboricityFloor(8, 0.25); got != 2 {
		t.Fatalf("min{32, 2} = %g, want 2", got)
	}
	if got := PaperArboricityFloor(8, 0); got != 0 {
		t.Fatalf("zero beta: %g", got)
	}
}

func TestDegeneracyOrderValidity(t *testing.T) {
	// In the elimination order, each vertex has at most `degeneracy`
	// neighbors among later (not yet removed) vertices.
	g := gridGraph(4, 7)
	d, order := g.DegeneracyOrder()
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for i, v := range order {
		later := 0
		for _, w := range g.Neighbors(v) {
			if pos[w] > i {
				later++
			}
		}
		if later > d {
			t.Fatalf("vertex %d has %d later neighbors > degeneracy %d", v, later, d)
		}
	}
}
