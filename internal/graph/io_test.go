package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 5}} {
		b.MustAddEdge(e[0], e[1])
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed dims: %v vs %v", g2, g)
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d changed: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nn 3\n# another\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",             // missing header
		"0 1\n",        // edge before header
		"n 3\nn 4\n",   // duplicate header
		"n x\n",        // bad count
		"n 3\n0\n",     // malformed edge
		"n 3\n0 5\n",   // out of range
		"n 3\n1 1\n",   // self loop
		"n\n",          // short header
		"n 3\n0 1 2\n", // too many fields
		"n -1\n",       // negative count
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadEdgeListOptions(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		opt   EdgeListOptions
		n, m  int
		isErr bool
	}{
		{
			name: "snap-headerless",
			in:   "# Directed graph (each unordered pair once)\n# Nodes: 4 Edges: 3\n0\t1\n1\t2\n2\t3\n",
			opt:  EdgeListOptions{InferN: true},
			n:    4, m: 3,
		},
		{
			name: "snap-one-based",
			in:   "# FromNodeId\tToNodeId\n1\t2\n2\t3\n3\t1\n",
			opt:  EdgeListOptions{InferN: true, OneBased: true},
			n:    3, m: 3,
		},
		{
			name: "whitespace-runs",
			in:   "n 3\n  0   1 \n\t1\t\t2\t\n",
			opt:  EdgeListOptions{},
			n:    3, m: 2,
		},
		{
			name: "directed-both-ways-collapse",
			in:   "0 1\n1 0\n1 2\n2 1\n",
			opt:  EdgeListOptions{InferN: true},
			n:    3, m: 2,
		},
		{
			name: "header-wins-over-inference",
			in:   "n 10\n0 1\n",
			opt:  EdgeListOptions{InferN: true},
			n:    10, m: 1,
		},
		{
			name: "one-based-with-header",
			in:   "n 3\n1 2\n2 3\n",
			opt:  EdgeListOptions{OneBased: true},
			n:    3, m: 2,
		},
		{
			name: "isolated-high-id-sets-n",
			in:   "0 1\n5 6\n",
			opt:  EdgeListOptions{InferN: true},
			n:    7, m: 2,
		},
		{
			name:  "zero-id-in-one-based",
			in:    "0 1\n",
			opt:   EdgeListOptions{InferN: true, OneBased: true},
			isErr: true,
		},
		{
			name:  "headerless-without-infern",
			in:    "0 1\n",
			opt:   EdgeListOptions{},
			isErr: true,
		},
		{
			name:  "empty-with-infern",
			in:    "# only comments\n",
			opt:   EdgeListOptions{InferN: true},
			isErr: true,
		},
		{
			name:  "header-after-edges",
			in:    "0 1\nn 5\n",
			opt:   EdgeListOptions{InferN: true},
			isErr: true,
		},
		{
			name:  "self-loop-inferred",
			in:    "2 2\n",
			opt:   EdgeListOptions{InferN: true},
			isErr: true,
		},
		{
			name:  "out-of-range-vs-header",
			in:    "n 2\n1 2\n",
			opt:   EdgeListOptions{InferN: true},
			isErr: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := ReadEdgeListOptions(strings.NewReader(c.in), c.opt)
			if c.isErr {
				if err == nil {
					t.Fatalf("input %q accepted as %v", c.in, g)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != c.n || g.M() != c.m {
				t.Fatalf("got n=%d m=%d, want n=%d m=%d", g.N(), g.M(), c.n, c.m)
			}
		})
	}
}

func TestBipartiteEdgeListRoundTrip(t *testing.T) {
	bb := NewBipartiteBuilder(3, 4)
	for _, e := range [][2]int{{0, 0}, {0, 3}, {1, 1}, {2, 2}} {
		bb.MustAddEdge(e[0], e[1])
	}
	b := bb.Build()
	var buf bytes.Buffer
	if err := WriteBipartiteEdgeList(&buf, b); err != nil {
		t.Fatal(err)
	}
	b2, err := ReadBipartiteEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b2.NS() != b.NS() || b2.NN() != b.NN() || b2.M() != b.M() {
		t.Fatal("round trip changed dims")
	}
	for u := 0; u < b.NS(); u++ {
		a, c := b.NeighborsOfS(u), b2.NeighborsOfS(u)
		if len(a) != len(c) {
			t.Fatalf("degree changed at %d", u)
		}
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("neighbor changed at %d", u)
			}
		}
	}
}

func TestBipartiteReadErrors(t *testing.T) {
	cases := []string{
		"",
		"0 1\n",
		"bipartite 2 2\nbipartite 2 2\n",
		"bipartite 2\n",
		"bipartite 2 2\n0 9\n",
		"bipartite 2 2\nzz zz\n",
	}
	for _, in := range cases {
		if _, err := ReadBipartiteEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

// Property: serialization round-trips arbitrary graphs exactly.
func TestQuickIORoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 25
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if g.N() != g2.N() || g.M() != g2.M() {
			return false
		}
		e1, e2 := g.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
