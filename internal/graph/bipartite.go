package graph

import "fmt"

// Bipartite is an immutable bipartite graph G = (S, N, E) in the paper's
// framework (Section 4.1): S is the candidate transmitter side, N its
// neighborhood. Vertices of S are 0..NS()-1 and vertices of N are
// 0..NN()-1, in separate index spaces. Both directions of adjacency are
// stored in CSR form so that degree queries and unique-neighborhood
// computations are allocation-free in either direction.
type Bipartite struct {
	s, n   int
	m      int
	sOff   []int32 // len s+1, neighbors of S-vertices in N
	sAdj   []int32
	nOff   []int32 // len n+1, neighbors of N-vertices in S
	nAdj   []int32
	labels []string // optional side-S labels for diagnostics (may be nil)
}

// NS returns |S|.
func (b *Bipartite) NS() int { return b.s }

// NN returns |N|.
func (b *Bipartite) NN() int { return b.n }

// M returns the number of edges.
func (b *Bipartite) M() int { return b.m }

// DegS returns deg(u, N) for u ∈ S.
func (b *Bipartite) DegS(u int) int { return int(b.sOff[u+1] - b.sOff[u]) }

// DegN returns deg(v, S) for v ∈ N.
func (b *Bipartite) DegN(v int) int { return int(b.nOff[v+1] - b.nOff[v]) }

// NeighborsOfS returns the sorted N-side neighbors of u ∈ S. The slice
// aliases internal storage.
func (b *Bipartite) NeighborsOfS(u int) []int32 { return b.sAdj[b.sOff[u]:b.sOff[u+1]] }

// NeighborsOfN returns the sorted S-side neighbors of v ∈ N. The slice
// aliases internal storage.
func (b *Bipartite) NeighborsOfN(v int) []int32 { return b.nAdj[b.nOff[v]:b.nOff[v+1]] }

// MaxDegS returns the maximum degree on the S side.
func (b *Bipartite) MaxDegS() int {
	d := 0
	for u := 0; u < b.s; u++ {
		if du := b.DegS(u); du > d {
			d = du
		}
	}
	return d
}

// MaxDegN returns the maximum degree on the N side (∆N in Lemma 4.4).
func (b *Bipartite) MaxDegN() int {
	d := 0
	for v := 0; v < b.n; v++ {
		if dv := b.DegN(v); dv > d {
			d = dv
		}
	}
	return d
}

// AvgDegS returns δS = Σ_{u∈S} deg(u,N) / |S| (Section 4.2).
func (b *Bipartite) AvgDegS() float64 {
	if b.s == 0 {
		return 0
	}
	return float64(b.m) / float64(b.s)
}

// AvgDegN returns δN = Σ_{v∈N} deg(v,S) / |N| (Section 4.2).
func (b *Bipartite) AvgDegN() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.m) / float64(b.n)
}

// Expansion returns |N| / |S|, the bipartite expansion β of the full side S
// under the paper's framing (every vertex of N is a neighbor of S).
func (b *Bipartite) Expansion() float64 {
	if b.s == 0 {
		return 0
	}
	return float64(b.n) / float64(b.s)
}

// Validate checks the paper's standing assumption that no vertex is
// isolated (Section 4.1: "We assume that no vertex of GS is isolated").
func (b *Bipartite) Validate() error {
	for u := 0; u < b.s; u++ {
		if b.DegS(u) == 0 {
			return fmt.Errorf("bipartite: isolated S-vertex %d", u)
		}
	}
	for v := 0; v < b.n; v++ {
		if b.DegN(v) == 0 {
			return fmt.Errorf("bipartite: isolated N-vertex %d", v)
		}
	}
	return nil
}

// UniqueCover computes |Γ¹_S(S')| for the subset S' given as a boolean
// mask over S (inS[u] reports u ∈ S'). cover, if non-nil, must have length
// NN() and is filled with the per-N-vertex count of S'-neighbors capped at
// 2 (0 = uncovered, 1 = uniquely covered, 2 = collision); pass nil if only
// the count is needed.
func (b *Bipartite) UniqueCover(inS func(u int) bool, cover []int8) int {
	counts := cover
	if counts == nil {
		counts = make([]int8, b.n)
	} else {
		for i := range counts {
			counts[i] = 0
		}
	}
	for u := 0; u < b.s; u++ {
		if !inS(u) {
			continue
		}
		for _, v := range b.NeighborsOfS(u) {
			if counts[v] < 2 {
				counts[v]++
			}
		}
	}
	uniq := 0
	for _, c := range counts {
		if c == 1 {
			uniq++
		}
	}
	return uniq
}

// UniqueCoverSet computes |Γ¹_S(S')| for S' given as a slice of S-indices.
// scratch, if non-nil with length NN(), avoids the per-call allocation.
func (b *Bipartite) UniqueCoverSet(sub []int, scratch []int8) int {
	counts := scratch
	if counts == nil {
		counts = make([]int8, b.n)
	} else {
		for i := range counts {
			counts[i] = 0
		}
	}
	for _, u := range sub {
		for _, v := range b.NeighborsOfS(u) {
			if counts[v] < 2 {
				counts[v]++
			}
		}
	}
	uniq := 0
	for _, c := range counts {
		if c == 1 {
			uniq++
		}
	}
	return uniq
}

// CoverSet computes |Γ_S(S')| — the number of N-vertices with at least one
// neighbor in S' — for S' given as a slice of S-indices.
func (b *Bipartite) CoverSet(sub []int, scratch []int8) int {
	counts := scratch
	if counts == nil {
		counts = make([]int8, b.n)
	} else {
		for i := range counts {
			counts[i] = 0
		}
	}
	covered := 0
	for _, u := range sub {
		for _, v := range b.NeighborsOfS(u) {
			if counts[v] == 0 {
				counts[v] = 1
				covered++
			}
		}
	}
	return covered
}

// BipartiteBuilder accumulates edges for a Bipartite graph.
type BipartiteBuilder struct {
	s, n  int
	edges [][2]int32
}

// NewBipartiteBuilder returns a builder for sides of size s and n.
func NewBipartiteBuilder(s, n int) *BipartiteBuilder {
	if s < 0 || n < 0 {
		panic("graph: negative side size")
	}
	return &BipartiteBuilder{s: s, n: n}
}

// AddEdge records the edge (u ∈ S, v ∈ N). Duplicates are merged at Build.
func (bb *BipartiteBuilder) AddEdge(u, v int) error {
	if u < 0 || u >= bb.s {
		return fmt.Errorf("bipartite: S index %d out of range [0,%d)", u, bb.s)
	}
	if v < 0 || v >= bb.n {
		return fmt.Errorf("bipartite: N index %d out of range [0,%d)", v, bb.n)
	}
	bb.edges = append(bb.edges, [2]int32{int32(u), int32(v)})
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (bb *BipartiteBuilder) MustAddEdge(u, v int) {
	if err := bb.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Build freezes the builder into an immutable Bipartite, merging duplicate
// edges.
func (bb *BipartiteBuilder) Build() *Bipartite {
	sOff, sAdj := csrSide(bb.s, bb.edges, 0, 1)
	nOff, nAdj := csrSide(bb.n, bb.edges, 1, 0)
	return &Bipartite{
		s: bb.s, n: bb.n, m: len(sAdj),
		sOff: sOff, sAdj: sAdj, nOff: nOff, nAdj: nAdj,
	}
}

// csrSide builds one direction of the CSR with duplicate merging.
func csrSide(n int, edges [][2]int32, from, to int) ([]int32, []int32) {
	cnt := make([]int32, n+1)
	for _, e := range edges {
		cnt[e[from]+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	adj := make([]int32, len(edges))
	next := make([]int32, n)
	copy(next, cnt[:n])
	for _, e := range edges {
		adj[next[e[from]]] = e[to]
		next[e[from]]++
	}
	out := adj[:0]
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		lst := adj[cnt[v]:cnt[v+1]]
		sortInt32(lst)
		off[v] = int32(len(out))
		var prev int32 = -1
		for _, w := range lst {
			if w != prev {
				out = append(out, w)
				prev = w
			}
		}
	}
	off[n] = int32(len(out))
	final := make([]int32, len(out))
	copy(final, out)
	return off, final
}

// InducedBipartite extracts the paper's Section 4.1 framework graph
// GS = (S, Γ⁻(S), E(S, Γ⁻(S))) from g: the bipartite graph of all edges
// between the vertex set S (given as g-vertex ids) and its external
// neighborhood. Edges internal to S or internal to Γ⁻(S) are dropped —
// "ignoring these edges has no effect whatsoever on the expansion bounds".
// It returns the bipartite graph and the g-vertex ids of the N side in
// index order.
func InducedBipartite(g *Graph, S []int) (*Bipartite, []int) {
	inS := make([]bool, g.N())
	for _, v := range S {
		inS[v] = true
	}
	nIndex := make(map[int]int)
	var nVerts []int
	for _, u := range S {
		for _, w := range g.Neighbors(u) {
			if inS[w] {
				continue
			}
			if _, ok := nIndex[int(w)]; !ok {
				nIndex[int(w)] = len(nVerts)
				nVerts = append(nVerts, int(w))
			}
		}
	}
	bb := NewBipartiteBuilder(len(S), len(nVerts))
	for i, u := range S {
		for _, w := range g.Neighbors(u) {
			if inS[w] {
				continue
			}
			bb.MustAddEdge(i, nIndex[int(w)])
		}
	}
	return bb.Build(), nVerts
}
