package graph

import "math"

// DegeneracyOrder computes the degeneracy (k-core number) of the graph and
// a vertex elimination order realizing it, via the standard linear-time
// bucket peeling algorithm. The degeneracy d satisfies
// arboricity ≤ d ≤ 2·arboricity − 1, so it yields the constant-factor
// arboricity estimate used for large graphs.
func (g *Graph) DegeneracyOrder() (degeneracy int, order []int) {
	n := g.n
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue keyed by current degree.
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		for cur > 0 && len(buckets[cur-1]) > 0 {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		bkt := buckets[cur]
		v := bkt[len(bkt)-1]
		buckets[cur] = bkt[:len(bkt)-1]
		if removed[v] || deg[v] != cur {
			// Stale entry: v was lazily re-bucketed at a lower degree.
			continue
		}
		removed[v] = true
		order = append(order, int(v))
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.Neighbors(int(v)) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
			}
		}
	}
	return degeneracy, order
}

// ArboricityLowerBound returns the best ⌈|E(U)|/(|U|−1)⌉ witnessed by the
// whole graph and every suffix of the degeneracy order (each suffix is an
// induced subgraph that tends to be dense). Combined with
// ArboricityUpperBound this brackets η(G) tightly in practice.
func (g *Graph) ArboricityLowerBound() int {
	if g.n < 2 {
		return 0
	}
	best := ceilDiv(g.m, g.n-1)
	_, order := g.DegeneracyOrder()
	inSuffix := make([]bool, g.n)
	edges := 0
	// Walk the elimination order backwards, growing the suffix one vertex at
	// a time and maintaining the induced edge count incrementally.
	for i := g.n - 1; i >= 0; i-- {
		v := order[i]
		for _, w := range g.Neighbors(v) {
			if inSuffix[w] {
				edges++
			}
		}
		inSuffix[v] = true
		size := g.n - i
		if size >= 2 {
			if lb := ceilDiv(edges, size-1); lb > best {
				best = lb
			}
		}
	}
	return best
}

// ArboricityUpperBound returns the degeneracy, which upper-bounds the
// arboricity within a factor of 2 and is exact on many structured families
// (trees: 1, grids: 2, ...). Specifically η ≤ degeneracy always fails in
// general — the true relation is η ≤ degeneracy ≤ 2η−1 — so the returned
// value is an upper bound on η only up to that factor; callers needing a
// certified upper bound on η should use it as degeneracy and apply
// Nash–Williams reasoning externally.
func (g *Graph) ArboricityUpperBound() int {
	d, _ := g.DegeneracyOrder()
	return d
}

// ArboricityEstimate returns (lower, upper) where lower ≤ η(G) ≤ upper:
// lower from Nash–Williams witnesses, upper = degeneracy (η ≤ degeneracy
// holds since a d-degenerate graph decomposes into d forests via the
// elimination order: each vertex keeps ≤ d back-edges, one per forest).
func (g *Graph) ArboricityEstimate() (lower, upper int) {
	lower = g.ArboricityLowerBound()
	upper = g.ArboricityUpperBound()
	if upper < lower {
		// Degeneracy can be smaller than a Nash–Williams witness only by
		// rounding artifacts on tiny graphs; the witness is always valid,
		// and η ≤ degeneracy holds, so clamp for a consistent bracket.
		upper = lower
	}
	return lower, upper
}

// PaperArboricityFloor returns min{∆/β, ∆·β} — the quantity the paper notes
// lower-bounds the arboricity of any (α,β)-expander with maximum degree ∆
// (Section 2.1). Callers compare it with the measured bracket.
func PaperArboricityFloor(delta int, beta float64) float64 {
	if beta <= 0 {
		return 0
	}
	return math.Min(float64(delta)/beta, float64(delta)*beta)
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
