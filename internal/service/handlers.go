package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"wexp/internal/bitset"
	"wexp/internal/expansion"
	"wexp/internal/experiments"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/runopts"
	"wexp/internal/spokesman"
	"wexp/internal/stats"
)

// maxUploadBytes bounds graph uploads.
const maxUploadBytes = 32 << 20

// httpError carries a status code through the parse/compute helpers.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// writeErr emits the canonical JSON error body.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable
	default:
		// Engine refusals (budget exceeded, infeasible parameters) are
		// client-fixable: report them as unprocessable rather than 500.
		code = http.StatusUnprocessableEntity
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON marshals v compactly — the same encoding execute caches. A
// marshal failure is a server bug and reports as 500, never as a client
// error.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeErr(w, errf(http.StatusInternalServerError, "encode response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

// serveComputed runs spec synchronously (or as a job when async is set)
// and writes the response. The X-Cache header reports hit, miss, or
// coalesced so clients and the smoke test can observe the memoization
// without /metrics.
func (s *Server) serveComputed(w http.ResponseWriter, r *http.Request, spec computeSpec, async bool) {
	if async {
		writeJSON(w, http.StatusAccepted, s.startJob(spec))
		return
	}
	body, src, err := s.execute(r.Context(), spec, nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", string(src))
	w.Write(body)
}

// --- parameter helpers -------------------------------------------------------

func qInt(q url.Values, key string, def int) (int, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, errf(http.StatusBadRequest, "bad %s=%q: want integer", key, v)
	}
	return n, nil
}

func qUint64(q url.Values, key string, def uint64) (uint64, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, errf(http.StatusBadRequest, "bad %s=%q: want unsigned integer", key, v)
	}
	return n, nil
}

func qFloat(q url.Values, key string, def float64) (float64, error) {
	v := q.Get(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, errf(http.StatusBadRequest, "bad %s=%q: want number", key, v)
	}
	return f, nil
}

func qBool(q url.Values, key string) bool {
	switch strings.ToLower(q.Get(key)) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// resolveGraph resolves the graph a request addresses: either an existing
// store entry via ?graph=<digest>, or a named family via ?family=&size=
// (registered on first use, deduped by digest thereafter).
func (s *Server) resolveGraph(q url.Values) (StoredGraph, error) {
	if d := q.Get("graph"); d != "" {
		e, ok, err := s.store.Get(d)
		if err != nil {
			// A durable entry that fails verification (corrupt or tampered
			// file) is a server-side storage fault, not a client error.
			return StoredGraph{}, errf(http.StatusInternalServerError, "graph %s: %v", d, err)
		}
		if !ok {
			return StoredGraph{}, errf(http.StatusNotFound, "unknown graph %s (upload it via POST /v1/graphs)", d)
		}
		return e, nil
	}
	if family := q.Get("family"); family != "" {
		size, err := qInt(q, "size", 0)
		if err != nil {
			return StoredGraph{}, err
		}
		if size <= 0 {
			return StoredGraph{}, errf(http.StatusBadRequest, "family=%s requires size>0", family)
		}
		e, _, err := s.store.PutFamily(family, size)
		if err != nil {
			if errors.Is(err, ErrStoreFull) {
				return StoredGraph{}, errf(http.StatusInsufficientStorage, "%v", err)
			}
			return StoredGraph{}, errf(http.StatusBadRequest, "%v", err)
		}
		return e, nil
	}
	return StoredGraph{}, errf(http.StatusBadRequest, "missing graph=<digest> or family=<name>&size=<n>")
}

// fmtFloat is the canonical float encoding used in cache keys.
func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// bitsetToInts converts a witness bitset to a sorted vertex list (nil-safe).
func bitsetToInts(set *bitset.Set) []int {
	out := []int{}
	if set != nil {
		set.ForEach(func(i int) { out = append(out, i) })
	}
	sort.Ints(out)
	return out
}

// --- graphs ------------------------------------------------------------------

// graphPutResponse is the body of POST /v1/graphs.
type graphPutResponse struct {
	Digest string   `json:"digest"`
	N      int      `json:"n"`
	M      int      `json:"m"`
	Labels []string `json:"labels,omitempty"`
	// Existed reports dedup: the graph was already stored under this
	// digest (perhaps via another family or upload).
	Existed bool `json:"existed"`
}

func (s *Server) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var (
		e       StoredGraph
		existed bool
		err     error
	)
	if family := q.Get("family"); family != "" {
		var size int
		if size, err = qInt(q, "size", 0); err != nil {
			writeErr(w, err)
			return
		}
		if size <= 0 {
			writeErr(w, errf(http.StatusBadRequest, "family=%s requires size>0", family))
			return
		}
		e, existed, err = s.store.PutFamily(family, size)
		if err != nil && !errors.Is(err, ErrStoreFull) {
			err = errf(http.StatusBadRequest, "%v", err)
		}
	} else {
		// The request body streams straight into CSR: StreamEdgeList never
		// buffers the edge list, so upload memory is O(n + m) words per
		// request regardless of body size (the byte cap below bounds
		// wire-level abuse, not parser memory).
		g, rerr := graph.StreamEdgeList(http.MaxBytesReader(w, r.Body, maxUploadBytes), graph.EdgeListOptions{})
		if rerr != nil {
			writeErr(w, errf(http.StatusBadRequest, "parse edge list: %v", rerr))
			return
		}
		e, existed, err = s.store.Put(g, "upload")
	}
	if err != nil {
		if errors.Is(err, ErrStoreFull) {
			err = errf(http.StatusInsufficientStorage, "%v", err)
		}
		writeErr(w, err)
		return
	}
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, graphPutResponse{
		Digest: e.Digest, N: e.N, M: e.M, Labels: e.Labels, Existed: existed,
	})
}

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	list := s.store.List()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(list), "graphs": list})
}

func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	e, ok, err := s.store.Get(r.PathValue("digest"))
	if err != nil {
		writeErr(w, errf(http.StatusInternalServerError, "graph %s: %v", r.PathValue("digest"), err))
		return
	}
	if !ok {
		writeErr(w, errf(http.StatusNotFound, "unknown graph %s", r.PathValue("digest")))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleGraphEdges(w http.ResponseWriter, r *http.Request) {
	e, ok, err := s.store.Get(r.PathValue("digest"))
	if err != nil {
		writeErr(w, errf(http.StatusInternalServerError, "graph %s: %v", r.PathValue("digest"), err))
		return
	}
	if !ok {
		writeErr(w, errf(http.StatusNotFound, "unknown graph %s", r.PathValue("digest")))
		return
	}
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, e.Graph()); err != nil {
		writeErr(w, errf(http.StatusInternalServerError, "serialize graph: %v", err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}

// --- expansion ---------------------------------------------------------------

// expansionResponse is the memoized document of one expansion computation
// (exact, or randomized-certified when the exact search is over budget).
// Every field is a deterministic function of the key: the branch-and-bound
// counters are bit-identical at every worker count, and the randomized
// tier runs under a fixed server-side seed with worker-invariant trials —
// so the full document, certificate included, is safe to cache alongside
// the value and witnesses.
type expansionResponse struct {
	Graph          string                `json:"graph"`
	Objective      string                `json:"objective"`
	MaxK           int                   `json:"max_k"`
	Budget         uint64                `json:"budget"`
	Value          float64               `json:"value"`
	Witness        []int                 `json:"witness"`
	InnerWitness   []int                 `json:"inner_witness,omitempty"`
	Sets           int                   `json:"sets"`
	Pruned         int64                 `json:"pruned"`
	Visited        int64                 `json:"visited"`
	SubtreesPruned int64                 `json:"subtrees_pruned"`
	Certificate    expansion.Certificate `json:"certificate"`
}

// serviceRandSeed seeds the randomized certified fallback. It is a fixed
// constant rather than a request parameter so the response body stays a
// pure function of the cache key (graph, objective, maxk, budget).
const serviceRandSeed = 0x77657870 // "wexp"

var objectives = map[string]expansion.Objective{
	"ordinary": expansion.ObjOrdinary,
	"unique":   expansion.ObjUnique,
	"wireless": expansion.ObjWireless,
	"edge":     expansion.ObjEdge,
}

func (s *Server) handleExpansion(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec, err := s.buildSpec("expansion", q)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.serveComputed(w, r, spec, qBool(q, "async"))
}

// specExpansion validates an expansion request query and builds its
// memoizable computation.
func (s *Server) specExpansion(q url.Values) (computeSpec, error) {
	e, err := s.resolveGraph(q)
	if err != nil {
		return computeSpec{}, err
	}
	objName := q.Get("obj")
	if objName == "" {
		objName = "ordinary"
	}
	obj, ok := objectives[objName]
	if !ok {
		return computeSpec{}, errf(http.StatusBadRequest, "unknown obj=%q (want ordinary|unique|wireless|edge)", objName)
	}
	alpha, err := qFloat(q, "alpha", 0.5)
	if err != nil {
		return computeSpec{}, err
	}
	maxK, err := qInt(q, "maxk", 0)
	if err != nil {
		return computeSpec{}, err
	}
	budget, err := qUint64(q, "budget", 0)
	if err != nil {
		return computeSpec{}, err
	}
	if budget == 0 {
		budget = min(expansion.DefaultBudget, s.cfg.maxBudget())
	}
	if budget > s.cfg.maxBudget() {
		return computeSpec{}, errf(http.StatusUnprocessableEntity,
			"budget %d exceeds the server cap %d", budget, s.cfg.maxBudget())
	}
	// Canonicalize the size cap: alpha resolves to the same MaxK the
	// engine would use, so alpha=0.5 and the equivalent maxk share one
	// cache entry and one response body.
	if maxK <= 0 {
		maxK = expansion.MaxSetSize(e.N, alpha)
	}
	if maxK < 1 || maxK > e.N {
		return computeSpec{}, errf(http.StatusBadRequest,
			"size cap %d out of range [1,%d] (alpha=%s)", maxK, e.N, fmtFloat(alpha))
	}

	g := e.Graph()
	digest := e.Digest
	spec := computeSpec{
		op:  "expansion",
		key: fmt.Sprintf("expansion|g=%s|obj=%s|maxk=%d|budget=%d", digest, objName, maxK, budget),
		run: func(ctx context.Context, _ func(int, int)) (any, error) {
			res, err := expansion.Exact(g, obj, expansion.Options{
				RunOpts: runopts.RunOpts{Budget: budget, Workers: s.cfg.Workers},
				MaxK:    maxK, Ctx: ctx,
			})
			if err != nil && errors.Is(err, expansion.ErrBudget) {
				// Over the exact budget: fall to the randomized certified
				// tier, which answers with an explicit failure probability
				// instead of a refusal. Deterministic under the fixed seed,
				// so the memoized body stays key-pure.
				res, err = expansion.Randomized(g, obj, expansion.RandOptions{
					RunOpts: runopts.RunOpts{Budget: budget, Workers: s.cfg.Workers, Seed: serviceRandSeed},
					MaxK:    maxK, Ctx: ctx,
				})
			}
			if err != nil {
				return nil, err
			}
			s.recordEngine(res)
			resp := expansionResponse{
				Graph: digest, Objective: objName, MaxK: maxK, Budget: budget,
				Value:          res.Value,
				Witness:        bitsetToInts(res.Witness),
				Sets:           res.Sets,
				Pruned:         res.Pruned,
				Visited:        res.Visited,
				SubtreesPruned: res.SubtreesPruned,
				Certificate:    res.Cert,
			}
			if res.InnerWitness != nil {
				resp.InnerWitness = bitsetToInts(res.InnerWitness)
			}
			return resp, nil
		},
	}
	return spec, nil
}

// --- spokesman ---------------------------------------------------------------

// spokesmanResponse reports a certified spokesman selection over the
// framework graph induced by a concrete vertex set S.
type spokesmanResponse struct {
	Graph  string `json:"graph"`
	S      []int  `json:"s"`
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
	Method string `json:"method"`
	// Unique is the certified count of uniquely covered external
	// neighbors; Unique/|S| lower-bounds the wireless expansion of S.
	Unique int   `json:"unique"`
	Subset []int `json:"subset"`
}

func (s *Server) handleSpokesman(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec, err := s.buildSpec("spokesman", q)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.serveComputed(w, r, spec, qBool(q, "async"))
}

// specSpokesman validates a spokesman request query and builds its
// memoizable computation.
func (s *Server) specSpokesman(q url.Values) (computeSpec, error) {
	e, err := s.resolveGraph(q)
	if err != nil {
		return computeSpec{}, err
	}
	set, err := parseVertexSet(q.Get("s"), e.N)
	if err != nil {
		return computeSpec{}, err
	}
	trials, err := qInt(q, "trials", 16)
	if err != nil {
		return computeSpec{}, err
	}
	if trials < 1 || trials > 100_000 {
		return computeSpec{}, errf(http.StatusBadRequest, "trials=%d out of range [1,100000]", trials)
	}
	seed, err := qUint64(q, "seed", 1)
	if err != nil {
		return computeSpec{}, err
	}

	g := e.Graph()
	digest := e.Digest
	setStr := intsToCSV(set)
	spec := computeSpec{
		op:  "spokesman",
		key: fmt.Sprintf("spokesman|g=%s|s=%s|trials=%d|seed=%d", digest, setStr, trials, seed),
		run: func(ctx context.Context, _ func(int, int)) (any, error) {
			// The portfolio is cheap relative to a request round trip; it
			// runs to completion (no chunk boundaries to observe).
			b, _ := graph.InducedBipartite(g, set)
			sel := spokesman.Best(b, trials, rng.New(seed))
			verts := make([]int, len(sel.Subset))
			for i, u := range sel.Subset {
				verts[i] = set[u]
			}
			sort.Ints(verts)
			return spokesmanResponse{
				Graph: digest, S: set, Trials: trials, Seed: seed,
				Method: sel.Method, Unique: sel.Unique, Subset: verts,
			}, nil
		},
	}
	return spec, nil
}

// parseVertexSet parses "0,3,7" into a sorted duplicate-free vertex list —
// the canonical form used in cache keys, so permutations of the same set
// share one entry.
func parseVertexSet(val string, n int) ([]int, error) {
	if val == "" {
		return nil, errf(http.StatusBadRequest, "missing s=<comma-separated vertex list>")
	}
	seen := map[int]bool{}
	var out []int
	for _, part := range strings.Split(val, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad vertex %q in s", part)
		}
		if v < 0 || v >= n {
			return nil, errf(http.StatusBadRequest, "vertex %d out of range [0,%d)", v, n)
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

func intsToCSV(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// --- broadcast ---------------------------------------------------------------

// broadcastResponse summarizes a Monte-Carlo broadcast run. Per-trial
// records are deliberately omitted to keep bodies bounded at large trial
// counts; the aggregates are deterministic functions of the key.
type broadcastResponse struct {
	Graph              string               `json:"graph"`
	Protocol           string               `json:"protocol"`
	Model              string               `json:"model"`
	Source             int                  `json:"source"`
	Trials             int                  `json:"trials"`
	Seed               uint64               `json:"seed"`
	MaxRounds          int                  `json:"max_rounds"`
	Completed          int                  `json:"completed"`
	Rounds             stats.Summary        `json:"rounds"`
	TotalCollisions    int64                `json:"total_collisions"`
	TotalTransmissions int64                `json:"total_transmissions"`
	CompletionHist     *stats.Histogram     `json:"completion_hist,omitempty"`
	InformedByRound    []radio.RoundSummary `json:"informed_by_round,omitempty"`
}

var protocols = map[string]func(r *rng.RNG) radio.Protocol{
	"flood":       func(*rng.RNG) radio.Protocol { return radio.Flood{} },
	"prob-flood":  func(r *rng.RNG) radio.Protocol { return &radio.ProbFlood{P: 0.5, R: r} },
	"round-robin": func(*rng.RNG) radio.Protocol { return radio.RoundRobin{} },
	"decay":       func(r *rng.RNG) radio.Protocol { return &radio.Decay{R: r} },
	"spokesman":   func(r *rng.RNG) radio.Protocol { return &radio.Spokesman{R: r, Trials: 4} },
}

func (s *Server) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec, err := s.buildSpec("broadcast", q)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.serveComputed(w, r, spec, qBool(q, "async"))
}

// specBroadcast validates a broadcast request query and builds its
// memoizable computation.
func (s *Server) specBroadcast(q url.Values) (computeSpec, error) {
	e, err := s.resolveGraph(q)
	if err != nil {
		return computeSpec{}, err
	}
	protoName := q.Get("protocol")
	if protoName == "" {
		protoName = "decay"
	}
	factory, ok := protocols[protoName]
	if !ok {
		return computeSpec{}, errf(http.StatusBadRequest,
			"unknown protocol=%q (want flood|prob-flood|round-robin|decay|spokesman)", protoName)
	}
	source, err := qInt(q, "source", 0)
	if err != nil {
		return computeSpec{}, err
	}
	trials, err := qInt(q, "trials", 32)
	if err != nil {
		return computeSpec{}, err
	}
	if trials < 1 || trials > s.cfg.maxTrials() {
		return computeSpec{}, errf(http.StatusBadRequest, "trials=%d out of range [1,%d]", trials, s.cfg.maxTrials())
	}
	seed, err := qUint64(q, "seed", 1)
	if err != nil {
		return computeSpec{}, err
	}
	maxRounds, err := qInt(q, "maxrounds", 10_000)
	if err != nil {
		return computeSpec{}, err
	}
	if maxRounds < 1 || maxRounds > radio.DefaultMaxRounds {
		return computeSpec{}, errf(http.StatusBadRequest, "maxrounds=%d out of range [1,%d]", maxRounds, radio.DefaultMaxRounds)
	}
	trace, err := qInt(q, "trace", -1)
	if err != nil {
		return computeSpec{}, err
	}
	if trace > 4096 {
		return computeSpec{}, errf(http.StatusBadRequest, "trace=%d exceeds the cap 4096", trace)
	}
	if trace <= 0 {
		trace = -1 // canonical "no per-round summaries"
	}
	// The receive-rule model. The canonical parameterized name (not the
	// raw query string) goes into the cache key, so "fading" and
	// "fading:0.25" share an entry.
	model, err := radio.ParseModel(q.Get("model"))
	if err != nil {
		return computeSpec{}, errf(http.StatusBadRequest, "%v", err)
	}
	modelName := model.Name()

	g := e.Graph()
	digest := e.Digest
	if source < 0 || source >= e.N {
		return computeSpec{}, errf(http.StatusBadRequest, "source %d out of range [0,%d)", source, e.N)
	}
	spec := computeSpec{
		op: "broadcast",
		key: fmt.Sprintf("broadcast|g=%s|proto=%s|model=%s|source=%d|trials=%d|seed=%d|maxrounds=%d|trace=%d",
			digest, protoName, modelName, source, trials, seed, maxRounds, trace),
		run: func(ctx context.Context, _ func(int, int)) (any, error) {
			mc, err := radio.MonteCarlo(g, source, factory, trials, radio.Options{
				RunOpts:     runopts.RunOpts{Workers: s.cfg.Workers, Seed: seed},
				MaxRounds:   maxRounds,
				TraceRounds: trace,
				Model:       model,
				Ctx:         ctx,
			})
			if err != nil {
				return nil, err
			}
			return broadcastResponse{
				Graph: digest, Protocol: protoName, Model: modelName, Source: source,
				Trials: trials, Seed: seed, MaxRounds: maxRounds,
				Completed:          mc.Completed,
				Rounds:             mc.Rounds,
				TotalCollisions:    mc.TotalCollisions,
				TotalTransmissions: mc.TotalTransmissions,
				CompletionHist:     mc.CompletionHist,
				InformedByRound:    mc.InformedByRound,
			}, nil
		},
	}
	return spec, nil
}

// --- experiments -------------------------------------------------------------

// experimentsResponse reports a reproduction-suite run: one row per
// experiment with its verdict and notes.
type experimentsResponse struct {
	IDs      []string            `json:"ids"`
	Seed     uint64              `json:"seed"`
	Quick    bool                `json:"quick"`
	Trials   int                 `json:"trials,omitempty"`
	Failures int                 `json:"failures"`
	Results  []experimentSummary `json:"results"`
}

type experimentSummary struct {
	ID       string   `json:"id"`
	Title    string   `json:"title"`
	PaperRef string   `json:"paper_ref,omitempty"`
	Pass     bool     `json:"pass"`
	Notes    []string `json:"notes,omitempty"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec, err := s.buildSpec("experiments", q)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Experiments are the service's heaviest operation: they default to
	// the job engine. async=0 forces a synchronous run (quick grids only
	// in practice).
	async := true
	if v := q.Get("async"); v != "" {
		async = qBool(q, "async")
	}
	s.serveComputed(w, r, spec, async)
}

// specExperiments validates an experiments request query and builds its
// memoizable computation. On a durable server the run checkpoints each
// completed shard under DataDir, keyed by the cache key — so a crashed
// job, re-driven after restart, resumes from its finished shards and
// still produces the byte-identical artifact.
func (s *Server) specExperiments(q url.Values) (computeSpec, error) {
	ids, err := canonicalExperimentIDs(q.Get("ids"))
	if err != nil {
		return computeSpec{}, err
	}
	seed, err := qUint64(q, "seed", 20180220)
	if err != nil {
		return computeSpec{}, err
	}
	trials, err := qInt(q, "trials", 0)
	if err != nil {
		return computeSpec{}, err
	}
	if trials < 0 {
		return computeSpec{}, errf(http.StatusBadRequest, "trials must be non-negative")
	}
	quick := qBool(q, "quick")

	cfg := experiments.Config{Seed: seed, Quick: quick, Trials: trials}
	key := fmt.Sprintf("experiments|ids=%s|seed=%d|quick=%t|trials=%d",
		strings.Join(ids, ","), seed, quick, trials)
	ckdir := s.checkpointDir(key)
	spec := computeSpec{
		op:  "experiments",
		key: key,
		run: func(ctx context.Context, progress func(int, int)) (any, error) {
			specs, err := experiments.Select(ids)
			if err != nil {
				return nil, err
			}
			var hook func(string, int, int)
			if progress != nil {
				hook = func(_ string, done, total int) { progress(done, total) }
			}
			rep, err := experiments.Run(specs, cfg, experiments.Options{
				RunOpts:       runopts.RunOpts{Workers: s.cfg.Workers},
				Ctx:           ctx,
				Progress:      hook,
				CheckpointDir: ckdir,
				Resume:        ckdir != "",
			})
			if err != nil {
				return nil, err
			}
			if ckdir != "" {
				// The run is complete and its bytes are about to be cached;
				// the shard checkpoints have served their purpose.
				os.RemoveAll(ckdir)
			}
			resp := experimentsResponse{
				IDs: ids, Seed: seed, Quick: quick, Trials: trials,
				Failures: rep.Failures,
			}
			for _, res := range rep.Results {
				resp.Results = append(resp.Results, experimentSummary{
					ID: res.ID, Title: res.Title, PaperRef: res.PaperRef,
					Pass: res.Pass, Notes: res.Notes,
				})
			}
			return resp, nil
		},
	}
	return spec, nil
}

// checkpointDir maps a cache key to its shard-checkpoint directory under
// DataDir ("" on a memory-only server: no checkpointing). Keys are hashed
// — they contain characters with meaning to filesystems.
func (s *Server) checkpointDir(key string) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.cfg.DataDir, "checkpoints", fmt.Sprintf("%x", sum[:8]))
}

// buildSpec validates a request query for op and builds the memoizable
// computation, stamping the spec with its serializable (op, query) form —
// what the WAL persists and rebuildSpec re-parses during recovery.
func (s *Server) buildSpec(op string, q url.Values) (computeSpec, error) {
	var (
		spec computeSpec
		err  error
	)
	switch op {
	case "expansion":
		spec, err = s.specExpansion(q)
	case "spokesman":
		spec, err = s.specSpokesman(q)
	case "broadcast":
		spec, err = s.specBroadcast(q)
	case "experiments":
		spec, err = s.specExperiments(q)
	default:
		return computeSpec{}, fmt.Errorf("service: unknown operation %q", op)
	}
	if err != nil {
		return computeSpec{}, err
	}
	spec.query = q.Encode()
	return spec, nil
}

// rebuildSpec reconstructs a computation from its WAL-persisted form.
func (s *Server) rebuildSpec(op, query string) (computeSpec, error) {
	if op == "" && query == "" {
		return computeSpec{}, fmt.Errorf("service: job predates the WAL spec format")
	}
	q, err := url.ParseQuery(query)
	if err != nil {
		return computeSpec{}, fmt.Errorf("service: re-parse job query: %w", err)
	}
	return s.buildSpec(op, q)
}

// canonicalExperimentIDs validates a comma-separated ID list against the
// registry and returns it in registry order (the canonical form shared by
// cache keys); empty means the full suite.
func canonicalExperimentIDs(val string) ([]string, error) {
	want := map[string]bool{}
	if val != "" {
		for _, id := range strings.Split(val, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			found := false
			for _, e := range experiments.All {
				if e.ID == id {
					found = true
					break
				}
			}
			if !found {
				return nil, errf(http.StatusBadRequest, "unknown experiment %q", id)
			}
			want[id] = true
		}
		if len(want) == 0 {
			return nil, errf(http.StatusBadRequest, "empty ids list")
		}
	}
	var ids []string
	for _, e := range experiments.All {
		if len(want) == 0 || want[e.ID] {
			ids = append(ids, e.ID)
		}
	}
	return ids, nil
}

// --- jobs --------------------------------------------------------------------

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := s.jobs.list()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(list), "jobs": list})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, errf(http.StatusNotFound, "unknown job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, errf(http.StatusNotFound, "unknown job %s", r.PathValue("id")))
		return
	}
	view := j.snapshot()
	if view.State != JobDone {
		writeErr(w, errf(http.StatusConflict, "job %s is %s, not done", view.ID, view.State))
		return
	}
	if j.spec.run == nil {
		// A terminal job restored from the WAL whose request could not be
		// rebuilt: the record survives for polling, the body does not.
		writeErr(w, errf(http.StatusGone, "job %s: result no longer reproducible", view.ID))
		return
	}
	// Serve through the normal memoized path: usually a pure cache hit; if
	// the entry was evicted, the deterministic engines reproduce the same
	// bytes.
	s.serveComputed(w, r, j.spec, false)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.cancelJob(r.PathValue("id"))
	if !ok {
		writeErr(w, errf(http.StatusNotFound, "unknown job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}
