// Package service implements wexpd, the long-running graph-analysis
// daemon: a stdlib-only HTTP/JSON layer over the deterministic engines of
// this repository.
//
// Five components cooperate:
//
//   - a content-addressed graph Store — graphs are keyed by their
//     canonical SHA-256 digest (graph.Digest), so uploading the same graph
//     twice, or requesting the same named family twice, dedupes to one
//     entry. With Config.DataDir set the store is durable: every graph is
//     spilled to disk in a pinned binary CSR encoding and the in-memory
//     tier becomes a bounded cache over it;
//   - a memoized result cache — responses are cached at the byte level
//     under a canonical (graph digest, operation, options) key with LRU
//     eviction, so identical requests return byte-identical bodies and
//     the second one never recomputes;
//   - a singleflight group — N concurrent identical requests trigger
//     exactly one underlying computation; the other N−1 wait and receive
//     the same bytes;
//   - a cancellable job engine — long computations run asynchronously
//     under a per-job context.Context that the expansion, radio, and
//     experiment engines observe at chunk/trial/shard boundaries, so
//     DELETE stops a job promptly without corrupting anything;
//   - a write-ahead log (durable mode) — every job transition is logged,
//     so a crashed server restarts, replays the log, and re-drives
//     incomplete jobs to completion (experiments resume from their shard
//     checkpoints rather than recomputing finished shards).
//
// Every cached computation is deterministic (the engines are bit-identical
// at any worker count), which is what makes byte-level memoization — and
// crash-resumed jobs producing byte-identical artifacts — sound: a
// recomputation after eviction or a crash reproduces the same bytes.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"wexp/internal/expansion"
	"wexp/internal/flight"
	"wexp/internal/lru"
	"wexp/internal/store"
)

// DefaultCacheBytes bounds the result cache when Config.CacheBytes is
// zero.
const DefaultCacheBytes = 64 << 20

// Config tunes the server. The zero value of every field selects a
// production-sensible default.
type Config struct {
	// DataDir, when non-empty, makes the server durable: graphs persist in
	// a content-addressed store under DataDir, job transitions append to a
	// WAL, and experiment jobs checkpoint their shards — so a restart
	// recovers the full graph store and resumes incomplete jobs. Empty
	// means fully in-memory (the pre-durability behavior).
	DataDir string
	// CacheBytes bounds the result cache (0 = DefaultCacheBytes).
	CacheBytes int64
	// MaxGraphs bounds the graph store (0 = DefaultMaxGraphs). In durable
	// mode it bounds only the decoded in-memory cache tier — the durable
	// tier accepts graphs without limit and evicted entries reload from
	// disk; in memory-only mode overflow is refused with 507.
	MaxGraphs int
	// MaxJobs bounds retained job records (0 = 1024). Running jobs are
	// never evicted.
	MaxJobs int
	// Workers is the worker-pool width handed to the engines (0 =
	// GOMAXPROCS). Results never depend on it.
	Workers int
	// MaxBudget caps the per-request exact-enumeration budget a client may
	// ask for (0 = expansion.DefaultBudget). Requests beyond it are
	// rejected up front with 422, mirroring the engine's refusal.
	MaxBudget uint64
	// MaxTrials caps Monte-Carlo trials per request (0 = 1_000_000).
	MaxTrials int
}

func (c Config) maxBudget() uint64 {
	if c.MaxBudget == 0 {
		return expansion.DefaultBudget
	}
	return c.MaxBudget
}

func (c Config) maxTrials() int {
	if c.MaxTrials <= 0 {
		return 1_000_000
	}
	return c.MaxTrials
}

// Server is the wexpd HTTP server: an http.Handler wiring the store, the
// cache, the singleflight group, and the job engine to the /v1 API.
type Server struct {
	cfg    Config
	store  *Store
	cache  *lru.Cache
	flight *flight.Group[[]byte]
	jobs   *jobEngine
	mux    *http.ServeMux

	// walReplay records what WAL recovery found at startup (zero for a
	// fresh or memory-only server).
	walReplay store.ReplayStats

	inflight     atomic.Int64 // computations currently executing
	computations atomic.Int64 // computations actually run (≠ requests served)

	// Expansion-engine counters, accumulated per actual computation (cache
	// hits and coalesced waiters don't touch the engine). The same
	// worker-invariant counters also appear in each cached response body;
	// /metrics totals them across computations, and the per-kernel run
	// counts make the active kernel variant (branch-and-bound vs the flat
	// incremental and recompute oracles) observable in production.
	engineSets      atomic.Int64
	enginePruned    atomic.Int64
	engineVisited   atomic.Int64
	engineSubtrees  atomic.Int64
	engineCertified atomic.Int64 // computations answered by the randomized certified tier
	engineTrials    atomic.Int64 // randomized trials spent across those computations
	engineMu        sync.Mutex
	engineKernel    map[string]int64

	// computeHook, when non-nil, runs inside the singleflight execution
	// just before the computation. Tests use it to hold a computation open
	// while concurrent identical requests pile up.
	computeHook func(key string)
}

// recordEngine folds one expansion Result's engine counters into the
// /metrics gauges.
func (s *Server) recordEngine(res expansion.Result) {
	s.engineSets.Add(int64(res.Sets))
	s.enginePruned.Add(res.Pruned)
	s.engineVisited.Add(res.Visited)
	s.engineSubtrees.Add(res.SubtreesPruned)
	if res.Cert.Kind == expansion.CertCertified {
		s.engineCertified.Add(1)
	}
	s.engineTrials.Add(int64(res.Cert.Trials))
	s.engineMu.Lock()
	s.engineKernel[res.Kernel]++
	s.engineMu.Unlock()
}

// Open returns a ready-to-serve Server. With cfg.DataDir set it opens (or
// creates) the durable state underneath — content-addressed graph files,
// the jobs WAL, experiment checkpoints — replays the WAL, truncating any
// torn tail a crash left behind, and resumes incomplete jobs.
func Open(cfg Config) (*Server, error) {
	s := &Server{
		cfg:          cfg,
		cache:        lru.New(orDefault(cfg.CacheBytes, DefaultCacheBytes)),
		flight:       flight.New[[]byte](),
		jobs:         newJobEngine(cfg.MaxJobs),
		mux:          http.NewServeMux(),
		engineKernel: map[string]int64{},
	}
	var recovered []store.JobRecord
	if cfg.DataDir == "" {
		s.store = NewStore(cfg.MaxGraphs)
	} else {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: data dir: %w", err)
		}
		cas, err := store.OpenCAS(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		wal, rs, err := store.OpenWAL(filepath.Join(cfg.DataDir, "jobs.wal"), func(r store.JobRecord) {
			recovered = append(recovered, r)
		})
		if err != nil {
			return nil, err
		}
		s.store = NewDurableStore(cfg.MaxGraphs, cas)
		s.jobs.wal = wal
		s.walReplay = rs
	}
	s.routes()
	s.recoverJobs(recovered)
	return s, nil
}

// New returns a ready-to-serve Server. It is the in-memory constructor:
// with DataDir unset, construction cannot fail. A durable Config should
// use Open; New panics if opening the durable state fails.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func orDefault(v, def int64) int64 {
	if v <= 0 {
		return def
	}
	return v
}

// Close cancels running jobs, waits for their final WAL records, and
// closes the WAL. The Server must not serve requests afterwards.
func (s *Server) Close() error {
	s.jobs.close()
	return nil
}

// SetComputeHook registers fn to run inside each singleflight execution
// just before the computation starts. The router's coalescing tests use
// it to hold a computation open while identical requests pile up across
// the fleet; pass nil to remove. Not safe to call while serving.
func (s *Server) SetComputeHook(fn func(key string)) { s.computeHook = fn }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.mux.HandleFunc("POST /v1/graphs", s.handleGraphPut)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphList)
	s.mux.HandleFunc("GET /v1/graphs/{digest}", s.handleGraphGet)
	s.mux.HandleFunc("GET /v1/graphs/{digest}/edges", s.handleGraphEdges)

	s.mux.HandleFunc("GET /v1/expansion", s.handleExpansion)
	s.mux.HandleFunc("GET /v1/spokesman", s.handleSpokesman)
	s.mux.HandleFunc("GET /v1/broadcast", s.handleBroadcast)
	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiments)

	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
}

// computeSpec is one memoizable computation: a canonical cache key, the
// canonical request query it was built from (the serializable form the WAL
// persists, from which recovery rebuilds the spec), and the function
// producing the JSON-marshalable response document. run must be a pure
// function of the key (plus the immutable store content it reads) — the
// memoization contract.
type computeSpec struct {
	op    string
	key   string
	query string
	run   func(ctx context.Context, progress func(done, total int)) (any, error)
}

// servedFrom reports how execute satisfied a request: a cache replay, a
// fresh computation, or a wait on another request's in-flight execution.
type servedFrom string

const (
	servedHit       servedFrom = "hit"
	servedMiss      servedFrom = "miss"
	servedCoalesced servedFrom = "coalesced"
)

// execute serves a computation through the cache and singleflight layers:
// cache hit → replay bytes; miss → at most one concurrent execution per
// key computes, encodes canonically (compact json.Marshal), stores, and
// every coalesced waiter receives the same bytes.
//
// Cancellation is reference-counted: the computation runs under the
// flight's own context, cancelled only when every caller that wants the
// result has cancelled — one client disconnecting never fails another's
// identical request, and each caller's own ctx still bounds its wait.
// Nothing is cached on error, so the next identical request recomputes
// cleanly.
func (s *Server) execute(ctx context.Context, spec computeSpec, progress func(done, total int)) ([]byte, servedFrom, error) {
	if body, ok := s.cache.Get(spec.key); ok {
		return body, servedHit, nil
	}
	innerHit := false
	body, err, shared := s.flight.Do(ctx, spec.key, func(runCtx context.Context) ([]byte, error) {
		// Double-check under the flight: a previous execution may have
		// filled the cache between the miss above and acquiring the
		// flight. The lookup is uncounted — this request's miss is already
		// recorded — but a find is reported as a hit to the caller.
		if body, ok := s.cache.Peek(spec.key); ok {
			innerHit = true
			return body, nil
		}
		if s.computeHook != nil {
			s.computeHook(spec.key)
		}
		s.inflight.Add(1)
		s.computations.Add(1)
		defer s.inflight.Add(-1)
		val, err := spec.run(runCtx, progress)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(val)
		if err != nil {
			return nil, errf(http.StatusInternalServerError, "service: encode %s: %v", spec.op, err)
		}
		s.cache.Put(spec.key, body)
		return body, nil
	})
	switch {
	case innerHit:
		return body, servedHit, err
	case shared:
		return body, servedCoalesced, err
	default:
		return body, servedMiss, err
	}
}

// startJob launches spec as a cancellable background job and returns its
// initial view. The job's result lands in the result cache under the same
// key a synchronous request would use, so a later identical request — or
// the job's result URL — is a cache hit.
func (s *Server) startJob(spec computeSpec) JobView {
	j, ctx := s.jobs.create(spec)
	s.runJob(j, ctx, spec)
	return j.snapshot()
}

// runJob drives a registered job to its terminal state in a goroutine
// tracked by the engine's WaitGroup, so Close waits for the final WAL
// record.
func (s *Server) runJob(j *job, ctx context.Context, spec computeSpec) {
	s.jobs.wg.Add(1)
	go func() {
		defer s.jobs.wg.Done()
		_, _, err := s.execute(ctx, spec, j.setProgress)
		j.finish(err, ctx, "/v1/jobs/"+j.snapshot().ID+"/result")
	}()
}

// recoverJobs turns the replayed WAL into job state: terminal jobs are
// restored as poll-able records, jobs whose cancellation was requested
// before the crash complete as cancelled, and incomplete jobs are rebuilt
// from their persisted request query and re-driven — experiments resume
// from their shard checkpoints, so finished work is not recomputed and the
// final artifact is byte-identical to an uninterrupted run.
func (s *Server) recoverJobs(records []store.JobRecord) {
	for _, rj := range replayWAL(records) {
		s.jobs.noteID(rj.id)
		if rj.state != "" {
			// Terminal before the crash: restore the record. The spec is
			// rebuilt best-effort so the result URL still replays (through
			// the cache-or-recompute path); if the request no longer parses,
			// the result endpoint reports the rebuild error.
			spec, _ := s.rebuildSpec(rj.op, rj.query)
			s.jobs.restoreTerminal(JobView{
				ID: rj.id, Op: rj.op, State: rj.state,
				Done: rj.done, Total: rj.total,
				Error: rj.errMsg, ResultURL: rj.resultURL,
			}, spec)
			continue
		}
		if rj.cancelled {
			// The client asked for cancellation before the crash; honor it
			// instead of resuming, and log the terminal state the original
			// process never got to write.
			s.jobs.restoreTerminal(JobView{
				ID: rj.id, Op: rj.op, State: JobCancelled,
				Done: rj.done, Total: rj.total,
				Error: context.Canceled.Error(),
			}, computeSpec{})
			s.jobs.append(store.JobRecord{
				Job: rj.id, Event: string(JobCancelled), Error: context.Canceled.Error(),
			}, true)
			continue
		}
		spec, err := s.rebuildSpec(rj.op, rj.query)
		if err != nil {
			msg := fmt.Sprintf("recovery: rebuild %s job: %v", rj.op, err)
			s.jobs.restoreTerminal(JobView{
				ID: rj.id, Op: rj.op, State: JobFailed, Error: msg, Resumed: true,
			}, computeSpec{})
			s.jobs.append(store.JobRecord{Job: rj.id, Event: string(JobFailed), Error: msg}, true)
			continue
		}
		s.jobs.mu.Lock()
		j, ctx := s.jobs.registerLocked(rj.id, spec, true)
		s.jobs.mu.Unlock()
		s.runJob(j, ctx, spec)
	}
}
