package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"wexp/internal/store"
)

// openDurable opens a durable server over dir plus an httptest frontend.
func openDurable(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("open durable server: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// copyTree copies src into dst recursively — the test stand-in for what a
// kill -9 leaves on disk. Files are copied as-is, mid-write states and
// all; recovery must cope with whatever it finds.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyTree(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// waitJob polls a job until it leaves the running state.
func waitJob(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.jobs.get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v := j.snapshot(); v.State != JobRunning {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// TestStoreDedupAndLabels pins the content-addressing contract at the
// Store level: family requests and uploads of the same graph share one
// entry, labels accumulate, and snapshots are isolated copies.
func TestStoreDedupAndLabels(t *testing.T) {
	s := NewStore(8)
	e1, existed, err := s.PutFamily("hypercube", 3)
	if err != nil || existed {
		t.Fatalf("first put: %v existed=%v", err, existed)
	}
	e2, existed, err := s.PutFamily("hypercube", 3)
	if err != nil || !existed || e2.Digest != e1.Digest {
		t.Fatalf("second put did not dedupe: %v existed=%v", err, existed)
	}
	if _, _, err := s.Put(e1.Graph(), "alias"); err != nil {
		t.Fatal(err)
	}
	// Snapshots are copies: e1 (taken before the alias) is frozen, a fresh
	// Get sees both labels.
	if len(e1.Labels) != 1 {
		t.Fatalf("old snapshot mutated: %v", e1.Labels)
	}
	cur, ok, err := s.Get(e1.Digest)
	if err != nil || !ok || len(cur.Labels) != 2 {
		t.Fatalf("labels = %v (ok=%v err=%v), want family label + alias", cur.Labels, ok, err)
	}
	if s.Len() != 1 {
		t.Fatalf("store len = %d, want 1", s.Len())
	}
}

// TestDurableStoreOverflowEvicts is the regression test for the capacity
// bound applying to the wrong tier: a durable store must accept graphs
// beyond MaxGraphs (evicting decoded graphs from the cache tier, reloading
// on demand) rather than refusing with 507 — that bound belongs to the
// memory-only store, where eviction would lose data (TestStoreCapacity).
func TestDurableStoreOverflowEvicts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, MaxGraphs: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	var digests []string
	for i, q := range []string{"family=hypercube&size=2", "family=hypercube&size=3", "family=hypercube&size=4"} {
		code, body := doReq(t, "POST", ts.URL+"/v1/graphs?"+q, nil)
		if code != http.StatusCreated {
			t.Fatalf("graph %d beyond the cache bound: status %d body %s (durable tier must never 507)", i, code, body)
		}
		var put graphPutResponse
		if err := json.Unmarshal(body, &put); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, put.Digest)
	}
	if got := s.store.Len(); got != 3 {
		t.Fatalf("durable tier holds %d graphs, want 3", got)
	}
	if got := s.store.CachedLen(); got > 2 {
		t.Fatalf("cache tier holds %d decoded graphs, bound is 2", got)
	}
	if s.store.Evictions() == 0 {
		t.Fatal("no cache-tier evictions recorded")
	}
	// Every graph is still servable: evicted entries reload from disk.
	for _, d := range digests {
		if code, body, _ := get(t, ts.URL+"/v1/graphs/"+d); code != http.StatusOK {
			t.Fatalf("graph %s after eviction: status %d body %s", d, code, body)
		}
	}
}

// TestDurableGraphsSurviveRestart: a new process over the same DataDir
// sees every stored graph, with labels, and serves identical bytes.
func TestDurableGraphsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := openDurable(t, dir)
	code, body := doReq(t, "POST", tsA.URL+"/v1/graphs?family=torus&size=4", nil)
	if code != http.StatusCreated {
		t.Fatalf("put: %d %s", code, body)
	}
	var put graphPutResponse
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatal(err)
	}
	_, edgesA := doReq(t, "GET", tsA.URL+"/v1/graphs/"+put.Digest+"/edges", nil)
	sA.Close()
	tsA.Close()

	_, tsB := openDurable(t, dir)
	code, body, _ = get(t, tsB.URL+"/v1/graphs/"+put.Digest)
	if code != http.StatusOK {
		t.Fatalf("graph lost across restart: %d %s", code, body)
	}
	var got StoredGraph
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.N != put.N || got.M != put.M || len(got.Labels) == 0 {
		t.Fatalf("restored metadata wrong: %+v vs %+v", got, put)
	}
	_, edgesB := doReq(t, "GET", tsB.URL+"/v1/graphs/"+put.Digest+"/edges", nil)
	if !bytes.Equal(edgesA, edgesB) {
		t.Fatal("edge-list bytes differ across restart")
	}
}

// TestCrashRecoveryResumesJob is the crash/recover scenario end to end,
// in-process: a durable server runs an async experiments job; mid-job —
// with shard checkpoints and a WAL on disk, possibly with an unsynced
// tail — the DataDir is snapshotted (the kill -9 moment); a second server
// opened over the snapshot must resume the job through its checkpoints
// and serve a result byte-identical to an uninterrupted run.
func TestCrashRecoveryResumesJob(t *testing.T) {
	dirA := t.TempDir()
	sA, err := Open(Config{DataDir: dirA, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA)
	defer tsA.Close()

	// Freeze the job after its first shard completes, so the snapshot
	// catches it genuinely mid-flight.
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	sA.jobs.progressHook = func(_ string, done, total int) {
		if done >= 1 && done < total {
			once.Do(func() { close(blocked) })
			<-release
		}
	}

	code, body := doReq(t, "POST", tsA.URL+"/v1/experiments?ids=E2&quick=1", nil)
	if code != http.StatusAccepted {
		t.Fatalf("start job: %d %s", code, body)
	}
	var accepted JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	<-blocked
	dirB := t.TempDir()
	copyTree(t, dirA, dirB)
	close(release)
	sA.Close()

	// The snapshot must contain at least one shard checkpoint — otherwise
	// this test degrades to a plain re-run and proves nothing about resume.
	ckRoot := filepath.Join(dirB, "checkpoints")
	cks, err := os.ReadDir(ckRoot)
	if err != nil || len(cks) == 0 {
		t.Fatalf("no checkpoint directory captured in the crash snapshot: %v", err)
	}

	sB, err := Open(Config{DataDir: dirB, Workers: 1})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer sB.Close()
	if m := sB.Snapshot(); m.JobsResumed != 1 {
		t.Fatalf("jobs resumed = %d, want 1", m.JobsResumed)
	}
	view := waitJob(t, sB, accepted.ID)
	if view.State != JobDone || !view.Resumed {
		t.Fatalf("recovered job: %+v, want done+resumed", view)
	}

	tsB := httptest.NewServer(sB)
	defer tsB.Close()
	code, resumedBody, _ := get(t, tsB.URL+"/v1/jobs/"+accepted.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("resumed result: %d %s", code, resumedBody)
	}

	// Reference: the same request on a fresh in-memory server, never
	// interrupted.
	_, tsC := newTestServer(t, Config{Workers: 1})
	code, refBody := doReq(t, "POST", tsC.URL+"/v1/experiments?ids=E2&quick=1&async=0", nil)
	if code != http.StatusOK {
		t.Fatalf("reference run: %d %s", code, refBody)
	}
	if !bytes.Equal(resumedBody, refBody) {
		t.Fatalf("resumed artifact differs from uninterrupted run:\n%s\nvs\n%s", resumedBody, refBody)
	}
}

// TestRecoveryTornWALTail: garbage appended to the WAL (a torn last
// write) must not block recovery — the tail is truncated, the completed
// job's record survives, and its result is reproducible.
func TestRecoveryTornWALTail(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := openDurable(t, dir)
	code, body := doReq(t, "POST", tsA.URL+"/v1/experiments?ids=E2&quick=1", nil)
	if code != http.StatusAccepted {
		t.Fatalf("start job: %d %s", code, body)
	}
	var accepted JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, sA, accepted.ID); v.State != JobDone {
		t.Fatalf("job: %+v", v)
	}
	_, refBody, _ := get(t, tsA.URL+"/v1/jobs/"+accepted.ID+"/result")
	sA.Close()
	tsA.Close()

	walPath := filepath.Join(dir, "jobs.wal")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x13\x00\x00\x00torn-half-a-frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sB, tsB := openDurable(t, dir)
	if m := sB.Snapshot(); m.WALTornBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	j, ok := sB.jobs.get(accepted.ID)
	if !ok || j.snapshot().State != JobDone {
		t.Fatalf("terminal job lost after torn-tail recovery: %v", ok)
	}
	code, gotBody, _ := get(t, tsB.URL+"/v1/jobs/"+accepted.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(gotBody, refBody) {
		t.Fatalf("result after recovery: %d, bytes equal = %v", code, bytes.Equal(gotBody, refBody))
	}
}

// TestRecoveryHonorsCancel: a cancellation requested before the crash is
// honored on restart — the job completes as cancelled, not resumed.
func TestRecoveryHonorsCancel(t *testing.T) {
	dir := t.TempDir()
	w, _, err := store.OpenWAL(filepath.Join(dir, "jobs.wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []store.JobRecord{
		{Job: "job-000007", Event: "accepted", Op: "experiments", Query: "ids=E2&quick=1", Key: "k"},
		{Job: "job-000007", Event: "cancel"},
	}
	for _, r := range recs {
		if err := w.Append(r, true); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	s, ts := openDurable(t, dir)
	j, ok := s.jobs.get("job-000007")
	if !ok || j.snapshot().State != JobCancelled {
		t.Fatalf("job = %+v (ok=%v), want cancelled", j, ok)
	}
	// The ID sequence continues past recovered IDs: no reuse.
	code, body := doReq(t, "POST", ts.URL+"/v1/experiments?ids=E2&quick=1", nil)
	if code != http.StatusAccepted {
		t.Fatalf("new job: %d %s", code, body)
	}
	var next JobView
	if err := json.Unmarshal(body, &next); err != nil {
		t.Fatal(err)
	}
	if next.ID != "job-000008" {
		t.Fatalf("next job ID %s, want job-000008", next.ID)
	}
}

// TestRecoveryUnrebuildableJob: an incomplete job whose persisted request
// no longer validates (here: an experiment ID that does not exist) must
// recover as failed — visible, explained, not resumed, not a panic.
func TestRecoveryUnrebuildableJob(t *testing.T) {
	dir := t.TempDir()
	w, _, err := store.OpenWAL(filepath.Join(dir, "jobs.wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := store.JobRecord{Job: "job-000001", Event: "accepted", Op: "experiments", Query: "ids=E999", Key: "k"}
	if err := w.Append(rec, true); err != nil {
		t.Fatal(err)
	}
	w.Close()

	s, ts := openDurable(t, dir)
	j, ok := s.jobs.get("job-000001")
	if !ok {
		t.Fatal("job lost")
	}
	v := j.snapshot()
	if v.State != JobFailed || v.Error == "" {
		t.Fatalf("job = %+v, want failed with an explanation", v)
	}
	code, _, _ := get(t, ts.URL+"/v1/jobs/job-000001/result")
	if code != http.StatusConflict {
		t.Fatalf("result of failed job: %d, want 409", code)
	}
}

// TestCorruptCASEntryCleanError: a flipped bit in a durable graph file is
// caught by verify-on-read and surfaces as a clean 500 — on the graph
// endpoint and on computations addressing the digest — never a panic or
// silently wrong bytes.
func TestCorruptCASEntryCleanError(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := openDurable(t, dir)
	code, body := doReq(t, "POST", tsA.URL+"/v1/graphs?family=hypercube&size=3", nil)
	if code != http.StatusCreated {
		t.Fatalf("put: %d %s", code, body)
	}
	var put graphPutResponse
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatal(err)
	}
	sA.Close()
	tsA.Close()

	gfile := filepath.Join(dir, "graphs", put.Digest+".g")
	data, err := os.ReadFile(gfile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(gfile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, tsB := openDurable(t, dir)
	for _, url := range []string{
		"/v1/graphs/" + put.Digest,
		"/v1/expansion?graph=" + put.Digest,
	} {
		code, body, _ := get(t, tsB.URL+url)
		if code != http.StatusInternalServerError {
			t.Fatalf("%s on corrupt entry: status %d body %s, want 500", url, code, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: not a clean JSON error: %s", url, body)
		}
	}
}
