package service

import (
	"container/list"
	"sync"
)

// DefaultCacheBytes bounds the result cache when Config.CacheBytes is
// zero: 64 MiB of response bodies.
const DefaultCacheBytes = 64 << 20

// Cache is the memoized result cache: canonical request key → the exact
// response body served for it. Eviction is LRU by total byte size. Storing
// bodies (rather than decoded results) is what makes the caching contract
// byte-level: a hit replays the previous response verbatim.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache bounded to maxBytes of stored values (0 means
// DefaultCacheBytes).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached body for key, marking it most recently used and
// counting a hit or a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	return c.lookup(key, true)
}

// peek is Get without the miss accounting: used for the double-check
// inside a singleflight execution, whose request already recorded its miss
// before entering the flight. A find still counts as a hit (bytes are
// served from cache) and refreshes recency.
func (c *Cache) peek(key string) ([]byte, bool) {
	return c.lookup(key, false)
}

func (c *Cache) lookup(key string, countMiss bool) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores the body for key and evicts least-recently-used entries until
// the byte budget holds. A value larger than the whole budget is not
// cached at all (it would only evict everything else for one entry).
func (c *Cache) Put(key string, val []byte) {
	if int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.curBytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.items[key] = el
		c.curBytes += int64(len(val))
	}
	for c.curBytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.curBytes -= int64(len(e.val))
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.curBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
