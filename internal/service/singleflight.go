package service

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution whose result every caller receives — the stdlib-only
// equivalent of golang.org/x/sync/singleflight, extended with
// reference-counted cancellation: the execution runs under its own
// context, which is cancelled only when every interested caller has
// cancelled. One client disconnecting (or one job being deleted) never
// aborts a computation another caller is still waiting for.
type flightGroup struct {
	mu        sync.Mutex
	calls     map[string]*flightCall
	executed  int64 // calls that ran the function
	coalesced int64 // calls that waited on another call's execution
}

type flightCall struct {
	done chan struct{} // closed when val/err are final
	val  []byte
	err  error

	mu      sync.Mutex
	waiters int                // callers still interested in the result
	cancel  context.CancelFunc // cancels the execution context
}

// drop records that one caller lost interest; the last one out cancels
// the execution.
func (c *flightCall) drop() {
	c.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	c.mu.Unlock()
	if last {
		c.cancel()
	}
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do executes fn once per key at a time: the first caller runs it (under
// a private execution context), every concurrent caller with the same key
// blocks and receives the same value and error. A caller whose ctx is
// cancelled stops waiting and gets ctx.Err(); the execution itself is
// cancelled only when no caller remains. The returned bool reports
// whether this caller was coalesced onto another caller's execution.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) ([]byte, error, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.mu.Lock()
		c.waiters++
		c.mu.Unlock()
		g.coalesced++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			c.drop()
			return nil, ctx.Err(), true
		}
	}
	runCtx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.executed++
	g.mu.Unlock()

	// The owner executes fn synchronously, so it cannot abandon the flight
	// early — but its cancellation must still count: a watcher drops the
	// owner's reference the moment its ctx fires, letting the engines stop
	// at the next boundary (unless other waiters keep the flight alive).
	watcherDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.drop()
		case <-watcherDone:
		}
	}()

	c.val, c.err = fn(runCtx)

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(watcherDone)
	close(c.done)
	cancel() // release the context regardless of how fn returned
	// The owner's result respects its own cancellation even if a waiter
	// kept the execution running to completion.
	if ctx.Err() != nil && c.err == nil {
		return nil, ctx.Err(), false
	}
	return c.val, c.err, false
}

// flightStats snapshots the execution/coalescing counters.
type flightStats struct {
	Executed  int64
	Coalesced int64
}

func (g *flightGroup) stats() flightStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return flightStats{Executed: g.executed, Coalesced: g.coalesced}
}
