package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	val := bytes.Repeat([]byte("x"), 40)
	c.Put("a", val)
	c.Put("b", val)
	// Touch "a" so "b" is the LRU victim when "c" overflows the budget.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", val)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats wrong after eviction: %+v", st)
	}
}

func TestCacheOversizedValueNotCached(t *testing.T) {
	c := NewCache(10)
	c.Put("huge", bytes.Repeat([]byte("x"), 11))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("value larger than the budget must not be cached")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCache(100)
	c.Put("k", []byte("short"))
	c.Put("k", []byte("a-longer-value"))
	got, ok := c.Get("k")
	if !ok || string(got) != "a-longer-value" {
		t.Fatalf("got %q %v", got, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len("a-longer-value")) {
		t.Fatalf("stats wrong after update: %+v", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("corrupt value for %s: %q", key, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	const n = 16
	gate := make(chan struct{})
	arrived := make(chan struct{}, n)
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			val, err, _ := g.Do(nil, "key", func(context.Context) ([]byte, error) {
				<-gate // hold the first execution until everyone arrived
				return []byte("value"), nil
			})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
			results[i] = val
		}(i)
	}
	for i := 0; i < n; i++ {
		<-arrived
	}
	close(gate)
	wg.Wait()
	for i, r := range results {
		if string(r) != "value" {
			t.Fatalf("call %d got %q", i, r)
		}
	}
	st := g.stats()
	if st.Executed+st.Coalesced != n {
		t.Fatalf("executed %d + coalesced %d != %d calls", st.Executed, st.Coalesced, n)
	}
	// The gate guarantees the first call is still executing while the rest
	// arrive — but a goroutine may be preempted between `arrived` and
	// `Do`, landing after the flight closed and starting a new execution.
	// What must never happen is n executions (no coalescing at all).
	if st.Executed >= n {
		t.Fatalf("no coalescing happened: %d executions for %d calls", st.Executed, n)
	}
}

func TestFlightGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	g := newFlightGroup()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		val, err, shared := g.Do(nil, key, func(context.Context) ([]byte, error) { return []byte(key), nil })
		if err != nil || shared || string(val) != key {
			t.Fatalf("key %s: val=%q err=%v shared=%v", key, val, err, shared)
		}
	}
	if st := g.stats(); st.Executed != 3 || st.Coalesced != 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// TestFlightGroupWaiterCancelDoesNotAbortExecution: a waiter abandoning
// the flight returns its own ctx.Err() while the execution — still wanted
// by the owner — runs to completion.
func TestFlightGroupWaiterCancelDoesNotAbortExecution(t *testing.T) {
	g := newFlightGroup()
	inFlight := make(chan struct{})
	gate := make(chan struct{})
	var ownerVal []byte
	var ownerErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		ownerVal, ownerErr, _ = g.Do(nil, "key", func(runCtx context.Context) ([]byte, error) {
			close(inFlight)
			<-gate
			if runCtx.Err() != nil {
				return nil, runCtx.Err()
			}
			return []byte("value"), nil
		})
	}()
	<-inFlight
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.Do(ctx, "key", func(context.Context) ([]byte, error) {
		t.Error("waiter must not execute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || !shared {
		t.Fatalf("cancelled waiter: err=%v shared=%v", err, shared)
	}
	close(gate)
	<-done
	if ownerErr != nil || string(ownerVal) != "value" {
		t.Fatalf("owner was disturbed by the waiter's cancellation: val=%q err=%v", ownerVal, ownerErr)
	}
}

// TestFlightGroupLastCancelAbortsExecution: when every caller has
// cancelled, the execution context fires so the engines can stop at the
// next boundary.
func TestFlightGroupLastCancelAbortsExecution(t *testing.T) {
	g := newFlightGroup()
	inFlight := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, runErr, _ = g.Do(ctx, "key", func(runCtx context.Context) ([]byte, error) {
			close(inFlight)
			<-runCtx.Done() // the refcount dropping to zero must fire this
			return nil, runCtx.Err()
		})
	}()
	<-inFlight
	cancel() // the sole caller cancels → execution ctx must be cancelled
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("execution context never fired after the last caller cancelled")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", runErr)
	}
}

func TestStoreDedupAndLabels(t *testing.T) {
	s := NewStore(8)
	e1, existed, err := s.PutFamily("hypercube", 3)
	if err != nil || existed {
		t.Fatalf("first put: %v existed=%v", err, existed)
	}
	e2, existed, err := s.PutFamily("hypercube", 3)
	if err != nil || !existed || e2.Digest != e1.Digest {
		t.Fatalf("second put did not dedupe: %v existed=%v", err, existed)
	}
	if _, _, err := s.Put(e1.Graph(), "alias"); err != nil {
		t.Fatal(err)
	}
	// Snapshots are copies: e1 (taken before the alias) is frozen, a fresh
	// Get sees both labels.
	if len(e1.Labels) != 1 {
		t.Fatalf("old snapshot mutated: %v", e1.Labels)
	}
	cur, ok := s.Get(e1.Digest)
	if !ok || len(cur.Labels) != 2 {
		t.Fatalf("labels = %v, want family label + alias", cur.Labels)
	}
	if s.Len() != 1 {
		t.Fatalf("store len = %d, want 1", s.Len())
	}
}
