package service

import (
	"fmt"
	"net/http"
	"sort"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Metrics is a point-in-time snapshot of the server counters, exposed for
// tests and the benchmark harness; /metrics renders it in the Prometheus
// text format.
type Metrics struct {
	CacheHits      int64
	CacheMisses    int64
	CacheEntries   int64
	CacheBytes     int64
	CacheEvictions int64
	// Computations counts underlying engine executions — the number that
	// stays at 1 when N identical requests race (singleflight) or repeat
	// (memoization).
	Computations int64
	// Coalesced counts requests that waited on another request's in-flight
	// execution of the same key.
	Coalesced int64
	Inflight  int64
	// Graphs counts stored graphs (the durable tier when one exists);
	// GraphsCached counts the decoded graphs resident in memory, and
	// GraphEvictions the cache-tier evictions (both equal Graphs / zero on
	// a memory-only server, which never evicts).
	Graphs         int64
	GraphsCached   int64
	GraphEvictions int64
	JobsCreated    int64
	JobsCancelled  int64
	JobsRunning    int64
	// JobsResumed counts jobs re-driven from the WAL after a restart.
	JobsResumed int64
	// WALRecords is the number of valid WAL records replayed at startup;
	// WALTornBytes the length of the torn tail truncated (0 for a clean
	// log or a memory-only server).
	WALRecords   int64
	WALTornBytes int64

	// Expansion-engine counters across all actual computations: candidate
	// sets evaluated, sets skipped by pruning, search-tree nodes expanded,
	// and whole subtrees cut by the branch-and-bound bounds (each
	// computation's own counters also appear in its cached body — they are
	// worker-invariant), plus computation counts per kernel variant
	// (small|big × bnb|incremental|recompute).
	EngineSets     int64
	EnginePruned   int64
	EngineVisited  int64
	EngineSubtrees int64
	// EngineCertified counts computations answered by the randomized
	// certified tier (exact search over budget); EngineTrials totals the
	// randomized trials those computations spent.
	EngineCertified int64
	EngineTrials    int64
	EngineKernels   map[string]int64
}

// Snapshot collects the current metrics.
func (s *Server) Snapshot() Metrics {
	cs := s.cache.Stats()
	fs := s.flight.Stats()
	created, cancelled, resumed, running := s.jobs.counts()
	s.engineMu.Lock()
	kernels := make(map[string]int64, len(s.engineKernel))
	for k, v := range s.engineKernel {
		kernels[k] = v
	}
	s.engineMu.Unlock()
	return Metrics{
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEntries:    int64(cs.Entries),
		CacheBytes:      cs.Bytes,
		CacheEvictions:  cs.Evictions,
		Computations:    s.computations.Load(),
		Coalesced:       fs.Coalesced,
		Inflight:        s.inflight.Load(),
		Graphs:          int64(s.store.Len()),
		GraphsCached:    int64(s.store.CachedLen()),
		GraphEvictions:  s.store.Evictions(),
		JobsCreated:     created,
		JobsCancelled:   cancelled,
		JobsRunning:     running,
		JobsResumed:     resumed,
		WALRecords:      int64(s.walReplay.Records),
		WALTornBytes:    s.walReplay.TruncatedBytes,
		EngineSets:      s.engineSets.Load(),
		EnginePruned:    s.enginePruned.Load(),
		EngineVisited:   s.engineVisited.Load(),
		EngineSubtrees:  s.engineSubtrees.Load(),
		EngineCertified: s.engineCertified.Load(),
		EngineTrials:    s.engineTrials.Load(),
		EngineKernels:   kernels,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Snapshot()
	gauges := map[string]int64{
		"wexpd_cache_hits":                   m.CacheHits,
		"wexpd_cache_misses":                 m.CacheMisses,
		"wexpd_cache_entries":                m.CacheEntries,
		"wexpd_cache_bytes":                  m.CacheBytes,
		"wexpd_cache_evictions":              m.CacheEvictions,
		"wexpd_computations":                 m.Computations,
		"wexpd_coalesced_requests":           m.Coalesced,
		"wexpd_inflight":                     m.Inflight,
		"wexpd_graphs_stored":                m.Graphs,
		"wexpd_graphs_cached":                m.GraphsCached,
		"wexpd_graph_evictions":              m.GraphEvictions,
		"wexpd_jobs_created":                 m.JobsCreated,
		"wexpd_jobs_cancelled":               m.JobsCancelled,
		"wexpd_jobs_running":                 m.JobsRunning,
		"wexpd_jobs_resumed":                 m.JobsResumed,
		"wexpd_wal_records_replayed":         m.WALRecords,
		"wexpd_wal_torn_bytes":               m.WALTornBytes,
		"wexpd_engine_sets_total":            m.EngineSets,
		"wexpd_engine_pruned_total":          m.EnginePruned,
		"wexpd_engine_visited_total":         m.EngineVisited,
		"wexpd_engine_subtrees_pruned_total": m.EngineSubtrees,
		"wexpd_engine_certified_runs":        m.EngineCertified,
		"wexpd_engine_trials_total":          m.EngineTrials,
	}
	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, n := range names {
		fmt.Fprintf(w, "%s %d\n", n, gauges[n])
	}
	kernels := make([]string, 0, len(m.EngineKernels))
	for k := range m.EngineKernels {
		kernels = append(kernels, k)
	}
	sort.Strings(kernels)
	for _, k := range kernels {
		fmt.Fprintf(w, "wexpd_engine_kernel_runs{kernel=%q} %d\n", k, m.EngineKernels[k])
	}
}
