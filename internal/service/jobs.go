package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// JobState is the lifecycle state of a job. Transitions:
// running → done | failed | cancelled. (Jobs start running immediately;
// there is no queue — the engine bounds concurrency with a semaphore.)
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobView is the JSON representation of a job, a consistent snapshot.
type JobView struct {
	ID    string   `json:"id"`
	Op    string   `json:"op"`
	State JobState `json:"state"`
	// Done/Total report shard-level progress for operations that expose it
	// (experiments); both zero otherwise.
	Done  int    `json:"progress_done,omitempty"`
	Total int    `json:"progress_total,omitempty"`
	Error string `json:"error,omitempty"`
	// ResultURL is where the result body is served once State is done. The
	// result is a normal cached computation: fetching it replays the
	// byte-identical memoized response.
	ResultURL string `json:"result_url,omitempty"`
}

// job is the engine's internal record. spec is retained so the result
// endpoint can replay the computation through the cache (normally a pure
// cache hit; a recomputation after eviction reproduces the same bytes).
type job struct {
	mu              sync.Mutex
	view            JobView
	spec            computeSpec
	cancel          context.CancelFunc
	cancelRequested bool
}

func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

func (j *job) setProgress(done, total int) {
	j.mu.Lock()
	j.view.Done, j.view.Total = done, total
	j.mu.Unlock()
}

// finish records the terminal state. Success wins: a DELETE that lands
// after the computation completed (but before this bookkeeping ran) must
// not hide a result that is already cached. Among failures, a cancelled
// context wins over the error it caused.
func (j *job) finish(err error, ctx context.Context, resultURL string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.view.State = JobDone
		j.view.ResultURL = resultURL
	case ctx.Err() != nil:
		j.view.State = JobCancelled
		j.view.Error = ctx.Err().Error()
	default:
		j.view.State = JobFailed
		j.view.Error = err.Error()
	}
}

// jobEngine owns every job the server has started. Completed jobs are kept
// (bounded by maxJobs) so clients can poll terminal states; the oldest
// terminal jobs are dropped once the bound is hit.
type jobEngine struct {
	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // creation order, for eviction and listing
	nextID  int
	maxJobs int

	created   int64
	cancelled int64
}

// defaultMaxJobs bounds the job table when Config.MaxJobs is zero.
const defaultMaxJobs = 1024

func newJobEngine(maxJobs int) *jobEngine {
	if maxJobs <= 0 {
		maxJobs = defaultMaxJobs
	}
	return &jobEngine{jobs: make(map[string]*job), maxJobs: maxJobs}
}

// create registers a new running job and returns it with its cancellable
// context. IDs are sequential per server instance.
func (e *jobEngine) create(spec computeSpec) (*job, context.Context) {
	ctx, cancel := context.WithCancel(context.Background())
	e.mu.Lock()
	e.nextID++
	id := fmt.Sprintf("job-%06d", e.nextID)
	j := &job{view: JobView{ID: id, Op: spec.op, State: JobRunning}, spec: spec, cancel: cancel}
	e.jobs[id] = j
	e.order = append(e.order, id)
	e.created++
	e.evictLocked()
	e.mu.Unlock()
	return j, ctx
}

// evictLocked drops the oldest terminal jobs beyond maxJobs. Running jobs
// are never evicted.
func (e *jobEngine) evictLocked() {
	if len(e.jobs) <= e.maxJobs {
		return
	}
	kept := e.order[:0]
	for _, id := range e.order {
		j := e.jobs[id]
		if len(e.jobs) > e.maxJobs && j != nil && j.snapshot().State != JobRunning {
			delete(e.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

func (e *jobEngine) get(id string) (*job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// cancelJob cancels a job's context. Cancelling a terminal job is a no-op
// that still reports success (idempotent DELETE); the cancelled counter
// only ticks the first time a running job is cancelled, so it counts jobs,
// not DELETE requests.
func (e *jobEngine) cancelJob(id string) (JobView, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	j.mu.Lock()
	first := j.view.State == JobRunning && !j.cancelRequested
	j.cancelRequested = true
	j.mu.Unlock()
	if first {
		e.mu.Lock()
		e.cancelled++
		e.mu.Unlock()
	}
	j.cancel()
	return j.snapshot(), true
}

// list returns snapshots of every retained job in ID order.
func (e *jobEngine) list() []JobView {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	e.mu.Unlock()
	sort.Strings(ids)
	out := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j, ok := e.get(id); ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// counts returns (created, cancelled, running) for /metrics.
func (e *jobEngine) counts() (created, cancelled, running int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		if j.snapshot().State == JobRunning {
			running++
		}
	}
	return e.created, e.cancelled, running
}
