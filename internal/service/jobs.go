package service

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"wexp/internal/store"
)

// JobState is the lifecycle state of a job. Transitions:
// running → done | failed | cancelled. (Jobs start running immediately;
// there is no queue — the engine bounds concurrency with a semaphore.)
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobView is the JSON representation of a job, a consistent snapshot.
type JobView struct {
	ID    string   `json:"id"`
	Op    string   `json:"op"`
	State JobState `json:"state"`
	// Done/Total report shard-level progress for operations that expose it
	// (experiments); both zero otherwise.
	Done  int    `json:"progress_done,omitempty"`
	Total int    `json:"progress_total,omitempty"`
	Error string `json:"error,omitempty"`
	// ResultURL is where the result body is served once State is done. The
	// result is a normal cached computation: fetching it replays the
	// byte-identical memoized response.
	ResultURL string `json:"result_url,omitempty"`
	// Resumed reports that this job was recovered from the WAL after a
	// restart and re-driven to completion.
	Resumed bool `json:"resumed,omitempty"`
}

// job is the engine's internal record. spec is retained so the result
// endpoint can replay the computation through the cache (normally a pure
// cache hit; a recomputation after eviction reproduces the same bytes).
type job struct {
	mu              sync.Mutex
	view            JobView
	spec            computeSpec
	cancel          context.CancelFunc
	cancelRequested bool

	eng *jobEngine // for WAL appends on transitions
}

func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

func (j *job) setProgress(done, total int) {
	j.mu.Lock()
	j.view.Done, j.view.Total = done, total
	id := j.view.ID
	j.mu.Unlock()
	// Progress records are unsynced: losing the tail costs a stale gauge
	// after a crash, and recovery re-runs the job anyway (the experiment
	// checkpoints, not the WAL, carry the completed work).
	j.eng.append(store.JobRecord{Job: id, Event: "progress", Done: done, Total: total}, false)
	if j.eng.progressHook != nil {
		j.eng.progressHook(id, done, total)
	}
}

// finish records the terminal state. Success wins: a DELETE that lands
// after the computation completed (but before this bookkeeping ran) must
// not hide a result that is already cached. Among failures, a cancelled
// context wins over the error it caused.
func (j *job) finish(err error, ctx context.Context, resultURL string) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.view.State = JobDone
		j.view.ResultURL = resultURL
	case ctx.Err() != nil:
		j.view.State = JobCancelled
		j.view.Error = ctx.Err().Error()
	default:
		j.view.State = JobFailed
		j.view.Error = err.Error()
	}
	rec := store.JobRecord{
		Job: j.view.ID, Event: string(j.view.State),
		Error: j.view.Error, ResultURL: j.view.ResultURL,
	}
	j.mu.Unlock()
	j.eng.append(rec, true)
}

// jobEngine owns every job the server has started. Completed jobs are kept
// (bounded by maxJobs) so clients can poll terminal states; the oldest
// terminal jobs are dropped once the bound is hit.
//
// When a WAL is attached, every transition is logged: accepted (with the
// op, the canonical request query, and the cache key — enough to rebuild
// the computation), progress, cancel, and the terminal state. Recovery
// replays the log, restores terminal jobs as records, and re-drives
// incomplete jobs.
type jobEngine struct {
	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // creation order, for eviction and listing
	nextID  int
	maxJobs int

	wal *store.WAL // nil = volatile jobs
	wg  sync.WaitGroup

	created   int64
	cancelled int64
	resumed   int64

	// progressHook, when non-nil, observes every progress transition.
	// The crash-recovery tests use it to freeze a job mid-run.
	progressHook func(id string, done, total int)
}

// defaultMaxJobs bounds the job table when Config.MaxJobs is zero.
const defaultMaxJobs = 1024

func newJobEngine(maxJobs int) *jobEngine {
	if maxJobs <= 0 {
		maxJobs = defaultMaxJobs
	}
	return &jobEngine{jobs: make(map[string]*job), maxJobs: maxJobs}
}

// append writes a WAL record if a WAL is attached. WAL errors are
// swallowed after the engine is closed (shutdown races a finishing job)
// and otherwise surface as... nothing the client can act on mid-flight:
// job state stays authoritative in memory; the next recovery simply sees
// less history.
func (e *jobEngine) append(rec store.JobRecord, sync bool) {
	if e.wal == nil {
		return
	}
	_ = e.wal.Append(rec, sync)
}

// create registers a new running job and returns it with its cancellable
// context. IDs are sequential per server instance and continue across
// restarts (recovery advances nextID past every logged job).
func (e *jobEngine) create(spec computeSpec) (*job, context.Context) {
	e.mu.Lock()
	e.nextID++
	id := fmt.Sprintf("job-%06d", e.nextID)
	j, ctx := e.registerLocked(id, spec, false)
	e.mu.Unlock()
	e.append(store.JobRecord{
		Job: id, Event: "accepted", Op: spec.op, Query: spec.query, Key: spec.key,
	}, true)
	return j, ctx
}

// registerLocked installs a running job under id. Caller holds e.mu.
func (e *jobEngine) registerLocked(id string, spec computeSpec, resumed bool) (*job, context.Context) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		view:   JobView{ID: id, Op: spec.op, State: JobRunning, Resumed: resumed},
		spec:   spec,
		cancel: cancel,
		eng:    e,
	}
	e.jobs[id] = j
	e.order = append(e.order, id)
	e.created++
	if resumed {
		e.resumed++
	}
	e.evictLocked()
	return j, ctx
}

// restoreTerminal installs a recovered terminal job record (no goroutine,
// no context). spec may be zero-valued if the computation could not be
// rebuilt; the result endpoint guards against that.
func (e *jobEngine) restoreTerminal(view JobView, spec computeSpec) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j := &job{view: view, spec: spec, cancel: func() {}, eng: e}
	e.jobs[view.ID] = j
	e.order = append(e.order, view.ID)
	e.evictLocked()
}

// noteID advances the ID sequence past a recovered job ID.
func (e *jobEngine) noteID(id string) {
	n, ok := parseJobID(id)
	if !ok {
		return
	}
	e.mu.Lock()
	if n > e.nextID {
		e.nextID = n
	}
	e.mu.Unlock()
}

func parseJobID(id string) (int, bool) {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	return n, err == nil
}

// evictLocked drops the oldest terminal jobs beyond maxJobs. Running jobs
// are never evicted.
func (e *jobEngine) evictLocked() {
	if len(e.jobs) <= e.maxJobs {
		return
	}
	kept := e.order[:0]
	for _, id := range e.order {
		j := e.jobs[id]
		if len(e.jobs) > e.maxJobs && j != nil && j.snapshot().State != JobRunning {
			delete(e.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

func (e *jobEngine) get(id string) (*job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// cancelJob cancels a job's context. Cancelling a terminal job is a no-op
// that still reports success (idempotent DELETE); the cancelled counter
// only ticks the first time a running job is cancelled, so it counts jobs,
// not DELETE requests.
func (e *jobEngine) cancelJob(id string) (JobView, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	j.mu.Lock()
	first := j.view.State == JobRunning && !j.cancelRequested
	j.cancelRequested = true
	j.mu.Unlock()
	if first {
		e.mu.Lock()
		e.cancelled++
		e.mu.Unlock()
		e.append(store.JobRecord{Job: id, Event: "cancel"}, true)
	}
	j.cancel()
	return j.snapshot(), true
}

// list returns snapshots of every retained job in ID order.
func (e *jobEngine) list() []JobView {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	e.mu.Unlock()
	sort.Strings(ids)
	out := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j, ok := e.get(id); ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// counts returns (created, cancelled, resumed, running) for /metrics.
func (e *jobEngine) counts() (created, cancelled, resumed, running int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		if j.snapshot().State == JobRunning {
			running++
		}
	}
	return e.created, e.cancelled, e.resumed, running
}

// close cancels every running job, waits for their goroutines to finish
// their final WAL appends, and closes the WAL.
func (e *jobEngine) close() {
	e.mu.Lock()
	for _, j := range e.jobs {
		j.cancel()
	}
	e.mu.Unlock()
	e.wg.Wait()
	if e.wal != nil {
		e.wal.Close()
	}
}

// replayedJob is the state of one job reconstructed from the WAL.
type replayedJob struct {
	id        string
	op        string
	query     string
	key       string
	state     JobState // "" while only accepted/progress records seen
	done      int
	total     int
	errMsg    string
	resultURL string
	cancelled bool // a cancel record was seen
}

// replayWAL folds the WAL's records into per-job states, in first-seen
// order. Records for jobs without an accepted record (evicted history)
// are dropped.
func replayWAL(records []store.JobRecord) []*replayedJob {
	byID := map[string]*replayedJob{}
	var order []*replayedJob
	for _, r := range records {
		j, ok := byID[r.Job]
		if !ok {
			if r.Event != "accepted" {
				continue
			}
			j = &replayedJob{id: r.Job, op: r.Op, query: r.Query, key: r.Key}
			byID[r.Job] = j
			order = append(order, j)
			continue
		}
		switch r.Event {
		case "progress":
			j.done, j.total = r.Done, r.Total
		case "cancel":
			j.cancelled = true
		case string(JobDone), string(JobFailed), string(JobCancelled):
			j.state = JobState(r.Event)
			j.errMsg = r.Error
			j.resultURL = r.ResultURL
		}
	}
	return order
}
