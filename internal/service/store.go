package service

import (
	"fmt"
	"sort"
	"sync"

	"wexp/internal/gen"
	"wexp/internal/graph"
)

// StoredGraph is a snapshot of one entry of the content-addressed graph
// store. Snapshots are values with private label copies, so handlers may
// read and serialize them without holding the store lock.
type StoredGraph struct {
	// Digest is the canonical SHA-256 of the graph (graph.DigestString) —
	// the entry's identity and its URL path segment.
	Digest string `json:"digest"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// Labels are the human names under which this graph has been stored
	// ("upload", "hypercube(10)", ...), sorted; purely informational.
	Labels []string `json:"labels,omitempty"`

	g *graph.Graph
}

// Graph returns the stored immutable graph.
func (s StoredGraph) Graph() *graph.Graph { return s.g }

// storeEntry is the store's internal mutable record; labels is only
// touched under Store.mu.
type storeEntry struct {
	digest string
	g      *graph.Graph
	labels []string
}

// snapshot copies the entry into a lock-free view. Caller holds Store.mu.
func (e *storeEntry) snapshot() StoredGraph {
	return StoredGraph{
		Digest: e.digest,
		N:      e.g.N(),
		M:      e.g.M(),
		Labels: append([]string(nil), e.labels...),
		g:      e.g,
	}
}

func (e *storeEntry) addLabel(label string) {
	if label == "" {
		return
	}
	for _, l := range e.labels {
		if l == label {
			return
		}
	}
	e.labels = append(e.labels, label)
	sort.Strings(e.labels)
}

// Store is the content-addressed graph store: graphs are keyed by their
// canonical digest, so storing the same graph twice — whether uploaded
// as an edge list or requested as a named family — dedupes to one entry.
// Graphs are immutable and never evicted (only computed results live in
// the LRU cache); MaxGraphs bounds the store.
type Store struct {
	mu       sync.Mutex
	max      int
	graphs   map[string]*storeEntry
	families map[string]string // "family/size" → digest, to skip rebuilding
}

// NewStore returns a store holding at most max graphs (0 means
// DefaultMaxGraphs).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultMaxGraphs
	}
	return &Store{
		max:      max,
		graphs:   make(map[string]*storeEntry),
		families: make(map[string]string),
	}
}

// DefaultMaxGraphs bounds the graph store when Config.MaxGraphs is zero.
const DefaultMaxGraphs = 4096

// ErrStoreFull reports that the graph store reached its capacity.
var ErrStoreFull = fmt.Errorf("service: graph store full")

// Put stores g under its canonical digest and returns a snapshot of the
// entry. The second return value reports whether the graph was already
// present (the dedup case); labels accumulate across duplicate stores.
func (s *Store) Put(g *graph.Graph, label string) (StoredGraph, bool, error) {
	d := graph.DigestString(g)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.graphs[d]; ok {
		e.addLabel(label)
		return e.snapshot(), true, nil
	}
	if len(s.graphs) >= s.max {
		return StoredGraph{}, false, ErrStoreFull
	}
	e := &storeEntry{digest: d, g: g}
	e.addLabel(label)
	s.graphs[d] = e
	return e.snapshot(), false, nil
}

// Get returns a snapshot of the entry for a digest.
func (s *Store) Get(digest string) (StoredGraph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.graphs[digest]
	if !ok {
		return StoredGraph{}, false
	}
	return e.snapshot(), true
}

// PutFamily resolves a named family instance (building it at most once per
// (family, size)) and stores it content-addressed: two different family
// requests that generate the same labeled graph share one entry.
func (s *Store) PutFamily(family string, size int) (StoredGraph, bool, error) {
	fkey := fmt.Sprintf("%s/%d", family, size)
	s.mu.Lock()
	if d, ok := s.families[fkey]; ok {
		e := s.graphs[d].snapshot()
		s.mu.Unlock()
		return e, true, nil
	}
	s.mu.Unlock()
	// Build outside the lock: generators can be expensive. A racing
	// duplicate build dedupes through Put.
	g, err := buildFamily(family, size)
	if err != nil {
		return StoredGraph{}, false, err
	}
	e, existed, err := s.Put(g, fmt.Sprintf("%s(%d)", family, size))
	if err != nil {
		return StoredGraph{}, false, err
	}
	s.mu.Lock()
	s.families[fkey] = e.Digest
	s.mu.Unlock()
	return e, existed, nil
}

// buildFamily wraps gen.FromFamily, converting generator panics on absurd
// size parameters (negative cycle lengths, oversized hypercube dimensions)
// into errors — a long-running service must survive any input.
func buildFamily(family string, size int) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: family %s(%d): %v", family, size, r)
		}
	}()
	return gen.FromFamily(gen.Family(family), size)
}

// Len returns the number of stored graphs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.graphs)
}

// List returns snapshots sorted by digest — a canonical order, so the
// listing endpoint's body is deterministic for a given store content.
func (s *Store) List() []StoredGraph {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredGraph, 0, len(s.graphs))
	for _, e := range s.graphs {
		out = append(out, e.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}
