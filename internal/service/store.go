package service

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/store"
)

// StoredGraph is a snapshot of one entry of the content-addressed graph
// store. Snapshots are values with private label copies, so handlers may
// read and serialize them without holding the store lock.
type StoredGraph struct {
	// Digest is the canonical SHA-256 of the graph (graph.DigestString) —
	// the entry's identity and its URL path segment.
	Digest string `json:"digest"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// Labels are the human names under which this graph has been stored
	// ("upload", "hypercube(10)", ...), sorted; purely informational.
	Labels []string `json:"labels,omitempty"`

	g *graph.Graph
}

// Graph returns the stored immutable graph (nil on index-only snapshots
// from List in durable mode; Get always populates it).
func (s StoredGraph) Graph() *graph.Graph { return s.g }

// storeEntry is the store's internal mutable record; labels and lru are
// only touched under Store.mu.
type storeEntry struct {
	digest string
	g      *graph.Graph
	labels []string
	lru    *list.Element // position in Store.order (durable mode only)
}

// snapshot copies the entry into a lock-free view. Caller holds Store.mu.
func (e *storeEntry) snapshot() StoredGraph {
	return StoredGraph{
		Digest: e.digest,
		N:      e.g.N(),
		M:      e.g.M(),
		Labels: append([]string(nil), e.labels...),
		g:      e.g,
	}
}

func (e *storeEntry) addLabel(label string) {
	if label == "" {
		return
	}
	for _, l := range e.labels {
		if l == label {
			return
		}
	}
	e.labels = append(e.labels, label)
	sort.Strings(e.labels)
}

// Store is the content-addressed graph store: graphs are keyed by their
// canonical digest, so storing the same graph twice — whether uploaded
// as an edge list or requested as a named family — dedupes to one entry.
//
// It is two-tier. The durable tier (optional, a store.CAS directory) holds
// every graph forever in the pinned binary CSR encoding; the in-memory
// tier holds decoded graphs and is just a cache over it, bounded by max
// entries with LRU eviction — an evicted graph reloads (and re-verifies)
// from disk on demand. Without a durable tier the in-memory tier IS the
// store: eviction would lose data, so overflow reports ErrStoreFull
// (507) instead. The capacity bound therefore applies to the cache tier,
// never to the durable tier.
type Store struct {
	mu       sync.Mutex
	max      int
	graphs   map[string]*storeEntry
	order    *list.List        // LRU order of in-memory entries (durable mode); front = most recent
	families map[string]string // "family/size" → digest, to skip rebuilding
	cas      *store.CAS        // nil = memory-only

	evictions int64
}

// NewStore returns a memory-only store holding at most max graphs (0
// means DefaultMaxGraphs).
func NewStore(max int) *Store { return NewDurableStore(max, nil) }

// NewDurableStore returns a store backed by cas (may be nil for
// memory-only), caching at most max decoded graphs in memory.
func NewDurableStore(max int, cas *store.CAS) *Store {
	if max <= 0 {
		max = DefaultMaxGraphs
	}
	return &Store{
		max:      max,
		graphs:   make(map[string]*storeEntry),
		order:    list.New(),
		families: make(map[string]string),
		cas:      cas,
	}
}

// DefaultMaxGraphs bounds the graph store when Config.MaxGraphs is zero.
const DefaultMaxGraphs = 4096

// ErrStoreFull reports that the memory-only graph store reached its
// capacity. A durable store never returns it: the bound there governs
// the cache tier, which evicts instead.
var ErrStoreFull = fmt.Errorf("service: graph store full")

// Put stores g under its canonical digest and returns a snapshot of the
// entry. The second return value reports whether the graph was already
// present (the dedup case); labels accumulate across duplicate stores.
func (s *Store) Put(g *graph.Graph, label string) (StoredGraph, bool, error) {
	d := graph.DigestString(g)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cas != nil {
		_, existedOnDisk, err := s.cas.Put(g, []string{label})
		if err != nil {
			return StoredGraph{}, false, err
		}
		e := s.cacheLocked(d, g)
		e.labels = s.diskLabels(d)
		return e.snapshot(), existedOnDisk, nil
	}
	if e, ok := s.graphs[d]; ok {
		e.addLabel(label)
		return e.snapshot(), true, nil
	}
	if len(s.graphs) >= s.max {
		return StoredGraph{}, false, ErrStoreFull
	}
	e := &storeEntry{digest: d, g: g}
	e.addLabel(label)
	s.graphs[d] = e
	return e.snapshot(), false, nil
}

// diskLabels reads the canonical label set of a durable entry. Caller
// holds s.mu; the CAS has its own lock.
func (s *Store) diskLabels(digest string) []string {
	meta, _ := s.cas.Meta(digest)
	return append([]string(nil), meta.Labels...)
}

// cacheLocked inserts (or refreshes) the in-memory entry for a
// durable-tier graph, evicting the least recently used entries beyond
// the bound. Caller holds s.mu and guarantees the graph is on disk.
func (s *Store) cacheLocked(digest string, g *graph.Graph) *storeEntry {
	if e, ok := s.graphs[digest]; ok {
		s.order.MoveToFront(e.lru)
		return e
	}
	e := &storeEntry{digest: digest, g: g}
	e.lru = s.order.PushFront(e)
	s.graphs[digest] = e
	for len(s.graphs) > s.max {
		back := s.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*storeEntry)
		s.order.Remove(back)
		delete(s.graphs, victim.digest)
		s.evictions++
	}
	return e
}

// Get returns a snapshot of the entry for a digest. In durable mode a
// memory miss falls through to the CAS (verify-on-read) and re-caches;
// a corrupt durable entry surfaces as an error, distinct from a miss.
func (s *Store) Get(digest string) (StoredGraph, bool, error) {
	s.mu.Lock()
	if e, ok := s.graphs[digest]; ok {
		if s.cas != nil {
			s.order.MoveToFront(e.lru)
			e.labels = s.diskLabels(digest)
		}
		snap := e.snapshot()
		s.mu.Unlock()
		return snap, true, nil
	}
	if s.cas == nil {
		s.mu.Unlock()
		return StoredGraph{}, false, nil
	}
	s.mu.Unlock()
	// Load outside the lock: decoding and digest verification are the
	// expensive part. A racing duplicate load converges in cacheLocked.
	g, ok, err := s.cas.Get(digest)
	if err != nil || !ok {
		return StoredGraph{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.cacheLocked(digest, g)
	e.labels = s.diskLabels(digest)
	return e.snapshot(), true, nil
}

// PutFamily resolves a named family instance (building it at most once per
// (family, size)) and stores it content-addressed: two different family
// requests that generate the same labeled graph share one entry.
func (s *Store) PutFamily(family string, size int) (StoredGraph, bool, error) {
	fkey := fmt.Sprintf("%s/%d", family, size)
	s.mu.Lock()
	if d, ok := s.families[fkey]; ok {
		s.mu.Unlock()
		if e, ok, err := s.Get(d); err == nil && ok {
			return e, true, nil
		}
		// The cached digest went unreadable (corrupt durable entry);
		// fall through and rebuild.
	} else {
		s.mu.Unlock()
	}
	// Build outside the lock: generators can be expensive. A racing
	// duplicate build dedupes through Put.
	g, err := buildFamily(family, size)
	if err != nil {
		return StoredGraph{}, false, err
	}
	e, existed, err := s.Put(g, fmt.Sprintf("%s(%d)", family, size))
	if err != nil {
		return StoredGraph{}, false, err
	}
	s.mu.Lock()
	s.families[fkey] = e.Digest
	s.mu.Unlock()
	return e, existed, nil
}

// buildFamily wraps gen.FromFamily, converting generator panics on absurd
// size parameters (negative cycle lengths, oversized hypercube dimensions)
// into errors — a long-running service must survive any input.
func buildFamily(family string, size int) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: family %s(%d): %v", family, size, r)
		}
	}()
	return gen.FromFamily(gen.Family(family), size)
}

// Len returns the number of stored graphs (durable tier when present).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cas != nil {
		return s.cas.Len()
	}
	return len(s.graphs)
}

// CachedLen returns the number of decoded graphs resident in memory.
func (s *Store) CachedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.graphs)
}

// Evictions returns the number of cache-tier evictions (0 in memory-only
// mode, which never evicts).
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// List returns snapshots sorted by digest — a canonical order, so the
// listing endpoint's body is deterministic for a given store content. In
// durable mode the listing comes from the index and snapshots carry
// metadata only (no decoded graph).
func (s *Store) List() []StoredGraph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cas != nil {
		listed := s.cas.List()
		out := make([]StoredGraph, 0, len(listed))
		for _, l := range listed {
			out = append(out, StoredGraph{
				Digest: l.Digest, N: l.N, M: l.M,
				Labels: append([]string(nil), l.Labels...),
			})
		}
		return out
	}
	out := make([]StoredGraph, 0, len(s.graphs))
	for _, e := range s.graphs {
		out = append(out, e.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}
